package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"text/tabwriter"

	"womcpcm/internal/core"
	"womcpcm/internal/probe"
	"womcpcm/internal/stats"
	"womcpcm/internal/telemetry"
	"womcpcm/internal/trace"
)

// ReplayResult runs one recorded trace through all four architectures — the
// service-mode counterpart of the synthetic benchmarks: clients upload a
// trace once and compare architectures on their real access stream.
type ReplayResult struct {
	// Label names the trace (file path or upload id).
	Label string
	// Records is the number of records replayed per architecture.
	Records int
	// Runs holds one run per architecture, indexed like core.Arches().
	Runs []*stats.Run
	// NormWrite and NormRead are latencies normalized to the baseline run.
	NormWrite []float64
	NormRead  []float64
}

// Replay simulates recs on every architecture. The record slice is replayed
// verbatim for each architecture so all four see identical input; cfg's
// Requests field bounds the replay length when positive. Architectures run
// in parallel under cfg.Parallelism and honor cfg.Ctx. When cfg.Ctx carries
// a ProgressFunc (WithProgress), the replay reports records processed out of
// len(recs) × 4 as the architectures consume their sources. When it carries
// a TelemetryFunc (WithTelemetry), each architecture streams finalized
// telemetry windows as its simulated clock advances; a ClassCountsFunc
// (WithClassCounts) receives per-architecture write-class totals.
func Replay(cfg ExpConfig, label string, recs []trace.Record) (*ReplayResult, error) {
	cfg = cfg.normalize()
	if err := trace.Validate(recs); err != nil {
		return nil, err
	}
	if cfg.Requests > 0 && cfg.Requests < len(recs) {
		recs = recs[:cfg.Requests]
	}
	arches := core.Arches()
	report := progressOf(cfg.Ctx)
	telem := telemetryOf(cfg.Ctx)
	classes := classCountsOf(cfg.Ctx)
	var done atomic.Int64
	total := int64(len(recs)) * int64(len(arches))
	res := &ReplayResult{
		Label:     label,
		Records:   len(recs),
		Runs:      make([]*stats.Run, len(arches)),
		NormWrite: make([]float64, len(arches)),
		NormRead:  make([]float64, len(arches)),
	}
	if err := cfg.parMap(len(arches), func(i int) error {
		opts := core.DefaultOptions()
		opts.Geometry = cfg.Geometry
		opts.Timing = cfg.Timing
		arch := arches[i].String()
		var col *telemetry.Collector
		var counter *probe.CounterSink
		var sinks []probe.Sink
		if telem != nil {
			col = telemetry.New(telemetry.Options{
				WindowNs: telem.windowNs,
				Banks:    telemetryBanks(arches[i], cfg.Geometry),
				OnWindow: func(w telemetry.Window) { telem.f(arch, w) },
			})
			opts.Latency = col.ObserveLatency
			sinks = append(sinks, col)
		}
		if classes != nil {
			counter = probe.NewCounterSink()
			sinks = append(sinks, counter)
		}
		if len(sinks) > 0 {
			opts.Probe = probe.New(sinks...)
		}
		opts.Events = simEventsOf(cfg.Ctx)
		sys, err := core.NewSystem(arches[i], opts)
		if err != nil {
			return err
		}
		src := newProgressSource(trace.NewSliceSource(recs), &done, total, report)
		run, err := sys.Simulate(src)
		if err != nil {
			return fmt.Errorf("sim: replaying %s on %s: %w", label, arches[i], err)
		}
		run.Workload = label
		if col != nil {
			col.Finish(arch, run.SimulatedNs)
		}
		reportClassCounts(classes, counter)
		res.Runs[i] = run
		return nil
	}); err != nil {
		return nil, err
	}
	base := res.Runs[int(core.Baseline)]
	for i, run := range res.Runs {
		res.NormWrite[i], res.NormRead[i] = run.Normalized(base)
	}
	return res, nil
}

// RenderReplay formats the per-architecture comparison.
func RenderReplay(res *ReplayResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replay: %s (%d records)\n", res.Label, res.Records)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "architecture\tmean write\tmean read\tnorm. write\tnorm. read")
	for i, run := range res.Runs {
		fmt.Fprintf(tw, "%s\t%.1fns\t%.1fns\t%.3f\t%.3f\n", run.Arch,
			run.WriteLatency.Mean(), run.ReadLatency.Mean(), res.NormWrite[i], res.NormRead[i])
	}
	tw.Flush()
	return b.String()
}
