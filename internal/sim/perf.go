package sim

import (
	"context"
	"sync/atomic"
)

type simEventsCtxKey struct{}

// WithSimEvents returns a context asking experiments to attach c as the live
// event counter of every simulation they run (memctrl.Config.Events): the
// controller advances it atomically in strides while simulating, so a caller
// (internal/perfmon, the engine's slow-job detector) can observe host-time
// throughput — simulated-events/sec — while a job is still running. One
// counter aggregates across an experiment's parallel simulations.
func WithSimEvents(ctx context.Context, c *atomic.Int64) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, simEventsCtxKey{}, c)
}

// simEventsOf extracts the WithSimEvents counter from ctx; nil when absent.
func simEventsOf(ctx context.Context) *atomic.Int64 {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(simEventsCtxKey{}).(*atomic.Int64)
	return c
}
