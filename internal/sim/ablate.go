package sim

import (
	"womcpcm/internal/core"
	"womcpcm/internal/memctrl"
	"womcpcm/internal/stats"
)

// RthSweepResult measures the PCM-refresh threshold r_th (§3.2): low
// thresholds refresh aggressively, higher thresholds wait for enough
// at-limit banks to batch the burst-mode refresh.
type RthSweepResult struct {
	Thresholds []float64
	// NormWrite is the across-benchmark mean normalized write latency of
	// PCM-refresh at each threshold (versus conventional PCM).
	NormWrite []float64
	// Refreshes and Aborts are totals across benchmarks.
	Refreshes []uint64
	Aborts    []uint64
}

// RthSweep runs PCM-refresh at each threshold.
func RthSweep(cfg ExpConfig, thresholds []float64) (*RthSweepResult, error) {
	cfg = cfg.normalize()
	res := &RthSweepResult{
		Thresholds: append([]float64(nil), thresholds...),
		NormWrite:  make([]float64, len(thresholds)),
		Refreshes:  make([]uint64, len(thresholds)),
		Aborts:     make([]uint64, len(thresholds)),
	}
	baseMeans := make([]float64, len(cfg.Profiles))
	if err := cfg.parMap(len(cfg.Profiles), func(p int) error {
		run, err := cfg.runArch(core.Baseline, cfg.Profiles[p], cfg.Geometry)
		if err != nil {
			return err
		}
		baseMeans[p] = run.WriteLatency.Mean()
		return nil
	}); err != nil {
		return nil, err
	}
	type job struct{ prof, th int }
	var jobs []job
	for p := range cfg.Profiles {
		for t := range thresholds {
			jobs = append(jobs, job{p, t})
		}
	}
	type cell struct {
		norm              float64
		refreshes, aborts uint64
	}
	cells := make([][]cell, len(cfg.Profiles))
	for p := range cells {
		cells[p] = make([]cell, len(thresholds))
	}
	if err := cfg.parMap(len(jobs), func(i int) error {
		j := jobs[i]
		mc := memctrl.Config{
			Geometry: cfg.Geometry,
			Timing:   cfg.Timing,
			WOM:      memctrl.DefaultWOM(),
			Refresh:  &memctrl.RefreshConfig{ThresholdPct: thresholds[j.th], TableSize: 5},
		}
		run, err := cfg.runConfig(mc, cfg.Profiles[j.prof])
		if err != nil {
			return err
		}
		cells[j.prof][j.th] = cell{
			norm:      run.WriteLatency.Mean() / baseMeans[j.prof],
			refreshes: run.Refreshes,
			aborts:    run.RefreshAborts,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for t := range thresholds {
		for p := range cfg.Profiles {
			res.NormWrite[t] += cells[p][t].norm / float64(len(cfg.Profiles))
			res.Refreshes[t] += cells[p][t].refreshes
			res.Aborts[t] += cells[p][t].aborts
		}
	}
	return res, nil
}

// OrgAblationResult compares the §3.1 memory organizations.
type OrgAblationResult struct {
	// WideWrite/HiddenWrite (and reads) are across-benchmark mean
	// normalized latencies versus conventional PCM.
	WideWrite, HiddenWrite float64
	WideRead, HiddenRead   float64
}

// OrgAblation runs WOM-code PCM in both organizations.
func OrgAblation(cfg ExpConfig) (*OrgAblationResult, error) {
	cfg = cfg.normalize()
	res := &OrgAblationResult{}
	type triple struct{ base, wide, hidden *stats.Run }
	rows := make([]triple, len(cfg.Profiles))
	orgCfg := func(org memctrl.Organization) memctrl.Config {
		return memctrl.Config{
			Geometry: cfg.Geometry,
			Timing:   cfg.Timing,
			WOM:      &memctrl.WOMConfig{Rewrites: 2, Org: org},
		}
	}
	if err := cfg.parMap(len(cfg.Profiles), func(p int) error {
		base, err := cfg.runArch(core.Baseline, cfg.Profiles[p], cfg.Geometry)
		if err != nil {
			return err
		}
		wide, err := cfg.runConfig(orgCfg(memctrl.WideColumn), cfg.Profiles[p])
		if err != nil {
			return err
		}
		hidden, err := cfg.runConfig(orgCfg(memctrl.HiddenPage), cfg.Profiles[p])
		if err != nil {
			return err
		}
		rows[p] = triple{base, wide, hidden}
		return nil
	}); err != nil {
		return nil, err
	}
	n := float64(len(cfg.Profiles))
	for _, r := range rows {
		ww, wr := r.wide.Normalized(r.base)
		hw, hr := r.hidden.Normalized(r.base)
		res.WideWrite += ww / n
		res.WideRead += wr / n
		res.HiddenWrite += hw / n
		res.HiddenRead += hr / n
	}
	return res, nil
}

// PausingAblationResult compares PCM-refresh with and without write
// pausing (§3.2 combines them; this quantifies the combination).
type PausingAblationResult struct {
	// WithWrite/WithoutWrite are mean normalized write latencies; Aborts
	// counts preemptions in the with-pausing runs.
	WithWrite, WithoutWrite float64
	WithRead, WithoutRead   float64
	Aborts                  uint64
}

// PausingAblation runs PCM-refresh with pausing on and off.
func PausingAblation(cfg ExpConfig) (*PausingAblationResult, error) {
	cfg = cfg.normalize()
	res := &PausingAblationResult{}
	refreshCfg := func(noPausing bool) memctrl.Config {
		return memctrl.Config{
			Geometry: cfg.Geometry,
			Timing:   cfg.Timing,
			WOM:      memctrl.DefaultWOM(),
			Refresh:  &memctrl.RefreshConfig{ThresholdPct: 10, TableSize: 5, NoPausing: noPausing},
		}
	}
	type triple struct{ base, with, without *stats.Run }
	rows := make([]triple, len(cfg.Profiles))
	if err := cfg.parMap(len(cfg.Profiles), func(p int) error {
		base, err := cfg.runArch(core.Baseline, cfg.Profiles[p], cfg.Geometry)
		if err != nil {
			return err
		}
		with, err := cfg.runConfig(refreshCfg(false), cfg.Profiles[p])
		if err != nil {
			return err
		}
		without, err := cfg.runConfig(refreshCfg(true), cfg.Profiles[p])
		if err != nil {
			return err
		}
		rows[p] = triple{base, with, without}
		return nil
	}); err != nil {
		return nil, err
	}
	n := float64(len(cfg.Profiles))
	for _, r := range rows {
		ww, wr := r.with.Normalized(r.base)
		ow, or := r.without.Normalized(r.base)
		res.WithWrite += ww / n
		res.WithRead += wr / n
		res.WithoutWrite += ow / n
		res.WithoutRead += or / n
		res.Aborts += r.with.RefreshAborts
	}
	return res, nil
}

// CodeAblationResult sweeps the rewrite budget k (§3.2: higher k lifts the
// (k−1+S)/(kS) bound at higher memory overhead).
type CodeAblationResult struct {
	Rewrites []int
	// NormWrite is the mean normalized write latency of WOM-code PCM (no
	// refresh) at each k; Bound is the corresponding analytic limit.
	NormWrite []float64
	Bound     []float64
}

// CodeAblation runs WOM-code PCM at each rewrite budget.
func CodeAblation(cfg ExpConfig, rewrites []int) (*CodeAblationResult, error) {
	cfg = cfg.normalize()
	model := struct{ s float64 }{float64(cfg.Timing.Set) / float64(cfg.Timing.Reset)}
	res := &CodeAblationResult{
		Rewrites:  append([]int(nil), rewrites...),
		NormWrite: make([]float64, len(rewrites)),
		Bound:     make([]float64, len(rewrites)),
	}
	for i, k := range rewrites {
		res.Bound[i] = (float64(k) - 1 + model.s) / (float64(k) * model.s)
	}
	baseMeans := make([]float64, len(cfg.Profiles))
	if err := cfg.parMap(len(cfg.Profiles), func(p int) error {
		run, err := cfg.runArch(core.Baseline, cfg.Profiles[p], cfg.Geometry)
		if err != nil {
			return err
		}
		baseMeans[p] = run.WriteLatency.Mean()
		return nil
	}); err != nil {
		return nil, err
	}
	type job struct{ prof, k int }
	var jobs []job
	for p := range cfg.Profiles {
		for k := range rewrites {
			jobs = append(jobs, job{p, k})
		}
	}
	norms := make([][]float64, len(cfg.Profiles))
	for p := range norms {
		norms[p] = make([]float64, len(rewrites))
	}
	if err := cfg.parMap(len(jobs), func(i int) error {
		j := jobs[i]
		mc := memctrl.Config{
			Geometry: cfg.Geometry,
			Timing:   cfg.Timing,
			WOM:      &memctrl.WOMConfig{Rewrites: rewrites[j.k]},
		}
		run, err := cfg.runConfig(mc, cfg.Profiles[j.prof])
		if err != nil {
			return err
		}
		norms[j.prof][j.k] = run.WriteLatency.Mean() / baseMeans[j.prof]
		return nil
	}); err != nil {
		return nil, err
	}
	for k := range rewrites {
		for p := range cfg.Profiles {
			res.NormWrite[k] += norms[p][k] / float64(len(cfg.Profiles))
		}
	}
	return res, nil
}
