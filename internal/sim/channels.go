package sim

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"womcpcm/internal/memctrl"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

// ChannelScalingResult measures the §1 scaling axis the paper leaves on the
// table: striping the same traffic across more independent channels. Each
// channel carries its own WOM state and refresh engine, so the PCM-refresh
// architecture scales without coordination.
type ChannelScalingResult struct {
	Channels []int
	// NormWrite and NormRead are mean latencies of the PCM-refresh
	// architecture at each channel count, normalized to 1 channel.
	NormWrite []float64
	NormRead  []float64
}

// ChannelScaling runs PCM-refresh at each channel count over the workloads.
func ChannelScaling(cfg ExpConfig, channels []int) (*ChannelScalingResult, error) {
	cfg = cfg.normalize()
	res := &ChannelScalingResult{
		Channels:  append([]int(nil), channels...),
		NormWrite: make([]float64, len(channels)),
		NormRead:  make([]float64, len(channels)),
	}
	mcCfg := memctrl.Config{
		Geometry: cfg.Geometry,
		Timing:   cfg.Timing,
		WOM:      memctrl.DefaultWOM(),
		Refresh:  memctrl.DefaultRefresh(),
	}
	type job struct{ prof, ch int }
	var jobs []job
	for p := range cfg.Profiles {
		for c := range channels {
			jobs = append(jobs, job{p, c})
		}
	}
	runs := make([][]*stats.Run, len(cfg.Profiles))
	for p := range runs {
		runs[p] = make([]*stats.Run, len(channels))
	}
	if err := cfg.parMap(len(jobs), func(i int) error {
		j := jobs[i]
		mc, err := memctrl.NewMultiChannel(mcCfg, channels[j.ch])
		if err != nil {
			return err
		}
		gen, err := workload.NewGenerator(cfg.Profiles[j.prof], cfg.Geometry, cfg.Seed)
		if err != nil {
			return err
		}
		run, err := mc.Run(trace.NewLimit(gen, cfg.Requests))
		if err != nil {
			return fmt.Errorf("sim: %d channels on %s: %w", channels[j.ch], cfg.Profiles[j.prof].Name, err)
		}
		runs[j.prof][j.ch] = run
		return nil
	}); err != nil {
		return nil, err
	}
	n := float64(len(cfg.Profiles))
	for p := range cfg.Profiles {
		base := runs[p][0]
		for c := range channels {
			w, r := runs[p][c].Normalized(base)
			res.NormWrite[c] += w / n
			res.NormRead[c] += r / n
		}
	}
	return res, nil
}

// RenderChannelScaling formats the sweep.
func RenderChannelScaling(res *ChannelScalingResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Extension: channel scaling (PCM-refresh, normalized to 1 channel)")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "channels\tnorm. write\tnorm. read")
	for i, ch := range res.Channels {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\n", ch, res.NormWrite[i], res.NormRead[i])
	}
	tw.Flush()
	fmt.Fprintln(&b, "independent per-channel WOM state and refresh engines: no coordination needed.")
	return b.String()
}
