// Package sim drives the paper's experiments (§5): it pairs the synthetic
// benchmark workloads with the four architectures and regenerates every
// figure of the evaluation — Fig. 5(a)/(b) normalized write/read latency,
// Fig. 6 WOM-cache hit rates, Fig. 7 WCPCM bank-count scaling — plus the
// ablations DESIGN.md calls out (refresh threshold, organization, write
// pausing, rewrite budget).
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"womcpcm/internal/core"
	"womcpcm/internal/memctrl"
	"womcpcm/internal/pcm"
	"womcpcm/internal/probe"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

// ExpConfig parameterizes an experiment run. The zero value selects the
// paper's setup with a laptop-scale request budget.
type ExpConfig struct {
	// Geometry defaults to the paper's 16 ranks × 32 banks (§5).
	Geometry pcm.Geometry
	// Timing defaults to the paper's latencies.
	Timing pcm.Timing
	// Requests is the per-benchmark trace length (default 200000). Short
	// traces overstate cold-start α-writes that a long-running benchmark
	// would amortize away.
	Requests int
	// Seed makes every experiment reproducible (default 1).
	Seed int64
	// Profiles defaults to all 20 paper benchmarks.
	Profiles []workload.Profile
	// Parallelism bounds concurrent simulations (default GOMAXPROCS).
	Parallelism int
	// Ctx, when set, cancels the experiment between individual
	// simulations. Long-running services (cmd/womd) use it for job
	// timeouts and shutdown; nil means context.Background().
	Ctx context.Context
}

func (c ExpConfig) normalize() ExpConfig {
	if c.Geometry == (pcm.Geometry{}) {
		c.Geometry = pcm.DefaultGeometry()
	}
	if c.Timing == (pcm.Timing{}) {
		c.Timing = pcm.DefaultTiming()
	}
	if c.Requests == 0 {
		c.Requests = 200000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Profiles) == 0 {
		c.Profiles = workload.Profiles()
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	return c
}

// source builds the deterministic request stream for one benchmark: the
// same (profile, geometry, seed) always replays the same trace, so every
// architecture sees identical input.
func (c ExpConfig) source(p workload.Profile, g pcm.Geometry) (trace.Source, error) {
	gen, err := workload.NewGenerator(p, g, c.Seed)
	if err != nil {
		return nil, err
	}
	return trace.NewLimit(gen, c.Requests), nil
}

// runArch simulates one benchmark on one architecture. When c.Ctx carries a
// ClassCountsFunc (WithClassCounts), the simulation's write-class totals are
// reported through it.
func (c ExpConfig) runArch(a core.Arch, p workload.Profile, g pcm.Geometry) (*stats.Run, error) {
	opts := core.DefaultOptions()
	opts.Geometry = g
	opts.Timing = c.Timing
	classes := classCountsOf(c.Ctx)
	var counter *probe.CounterSink
	if classes != nil {
		counter = probe.NewCounterSink()
		opts.Probe = probe.New(counter)
	}
	opts.Events = simEventsOf(c.Ctx)
	sys, err := core.NewSystem(a, opts)
	if err != nil {
		return nil, err
	}
	src, err := c.source(p, g)
	if err != nil {
		return nil, err
	}
	run, err := sys.Simulate(src)
	if err != nil {
		return nil, fmt.Errorf("sim: %s on %s: %w", a, p.Name, err)
	}
	run.Workload = p.Name
	reportClassCounts(classes, counter)
	return run, nil
}

// runConfig simulates one benchmark on an explicit controller config (for
// ablations that reach past the core presets). Honors WithClassCounts like
// runArch.
func (c ExpConfig) runConfig(cfg memctrl.Config, p workload.Profile) (*stats.Run, error) {
	classes := classCountsOf(c.Ctx)
	var counter *probe.CounterSink
	if classes != nil && cfg.Probe == nil {
		counter = probe.NewCounterSink()
		cfg.Probe = probe.New(counter)
	}
	if cfg.Events == nil {
		cfg.Events = simEventsOf(c.Ctx)
	}
	ctrl, err := memctrl.New(cfg)
	if err != nil {
		return nil, err
	}
	src, err := c.source(p, cfg.Geometry)
	if err != nil {
		return nil, err
	}
	run, err := ctrl.Run(src)
	if err != nil {
		return nil, fmt.Errorf("sim: %s on %s: %w", cfg.ArchName(), p.Name, err)
	}
	run.Workload = p.Name
	reportClassCounts(classes, counter)
	return run, nil
}

// parMap runs f(0..n-1) on at most c.Parallelism goroutines, stopping
// between simulations if c.Ctx is canceled. c must be normalized.
func (c ExpConfig) parMap(n int, f func(i int) error) error {
	return parMapCtx(c.Ctx, n, c.Parallelism, f)
}

// parMap runs f(0..n-1) on at most workers goroutines and returns the first
// error.
func parMap(n, workers int, f func(i int) error) error {
	return parMapCtx(context.Background(), n, workers, f)
}

// parMapCtx is parMap with cancellation: once ctx is canceled no further
// indices are dispatched (in-flight calls finish) and ctx.Err() is
// returned unless a worker failed first.
func parMapCtx(ctx context.Context, n, workers int, f func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := f(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if first == nil {
		first = ctx.Err()
	}
	return first
}

// reduction converts a normalized latency into the paper's "% reduction"
// phrasing: 0.80 normalized → 20 % reduction.
func reduction(normalized float64) float64 { return 100 * (1 - normalized) }
