package sim

import (
	"strings"
	"testing"
)

// TestRegistryFingerprint checks the handshake value is stable within one
// binary, hex-shaped, and derived from the schema version — the property the
// cluster registration guard relies on.
func TestRegistryFingerprint(t *testing.T) {
	fp := RegistryFingerprint()
	if fp != RegistryFingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
	if len(fp) != 16 {
		t.Fatalf("fingerprint length = %d, want 16", len(fp))
	}
	if strings.ToLower(fp) != fp {
		t.Errorf("fingerprint %q not lowercase hex", fp)
	}
	for _, c := range fp {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("fingerprint %q contains non-hex %q", fp, c)
		}
	}
}
