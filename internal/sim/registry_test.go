package sim

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	"womcpcm/internal/trace"
)

func TestRegistryLookupAndAliases(t *testing.T) {
	names := ExperimentNames()
	if len(names) != len(Experiments()) {
		t.Fatalf("names %d != experiments %d", len(names), len(Experiments()))
	}
	for _, name := range names {
		exp, err := LookupExperiment(name)
		if err != nil {
			t.Fatalf("lookup %q: %v", name, err)
		}
		if exp.Name != name || exp.Description == "" {
			t.Errorf("experiment %q malformed: %+v", name, exp)
		}
	}
	// The historical womsim -fig spellings resolve.
	for alias, canon := range map[string]string{"5": "fig5", "5a": "fig5", "5b": "fig5", "6": "fig6", "7": "fig7"} {
		exp, err := LookupExperiment(alias)
		if err != nil || exp.Name != canon {
			t.Errorf("alias %q → %q (%v), want %q", alias, exp.Name, err, canon)
		}
	}
	if _, err := LookupExperiment("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Listings are sorted, so CLI/API output is stable across runs.
	if !sort.StringsAreSorted(names) {
		t.Errorf("ExperimentNames not sorted: %v", names)
	}
	exps := Experiments()
	if !sort.SliceIsSorted(exps, func(i, j int) bool { return exps[i].Name < exps[j].Name }) {
		t.Errorf("Experiments not sorted")
	}
}

func TestParamsConfig(t *testing.T) {
	cfg, err := Params{Requests: 123, Seed: 9, Ranks: 4, Banks: 8, Bench: []string{"qsort"}}.Config(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Requests != 123 || cfg.Seed != 9 || cfg.Geometry.Ranks != 4 || cfg.Geometry.BanksPerRank != 8 {
		t.Errorf("config = %+v", cfg)
	}
	if len(cfg.Profiles) != 1 || cfg.Profiles[0].Name != "qsort" {
		t.Errorf("profiles = %+v", cfg.Profiles)
	}
	if _, err := (Params{Suite: "SPEC", Bench: []string{"qsort"}}).Config(context.Background()); err == nil {
		t.Error("bench+suite accepted")
	}
	if _, err := (Params{Suite: "unknown"}).Config(context.Background()); err == nil {
		t.Error("unknown suite accepted")
	}
	suite, err := Params{Suite: "mibench"}.Config(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range suite.Profiles {
		if p.Suite != "MiBench" {
			t.Errorf("suite filter leaked %s", p.Name)
		}
	}
}

func TestRegistryRequiredInputs(t *testing.T) {
	sweep, err := LookupExperiment("sweep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweep.Run(context.Background(), Params{}); err == nil ||
		!strings.Contains(err.Error(), "profile") {
		t.Errorf("profile-less sweep: %v", err)
	}
	replay, err := LookupExperiment("replay")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replay.Run(context.Background(), Params{}); err == nil ||
		!strings.Contains(err.Error(), "trace") {
		t.Errorf("trace-less replay: %v", err)
	}
}

func TestReplayExperiment(t *testing.T) {
	recs := make([]trace.Record, 0, 4000)
	for i := 0; i < 4000; i++ {
		op := trace.Write
		if i%4 == 0 {
			op = trace.Read
		}
		recs = append(recs, trace.Record{Op: op, Addr: uint64(i%128) * 16384, Time: int64(i) * 75})
	}
	cfg := fastConfig(t)
	res, err := Replay(cfg, "synthetic", recs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 4000 || len(res.Runs) != 4 {
		t.Fatalf("replay shape: %+v", res)
	}
	if res.NormWrite[0] != 1 || res.NormRead[0] != 1 {
		t.Errorf("baseline not normalized: %v %v", res.NormWrite, res.NormRead)
	}
	for i, run := range res.Runs {
		if run.Workload != "synthetic" {
			t.Errorf("run %d label = %q", i, run.Workload)
		}
	}
	if out := RenderReplay(res); !strings.Contains(out, "synthetic") || !strings.Contains(out, "4000") {
		t.Errorf("render broken:\n%s", out)
	}
	// Out-of-order records are rejected.
	bad := []trace.Record{{Time: 100}, {Time: 50}}
	if _, err := Replay(cfg, "bad", bad); err == nil {
		t.Error("unordered trace accepted")
	}
}

// TestExperimentCancellation: a canceled context stops a run between
// simulations and surfaces context.Canceled.
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exp, err := LookupExperiment("fig5")
	if err != nil {
		t.Fatal(err)
	}
	_, err = exp.Run(ctx, Params{Requests: 20000, Bench: []string{"qsort"}, Ranks: 4})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled run = %v", err)
	}
}
