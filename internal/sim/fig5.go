package sim

import (
	"womcpcm/internal/core"
	"womcpcm/internal/stats"
	"womcpcm/internal/workload"
)

// Fig5Row is one benchmark's bar group in Fig. 5: write and read latency of
// each architecture normalized to conventional PCM.
type Fig5Row struct {
	Benchmark string
	Suite     workload.Suite
	// Write and Read are normalized mean latencies indexed like
	// core.Arches(): baseline (always 1.0), WOM-code, PCM-refresh, WCPCM.
	Write [4]float64
	Read  [4]float64
	// AlphaFraction is each architecture's α-write share (0 for baseline),
	// the §3.2 bottleneck metric explaining the spread.
	AlphaFraction [4]float64
	// CacheHitRate is WCPCM's hit rate on this benchmark (Fig. 6 context).
	CacheHitRate float64
}

// Fig5Result regenerates Fig. 5(a) (write) and Fig. 5(b) (read).
type Fig5Result struct {
	Rows []Fig5Row
	// MeanWrite and MeanRead are the across-benchmark arithmetic means of
	// the normalized latencies, the numbers the abstract quotes (e.g.
	// WOM-code PCM: 0.799 write → "20.1 % reduction").
	MeanWrite [4]float64
	MeanRead  [4]float64
}

// WriteReduction returns the paper-style percentage reduction of an
// architecture's mean write latency versus baseline.
func (r *Fig5Result) WriteReduction(a core.Arch) float64 { return reduction(r.MeanWrite[a]) }

// ReadReduction is WriteReduction for read latency.
func (r *Fig5Result) ReadReduction(a core.Arch) float64 { return reduction(r.MeanRead[a]) }

// Fig5 runs all benchmarks through all four architectures.
func Fig5(cfg ExpConfig) (*Fig5Result, error) {
	cfg = cfg.normalize()
	rows := make([]Fig5Row, len(cfg.Profiles))
	type job struct{ prof, arch int }
	var jobs []job
	for p := range cfg.Profiles {
		for a := range core.Arches() {
			jobs = append(jobs, job{p, a})
		}
	}
	runs := make([][]*stats.Run, len(cfg.Profiles))
	for i := range runs {
		runs[i] = make([]*stats.Run, len(core.Arches()))
	}
	err := cfg.parMap(len(jobs), func(i int) error {
		j := jobs[i]
		run, err := cfg.runArch(core.Arches()[j.arch], cfg.Profiles[j.prof], cfg.Geometry)
		if err != nil {
			return err
		}
		runs[j.prof][j.arch] = run
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig5Result{Rows: rows}
	for p, prof := range cfg.Profiles {
		base := runs[p][int(core.Baseline)]
		row := Fig5Row{Benchmark: prof.Name, Suite: prof.Suite}
		for a, run := range runs[p] {
			w, r := run.Normalized(base)
			row.Write[a], row.Read[a] = w, r
			row.AlphaFraction[a] = run.AlphaFraction()
			if core.Arch(a) == core.WCPCM {
				row.CacheHitRate = run.CacheHitRate()
			}
			res.MeanWrite[a] += w / float64(len(cfg.Profiles))
			res.MeanRead[a] += r / float64(len(cfg.Profiles))
		}
		rows[p] = row
	}
	return res, nil
}
