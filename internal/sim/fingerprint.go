package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
)

// RegistryFingerprint identifies this binary's experiment surface: the
// (Params, Result) schema version plus the sorted registry names, hashed.
// Cluster nodes exchange it at registration (internal/cluster), so a
// coordinator never dispatches to a worker built with a different registry
// or wire schema — a mismatched worker would silently compute different
// results under the same resultstore content key.
func RegistryFingerprint() string {
	h := sha256.New()
	io.WriteString(h, SchemaVersion) //nolint:errcheck // hash writes cannot fail
	for _, name := range ExperimentNames() {
		io.WriteString(h, "\x00") //nolint:errcheck
		io.WriteString(h, name)   //nolint:errcheck
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
