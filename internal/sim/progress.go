package sim

import (
	"context"
	"sync/atomic"

	"womcpcm/internal/trace"
)

// ProgressFunc receives running (done, total) record counts from an
// experiment that reports progress. Callbacks may arrive concurrently from
// the parallel per-architecture simulations, and done is a shared cumulative
// count — consumers wanting a monotone reading should keep a max (see
// internal/engine's job progress).
type ProgressFunc func(done, total int64)

type progressCtxKey struct{}

// WithProgress returns a context carrying f. Experiments that support
// progress reporting (currently "replay", whose record count is known up
// front) call f as they consume their input; other experiments ignore it.
func WithProgress(ctx context.Context, f ProgressFunc) context.Context {
	if f == nil {
		return ctx
	}
	return context.WithValue(ctx, progressCtxKey{}, f)
}

// progressOf extracts the ProgressFunc from ctx; nil when absent.
func progressOf(ctx context.Context) ProgressFunc {
	if ctx == nil {
		return nil
	}
	f, _ := ctx.Value(progressCtxKey{}).(ProgressFunc)
	return f
}

// progressStride bounds callback frequency: one report per this many records
// per source (plus one as the source drains), so the per-record cost is a
// local counter increment.
const progressStride = 4096

// progressSource decorates a trace.Source with record counting against a
// completion total shared across the sources of one experiment.
type progressSource struct {
	src    trace.Source
	done   *atomic.Int64
	total  int64
	report ProgressFunc
	local  int64
}

// newProgressSource wraps src; a nil report returns src unchanged.
func newProgressSource(src trace.Source, done *atomic.Int64, total int64, report ProgressFunc) trace.Source {
	if report == nil {
		return src
	}
	return &progressSource{src: src, done: done, total: total, report: report}
}

// Next implements trace.Source.
func (p *progressSource) Next() (trace.Record, bool) {
	r, ok := p.src.Next()
	if !ok {
		p.flush()
		return r, false
	}
	p.local++
	if p.local >= progressStride {
		p.flush()
	}
	return r, true
}

func (p *progressSource) flush() {
	if p.local == 0 {
		return
	}
	p.report(p.done.Add(p.local), p.total)
	p.local = 0
}

// Err implements trace.Source.
func (p *progressSource) Err() error { return p.src.Err() }
