package sim

import (
	"sync"

	"womcpcm/internal/core"
	"womcpcm/internal/workload"
)

// Fig6BankCounts are the four organizations the paper sweeps.
var Fig6BankCounts = []int{4, 8, 16, 32}

// Fig6Row is one benchmark's WOM-cache hit rate per banks/rank setting.
type Fig6Row struct {
	Benchmark string
	Suite     workload.Suite
	HitRate   []float64 // parallel to the result's BanksPerRank
}

// Fig6Result regenerates Fig. 6: hit rate falls as banks/rank (and with it
// the number of bank tags competing for each cache row) grows.
type Fig6Result struct {
	BanksPerRank []int
	Rows         []Fig6Row
	Mean         []float64
}

// Fig7Row is one benchmark's WCPCM write latency per banks/rank setting,
// normalized to the 4-banks/rank organization.
type Fig7Row struct {
	Benchmark string
	Suite     workload.Suite
	NormWrite []float64
}

// Fig7Result regenerates Fig. 7: write latency falls as banks/rank grows
// (more parallelism for victim write-backs and main-memory traffic).
type Fig7Result struct {
	BanksPerRank []int
	Rows         []Fig7Row
	Mean         []float64
}

// bankSweep runs WCPCM across the Fig6BankCounts organizations and hands
// each (profile, bankIdx) run to collect.
func bankSweep(cfg ExpConfig, collect func(prof, bankIdx int, hitRate, writeMean float64)) error {
	cfg = cfg.normalize()
	type job struct{ prof, bank int }
	var jobs []job
	for p := range cfg.Profiles {
		for b := range Fig6BankCounts {
			jobs = append(jobs, job{p, b})
		}
	}
	var mu lockedCollect
	mu.f = collect
	return cfg.parMap(len(jobs), func(i int) error {
		j := jobs[i]
		g := cfg.Geometry
		g.BanksPerRank = Fig6BankCounts[j.bank]
		run, err := cfg.runArch(core.WCPCM, cfg.Profiles[j.prof], g)
		if err != nil {
			return err
		}
		mu.call(j.prof, j.bank, run.CacheHitRate(), run.WriteLatency.Mean())
		return nil
	})
}

// lockedCollect serializes collect callbacks from parallel workers.
type lockedCollect struct {
	mu sync.Mutex
	f  func(prof, bankIdx int, hitRate, writeMean float64)
}

func (l *lockedCollect) call(prof, bankIdx int, hitRate, writeMean float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.f(prof, bankIdx, hitRate, writeMean)
}

// Fig6 measures the WOM-cache hit rate per organization.
func Fig6(cfg ExpConfig) (*Fig6Result, error) {
	cfg = cfg.normalize()
	res := &Fig6Result{
		BanksPerRank: append([]int(nil), Fig6BankCounts...),
		Rows:         make([]Fig6Row, len(cfg.Profiles)),
		Mean:         make([]float64, len(Fig6BankCounts)),
	}
	for p, prof := range cfg.Profiles {
		res.Rows[p] = Fig6Row{
			Benchmark: prof.Name,
			Suite:     prof.Suite,
			HitRate:   make([]float64, len(Fig6BankCounts)),
		}
	}
	err := bankSweep(cfg, func(prof, bankIdx int, hitRate, _ float64) {
		res.Rows[prof].HitRate[bankIdx] = hitRate
	})
	if err != nil {
		return nil, err
	}
	for b := range Fig6BankCounts {
		for p := range res.Rows {
			res.Mean[b] += res.Rows[p].HitRate[b] / float64(len(res.Rows))
		}
	}
	return res, nil
}

// Fig7 measures WCPCM write latency per organization, normalized to the
// 4-banks/rank configuration.
func Fig7(cfg ExpConfig) (*Fig7Result, error) {
	cfg = cfg.normalize()
	raw := make([][]float64, len(cfg.Profiles))
	for p := range raw {
		raw[p] = make([]float64, len(Fig6BankCounts))
	}
	err := bankSweep(cfg, func(prof, bankIdx int, _, writeMean float64) {
		raw[prof][bankIdx] = writeMean
	})
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{
		BanksPerRank: append([]int(nil), Fig6BankCounts...),
		Rows:         make([]Fig7Row, len(cfg.Profiles)),
		Mean:         make([]float64, len(Fig6BankCounts)),
	}
	for p, prof := range cfg.Profiles {
		row := Fig7Row{Benchmark: prof.Name, Suite: prof.Suite, NormWrite: make([]float64, len(Fig6BankCounts))}
		for b := range Fig6BankCounts {
			if raw[p][0] > 0 {
				row.NormWrite[b] = raw[p][b] / raw[p][0]
			}
			res.Mean[b] += row.NormWrite[b] / float64(len(cfg.Profiles))
		}
		res.Rows[p] = row
	}
	return res, nil
}
