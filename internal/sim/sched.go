package sim

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"womcpcm/internal/core"
	"womcpcm/internal/memctrl"
	"womcpcm/internal/stats"
)

// SchedulingAblation compares the paper's §1 design space head-on: write
// scheduling ([7]: read priority, write cancellation) against WOM-coding,
// and their combination. The paper argues scheduling "is not suitable for
// high-performance computing where there are little-to-no idle cycles" and
// does not attack the write itself; this experiment quantifies that.
type SchedulingAblationResult struct {
	// Variants names each configuration; Write and Read are the
	// across-benchmark mean normalized latencies versus plain FCFS
	// conventional PCM.
	Variants []string
	Write    []float64
	Read     []float64
	// Cancels totals write cancellations across benchmarks per variant.
	Cancels []uint64
}

// SchedulingAblation runs the five variants over the configured workloads.
func SchedulingAblation(cfg ExpConfig) (*SchedulingAblationResult, error) {
	cfg = cfg.normalize()
	sched := &memctrl.SchedConfig{ReadPriority: true, WriteCancellation: true}
	variants := []struct {
		name string
		mc   memctrl.Config
	}{
		{"read priority", memctrl.Config{Geometry: cfg.Geometry, Timing: cfg.Timing,
			Sched: &memctrl.SchedConfig{ReadPriority: true}}},
		{"rd-prio + cancellation", memctrl.Config{Geometry: cfg.Geometry, Timing: cfg.Timing,
			Sched: sched}},
		{"WOM-code PCM", memctrl.Config{Geometry: cfg.Geometry, Timing: cfg.Timing,
			WOM: memctrl.DefaultWOM()}},
		{"WOM + scheduling", memctrl.Config{Geometry: cfg.Geometry, Timing: cfg.Timing,
			WOM: memctrl.DefaultWOM(), Sched: sched}},
		{"PCM-refresh + scheduling", memctrl.Config{Geometry: cfg.Geometry, Timing: cfg.Timing,
			WOM: memctrl.DefaultWOM(), Refresh: memctrl.DefaultRefresh(), Sched: sched}},
	}

	res := &SchedulingAblationResult{
		Variants: make([]string, len(variants)),
		Write:    make([]float64, len(variants)),
		Read:     make([]float64, len(variants)),
		Cancels:  make([]uint64, len(variants)),
	}
	for i, v := range variants {
		res.Variants[i] = v.name
	}

	baseRuns := make([]*stats.Run, len(cfg.Profiles))
	if err := cfg.parMap(len(cfg.Profiles), func(p int) error {
		run, err := cfg.runArch(core.Baseline, cfg.Profiles[p], cfg.Geometry)
		if err != nil {
			return err
		}
		baseRuns[p] = run
		return nil
	}); err != nil {
		return nil, err
	}

	type job struct{ prof, variant int }
	var jobs []job
	for p := range cfg.Profiles {
		for v := range variants {
			jobs = append(jobs, job{p, v})
		}
	}
	type cell struct {
		w, r    float64
		cancels uint64
	}
	cells := make([][]cell, len(cfg.Profiles))
	for p := range cells {
		cells[p] = make([]cell, len(variants))
	}
	if err := cfg.parMap(len(jobs), func(i int) error {
		j := jobs[i]
		run, err := cfg.runConfig(variants[j.variant].mc, cfg.Profiles[j.prof])
		if err != nil {
			return err
		}
		w, r := run.Normalized(baseRuns[j.prof])
		cells[j.prof][j.variant] = cell{w: w, r: r, cancels: run.WriteCancels}
		return nil
	}); err != nil {
		return nil, err
	}
	n := float64(len(cfg.Profiles))
	for v := range variants {
		for p := range cfg.Profiles {
			res.Write[v] += cells[p][v].w / n
			res.Read[v] += cells[p][v].r / n
			res.Cancels[v] += cells[p][v].cancels
		}
	}
	return res, nil
}

// RenderSchedulingAblation formats the comparison.
func RenderSchedulingAblation(res *SchedulingAblationResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: write scheduling ([7]) vs WOM-coding (normalized to FCFS baseline)")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tnorm. write\tnorm. read\tcancellations")
	for i, v := range res.Variants {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%d\n", v, res.Write[i], res.Read[i], res.Cancels[i])
	}
	tw.Flush()
	fmt.Fprintln(&b, "paper's §1 claim: scheduling helps reads but cannot shorten the writes themselves.")
	return b.String()
}
