package sim

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"womcpcm/internal/core"
)

// RenderFig5 formats the Fig. 5 reproduction as two text tables plus the
// paper-vs-measured average comparison.
func RenderFig5(res *Fig5Result) string {
	var b strings.Builder
	arches := core.Arches()

	section := func(title string, pick func(Fig5Row) [4]float64, mean [4]float64, paper map[core.Arch]float64) {
		fmt.Fprintf(&b, "%s (normalized to PCM w/o WOM-code)\n", title)
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "benchmark\tsuite")
		for _, a := range arches {
			fmt.Fprintf(tw, "\t%s", a)
		}
		fmt.Fprintln(tw)
		for _, row := range res.Rows {
			fmt.Fprintf(tw, "%s\t%s", row.Benchmark, row.Suite)
			vals := pick(row)
			for i := range arches {
				fmt.Fprintf(tw, "\t%.3f", vals[i])
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprint(tw, "average\t")
		for i := range arches {
			fmt.Fprintf(tw, "\t%.3f", mean[i])
		}
		fmt.Fprintln(tw)
		tw.Flush()
		fmt.Fprintf(&b, "reduction vs baseline (measured | paper):\n")
		for _, a := range arches[1:] {
			fmt.Fprintf(&b, "  %-16s %5.1f%% | %4.1f%%\n", a, reduction(mean[a]), paper[a])
		}
		fmt.Fprintln(&b)
	}

	section("Fig. 5(a): average write latency",
		func(r Fig5Row) [4]float64 { return r.Write }, res.MeanWrite, PaperWriteReductionPct)
	section("Fig. 5(b): average read latency",
		func(r Fig5Row) [4]float64 { return r.Read }, res.MeanRead, PaperReadReductionPct)
	return b.String()
}

// RenderFig6 formats the hit-rate sweep.
func RenderFig6(res *Fig6Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 6: WOM-cache hit rate in WCPCM")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark\tsuite")
	for _, n := range res.BanksPerRank {
		fmt.Fprintf(tw, "\t%d banks/rank", n)
	}
	fmt.Fprintln(tw)
	for _, row := range res.Rows {
		fmt.Fprintf(tw, "%s\t%s", row.Benchmark, row.Suite)
		for _, h := range row.HitRate {
			fmt.Fprintf(tw, "\t%.1f%%", 100*h)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "average\t")
	for _, h := range res.Mean {
		fmt.Fprintf(tw, "\t%.1f%%", 100*h)
	}
	fmt.Fprintln(tw)
	tw.Flush()
	fmt.Fprintln(&b, "paper trend: the more banks/rank, the lower the hit rate.")
	return b.String()
}

// RenderFig7 formats the bank-count latency sweep.
func RenderFig7(res *Fig7Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 7: WCPCM write latency (normalized to 4 banks/rank)")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark\tsuite")
	for _, n := range res.BanksPerRank {
		fmt.Fprintf(tw, "\t%d banks/rank", n)
	}
	fmt.Fprintln(tw)
	for _, row := range res.Rows {
		fmt.Fprintf(tw, "%s\t%s", row.Benchmark, row.Suite)
		for _, v := range row.NormWrite {
			fmt.Fprintf(tw, "\t%.3f", v)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "average\t")
	for _, v := range res.Mean {
		fmt.Fprintf(tw, "\t%.3f", v)
	}
	fmt.Fprintln(tw)
	tw.Flush()
	fmt.Fprintln(&b, "paper trend: write latency decreases as banks/rank increases.")
	return b.String()
}

// RenderRthSweep formats the refresh-threshold ablation.
func RenderRthSweep(res *RthSweepResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: PCM-refresh threshold r_th")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "r_th\tnorm. write latency\trefreshes\taborted")
	for i, th := range res.Thresholds {
		fmt.Fprintf(tw, "%.0f%%\t%.3f\t%d\t%d\n", th, res.NormWrite[i], res.Refreshes[i], res.Aborts[i])
	}
	tw.Flush()
	return b.String()
}

// RenderOrgAblation formats the organization comparison.
func RenderOrgAblation(res *OrgAblationResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: wide-column vs hidden-page organization (§3.1)")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "organization\tnorm. write\tnorm. read")
	fmt.Fprintf(tw, "wide-column\t%.3f\t%.3f\n", res.WideWrite, res.WideRead)
	fmt.Fprintf(tw, "hidden-page\t%.3f\t%.3f\n", res.HiddenWrite, res.HiddenRead)
	tw.Flush()
	return b.String()
}

// RenderPausingAblation formats the write-pausing comparison.
func RenderPausingAblation(res *PausingAblationResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: write pausing during PCM-refresh (§3.2)")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tnorm. write\tnorm. read")
	fmt.Fprintf(tw, "with pausing\t%.3f\t%.3f\n", res.WithWrite, res.WithRead)
	fmt.Fprintf(tw, "without pausing\t%.3f\t%.3f\n", res.WithoutWrite, res.WithoutRead)
	tw.Flush()
	fmt.Fprintf(&b, "refreshes preempted with pausing on: %d\n", res.Aborts)
	return b.String()
}

// RenderCodeAblation formats the rewrite-budget sweep.
func RenderCodeAblation(res *CodeAblationResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: WOM-code rewrite budget k (§3.2 bound (k-1+S)/(kS))")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "k\tnorm. write latency\tanalytic bound")
	for i, k := range res.Rewrites {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\n", k, res.NormWrite[i], res.Bound[i])
	}
	tw.Flush()
	return b.String()
}
