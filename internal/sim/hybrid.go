package sim

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"womcpcm/internal/core"
	"womcpcm/internal/memctrl"
	"womcpcm/internal/stats"
)

// HybridAblation quantifies the §4 "practical cached memory solution"
// argument: WCPCM versus a hybrid DRAM/PCM cache ([18] PDRAM). The DRAM
// cache is faster — no SET pulses, no WOM budget, no PCM-refresh — but
// needs mixed-technology fabrication and inherits DRAM's scaling limits;
// the experiment measures how much of its latency benefit the pure-PCM
// WOM-cache retains.
type HybridAblationResult struct {
	// Mean normalized latencies versus conventional PCM.
	WCPCMWrite, HybridWrite float64
	WCPCMRead, HybridRead   float64
	// Retention is the share of the hybrid's write-latency reduction that
	// WCPCM achieves: (1−WCPCMWrite)/(1−HybridWrite).
	Retention float64
}

// HybridAblation runs both cached architectures over the workloads.
func HybridAblation(cfg ExpConfig) (*HybridAblationResult, error) {
	cfg = cfg.normalize()
	hybridCfg := memctrl.Config{
		Geometry: cfg.Geometry,
		Timing:   cfg.Timing,
		Cache:    &memctrl.CacheConfig{Technology: memctrl.DRAMCache},
	}
	type triple struct{ base, wcpcm, hybrid *stats.Run }
	rows := make([]triple, len(cfg.Profiles))
	if err := cfg.parMap(len(cfg.Profiles), func(p int) error {
		base, err := cfg.runArch(core.Baseline, cfg.Profiles[p], cfg.Geometry)
		if err != nil {
			return err
		}
		wcpcm, err := cfg.runArch(core.WCPCM, cfg.Profiles[p], cfg.Geometry)
		if err != nil {
			return err
		}
		hybrid, err := cfg.runConfig(hybridCfg, cfg.Profiles[p])
		if err != nil {
			return err
		}
		rows[p] = triple{base, wcpcm, hybrid}
		return nil
	}); err != nil {
		return nil, err
	}
	res := &HybridAblationResult{}
	n := float64(len(cfg.Profiles))
	for _, r := range rows {
		ww, wr := r.wcpcm.Normalized(r.base)
		hw, hr := r.hybrid.Normalized(r.base)
		res.WCPCMWrite += ww / n
		res.WCPCMRead += wr / n
		res.HybridWrite += hw / n
		res.HybridRead += hr / n
	}
	if res.HybridWrite < 1 {
		res.Retention = (1 - res.WCPCMWrite) / (1 - res.HybridWrite)
	}
	return res, nil
}

// RenderHybridAblation formats the comparison.
func RenderHybridAblation(res *HybridAblationResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: WCPCM vs hybrid DRAM/PCM cache (§4, [18])")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "architecture\tnorm. write\tnorm. read\tfabrication")
	fmt.Fprintf(tw, "WCPCM (WOM-cache)\t%.3f\t%.3f\tpure PCM\n", res.WCPCMWrite, res.WCPCMRead)
	fmt.Fprintf(tw, "hybrid DRAM/PCM\t%.3f\t%.3f\tmixed DRAM+PCM\n", res.HybridWrite, res.HybridRead)
	tw.Flush()
	fmt.Fprintf(&b, "WCPCM retains %.0f%% of the hybrid's write-latency benefit with PCM-only fabrication.\n",
		100*res.Retention)
	return b.String()
}
