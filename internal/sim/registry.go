package sim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"womcpcm/internal/pcm"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

// SchemaVersion tags the (Params, Result) wire schema. It is part of every
// resultstore content key, so bumping it — required whenever Params fields,
// result shapes, or simulator behavior change in a way that alters outputs —
// invalidates all previously cached results at once instead of serving
// stale data under a matching hash.
const SchemaVersion = "sim-v2"

// Params parameterizes a registry experiment through plain serializable
// fields, so one schema covers the CLI (cmd/womsim flags), the service API
// (cmd/womd JSON jobs), and tests. Zero values select the paper defaults.
type Params struct {
	// Requests bounds the per-benchmark trace length (default 200000).
	Requests int `json:"requests,omitempty"`
	// Seed makes runs reproducible (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Bench filters to named benchmarks (default all 20); mutually
	// exclusive with Suite.
	Bench []string `json:"bench,omitempty"`
	// Suite filters to one suite: "SPEC", "MiBench", or "SPLASH-2".
	Suite string `json:"suite,omitempty"`
	// Ranks and Banks override the paper geometry when positive.
	Ranks int `json:"ranks,omitempty"`
	Banks int `json:"banks,omitempty"`
	// Parallelism bounds concurrent simulations (default GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// Thresholds overrides the rth sweep points (default 0,5,10,25,50,75).
	Thresholds []float64 `json:"thresholds,omitempty"`
	// Rewrites overrides the code-ablation budgets (default 1,2,4,8).
	Rewrites []int `json:"rewrites,omitempty"`
	// Channels overrides the channel-scaling counts (default 1,2,4).
	Channels []int `json:"channels,omitempty"`
	// Profile supplies the custom workload for the "sweep" experiment.
	Profile *workload.Profile `json:"profile,omitempty"`

	// Trace and TraceLabel feed the "replay" experiment. They are not part
	// of the JSON schema: services resolve an uploaded trace id to records
	// before running (see internal/engine).
	Trace      []trace.Record `json:"-"`
	TraceLabel string         `json:"-"`
}

// Config builds the ExpConfig the params describe. ctx bounds the run.
func (p Params) Config(ctx context.Context) (ExpConfig, error) {
	cfg := ExpConfig{
		Requests:    p.Requests,
		Seed:        p.Seed,
		Parallelism: p.Parallelism,
		Ctx:         ctx,
	}
	g := pcm.DefaultGeometry()
	if p.Ranks > 0 {
		g.Ranks = p.Ranks
	}
	if p.Banks > 0 {
		g.BanksPerRank = p.Banks
	}
	cfg.Geometry = g
	profiles, err := SelectProfiles(p.Bench, p.Suite)
	if err != nil {
		return ExpConfig{}, err
	}
	cfg.Profiles = profiles
	return cfg, nil
}

// SelectProfiles resolves a benchmark-name filter or a suite filter to
// workload profiles; with neither it returns all 20 paper benchmarks.
func SelectProfiles(bench []string, suite string) ([]workload.Profile, error) {
	if len(bench) > 0 && suite != "" {
		return nil, fmt.Errorf("sim: bench and suite filters are mutually exclusive")
	}
	if len(bench) > 0 {
		out := make([]workload.Profile, 0, len(bench))
		for _, name := range bench {
			p, err := workload.ProfileByName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		return out, nil
	}
	if suite != "" {
		var s workload.Suite
		switch strings.ToLower(suite) {
		case "spec":
			s = workload.SPEC
		case "mibench":
			s = workload.MiB
		case "splash-2", "splash2", "splash":
			s = workload.SPLASH
		default:
			return nil, fmt.Errorf("sim: unknown suite %q", suite)
		}
		return workload.SuiteProfiles(s), nil
	}
	return workload.Profiles(), nil
}

// Result is one completed experiment: the structured data (JSON-friendly)
// plus the human-readable table the CLI prints.
type Result struct {
	Experiment string `json:"experiment"`
	Data       any    `json:"data"`
	Text       string `json:"text,omitempty"`
}

// Experiment is one named, parameterizable entry in the registry — a paper
// figure, an ablation, or a custom run. The same registry backs cmd/womsim
// (one-shot CLI) and cmd/womd (job service).
type Experiment struct {
	// Name is the canonical registry key (e.g. "fig5", "rth", "sweep").
	Name string `json:"name"`
	// Description is a one-line summary for listings.
	Description string `json:"description"`
	// NeedsProfile marks experiments requiring Params.Profile ("sweep").
	NeedsProfile bool `json:"needs_profile,omitempty"`
	// NeedsTrace marks experiments requiring Params.Trace ("replay").
	NeedsTrace bool `json:"needs_trace,omitempty"`

	run func(ctx context.Context, p Params) (any, string, error)
}

// Run executes the experiment. The context cancels the run between
// individual simulations.
func (e Experiment) Run(ctx context.Context, p Params) (*Result, error) {
	if e.run == nil {
		return nil, fmt.Errorf("sim: experiment %q is not runnable", e.Name)
	}
	if e.NeedsProfile && p.Profile == nil {
		return nil, fmt.Errorf("sim: experiment %q needs params.profile", e.Name)
	}
	if e.NeedsTrace && len(p.Trace) == 0 {
		return nil, fmt.Errorf("sim: experiment %q needs an input trace", e.Name)
	}
	data, text, err := e.run(ctx, p)
	if err != nil {
		return nil, err
	}
	return &Result{Experiment: e.Name, Data: data, Text: text}, nil
}

// configured builds the run closure for experiments driven purely by an
// ExpConfig.
func configured(f func(cfg ExpConfig, p Params) (any, string, error)) func(context.Context, Params) (any, string, error) {
	return func(ctx context.Context, p Params) (any, string, error) {
		cfg, err := p.Config(ctx)
		if err != nil {
			return nil, "", err
		}
		return f(cfg, p)
	}
}

// registry maps canonical experiment names to their definitions.
var registry = map[string]Experiment{
	"fig5": {
		Name:        "fig5",
		Description: "Fig. 5(a)/(b): normalized write/read latency of the four architectures",
		run: configured(func(cfg ExpConfig, _ Params) (any, string, error) {
			res, err := Fig5(cfg)
			if err != nil {
				return nil, "", err
			}
			return res, RenderFig5(res), nil
		}),
	},
	"fig6": {
		Name:        "fig6",
		Description: "Fig. 6: WOM-cache hit rate per banks/rank organization",
		run: configured(func(cfg ExpConfig, _ Params) (any, string, error) {
			res, err := Fig6(cfg)
			if err != nil {
				return nil, "", err
			}
			return res, RenderFig6(res), nil
		}),
	},
	"fig7": {
		Name:        "fig7",
		Description: "Fig. 7: WCPCM write latency scaling with banks/rank",
		run: configured(func(cfg ExpConfig, _ Params) (any, string, error) {
			res, err := Fig7(cfg)
			if err != nil {
				return nil, "", err
			}
			return res, RenderFig7(res), nil
		}),
	},
	"rth": {
		Name:        "rth",
		Description: "Ablation: PCM-refresh threshold r_th sweep (§3.2)",
		run: configured(func(cfg ExpConfig, p Params) (any, string, error) {
			ths := p.Thresholds
			if len(ths) == 0 {
				ths = []float64{0, 5, 10, 25, 50, 75}
			}
			res, err := RthSweep(cfg, ths)
			if err != nil {
				return nil, "", err
			}
			return res, RenderRthSweep(res), nil
		}),
	},
	"org": {
		Name:        "org",
		Description: "Ablation: wide-column vs hidden-page organization (§3.1)",
		run: configured(func(cfg ExpConfig, _ Params) (any, string, error) {
			res, err := OrgAblation(cfg)
			if err != nil {
				return nil, "", err
			}
			return res, RenderOrgAblation(res), nil
		}),
	},
	"pausing": {
		Name:        "pausing",
		Description: "Ablation: write pausing during PCM-refresh (§3.2)",
		run: configured(func(cfg ExpConfig, _ Params) (any, string, error) {
			res, err := PausingAblation(cfg)
			if err != nil {
				return nil, "", err
			}
			return res, RenderPausingAblation(res), nil
		}),
	},
	"code": {
		Name:        "code",
		Description: "Ablation: WOM rewrite budget k vs the §3.2 analytic bound",
		run: configured(func(cfg ExpConfig, p Params) (any, string, error) {
			ks := p.Rewrites
			if len(ks) == 0 {
				ks = []int{1, 2, 4, 8}
			}
			res, err := CodeAblation(cfg, ks)
			if err != nil {
				return nil, "", err
			}
			return res, RenderCodeAblation(res), nil
		}),
	},
	"sched": {
		Name:        "sched",
		Description: "Ablation: write scheduling ([7]) vs WOM-coding",
		run: configured(func(cfg ExpConfig, _ Params) (any, string, error) {
			res, err := SchedulingAblation(cfg)
			if err != nil {
				return nil, "", err
			}
			return res, RenderSchedulingAblation(res), nil
		}),
	},
	"hybrid": {
		Name:        "hybrid",
		Description: "Ablation: WCPCM vs hybrid DRAM/PCM cache (§4, [18])",
		run: configured(func(cfg ExpConfig, _ Params) (any, string, error) {
			res, err := HybridAblation(cfg)
			if err != nil {
				return nil, "", err
			}
			return res, RenderHybridAblation(res), nil
		}),
	},
	"channels": {
		Name:        "channels",
		Description: "Extension: multi-channel scaling of PCM-refresh",
		run: configured(func(cfg ExpConfig, p Params) (any, string, error) {
			chs := p.Channels
			if len(chs) == 0 {
				chs = []int{1, 2, 4}
			}
			res, err := ChannelScaling(cfg, chs)
			if err != nil {
				return nil, "", err
			}
			return res, RenderChannelScaling(res), nil
		}),
	},
	"sweep": {
		Name:         "sweep",
		Description:  "Custom workload: run a caller-defined profile through all four architectures",
		NeedsProfile: true,
		run: configured(func(cfg ExpConfig, p Params) (any, string, error) {
			if err := p.Profile.Validate(); err != nil {
				return nil, "", err
			}
			cfg.Profiles = []workload.Profile{*p.Profile}
			res, err := Fig5(cfg)
			if err != nil {
				return nil, "", err
			}
			return res, RenderFig5(res), nil
		}),
	},
	"replay": {
		Name:        "replay",
		Description: "Replay an uploaded trace through all four architectures",
		NeedsTrace:  true,
		run: configured(func(cfg ExpConfig, p Params) (any, string, error) {
			label := p.TraceLabel
			if label == "" {
				label = "trace"
			}
			res, err := Replay(cfg, label, p.Trace)
			if err != nil {
				return nil, "", err
			}
			return res, RenderReplay(res), nil
		}),
	},
}

// aliases maps the historical womsim -fig spellings to canonical names.
var aliases = map[string]string{
	"5": "fig5", "5a": "fig5", "5b": "fig5",
	"6": "fig6", "7": "fig7",
}

// LookupExperiment resolves a canonical name or womsim alias.
func LookupExperiment(name string) (Experiment, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := aliases[key]; ok {
		key = canon
	}
	exp, ok := registry[key]
	if !ok {
		return Experiment{}, fmt.Errorf("sim: unknown experiment %q (have %s)",
			name, strings.Join(ExperimentNames(), ", "))
	}
	return exp, nil
}

// Experiments lists the registry sorted by name.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ExperimentNames lists the canonical names sorted.
func ExperimentNames() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
