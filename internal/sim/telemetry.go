package sim

import (
	"context"

	"womcpcm/internal/core"
	"womcpcm/internal/pcm"
	"womcpcm/internal/probe"
	"womcpcm/internal/telemetry"
)

// TelemetryFunc receives finalized telemetry windows from an experiment that
// supports windowed collection (currently "replay", like progress). arch is
// the architecture label; callbacks may arrive concurrently from the
// parallel per-architecture simulations, but windows of one arch arrive in
// index order.
type TelemetryFunc func(arch string, w telemetry.Window)

// ClassCountsFunc receives one finished simulation's write-class totals,
// indexed by probe write kind (probe.WriteFlipNWrite … probe.WriteAlpha).
// Experiments running many simulations call it once per simulation;
// consumers accumulate.
type ClassCountsFunc func(counts [probe.NumWriteKinds]uint64)

type telemetryCtxKey struct{}
type classCountsCtxKey struct{}

// telemetryOpts is the context payload of WithTelemetry.
type telemetryOpts struct {
	f        TelemetryFunc
	windowNs int64
}

// WithTelemetry returns a context asking telemetry-capable experiments to
// collect epoch-windowed series and stream finalized windows to f.
// windowNs ≤ 0 selects telemetry.DefaultWindowNs.
func WithTelemetry(ctx context.Context, f TelemetryFunc, windowNs int64) context.Context {
	if f == nil {
		return ctx
	}
	return context.WithValue(ctx, telemetryCtxKey{}, &telemetryOpts{f: f, windowNs: windowNs})
}

// telemetryOf extracts the WithTelemetry payload; nil when absent.
func telemetryOf(ctx context.Context) *telemetryOpts {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(telemetryCtxKey{}).(*telemetryOpts)
	return o
}

// WithClassCounts returns a context asking experiments to attach a probe
// counter to every simulation and report its write-class totals to f. All
// experiments honor it (unlike windowed telemetry, it needs no record
// stream semantics — just the always-cheap CounterSink).
func WithClassCounts(ctx context.Context, f ClassCountsFunc) context.Context {
	if f == nil {
		return ctx
	}
	return context.WithValue(ctx, classCountsCtxKey{}, f)
}

// classCountsOf extracts the ClassCountsFunc from ctx; nil when absent.
func classCountsOf(ctx context.Context) ClassCountsFunc {
	if ctx == nil {
		return nil
	}
	f, _ := ctx.Value(classCountsCtxKey{}).(ClassCountsFunc)
	return f
}

// reportClassCounts delivers a counter sink's write-class totals to f.
func reportClassCounts(f ClassCountsFunc, cs *probe.CounterSink) {
	if f == nil || cs == nil {
		return
	}
	var counts [probe.NumWriteKinds]uint64
	for k := 0; k < probe.NumWriteKinds; k++ {
		counts[k] = cs.Count(probe.Kind(k))
	}
	f(counts)
}

// telemetryBanks counts the serially serviced resources behind one
// architecture's event stream: every bank, plus WCPCM's per-rank cache
// arrays.
func telemetryBanks(a core.Arch, g pcm.Geometry) int {
	n := g.Ranks * g.BanksPerRank
	if a == core.WCPCM {
		n += g.Ranks
	}
	return n
}
