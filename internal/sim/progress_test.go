package sim

import (
	"context"
	"sync"
	"testing"

	"womcpcm/internal/trace"
)

func progressTrace(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		op := trace.Write
		if i%3 == 0 {
			op = trace.Read
		}
		recs[i] = trace.Record{Op: op, Addr: uint64(i%512) * 16384, Time: int64(i) * 60}
	}
	return recs
}

// TestReplayProgress checks the replay experiment reports (done, total)
// through a WithProgress context: the total is len(recs) × 4 architectures,
// reports are strictly increasing under Parallelism 1, and the final report
// accounts for every record.
func TestReplayProgress(t *testing.T) {
	recs := progressTrace(3 * progressStride)
	var (
		mu      sync.Mutex
		reports [][2]int64
	)
	ctx := WithProgress(context.Background(), func(done, total int64) {
		mu.Lock()
		reports = append(reports, [2]int64{done, total})
		mu.Unlock()
	})
	cfg := ExpConfig{Requests: len(recs), Parallelism: 1, Ctx: ctx}
	if _, err := Replay(cfg, "progress", recs); err != nil {
		t.Fatal(err)
	}

	total := int64(len(recs)) * 4
	if len(reports) == 0 {
		t.Fatal("no progress reports")
	}
	last := int64(0)
	for _, r := range reports {
		if r[1] != total {
			t.Fatalf("reported total = %d, want %d", r[1], total)
		}
		if r[0] <= last || r[0] > total {
			t.Fatalf("report %d not in (%d, %d]", r[0], last, total)
		}
		last = r[0]
	}
	if last != total {
		t.Errorf("final report = %d, want %d", last, total)
	}
}

// TestReplayWithoutProgress checks a bare context replays identically: the
// progress decoration is skipped entirely when no func is attached.
func TestReplayWithoutProgress(t *testing.T) {
	recs := progressTrace(2000)
	cfg := ExpConfig{Requests: len(recs), Parallelism: 1}
	res, err := Replay(cfg, "plain", recs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != len(recs) {
		t.Errorf("records = %d, want %d", res.Records, len(recs))
	}
}
