package sim

import (
	"context"
	"sync"
	"testing"

	"womcpcm/internal/core"
	"womcpcm/internal/probe"
	"womcpcm/internal/telemetry"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

// TestReplayTelemetry checks the replay experiment streams windowed
// telemetry through a WithTelemetry context: all four architectures report,
// windows of one architecture arrive in index order, and the write-class
// totals match the replayed writes.
func TestReplayTelemetry(t *testing.T) {
	recs := progressTrace(4000)
	var (
		mu      sync.Mutex
		windows = map[string][]telemetry.Window{}
	)
	const windowNs = 10_000
	ctx := WithTelemetry(context.Background(), func(arch string, w telemetry.Window) {
		mu.Lock()
		windows[arch] = append(windows[arch], w)
		mu.Unlock()
	}, windowNs)
	cfg := ExpConfig{Requests: len(recs), Ctx: ctx}
	res, err := Replay(cfg, "telemetry", recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != len(core.Arches()) {
		t.Fatalf("got windows for %d architectures, want %d", len(windows), len(core.Arches()))
	}
	writes := 0
	for _, r := range recs {
		if r.Op == trace.Write {
			writes++
		}
	}
	for arch, ws := range windows {
		if len(ws) == 0 {
			t.Fatalf("%s: no windows", arch)
		}
		var total uint64
		for i, w := range ws {
			if w.Index != int64(i) {
				t.Fatalf("%s: window %d has index %d (out of order)", arch, i, w.Index)
			}
			if w.EndNs-w.StartNs != windowNs {
				t.Fatalf("%s: window %d width %d, want %d", arch, i, w.EndNs-w.StartNs, windowNs)
			}
			total += w.Writes.Total()
		}
		// Every demand write is classified exactly once; WCPCM adds victim
		// write-backs on top.
		if total < uint64(writes) {
			t.Errorf("%s: windowed writes %d < replayed writes %d", arch, total, writes)
		}
		// Demand latencies flow through the controller hook.
		var reads uint64
		for _, w := range ws {
			reads += w.Read.Count
		}
		if reads == 0 {
			t.Errorf("%s: no read latencies in any window", arch)
		}
	}
	// Telemetry must not perturb the simulation itself.
	plain, err := Replay(ExpConfig{Requests: len(recs)}, "telemetry", recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Runs {
		if res.Runs[i].WriteLatency.Mean() != plain.Runs[i].WriteLatency.Mean() {
			t.Errorf("%s: telemetry changed mean write latency", res.Runs[i].Arch)
		}
	}
}

// TestReplayClassCounts checks WithClassCounts delivers per-architecture
// write-class totals: four callbacks (one per architecture), each summing to
// at least the replayed demand writes.
func TestReplayClassCounts(t *testing.T) {
	recs := progressTrace(2000)
	var (
		mu    sync.Mutex
		calls [][probe.NumWriteKinds]uint64
	)
	ctx := WithClassCounts(context.Background(), func(c [probe.NumWriteKinds]uint64) {
		mu.Lock()
		calls = append(calls, c)
		mu.Unlock()
	})
	if _, err := Replay(ExpConfig{Requests: len(recs), Ctx: ctx}, "classes", recs); err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(core.Arches()) {
		t.Fatalf("got %d class-count reports, want %d", len(calls), len(core.Arches()))
	}
	for i, c := range calls {
		var sum uint64
		for _, n := range c {
			sum += n
		}
		if sum == 0 {
			t.Errorf("report %d: all class counts zero", i)
		}
	}
}

// TestRunArchClassCounts checks synthetic-benchmark experiments honor
// WithClassCounts too (the womd /metrics feed must cover every job type).
func TestRunArchClassCounts(t *testing.T) {
	var (
		mu  sync.Mutex
		sum uint64
	)
	ctx := WithClassCounts(context.Background(), func(c [probe.NumWriteKinds]uint64) {
		mu.Lock()
		for _, n := range c {
			sum += n
		}
		mu.Unlock()
	})
	cfg := ExpConfig{Requests: 500, Ctx: ctx, Profiles: workload.Profiles()[:1]}
	if _, err := Fig5(cfg); err != nil {
		t.Fatal(err)
	}
	if sum == 0 {
		t.Error("no write-class counts reported from Fig5")
	}
}
