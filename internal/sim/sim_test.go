package sim

import (
	"errors"
	"strings"
	"testing"

	"womcpcm/internal/core"
	"womcpcm/internal/pcm"
	"womcpcm/internal/workload"
)

// fastConfig keeps experiment tests quick: a reduced geometry, two
// benchmarks, short traces.
func fastConfig(t *testing.T) ExpConfig {
	t.Helper()
	qsort, err := workload.ProfileByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	h264, err := workload.ProfileByName("464.h264ref")
	if err != nil {
		t.Fatal(err)
	}
	return ExpConfig{
		Geometry: pcm.Geometry{Ranks: 4, BanksPerRank: 32, RowsPerBank: 2048,
			ColsPerRow: 256, BitsPerCol: 4, Devices: 16},
		Requests: 20000,
		Seed:     7,
		Profiles: []workload.Profile{qsort, h264},
	}
}

func TestFig5ShapeAndAverages(t *testing.T) {
	res, err := Fig5(fastConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Write[core.Baseline] != 1 || row.Read[core.Baseline] != 1 {
			t.Errorf("%s: baseline not normalized to 1", row.Benchmark)
		}
		// The paper's headline ordering per benchmark: every architecture
		// beats baseline on writes, and refresh beats plain WOM.
		for _, a := range []core.Arch{core.WOMCode, core.Refresh, core.WCPCM} {
			if row.Write[a] >= 1 {
				t.Errorf("%s: %s write %.3f not below baseline", row.Benchmark, a, row.Write[a])
			}
		}
		if row.Write[core.Refresh] >= row.Write[core.WOMCode] {
			t.Errorf("%s: refresh %.3f not better than WOM %.3f",
				row.Benchmark, row.Write[core.Refresh], row.Write[core.WOMCode])
		}
		if row.AlphaFraction[core.Refresh] >= row.AlphaFraction[core.WOMCode] {
			t.Errorf("%s: refresh α-fraction %.3f not below WOM %.3f",
				row.Benchmark, row.AlphaFraction[core.Refresh], row.AlphaFraction[core.WOMCode])
		}
		if row.CacheHitRate <= 0 || row.CacheHitRate > 1 {
			t.Errorf("%s: cache hit rate %.3f out of range", row.Benchmark, row.CacheHitRate)
		}
	}
	if res.WriteReduction(core.Refresh) <= res.WriteReduction(core.WOMCode) {
		t.Error("average refresh write reduction not above WOM")
	}
	if res.ReadReduction(core.WOMCode) <= 0 {
		t.Error("WOM read reduction not positive")
	}
	out := RenderFig5(res)
	for _, want := range []string{"Fig. 5(a)", "Fig. 5(b)", "qsort", "464.h264ref", "average", "20.1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig6HitRatesFall(t *testing.T) {
	res, err := Fig6(fastConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BanksPerRank) != 4 || len(res.Mean) != 4 {
		t.Fatalf("bank sweep shape: %v", res.BanksPerRank)
	}
	for i := 1; i < len(res.Mean); i++ {
		if res.Mean[i] >= res.Mean[i-1] {
			t.Errorf("mean hit rate not decreasing: %v", res.Mean)
		}
	}
	for _, row := range res.Rows {
		if row.HitRate[0] <= row.HitRate[len(row.HitRate)-1] {
			t.Errorf("%s: hit rate did not fall from 4 to 32 banks/rank: %v", row.Benchmark, row.HitRate)
		}
	}
	if out := RenderFig6(res); !strings.Contains(out, "banks/rank") {
		t.Error("render broken")
	}
}

func TestFig7Normalization(t *testing.T) {
	res, err := Fig7(fastConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.NormWrite[0] != 1 {
			t.Errorf("%s: 4 banks/rank not normalized to 1", row.Benchmark)
		}
		for _, v := range row.NormWrite {
			if v <= 0 || v > 2 {
				t.Errorf("%s: implausible normalized latency %v", row.Benchmark, v)
			}
		}
	}
	if out := RenderFig7(res); !strings.Contains(out, "normalized to 4 banks/rank") {
		t.Error("render broken")
	}
}

func TestRthSweep(t *testing.T) {
	res, err := RthSweep(fastConfig(t), []float64{0, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NormWrite) != 2 {
		t.Fatal("sweep shape")
	}
	// A permissive threshold must refresh at least as often as a strict one
	// and never lose on write latency.
	if res.Refreshes[0] < res.Refreshes[1] {
		t.Errorf("refreshes: r_th=0 %d < r_th=50 %d", res.Refreshes[0], res.Refreshes[1])
	}
	if res.NormWrite[0] > res.NormWrite[1]+0.02 {
		t.Errorf("r_th=0 write latency %.3f worse than r_th=50 %.3f", res.NormWrite[0], res.NormWrite[1])
	}
	if out := RenderRthSweep(res); !strings.Contains(out, "r_th") {
		t.Error("render broken")
	}
}

func TestOrgAblation(t *testing.T) {
	res, err := OrgAblation(fastConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// Hidden-page pays a small penalty over wide-column on both metrics.
	if res.HiddenWrite < res.WideWrite {
		t.Errorf("hidden-page write %.3f below wide-column %.3f", res.HiddenWrite, res.WideWrite)
	}
	if res.HiddenRead < res.WideRead {
		t.Errorf("hidden-page read %.3f below wide-column %.3f", res.HiddenRead, res.WideRead)
	}
	if out := RenderOrgAblation(res); !strings.Contains(out, "wide-column") {
		t.Error("render broken")
	}
}

func TestPausingAblation(t *testing.T) {
	res, err := PausingAblation(fastConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// Write pausing must not hurt write latency (it exists to protect
	// demand accesses from refresh blocking).
	if res.WithWrite > res.WithoutWrite+0.02 {
		t.Errorf("pausing write %.3f worse than no pausing %.3f", res.WithWrite, res.WithoutWrite)
	}
	if out := RenderPausingAblation(res); !strings.Contains(out, "pausing") {
		t.Error("render broken")
	}
}

func TestCodeAblation(t *testing.T) {
	res, err := CodeAblation(fastConfig(t), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Bound must decrease with k, and k=2's bound matches §3.2.
	if !(res.Bound[0] > res.Bound[1] && res.Bound[1] > res.Bound[2]) {
		t.Errorf("bounds not decreasing: %v", res.Bound)
	}
	if diff := res.Bound[1] - (2-1+3.75)/(2*3.75); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("k=2 bound = %v", res.Bound[1])
	}
	// Measured latency must improve (or at worst stay) as k grows.
	if res.NormWrite[2] > res.NormWrite[0]+0.02 {
		t.Errorf("k=4 latency %.3f worse than k=1 %.3f", res.NormWrite[2], res.NormWrite[0])
	}
	if out := RenderCodeAblation(res); !strings.Contains(out, "rewrite budget") {
		t.Error("render broken")
	}
}

// TestPaperConstants pins the reference numbers used in reports.
func TestPaperConstants(t *testing.T) {
	if PaperWriteReductionPct[core.Refresh] != 54.9 || PaperReadReductionPct[core.WCPCM] != 44.0 {
		t.Error("paper reference constants drifted")
	}
	if PaperBestWOMBenchmark != "464.h264ref" || PaperWCPCMOverheadPct != 4.7 {
		t.Error("paper callouts drifted")
	}
}

// TestExpConfigDefaults: the zero config normalizes to the paper setup.
func TestExpConfigDefaults(t *testing.T) {
	c := ExpConfig{}.normalize()
	if c.Geometry != pcm.DefaultGeometry() {
		t.Error("geometry default")
	}
	if c.Requests != 200000 || c.Seed != 1 {
		t.Errorf("defaults: requests %d seed %d", c.Requests, c.Seed)
	}
	if len(c.Profiles) != 20 {
		t.Errorf("default profiles = %d", len(c.Profiles))
	}
	if c.Parallelism < 1 {
		t.Error("parallelism default")
	}
}

// TestParMapPropagatesErrors: worker errors surface.
func TestParMapPropagatesErrors(t *testing.T) {
	sentinel := errors.New("boom")
	err := parMap(10, 4, func(i int) error {
		if i == 7 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
	if err := parMap(0, 4, func(int) error { return nil }); err != nil {
		t.Errorf("empty parMap: %v", err)
	}
}

func TestSchedulingAblation(t *testing.T) {
	res, err := SchedulingAblation(fastConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 5 {
		t.Fatalf("variants = %v", res.Variants)
	}
	idx := map[string]int{}
	for i, v := range res.Variants {
		idx[v] = i
	}
	// Scheduling improves reads but not writes; WOM improves writes.
	if res.Read[idx["rd-prio + cancellation"]] >= 1 {
		t.Errorf("cancellation read latency %.3f not below baseline", res.Read[idx["rd-prio + cancellation"]])
	}
	if res.Write[idx["WOM-code PCM"]] >= res.Write[idx["rd-prio + cancellation"]] {
		t.Errorf("WOM write %.3f not below scheduled write %.3f",
			res.Write[idx["WOM-code PCM"]], res.Write[idx["rd-prio + cancellation"]])
	}
	// Coding and scheduling compose: the combination beats WOM alone on reads.
	if res.Read[idx["WOM + scheduling"]] >= res.Read[idx["WOM-code PCM"]] {
		t.Errorf("combined read %.3f not below WOM-only read %.3f",
			res.Read[idx["WOM + scheduling"]], res.Read[idx["WOM-code PCM"]])
	}
	if res.Cancels[idx["rd-prio + cancellation"]] == 0 {
		t.Error("no cancellations recorded")
	}
	if out := RenderSchedulingAblation(res); !strings.Contains(out, "cancellation") {
		t.Error("render broken")
	}
}

func TestHybridAblation(t *testing.T) {
	res, err := HybridAblation(fastConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.HybridWrite >= res.WCPCMWrite {
		t.Errorf("hybrid write %.3f not below WCPCM %.3f (DRAM should be faster)",
			res.HybridWrite, res.WCPCMWrite)
	}
	if res.WCPCMWrite >= 1 || res.HybridWrite >= 1 {
		t.Error("cached architectures not below baseline")
	}
	if res.Retention <= 0 || res.Retention > 1.1 {
		t.Errorf("retention = %.3f out of plausible range", res.Retention)
	}
	if out := RenderHybridAblation(res); !strings.Contains(out, "pure PCM") {
		t.Error("render broken")
	}
}

func TestChannelScaling(t *testing.T) {
	// Needs a longer trace than fastConfig's: striping splits every row's
	// writes across per-channel copies, so short traces double-count
	// cold-start α-writes and mask the scaling benefit.
	cfg := fastConfig(t)
	cfg.Requests = 80000
	res, err := ChannelScaling(cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NormWrite[0] != 1 || res.NormRead[0] != 1 {
		t.Error("1-channel baseline not normalized to 1")
	}
	// More channels never hurt (less per-channel contention).
	if res.NormWrite[1] > 1.01 || res.NormRead[1] > 1.01 {
		t.Errorf("2 channels worse than 1: write %.3f read %.3f", res.NormWrite[1], res.NormRead[1])
	}
	if out := RenderChannelScaling(res); !strings.Contains(out, "channel scaling") {
		t.Error("render broken")
	}
}
