package sim

import "womcpcm/internal/core"

// The paper's reported results (§1 abstract and §5), used by the reporting
// layer and EXPERIMENTS.md to print paper-vs-measured side by side.
var (
	// PaperWriteReductionPct: average write latency reduction versus
	// conventional PCM, Fig. 5(a).
	PaperWriteReductionPct = map[core.Arch]float64{
		core.WOMCode: 20.1,
		core.Refresh: 54.9,
		core.WCPCM:   47.2,
	}
	// PaperReadReductionPct: average read latency reduction, Fig. 5(b).
	PaperReadReductionPct = map[core.Arch]float64{
		core.WOMCode: 10.2,
		core.Refresh: 47.9,
		core.WCPCM:   44.0,
	}
)

// Paper per-benchmark callouts (§5).
const (
	// PaperBestWOMBenchmark had the largest WOM-code improvement: 39.2 %.
	PaperBestWOMBenchmark = "464.h264ref"
	PaperBestWOMWritePct  = 39.2
	// PaperBestRefreshWritePct is 464.h264ref's PCM-refresh improvement.
	PaperBestRefreshWritePct = 65.3
	// PaperWCPCMOverheadPct is the §4 memory overhead claim at 32
	// banks/rank: 1.5/32.
	PaperWCPCMOverheadPct = 4.7
)
