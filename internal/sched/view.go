package sched

import (
	"fmt"
	"io"
)

// TenantView is one tenant's live state in GET /v1/tenants: its configured
// class, queue occupancy, admission counters, and SLO attainment.
type TenantView struct {
	Name        string `json:"name"`
	Weight      int    `json:"weight"`
	Priority    int    `json:"priority"`
	MaxInflight int    `json:"max_inflight,omitempty"`
	DeadlineMs  int64  `json:"deadline_ms,omitempty"`
	// ShedAtDepth is the total queued depth at which this tenant's
	// submissions are shed (the graduated threshold).
	ShedAtDepth int `json:"shed_at_depth"`
	// Removed marks a tenant dropped by a config reload that is still
	// draining queued or running work.
	Removed bool `json:"removed,omitempty"`

	Depth    int    `json:"depth"`
	Inflight int    `json:"inflight"`
	Admits   uint64 `json:"admits"`
	Sheds    uint64 `json:"sheds"`
	Dequeues uint64 `json:"dequeues"`
	// ShedReasons breaks Sheds down by reason.
	ShedReasons map[string]uint64 `json:"shed_reasons,omitempty"`

	// SLOMet counts dequeued jobs that started within their deadline;
	// SLOAttainment is SLOMet/Dequeues (1 when nothing has been dequeued —
	// an SLO with no traffic is vacuously met).
	SLOMet        uint64  `json:"slo_met"`
	SLOAttainment float64 `json:"slo_attainment"`

	// Windowed attainment over the trailing 1m/5m/30m of dequeues — the
	// recent signal the lifetime ratio above flattens out of, and the
	// burn-rate input for internal/health. 1 when the window saw no
	// dequeues.
	SLOAttainment1m  float64 `json:"slo_attainment_1m"`
	SLOAttainment5m  float64 `json:"slo_attainment_5m"`
	SLOAttainment30m float64 `json:"slo_attainment_30m"`

	// Queue-wait distribution observed at dequeue, milliseconds.
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP95Ms float64 `json:"queue_wait_p95_ms"`
	QueueWaitMaxMs float64 `json:"queue_wait_max_ms"`
}

// Views snapshots every tenant in configuration order (removed tenants
// last).
func (s *Scheduler) Views() []TenantView {
	s.mu.Lock()
	defer s.mu.Unlock()
	nowSec := s.now().Unix()
	out := make([]TenantView, 0, len(s.order))
	for _, name := range s.order {
		t := s.ten[name]
		v := TenantView{
			Name:        t.cls.Name,
			Weight:      t.cls.Weight,
			Priority:    t.cls.Priority,
			MaxInflight: t.cls.MaxInflight,
			DeadlineMs:  t.cls.DeadlineMs,
			ShedAtDepth: t.shedAt,
			Removed:     t.removed,
			Depth:       t.items.Len(),
			Inflight:    t.inflight,
			Admits:      t.admits,
			Sheds:       t.sheds,
			Dequeues:    t.dequeues,
			SLOMet:      t.sloMet,
		}
		if len(t.shedWhy) > 0 {
			v.ShedReasons = make(map[string]uint64, len(t.shedWhy))
			for k, n := range t.shedWhy {
				v.ShedReasons[k] = n
			}
		}
		if t.dequeues > 0 {
			v.SLOAttainment = float64(t.sloMet) / float64(t.dequeues)
		} else {
			v.SLOAttainment = 1
		}
		v.SLOAttainment1m = t.slo.attainment(nowSec, 60)
		v.SLOAttainment5m = t.slo.attainment(nowSec, 300)
		v.SLOAttainment30m = t.slo.attainment(nowSec, 1800)
		snap := t.wait.Snapshot()
		if snap.Count > 0 {
			v.QueueWaitP50Ms = float64(t.wait.Quantile(0.5)) / 1e6
			v.QueueWaitP95Ms = float64(t.wait.Quantile(0.95)) / 1e6
			v.QueueWaitMaxMs = float64(t.wait.Quantile(1)) / 1e6
		}
		out = append(out, v)
	}
	return out
}

// WriteProm renders the womd_tenant_* metric families in Prometheus text
// exposition format — wired into GET /metrics via engine.WithPromAppender
// when womd runs with -tenants.
func (s *Scheduler) WriteProm(w io.Writer) {
	views := s.Views()
	if len(views) == 0 {
		return
	}
	family := func(name, help, typ string, emit func(v TenantView)) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, v := range views {
			emit(v)
		}
	}
	family("womd_tenant_depth", "Queued jobs per tenant.", "gauge", func(v TenantView) {
		fmt.Fprintf(w, "womd_tenant_depth{tenant=%q} %d\n", v.Name, v.Depth)
	})
	family("womd_tenant_inflight", "Executing jobs per tenant.", "gauge", func(v TenantView) {
		fmt.Fprintf(w, "womd_tenant_inflight{tenant=%q} %d\n", v.Name, v.Inflight)
	})
	family("womd_tenant_admitted_total", "Jobs admitted per tenant.", "counter", func(v TenantView) {
		fmt.Fprintf(w, "womd_tenant_admitted_total{tenant=%q} %d\n", v.Name, v.Admits)
	})
	family("womd_tenant_dequeued_total", "Jobs handed to workers per tenant.", "counter", func(v TenantView) {
		fmt.Fprintf(w, "womd_tenant_dequeued_total{tenant=%q} %d\n", v.Name, v.Dequeues)
	})
	family("womd_tenant_slo_met_total", "Dequeued jobs that started within their deadline.", "counter", func(v TenantView) {
		fmt.Fprintf(w, "womd_tenant_slo_met_total{tenant=%q} %d\n", v.Name, v.SLOMet)
	})
	family("womd_tenant_slo_attainment", "Fraction of dequeued jobs that met their deadline.", "gauge", func(v TenantView) {
		fmt.Fprintf(w, "womd_tenant_slo_attainment{tenant=%q} %g\n", v.Name, v.SLOAttainment)
	})
	family("womd_tenant_shed_at_depth", "Total queued depth at which this tenant sheds.", "gauge", func(v TenantView) {
		fmt.Fprintf(w, "womd_tenant_shed_at_depth{tenant=%q} %d\n", v.Name, v.ShedAtDepth)
	})
	family("womd_tenant_slo_attainment_window", "Fraction of dequeues meeting their deadline over a trailing window.", "gauge", func(v TenantView) {
		fmt.Fprintf(w, "womd_tenant_slo_attainment_window{tenant=%q,window=\"1m\"} %g\n", v.Name, v.SLOAttainment1m)
		fmt.Fprintf(w, "womd_tenant_slo_attainment_window{tenant=%q,window=\"5m\"} %g\n", v.Name, v.SLOAttainment5m)
		fmt.Fprintf(w, "womd_tenant_slo_attainment_window{tenant=%q,window=\"30m\"} %g\n", v.Name, v.SLOAttainment30m)
	})
	// Shed counts carry a reason label; emit a zero "queue_full" sample for
	// tenants with no sheds so every tenant has a series.
	fmt.Fprintf(w, "# HELP womd_tenant_shed_total Jobs shed per tenant by reason.\n"+
		"# TYPE womd_tenant_shed_total counter\n")
	for _, v := range views {
		if len(v.ShedReasons) == 0 {
			fmt.Fprintf(w, "womd_tenant_shed_total{tenant=%q,reason=\"queue_full\"} 0\n", v.Name)
			continue
		}
		for _, reason := range []string{"queue_full", "priority_shed", "tenant_queue_full"} {
			if n, ok := v.ShedReasons[reason]; ok {
				fmt.Fprintf(w, "womd_tenant_shed_total{tenant=%q,reason=%q} %d\n", v.Name, reason, n)
			}
		}
	}
	fmt.Fprintf(w, "# HELP womd_tenant_queue_wait_p95_seconds Per-tenant p95 queue wait observed at dequeue.\n"+
		"# TYPE womd_tenant_queue_wait_p95_seconds gauge\n")
	for _, v := range views {
		fmt.Fprintf(w, "womd_tenant_queue_wait_p95_seconds{tenant=%q} %g\n", v.Name, v.QueueWaitP95Ms/1e3)
	}
}
