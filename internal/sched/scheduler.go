package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"

	"womcpcm/internal/stats"
)

// strideScale is the stride-scheduling numerator: a tenant's pass advances
// by strideScale/weight per dequeue, so higher weights advance slower and
// are picked more often.
const strideScale = 1 << 20

// Retry-After clamp for shed responses.
const (
	minRetryAfter = 1 * time.Second
	maxRetryAfter = 60 * time.Second
)

// ErrClosed rejects enqueues after Close.
var ErrClosed = errors.New("sched: scheduler closed")

// ShedError is a rejected admission: which tenant was shed, why, and how
// long the client should back off (computed from the observed drain rate).
// Reasons: "queue_full" (global bound), "priority_shed" (graduated shed of
// a lower-priority tenant), "tenant_queue_full" (per-tenant depth cap).
type ShedError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
	// TraceID is the shed submission's distributed-trace id, filled in by
	// the engine (which owns tracing) so a 429 body can be joined back to
	// its trace. Not part of Error() — purely machine-readable annotation.
	TraceID string
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("sched: tenant %q shed (%s); retry after %s",
		e.Tenant, e.Reason, e.RetryAfter)
}

// Item is one unit of queued work. Payload is opaque to the scheduler.
type Item struct {
	// Tenant names the submitting class; unknown or empty names map to the
	// config's default tenant.
	Tenant string
	// AdmittedAt is the item's first admission time; zero means now. A job
	// re-dispatched by the cluster layer carries its original admission
	// time so its deadline does not restart.
	AdmittedAt time.Time
	// Deadline overrides the tenant's deadline budget when non-zero.
	Deadline time.Time
	// Payload travels through untouched.
	Payload any
}

// queued is one heap entry: the item plus its resolved EDF key.
type queued struct {
	item     Item
	deadline time.Time // zero = none (sorts after every real deadline)
	seq      uint64    // admission order, the EDF tie-break
}

// itemHeap is an EDF min-heap: earliest deadline first, items without a
// deadline after every dated one, admission order breaking ties.
type itemHeap []*queued

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	di, dj := h[i].deadline, h[j].deadline
	switch {
	case di.IsZero() && dj.IsZero():
		return h[i].seq < h[j].seq
	case di.IsZero():
		return false
	case dj.IsZero():
		return true
	case di.Equal(dj):
		return h[i].seq < h[j].seq
	default:
		return di.Before(dj)
	}
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(*queued)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// tenantState is one tenant's live scheduling state. Counters survive
// Reload so operators do not lose history on a SIGHUP.
type tenantState struct {
	cls     TenantClass
	items   itemHeap
	pass    uint64 // stride virtual time; min pass is dequeued next
	stride  uint64 // strideScale / weight
	shedAt  int    // total-depth threshold at which this tenant sheds
	removed bool   // dropped by Reload; drains, takes no new work

	inflight int
	admits   uint64
	sheds    uint64
	dequeues uint64
	sloMet   uint64
	slo      *sloRing // windowed attainment, the burn-rate input
	shedWhy  map[string]uint64
	wait     stats.Latency // queue-wait distribution, observed at dequeue
}

// Scheduler is the multi-tenant queue. All methods are safe for concurrent
// use; Dequeue blocks until work is available or Close drains the last
// item.
type Scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cfg    Config
	ten    map[string]*tenantState
	order  []string // stable view/pick order: config order, removed last
	depth  int
	seq    uint64
	closed bool
	drain  RateTracker
	now    func() time.Time // test clock hook
}

// New builds a scheduler from a validated config (use ParseConfig or
// LoadConfig; New normalizes defaults itself for programmatic configs).
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg: cfg,
		ten: make(map[string]*tenantState, len(cfg.Tenants)),
		now: time.Now,
	}
	s.cond = sync.NewCond(&s.mu)
	thresholds := shedThresholds(cfg)
	for _, cls := range cfg.Tenants {
		s.ten[cls.Name] = &tenantState{
			cls:     cls,
			stride:  strideScale / uint64(cls.Weight),
			shedAt:  thresholds[cls.Name],
			slo:     newSLORing(),
			shedWhy: make(map[string]uint64),
		}
		s.order = append(s.order, cls.Name)
	}
	return s
}

// Canonical maps a submitted tenant name onto the class that will serve
// it: a configured, non-removed tenant keeps its name; anything else is
// the default tenant.
func (s *Scheduler) Canonical(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.canonicalLocked(name)
}

func (s *Scheduler) canonicalLocked(name string) string {
	if t, ok := s.ten[name]; ok && !t.removed {
		return name
	}
	return s.cfg.DefaultTenant
}

// Enqueue admits one item or sheds it. The returned error is a *ShedError
// (admission refused, back off) or ErrClosed. On success the resolved
// tenant name is returned — callers record it so Done releases the right
// in-flight slot even when the submitted name mapped to the default.
func (s *Scheduler) Enqueue(it Item) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	name := s.canonicalLocked(it.Tenant)
	t := s.ten[name]
	if t.cls.QueueDepth > 0 && t.items.Len() >= t.cls.QueueDepth {
		return "", s.shedLocked(t, "tenant_queue_full", t.items.Len()-t.cls.QueueDepth+1)
	}
	if s.depth >= t.shedAt {
		reason := "priority_shed"
		if t.shedAt >= s.cfg.MaxDepth {
			reason = "queue_full"
		}
		return "", s.shedLocked(t, reason, s.depth-t.shedAt+1)
	}
	admitted := it.AdmittedAt
	if admitted.IsZero() {
		admitted = s.now()
	}
	deadline := it.Deadline
	if deadline.IsZero() && t.cls.DeadlineMs > 0 {
		deadline = admitted.Add(time.Duration(t.cls.DeadlineMs) * time.Millisecond)
	}
	it.Tenant, it.AdmittedAt, it.Deadline = name, admitted, deadline
	s.seq++
	if t.items.Len() == 0 {
		// A tenant returning from idle resumes at the current virtual time
		// instead of cashing in banked credit from its idle period.
		t.pass = max(t.pass, s.minActivePassLocked())
	}
	heap.Push(&t.items, &queued{item: it, deadline: deadline, seq: s.seq})
	s.depth++
	t.admits++
	s.cond.Signal()
	return name, nil
}

// shedLocked records one shed and builds its error. excess sizes the
// Retry-After: how many dequeues must happen before this admission would
// clear its threshold.
func (s *Scheduler) shedLocked(t *tenantState, reason string, excess int) *ShedError {
	t.sheds++
	t.shedWhy[reason]++
	return &ShedError{
		Tenant:     t.cls.Name,
		Reason:     reason,
		RetryAfter: s.drain.RetryAfter(excess),
	}
}

// Dequeue blocks for the next item under the scheduling policy: among
// tenants with queued work and free in-flight slots, the minimum stride
// pass wins; within the winner, the earliest deadline. It returns ok=false
// once the scheduler is closed and drained.
func (s *Scheduler) Dequeue() (Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t := s.pickLocked(); t != nil {
			q := heap.Pop(&t.items).(*queued)
			s.depth--
			t.pass += t.stride
			t.inflight++
			t.dequeues++
			now := s.now()
			t.wait.Observe(now.Sub(q.item.AdmittedAt).Nanoseconds())
			met := q.deadline.IsZero() || !now.After(q.deadline)
			if met {
				t.sloMet++
			}
			t.slo.observe(now.Unix(), met)
			s.drain.Observe(now)
			// Another item may be immediately runnable by a second worker.
			s.cond.Signal()
			return q.item, true
		}
		if s.closed && s.depth == 0 {
			return Item{}, false
		}
		s.cond.Wait()
	}
}

// pickLocked selects the dequeue winner: the backlogged, un-capped tenant
// with the minimum pass, ties broken by priority then name for
// determinism.
func (s *Scheduler) pickLocked() *tenantState {
	var best *tenantState
	for _, name := range s.order {
		t := s.ten[name]
		if t.items.Len() == 0 {
			continue
		}
		if t.cls.MaxInflight > 0 && t.inflight >= t.cls.MaxInflight {
			continue
		}
		if best == nil || t.pass < best.pass ||
			(t.pass == best.pass && t.cls.Priority < best.cls.Priority) {
			best = t
		}
	}
	return best
}

// minActivePassLocked is the smallest pass among backlogged tenants — the
// current virtual time an idle tenant rejoins at (0 when none are
// backlogged, i.e. virtual time is wherever the newcomer left off).
func (s *Scheduler) minActivePassLocked() uint64 {
	var min uint64
	found := false
	for _, t := range s.ten {
		if t.items.Len() == 0 {
			continue
		}
		if !found || t.pass < min {
			min, found = t.pass, true
		}
	}
	return min
}

// Done releases one in-flight slot for the named tenant (the canonical
// name Enqueue returned). It must be called exactly once per dequeued
// item, after execution finishes.
func (s *Scheduler) Done(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.ten[tenant]; ok && t.inflight > 0 {
		t.inflight--
		if t.removed && t.items.Len() == 0 && t.inflight == 0 {
			s.dropLocked(tenant)
		}
		s.cond.Signal()
	}
}

// Depth reports the total queued items.
func (s *Scheduler) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth
}

// Close stops admissions. Queued items keep draining through Dequeue;
// once empty, Dequeue returns ok=false.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Reload swaps the tenant configuration in place: existing tenants keep
// their counters and queued work under the new class parameters, new
// tenants join, and tenants missing from the new config are marked removed
// — they drain what they hold, then disappear; new submissions under their
// name land on the (possibly new) default tenant.
func (s *Scheduler) Reload(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	thresholds := shedThresholds(cfg)
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := make(map[string]bool, len(cfg.Tenants))
	order := make([]string, 0, len(cfg.Tenants))
	for _, cls := range cfg.Tenants {
		keep[cls.Name] = true
		order = append(order, cls.Name)
		if t, ok := s.ten[cls.Name]; ok {
			t.cls = cls
			t.stride = strideScale / uint64(cls.Weight)
			t.shedAt = thresholds[cls.Name]
			t.removed = false
			continue
		}
		s.ten[cls.Name] = &tenantState{
			cls:     cls,
			stride:  strideScale / uint64(cls.Weight),
			shedAt:  thresholds[cls.Name],
			slo:     newSLORing(),
			shedWhy: make(map[string]uint64),
		}
	}
	for name, t := range s.ten {
		if keep[name] {
			continue
		}
		if t.items.Len() == 0 && t.inflight == 0 {
			s.dropLocked(name)
			continue
		}
		// Still holds work: drain under its old parameters, admit nothing
		// new (canonicalLocked routes its name to the default tenant).
		t.removed = true
		order = append(order, name)
	}
	s.cfg = cfg
	s.order = order
	// Raised caps or a larger MaxDepth may unblock waiting workers.
	s.cond.Broadcast()
	return nil
}

func (s *Scheduler) dropLocked(name string) {
	delete(s.ten, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}
