package sched

import "time"

// RateTracker observes dequeue times and estimates a queue's drain rate as
// an EWMA of inter-dequeue intervals. Shed responses turn it into a
// Retry-After: how long until the backlog excess ahead of a retried
// submission will have drained. It is unsynchronized — callers (the
// scheduler, the engine's FIFO queue) guard it with their own lock.
type RateTracker struct {
	last   time.Time
	ewmaNs float64 // smoothed nanoseconds per dequeue; 0 = no observation yet
}

// ewmaAlpha weights the newest interval; ~0.2 reacts within a few dequeues
// without tracking every jitter.
const ewmaAlpha = 0.2

// Observe records one dequeue at t.
func (r *RateTracker) Observe(t time.Time) {
	if !r.last.IsZero() {
		iv := float64(t.Sub(r.last).Nanoseconds())
		if iv < 1 {
			iv = 1
		}
		if r.ewmaNs == 0 {
			r.ewmaNs = iv
		} else {
			r.ewmaNs = ewmaAlpha*iv + (1-ewmaAlpha)*r.ewmaNs
		}
	}
	r.last = t
}

// RetryAfter estimates when excess items will have drained, clamped to
// [minRetryAfter, maxRetryAfter]. With no drain observed yet (a queue that
// filled before anything was dequeued) it reports the minimum — the
// honest answer is "soon, probably", not a 60 s lockout.
func (r *RateTracker) RetryAfter(excess int) time.Duration {
	if excess < 1 {
		excess = 1
	}
	if r.ewmaNs <= 0 {
		return minRetryAfter
	}
	d := time.Duration(float64(excess) * r.ewmaNs)
	if d < minRetryAfter {
		return minRetryAfter
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}
