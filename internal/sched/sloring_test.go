package sched

import (
	"testing"
	"time"
)

func TestSLORingWindowSums(t *testing.T) {
	r := newSLORing()
	base := int64(1_000_000)
	// Three seconds of traffic: 2/2 met, 1/3 met, 0/1 met.
	r.observe(base, true)
	r.observe(base, true)
	r.observe(base+1, true)
	r.observe(base+1, false)
	r.observe(base+1, false)
	r.observe(base+2, false)

	met, total := r.window(base+2, 3)
	if met != 3 || total != 6 {
		t.Fatalf("window(3s) = %d/%d, want 3/6", met, total)
	}
	// Trailing single second only sees the miss.
	met, total = r.window(base+2, 1)
	if met != 0 || total != 1 {
		t.Fatalf("window(1s) = %d/%d, want 0/1", met, total)
	}
	// A window ending later slides the old seconds out.
	met, total = r.window(base+4, 2)
	if met != 0 || total != 0 {
		t.Fatalf("aged window = %d/%d, want 0/0", met, total)
	}
	if got := r.attainment(base+2, 3); got != 0.5 {
		t.Fatalf("attainment = %g, want 0.5", got)
	}
	if got := r.attainment(base+100, 3); got != 1 {
		t.Fatalf("empty-window attainment = %g, want vacuous 1", got)
	}
}

func TestSLORingLapOverwrite(t *testing.T) {
	r := newSLORing()
	base := int64(5_000)
	r.observe(base, false)
	// One full lap later the same bucket index holds a different second;
	// the stale sample must not leak into sums for either second.
	lap := base + int64(sloRingSeconds)
	r.observe(lap, true)
	if met, total := r.window(lap, 1); met != 1 || total != 1 {
		t.Fatalf("post-lap window = %d/%d, want 1/1", met, total)
	}
	if _, total := r.window(base, 1); total != 0 {
		t.Fatalf("pre-lap second still answers with %d samples after overwrite", total)
	}
	// Window longer than the ring is clamped, not wrapped.
	if met, total := r.window(lap, 10*sloRingSeconds); met != 1 || total != 1 {
		t.Fatalf("clamped window = %d/%d, want 1/1", met, total)
	}
}

// TestWindowedAttainment drives the scheduler with a fake clock and checks
// that the windowed view recovers where the lifetime ratio flatlines.
func TestWindowedAttainment(t *testing.T) {
	s := New(Config{
		MaxDepth: 100,
		Tenants: []TenantClass{
			{Name: "interactive", Weight: 4, DeadlineMs: 50},
		},
	})
	now := time.Unix(10_000, 0)
	s.now = func() time.Time { return now }

	// Phase 1: four misses (admitted far in the past, deadline long gone).
	for i := 0; i < 4; i++ {
		if _, err := s.Enqueue(Item{Tenant: "interactive", AdmittedAt: now.Add(-10 * time.Second)}); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
		s.Done("interactive")
	}
	met, total, ok := s.WindowSLO("interactive", time.Minute)
	if !ok || met != 0 || total != 4 {
		t.Fatalf("overload WindowSLO = %d/%d ok=%v, want 0/4 true", met, total, ok)
	}

	// Phase 2: two minutes later, four fresh dequeues all meet the SLO.
	now = now.Add(2 * time.Minute)
	for i := 0; i < 4; i++ {
		if _, err := s.Enqueue(Item{Tenant: "interactive"}); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
		s.Done("interactive")
	}

	views := s.Views()
	if len(views) != 1 {
		t.Fatalf("views = %d, want 1", len(views))
	}
	v := views[0]
	if v.SLOAttainment != 0.5 {
		t.Fatalf("lifetime attainment = %g, want 0.5", v.SLOAttainment)
	}
	// The 1m window only sees the recovered phase; 5m still sees both.
	if v.SLOAttainment1m != 1 {
		t.Fatalf("1m attainment = %g, want 1", v.SLOAttainment1m)
	}
	if v.SLOAttainment5m != 0.5 {
		t.Fatalf("5m attainment = %g, want 0.5", v.SLOAttainment5m)
	}

	if _, _, ok := s.WindowSLO("nope", time.Minute); ok {
		t.Fatal("WindowSLO ok for unknown tenant")
	}
	if got := s.MaxDepth(); got != 100 {
		t.Fatalf("MaxDepth = %d, want 100", got)
	}
}

// TestSLORingStampWraparound pins the recycling contract across long
// idle gaps: when the ring laps (one horizon or many), stale buckets
// from a previous lap are zeroed on reuse and ignored by window sums —
// never replayed as current traffic.
func TestSLORingStampWraparound(t *testing.T) {
	r := newSLORing()
	base := int64(5_000_000)
	for s := base; s < base+10; s++ {
		r.observe(s, true)
		r.observe(s, true)
	}

	// Exactly one lap later the same indices answer for new seconds: a
	// window there must read empty, not replay the old lap's 20 met.
	lap1 := base + int64(sloRingSeconds)
	if met, total := r.window(lap1+9, 10); met != 0 || total != 0 {
		t.Fatalf("post-lap window = %d/%d, want 0/0", met, total)
	}
	if att := r.attainment(lap1+9, 10); att != 1 {
		t.Fatalf("post-lap attainment = %g, want vacuous 1", att)
	}

	// First observation on the new lap recycles its bucket: counts start
	// from zero rather than accumulating onto the stale 2/2.
	r.observe(lap1, false)
	if met, total := r.window(lap1, 1); met != 0 || total != 1 {
		t.Fatalf("recycled bucket = %d/%d, want 0/1", met, total)
	}

	// Untouched buckets still answer for their original seconds; the one
	// overwritten index no longer does.
	if met, total := r.window(base+9, 10); met != 18 || total != 18 {
		t.Fatalf("old-lap window = %d/%d, want 18/18 (one bucket recycled)", met, total)
	}

	// A multi-lap gap behaves identically — stamps compare absolute
	// seconds, not lap parity.
	lap5 := base + 5*int64(sloRingSeconds) + 7
	if met, total := r.window(lap5, len(r.secs)); met != 0 || total != 0 {
		t.Fatalf("5-lap window = %d/%d, want 0/0", met, total)
	}
	r.observe(lap5, true)
	if met, total := r.window(lap5, 1); met != 1 || total != 1 {
		t.Fatalf("5-lap fresh bucket = %d/%d, want 1/1", met, total)
	}
}

// TestSeedSLO checks the backfill entry point: seeded seconds feed
// WindowSLO, live observations are never overwritten, and out-of-horizon
// or unknown-tenant seeds are refused or ignored.
func TestSeedSLO(t *testing.T) {
	s := New(Config{Tenants: []TenantClass{{Name: "interactive", DeadlineMs: 500}}, MaxDepth: 10})
	base := time.Now()
	s.now = func() time.Time { return base }
	nowSec := base.Unix()

	if s.SeedSLO("ghost", nowSec-5, 3, 4) {
		t.Fatal("seeded unknown tenant")
	}
	if !s.SeedSLO("interactive", nowSec-5, 3, 4) {
		t.Fatal("seed refused for known tenant")
	}
	if !s.SeedSLO("interactive", nowSec-4, 10, 10) {
		t.Fatal("seed refused for known tenant")
	}
	met, total, ok := s.WindowSLO("interactive", 10*time.Second)
	if !ok || met != 13 || total != 14 {
		t.Fatalf("WindowSLO after seed = %d/%d ok=%v, want 13/14", met, total, ok)
	}

	// met is clamped to total; future and out-of-horizon seconds are
	// ignored without error.
	s.SeedSLO("interactive", nowSec-3, 9, 2)
	s.SeedSLO("interactive", nowSec+60, 1, 1)
	s.SeedSLO("interactive", nowSec-int64(sloRingSeconds)-1, 1, 1)
	met, total, _ = s.WindowSLO("interactive", 10*time.Second)
	if met != 15 || total != 16 {
		t.Fatalf("WindowSLO after clamped seed = %d/%d, want 15/16", met, total)
	}

	// A live observation in a bucket wins over any later backfill.
	s.ten["interactive"].slo.observe(nowSec-2, false)
	s.SeedSLO("interactive", nowSec-2, 50, 50)
	met, total, _ = s.WindowSLO("interactive", 10*time.Second)
	if met != 15 || total != 17 {
		t.Fatalf("WindowSLO after live-vs-seed = %d/%d, want 15/17", met, total)
	}
}
