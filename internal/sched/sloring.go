package sched

import "time"

// sloRingSeconds is the attainment ring's horizon in one-second buckets:
// long enough to answer the slowest burn-rate window (30 m = 1800 s) with
// slack, small enough (~32 KiB/tenant) to keep per tenant forever.
const sloRingSeconds = 2048

// sloRing is a per-second ring of SLO outcomes observed at dequeue. Each
// bucket remembers which absolute second it holds (secs), so stale buckets
// from a previous lap are simply ignored by window sums — no clearing
// sweep, no background work on an idle tenant. Not safe for concurrent
// use; the Scheduler's mutex guards it.
type sloRing struct {
	secs  []int64
	met   []uint32
	total []uint32
}

func newSLORing() *sloRing {
	return &sloRing{
		secs:  make([]int64, sloRingSeconds),
		met:   make([]uint32, sloRingSeconds),
		total: make([]uint32, sloRingSeconds),
	}
}

// observe records one dequeue outcome in the bucket for Unix second sec,
// recycling the slot if it still holds a previous lap's second.
func (r *sloRing) observe(sec int64, ok bool) {
	i := int(sec % int64(len(r.secs)))
	if i < 0 {
		i += len(r.secs)
	}
	if r.secs[i] != sec {
		r.secs[i] = sec
		r.met[i], r.total[i] = 0, 0
	}
	r.total[i]++
	if ok {
		r.met[i]++
	}
}

// seed installs a backfilled outcome count for Unix second sec. Live
// data wins: a bucket already stamped with sec and holding observations
// keeps them, so a history-derived backfill can never double-count
// dequeues observed after a restart.
func (r *sloRing) seed(sec int64, met, total uint32) {
	i := int(sec % int64(len(r.secs)))
	if i < 0 {
		i += len(r.secs)
	}
	if r.secs[i] == sec && r.total[i] > 0 {
		return
	}
	r.secs[i] = sec
	r.met[i], r.total[i] = met, total
}

// window sums the trailing `seconds` buckets ending at Unix second nowSec
// (inclusive), clamped to the ring's horizon. Buckets whose stamp does not
// match the queried second — never written, or overwritten by a later lap
// — contribute nothing.
func (r *sloRing) window(nowSec int64, seconds int) (met, total uint64) {
	if seconds < 1 {
		seconds = 1
	}
	if seconds > len(r.secs) {
		seconds = len(r.secs)
	}
	for q := nowSec - int64(seconds) + 1; q <= nowSec; q++ {
		i := int(q % int64(len(r.secs)))
		if i < 0 {
			i += len(r.secs)
		}
		if r.secs[i] == q {
			met += uint64(r.met[i])
			total += uint64(r.total[i])
		}
	}
	return met, total
}

// attainment is met/total over the window, vacuously 1 when the window saw
// no dequeues (an SLO with no traffic is met).
func (r *sloRing) attainment(nowSec int64, seconds int) float64 {
	met, total := r.window(nowSec, seconds)
	if total == 0 {
		return 1
	}
	return float64(met) / float64(total)
}

// WindowSLO reports the named tenant's dequeue outcomes over the trailing
// window (clamped to the ring horizon, ~34 min): how many started within
// their deadline and how many were dequeued at all. ok is false for an
// unknown tenant. This is the burn-rate input for internal/health.
func (s *Scheduler) WindowSLO(tenant string, window time.Duration) (met, total uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, found := s.ten[tenant]
	if !found {
		return 0, 0, false
	}
	met, total = t.slo.window(s.now().Unix(), int(window/time.Second))
	return met, total, true
}

// SeedSLO backfills one second of a tenant's SLO ring from persisted
// metric history, so burn-rate windows are warm immediately after a
// restart instead of waiting a full window for live traffic to refill
// them. Seconds outside the ring horizon (or in the future) are ignored,
// and buckets that already hold live post-restart observations are left
// untouched. Returns false for an unknown or removed tenant.
func (s *Scheduler) SeedSLO(tenant string, sec int64, met, total uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, found := s.ten[tenant]
	if !found || t.removed {
		return false
	}
	now := s.now().Unix()
	if total == 0 || sec > now || sec <= now-int64(sloRingSeconds) {
		return true // nothing to seed, but the tenant exists
	}
	if met > total {
		met = total
	}
	const maxBucket = 1<<32 - 1
	if total > maxBucket {
		total = maxBucket
	}
	if met > maxBucket {
		met = maxBucket
	}
	t.slo.seed(sec, uint32(met), uint32(total))
	return true
}

// MaxDepth reports the configured global queue bound — the capacity behind
// readiness saturation checks.
func (s *Scheduler) MaxDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.MaxDepth
}
