package sched

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func threeTenants() Config {
	return Config{
		Tenants: []TenantClass{
			{Name: "interactive", Weight: 8, Priority: 0, DeadlineMs: 500},
			{Name: "batch", Weight: 3, Priority: 1, DeadlineMs: 5000},
			{Name: "best-effort", Weight: 1, Priority: 2},
		},
		DefaultTenant: "best-effort",
		MaxDepth:      90,
	}
}

// drainN dequeues n items without blocking the test forever on a bug.
func drainN(t *testing.T, s *Scheduler, n int) []Item {
	t.Helper()
	out := make([]Item, 0, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			it, ok := s.Dequeue()
			if !ok {
				return
			}
			out = append(out, it)
			s.Done(it.Tenant)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("dequeue stalled after %d of %d items", len(out), n)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"no tenants", `{"tenants":[]}`},
		{"dup", `{"tenants":[{"name":"a"},{"name":"a"}]}`},
		{"empty name", `{"tenants":[{"name":""}]}`},
		{"bad default", `{"tenants":[{"name":"a"}],"default_tenant":"b"}`},
		{"unknown field", `{"tenants":[{"name":"a","wieght":3}]}`},
		{"negative weight", `{"tenants":[{"name":"a","weight":-1}]}`},
	}
	for _, c := range cases {
		if _, err := ParseConfig([]byte(c.json)); err == nil {
			t.Errorf("%s: ParseConfig accepted %s", c.name, c.json)
		}
	}
	cfg, err := ParseConfig([]byte(`{"tenants":[{"name":"a"},{"name":"b","weight":4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DefaultTenant != "a" {
		t.Errorf("default tenant = %q, want first tenant", cfg.DefaultTenant)
	}
	if cfg.MaxDepth != DefaultMaxDepth {
		t.Errorf("MaxDepth = %d, want default %d", cfg.MaxDepth, DefaultMaxDepth)
	}
	if cfg.Tenants[0].Weight != 1 {
		t.Errorf("zero weight not defaulted to 1")
	}
}

// TestEDFWithinTenant: items enqueued with out-of-order deadlines dequeue
// earliest-deadline-first; items without deadlines come last in admission
// order.
func TestEDFWithinTenant(t *testing.T) {
	s := New(Config{Tenants: []TenantClass{{Name: "only"}}, MaxDepth: 100})
	base := time.Now()
	deadlines := []int{50, 10, 40, 20, 30}
	for i, ms := range deadlines {
		_, err := s.Enqueue(Item{
			Tenant:   "only",
			Deadline: base.Add(time.Duration(ms) * time.Millisecond),
			Payload:  i,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Two deadline-free items after the dated ones.
	s.Enqueue(Item{Tenant: "only", Payload: "x"})
	s.Enqueue(Item{Tenant: "only", Payload: "y"})

	got := drainN(t, s, 7)
	wantOrder := []any{1, 3, 4, 2, 0, "x", "y"}
	for i, it := range got {
		if it.Payload != wantOrder[i] {
			t.Fatalf("dequeue %d = %v, want %v (EDF order violated)", i, it.Payload, wantOrder[i])
		}
	}
}

// TestDeadlineFromBudget: the tenant's deadline budget is measured from
// the item's admission time, so an older admission (a cluster re-dispatch)
// jumps ahead of fresher work.
func TestDeadlineFromBudget(t *testing.T) {
	s := New(Config{
		Tenants:  []TenantClass{{Name: "a", DeadlineMs: 1000}},
		MaxDepth: 10,
	})
	now := time.Now()
	s.Enqueue(Item{Tenant: "a", AdmittedAt: now, Payload: "fresh"})
	s.Enqueue(Item{Tenant: "a", AdmittedAt: now.Add(-5 * time.Second), Payload: "redispatched"})
	got := drainN(t, s, 2)
	if got[0].Payload != "redispatched" {
		t.Fatalf("first dequeue = %v; re-dispatched job with older admission must run first", got[0].Payload)
	}
}

// TestNoStarvation is the property-style fairness test: under a sustained
// backlog from a heavy high-priority tenant, a weight-1 tenant still
// receives within rounding of its weight share in every prefix of the
// dequeue sequence.
func TestNoStarvation(t *testing.T) {
	s := New(Config{
		Tenants: []TenantClass{
			{Name: "heavy", Weight: 9, Priority: 0},
			{Name: "light", Weight: 1, Priority: 2},
		},
		MaxDepth: 5000,
	})
	const n = 1000
	for i := 0; i < n; i++ {
		if _, err := s.Enqueue(Item{Tenant: "heavy", Payload: i}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Enqueue(Item{Tenant: "light", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := drainN(t, s, 2*n)
	light := 0
	for i, it := range got {
		if it.Tenant == "light" {
			light++
		}
		// Prefix property: after k dequeues, light has at least
		// floor(k/10) - 1 of them (its 1/10 share, one slot of slack).
		if want := (i+1)/10 - 1; light < want {
			t.Fatalf("after %d dequeues light got %d, want ≥ %d — starvation", i+1, light, want)
		}
	}
	if light != n {
		t.Fatalf("light drained %d of %d", light, n)
	}
	// And heavy must dominate: roughly 9 heavy per light in the first
	// half, i.e. heavy is not starved by the check above either.
	firstHalf := got[:n]
	heavy := 0
	for _, it := range firstHalf {
		if it.Tenant == "heavy" {
			heavy++
		}
	}
	if heavy < 8*n/10 {
		t.Fatalf("heavy got %d of first %d dequeues, want ≥ %d (weight 9/10)", heavy, n, 8*n/10)
	}
}

// TestGraduatedShed: as the queue fills, the lowest-priority tenant sheds
// first, the middle next, the top only at the full bound, with
// machine-readable reasons and a Retry-After.
func TestGraduatedShed(t *testing.T) {
	s := New(threeTenants()) // MaxDepth 90 → thresholds 90 / 60 / 30
	fill := func(tenant string, n int) (admitted, shed int) {
		for i := 0; i < n; i++ {
			if _, err := s.Enqueue(Item{Tenant: tenant}); err != nil {
				shed++
			} else {
				admitted++
			}
		}
		return
	}
	// Fill to just below the best-effort threshold with interactive work.
	if adm, sh := fill("interactive", 29); adm != 29 || sh != 0 {
		t.Fatalf("pre-fill: admitted %d shed %d", adm, sh)
	}
	if _, err := s.Enqueue(Item{Tenant: "best-effort"}); err != nil {
		t.Fatalf("best-effort at depth 29 shed early: %v", err)
	}
	// Depth 30: best-effort sheds, batch and interactive do not.
	_, err := s.Enqueue(Item{Tenant: "best-effort"})
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("best-effort at threshold: err = %v, want ShedError", err)
	}
	if se.Reason != "priority_shed" || se.Tenant != "best-effort" {
		t.Fatalf("shed = %+v, want priority_shed of best-effort", se)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("shed without Retry-After: %+v", se)
	}
	if _, err := s.Enqueue(Item{Tenant: "batch"}); err != nil {
		t.Fatalf("batch shed at depth 30: %v", err)
	}
	// Fill to the batch threshold.
	fill("interactive", 29) // depth 60
	if _, err := s.Enqueue(Item{Tenant: "batch"}); !errors.As(err, &se) || se.Reason != "priority_shed" {
		t.Fatalf("batch at depth 60: err = %v, want priority_shed", err)
	}
	// Interactive sheds only at the global bound, with reason queue_full.
	if adm, _ := fill("interactive", 30); adm != 30 {
		t.Fatalf("interactive blocked before the global bound (admitted %d of 30)", adm)
	}
	if _, err := s.Enqueue(Item{Tenant: "interactive"}); !errors.As(err, &se) || se.Reason != "queue_full" {
		t.Fatalf("interactive at full queue: err = %v, want queue_full", err)
	}
	views := s.Views()
	for _, v := range views {
		if v.Name == "best-effort" && v.ShedReasons["priority_shed"] == 0 {
			t.Errorf("best-effort view missing shed reason: %+v", v)
		}
	}
}

// TestTenantDepthCap: a per-tenant queue_depth sheds that tenant alone.
func TestTenantDepthCap(t *testing.T) {
	s := New(Config{
		Tenants: []TenantClass{
			{Name: "capped", QueueDepth: 2},
			{Name: "free"},
		},
		MaxDepth: 100,
	})
	s.Enqueue(Item{Tenant: "capped"})
	s.Enqueue(Item{Tenant: "capped"})
	_, err := s.Enqueue(Item{Tenant: "capped"})
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "tenant_queue_full" {
		t.Fatalf("capped tenant third enqueue: %v, want tenant_queue_full", err)
	}
	if _, err := s.Enqueue(Item{Tenant: "free"}); err != nil {
		t.Fatalf("uncapped tenant blocked by sibling cap: %v", err)
	}
}

// TestMaxInflight: a tenant at its in-flight cap yields the worker to
// other tenants until Done frees a slot.
func TestMaxInflight(t *testing.T) {
	s := New(Config{
		Tenants: []TenantClass{
			{Name: "capped", Weight: 100, MaxInflight: 1},
			{Name: "other", Weight: 1},
		},
		MaxDepth: 100,
	})
	s.Enqueue(Item{Tenant: "capped", Payload: "c1"})
	s.Enqueue(Item{Tenant: "capped", Payload: "c2"})
	s.Enqueue(Item{Tenant: "other", Payload: "o1"})

	it1, _ := s.Dequeue()
	if it1.Payload != "c1" {
		t.Fatalf("first dequeue = %v, want c1 (weight 100)", it1.Payload)
	}
	// capped is at its in-flight limit: the next dequeue must skip c2.
	it2, _ := s.Dequeue()
	if it2.Payload != "o1" {
		t.Fatalf("second dequeue = %v, want o1 (capped tenant at max_inflight)", it2.Payload)
	}
	s.Done("capped")
	it3, _ := s.Dequeue()
	if it3.Payload != "c2" {
		t.Fatalf("after Done, dequeue = %v, want c2", it3.Payload)
	}
}

// TestCloseDrains: Close stops admissions but queued items drain before
// Dequeue reports closed.
func TestCloseDrains(t *testing.T) {
	s := New(Config{Tenants: []TenantClass{{Name: "a"}}, MaxDepth: 10})
	s.Enqueue(Item{Tenant: "a", Payload: 1})
	s.Enqueue(Item{Tenant: "a", Payload: 2})
	s.Close()
	if _, err := s.Enqueue(Item{Tenant: "a"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v, want ErrClosed", err)
	}
	if it, ok := s.Dequeue(); !ok || it.Payload != 1 {
		t.Fatalf("first drain = %v/%v", it.Payload, ok)
	}
	if it, ok := s.Dequeue(); !ok || it.Payload != 2 {
		t.Fatalf("second drain = %v/%v", it.Payload, ok)
	}
	if _, ok := s.Dequeue(); ok {
		t.Fatal("Dequeue after drain still reports items")
	}
}

// TestUnknownTenantDefaults: unknown and empty tenant names land on the
// default tenant, and the canonical name is returned for Done pairing.
func TestUnknownTenantDefaults(t *testing.T) {
	s := New(threeTenants())
	name, err := s.Enqueue(Item{Tenant: "no-such"})
	if err != nil || name != "best-effort" {
		t.Fatalf("unknown tenant → (%q, %v), want best-effort", name, err)
	}
	name, _ = s.Enqueue(Item{})
	if name != "best-effort" {
		t.Fatalf("empty tenant → %q, want best-effort", name)
	}
	if got := s.Canonical("interactive"); got != "interactive" {
		t.Fatalf("Canonical(interactive) = %q", got)
	}
}

// TestReload: classes update in place keeping counters, removed tenants
// drain, new tenants join, and a bad config is rejected atomically.
func TestReload(t *testing.T) {
	s := New(threeTenants())
	s.Enqueue(Item{Tenant: "batch", Payload: "queued"})
	if err := s.Reload(Config{Tenants: []TenantClass{{Name: "x", Weight: -1}}}); err == nil {
		t.Fatal("Reload accepted invalid config")
	}
	err := s.Reload(Config{
		Tenants: []TenantClass{
			{Name: "interactive", Weight: 4, Priority: 0},
			{Name: "newbie", Weight: 2, Priority: 1},
		},
		MaxDepth: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// batch was removed but still holds work: it must drain.
	views := s.Views()
	var sawBatch, sawNewbie bool
	for _, v := range views {
		if v.Name == "batch" {
			sawBatch = true
			if !v.Removed || v.Depth != 1 {
				t.Errorf("batch view after removal: %+v", v)
			}
		}
		if v.Name == "newbie" {
			sawNewbie = true
		}
	}
	if !sawBatch || !sawNewbie {
		t.Fatalf("views after reload missing tenants: %+v", views)
	}
	// New submissions under the removed name land on the new default.
	name, err := s.Enqueue(Item{Tenant: "batch"})
	if err != nil || name != "interactive" {
		t.Fatalf("removed tenant enqueue → (%q, %v), want default interactive", name, err)
	}
	got := drainN(t, s, 2)
	if len(got) != 2 {
		t.Fatalf("drained %d of 2 after reload", len(got))
	}
	// Fully drained removed tenant disappears from the views.
	for _, v := range s.Views() {
		if v.Name == "batch" {
			t.Fatalf("batch still present after draining: %+v", v)
		}
	}
}

// TestSLOAccounting: a job dequeued past its deadline is counted as an SLO
// miss; within it, as met.
func TestSLOAccounting(t *testing.T) {
	s := New(Config{
		Tenants:  []TenantClass{{Name: "a", DeadlineMs: 100}},
		MaxDepth: 10,
	})
	clock := time.Now()
	s.now = func() time.Time { return clock }
	s.Enqueue(Item{Tenant: "a"})
	s.Enqueue(Item{Tenant: "a"})
	// First dequeue inside the budget, second long past it.
	clock = clock.Add(50 * time.Millisecond)
	s.Dequeue()
	clock = clock.Add(500 * time.Millisecond)
	s.Dequeue()
	v := s.Views()[0]
	if v.Dequeues != 2 || v.SLOMet != 1 {
		t.Fatalf("dequeues=%d sloMet=%d, want 2/1", v.Dequeues, v.SLOMet)
	}
	if v.SLOAttainment != 0.5 {
		t.Fatalf("attainment = %g, want 0.5", v.SLOAttainment)
	}
	if v.QueueWaitP95Ms <= 0 {
		t.Fatalf("queue wait quantiles not recorded: %+v", v)
	}
}

// TestRetryAfterTracksDrainRate: with an observed drain rate, the
// Retry-After scales with the backlog excess.
func TestRetryAfterTracksDrainRate(t *testing.T) {
	var r RateTracker
	if got := r.RetryAfter(10); got != minRetryAfter {
		t.Fatalf("cold tracker RetryAfter = %v, want %v", got, minRetryAfter)
	}
	base := time.Now()
	// One dequeue every 100ms.
	for i := 0; i < 20; i++ {
		r.Observe(base.Add(time.Duration(i) * 100 * time.Millisecond))
	}
	// 30 items of excess at ~100ms each ≈ 3s.
	got := r.RetryAfter(30)
	if got < 2*time.Second || got > 5*time.Second {
		t.Fatalf("RetryAfter(30) = %v, want ≈3s", got)
	}
	if got := r.RetryAfter(100000); got != maxRetryAfter {
		t.Fatalf("huge excess = %v, want clamp %v", got, maxRetryAfter)
	}
}

// TestConcurrentChurn hammers the scheduler from many goroutines under
// -race: admissions, dequeues, dones, views, and a reload.
func TestConcurrentChurn(t *testing.T) {
	s := New(threeTenants())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	tenants := []string{"interactive", "batch", "best-effort", "unknown"}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Enqueue(Item{Tenant: tenants[(i+j)%len(tenants)], Payload: j})
			}
		}(i)
	}
	var consumed sync.WaitGroup
	for i := 0; i < 3; i++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				it, ok := s.Dequeue()
				if !ok {
					return
				}
				s.Done(it.Tenant)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	s.Reload(threeTenants())
	s.Views()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	s.Close()
	consumed.Wait()
}

func BenchmarkEnqueueDequeue(b *testing.B) {
	s := New(threeTenants())
	names := []string{"interactive", "batch", "best-effort"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Enqueue(Item{Tenant: names[i%3], Payload: i}); err != nil {
			b.Fatal(err)
		}
		it, _ := s.Dequeue()
		s.Done(it.Tenant)
	}
	_ = fmt.Sprint() // keep fmt imported if otherwise unused
}
