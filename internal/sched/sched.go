// Package sched is womd's multi-tenant SLO-aware scheduler: the layer
// between HTTP admission and execution that replaces the engine's single
// FIFO queue when a tenant configuration is loaded (womd -tenants).
//
// Tenants are named classes with a weight (fair-share ratio), a priority
// (shed order under saturation — lower numbers shed last), an optional
// in-flight cap, an optional queue-wait deadline budget, and an optional
// per-tenant queue depth. Dequeue order is weighted-fair across tenants
// (stride scheduling, so a weight-1 tenant still drains at 1/Σweights of
// the service rate — no starvation) and earliest-deadline-first within a
// tenant (a binary heap on each job's deadline, admission order breaking
// ties).
//
// Load shedding is graduated instead of binary: each tenant sheds when the
// total queued depth crosses its priority rank's threshold — the
// lowest-priority rank sheds at 1/R of MaxDepth, the highest only when the
// queue is actually full (R = number of distinct priorities). A shed
// carries a machine-readable reason and a Retry-After computed from the
// observed drain rate, so clients back off proportionally to the real
// backlog instead of guessing.
//
// The scheduler is payload-agnostic (Item.Payload is opaque); the engine
// adapts it behind its Queue interface. Reload swaps tenant definitions at
// runtime (womd re-reads the config on SIGHUP) without dropping queued
// work.
package sched

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Defaults for Config fields left zero.
const (
	// DefaultMaxDepth bounds total queued items when Config.MaxDepth is 0.
	DefaultMaxDepth = 256
)

// TenantClass declares one tenant's scheduling contract.
type TenantClass struct {
	// Name identifies the tenant; submissions carry it in
	// JobRequest.Tenant. Required, unique.
	Name string `json:"name"`
	// Weight is the tenant's fair-share ratio (default 1). A tenant with
	// weight w among total weight W receives w/W of dequeues while
	// backlogged.
	Weight int `json:"weight,omitempty"`
	// Priority orders shedding under saturation: 0 is the most important
	// (shed last, only when the queue is full); higher numbers shed at
	// progressively lower occupancy. Default 0.
	Priority int `json:"priority,omitempty"`
	// MaxInflight caps this tenant's concurrently executing jobs;
	// 0 = unlimited. A capped tenant's queued jobs wait without blocking
	// other tenants' dequeues.
	MaxInflight int `json:"max_inflight,omitempty"`
	// DeadlineMs is the queue-wait budget: a job admitted at T should start
	// by T+DeadlineMs. It orders jobs within the tenant (EDF) and defines
	// SLO attainment; 0 = no deadline (admission-ordered, always attained).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// QueueDepth caps this tenant's own queued jobs independently of the
	// global bound; 0 = no per-tenant cap.
	QueueDepth int `json:"queue_depth,omitempty"`
}

func (c TenantClass) withDefaults() TenantClass {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	return c
}

// Config is the tenant scheduling configuration (the -tenants JSON file).
type Config struct {
	// Tenants lists the classes; at least one is required.
	Tenants []TenantClass `json:"tenants"`
	// DefaultTenant receives submissions with no (or an unknown) tenant
	// name; default: the first configured tenant.
	DefaultTenant string `json:"default_tenant,omitempty"`
	// MaxDepth bounds total queued jobs across tenants (default 256). The
	// graduated shed thresholds are fractions of it.
	MaxDepth int `json:"max_depth,omitempty"`
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("sched: config needs at least one tenant")
	}
	seen := make(map[string]bool, len(c.Tenants))
	for _, t := range c.Tenants {
		if t.Name == "" {
			return fmt.Errorf("sched: tenant with empty name")
		}
		if seen[t.Name] {
			return fmt.Errorf("sched: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Weight < 0 {
			return fmt.Errorf("sched: tenant %q: negative weight", t.Name)
		}
		if t.Priority < 0 {
			return fmt.Errorf("sched: tenant %q: negative priority", t.Name)
		}
		if t.DeadlineMs < 0 {
			return fmt.Errorf("sched: tenant %q: negative deadline_ms", t.Name)
		}
		if t.MaxInflight < 0 || t.QueueDepth < 0 {
			return fmt.Errorf("sched: tenant %q: negative cap", t.Name)
		}
	}
	if c.DefaultTenant != "" && !seen[c.DefaultTenant] {
		return fmt.Errorf("sched: default_tenant %q is not a configured tenant", c.DefaultTenant)
	}
	if c.MaxDepth < 0 {
		return fmt.Errorf("sched: negative max_depth")
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MaxDepth <= 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.DefaultTenant == "" && len(c.Tenants) > 0 {
		c.DefaultTenant = c.Tenants[0].Name
	}
	for i, t := range c.Tenants {
		c.Tenants[i] = t.withDefaults()
	}
	return c
}

// ParseConfig decodes and validates a tenant configuration document.
// Unknown fields are rejected — a typoed "wieght" must not silently become
// the default.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("sched: decoding tenant config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c.withDefaults(), nil
}

// LoadConfig reads and parses the -tenants file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("sched: reading tenant config: %w", err)
	}
	return ParseConfig(data)
}

// shedThresholds maps each tenant name to the total queued depth at which
// its submissions are shed: rank the distinct priorities best (lowest
// number) to worst; the worst rank sheds at MaxDepth/R, each better rank
// one R-th later, the best only at MaxDepth itself.
func shedThresholds(cfg Config) map[string]int {
	prios := make([]int, 0, len(cfg.Tenants))
	seen := make(map[int]bool)
	for _, t := range cfg.Tenants {
		if !seen[t.Priority] {
			seen[t.Priority] = true
			prios = append(prios, t.Priority)
		}
	}
	sort.Ints(prios) // ascending: best priority first
	rank := make(map[int]int, len(prios))
	for i, p := range prios {
		rank[p] = i
	}
	r := len(prios)
	out := make(map[string]int, len(cfg.Tenants))
	for _, t := range cfg.Tenants {
		frac := float64(r-rank[t.Priority]) / float64(r)
		th := int(frac * float64(cfg.MaxDepth))
		if th < 1 {
			th = 1
		}
		out[t.Name] = th
	}
	return out
}
