package telemetry

import (
	"testing"

	"womcpcm/internal/energy"
	"womcpcm/internal/probe"
)

// finish drains a collector with a watermark far in the future so every
// touched window is final, then returns the series.
func finish(c *Collector) *Series {
	return c.Finish("test", 0)
}

func TestBoundaryEventLandsInItsWindow(t *testing.T) {
	// The satellite contract: an event stamped exactly k·W belongs to window
	// k = [k·W, (k+1)·W), not to window k-1.
	const w = 1000
	c := New(Options{WindowNs: w})
	for k := Clock(0); k < 4; k++ {
		c.Record(probe.Event{Time: k * w, Kind: probe.WriteFirst})
	}
	s := finish(c)
	if len(s.Windows) != 4 {
		t.Fatalf("got %d windows, want 4", len(s.Windows))
	}
	for k, win := range s.Windows {
		if win.Index != int64(k) {
			t.Fatalf("window %d has index %d", k, win.Index)
		}
		if win.StartNs != int64(k)*w || win.EndNs != int64(k+1)*w {
			t.Errorf("window %d spans [%d,%d), want [%d,%d)", k, win.StartNs, win.EndNs, int64(k)*w, int64(k+1)*w)
		}
		if win.Writes.First != 1 {
			t.Errorf("window %d got %d first-writes, want exactly 1 (boundary event must not spill into window %d)",
				k, win.Writes.First, k-1)
		}
	}
	if s.LateEvents != 0 {
		t.Errorf("late events = %d, want 0", s.LateEvents)
	}
}

func TestSeriesIsDense(t *testing.T) {
	// Quiet windows between active ones still appear, zero-valued.
	const w = 100
	c := New(Options{WindowNs: w})
	c.Record(probe.Event{Time: 50, Kind: probe.WriteAlpha})
	c.Record(probe.Event{Time: 550, Kind: probe.WriteAlpha})
	s := finish(c)
	if len(s.Windows) != 6 {
		t.Fatalf("got %d windows, want 6 (dense 0..5)", len(s.Windows))
	}
	for i, win := range s.Windows {
		want := uint64(0)
		if i == 0 || i == 5 {
			want = 1
		}
		if win.Writes.Alpha != want {
			t.Errorf("window %d alpha = %d, want %d", i, win.Writes.Alpha, want)
		}
	}
}

func TestWriteClassMixAndCacheAndRefreshCounts(t *testing.T) {
	c := New(Options{WindowNs: 1000})
	events := []probe.Kind{
		probe.WriteFirst, probe.WriteWOMRewrite, probe.WriteWOMRewrite,
		probe.WriteAlpha, probe.WriteFlipNWrite,
		probe.RefreshScheduled, probe.RefreshStarted, probe.RefreshResumed,
		probe.CacheHit, probe.CacheHit, probe.CacheFill, probe.CacheEvict,
		probe.CacheWriteback,
	}
	for _, k := range events {
		c.Record(probe.Event{Time: 10, Kind: k})
	}
	s := finish(c)
	w := s.Windows[0]
	if w.Writes != (WriteMix{First: 1, Rewrite: 2, Alpha: 1, FlipNWrite: 1}) {
		t.Errorf("writes = %+v", w.Writes)
	}
	if w.Writes.Total() != 5 {
		t.Errorf("total = %d, want 5", w.Writes.Total())
	}
	if w.Refresh != (RefreshActivity{Scheduled: 1, Started: 1, Resumed: 1}) {
		t.Errorf("refresh = %+v", w.Refresh)
	}
	if w.Cache != (CacheActivity{Hits: 2, Fills: 1, Evicts: 1, Writebacks: 1}) {
		t.Errorf("cache = %+v", w.Cache)
	}
	if got, want := w.Cache.HitRate(), 0.5; got != want {
		t.Errorf("hit rate = %v, want %v", got, want)
	}
}

func TestSpanApportionsAcrossWindows(t *testing.T) {
	// A 120 ns busy span starting at 90 overlaps windows 0 (10 ns),
	// 1 (100 ns), and 2 (10 ns) under a 100 ns window.
	const w = 100
	c := New(Options{WindowNs: w, Banks: 2})
	c.Record(probe.Event{Time: 90, Dur: 120, Kind: probe.BankBusy, Rank: 0, Bank: 0})
	s := finish(c)
	if len(s.Windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(s.Windows))
	}
	wantBusy := []int64{10, 100, 10}
	for i, want := range wantBusy {
		if got := s.Windows[i].BusyNs; got != want {
			t.Errorf("window %d busy = %d, want %d", i, got, want)
		}
	}
	// Utilization normalizes by width × banks; max-bank by width only.
	if got, want := s.Windows[1].Utilization, 100.0/(100*2); got != want {
		t.Errorf("window 1 utilization = %v, want %v", got, want)
	}
	if got, want := s.Windows[1].MaxBankUtilization, 1.0; got != want {
		t.Errorf("window 1 max-bank utilization = %v, want %v", got, want)
	}
}

func TestRefreshSpansCountAsOccupancy(t *testing.T) {
	// RefreshCompleted spans its interval: occupancy plus one completed count
	// in the window of its start.
	c := New(Options{WindowNs: 1000, Banks: 1})
	c.Record(probe.Event{Time: 100, Dur: 400, Kind: probe.RefreshCompleted, Rank: 0, Bank: 0})
	s := finish(c)
	w := s.Windows[0]
	if w.Refresh.Completed != 1 {
		t.Errorf("completed = %d, want 1", w.Refresh.Completed)
	}
	if w.BusyNs != 400 {
		t.Errorf("busy = %d, want 400", w.BusyNs)
	}
}

func TestLatencyHookSummaries(t *testing.T) {
	c := New(Options{WindowNs: 1000})
	for i := 0; i < 100; i++ {
		c.ObserveLatency(500, true, 64)
	}
	c.ObserveLatency(500, true, 4096)
	c.ObserveLatency(500, false, 128)
	s := finish(c)
	w := s.Windows[0]
	if w.Read.Count != 101 || w.Write.Count != 1 {
		t.Fatalf("read count = %d, write count = %d", w.Read.Count, w.Write.Count)
	}
	if w.Read.MaxNs != 4096 {
		t.Errorf("read max = %d, want 4096", w.Read.MaxNs)
	}
	// p50 of 100×64ns + 1×4096ns sits in the 64 ns bucket (upper bound 128).
	if w.Read.P50Ns > 128 {
		t.Errorf("read p50 = %d, want ≤ 128", w.Read.P50Ns)
	}
	if w.Write.MeanNs != 128 {
		t.Errorf("write mean = %v, want 128", w.Write.MeanNs)
	}
	// An empty distribution summarizes to the zero value.
	if (s.Windows[0].Read == LatencySummary{}) {
		t.Errorf("read summary unexpectedly empty")
	}
}

func TestLateEventsCounted(t *testing.T) {
	const w = 100
	c := New(Options{WindowNs: w})
	// Watermark far ahead: windows 0.. finalize (lag = 2 windows).
	c.Record(probe.Event{Time: 10_000, Kind: probe.WriteFirst})
	if c.nextFinal == 0 {
		t.Fatal("expected some windows finalized by advancing watermark")
	}
	before := len(c.done)
	// This event's window already finalized: tallied late, not re-opened.
	c.Record(probe.Event{Time: 0, Kind: probe.WriteAlpha})
	s := finish(c)
	if s.LateEvents != 1 {
		t.Fatalf("late events = %d, want 1", s.LateEvents)
	}
	if s.Windows[0].Writes.Alpha != 0 {
		t.Errorf("late event mutated a finalized window")
	}
	if len(c.done) < before {
		t.Errorf("finalized windows went backwards")
	}
}

func TestOnWindowStreamsInOrder(t *testing.T) {
	const w = 100
	var streamed []int64
	c := New(Options{WindowNs: w, OnWindow: func(win Window) {
		streamed = append(streamed, win.Index)
	}})
	for i := Clock(0); i < 10; i++ {
		c.Record(probe.Event{Time: i * w, Kind: probe.WriteFirst})
	}
	// With a watermark at 900 and 2 windows of lag, windows 0..6 are final.
	if len(streamed) == 0 {
		t.Fatal("no windows streamed before Finish")
	}
	mid := len(streamed)
	s := finish(c)
	if len(streamed) != len(s.Windows) {
		t.Fatalf("streamed %d windows, series has %d", len(streamed), len(s.Windows))
	}
	if mid >= len(streamed) {
		t.Errorf("expected Finish to deliver the tail (streamed %d mid-run, %d total)", mid, len(streamed))
	}
	for i, idx := range streamed {
		if idx != int64(i) {
			t.Fatalf("streamed order %v", streamed)
		}
	}
}

func TestEnergyPricing(t *testing.T) {
	m := energy.Model{RowRead: 10, RowWriteFast: 100, RowWriteFull: 1000, RowBuffer: 1}
	c := New(Options{WindowNs: 1000, Energy: &m})
	c.Record(probe.Event{Time: 0, Kind: probe.WriteFirst})      // fast
	c.Record(probe.Event{Time: 0, Kind: probe.WriteWOMRewrite}) // fast
	c.Record(probe.Event{Time: 0, Kind: probe.WriteAlpha})      // full
	c.Record(probe.Event{Time: 0, Kind: probe.WriteFlipNWrite}) // full
	c.Record(probe.Event{Time: 0, Dur: 10, Kind: probe.RefreshCompleted})
	s := finish(c)
	want := 2*100.0 + 2*1000.0 + (10.0 + 1000.0)
	if got := s.Windows[0].EnergyPJ; got != want {
		t.Errorf("energy = %v, want %v", got, want)
	}
}

func TestTotalsAndDefaults(t *testing.T) {
	c := New(Options{})
	if c.WindowNs() != DefaultWindowNs {
		t.Errorf("default window = %d, want %d", c.WindowNs(), DefaultWindowNs)
	}
	c.Record(probe.Event{Time: 0, Kind: probe.WriteFirst})
	c.Record(probe.Event{Time: DefaultWindowNs + 1, Kind: probe.WriteAlpha})
	s := c.Finish("WOM-code PCM", 12345)
	if s.Arch != "WOM-code PCM" || s.SimulatedNs != 12345 {
		t.Errorf("series labels: %+v", s)
	}
	m := s.Totals()
	if m.First != 1 || m.Alpha != 1 || m.Total() != 2 {
		t.Errorf("totals = %+v", m)
	}
}

func TestEmptyCollectorFinish(t *testing.T) {
	s := New(Options{}).Finish("baseline", 0)
	if len(s.Windows) != 0 || s.LateEvents != 0 {
		t.Errorf("empty collector produced %+v", s)
	}
}
