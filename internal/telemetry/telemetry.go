// Package telemetry turns the simulator's event stream into epoch-windowed
// time series keyed on the *simulated* clock. Where internal/stats reports
// end-of-run aggregates and internal/probe raw events, a telemetry Collector
// folds both into fixed-width windows (default 100 µs simulated): per-window
// write-class mix (first / WOM-rewrite / α / Flip-N-Write), demand latency
// quantiles, PCM-refresh activity, WOM-cache action rates, bank occupancy,
// and a write/refresh energy estimate. The time-resolved view makes the
// paper's dynamics visible — WOM rewrite capacity draining as rows hit the
// <2^2>^2/3 limit, PCM-refresh replenishing it during idle rank cycles,
// WCPCM hit rates shifting with working-set phase — instead of burying them
// in one post-mortem number.
//
// A Collector subscribes to the probe bus (it implements probe.Sink) and to
// the controller's latency hook (memctrl.Config.Latency ← ObserveLatency).
// Like the probe it feeds from, a Collector is owned by a single simulation
// goroutine and is not safe for concurrent use; give every controller its
// own and merge the resulting Series afterwards.
//
// Window semantics: window k covers [k·W, (k+1)·W) in simulated nanoseconds,
// so an event stamped exactly k·W lands in window k. Counts attribute to the
// window containing the event's start time; busy spans (bank service,
// refresh intervals) apportion their duration across every window they
// overlap. Windows finalize — surfacing through Options.OnWindow for live
// streaming — once the stream's high-water mark is two windows past their
// end, which covers the simulator's bounded event reordering (spans are
// emitted at completion carrying their start time); an event older than that
// is counted in Series.LateEvents instead of silently vanishing.
package telemetry

import (
	"womcpcm/internal/energy"
	"womcpcm/internal/probe"
	"womcpcm/internal/stats"
)

// Clock is a simulated timestamp or duration in nanoseconds, mirroring
// probe.Clock.
type Clock = int64

// DefaultWindowNs is the default window width: 100 µs simulated — fine
// enough to resolve refresh periods (4000 ns) in aggregate while keeping a
// 200k-request run to a few hundred windows.
const DefaultWindowNs Clock = 100_000

// SchemaVersion tags the series JSON documents womsim emits and womtool
// report consumes.
const SchemaVersion = "womcpcm-series-v1"

// finalizeLagWindows is how many whole windows the high-water mark must pass
// beyond a window's end before it finalizes. The simulator emits span events
// at completion carrying their start time, so events arrive at most one
// refresh interval (≪ a default window) out of order; two windows of lag
// absorbs that even for narrow windows.
const finalizeLagWindows = 2

// WriteMix counts one window's row writes by class — the paper's four-way
// classification (probe.WriteFirst … probe.WriteFlipNWrite).
type WriteMix struct {
	// First counts generation-0 writes into erased WOM rows.
	First uint64 `json:"first"`
	// Rewrite counts in-budget RESET-only WOM rewrites.
	Rewrite uint64 `json:"rewrite"`
	// Alpha counts post-limit α-writes, the §3.2 bottleneck.
	Alpha uint64 `json:"alpha"`
	// FlipNWrite counts conventional full row writes (baseline arrays,
	// WCPCM victim write-backs).
	FlipNWrite uint64 `json:"flip_n_write"`
}

// Total sums the classes.
func (m WriteMix) Total() uint64 { return m.First + m.Rewrite + m.Alpha + m.FlipNWrite }

// RefreshActivity counts one window's PCM-refresh lifecycle events.
type RefreshActivity struct {
	Scheduled uint64 `json:"scheduled,omitempty"`
	Started   uint64 `json:"started,omitempty"`
	Paused    uint64 `json:"paused,omitempty"`
	Resumed   uint64 `json:"resumed,omitempty"`
	Completed uint64 `json:"completed,omitempty"`
}

// CacheActivity counts one window's WOM-cache actions (WCPCM only).
type CacheActivity struct {
	Hits       uint64 `json:"hits,omitempty"`
	Fills      uint64 `json:"fills,omitempty"`
	Evicts     uint64 `json:"evicts,omitempty"`
	Writebacks uint64 `json:"writebacks,omitempty"`
}

// HitRate returns hits/(hits+fills+evicts), or 0 without lookups. Fills and
// evicts are the write-miss classes, so the ratio mirrors
// stats.Run.CacheHitRate per window.
func (c CacheActivity) HitRate() float64 {
	total := c.Hits + c.Fills + c.Evicts
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// LatencySummary compresses one window's latency distribution: the summary
// quantiles without the full bucket vector, keeping per-window JSON small.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P95Ns  int64   `json:"p95_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

func summarize(l *stats.Latency) LatencySummary {
	if l.Count == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count:  l.Count,
		MeanNs: l.Mean(),
		P50Ns:  l.Quantile(0.50),
		P95Ns:  l.Quantile(0.95),
		P99Ns:  l.Quantile(0.99),
		MaxNs:  l.Max,
	}
}

// Window is one finalized epoch of the time series.
type Window struct {
	// Index is the window number; StartNs/EndNs its half-open simulated
	// interval [StartNs, EndNs).
	Index   int64 `json:"index"`
	StartNs int64 `json:"start_ns"`
	EndNs   int64 `json:"end_ns"`
	// Writes is the window's write-class mix.
	Writes WriteMix `json:"writes"`
	// Refresh and Cache count the window's lifecycle events.
	Refresh RefreshActivity `json:"refresh"`
	Cache   CacheActivity   `json:"cache"`
	// BusyNs is total bank occupancy apportioned into this window: service
	// spans plus refresh intervals, summed across banks.
	BusyNs int64 `json:"busy_ns"`
	// Utilization is BusyNs normalized by window width × bank count (0 when
	// the collector was not told the bank count). MaxBankUtilization is the
	// single busiest bank's share of the window.
	Utilization        float64 `json:"utilization"`
	MaxBankUtilization float64 `json:"max_bank_utilization"`
	// Read and Write summarize demand latencies of requests *completing* in
	// this window (fed by the controller's latency hook).
	Read  LatencySummary `json:"read"`
	Write LatencySummary `json:"write"`
	// EnergyPJ prices the window's writes and completed refreshes under the
	// collector's energy model. Reads are not in the probe event stream, so
	// this is the write/refresh share only.
	EnergyPJ float64 `json:"energy_pj"`
}

// Series is one simulation's full windowed time series.
type Series struct {
	// Arch labels the simulated architecture.
	Arch string `json:"arch"`
	// WindowNs is the window width.
	WindowNs int64 `json:"window_ns"`
	// SimulatedNs is the run's end time, as passed to Finish.
	SimulatedNs int64 `json:"simulated_ns"`
	// Banks is the serviced-resource count used for utilization (0 when
	// unknown).
	Banks int `json:"banks,omitempty"`
	// LateEvents counts events that arrived for already-finalized windows
	// (only possible with windows narrower than the simulator's event
	// reordering); they are excluded from Windows but not silently dropped.
	LateEvents uint64 `json:"late_events,omitempty"`
	// Windows is the dense series: every index from 0 through the last
	// active window, quiet windows included.
	Windows []Window `json:"windows"`
}

// Totals sums the write mix across all windows.
func (s *Series) Totals() WriteMix {
	var m WriteMix
	for i := range s.Windows {
		w := &s.Windows[i].Writes
		m.First += w.First
		m.Rewrite += w.Rewrite
		m.Alpha += w.Alpha
		m.FlipNWrite += w.FlipNWrite
	}
	return m
}

// Document is the one-file series bundle womsim -series writes: the four
// architectures' series over one workload, window-aligned for comparison.
type Document struct {
	Schema   string   `json:"schema"`
	Workload string   `json:"workload"`
	Requests int      `json:"requests,omitempty"`
	Seed     int64    `json:"seed,omitempty"`
	WindowNs int64    `json:"window_ns"`
	Series   []Series `json:"series"`
}

// Options configures a Collector. The zero value is usable: default window
// width, no bank count (utilization 0), default energy pricing, no live
// callback.
type Options struct {
	// WindowNs is the window width in simulated nanoseconds (default
	// DefaultWindowNs).
	WindowNs Clock
	// Banks is the number of serially serviced resources (banks plus cache
	// arrays) behind the event stream, used to normalize utilization; 0
	// leaves Utilization at 0.
	Banks int
	// Energy prices each window's writes and refreshes; nil selects
	// energy.Default().
	Energy *energy.Model
	// OnWindow, when set, receives each window as it finalizes — the live
	// streaming hook (womd's SSE endpoint). Finalized windows are retained
	// either way; Finish delivers the tail.
	OnWindow func(Window)
}

// acc accumulates one not-yet-finalized window.
type acc struct {
	writes   WriteMix
	refresh  RefreshActivity
	cache    CacheActivity
	busyNs   int64
	bankBusy map[int]int64 // (rank<<16|bank+1) → busy ns, for MaxBankUtilization
	read     stats.Latency
	write    stats.Latency
}

// Collector folds probe events and latency observations into windows. It is
// single-goroutine, like the simulator feeding it.
type Collector struct {
	opts      Options
	width     Clock
	model     energy.Model
	accs      map[int64]*acc
	nextFinal int64 // lowest window index not yet finalized
	maxIndex  int64 // highest window index touched
	watermark Clock // highest event end time seen
	late      uint64
	done      []Window
}

// New builds a collector.
func New(opts Options) *Collector {
	if opts.WindowNs <= 0 {
		opts.WindowNs = DefaultWindowNs
	}
	model := energy.Default()
	if opts.Energy != nil {
		model = *opts.Energy
	}
	return &Collector{
		opts:     opts,
		width:    opts.WindowNs,
		model:    model,
		accs:     make(map[int64]*acc),
		maxIndex: -1,
	}
}

// WindowNs returns the configured window width.
func (c *Collector) WindowNs() Clock { return c.width }

// at returns the accumulator for the window containing t, or nil when that
// window already finalized (the event is tallied as late).
func (c *Collector) at(t Clock) *acc {
	if t < 0 {
		t = 0
	}
	idx := t / c.width
	if idx < c.nextFinal {
		c.late++
		return nil
	}
	a := c.accs[idx]
	if a == nil {
		a = &acc{}
		c.accs[idx] = a
	}
	if idx > c.maxIndex {
		c.maxIndex = idx
	}
	return a
}

// advance moves the high-water mark and finalizes every window whose end is
// at least finalizeLagWindows behind it.
func (c *Collector) advance(end Clock) {
	if end <= c.watermark {
		return
	}
	c.watermark = end
	ready := end/c.width - finalizeLagWindows // windows strictly below are safe
	for c.nextFinal < ready && c.nextFinal <= c.maxIndex {
		c.finalize()
	}
}

// finalize seals window c.nextFinal (empty windows included, keeping the
// series dense) and hands it to OnWindow.
func (c *Collector) finalize() {
	idx := c.nextFinal
	c.nextFinal++
	a := c.accs[idx]
	delete(c.accs, idx)
	w := Window{
		Index:   idx,
		StartNs: idx * c.width,
		EndNs:   (idx + 1) * c.width,
	}
	if a != nil {
		w.Writes = a.writes
		w.Refresh = a.refresh
		w.Cache = a.cache
		w.BusyNs = a.busyNs
		if c.opts.Banks > 0 {
			w.Utilization = float64(a.busyNs) / (float64(c.width) * float64(c.opts.Banks))
		}
		var maxBusy int64
		for _, ns := range a.bankBusy {
			if ns > maxBusy {
				maxBusy = ns
			}
		}
		w.MaxBankUtilization = float64(maxBusy) / float64(c.width)
		w.Read = summarize(&a.read)
		w.Write = summarize(&a.write)
		w.EnergyPJ = c.price(a)
	}
	c.done = append(c.done, w)
	if c.opts.OnWindow != nil {
		c.opts.OnWindow(w)
	}
}

// price estimates one window's write and refresh energy: first writes and
// in-budget rewrites are RESET-only, α-writes and conventional writes are
// full row writes, and each completed refresh costs one row read plus one
// full row write (§3.2).
func (c *Collector) price(a *acc) float64 {
	m := c.model
	pj := float64(a.writes.First+a.writes.Rewrite)*m.RowWriteFast +
		float64(a.writes.Alpha+a.writes.FlipNWrite)*m.RowWriteFull +
		float64(a.refresh.Completed)*(m.RowRead+m.RowWriteFull)
	return pj
}

// Record implements probe.Sink.
func (c *Collector) Record(ev probe.Event) {
	switch ev.Kind {
	case probe.BankBusy:
		c.span(ev)
		c.advance(ev.Time + ev.Dur)
		return
	case probe.RefreshPaused, probe.RefreshCompleted:
		// Refresh intervals occupy their bank: count the event at its start
		// window and apportion the occupancy like a busy span.
		c.span(ev)
	}
	a := c.at(ev.Time)
	if a != nil {
		switch ev.Kind {
		case probe.WriteFirst:
			a.writes.First++
		case probe.WriteWOMRewrite:
			a.writes.Rewrite++
		case probe.WriteAlpha:
			a.writes.Alpha++
		case probe.WriteFlipNWrite:
			a.writes.FlipNWrite++
		case probe.RefreshScheduled:
			a.refresh.Scheduled++
		case probe.RefreshStarted:
			a.refresh.Started++
		case probe.RefreshPaused:
			a.refresh.Paused++
		case probe.RefreshResumed:
			a.refresh.Resumed++
		case probe.RefreshCompleted:
			a.refresh.Completed++
		case probe.CacheHit:
			a.cache.Hits++
		case probe.CacheFill:
			a.cache.Fills++
		case probe.CacheEvict:
			a.cache.Evicts++
		case probe.CacheWriteback:
			a.cache.Writebacks++
		}
	}
	c.advance(ev.Time + ev.Dur)
}

// span apportions an interval event's duration across every window it
// overlaps, tracking the per-bank share for MaxBankUtilization.
func (c *Collector) span(ev probe.Event) {
	if ev.Dur <= 0 {
		return
	}
	key := ev.Rank<<16 | (ev.Bank + 1) // Bank is -1 for rank-wide resources
	start, end := ev.Time, ev.Time+ev.Dur
	if start < 0 {
		start = 0
	}
	for t := start; t < end; {
		winEnd := (t/c.width + 1) * c.width
		chunk := winEnd - t
		if rest := end - t; rest < chunk {
			chunk = rest
		}
		if a := c.at(t); a != nil {
			a.busyNs += chunk
			if a.bankBusy == nil {
				a.bankBusy = make(map[int]int64)
			}
			a.bankBusy[key] += chunk
		}
		t = winEnd
	}
}

// ObserveLatency is the controller latency hook (memctrl.Config.Latency):
// it buckets each completed demand request's latency into the window of its
// completion time.
func (c *Collector) ObserveLatency(now Clock, read bool, latency Clock) {
	a := c.at(now)
	if a != nil {
		if read {
			a.read.Observe(latency)
		} else {
			a.write.Observe(latency)
		}
	}
	c.advance(now)
}

// Finish finalizes every remaining window and returns the completed series.
// simulatedNs stamps the run's end time; arch labels it. The collector must
// not be used afterwards.
func (c *Collector) Finish(arch string, simulatedNs int64) *Series {
	for c.nextFinal <= c.maxIndex {
		c.finalize()
	}
	return &Series{
		Arch:        arch,
		WindowNs:    c.width,
		SimulatedNs: simulatedNs,
		Banks:       c.opts.Banks,
		LateEvents:  c.late,
		Windows:     c.done,
	}
}
