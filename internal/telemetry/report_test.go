package telemetry

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sampleDoc builds a small two-arch document with enough signal to exercise
// every chart section.
func sampleDoc() *Document {
	mkWin := func(i int64, mix WriteMix) Window {
		return Window{
			Index: i, StartNs: i * 1000, EndNs: (i + 1) * 1000,
			Writes:      mix,
			Refresh:     RefreshActivity{Completed: uint64(i)},
			Cache:       CacheActivity{Hits: 3, Fills: 1},
			BusyNs:      500,
			Utilization: 0.25,
			Read:        LatencySummary{Count: 10, MeanNs: 120, P50Ns: 100, P95Ns: 300, P99Ns: 400, MaxNs: 500},
			Write:       LatencySummary{Count: 5, MeanNs: 700, P50Ns: 600, P95Ns: 1200, P99Ns: 1400, MaxNs: 1500},
			EnergyPJ:    1234.5,
		}
	}
	return &Document{
		Schema:   SchemaVersion,
		Workload: "uniform <script>alert(1)</script>",
		Requests: 1000,
		Seed:     42,
		WindowNs: 1000,
		Series: []Series{
			{
				Arch: "PCM w/o WOM-code", WindowNs: 1000, SimulatedNs: 3000, Banks: 4,
				Windows: []Window{
					mkWin(0, WriteMix{FlipNWrite: 8}),
					mkWin(1, WriteMix{FlipNWrite: 6}),
					mkWin(2, WriteMix{FlipNWrite: 7}),
				},
			},
			{
				Arch: "WCPCM", WindowNs: 1000, SimulatedNs: 3000, Banks: 5,
				Windows: []Window{
					mkWin(0, WriteMix{First: 4, Rewrite: 3}),
					mkWin(1, WriteMix{Rewrite: 2, Alpha: 2}),
					mkWin(2, WriteMix{Alpha: 1, FlipNWrite: 1}),
				},
			},
		},
	}
}

func TestReportIsSelfContained(t *testing.T) {
	var b strings.Builder
	if err := WriteHTMLReport(&b, sampleDoc()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Structure: a full standalone page with inline SVG charts.
	for _, want := range []string{
		"<!doctype html>", "<svg", "</svg>", "<polyline", "<polygon",
		"PCM w/o WOM-code", "WCPCM", SchemaVersion,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}

	// Self-contained: no scripts, no external fetches of any kind. The only
	// URL allowed is the SVG xmlns declaration.
	for _, banned := range []string{
		"<script", "<link", "<img", "<iframe", "src=", "@import", "url(",
		"https://", "fetch(", "XMLHttpRequest",
	} {
		if strings.Contains(out, banned) {
			t.Errorf("report contains banned token %q — must be self-contained", banned)
		}
	}
	allowed := regexp.MustCompile(`xmlns="http://www\.w3\.org/2000/svg"`)
	if got := strings.Count(out, "http://"); got != len(allowed.FindAllString(out, -1)) {
		t.Errorf("report has %d http:// occurrences; all must be SVG xmlns declarations", got)
	}

	// Untrusted workload names are escaped, not interpolated raw.
	if strings.Contains(out, "<script>alert(1)</script>") {
		t.Error("workload name not HTML-escaped")
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Error("escaped workload name missing from report")
	}
}

func TestReportChartGeometry(t *testing.T) {
	var b strings.Builder
	if err := WriteHTMLReport(&b, sampleDoc()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Every polyline/polygon coordinate stays inside the chart viewBox.
	coord := regexp.MustCompile(`points="([^"]+)"`)
	pair := regexp.MustCompile(`(-?\d+(?:\.\d+)?),(-?\d+(?:\.\d+)?)`)
	for _, m := range coord.FindAllStringSubmatch(out, -1) {
		for _, p := range pair.FindAllStringSubmatch(m[1], -1) {
			x, err := strconv.ParseFloat(p[1], 64)
			if err != nil {
				t.Fatalf("bad x %q: %v", p[1], err)
			}
			y, err := strconv.ParseFloat(p[2], 64)
			if err != nil {
				t.Fatalf("bad y %q: %v", p[2], err)
			}
			if x < 0 || x > chartW || y < 0 || y > chartH {
				t.Fatalf("point (%v,%v) outside %dx%d viewBox", x, y, chartW, chartH)
			}
		}
	}
}

func TestReportRejectsEmptyDocument(t *testing.T) {
	var b strings.Builder
	if err := WriteHTMLReport(&b, &Document{Schema: SchemaVersion}); err == nil {
		t.Fatal("expected error for empty document")
	}
}

func TestReportHandlesZeroValuedSeries(t *testing.T) {
	// All-zero windows must not divide by zero or emit degenerate charts.
	doc := &Document{
		Schema: SchemaVersion, Workload: "idle", WindowNs: 1000,
		Series: []Series{{Arch: "baseline", WindowNs: 1000, Windows: make([]Window, 3)}},
	}
	var b strings.Builder
	if err := WriteHTMLReport(&b, doc); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "NaN") || strings.Contains(b.String(), "Inf") {
		t.Error("zero-valued series produced NaN/Inf coordinates")
	}
}
