package engine

import (
	"sort"
	"time"
)

// This file is the automatic slow-job profiler: a monitor goroutine that
// samples every running job's rolling event rate and captures CPU+heap
// pprof profiles (into cfg.Profiles) from jobs that are struggling. Two
// triggers, checked every MonitorInterval:
//
//   - slow: the job's rolling events/sec over the last pass dropped below
//     SlowFraction of the fleet median. Needs ≥2 running jobs — with one
//     job the median is the job itself and the comparison is vacuous.
//   - deadline: a job with a timeout has consumed DeadlineFraction of it.
//     It is about to be killed; the profile is the post-mortem.
//
// Each job is profiled at most once (job.profiled latch): profiles answer
// "why is this job slow", and a second capture of the same job buys little
// while costing a StartCPUProfile window that is process-global.
//
// The monitor reads only atomics (span live counters, job state) and never
// blocks job execution. It requires per-job perf accounting: with
// DisablePerf there are no spans and nothing to sample.

// slowSample is one running job's observation for a monitor pass.
type slowSample struct {
	id       string
	rate     float64 // events/sec since the previous pass
	elapsed  time.Duration
	timeout  time.Duration // 0 = unbounded
	eligible bool          // rate is meaningful (job was seen last pass too)
}

// slowVerdicts applies the trigger rules to one pass's samples and returns
// jobID → reason for every job that should be profiled. Pure function so the
// policy is testable without goroutines or clocks.
func slowVerdicts(samples []slowSample, slowFrac, deadlineFrac float64) map[string]string {
	out := make(map[string]string)
	for _, s := range samples {
		if s.timeout > 0 && s.elapsed >= time.Duration(deadlineFrac*float64(s.timeout)) {
			out[s.id] = "deadline"
		}
	}
	// Median over jobs with a measured rate; the slow rule needs a fleet to
	// compare against, so fewer than two eligible jobs disables it.
	rates := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s.eligible {
			rates = append(rates, s.rate)
		}
	}
	if len(rates) < 2 {
		return out
	}
	sort.Float64s(rates)
	median := rates[len(rates)/2]
	if len(rates)%2 == 0 {
		median = (rates[len(rates)/2-1] + rates[len(rates)/2]) / 2
	}
	if median <= 0 {
		return out
	}
	for _, s := range samples {
		if _, dup := out[s.id]; dup {
			continue // deadline outranks slow
		}
		if s.eligible && s.rate < slowFrac*median {
			out[s.id] = "slow"
		}
	}
	return out
}

// monitor is the goroutine body; started by New when cfg.Profiles is set,
// stopped by Shutdown via monStop.
func (m *Manager) monitor() {
	defer close(m.monDone)
	ticker := time.NewTicker(m.cfg.MonitorInterval)
	defer ticker.Stop()
	last := make(map[string]int64) // jobID → live event count at previous pass
	for {
		select {
		case <-m.monStop:
			return
		case <-ticker.C:
			m.monitorPass(last, m.cfg.MonitorInterval)
		}
	}
}

// monitorPass samples running jobs, applies the policy, and captures
// profiles for flagged jobs that have not been profiled yet.
func (m *Manager) monitorPass(last map[string]int64, interval time.Duration) {
	running := make(map[string]*Job)
	var samples []slowSample
	for _, job := range m.Jobs() {
		if job.State() != StateRunning {
			continue
		}
		span := job.span.Load()
		if span == nil {
			continue // DisablePerf or not yet started
		}
		live := span.LiveEvents()
		prev, seen := last[job.id]
		s := slowSample{
			id:       job.id,
			elapsed:  span.Elapsed(),
			timeout:  job.timeout,
			eligible: seen,
		}
		if seen {
			s.rate = float64(live-prev) / interval.Seconds()
		}
		last[job.id] = live
		running[job.id] = job
		samples = append(samples, s)
	}
	// Forget finished jobs so ids are not compared across restarts of the
	// same key and the map stays bounded by the running set.
	for id := range last {
		if _, ok := running[id]; !ok {
			delete(last, id)
		}
	}
	for id, reason := range slowVerdicts(samples, m.cfg.SlowFraction, m.cfg.DeadlineFraction) {
		job := running[id]
		if !job.profiled.CompareAndSwap(false, true) {
			continue // already captured once
		}
		caps, err := m.cfg.Profiles.Capture(job.id, job.trace.TraceID, reason, m.cfg.ProfileCPUDuration)
		if err != nil {
			// ErrBusy or I/O trouble: release the latch so a later pass can
			// retry while the job is still running.
			job.profiled.Store(false)
			m.log.Warn("slow-job profile capture failed", "job", job.id,
				"reason", reason, "error", err.Error())
			continue
		}
		m.metrics.ProfilesCaptured.Add(uint64(len(caps)))
		// The slow job itself is the exemplar a slow_jobs alert should
		// point at, not whichever job settled last.
		if ex := m.cfg.Exemplars; ex != nil {
			ex.Observe("slow", job.id, job.trace.TraceID)
		}
		m.log.Info("slow-job profiles captured", "job", job.id,
			"reason", reason, "profiles", len(caps))
	}
}
