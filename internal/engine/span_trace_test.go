package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"

	"womcpcm/internal/probe"
	"womcpcm/internal/span"
)

// A fixed upstream trace position: submitting with this traceparent must
// continue the caller's trace instead of starting a fresh one.
const testTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

var hex32 = regexp.MustCompile(`^[0-9a-f]{32}$`)

// TestJobTraceEndpoint drives a job through the service with an upstream
// traceparent header and checks the trace surface end to end: the
// submission response advertises the continued trace, GET
// /v1/jobs/{id}/trace serves well-formed Chrome trace-event JSON covering
// the lifecycle phases, and the root span parents under the caller's span.
func TestJobTraceEndpoint(t *testing.T) {
	rec := span.New(span.Config{Seed: 7})
	mgr := New(Config{Workers: 2, QueueDepth: 4, Tracer: rec})
	t.Cleanup(func() { mgr.Shutdown(context.Background()) }) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	body, _ := json.Marshal(JobRequest{Experiment: "fig5", Params: fastParams()})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(span.Header, testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}

	// The response names the job's own span inside the caller's trace: same
	// trace id, a fresh span id, sampled flag preserved.
	tc, ok := span.ParseTraceparent(view.Traceparent)
	if !ok {
		t.Fatalf("job view traceparent %q does not parse", view.Traceparent)
	}
	if tc.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("job trace id = %s, want the caller's", tc.TraceID)
	}
	if tc.SpanID == "b7ad6b7169203331" {
		t.Error("job reused the caller's span id instead of starting a child span")
	}
	if !tc.Sampled {
		t.Error("sampled flag not preserved from the caller's traceparent")
	}

	pollResult(t, ts, view.ID)

	tresp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traw, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace status = %d: %s", tresp.StatusCode, traw)
	}
	if got := tresp.Header.Get("X-Trace-ID"); got != tc.TraceID {
		t.Errorf("X-Trace-ID = %q, want %q", got, tc.TraceID)
	}
	var ct probe.ChromeTrace
	if err := json.Unmarshal(traw, &ct); err != nil {
		t.Fatalf("trace body is not Chrome trace JSON: %v", err)
	}
	names := make(map[string]int)
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name]++
		}
	}
	for _, want := range []string{"job", "admission", "queue_wait", "execute"} {
		if names[want] == 0 {
			t.Errorf("trace missing a %q span (got %v)", want, names)
		}
	}

	// The root "job" span parents under the caller's span id — the property
	// cluster dispatch relies on to stitch coordinator and worker spans.
	var rootParent string
	for _, s := range rec.Trace(tc.TraceID) {
		if s.Name == "job" {
			rootParent = s.Parent
		}
	}
	if rootParent != "b7ad6b7169203331" {
		t.Errorf("job span parent = %q, want the caller's span id", rootParent)
	}
}

// TestJobTraceUnavailable covers the endpoint's refusal modes: 501 when the
// manager has no tracer, 404 for an unknown job id.
func TestJobTraceUnavailable(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 2})
	t.Cleanup(func() { mgr.Shutdown(context.Background()) }) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	status, view := postJSON(t, ts, JobRequest{Experiment: "fig5", Params: fastParams()})
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("trace without tracer = %d, want 501", resp.StatusCode)
	}
	if view.Traceparent != "" {
		t.Errorf("job view advertises traceparent %q with tracing off", view.Traceparent)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/j-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestShed429CarriesTraceID: a queue-full rejection annotates its shed body
// with the submission's trace id, so a client can hand "my request was
// shed" straight to trace tooling.
func TestShed429CarriesTraceID(t *testing.T) {
	mgr, _ := blockingManager(t, Config{
		Workers: 1, QueueDepth: 1,
		Tracer: span.New(span.Config{Seed: 11}),
	})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	var last *http.Response
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(JobRequest{Experiment: "fig5", Params: fastParams()})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %d: status %d, want 202", i, resp.StatusCode)
			}
			continue
		}
		last = resp
	}
	defer last.Body.Close()
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status = %d, want 429", last.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(last.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	tid, _ := body["trace_id"].(string)
	if !hex32.MatchString(tid) {
		t.Errorf("shed body trace_id = %q, want 32 lowercase hex digits (%v)", tid, body)
	}
}
