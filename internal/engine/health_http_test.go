package engine

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"womcpcm/internal/health"
	"womcpcm/internal/sim"
)

func getReadyz(t *testing.T, ts *httptest.Server) (int, Readiness) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rd Readiness
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &rd); err != nil {
		t.Fatalf("readyz body %q: %v", raw, err)
	}
	return resp.StatusCode, rd
}

// TestReadyzLifecycle walks readiness through its three answers: ready,
// queue-saturated, draining — while /healthz stays a liveness 200
// throughout.
func TestReadyzLifecycle(t *testing.T) {
	release := make(chan struct{})
	mgr := New(Config{
		Workers:    1,
		QueueDepth: 2,
		Execute: func(ctx context.Context, job *Job) (*sim.Result, error) {
			select {
			case <-release:
				return nil, errors.New("released")
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	if status, rd := getReadyz(t, ts); status != http.StatusOK || !rd.Ready {
		t.Fatalf("fresh readyz = %d %+v, want 200 ready", status, rd)
	}

	// One job blocks the single worker; two more fill the depth-2 queue,
	// which is ≥ 90% of capacity → not ready.
	for i := 0; i < 3; i++ {
		if status, _ := postJSON(t, ts, JobRequest{Experiment: "fig5", Params: fastParams()}); status != http.StatusAccepted {
			t.Fatalf("submit %d status = %d", i, status)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, rd := getReadyz(t, ts)
		if status == http.StatusServiceUnavailable {
			if rd.Ready || rd.Reason == "" || rd.QueueCap != 2 {
				t.Fatalf("saturated readyz body = %+v", rd)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never saturated (last %d %+v)", status, rd)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Liveness is unaffected by saturation.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during saturation: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	close(release)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if status, rd := getReadyz(t, ts); status == http.StatusOK && rd.Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never recovered after release")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Draining: still alive, never ready again.
	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if status, rd := getReadyz(t, ts); status != http.StatusServiceUnavailable || rd.Reason != "draining" {
		t.Fatalf("draining readyz = %d %+v", status, rd)
	}
}

func TestAlertRoutes(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck

	// Without WithAlerts the routes refuse like the other optional planes.
	bare := httptest.NewServer(NewServer(mgr))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("alerts without engine = %d, want 501", resp.StatusCode)
	}

	he, err := health.NewEngine(health.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr, WithAlerts(he)))
	defer ts.Close()
	resp, err = http.Get(ts.URL + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Alerts []health.AlertView   `json:"alerts"`
		Counts map[health.State]int `json:"counts"`
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alerts = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("alerts body %q: %v", raw, err)
	}
	if len(body.Alerts) != 0 {
		t.Fatalf("quiet engine has alerts: %+v", body.Alerts)
	}

	resp, err = http.Get(ts.URL + "/v1/alerts/al-000042")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown alert = %d, want 404", resp.StatusCode)
	}
}

// TestExemplarObservedOnSettle checks the engine feeds the alerting
// plane's exemplar store as jobs finish.
func TestExemplarObservedOnSettle(t *testing.T) {
	ex := health.NewExemplars()
	mgr := New(Config{Workers: 1, QueueDepth: 4, Exemplars: ex})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	status, view := postJSON(t, ts, JobRequest{
		Experiment: "fig5", Params: fastParams(), Tenant: "alpha",
	})
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}
	pollResult(t, ts, view.ID)

	got, ok := ex.Get("service")
	if !ok || got.JobID != view.ID {
		t.Fatalf("service exemplar = %+v ok=%v, want job %s", got, ok, view.ID)
	}
	if got, ok := ex.Get("tenant:alpha"); !ok || got.JobID != view.ID {
		t.Fatalf("tenant exemplar = %+v ok=%v", got, ok)
	}
}

// TestObserveExemplarDisabledZeroAlloc pins the acceptance contract:
// -alerts=false adds zero allocations to the job hot path — the settle
// hook is one nil pointer check.
func TestObserveExemplarDisabledZeroAlloc(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	job := &Job{id: "j-000001", tenant: "alpha"}
	allocs := testing.AllocsPerRun(1000, func() {
		mgr.observeExemplar(job)
	})
	if allocs != 0 {
		t.Fatalf("disabled observeExemplar allocates %g/op, want 0", allocs)
	}
}
