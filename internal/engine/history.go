package engine

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"womcpcm/internal/tsdb"
)

// ErrNoHistory rejects history routes when womd runs without -history.
var ErrNoHistory = errors.New("engine: metric history not configured (start womd with -history)")

// WithHistory serves db's range queries on GET /v1/query_range,
// /v1/series, and /v1/alerts/history. Without it those routes refuse
// with 501 (ErrNoHistory), matching the other optional planes.
func WithHistory(db *tsdb.DB) ServerOption {
	return func(s *Server) {
		if db != nil {
			s.history = db
		}
	}
}

// History exposes the server's history store; nil when -history is off.
func (s *Server) History() *tsdb.DB { return s.history }

// queryRange serves GET /v1/query_range?metric=&match[l]=&start=&end=&
// step=&agg=&tier=. start/end accept unix seconds (fractions allowed),
// unix milliseconds, or RFC3339; step and tier accept Go durations or
// bare seconds. agg is one of rate|avg|min|max|sum (default avg).
func (s *Server) queryRange(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, ErrNoHistory)
		return
	}
	q := r.URL.Query()
	rq := tsdb.RangeQuery{Metric: q.Get("metric"), Agg: q.Get("agg")}
	var err error
	if rq.StartMs, err = parseTimeMs(q.Get("start")); err != nil {
		writeError(w, fmt.Errorf("%w: start: %v", tsdb.ErrBadQuery, err))
		return
	}
	if rq.EndMs, err = parseTimeMs(q.Get("end")); err != nil {
		writeError(w, fmt.Errorf("%w: end: %v", tsdb.ErrBadQuery, err))
		return
	}
	if v := q.Get("step"); v != "" {
		d, err := parseDur(v)
		if err != nil {
			writeError(w, fmt.Errorf("%w: step: %v", tsdb.ErrBadQuery, err))
			return
		}
		rq.StepMs = d.Milliseconds()
	}
	if v := q.Get("tier"); v != "" {
		d, err := parseDur(v)
		if err != nil {
			writeError(w, fmt.Errorf("%w: tier: %v", tsdb.ErrBadQuery, err))
			return
		}
		rq.TierStep = d
	}
	for key, vals := range q {
		if strings.HasPrefix(key, "match[") && strings.HasSuffix(key, "]") && len(vals) > 0 {
			if rq.Match == nil {
				rq.Match = make(map[string]string, 4)
			}
			rq.Match[key[len("match["):len(key)-1]] = vals[0]
		}
	}
	series, err := s.history.QueryRange(rq)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"metric":   rq.Metric,
		"agg":      rq.Agg,
		"start_ms": rq.StartMs,
		"end_ms":   rq.EndMs,
		"step_ms":  rq.StepMs,
		"series":   series,
	})
}

// listSeries serves GET /v1/series[?metric=]: the discovery surface for
// query_range and womtool graph.
func (s *Server) listSeries(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, ErrNoHistory)
		return
	}
	series := s.history.Series(r.URL.Query().Get("metric"))
	writeJSON(w, http.StatusOK, map[string]any{"series": series})
}

// alertHistory serves GET /v1/alerts/history[?limit=&start=&end=]: the
// journaled alert lifecycle transitions, newest first — unlike
// /v1/alerts, this survives a restart.
func (s *Server) alertHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, ErrNoHistory)
		return
	}
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, fmt.Errorf("%w: limit %q", tsdb.ErrBadQuery, v))
			return
		}
		limit = n
	}
	var from, to time.Time
	if v := q.Get("start"); v != "" {
		ms, err := parseTimeMs(v)
		if err != nil {
			writeError(w, fmt.Errorf("%w: start: %v", tsdb.ErrBadQuery, err))
			return
		}
		from = time.UnixMilli(ms)
	}
	if v := q.Get("end"); v != "" {
		ms, err := parseTimeMs(v)
		if err != nil {
			writeError(w, fmt.Errorf("%w: end: %v", tsdb.ErrBadQuery, err))
			return
		}
		to = time.UnixMilli(ms)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"transitions": s.history.AlertHistory(from, to, limit),
	})
}

// parseTimeMs accepts unix seconds (with optional fraction), unix
// milliseconds (values past year 2603 in seconds are read as ms), or
// RFC3339, and returns unix milliseconds.
func parseTimeMs(v string) (int64, error) {
	if v == "" {
		return 0, fmt.Errorf("required")
	}
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		if f > 2e10 { // past 2603-10-11 as seconds: treat as milliseconds
			return int64(f), nil
		}
		return int64(f * 1000), nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return 0, err
	}
	return t.UnixMilli(), nil
}

// parseDur accepts a Go duration string or bare seconds.
func parseDur(v string) (time.Duration, error) {
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		return time.Duration(secs * float64(time.Second)), nil
	}
	return time.ParseDuration(v)
}
