package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"womcpcm/internal/telemetry"
)

// streamClientBuf bounds one SSE subscriber's event backlog. A client that
// cannot drain this many events loses the overflow (counted in
// womd_stream_dropped_total) instead of back-pressuring the simulation: the
// experiment's clock must never wait on a slow network reader.
const streamClientBuf = 256

// StreamEvent is one live job event: the event name plus a single-line JSON
// payload (json.Marshal emits no newlines, so one SSE data: line suffices).
// Exported so cluster workers can forward a job's feed (Job.SubscribeStream)
// to their coordinator.
type StreamEvent struct {
	Name string
	Data []byte
}

// streamWindow is the "window" event payload: one finalized telemetry window
// labeled with its architecture.
type streamWindow struct {
	Arch   string           `json:"arch"`
	Window telemetry.Window `json:"window"`
}

// streamSub is one subscriber's bounded event feed. The channel closes when
// the job reaches a terminal state.
type streamSub struct {
	ch chan StreamEvent
}

// streamHub fans one job's live events (telemetry windows, progress) out to
// its SSE subscribers. Publishing never blocks: a subscriber whose buffer is
// full loses the event, with the loss counted in metrics.
type streamHub struct {
	metrics *Metrics
	// dropped counts this hub's lost events — the per-job view of
	// womd_stream_dropped_total, surfaced in progress snapshots and the
	// job's perf block.
	dropped atomic.Uint64

	mu     sync.Mutex
	subs   map[*streamSub]struct{}
	closed bool
}

func newStreamHub(metrics *Metrics) *streamHub {
	return &streamHub{metrics: metrics, subs: make(map[*streamSub]struct{})}
}

// publish marshals v once and offers the event to every subscriber,
// dropping per-subscriber on a full buffer. Marshal failures are dropped
// silently — payloads are this package's own types.
func (h *streamHub) publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.publishRaw(name, data)
}

// publishRaw offers an already-marshaled event to every subscriber —
// the pass-through for frames that arrive marshaled from a cluster worker.
func (h *streamHub) publishRaw(name string, data []byte) {
	ev := StreamEvent{Name: name, Data: data}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			h.metrics.StreamDropped.Add(1)
			h.dropped.Add(1)
		}
	}
}

// droppedCount reports this hub's lost events; nil-safe (cache-hit jobs
// have no hub).
func (h *streamHub) droppedCount() uint64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// subscribe registers a new bounded feed. The returned cancel is idempotent
// and must be called when the client disconnects; it unregisters the
// subscriber and drops its buffered tail. Subscribing to a closed hub
// returns an already-closed feed, so callers fall straight through to the
// terminal event.
func (h *streamHub) subscribe() (*streamSub, func()) {
	sub := &streamSub{ch: make(chan StreamEvent, streamClientBuf)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(sub.ch)
		return sub, func() {}
	}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	h.metrics.StreamClients.Add(1)

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			_, present := h.subs[sub]
			delete(h.subs, sub)
			h.mu.Unlock()
			if present {
				h.metrics.StreamClients.Add(-1)
			}
		})
	}
	return sub, cancel
}

// streamJob serves GET /v1/jobs/{id}/stream: a Server-Sent-Events feed of
// the job's live telemetry ("window" events, replay jobs), throttled
// "progress" events, and a final "done" event carrying the terminal JobView.
// Heartbeat comments keep idle streams alive through proxies; a client
// disconnect (request context) tears the subscription down. See DESIGN.md
// §10 for the protocol.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, fmt.Errorf("%w: job %q", ErrNotFound, r.PathValue("id")))
		return
	}
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // no proxy buffering
	w.WriteHeader(http.StatusOK)

	// Reconnect hint: a dropped client retries after 2s and, for a still
	// live job, resumes the stream (windows missed in between are lost —
	// the full series is in the job result).
	writeEvent := func(name string, data []byte) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	if _, err := io.WriteString(w, "retry: 2000\n\n"); err != nil || rc.Flush() != nil {
		return
	}
	sendDone := func() {
		data, err := json.Marshal(job.View())
		if err == nil {
			writeEvent("done", data)
		}
	}
	if job.State().Terminal() || job.hub == nil {
		sendDone()
		return
	}
	sub, cancelSub := job.hub.subscribe()
	defer cancelSub()
	// The fan-out leg of the job's trace: how long this subscriber held
	// the stream open and how many events it was sent.
	sse := s.m.Tracer().StartSpan(job.TraceContext(), "sse_stream")
	var sseEvents int64
	defer func() {
		sse.SetInt("events", sseEvents)
		sse.End()
	}()
	// Initial snapshot: a client connecting mid-job sees the current
	// position without waiting for the next report.
	if data, err := json.Marshal(job.Progress()); err == nil {
		if !writeEvent("progress", data) {
			return
		}
		sseEvents++
	}
	heartbeat := time.NewTicker(s.heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil || rc.Flush() != nil {
				return
			}
		case ev, open := <-sub.ch:
			if !open {
				// Terminal state: the buffered tail drained, report the
				// outcome and end the stream.
				sendDone()
				sseEvents++
				return
			}
			if !writeEvent(ev.Name, ev.Data) {
				return
			}
			sseEvents++
		}
	}
}

// close marks the job terminal: every subscriber's channel closes once its
// buffered events drain, and late subscribers get a closed feed. Idempotent
// and nil-safe (jobs born terminal have no hub).
func (h *streamHub) close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	n := int64(0)
	for sub := range h.subs {
		close(sub.ch)
		n++
	}
	h.subs = make(map[*streamSub]struct{})
	if n > 0 {
		h.metrics.StreamClients.Add(-n)
	}
}
