package engine

import (
	"context"

	"womcpcm/internal/span"
)

// Trace contexts ride the same path request ids do: the server middleware
// parses an incoming W3C traceparent header into the request context, and
// Submit picks it up so the job's root span continues the caller's trace —
// a cluster worker's "job" span parents under the coordinator's dispatch
// span instead of starting a trace of its own.

type traceParentKey struct{}

// WithTraceParent returns a context carrying an upstream trace position.
func WithTraceParent(ctx context.Context, tc span.Context) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceParentKey{}, tc)
}

// TraceParentFrom extracts the propagated trace context; ok=false when the
// request carried none.
func TraceParentFrom(ctx context.Context) (span.Context, bool) {
	if ctx == nil {
		return span.Context{}, false
	}
	tc, ok := ctx.Value(traceParentKey{}).(span.Context)
	return tc, ok
}
