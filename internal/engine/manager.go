package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"womcpcm/internal/health"
	"womcpcm/internal/perfmon"
	"womcpcm/internal/probe"
	"womcpcm/internal/resultstore"
	"womcpcm/internal/sched"
	"womcpcm/internal/sim"
	"womcpcm/internal/span"
	"womcpcm/internal/telemetry"
	"womcpcm/internal/tsdb"
)

// Config sizes the manager. Zero values select production defaults.
type Config struct {
	// Workers is the pool size (default GOMAXPROCS). Each worker runs one
	// job at a time; the job's own Parallelism then fans out simulations,
	// so total CPU use is roughly Workers × per-job Parallelism — size
	// per-job Parallelism down when raising Workers.
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64). A full
	// queue rejects submissions (HTTP 429) instead of queueing unbounded.
	// Ignored when Queue is set — the queue implementation owns its bound.
	QueueDepth int
	// Queue replaces the pending-job buffer; nil selects the default FIFO
	// of QueueDepth, byte-compatible with the pre-pluggable behavior. womd
	// -tenants installs NewTenantQueue here for multi-tenant SLO
	// scheduling.
	Queue Queue
	// DefaultTimeout bounds jobs that do not request their own timeout;
	// 0 means no default bound.
	DefaultTimeout time.Duration
	// MaxTraceRecords bounds one trace upload (default 4M records).
	MaxTraceRecords int
	// MaxTraces bounds concurrently stored uploads (default 64).
	MaxTraces int
	// MaxJobs bounds retained job records, completed ones included
	// (default 4096). Submissions beyond it are rejected until jobs are
	// deleted — crude but bounded; a later PR can add result eviction.
	MaxJobs int
	// Store, when set, memoizes successful cacheable runs: submissions
	// whose content key is already stored are served without executing,
	// and concurrent identical submissions are folded into one execution
	// (singleflight). Trace replays bypass the store — their input lives
	// outside the hashed params. The manager does not close the store.
	Store *resultstore.Store
	// Logger receives structured job lifecycle logs (queued, started,
	// finished) with request ids; nil discards them.
	Logger *slog.Logger
	// DisablePerf turns off per-job host-time accounting. The disabled path
	// is the probe contract: a nil span, one pointer check per site, no
	// allocations (see perfmon's BenchmarkSpanDisabled).
	DisablePerf bool
	// Profiles, when set, enables automatic slow-job profiling: a monitor
	// goroutine samples running jobs' rolling events/sec and captures
	// CPU+heap pprof profiles into this store when a job falls below
	// SlowFraction of the fleet median or crosses DeadlineFraction of its
	// timeout. nil disables the monitor entirely.
	Profiles *perfmon.ProfileStore
	// SlowFraction triggers a capture when a job's rolling rate drops below
	// this fraction of the fleet median (default 0.25). Needs at least two
	// running jobs — a median of one is the job itself.
	SlowFraction float64
	// DeadlineFraction triggers a capture when a job with a timeout has
	// consumed this fraction of it (default 0.9) — about to be killed is
	// the last chance to see why it was slow.
	DeadlineFraction float64
	// MonitorInterval spaces monitor passes (default 15s).
	MonitorInterval time.Duration
	// Execute, when set, replaces in-process experiment execution: a worker
	// goroutine that dequeues a job calls it instead of running the
	// experiment itself. The cluster coordinator (internal/cluster) installs
	// its dispatcher here, turning the pool into N concurrent remote-job
	// slots while the queue, admission control, result store, singleflight,
	// and SSE fan-out stay exactly as in standalone mode. Returning
	// ErrExecuteLocally falls back to in-process execution for that job
	// (e.g. no workers registered, or inputs that cannot cross the wire).
	Execute ExecuteFunc
	// ProfileCPUDuration is how long a capture samples CPU (default 500ms).
	ProfileCPUDuration time.Duration
	// Exemplars, when set, records the latest job/trace per subject
	// (service, tenant, worker, shed, slow) as each job settles, so alert
	// annotations (internal/health) can point at a concrete trace. nil —
	// the -alerts=false path — costs one pointer check per job, pinned by
	// TestObserveExemplarDisabledZeroAlloc.
	Exemplars *health.Exemplars
	// Tracer records the job lifecycle as distributed-trace spans
	// (internal/span): a root "job" span per submission with admission,
	// queue-wait, execute/dispatch, store, and SSE children, propagated
	// across cluster hops via W3C traceparent. nil disables tracing — every
	// instrumentation site is a nil-safe no-op.
	Tracer *span.Recorder
	// History, when set, records each finished job's wall time into the
	// embedded metrics history (internal/tsdb) alongside the self-scraped
	// families. nil — the -history=false path — costs one pointer check
	// per job, pinned by TestObserveHistoryDisabledZeroAlloc.
	History *tsdb.DB
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.SlowFraction <= 0 {
		c.SlowFraction = 0.25
	}
	if c.DeadlineFraction <= 0 {
		c.DeadlineFraction = 0.9
	}
	if c.MonitorInterval <= 0 {
		c.MonitorInterval = 15 * time.Second
	}
	return c
}

// ExecuteFunc runs one job outside the manager (see Config.Execute). ctx
// carries the job's timeout and cancellation; implementations must return
// ctx.Err() when it ends the run so the manager maps the outcome onto the
// usual timed-out/canceled states.
type ExecuteFunc func(ctx context.Context, job *Job) (*sim.Result, error)

// ErrExecuteLocally is returned by an ExecuteFunc to decline a job: the
// manager runs it in-process instead, exactly as in standalone mode.
var ErrExecuteLocally = errors.New("engine: execute locally")

// Admission and lifecycle errors, mapped to HTTP statuses by the server.
var (
	// ErrQueueFull rejects a submission when the queue is at depth.
	ErrQueueFull = errors.New("engine: job queue full")
	// ErrDraining rejects submissions after shutdown began.
	ErrDraining = errors.New("engine: manager draining")
	// ErrTooManyJobs rejects submissions past the retained-job bound.
	ErrTooManyJobs = errors.New("engine: too many retained jobs")
	// ErrNotFound reports an unknown job or trace id.
	ErrNotFound = errors.New("engine: not found")
	// ErrNoTenants rejects tenant routes when womd runs without -tenants.
	ErrNoTenants = errors.New("engine: tenant scheduling not configured (start womd with -tenants)")
	// ErrNoTracer rejects trace routes when tracing is disabled.
	ErrNoTracer = errors.New("engine: tracing not configured (start womd with -trace-spans > 0)")
	// ErrNoAlerts rejects alert routes when alerting is disabled.
	ErrNoAlerts = errors.New("engine: alerting not configured (start womd with -alerts)")
)

// Manager owns the job queue, the worker pool, the trace store, and the
// metrics. One Manager serves one process.
type Manager struct {
	cfg     Config
	metrics *Metrics
	traces  *TraceStore
	store   *resultstore.Store // nil when caching is off
	log     *slog.Logger

	baseCtx context.Context // canceled to abort all running jobs
	abort   context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	seq      uint64
	draining bool
	queue    Queue
	// inflight tracks one leader job per content key so identical
	// concurrent submissions share a single execution.
	inflight map[string]*flight

	// monStop/monDone bracket the slow-job monitor goroutine's lifetime;
	// both nil when cfg.Profiles is nil.
	monStop chan struct{}
	monDone chan struct{}

	wg sync.WaitGroup
}

// flight is one in-progress execution of a content key: the job doing the
// work plus every identical submission waiting on its outcome.
type flight struct {
	leader  *Job
	waiters []*Job
}

// New starts a manager and its worker pool.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	queue := cfg.Queue
	if queue == nil {
		queue = newFIFOQueue(cfg.QueueDepth)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:      cfg,
		metrics:  NewMetrics(),
		traces:   NewTraceStore(cfg.MaxTraceRecords, cfg.MaxTraces),
		store:    cfg.Store,
		log:      cfg.Logger,
		baseCtx:  ctx,
		abort:    cancel,
		jobs:     make(map[string]*Job),
		queue:    queue,
		inflight: make(map[string]*flight),
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	if cfg.Profiles != nil {
		m.monStop = make(chan struct{})
		m.monDone = make(chan struct{})
		go m.monitor()
	}
	return m
}

// Metrics exposes the service counters.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Traces exposes the upload store.
func (m *Manager) Traces() *TraceStore { return m.traces }

// Store exposes the result store; nil when caching is off.
func (m *Manager) Store() *resultstore.Store { return m.store }

// Profiles exposes the slow-job profile store; nil when profiling is off.
func (m *Manager) Profiles() *perfmon.ProfileStore { return m.cfg.Profiles }

// Tracer exposes the span recorder; nil when tracing is off.
func (m *Manager) Tracer() *span.Recorder { return m.cfg.Tracer }

// TenantViews snapshots per-tenant scheduling state when the manager runs
// on a tenant-aware queue; ErrNoTenants otherwise (the default FIFO).
func (m *Manager) TenantViews() ([]sched.TenantView, error) {
	if tq, ok := m.queue.(interface{ Views() []sched.TenantView }); ok {
		return tq.Views(), nil
	}
	return nil, ErrNoTenants
}

// QueueStats reports the pending queue's occupancy and admission bound
// (capacity 0 = unbounded) — the saturation signal for readiness and
// alerting.
func (m *Manager) QueueStats() (depth, capacity int) {
	return m.queue.Depth(), m.queue.Cap()
}

// DefaultReadySaturation is the queue-occupancy fraction at which
// readiness flips to not-ready: past it, new work is likely to be shed,
// so load balancers and the cluster coordinator should route elsewhere
// while the process keeps serving what it already holds.
const DefaultReadySaturation = 0.9

// Readiness is the GET /readyz body: distinct from liveness (/healthz),
// which stays truthful even while draining.
type Readiness struct {
	Ready bool `json:"ready"`
	// Reason says why Ready is false ("draining", "queue saturated ...").
	Reason     string `json:"reason,omitempty"`
	Draining   bool   `json:"draining"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap,omitempty"`
}

// Readiness reports whether this process should receive new work: false
// while draining or when the queue is at or past saturation×capacity.
// saturation ≤ 0 selects DefaultReadySaturation.
func (m *Manager) Readiness(saturation float64) Readiness {
	if saturation <= 0 {
		saturation = DefaultReadySaturation
	}
	m.mu.Lock()
	draining := m.draining
	m.mu.Unlock()
	depth, capacity := m.QueueStats()
	r := Readiness{Ready: true, Draining: draining, QueueDepth: depth, QueueCap: capacity}
	switch {
	case draining:
		r.Ready, r.Reason = false, "draining"
	case capacity > 0 && float64(depth) >= saturation*float64(capacity):
		r.Ready, r.Reason = false,
			fmt.Sprintf("queue saturated (%d of %d)", depth, capacity)
	}
	return r
}

// Submit validates the request, resolves its trace reference, and enqueues
// a job. A full queue or a draining manager rejects immediately —
// admission control instead of unbounded buffering. ctx only supplies the
// request id for the job's lifecycle logs (WithRequestID); it does not bound
// the job's execution — that is the job timeout's role.
func (m *Manager) Submit(ctx context.Context, req JobRequest) (*Job, error) {
	submitStart := time.Now()
	exp, err := sim.LookupExperiment(req.Experiment)
	if err != nil {
		return nil, err
	}
	params := req.Params
	if req.TraceID != "" {
		st, ok := m.traces.Get(req.TraceID)
		if !ok {
			return nil, fmt.Errorf("%w: trace %q", ErrNotFound, req.TraceID)
		}
		params.Trace = st.Records()
		params.TraceLabel = st.Label
	}
	if exp.NeedsTrace && len(params.Trace) == 0 {
		return nil, fmt.Errorf("engine: experiment %q needs trace_id", exp.Name)
	}
	if exp.NeedsProfile && params.Profile == nil {
		return nil, fmt.Errorf("engine: experiment %q needs params.profile", exp.Name)
	}
	// Reject malformed params at admission instead of at run time.
	if _, err := params.Config(context.Background()); err != nil {
		return nil, err
	}
	timeout := m.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	reqID := RequestIDFrom(ctx)
	// A job re-dispatched by a cluster coordinator carries its first
	// admission time, so queue-wait and any tenant deadline are measured
	// from when the client's submission was admitted — not restarted at
	// each hop. Future timestamps are clamped to now (clock skew).
	admitted := time.Now()
	if req.AdmittedAtMs > 0 {
		if t := time.UnixMilli(req.AdmittedAtMs); t.Before(admitted) {
			admitted = t
		}
	}

	// Content-address the request when the store can serve or dedup it.
	var key string
	if m.store != nil && resultstore.Cacheable(exp, params) {
		if k, err := resultstore.KeyForParams(exp.Name, params, m.store.SchemaVersion()); err == nil {
			key = k
		}
	}

	// The job's root "job" span. A submission carrying a propagated
	// traceparent (cluster dispatch) continues that trace — the worker's
	// root parents under the coordinator's dispatch span — otherwise a
	// fresh trace starts here. Every reject path below ends the span with
	// the error attached; settled jobs end it via endTrace.
	var root *span.Active
	if parent, ok := TraceParentFrom(ctx); ok {
		root = m.cfg.Tracer.StartSpan(parent, "job")
	} else {
		root = m.cfg.Tracer.StartTrace("job")
	}
	root.SetStr("experiment", exp.Name)
	if reqID != "" {
		root.SetStr("request_id", reqID)
	}
	if req.Tenant != "" {
		root.SetStr("tenant", req.Tenant)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.metrics.Rejected.Add(1)
		root.SetStr("error", ErrDraining.Error())
		root.End()
		return nil, ErrDraining
	}
	if len(m.jobs) >= m.cfg.MaxJobs {
		m.metrics.Rejected.Add(1)
		root.SetStr("error", ErrTooManyJobs.Error())
		root.End()
		return nil, ErrTooManyJobs
	}
	if key != "" {
		// Cache hit: the job is born succeeded, never touching the queue —
		// a disk read instead of minutes of simulation.
		getStart := time.Now()
		if entry, ok := m.store.Get(key); ok {
			m.metrics.CacheHits.Add(1)
			now := time.Now()
			m.seq++
			job := &Job{
				id: fmt.Sprintf("j-%06d", m.seq), seq: m.seq,
				exp: exp, req: req, params: params, timeout: timeout,
				key: key, cached: true, reqID: reqID, tenant: req.Tenant,
				trace: root.Context(),
				state: StateSucceeded, result: entry.Result,
				submitted: now, started: now, finished: now,
			}
			m.jobs[job.id] = job
			m.cfg.Tracer.Record(root.Context(), "store_hit", getStart, now,
				span.Attrs{"key": key})
			m.cfg.Tracer.Record(root.Context(), "admission", submitStart, now, nil)
			root.SetStr("job", job.id)
			root.SetBool("cached", true)
			root.SetStr("state", string(StateSucceeded))
			root.End()
			m.log.Info("job served from cache", "job", job.id,
				"experiment", exp.Name, "request_id", reqID, "key", key)
			return job, nil
		}
		m.metrics.CacheMisses.Add(1)
		// Singleflight: an identical job is already queued or running, so
		// this submission waits on that execution instead of repeating it.
		if fl, ok := m.inflight[key]; ok {
			m.metrics.Deduped.Add(1)
			m.seq++
			job := &Job{
				id: fmt.Sprintf("j-%06d", m.seq), seq: m.seq,
				exp: exp, req: req, params: params, timeout: timeout,
				key: key, dedupOf: fl.leader.id, reqID: reqID, tenant: req.Tenant,
				trace: root.Context(), rootSpan: root,
				state: StateQueued, submitted: admitted,
				hub: newStreamHub(m.metrics),
			}
			fl.waiters = append(fl.waiters, job)
			m.jobs[job.id] = job
			m.cfg.Tracer.Record(root.Context(), "admission", submitStart, time.Now(), nil)
			root.SetStr("job", job.id)
			root.SetStr("dedup_of", fl.leader.id)
			m.log.Info("job deduped", "job", job.id, "experiment", exp.Name,
				"request_id", reqID, "leader", fl.leader.id)
			return job, nil
		}
	}
	m.seq++
	// enq is both the admission span's right edge and the queue_wait
	// span's left edge (see recordQueueWait), set before Enqueue makes the
	// job visible to workers.
	enq := time.Now()
	job := &Job{
		id:            fmt.Sprintf("j-%06d", m.seq),
		seq:           m.seq,
		exp:           exp,
		req:           req,
		params:        params,
		timeout:       timeout,
		key:           key,
		reqID:         reqID,
		tenant:        req.Tenant,
		trace:         root.Context(),
		rootSpan:      root,
		traceEnqueued: enq,
		state:         StateQueued,
		submitted:     admitted,
		hub:           newStreamHub(m.metrics),
		startedCh:     make(chan struct{}),
	}
	if err := m.queue.Enqueue(job); err != nil {
		m.seq-- // id not spent
		m.metrics.Rejected.Add(1)
		// Stamp shed rejections with the trace id so the 429 body can be
		// joined back to this trace (errors.As exposes the pointer).
		var se *sched.ShedError
		if errors.As(err, &se) {
			se.TraceID = root.Context().TraceID
			if ex := m.cfg.Exemplars; ex != nil {
				ex.Observe("shed", "", se.TraceID)
				if se.Tenant != "" {
					ex.Observe("shed:tenant:"+se.Tenant, "", se.TraceID)
				}
			}
		}
		root.SetStr("error", err.Error())
		root.End()
		return nil, err
	}
	m.jobs[job.id] = job
	if key != "" {
		m.inflight[key] = &flight{leader: job}
	}
	m.cfg.Tracer.Record(root.Context(), "admission", submitStart, enq, nil)
	root.SetStr("job", job.id)
	m.metrics.Queued.Add(1)
	m.metrics.QueueDepth.Add(1)
	m.log.Info("job queued", "job", job.id, "experiment", exp.Name,
		"request_id", reqID, "queue_depth", m.metrics.QueueDepth.Load())
	return job, nil
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists jobs sorted by submission sequence, so listings are
// deterministic regardless of map iteration or deletion history.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// Cancel stops a job: queued jobs are skipped when dequeued, running jobs
// have their context canceled. Canceling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	j.requestCancel()
	return nil
}

// Delete forgets a terminal job, freeing its retained result.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: job %q", ErrNotFound, id)
	}
	if !j.State().Terminal() {
		return fmt.Errorf("engine: job %q is %s; cancel it first", id, j.State())
	}
	delete(m.jobs, id)
	return nil
}

// Shutdown drains gracefully: submissions are rejected from now on, queued
// and in-flight jobs run to completion, and workers exit. If ctx expires
// first, running jobs are aborted via their contexts and Shutdown returns
// ctx.Err() after the pool stops.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		m.queue.Close() // safe: submitters enqueue under m.mu and check draining
		if m.monStop != nil {
			close(m.monStop)
		}
	}
	m.mu.Unlock()
	if m.monDone != nil {
		<-m.monDone
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.abort()
		<-done
		return ctx.Err()
	}
}

// worker executes queued jobs until the queue closes on drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		job, ok := m.queue.Dequeue()
		if !ok {
			return
		}
		m.metrics.QueueDepth.Add(-1)
		m.runJob(job)
		m.queue.Done(job)
	}
}

// runJob drives one job through Running to a terminal state.
func (m *Manager) runJob(job *Job) {
	// The hub closes on every exit path: subscribers see the buffered tail,
	// then a closed feed, and serve the terminal event themselves.
	defer job.hub.close()
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if job.timeout > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, job.timeout)
	} else {
		ctx, cancel = context.WithCancel(m.baseCtx)
	}
	defer cancel()
	if !job.markRunning(cancel) {
		m.metrics.Canceled.Add(1)
		m.recordQueueWait(job)
		m.settleFlight(job, StateCanceled, nil, context.Canceled)
		job.endTrace()
		m.log.Info("job canceled before start", "job", job.id,
			"experiment", job.exp.Name, "request_id", job.reqID)
		return
	}
	m.metrics.Running.Add(1)
	m.metrics.ObserveQueueWait(time.Since(job.submittedAt()))
	m.recordQueueWait(job)
	m.log.Info("job started", "job", job.id, "experiment", job.exp.Name,
		"request_id", job.reqID)
	start := time.Now()
	var (
		res    *sim.Result
		err    error
		pspan  *perfmon.Span
		remote bool
	)
	// A configured Execute hook (cluster coordinator) gets the job first; it
	// declines with ErrExecuteLocally when no worker can take it. The
	// dispatch-side trace span is the hook's own (cluster's runOn).
	if m.cfg.Execute != nil {
		res, err = m.cfg.Execute(ctx, job)
		if errors.Is(err, ErrExecuteLocally) {
			res, err = nil, nil
		} else {
			remote = true
		}
	}
	var execSpan *span.Active
	if !remote {
		// Host-time accounting brackets the local run. A nil span
		// (DisablePerf) makes every perf touchpoint below a single pointer
		// check — the probe contract, pinned by BenchmarkSpanDisabled.
		if !m.cfg.DisablePerf {
			pspan = perfmon.Begin()
			job.span.Store(pspan)
		}
		execSpan = m.cfg.Tracer.StartSpan(job.trace, "execute")
		res, err = job.exp.Run(m.jobContext(ctx, job), job.params)
	}
	m.metrics.Running.Add(-1)
	wall := time.Since(start)
	m.metrics.ObserveWall(job.exp.Name, wall)
	// Nil-safe: with -history=false this is one pointer check, zero
	// allocations (TestObserveHistoryDisabledZeroAlloc).
	m.cfg.History.ObserveJob(job.exp.Name, wall.Seconds())
	if pspan != nil {
		rec := pspan.End()
		job.setPerf(rec)
		m.metrics.ObservePerf(job.exp.Name, rec)
		// Link the execute span to the perfmon record: the same sim-event
		// and host-cost figures the perf block reports, on the waterfall.
		execSpan.SetInt("sim_events", rec.SimEvents)
		execSpan.SetFloat("events_per_sec", rec.EventsPerSec)
		execSpan.SetInt("cpu_ns", rec.CPUNs)
		execSpan.SetInt("alloc_bytes", int64(rec.AllocBytes))
	} else if remote {
		// A remote job's accounting was measured on the worker and installed
		// via SetRemotePerf; fold it into the fleet-facing histograms here.
		if rec := job.perfRecord(); rec != nil {
			m.metrics.ObservePerf(job.exp.Name, *rec)
			m.metrics.AddWriteClasses(classArray(job.classCounts()))
		}
	}
	execSpan.End()
	switch {
	case err == nil:
		m.metrics.Completed.Add(1)
		job.finish(StateSucceeded, res, nil)
		m.storeResult(job, res, wall)
		m.settleFlight(job, StateSucceeded, res, nil)
	case errors.Is(err, context.DeadlineExceeded):
		err = fmt.Errorf("engine: job timed out after %s", job.timeout)
		m.metrics.Failed.Add(1)
		job.finish(StateFailed, nil, err)
		m.settleFlight(job, StateFailed, nil, err)
	case errors.Is(err, context.Canceled):
		m.metrics.Canceled.Add(1)
		job.finish(StateCanceled, nil, err)
		m.settleFlight(job, StateCanceled, nil, err)
	default:
		m.metrics.Failed.Add(1)
		job.finish(StateFailed, nil, err)
		m.settleFlight(job, StateFailed, nil, err)
	}
	job.endTrace()
	m.observeExemplar(job)
	attrs := []any{"job", job.id, "experiment", job.exp.Name,
		"request_id", job.reqID, "state", string(job.State()),
		"duration_ms", wall.Milliseconds()}
	if w := job.workerID(); w != "" {
		attrs = append(attrs, "worker", w)
	}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
		m.log.Warn("job finished", attrs...)
	} else {
		m.log.Info("job finished", attrs...)
	}
}

// observeExemplar feeds the alerting plane's per-subject exemplar store
// as a job settles, so a firing alert can point at a concrete recent
// trace. With alerting off (nil Exemplars) this is one pointer check on
// the job hot path — the -alerts=false contract, pinned by
// TestObserveExemplarDisabledZeroAlloc.
func (m *Manager) observeExemplar(job *Job) {
	ex := m.cfg.Exemplars
	if ex == nil {
		return
	}
	tid := job.trace.TraceID
	ex.Observe("service", job.id, tid)
	if job.tenant != "" {
		ex.Observe("tenant:"+job.tenant, job.id, tid)
	}
	if w := job.workerID(); w != "" {
		ex.Observe("worker:"+w, job.id, tid)
	}
}

// recordQueueWait backfills the job's queue_wait span now that a worker
// picked it up — the interval [enqueue, dequeue] is only known after the
// fact, so it is recorded retroactively (span.Recorder.Record).
func (m *Manager) recordQueueWait(job *Job) {
	if job.traceEnqueued.IsZero() {
		return
	}
	var attrs span.Attrs
	if job.tenant != "" {
		attrs = span.Attrs{"tenant": job.tenant}
	}
	m.cfg.Tracer.Record(job.trace, "queue_wait", job.traceEnqueued, time.Now(), attrs)
}

// jobContext decorates a running job's context with the live feeds: the
// monotone progress gauge plus stream events (sim.WithProgress), windowed
// telemetry for stream subscribers (sim.WithTelemetry), write-class
// accounting into both the service metrics and the job's own counters
// (sim.WithClassCounts), and the live event counter the perf span and the
// slow-job monitor read (sim.WithSimEvents).
func (m *Manager) jobContext(ctx context.Context, job *Job) context.Context {
	ctx = sim.WithProgress(ctx, job.reportProgress)
	if hub := job.hub; hub != nil {
		ctx = sim.WithTelemetry(ctx, func(arch string, w telemetry.Window) {
			hub.publish("window", streamWindow{Arch: arch, Window: w})
		}, 0)
	}
	ctx = sim.WithClassCounts(ctx, func(counts [probe.NumWriteKinds]uint64) {
		m.metrics.AddWriteClasses(counts)
		job.addClassCounts(counts)
	})
	if span := job.span.Load(); span != nil {
		ctx = sim.WithSimEvents(ctx, span.Events())
	}
	return ctx
}

// storeResult persists one successful cacheable run. Store failures do not
// fail the job — the result was computed and is served from memory; the
// miss just repeats next time.
func (m *Manager) storeResult(job *Job, res *sim.Result, wall time.Duration) {
	if m.store == nil || job.key == "" {
		return
	}
	sp := m.cfg.Tracer.StartSpan(job.trace, "store")
	sp.SetStr("key", job.key)
	defer sp.End()
	doc, err := json.Marshal(job.params)
	if err != nil {
		m.metrics.StoreErrors.Add(1)
		sp.SetStr("outcome", "error")
		return
	}
	canon, err := resultstore.CanonicalJSON(doc)
	if err != nil {
		m.metrics.StoreErrors.Add(1)
		sp.SetStr("outcome", "error")
		return
	}
	if err := m.store.Put(resultstore.Entry{
		Key:        job.key,
		Experiment: job.exp.Name,
		Schema:     m.store.SchemaVersion(),
		Params:     canon,
		Result:     res,
		WallNs:     wall.Nanoseconds(),
	}); err != nil {
		m.metrics.StoreErrors.Add(1)
		sp.SetStr("outcome", "error")
		return
	}
	sp.SetStr("outcome", "ok")
}

// settleFlight resolves every submission deduped onto job with its outcome
// and retires the content key from the in-flight set. Followers of a failed
// or canceled leader inherit that outcome: re-submitting afterwards starts
// a fresh execution.
func (m *Manager) settleFlight(job *Job, state State, res *sim.Result, err error) {
	if job.key == "" {
		return
	}
	m.mu.Lock()
	fl := m.inflight[job.key]
	if fl != nil && fl.leader == job {
		delete(m.inflight, job.key)
	} else {
		fl = nil
	}
	m.mu.Unlock()
	if fl == nil {
		return
	}
	for _, w := range fl.waiters {
		switch w.settleFollower(state, res, err) {
		case StateSucceeded:
			m.metrics.Completed.Add(1)
		case StateFailed:
			m.metrics.Failed.Add(1)
		case StateCanceled:
			m.metrics.Canceled.Add(1)
		}
		w.endTrace()
		w.hub.close()
	}
}
