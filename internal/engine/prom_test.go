package engine

import (
	"context"
	"fmt"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
	promLabelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"`)
)

// parseProm parses the text exposition format strictly enough to catch the
// drift this test guards against: unparseable label quoting, TYPE lines
// without samples, and malformed values all fail loudly.
func parseProm(t *testing.T, body string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	for ln, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := types[fields[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, fields[2])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}

		name := promNameRe.FindString(line)
		if name == "" {
			t.Fatalf("line %d: no metric name: %q", ln+1, line)
		}
		rest := line[len(name):]
		labels := make(map[string]string)
		if strings.HasPrefix(rest, "{") {
			rest = rest[1:]
			for !strings.HasPrefix(rest, "}") {
				m := promLabelRe.FindStringSubmatch(rest)
				if m == nil {
					t.Fatalf("line %d: bad label quoting after %q{: %q", ln+1, name, rest)
				}
				labels[m[1]] = m[2]
				rest = rest[len(m[0]):]
				rest = strings.TrimPrefix(rest, ",")
			}
			rest = rest[1:]
		}
		valStr := strings.TrimSpace(rest)
		value, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q for %s: %v", ln+1, valStr, name, err)
		}
		samples = append(samples, promSample{name: name, labels: labels, value: value})
	}
	return types, samples
}

// baseName strips the histogram series suffixes.
func baseName(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

// TestPromExposition scrapes a live /metrics and checks the exposition
// contract end to end: every # TYPE line is backed by at least one sample,
// histogram buckets are cumulative (monotone non-decreasing) and end at
// +Inf agreeing with _count, and every label value is properly quoted.
func TestPromExposition(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	srv := NewServer(mgr)

	// Run one real job so the wall-time histogram has series.
	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "fig5", Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	for !job.State().Terminal() {
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	types, samples := parseProm(t, rec.Body.String())
	if len(types) == 0 || len(samples) == 0 {
		t.Fatalf("empty exposition: %d types, %d samples", len(types), len(samples))
	}

	// Every sample belongs to a declared family of a known type, and every
	// declared family has at least one sample.
	seen := make(map[string]bool)
	for _, s := range samples {
		base := baseName(s.name)
		typ, ok := types[base]
		if !ok {
			// _bucket/_sum/_count suffixes are only histogram series; a plain
			// gauge named *_count would have its own TYPE line.
			typ, ok = types[s.name]
			base = s.name
		}
		if !ok {
			t.Errorf("sample %s has no TYPE line", s.name)
			continue
		}
		if typ == "histogram" && base != s.name && !strings.HasSuffix(s.name, "_bucket") &&
			!strings.HasSuffix(s.name, "_sum") && !strings.HasSuffix(s.name, "_count") {
			t.Errorf("histogram %s has non-histogram series %s", base, s.name)
		}
		seen[base] = true
	}
	for name, typ := range types {
		if !seen[name] {
			t.Errorf("# TYPE %s %s has no samples", name, typ)
		}
	}

	// Histogram buckets: grouped by their non-le labels, cumulative counts
	// must be monotone non-decreasing, end at le="+Inf", and match _count.
	type series struct {
		les    []string
		counts []float64
	}
	groups := make(map[string]*series)
	counts := make(map[string]float64)
	for _, s := range samples {
		base := baseName(s.name)
		if types[base] != "histogram" {
			continue
		}
		key := base
		var rest []string
		for k, v := range s.labels {
			if k != "le" {
				rest = append(rest, fmt.Sprintf("%s=%s", k, v))
			}
		}
		sort.Strings(rest)
		key += "{" + strings.Join(rest, ",") + "}"
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			g := groups[key]
			if g == nil {
				g = &series{}
				groups[key] = g
			}
			g.les = append(g.les, s.labels["le"])
			g.counts = append(g.counts, s.value)
		case strings.HasSuffix(s.name, "_count"):
			counts[key] = s.value
		}
	}
	if len(groups) == 0 {
		t.Fatal("no histogram series scraped")
	}
	for key, g := range groups {
		if n := len(g.les); n == 0 || g.les[n-1] != "+Inf" {
			t.Errorf("%s: bucket series does not end at +Inf: %v", key, g.les)
			continue
		}
		for i := 1; i < len(g.counts); i++ {
			if g.counts[i] < g.counts[i-1] {
				t.Errorf("%s: buckets not cumulative at le=%s: %v", key, g.les[i], g.counts)
				break
			}
		}
		if total, ok := counts[key]; !ok || g.counts[len(g.counts)-1] != total {
			t.Errorf("%s: +Inf bucket %g != _count %g", key, g.counts[len(g.counts)-1], total)
		}
	}

	// The build-info gauge carries its metadata in quoted labels.
	var foundBuild bool
	for _, s := range samples {
		if s.name == "womd_build_info" {
			foundBuild = true
			if s.labels["go_version"] == "" || s.labels["revision"] == "" || s.value != 1 {
				t.Errorf("womd_build_info = %+v", s)
			}
		}
	}
	if !foundBuild {
		t.Error("womd_build_info not exposed")
	}
	if _, ok := types["womd_uptime_seconds"]; !ok {
		t.Error("womd_uptime_seconds not exposed")
	}
}
