package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"womcpcm/internal/tsdb"
)

// TestHistoryRoutesRefuseWhenOff pins the 501 contract: without
// WithHistory the history surface answers ErrNoHistory, like the other
// optional planes.
func TestHistoryRoutesRefuseWhenOff(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	for _, path := range []string{
		"/v1/query_range?metric=womd_up&start=0&end=1",
		"/v1/series",
		"/v1/alerts/history",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: non-JSON 501 body: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("%s = %d, want 501", path, resp.StatusCode)
		}
		if body["error"] == "" {
			t.Fatalf("%s: empty error body", path)
		}
	}
}

// TestHistoryQueryRangeHTTP drives the full path: self-scrape of the
// server's own exposition into the store, then range queries over HTTP.
func TestHistoryQueryRangeHTTP(t *testing.T) {
	db, err := tsdb.Open(tsdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mgr := New(Config{Workers: 1, QueueDepth: 4, History: db})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	srv := NewServer(mgr, WithHistory(db))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	start := time.Now().Add(-time.Second)
	for i := 0; i < 3; i++ {
		db.ScrapeOnce(srv.WriteProm)
		time.Sleep(5 * time.Millisecond)
	}
	end := time.Now().Add(time.Second)

	url := fmt.Sprintf("%s/v1/query_range?metric=womd_uptime_seconds&start=%d&end=%d&step=1s&agg=max",
		ts.URL, start.Unix(), end.Unix()+1)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query_range = %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}
	var out struct {
		Series []tsdb.SeriesResult `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 1 || len(out.Series[0].Points) == 0 {
		t.Fatalf("series: %+v", out.Series)
	}

	// Discovery lists the scraped families.
	resp, err = http.Get(ts.URL + "/v1/series?metric=womd_jobs_queued_total")
	if err != nil {
		t.Fatal(err)
	}
	var series struct {
		Series []tsdb.SeriesInfo `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(series.Series) == 0 {
		t.Fatal("womd_jobs_queued_total not discovered")
	}

	// Bad queries are 400s with the structured error shape.
	resp, err = http.Get(ts.URL + "/v1/query_range?metric=womd_up&start=10&end=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted range = %d, want 400", resp.StatusCode)
	}
}

// TestAlertHistoryHTTP checks journaled transitions surface over
// /v1/alerts/history.
func TestAlertHistoryHTTP(t *testing.T) {
	db, err := tsdb.Open(tsdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.AppendAlertTransition(time.Now(), "firing", "rule\x00subj",
		json.RawMessage(`{"id":"al-000001","rule":"queue-sat","state":"firing"}`))
	mgr := New(Config{Workers: 1, QueueDepth: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr, WithHistory(db)))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/alerts/history?limit=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alerts/history = %d", resp.StatusCode)
	}
	var out struct {
		Transitions []tsdb.Transition `json:"transitions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Transitions) != 1 || out.Transitions[0].To != "firing" {
		t.Fatalf("transitions: %+v", out.Transitions)
	}
}

// TestJSONEndpointsNoStore spot-checks that the shared respondJSON path
// stamps Cache-Control: no-store on every /v1 JSON surface, success and
// error alike.
func TestJSONEndpointsNoStore(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	for _, path := range []string{
		"/v1/jobs",            // 200 list
		"/v1/jobs/nope",       // 404 error
		"/v1/experiments",     // 200 list
		"/v1/tenants",         // 501 plane off
		"/v1/alerts",          // 501 plane off
		"/v1/results",         // 501 plane off
		"/v1/query_range",     // 501 plane off
		"/healthz", "/readyz", // health JSON
		"/v1/definitely/nope", // mux 404 via the JSON interceptor
		"/metrics.json",       // JSON snapshot
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("%s: Cache-Control = %q, want no-store (status %d)",
				path, cc, resp.StatusCode)
		}
	}
}

// TestObserveHistoryDisabledZeroAlloc pins the acceptance contract:
// -history=false adds zero allocations to the job hot path — the
// ObserveJob hook is one nil pointer check.
func TestObserveHistoryDisabledZeroAlloc(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	allocs := testing.AllocsPerRun(1000, func() {
		mgr.cfg.History.ObserveJob("conf_date", 0.123)
	})
	if allocs != 0 {
		t.Fatalf("disabled ObserveJob allocates %g/op, want 0", allocs)
	}
}

// BenchmarkObserveHistoryDisabled is the benchmark twin of the zero-alloc
// test, for `go test -bench` comparisons against the enabled path.
func BenchmarkObserveHistoryDisabled(b *testing.B) {
	mgr := New(Config{Workers: 1, QueueDepth: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mgr.cfg.History.ObserveJob("conf_date", 0.123)
	}
}

// TestHistoryObservesJobWall checks a finished job lands in the history
// store's built-in series.
func TestHistoryObservesJobWall(t *testing.T) {
	db, err := tsdb.Open(tsdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mgr := New(Config{Workers: 1, QueueDepth: 4, History: db})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr, WithHistory(db)))
	defer ts.Close()

	status, view := postJSON(t, ts, JobRequest{Experiment: "fig5", Params: fastParams()})
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}
	pollResult(t, ts, view.ID)

	infos := db.Series("womd_history_job_wall_seconds")
	if len(infos) != 1 || infos[0].Labels["experiment"] != "fig5" {
		t.Fatalf("job wall series: %+v", infos)
	}
}
