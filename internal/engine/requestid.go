package engine

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Request IDs tie one HTTP request to every log line it causes: the server
// middleware stamps each request (honoring a client-provided X-Request-ID),
// Submit picks the id up from the context, and the job carries it through
// its queued → started → finished lifecycle logs.

type requestIDKey struct{}

var requestSeq atomic.Uint64

// newRequestID mints a process-unique request id.
func newRequestID() string {
	return fmt.Sprintf("r-%06d", requestSeq.Add(1))
}

// WithRequestID returns a context carrying id.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request id from ctx; "" when absent.
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
