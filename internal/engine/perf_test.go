package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"womcpcm/internal/perfmon"
	"womcpcm/internal/sim"
)

// TestJobPerfRecord runs one job and checks the host-time accounting end to
// end: the JobView perf block, the metrics snapshot, and /metrics families.
func TestJobPerfRecord(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "fig5", Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, mgr, job.ID())
	if job.State() != StateSucceeded {
		t.Fatalf("job state = %s", job.State())
	}

	view := job.View()
	if view.Perf == nil {
		t.Fatal("JobView.Perf missing after run")
	}
	p := view.Perf
	if p.WallNs <= 0 || p.SimEvents <= 0 || p.EventsPerSec <= 0 || p.NsPerEvent <= 0 {
		t.Errorf("perf record incomplete: %+v", p.JobRecord)
	}
	if len(p.WriteClasses) == 0 {
		t.Errorf("perf record has no write classes")
	}
	// The perf block must survive JSON round-tripping with snake_case keys.
	raw, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"sim_events"`, `"events_per_sec"`, `"wall_ns"`, `"write_classes"`} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Errorf("serialized JobView missing %s: %s", key, raw)
		}
	}

	snap := mgr.Metrics().Snapshot()
	if snap.SimEventsTotal <= 0 {
		t.Errorf("sim events total = %d", snap.SimEventsTotal)
	}
	if snap.QueueWaitNs.Count != 1 {
		t.Errorf("queue wait count = %d, want 1", snap.QueueWaitNs.Count)
	}
	if h, ok := snap.EventsPerSec["fig5"]; !ok || h.Count != 1 {
		t.Errorf("events/sec histogram = %+v", snap.EventsPerSec)
	}

	var b bytes.Buffer
	mgr.Metrics().WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"womd_job_sim_events_total ",
		`womd_job_events_per_second_count{experiment="fig5"} 1`,
		`womd_job_cpu_seconds_count{experiment="fig5"} 1`,
		`womd_job_alloc_bytes_count{experiment="fig5"} 1`,
		"womd_job_queue_wait_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDisablePerf checks the off switch: no span, no perf block, no perf
// metrics — the disabled path of the zero-cost contract.
func TestDisablePerf(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 4, DisablePerf: true})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "fig5", Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, mgr, job.ID())
	if view := job.View(); view.Perf != nil {
		t.Errorf("Perf block present with DisablePerf: %+v", view.Perf)
	}
	if snap := mgr.Metrics().Snapshot(); snap.SimEventsTotal != 0 || len(snap.EventsPerSec) != 0 {
		t.Errorf("perf metrics populated with DisablePerf: %+v", snap)
	}
}

// TestSlowVerdicts exercises the profiling policy as a pure function.
func TestSlowVerdicts(t *testing.T) {
	mk := func(id string, rate float64) slowSample {
		return slowSample{id: id, rate: rate, eligible: true}
	}
	cases := []struct {
		name    string
		samples []slowSample
		want    map[string]string
	}{
		{"empty", nil, map[string]string{}},
		{"one job no fleet", []slowSample{mk("a", 1)}, map[string]string{}},
		{"slow outlier", []slowSample{mk("a", 1000), mk("b", 1100), mk("c", 10)},
			map[string]string{"c": "slow"}},
		{"uniform fleet clean", []slowSample{mk("a", 1000), mk("b", 1100), mk("c", 900)},
			map[string]string{}},
		{"ineligible first pass", []slowSample{
			{id: "a", rate: 0, eligible: false}, mk("b", 1000), mk("c", 1100)},
			map[string]string{}},
		{"deadline", []slowSample{
			{id: "a", elapsed: 95 * time.Second, timeout: 100 * time.Second, eligible: true, rate: 500},
			mk("b", 500)},
			map[string]string{"a": "deadline"}},
		{"deadline outranks slow", []slowSample{
			{id: "a", elapsed: 95 * time.Second, timeout: 100 * time.Second, eligible: true, rate: 1},
			mk("b", 1000), mk("c", 1100)},
			map[string]string{"a": "deadline"}},
		{"unbounded job no deadline", []slowSample{
			{id: "a", elapsed: time.Hour, timeout: 0, eligible: true, rate: 1000},
			mk("b", 1100)},
			map[string]string{}},
	}
	for _, tc := range cases {
		got := slowVerdicts(tc.samples, 0.25, 0.9)
		if len(got) != len(tc.want) {
			t.Errorf("%s: verdicts = %v, want %v", tc.name, got, tc.want)
			continue
		}
		for id, reason := range tc.want {
			if got[id] != reason {
				t.Errorf("%s: verdict[%s] = %q, want %q", tc.name, id, got[id], reason)
			}
		}
	}
}

// TestMonitorCapturesDeadlineProfile drives the automatic profiler end to
// end: a job near its deadline gets CPU+heap profiles captured into the
// store, the counter moves, and the HTTP routes list and serve the files.
func TestMonitorCapturesDeadlineProfile(t *testing.T) {
	ps, err := perfmon.NewProfileStore(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(Config{
		Workers:            1,
		QueueDepth:         4,
		Profiles:           ps,
		MonitorInterval:    10 * time.Millisecond,
		DeadlineFraction:   0.0001, // any elapsed time crosses it
		ProfileCPUDuration: 10 * time.Millisecond,
	})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	// A long single-threaded job with a generous timeout: the deadline
	// trigger fires long before the timeout does.
	params := sim.Params{Requests: 400000, Bench: []string{"qsort"}, Ranks: 4, Parallelism: 1}
	job, err := mgr.Submit(context.Background(),
		JobRequest{Experiment: "fig5", Params: params, TimeoutMs: 120000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for ps.Len() < 2 && !job.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("no profiles captured; store holds %d", ps.Len())
		}
		time.Sleep(10 * time.Millisecond)
	}
	caps := ps.List(job.ID())
	if len(caps) < 2 {
		t.Fatalf("captures for %s = %d, want cpu+heap", job.ID(), len(caps))
	}
	if got := mgr.Metrics().ProfilesCaptured.Load(); got < 2 {
		t.Errorf("profiles captured counter = %d", got)
	}

	// The listing route serves the captures...
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Job      string            `json:"job"`
		Profiles []perfmon.Capture `json:"profiles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if listing.Job != job.ID() || len(listing.Profiles) < 2 {
		t.Fatalf("profile listing = %+v", listing)
	}
	// ...and the fetch route serves a pprof body.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/profiles/" + listing.Profiles[0].File)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("profile fetch: status %d, %d bytes", resp.StatusCode, len(body))
	}
	// Unknown file names 404 instead of escaping the store directory.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/profiles/passwd")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown profile status = %d", resp.StatusCode)
	}

	if err := mgr.Cancel(job.ID()); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, mgr, job.ID())
}

// TestProfileRoutesUnconfigured maps the no-store case to 501.
func TestProfileRoutesUnconfigured(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/j-000001/profiles")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("profiles without store status = %d, want 501", resp.StatusCode)
	}
}

// TestRuntimeMetricsExposition wires a poller into the server and holds the
// scrape to the strict exposition contract: every womd_runtime_* family from
// RuntimeMetricNames appears with a TYPE line and at least one sample, and
// the whole body still parses strictly.
func TestRuntimeMetricsExposition(t *testing.T) {
	poller := perfmon.NewPoller(50 * time.Millisecond)
	poller.Start()
	defer poller.Stop()
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	srv := NewServer(mgr, WithRuntimeMetrics(poller))

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	types, samples := parseProm(t, rec.Body.String())
	counts := make(map[string]int)
	for _, s := range samples {
		counts[baseName(s.name)]++
		counts[s.name]++
	}
	for _, fam := range perfmon.RuntimeMetricNames() {
		if _, ok := types[fam]; !ok {
			t.Errorf("family %s has no TYPE line", fam)
		}
		if counts[fam] == 0 {
			t.Errorf("family %s has no samples", fam)
		}
	}
	// Summaries carry quantile labels.
	var quantiles int
	for _, s := range samples {
		if s.name == "womd_runtime_gc_pause_seconds" && s.labels["quantile"] != "" {
			quantiles++
		}
	}
	if quantiles != 3 {
		t.Errorf("gc pause quantile samples = %d, want 3", quantiles)
	}
}
