package engine

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"womcpcm/internal/sim"
)

// sseEvent is one parsed Server-Sent-Events frame.
type sseEvent struct {
	name string
	data string
}

// readSSE parses frames from an event stream until the body ends or the
// limit is reached, skipping comments and the retry line.
func readSSE(t *testing.T, body *bufio.Reader, limit int) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := sseEvent{}
	for len(events) < limit {
		line, err := body.ReadString('\n')
		if err != nil {
			return events
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			cur = sseEvent{}
		}
	}
	return events
}

// TestStreamEndToEnd is the e2e SSE contract: connect mid-job, receive at
// least one telemetry window event and the terminal done event, with the
// stream ending after done.
func TestStreamEndToEnd(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 8})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	recs := progressTrace(120000)
	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "replay", Params: sim.Params{
		Trace: recs, TraceLabel: "stream", Ranks: 2, Banks: 4, Parallelism: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	events := readSSE(t, bufio.NewReader(resp.Body), 100000)
	if len(events) == 0 {
		t.Fatal("no SSE events received")
	}
	var windows, progress, done int
	for _, ev := range events {
		switch ev.name {
		case "window":
			windows++
			var w streamWindow
			if err := json.Unmarshal([]byte(ev.data), &w); err != nil {
				t.Fatalf("bad window payload %q: %v", ev.data, err)
			}
			if w.Arch == "" || w.Window.EndNs <= w.Window.StartNs {
				t.Fatalf("malformed window event: %+v", w)
			}
		case "progress":
			progress++
		case "done":
			done++
			var v JobView
			if err := json.Unmarshal([]byte(ev.data), &v); err != nil {
				t.Fatalf("bad done payload %q: %v", ev.data, err)
			}
			if v.ID != job.ID() || v.State != StateSucceeded {
				t.Fatalf("done event = %+v, want succeeded %s", v, job.ID())
			}
		}
	}
	if windows == 0 {
		t.Error("no window events streamed")
	}
	if progress == 0 {
		t.Error("no progress events streamed")
	}
	if done != 1 {
		t.Errorf("done events = %d, want exactly 1 (stream must end after done)", done)
	}
	if events[len(events)-1].name != "done" {
		t.Errorf("last event = %q, want done", events[len(events)-1].name)
	}
}

// TestStreamTerminalJob checks a finished job answers immediately with just
// the done event.
func TestStreamTerminalJob(t *testing.T) {
	mgr := New(Config{Workers: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "replay", Params: sim.Params{
		Trace: progressTrace(500), TraceLabel: "tiny", Ranks: 2, Banks: 2, Parallelism: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for !job.State().Terminal() {
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, bufio.NewReader(resp.Body), 10)
	if len(events) != 1 || events[0].name != "done" {
		t.Fatalf("terminal job events = %+v, want single done", events)
	}
}

// TestStreamClientCancelCleanup checks a disconnecting client's subscription
// is torn down: the client-count gauge returns to zero while the job still
// runs.
func TestStreamClientCancelCleanup(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 8})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "replay", Params: sim.Params{
		Trace: progressTrace(400000), TraceLabel: "cancel", Ranks: 2, Banks: 4, Parallelism: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+job.ID()+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one frame to be sure the subscription registered, then hang up.
	readSSE(t, bufio.NewReader(resp.Body), 1)
	if got := mgr.Metrics().StreamClients.Load(); got != 1 {
		t.Errorf("stream clients = %d with one subscriber, want 1", got)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for mgr.Metrics().StreamClients.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream clients still %d after disconnect", mgr.Metrics().StreamClients.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if !job.State().Terminal() {
		// Cleanup happened while the job was live — the interesting case.
		// Cancel it so shutdown stays fast.
		mgr.Cancel(job.ID()) //nolint:errcheck
	}
}

// TestStreamDropAccounting fills a subscriber buffer without draining it and
// checks overflow is counted, not blocked on.
func TestStreamDropAccounting(t *testing.T) {
	metrics := NewMetrics()
	hub := newStreamHub(metrics)
	sub, cancel := hub.subscribe()
	defer cancel()

	total := streamClientBuf + 50
	donech := make(chan struct{})
	go func() {
		defer close(donech)
		for i := 0; i < total; i++ {
			hub.publish("progress", ProgressView{Done: int64(i)})
		}
	}()
	select {
	case <-donech:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a full subscriber buffer")
	}
	if got := metrics.StreamDropped.Load(); got != 50 {
		t.Errorf("dropped = %d, want 50", got)
	}
	// The retained prefix is intact and ordered.
	for i := 0; i < streamClientBuf; i++ {
		ev := <-sub.ch
		var p ProgressView
		if err := json.Unmarshal(ev.Data, &p); err != nil || p.Done != int64(i) {
			t.Fatalf("event %d = %s (err %v)", i, ev.Data, err)
		}
	}
}

// TestStreamHubCloseIdempotent checks closing twice and late subscription.
func TestStreamHubCloseIdempotent(t *testing.T) {
	metrics := NewMetrics()
	hub := newStreamHub(metrics)
	sub, cancel := hub.subscribe()
	defer cancel()
	hub.close()
	hub.close()
	if _, open := <-sub.ch; open {
		t.Error("subscriber channel still open after close")
	}
	if got := metrics.StreamClients.Load(); got != 0 {
		t.Errorf("stream clients = %d after close, want 0", got)
	}
	// Late subscribers get an already-closed feed.
	late, lateCancel := hub.subscribe()
	defer lateCancel()
	if _, open := <-late.ch; open {
		t.Error("late subscriber channel open on closed hub")
	}
	// Publishing to a closed hub is a no-op.
	hub.publish("progress", ProgressView{})
	var nilHub *streamHub
	nilHub.close() // nil-safe
}
