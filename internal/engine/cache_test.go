package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"womcpcm/internal/resultstore"
	"womcpcm/internal/sim"
)

// openStore opens a result store in a fresh temp dir.
func openStore(t *testing.T, dir string) *resultstore.Store {
	t.Helper()
	store, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// waitTerminal polls a job to a terminal state.
func waitTerminal(t *testing.T, mgr *Manager, id string) *Job {
	t.Helper()
	job, ok := mgr.Get(id)
	if !ok {
		t.Fatalf("job %s missing", id)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !job.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, job.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	return job
}

// TestCacheHitSkipsExecution is the acceptance test for the tentpole:
// resubmitting an identical job is served from the store with zero harness
// invocations — the wall-time histogram (one observation per actual
// execution) must not move — and the hit shows up in /metrics. The store
// must keep serving after a reopen by a fresh manager.
func TestCacheHitSkipsExecution(t *testing.T) {
	dir := t.TempDir()
	store := openStore(t, dir)
	mgr := New(Config{Workers: 2, QueueDepth: 8, Store: store})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	params := fastParams()
	params.Requests = 5000
	req := JobRequest{Experiment: "fig5", Params: params}

	status, first := postJSON(t, ts, req)
	if status != http.StatusAccepted {
		t.Fatalf("first submit = %d", status)
	}
	env := pollResult(t, ts, first.ID)
	var want sim.Fig5Result
	resultData(t, env, &want)

	snap := mgr.Metrics().Snapshot()
	if snap.CacheMisses != 1 || snap.CacheHits != 0 {
		t.Fatalf("after first run: misses=%d hits=%d", snap.CacheMisses, snap.CacheHits)
	}
	if snap.WallNs["fig5"].Count != 1 {
		t.Fatalf("executions after first run = %d", snap.WallNs["fig5"].Count)
	}

	// Identical resubmission: born succeeded, served from disk.
	status, second := postJSON(t, ts, req)
	if status != http.StatusAccepted {
		t.Fatalf("second submit = %d", status)
	}
	if second.State != StateSucceeded || !second.Cached {
		t.Fatalf("second submit view = %+v, want cached+succeeded", second)
	}
	var got sim.Fig5Result
	resultData(t, pollResult(t, ts, second.ID), &got)
	if got.MeanWrite != want.MeanWrite || got.MeanRead != want.MeanRead {
		t.Errorf("cached result drifted:\n got %v %v\nwant %v %v",
			got.MeanWrite, got.MeanRead, want.MeanWrite, want.MeanRead)
	}

	snap = mgr.Metrics().Snapshot()
	if snap.CacheHits != 1 {
		t.Errorf("cache hits = %d", snap.CacheHits)
	}
	if snap.WallNs["fig5"].Count != 1 {
		t.Errorf("zero-invocation violated: executions = %d", snap.WallNs["fig5"].Count)
	}
	if snap.JobsQueued != 1 {
		t.Errorf("cached job entered the queue: queued = %d", snap.JobsQueued)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range []string{
		"womd_cache_hits_total 1",
		"womd_cache_misses_total 1",
		"womd_store_results 1",
	} {
		if !strings.Contains(string(prom), line) {
			t.Errorf("/metrics missing %q", line)
		}
	}

	// The /v1/results listing exposes the stored entry.
	resp, err = http.Get(ts.URL + "/v1/results")
	if err != nil {
		t.Fatal(err)
	}
	listing, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(listing), `"fig5"`) {
		t.Errorf("results listing missing entry: %s", listing)
	}

	// A fresh manager over a reopened store serves the same result without
	// executing anything — durability across restart.
	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	store.Close()
	store2 := openStore(t, dir)
	mgr2 := New(Config{Workers: 2, QueueDepth: 8, Store: store2})
	defer mgr2.Shutdown(context.Background()) //nolint:errcheck
	job, err := mgr2.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if job.State() != StateSucceeded || !job.View().Cached {
		t.Fatalf("post-restart submit state = %s", job.State())
	}
	if n := mgr2.Metrics().Snapshot().WallNs["fig5"].Count; n != 0 {
		t.Errorf("post-restart executions = %d", n)
	}
}

// TestSingleflightDedup submits three identical jobs while the first still
// runs: one execution, three succeeded jobs (minus the one we cancel).
func TestSingleflightDedup(t *testing.T) {
	store := openStore(t, t.TempDir())
	mgr := New(Config{Workers: 1, QueueDepth: 8, Store: store})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck

	// Slow enough that followers arrive while the leader runs.
	params := sim.Params{Requests: 400000, Bench: []string{"qsort"}, Ranks: 4, Parallelism: 1}
	req := JobRequest{Experiment: "fig5", Params: params}
	leader, err := mgr.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := mgr.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	canceled, err := mgr.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if v := follower.View(); v.DedupOf != leader.ID() {
		t.Fatalf("follower dedup_of = %q, want %q", v.DedupOf, leader.ID())
	}
	// An independently canceled follower must not be resurrected by the
	// leader's success.
	if err := mgr.Cancel(canceled.ID()); err != nil {
		t.Fatal(err)
	}

	waitTerminal(t, mgr, leader.ID())
	waitTerminal(t, mgr, follower.ID())
	waitTerminal(t, mgr, canceled.ID())

	if leader.State() != StateSucceeded || follower.State() != StateSucceeded {
		t.Fatalf("states: leader=%s follower=%s", leader.State(), follower.State())
	}
	if canceled.State() != StateCanceled {
		t.Errorf("canceled follower state = %s", canceled.State())
	}
	lres, _ := leader.Result()
	fres, _ := follower.Result()
	if lres == nil || fres == nil || lres != fres {
		t.Errorf("follower did not share the leader's result")
	}

	snap := mgr.Metrics().Snapshot()
	if snap.JobsDeduped != 2 {
		t.Errorf("deduped = %d, want 2", snap.JobsDeduped)
	}
	if snap.WallNs["fig5"].Count != 1 {
		t.Errorf("executions = %d, want 1 (singleflight)", snap.WallNs["fig5"].Count)
	}
	if snap.JobsCompleted != 2 { // leader + surviving follower
		t.Errorf("completed = %d", snap.JobsCompleted)
	}
	// After the flight settles, a new identical submission is a cache hit,
	// not a new flight.
	hit, err := mgr.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if hit.State() != StateSucceeded || !hit.View().Cached {
		t.Errorf("post-flight submit not served from store: %s", hit.State())
	}
}

// TestBaselineAndCompareEndpoints drives pin → compare over HTTP.
func TestBaselineAndCompareEndpoints(t *testing.T) {
	store := openStore(t, t.TempDir())
	mgr := New(Config{Workers: 2, QueueDepth: 8, Store: store})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	params := fastParams()
	params.Requests = 5000
	_, job := postJSON(t, ts, JobRequest{Experiment: "fig6", Params: params})
	pollResult(t, ts, job.ID)

	resp, err := http.Post(ts.URL+"/v1/baselines", "application/json",
		bytes.NewReader([]byte(`{"name":"v1"}`)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("pin status = %d: %s", resp.StatusCode, raw)
	}

	resp, err = http.Get(ts.URL + "/v1/compare?baseline=v1&tolerance=0.01")
	if err != nil {
		t.Fatal(err)
	}
	var cmp resultstore.Comparison
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare status = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &cmp); err != nil {
		t.Fatal(err)
	}
	if cmp.Checked != 1 || len(cmp.Regressions) != 0 {
		t.Errorf("compare = %+v", cmp)
	}

	// Unknown baseline → 404; missing param → 400.
	resp, _ = http.Get(ts.URL + "/v1/compare?baseline=nope")
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown baseline = %d", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/v1/compare")
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing baseline param = %d", resp.StatusCode)
	}
}

// TestStoreRoutesWithoutStore: result routes on a cache-less manager report
// a structured 501 instead of pretending the cache is empty.
func TestStoreRoutesWithoutStore(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	for _, path := range []string{"/v1/results", "/v1/baselines", "/v1/compare?baseline=x"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(raw), `"error"`) {
			t.Errorf("%s body not structured: %s", path, raw)
		}
	}
}

// TestJSONErrorBodies: every error path — including the mux's own 404/405
// pages — must return {"error": ...} with a JSON Content-Type.
func TestJSONErrorBodies(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	check := func(method, path string, wantStatus int) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s %s status = %d, want %d", method, path, resp.StatusCode, wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("%s %s Content-Type = %q", method, path, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &body); err != nil || body.Error == "" {
			t.Errorf("%s %s body not structured: %s", method, path, raw)
		}
	}
	check(http.MethodGet, "/nope", http.StatusNotFound)                      // unknown route
	check(http.MethodDelete, "/v1/experiments", http.StatusMethodNotAllowed) // wrong method
	check(http.MethodGet, "/v1/jobs/j-404", http.StatusNotFound)             // handler error path
	check(http.MethodPut, "/v1/jobs", http.StatusMethodNotAllowed)

	// Success paths must pass through untouched.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health Health
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz = %d %+v (%v)", resp.StatusCode, health, err)
	}
	if health.GoVersion == "" || health.Revision == "" || health.UptimeSeconds < 0 {
		t.Errorf("healthz missing build/uptime info: %+v", health)
	}
}

// TestJobsDeterministicOrder: listings stay sorted by submission sequence
// even after deletions.
func TestJobsDeterministicOrder(t *testing.T) {
	mgr := New(Config{Workers: 2, QueueDepth: 8})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	params := fastParams()
	params.Requests = 2000
	var ids []string
	for i := 0; i < 4; i++ {
		job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "fig5", Params: params})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID())
	}
	for _, id := range ids {
		waitTerminal(t, mgr, id)
	}
	if err := mgr.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	jobs := mgr.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1].seq >= jobs[i].seq {
			t.Errorf("listing out of order: %s before %s", jobs[i-1].ID(), jobs[i].ID())
		}
	}
	want := []string{ids[0], ids[2], ids[3]}
	for i, j := range jobs {
		if j.ID() != want[i] {
			t.Errorf("jobs[%d] = %s, want %s", i, j.ID(), want[i])
		}
	}
}
