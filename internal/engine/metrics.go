package engine

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"womcpcm/internal/perfmon"
	"womcpcm/internal/probe"
	"womcpcm/internal/stats"
)

// Metrics aggregates the service counters the /metrics endpoint exports.
// Counters are monotonic over the process lifetime; QueueDepth and Running
// are gauges. Wall-time distributions reuse the simulator's log2 histogram
// (internal/stats.Latency), one per experiment.
type Metrics struct {
	Queued    atomic.Uint64 // jobs accepted into the queue
	Rejected  atomic.Uint64 // jobs refused by admission control
	Completed atomic.Uint64 // jobs that succeeded
	Failed    atomic.Uint64 // jobs that errored or timed out
	Canceled  atomic.Uint64 // jobs canceled (queued or running)

	CacheHits   atomic.Uint64 // submissions served from the result store
	CacheMisses atomic.Uint64 // cacheable submissions not found in the store
	Deduped     atomic.Uint64 // submissions folded into an identical in-flight job
	StoreErrors atomic.Uint64 // failed result-store appends (job still succeeds)

	// WriteClasses counts simulated row writes by probe write kind across
	// every executed job (fed per-simulation via sim.WithClassCounts).
	WriteClasses [probe.NumWriteKinds]atomic.Uint64
	// SimEvents counts simulator event-loop steps across every executed
	// job; ProfilesCaptured counts slow-job pprof captures.
	SimEvents        atomic.Uint64
	ProfilesCaptured atomic.Uint64
	// StreamDropped counts SSE events lost to full subscriber buffers;
	// StreamClients gauges connected stream subscribers.
	StreamDropped atomic.Uint64
	StreamClients atomic.Int64

	QueueDepth atomic.Int64 // jobs waiting for a worker
	Running    atomic.Int64 // jobs executing now

	start time.Time // process start, for the uptime gauge

	mu        sync.Mutex
	wall      map[string]*stats.Latency // experiment → wall-time histogram
	queueWait stats.Latency             // admission → worker-start latency
	// Per-experiment host-time distributions (internal/perfmon records):
	// events/sec, CPU nanoseconds, allocated bytes.
	perfEvents map[string]*stats.Latency
	perfCPU    map[string]*stats.Latency
	perfAlloc  map[string]*stats.Latency
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		start:      time.Now(),
		wall:       make(map[string]*stats.Latency),
		perfEvents: make(map[string]*stats.Latency),
		perfCPU:    make(map[string]*stats.Latency),
		perfAlloc:  make(map[string]*stats.Latency),
	}
}

// Uptime reports the time since the metrics set was created — in practice,
// since the manager (and so the service) started.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// AddWriteClasses folds one simulation's write-class totals into the
// service counters; it is the manager's sim.ClassCountsFunc.
func (m *Metrics) AddWriteClasses(counts [probe.NumWriteKinds]uint64) {
	for k, n := range counts {
		if n > 0 {
			m.WriteClasses[k].Add(n)
		}
	}
}

// ObserveWall records one job's wall time under its experiment name.
func (m *Metrics) ObserveWall(experiment string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.wall[experiment]
	if l == nil {
		l = &stats.Latency{}
		m.wall[experiment] = l
	}
	l.Observe(d.Nanoseconds())
}

// ObserveQueueWait records one job's admission→worker-start latency.
func (m *Metrics) ObserveQueueWait(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueWait.Observe(d.Nanoseconds())
}

// QueueWaitSnapshot exports the queue-wait histogram.
func (m *Metrics) QueueWaitSnapshot() stats.LatencySnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queueWait.Snapshot()
}

// ObservePerf folds one finished job's host-time record into the
// per-experiment distributions and the event counter.
func (m *Metrics) ObservePerf(experiment string, rec perfmon.JobRecord) {
	if rec.SimEvents > 0 {
		m.SimEvents.Add(uint64(rec.SimEvents))
	}
	observe := func(hists map[string]*stats.Latency, v int64) {
		l := hists[experiment]
		if l == nil {
			l = &stats.Latency{}
			hists[experiment] = l
		}
		l.Observe(v)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	observe(m.perfEvents, int64(rec.EventsPerSec))
	observe(m.perfCPU, rec.CPUNs)
	observe(m.perfAlloc, int64(rec.AllocBytes))
}

// perfSnapshot exports one per-experiment perf histogram family.
func (m *Metrics) perfSnapshot(hists map[string]*stats.Latency) map[string]stats.LatencySnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]stats.LatencySnapshot, len(hists))
	for exp, l := range hists {
		out[exp] = l.Snapshot()
	}
	return out
}

// WallSnapshot exports the per-experiment wall-time histograms.
func (m *Metrics) WallSnapshot() map[string]stats.LatencySnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]stats.LatencySnapshot, len(m.wall))
	for exp, l := range m.wall {
		out[exp] = l.Snapshot()
	}
	return out
}

// Snapshot is the JSON form of the metrics set.
type Snapshot struct {
	JobsQueued    uint64 `json:"jobs_queued_total"`
	JobsRejected  uint64 `json:"jobs_rejected_total"`
	JobsCompleted uint64 `json:"jobs_completed_total"`
	JobsFailed    uint64 `json:"jobs_failed_total"`
	JobsCanceled  uint64 `json:"jobs_canceled_total"`
	CacheHits     uint64 `json:"cache_hits_total"`
	CacheMisses   uint64 `json:"cache_misses_total"`
	JobsDeduped   uint64 `json:"jobs_deduped_total"`
	StoreErrors   uint64 `json:"store_errors_total"`
	QueueDepth    int64  `json:"queue_depth"`
	JobsRunning   int64  `json:"jobs_running"`

	// WritesTotal maps write class name → simulated row writes across jobs.
	WritesTotal   map[string]uint64 `json:"writes_total"`
	StreamDropped uint64            `json:"stream_dropped_total"`
	StreamClients int64             `json:"stream_clients"`

	UptimeSeconds float64 `json:"uptime_seconds"`

	WallNs map[string]stats.LatencySnapshot `json:"job_wall_ns"`

	// Host-time perf aggregates (internal/perfmon).
	SimEventsTotal   uint64                           `json:"sim_events_total"`
	ProfilesCaptured uint64                           `json:"profiles_captured_total"`
	QueueWaitNs      stats.LatencySnapshot            `json:"job_queue_wait_ns"`
	EventsPerSec     map[string]stats.LatencySnapshot `json:"job_events_per_sec"`
	CPUNs            map[string]stats.LatencySnapshot `json:"job_cpu_ns"`
	AllocBytes       map[string]stats.LatencySnapshot `json:"job_alloc_bytes"`
}

// Snapshot captures every counter and histogram at once.
func (m *Metrics) Snapshot() Snapshot {
	writes := make(map[string]uint64, probe.NumWriteKinds)
	for k := 0; k < probe.NumWriteKinds; k++ {
		writes[probe.Kind(k).String()] = m.WriteClasses[k].Load()
	}
	return Snapshot{
		JobsQueued:    m.Queued.Load(),
		JobsRejected:  m.Rejected.Load(),
		JobsCompleted: m.Completed.Load(),
		JobsFailed:    m.Failed.Load(),
		JobsCanceled:  m.Canceled.Load(),
		CacheHits:     m.CacheHits.Load(),
		CacheMisses:   m.CacheMisses.Load(),
		JobsDeduped:   m.Deduped.Load(),
		StoreErrors:   m.StoreErrors.Load(),
		QueueDepth:    m.QueueDepth.Load(),
		JobsRunning:   m.Running.Load(),
		WritesTotal:   writes,
		StreamDropped: m.StreamDropped.Load(),
		StreamClients: m.StreamClients.Load(),
		UptimeSeconds: m.Uptime().Seconds(),
		WallNs:        m.WallSnapshot(),

		SimEventsTotal:   m.SimEvents.Load(),
		ProfilesCaptured: m.ProfilesCaptured.Load(),
		QueueWaitNs:      m.QueueWaitSnapshot(),
		EventsPerSec:     m.perfSnapshot(m.perfEvents),
		CPUNs:            m.perfSnapshot(m.perfCPU),
		AllocBytes:       m.perfSnapshot(m.perfAlloc),
	}
}

// WriteProm renders the metrics in the Prometheus text exposition format.
func (m *Metrics) WriteProm(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("womd_jobs_queued_total", "Jobs accepted into the queue.", m.Queued.Load())
	counter("womd_jobs_rejected_total", "Jobs refused by admission control.", m.Rejected.Load())
	counter("womd_jobs_completed_total", "Jobs that succeeded.", m.Completed.Load())
	counter("womd_jobs_failed_total", "Jobs that errored or timed out.", m.Failed.Load())
	counter("womd_jobs_canceled_total", "Jobs canceled before or during execution.", m.Canceled.Load())
	counter("womd_cache_hits_total", "Submissions served from the result store.", m.CacheHits.Load())
	counter("womd_cache_misses_total", "Cacheable submissions not found in the store.", m.CacheMisses.Load())
	counter("womd_jobs_deduped_total", "Submissions folded into an identical in-flight job.", m.Deduped.Load())
	counter("womd_store_errors_total", "Failed result-store appends.", m.StoreErrors.Load())
	fmt.Fprintf(w, "# HELP womd_writes_total Simulated row writes by class across executed jobs.\n"+
		"# TYPE womd_writes_total counter\n")
	for k := 0; k < probe.NumWriteKinds; k++ {
		fmt.Fprintf(w, "womd_writes_total{class=%q} %d\n", probe.Kind(k).String(), m.WriteClasses[k].Load())
	}
	counter("womd_stream_dropped_total", "SSE stream events lost to full subscriber buffers.", m.StreamDropped.Load())
	gauge("womd_stream_clients", "Connected SSE stream subscribers.", m.StreamClients.Load())
	gauge("womd_queue_depth", "Jobs waiting for a worker.", m.QueueDepth.Load())
	gauge("womd_jobs_running", "Jobs executing now.", m.Running.Load())
	fmt.Fprintf(w, "# HELP womd_uptime_seconds Seconds since the service started.\n"+
		"# TYPE womd_uptime_seconds gauge\nwomd_uptime_seconds %g\n", m.Uptime().Seconds())
	goVersion, revision := buildInfo()
	fmt.Fprintf(w, "# HELP womd_build_info Build metadata; the value is always 1.\n"+
		"# TYPE womd_build_info gauge\nwomd_build_info{go_version=%q,revision=%q} 1\n",
		goVersion, revision)

	counter("womd_job_sim_events_total", "Simulator event-loop steps across executed jobs.", m.SimEvents.Load())
	counter("womd_profiles_captured_total", "Slow-job pprof captures.", m.ProfilesCaptured.Load())

	writeExpHistogram(w, "womd_job_wall_seconds", "Per-experiment job wall time.", m.WallSnapshot(), 1e-9)
	writeExpHistogram(w, "womd_job_events_per_second", "Per-experiment simulated-events/sec per job.",
		m.perfSnapshot(m.perfEvents), 1)
	writeExpHistogram(w, "womd_job_cpu_seconds", "Per-experiment process CPU time per job.",
		m.perfSnapshot(m.perfCPU), 1e-9)
	writeExpHistogram(w, "womd_job_alloc_bytes", "Per-experiment heap bytes allocated per job.",
		m.perfSnapshot(m.perfAlloc), 1)
	if qw := m.QueueWaitSnapshot(); qw.Count > 0 {
		writeHistogramSeries(w, "womd_job_queue_wait_seconds",
			"Job latency from admission to worker start.", "", qw, 1e-9, true)
	}
}

// writeExpHistogram renders one per-experiment histogram family, scaling
// log2-bucket upper bounds by scale (1e-9 turns nanoseconds into seconds).
// The HELP/TYPE header is emitted only when at least one series has
// samples: a TYPE line with no samples trips exposition-format checkers.
func writeExpHistogram(w io.Writer, name, help string, snaps map[string]stats.LatencySnapshot, scale float64) {
	exps := make([]string, 0, len(snaps))
	for exp := range snaps {
		exps = append(exps, exp)
	}
	sort.Strings(exps)
	header := false
	for _, exp := range exps {
		writeHistogramSeries(w, name, help, exp, snaps[exp], scale, !header)
		header = true
	}
}

// writeHistogramSeries renders one histogram series; exp == "" renders an
// unlabeled series. withHeader emits the HELP/TYPE comment first.
func writeHistogramSeries(w io.Writer, name, help, exp string, s stats.LatencySnapshot, scale float64, withHeader bool) {
	if withHeader {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	label := func(le string) string {
		if exp == "" {
			if le == "" {
				return ""
			}
			return fmt.Sprintf("{le=%q}", le)
		}
		if le == "" {
			return fmt.Sprintf("{experiment=%q}", exp)
		}
		return fmt.Sprintf("{experiment=%q,le=%q}", exp, le)
	}
	for _, b := range s.Buckets {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, label(fmt.Sprintf("%g", float64(b.UpperNs)*scale)), b.Count)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, label("+Inf"), s.Count)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, label(""), float64(s.SumNs)*scale)
	fmt.Fprintf(w, "%s_count%s %d\n", name, label(""), s.Count)
}
