package engine

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"womcpcm/internal/probe"
	"womcpcm/internal/stats"
)

// Metrics aggregates the service counters the /metrics endpoint exports.
// Counters are monotonic over the process lifetime; QueueDepth and Running
// are gauges. Wall-time distributions reuse the simulator's log2 histogram
// (internal/stats.Latency), one per experiment.
type Metrics struct {
	Queued    atomic.Uint64 // jobs accepted into the queue
	Rejected  atomic.Uint64 // jobs refused by admission control
	Completed atomic.Uint64 // jobs that succeeded
	Failed    atomic.Uint64 // jobs that errored or timed out
	Canceled  atomic.Uint64 // jobs canceled (queued or running)

	CacheHits   atomic.Uint64 // submissions served from the result store
	CacheMisses atomic.Uint64 // cacheable submissions not found in the store
	Deduped     atomic.Uint64 // submissions folded into an identical in-flight job
	StoreErrors atomic.Uint64 // failed result-store appends (job still succeeds)

	// WriteClasses counts simulated row writes by probe write kind across
	// every executed job (fed per-simulation via sim.WithClassCounts).
	WriteClasses [probe.NumWriteKinds]atomic.Uint64
	// StreamDropped counts SSE events lost to full subscriber buffers;
	// StreamClients gauges connected stream subscribers.
	StreamDropped atomic.Uint64
	StreamClients atomic.Int64

	QueueDepth atomic.Int64 // jobs waiting for a worker
	Running    atomic.Int64 // jobs executing now

	start time.Time // process start, for the uptime gauge

	mu   sync.Mutex
	wall map[string]*stats.Latency // experiment → wall-time histogram
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), wall: make(map[string]*stats.Latency)}
}

// Uptime reports the time since the metrics set was created — in practice,
// since the manager (and so the service) started.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// AddWriteClasses folds one simulation's write-class totals into the
// service counters; it is the manager's sim.ClassCountsFunc.
func (m *Metrics) AddWriteClasses(counts [probe.NumWriteKinds]uint64) {
	for k, n := range counts {
		if n > 0 {
			m.WriteClasses[k].Add(n)
		}
	}
}

// ObserveWall records one job's wall time under its experiment name.
func (m *Metrics) ObserveWall(experiment string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := m.wall[experiment]
	if l == nil {
		l = &stats.Latency{}
		m.wall[experiment] = l
	}
	l.Observe(d.Nanoseconds())
}

// WallSnapshot exports the per-experiment wall-time histograms.
func (m *Metrics) WallSnapshot() map[string]stats.LatencySnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]stats.LatencySnapshot, len(m.wall))
	for exp, l := range m.wall {
		out[exp] = l.Snapshot()
	}
	return out
}

// Snapshot is the JSON form of the metrics set.
type Snapshot struct {
	JobsQueued    uint64 `json:"jobs_queued_total"`
	JobsRejected  uint64 `json:"jobs_rejected_total"`
	JobsCompleted uint64 `json:"jobs_completed_total"`
	JobsFailed    uint64 `json:"jobs_failed_total"`
	JobsCanceled  uint64 `json:"jobs_canceled_total"`
	CacheHits     uint64 `json:"cache_hits_total"`
	CacheMisses   uint64 `json:"cache_misses_total"`
	JobsDeduped   uint64 `json:"jobs_deduped_total"`
	StoreErrors   uint64 `json:"store_errors_total"`
	QueueDepth    int64  `json:"queue_depth"`
	JobsRunning   int64  `json:"jobs_running"`

	// WritesTotal maps write class name → simulated row writes across jobs.
	WritesTotal   map[string]uint64 `json:"writes_total"`
	StreamDropped uint64            `json:"stream_dropped_total"`
	StreamClients int64             `json:"stream_clients"`

	UptimeSeconds float64 `json:"uptime_seconds"`

	WallNs map[string]stats.LatencySnapshot `json:"job_wall_ns"`
}

// Snapshot captures every counter and histogram at once.
func (m *Metrics) Snapshot() Snapshot {
	writes := make(map[string]uint64, probe.NumWriteKinds)
	for k := 0; k < probe.NumWriteKinds; k++ {
		writes[probe.Kind(k).String()] = m.WriteClasses[k].Load()
	}
	return Snapshot{
		JobsQueued:    m.Queued.Load(),
		JobsRejected:  m.Rejected.Load(),
		JobsCompleted: m.Completed.Load(),
		JobsFailed:    m.Failed.Load(),
		JobsCanceled:  m.Canceled.Load(),
		CacheHits:     m.CacheHits.Load(),
		CacheMisses:   m.CacheMisses.Load(),
		JobsDeduped:   m.Deduped.Load(),
		StoreErrors:   m.StoreErrors.Load(),
		QueueDepth:    m.QueueDepth.Load(),
		JobsRunning:   m.Running.Load(),
		WritesTotal:   writes,
		StreamDropped: m.StreamDropped.Load(),
		StreamClients: m.StreamClients.Load(),
		UptimeSeconds: m.Uptime().Seconds(),
		WallNs:        m.WallSnapshot(),
	}
}

// WriteProm renders the metrics in the Prometheus text exposition format.
func (m *Metrics) WriteProm(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("womd_jobs_queued_total", "Jobs accepted into the queue.", m.Queued.Load())
	counter("womd_jobs_rejected_total", "Jobs refused by admission control.", m.Rejected.Load())
	counter("womd_jobs_completed_total", "Jobs that succeeded.", m.Completed.Load())
	counter("womd_jobs_failed_total", "Jobs that errored or timed out.", m.Failed.Load())
	counter("womd_jobs_canceled_total", "Jobs canceled before or during execution.", m.Canceled.Load())
	counter("womd_cache_hits_total", "Submissions served from the result store.", m.CacheHits.Load())
	counter("womd_cache_misses_total", "Cacheable submissions not found in the store.", m.CacheMisses.Load())
	counter("womd_jobs_deduped_total", "Submissions folded into an identical in-flight job.", m.Deduped.Load())
	counter("womd_store_errors_total", "Failed result-store appends.", m.StoreErrors.Load())
	fmt.Fprintf(w, "# HELP womd_writes_total Simulated row writes by class across executed jobs.\n"+
		"# TYPE womd_writes_total counter\n")
	for k := 0; k < probe.NumWriteKinds; k++ {
		fmt.Fprintf(w, "womd_writes_total{class=%q} %d\n", probe.Kind(k).String(), m.WriteClasses[k].Load())
	}
	counter("womd_stream_dropped_total", "SSE stream events lost to full subscriber buffers.", m.StreamDropped.Load())
	gauge("womd_stream_clients", "Connected SSE stream subscribers.", m.StreamClients.Load())
	gauge("womd_queue_depth", "Jobs waiting for a worker.", m.QueueDepth.Load())
	gauge("womd_jobs_running", "Jobs executing now.", m.Running.Load())
	fmt.Fprintf(w, "# HELP womd_uptime_seconds Seconds since the service started.\n"+
		"# TYPE womd_uptime_seconds gauge\nwomd_uptime_seconds %g\n", m.Uptime().Seconds())
	goVersion, revision := buildInfo()
	fmt.Fprintf(w, "# HELP womd_build_info Build metadata; the value is always 1.\n"+
		"# TYPE womd_build_info gauge\nwomd_build_info{go_version=%q,revision=%q} 1\n",
		goVersion, revision)

	walls := m.WallSnapshot()
	exps := make([]string, 0, len(walls))
	for exp := range walls {
		exps = append(exps, exp)
	}
	sort.Strings(exps)
	const name = "womd_job_wall_seconds"
	fmt.Fprintf(w, "# HELP %s Per-experiment job wall time.\n# TYPE %s histogram\n", name, name)
	for _, exp := range exps {
		s := walls[exp]
		for _, b := range s.Buckets {
			fmt.Fprintf(w, "%s_bucket{experiment=%q,le=\"%g\"} %d\n",
				name, exp, float64(b.UpperNs)/1e9, b.Count)
		}
		fmt.Fprintf(w, "%s_bucket{experiment=%q,le=\"+Inf\"} %d\n", name, exp, s.Count)
		fmt.Fprintf(w, "%s_sum{experiment=%q} %g\n", name, exp, float64(s.SumNs)/1e9)
		fmt.Fprintf(w, "%s_count{experiment=%q} %d\n", name, exp, s.Count)
	}
}
