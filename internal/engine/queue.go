package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"womcpcm/internal/sched"
)

// Queue is the manager's pending-job buffer, pluggable so womd can swap
// the default FIFO for the multi-tenant scheduler (internal/sched) without
// the manager knowing. The manager calls Enqueue under its admission lock,
// workers call Dequeue/Done concurrently, and Close is called exactly once
// at drain: admitted jobs keep flowing to workers, then Dequeue reports
// ok=false.
type Queue interface {
	// Enqueue admits one job or rejects it with an error satisfying
	// errors.Is(err, ErrQueueFull) (and carrying a *sched.ShedError with
	// the machine-readable reason and Retry-After).
	Enqueue(*Job) error
	// Dequeue blocks for the next job; ok=false after Close once drained.
	Dequeue() (*Job, bool)
	// Done releases per-tenant accounting for a dequeued job after it
	// finishes executing. Must be called exactly once per Dequeue.
	Done(*Job)
	// Depth reports jobs currently queued.
	Depth() int
	// Cap reports the queue's admission bound (0 = unbounded/unknown) —
	// the denominator for readiness and saturation alerting.
	Cap() int
	// Close stops admissions and lets queued jobs drain.
	Close()
}

// shedRejection couples ErrQueueFull with the scheduler's shed detail, so
// errors.Is(err, ErrQueueFull) keeps selecting the 429 path everywhere
// (server, cluster agent) while errors.As(err, **sched.ShedError) exposes
// the reason, tenant, and Retry-After to the error body.
type shedRejection struct {
	msg  string
	shed *sched.ShedError
}

func (e *shedRejection) Error() string   { return e.msg }
func (e *shedRejection) Unwrap() []error { return []error{ErrQueueFull, e.shed} }

// fifoQueue is the default single-queue behavior: a buffered channel,
// exactly as the manager used before queues were pluggable. Its only
// addition is a drain-rate tracker so a full queue's 429 carries an honest
// Retry-After.
type fifoQueue struct {
	ch chan *Job

	mu    sync.Mutex
	drain sched.RateTracker
}

func newFIFOQueue(depth int) *fifoQueue {
	return &fifoQueue{ch: make(chan *Job, depth)}
}

func (q *fifoQueue) Enqueue(j *Job) error {
	select {
	case q.ch <- j:
		return nil
	default:
	}
	q.mu.Lock()
	retryAfter := q.drain.RetryAfter(1)
	q.mu.Unlock()
	return &shedRejection{
		msg: fmt.Sprintf("%v (depth %d)", ErrQueueFull, cap(q.ch)),
		shed: &sched.ShedError{
			Tenant:     j.tenant,
			Reason:     "queue_full",
			RetryAfter: retryAfter,
		},
	}
}

func (q *fifoQueue) Dequeue() (*Job, bool) {
	j, ok := <-q.ch
	if ok {
		q.mu.Lock()
		q.drain.Observe(time.Now())
		q.mu.Unlock()
	}
	return j, ok
}

func (q *fifoQueue) Done(*Job) {}

func (q *fifoQueue) Depth() int { return len(q.ch) }

func (q *fifoQueue) Cap() int { return cap(q.ch) }

// Close is safe against concurrent Enqueue because the manager serializes
// both under its admission lock and never enqueues after draining is set.
func (q *fifoQueue) Close() { close(q.ch) }

// tenantQueue adapts a sched.Scheduler to the Queue interface: jobs become
// scheduler items carrying their tenant name and first-admission time (so
// a cluster re-dispatch keeps its original deadline).
type tenantQueue struct {
	s *sched.Scheduler
}

// NewTenantQueue wraps the multi-tenant scheduler as the manager's queue
// (Config.Queue). The caller keeps the scheduler for Reload and WriteProm.
func NewTenantQueue(s *sched.Scheduler) Queue { return &tenantQueue{s: s} }

func (q *tenantQueue) Enqueue(j *Job) error {
	// Resolve the canonical tenant before the scheduler can hand the job
	// to a worker: once Enqueue returns, a concurrent Dequeue/Done may
	// already be reading j.tenant.
	name := q.s.Canonical(j.req.Tenant)
	j.tenant = name
	_, err := q.s.Enqueue(sched.Item{
		Tenant:     name,
		AdmittedAt: j.submitted,
		Payload:    j,
	})
	if err == nil {
		return nil
	}
	if errors.Is(err, sched.ErrClosed) {
		return ErrDraining
	}
	var se *sched.ShedError
	if errors.As(err, &se) {
		return &shedRejection{
			msg:  fmt.Sprintf("%v: %v", ErrQueueFull, err),
			shed: se,
		}
	}
	return err
}

func (q *tenantQueue) Dequeue() (*Job, bool) {
	it, ok := q.s.Dequeue()
	if !ok {
		return nil, false
	}
	return it.Payload.(*Job), true
}

func (q *tenantQueue) Done(j *Job) { q.s.Done(j.tenant) }

func (q *tenantQueue) Depth() int { return q.s.Depth() }

func (q *tenantQueue) Cap() int { return q.s.MaxDepth() }

func (q *tenantQueue) Close() { q.s.Close() }

// Views exposes the per-tenant state for GET /v1/tenants; the manager
// discovers it by interface assertion so the FIFO stays oblivious.
func (q *tenantQueue) Views() []sched.TenantView { return q.s.Views() }
