package engine

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"womcpcm/internal/trace"
)

// StoredTrace is one uploaded trace held in memory for replay jobs.
type StoredTrace struct {
	ID    string `json:"id"`
	Label string `json:"label"`
	Count int    `json:"records"`

	recs []trace.Record
}

// TraceStore keeps uploaded traces for the service, decoded once at upload
// time so replay jobs share the record slice read-only.
type TraceStore struct {
	maxRecords int
	maxTraces  int

	mu     sync.Mutex
	seq    uint64
	traces map[string]*StoredTrace
}

// NewTraceStore bounds uploads to maxRecords per trace and maxTraces held
// at once (0 selects defaults of 4M records and 64 traces).
func NewTraceStore(maxRecords, maxTraces int) *TraceStore {
	if maxRecords <= 0 {
		maxRecords = 4 << 20
	}
	if maxTraces <= 0 {
		maxTraces = 64
	}
	return &TraceStore{
		maxRecords: maxRecords,
		maxTraces:  maxTraces,
		traces:     make(map[string]*StoredTrace),
	}
}

// ErrStoreFull reports the trace-count bound.
var ErrStoreFull = fmt.Errorf("engine: trace store full")

// Put decodes one upload (binary or text format, auto-detected) as a
// stream, validates time ordering, and stores it under a fresh id.
// Malformed or oversized input returns an error without storing anything.
func (s *TraceStore) Put(label string, r io.Reader) (*StoredTrace, error) {
	recs, err := trace.CollectLimit(trace.NewAutoReader(r), s.maxRecords)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("engine: empty trace upload")
	}
	if err := trace.Validate(recs); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.traces) >= s.maxTraces {
		return nil, fmt.Errorf("%w (max %d)", ErrStoreFull, s.maxTraces)
	}
	s.seq++
	id := fmt.Sprintf("t-%06d", s.seq)
	if label == "" {
		label = id
	}
	st := &StoredTrace{ID: id, Label: label, Count: len(recs), recs: recs}
	s.traces[id] = st
	return st, nil
}

// Get returns a stored trace by id.
func (s *TraceStore) Get(id string) (*StoredTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.traces[id]
	return st, ok
}

// Delete removes a stored trace, reporting whether it existed.
func (s *TraceStore) Delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.traces[id]
	delete(s.traces, id)
	return ok
}

// List returns the stored traces sorted by id.
func (s *TraceStore) List() []*StoredTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*StoredTrace, 0, len(s.traces))
	for _, st := range s.traces {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Records exposes the decoded records; callers must treat them read-only.
func (t *StoredTrace) Records() []trace.Record { return t.recs }
