package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer makes a bytes.Buffer safe for concurrent slog writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDPropagation submits a job with a client-chosen X-Request-ID
// and checks the id is echoed on the response and stitched through the job's
// queued → started → finished lifecycle logs.
func TestRequestIDPropagation(t *testing.T) {
	var logs syncBuffer
	logger := slog.New(slog.NewTextHandler(&logs, nil))
	mgr := New(Config{Workers: 1, QueueDepth: 4, Logger: logger})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr, WithLogger(logger)))
	defer ts.Close()

	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs",
		strings.NewReader(`{"experiment":"fig5","params":{"requests":2000,"bench":["qsort"],"ranks":2,"parallelism":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "r-client-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var job JobView
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "r-client-7" {
		t.Errorf("response X-Request-ID = %q, want the client's id echoed", got)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		j, ok := mgr.Get(job.ID)
		if !ok {
			t.Fatalf("job %s vanished", job.ID)
		}
		if j.State().Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", job.ID, j.State())
		}
		time.Sleep(5 * time.Millisecond)
	}

	out := logs.String()
	for _, want := range []string{
		`msg="job queued" job=` + job.ID,
		`msg="job started" job=` + job.ID,
		`msg="job finished" job=` + job.ID,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("logs missing %q:\n%s", want, out)
		}
	}
	// Every lifecycle line carries the request id the client chose.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "job="+job.ID) && !strings.Contains(line, "request_id=r-client-7") {
			t.Errorf("lifecycle line missing request id: %s", line)
		}
	}
	// The access log ties the same id to the HTTP request itself.
	if !strings.Contains(out, `msg=request request_id=r-client-7 method=POST path=/v1/jobs status=202`) {
		t.Errorf("access log missing request line:\n%s", out)
	}

	// Requests without a client id get a generated one.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); !strings.HasPrefix(got, "r-") {
		t.Errorf("generated request id = %q", got)
	}
}

// TestDebugGatesPprof checks /debug/pprof/ is mounted only with WithDebug.
func TestDebugGatesPprof(t *testing.T) {
	mgr := New(Config{Workers: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck

	status := func(srv *Server) int {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
		return rec.Code
	}
	if got := status(NewServer(mgr)); got != http.StatusNotFound {
		t.Errorf("pprof without -debug = %d, want 404", got)
	}
	if got := status(NewServer(mgr, WithDebug())); got != http.StatusOK {
		t.Errorf("pprof with -debug = %d, want 200", got)
	}
}
