package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"womcpcm/internal/sim"
)

// Server is the HTTP/JSON face of a Manager. Routes (see DESIGN.md for the
// full catalog):
//
//	POST   /v1/jobs             submit an experiment job (202, 429 when full)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result of a succeeded job (202 while pending)
//	DELETE /v1/jobs/{id}        cancel a pending job / delete a finished one
//	POST   /v1/traces           upload a trace (binary or text body)
//	GET    /v1/traces           list uploads
//	DELETE /v1/traces/{id}      drop an upload
//	GET    /v1/experiments      list the experiment registry
//	GET    /metrics             Prometheus text format
//	GET    /metrics.json        JSON metrics snapshot
//	GET    /healthz             liveness probe
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// NewServer wires the routes over m.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.listJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.getResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.deleteJob)
	s.mux.HandleFunc("POST /v1/traces", s.uploadTrace)
	s.mux.HandleFunc("GET /v1/traces", s.listTraces)
	s.mux.HandleFunc("DELETE /v1/traces/{id}", s.deleteTrace)
	s.mux.HandleFunc("GET /v1/experiments", s.listExperiments)
	s.mux.HandleFunc("GET /metrics", s.promMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.jsonMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-response
}

// writeError maps engine errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrTooManyJobs), errors.Is(err, ErrStoreFull):
		status = http.StatusInsufficientStorage
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

const maxJobBody = 1 << 20 // job submissions are small JSON documents

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("engine: decoding job request: %w", err))
		return
	}
	job, err := s.m.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) listJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.m.Jobs()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, fmt.Errorf("%w: job %q", ErrNotFound, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) getResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, fmt.Errorf("%w: job %q", ErrNotFound, r.PathValue("id")))
		return
	}
	view := job.View()
	switch view.State {
	case StateSucceeded:
		res, _ := job.Result()
		writeJSON(w, http.StatusOK, map[string]any{"job": view, "result": res})
	case StateQueued, StateRunning:
		// Not ready yet: 202 tells pollers to come back.
		writeJSON(w, http.StatusAccepted, view)
	default:
		writeJSON(w, http.StatusConflict, view)
	}
}

// deleteJob cancels a pending job; a terminal job is removed instead.
func (s *Server) deleteJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.m.Get(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: job %q", ErrNotFound, id))
		return
	}
	if job.State().Terminal() {
		if err := s.m.Delete(id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
		return
	}
	if err := s.m.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) uploadTrace(w http.ResponseWriter, r *http.Request) {
	st, err := s.m.Traces().Put(r.URL.Query().Get("label"), r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/traces/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) listTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.m.Traces().List()})
}

func (s *Server) deleteTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.m.Traces().Delete(id) {
		writeError(w, fmt.Errorf("%w: trace %q", ErrNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) listExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": sim.Experiments()})
}

func (s *Server) promMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.Metrics().WriteProm(w)
}

func (s *Server) jsonMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Metrics().Snapshot())
}
