package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"womcpcm/internal/health"
	"womcpcm/internal/perfmon"
	"womcpcm/internal/resultstore"
	"womcpcm/internal/sched"
	"womcpcm/internal/sim"
	"womcpcm/internal/span"
	"womcpcm/internal/tsdb"
)

// Server is the HTTP/JSON face of a Manager. Routes (see DESIGN.md for the
// full catalog):
//
//	POST   /v1/jobs             submit an experiment job (202, 429 when full)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result of a succeeded job (202 while pending)
//	GET    /v1/jobs/{id}/progress records processed / total (replay jobs)
//	GET    /v1/jobs/{id}/stream   live SSE: telemetry windows + progress
//	GET    /v1/jobs/{id}/trace    distributed trace, Chrome trace-event JSON
//	GET    /v1/jobs/{id}/profiles        pprof captures for a slow job
//	GET    /v1/jobs/{id}/profiles/{file} one capture, pprof binary body
//	DELETE /v1/jobs/{id}        cancel a pending job / delete a finished one
//	POST   /v1/traces           upload a trace (binary or text body)
//	GET    /v1/traces           list uploads
//	DELETE /v1/traces/{id}      drop an upload
//	GET    /v1/experiments      list the experiment registry
//	GET    /v1/tenants          per-tenant scheduler state (womd -tenants)
//	GET    /v1/results          list cached results (when a store is wired)
//	GET    /v1/results/{key}    one cached result, full body
//	POST   /v1/baselines        pin a named baseline snapshot {"name": "..."}
//	GET    /v1/baselines        list pinned baselines
//	GET    /v1/baselines/{name} one baseline, full metrics
//	GET    /v1/compare          ?baseline=name&tolerance=0.02 regression report
//	GET    /v1/alerts           SLO/burn-rate alerts (womd -alerts)
//	GET    /v1/alerts/{id}      one alert, active or recently resolved
//	GET    /metrics             Prometheus text format
//	GET    /metrics.json        JSON metrics snapshot
//	GET    /healthz             liveness probe
//	GET    /readyz              readiness: 503 while draining or saturated
type Server struct {
	m         *Manager
	mux       *http.ServeMux
	log       *slog.Logger
	debug     bool
	heartbeat time.Duration
	poller    *perfmon.Poller
	promExtra []func(io.Writer)
	alerts    *health.Engine
	history   *tsdb.DB
	readySat  float64
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithLogger routes structured access logs (one line per request, carrying
// the request id) to l. The default discards them.
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// WithDebug mounts net/http/pprof under /debug/pprof/. Off by default: the
// profiling endpoints expose internals and cost CPU, so womd gates them
// behind its -debug flag.
func WithDebug() ServerOption {
	return func(s *Server) { s.debug = true }
}

// WithHeartbeat overrides the SSE heartbeat interval (default 15s): the
// comment frames that keep idle streams from being reaped by proxies and
// let the server notice dead clients. Tests shorten it.
func WithHeartbeat(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.heartbeat = d
		}
	}
}

// WithRuntimeMetrics appends p's womd_runtime_* families (GC pauses, heap
// in-use, goroutines, scheduler latency) to GET /metrics. The caller owns
// the poller's lifecycle — Start it before serving, Stop it on shutdown.
func WithRuntimeMetrics(p *perfmon.Poller) ServerOption {
	return func(s *Server) { s.poller = p }
}

// WithPromAppender appends extra metric families to GET /metrics — the hook
// the cluster coordinator uses to export womd_cluster_* alongside the
// service counters. f must emit valid Prometheus text exposition.
func WithPromAppender(f func(io.Writer)) ServerOption {
	return func(s *Server) {
		if f != nil {
			s.promExtra = append(s.promExtra, f)
		}
	}
}

// WithAlerts serves h's alert set on GET /v1/alerts. Without it the
// alert routes refuse with 501 (ErrNoAlerts), matching the other
// optional planes.
func WithAlerts(h *health.Engine) ServerOption {
	return func(s *Server) {
		if h != nil {
			s.alerts = h
		}
	}
}

// WithReadySaturation overrides the queue-occupancy fraction at which
// GET /readyz flips to 503 (default DefaultReadySaturation).
func WithReadySaturation(frac float64) ServerOption {
	return func(s *Server) {
		if frac > 0 {
			s.readySat = frac
		}
	}
}

// NewServer wires the routes over m.
func NewServer(m *Manager, opts ...ServerOption) *Server {
	s := &Server{m: m, mux: http.NewServeMux(), log: slog.New(slog.DiscardHandler),
		heartbeat: 15 * time.Second}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.listJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.getResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/progress", s.getProgress)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.streamJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.getJobTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/profiles", s.listProfiles)
	s.mux.HandleFunc("GET /v1/jobs/{id}/profiles/{file}", s.getProfile)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.deleteJob)
	s.mux.HandleFunc("POST /v1/traces", s.uploadTrace)
	s.mux.HandleFunc("GET /v1/traces", s.listTraces)
	s.mux.HandleFunc("DELETE /v1/traces/{id}", s.deleteTrace)
	s.mux.HandleFunc("GET /v1/experiments", s.listExperiments)
	s.mux.HandleFunc("GET /v1/tenants", s.listTenants)
	s.mux.HandleFunc("GET /v1/results", s.listResults)
	s.mux.HandleFunc("GET /v1/results/{key}", s.getStoredResult)
	s.mux.HandleFunc("POST /v1/baselines", s.pinBaseline)
	s.mux.HandleFunc("GET /v1/baselines", s.listBaselines)
	s.mux.HandleFunc("GET /v1/baselines/{name}", s.getBaseline)
	s.mux.HandleFunc("GET /v1/compare", s.compareBaseline)
	s.mux.HandleFunc("GET /v1/alerts", s.listAlerts)
	s.mux.HandleFunc("GET /v1/alerts/history", s.alertHistory)
	s.mux.HandleFunc("GET /v1/alerts/{id}", s.getAlert)
	s.mux.HandleFunc("GET /v1/query_range", s.queryRange)
	s.mux.HandleFunc("GET /v1/series", s.listSeries)
	s.mux.HandleFunc("GET /metrics", s.promMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.jsonMetrics)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
	if s.debug {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler. Each request is stamped with a request
// id (honoring a client-supplied X-Request-ID) that handlers propagate into
// job lifecycle logs, and responses pass through an interceptor that
// rewrites any plain-text error — notably the mux's own 404/405 pages —
// into the service's structured JSON error shape, so every error path on
// this API returns {"error": "..."} with a JSON Content-Type.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = newRequestID()
	}
	w.Header().Set("X-Request-ID", id)
	ctx := WithRequestID(r.Context(), id)
	// A W3C traceparent header joins this request to the caller's trace:
	// Submit parents the job's root span under it instead of starting a
	// fresh trace (cluster dispatch propagation).
	if tc, ok := span.FromRequest(r); ok {
		ctx = WithTraceParent(ctx, tc)
	}
	r = r.WithContext(ctx)

	start := time.Now()
	iw := &jsonErrorWriter{ResponseWriter: w}
	s.mux.ServeHTTP(iw, r)
	iw.finish()
	s.log.Info("request", "request_id", id, "method", r.Method,
		"path", r.URL.Path, "status", iw.statusCode(),
		"duration_ms", time.Since(start).Milliseconds())
}

// jsonErrorWriter wraps a ResponseWriter and converts non-JSON error
// responses (status ≥ 400 without a JSON Content-Type, e.g. from
// http.Error) into JSON bodies. Success responses pass through untouched.
type jsonErrorWriter struct {
	http.ResponseWriter
	wroteHeader bool
	capturing   bool
	status      int
	buf         bytes.Buffer
}

func (w *jsonErrorWriter) WriteHeader(status int) {
	if w.wroteHeader || w.capturing {
		return
	}
	ct := w.Header().Get("Content-Type")
	if status >= 400 && !strings.Contains(ct, "json") {
		// Hold the header back: the body is rewritten in finish.
		w.capturing = true
		w.status = status
		return
	}
	w.wroteHeader = true
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// statusCode reports the response status for access logging; implicit
// 200-on-first-Write responses read as 200.
func (w *jsonErrorWriter) statusCode() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if w.capturing {
		return w.buf.Write(b)
	}
	if !w.wroteHeader {
		w.wroteHeader = true
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.ResponseController, so the
// SSE handler can flush through the interceptor.
func (w *jsonErrorWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// finish emits a captured error as the structured JSON shape.
func (w *jsonErrorWriter) finish() {
	if !w.capturing {
		return
	}
	msg := strings.TrimSpace(w.buf.String())
	if msg == "" {
		msg = http.StatusText(w.status)
	}
	writeJSON(w.ResponseWriter, w.status, map[string]string{"error": msg})
}

// writeJSON emits v with the given status. Every JSON response on this
// API is live operational state — never cacheable — so the no-store
// directive rides the shared helper instead of per-handler discipline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-response
}

// writeError maps engine errors onto HTTP statuses. Shed submissions
// (queue full, tenant shed) additionally carry a Retry-After header
// computed from the observed drain rate and machine-readable reason and
// tenant fields, so clients back off proportionally to the real backlog.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrTooManyJobs), errors.Is(err, ErrStoreFull):
		status = http.StatusInsufficientStorage
	case errors.Is(err, ErrNotFound), errors.Is(err, resultstore.ErrNoBaseline):
		status = http.StatusNotFound
	case errors.Is(err, ErrNoStore), errors.Is(err, ErrNoProfiles),
		errors.Is(err, ErrNoTenants), errors.Is(err, ErrNoTracer),
		errors.Is(err, ErrNoAlerts), errors.Is(err, ErrNoHistory):
		status = http.StatusNotImplemented
	}
	var se *sched.ShedError
	if errors.As(err, &se) {
		secs := int64(math.Ceil(se.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		body := map[string]any{
			"error":         err.Error(),
			"reason":        se.Reason,
			"retry_after_s": secs,
		}
		if se.Tenant != "" {
			body["tenant"] = se.Tenant
		}
		if se.TraceID != "" {
			body["trace_id"] = se.TraceID
		}
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ErrNoStore rejects result-store routes when womd runs without -cache.
var ErrNoStore = errors.New("engine: result store not configured (start womd with -cache)")

const maxJobBody = 1 << 20 // job submissions are small JSON documents

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("engine: decoding job request: %w", err))
		return
	}
	job, err := s.m.Submit(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) listJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.m.Jobs()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, fmt.Errorf("%w: job %q", ErrNotFound, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) getResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, fmt.Errorf("%w: job %q", ErrNotFound, r.PathValue("id")))
		return
	}
	view := job.View()
	switch view.State {
	case StateSucceeded:
		res, _ := job.Result()
		writeJSON(w, http.StatusOK, map[string]any{"job": view, "result": res})
	case StateQueued, StateRunning:
		// Not ready yet: 202 tells pollers to come back.
		writeJSON(w, http.StatusAccepted, view)
	default:
		writeJSON(w, http.StatusConflict, view)
	}
}

// getJobTrace serves GET /v1/jobs/{id}/trace: the job's distributed trace
// as Chrome trace-event JSON, directly loadable in Perfetto and rendered
// to an HTML waterfall by `womtool spans`. On a cluster coordinator the
// trace includes the worker-side spans shipped back over the dispatch
// stream, so one document answers "where did this job's time go" across
// processes. 404 for a job whose trace was sampled out (or predates the
// span buffer's eviction horizon), 501 when tracing is off.
func (s *Server) getJobTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, fmt.Errorf("%w: job %q", ErrNotFound, r.PathValue("id")))
		return
	}
	rec := s.m.Tracer()
	if rec == nil {
		writeError(w, ErrNoTracer)
		return
	}
	tc := job.TraceContext()
	if !tc.Valid() {
		writeError(w, fmt.Errorf("%w: job %q has no trace", ErrNotFound, job.ID()))
		return
	}
	spans := rec.Trace(tc.TraceID)
	if len(spans) == 0 {
		writeError(w, fmt.Errorf("%w: trace %s has no buffered spans (sampled out or evicted)",
			ErrNotFound, tc.TraceID))
		return
	}
	w.Header().Set("X-Trace-ID", tc.TraceID)
	writeJSON(w, http.StatusOK, span.ChromeTraceOf(spans))
}

// getProgress reports a job's completion gauge. The fraction is monotone
// non-decreasing across polls of a running job (see Job.setProgress).
func (s *Server) getProgress(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, fmt.Errorf("%w: job %q", ErrNotFound, r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.Progress())
}

// ErrNoProfiles rejects profile routes when womd runs without -profile-dir.
var ErrNoProfiles = errors.New("engine: slow-job profiling not configured (start womd with -profile-dir)")

// requireProfiles resolves the profile store or reports ErrNoProfiles.
func (s *Server) requireProfiles(w http.ResponseWriter) *perfmon.ProfileStore {
	ps := s.m.Profiles()
	if ps == nil {
		writeError(w, ErrNoProfiles)
		return nil
	}
	return ps
}

// listProfiles serves GET /v1/jobs/{id}/profiles: every pprof capture the
// slow-job monitor took for this job, newest first.
func (s *Server) listProfiles(w http.ResponseWriter, r *http.Request) {
	ps := s.requireProfiles(w)
	if ps == nil {
		return
	}
	id := r.PathValue("id")
	if _, ok := s.m.Get(id); !ok {
		writeError(w, fmt.Errorf("%w: job %q", ErrNotFound, id))
		return
	}
	caps := ps.List(id)
	perfmon.SortCapturesByTime(caps)
	writeJSON(w, http.StatusOK, map[string]any{"job": id, "profiles": caps})
}

// getProfile serves one capture's pprof body; the file name comes from the
// listing and only store-registered names resolve (no path traversal).
func (s *Server) getProfile(w http.ResponseWriter, r *http.Request) {
	ps := s.requireProfiles(w)
	if ps == nil {
		return
	}
	id, file := r.PathValue("id"), r.PathValue("file")
	if _, ok := s.m.Get(id); !ok {
		writeError(w, fmt.Errorf("%w: job %q", ErrNotFound, id))
		return
	}
	f, err := ps.Open(file)
	if err != nil {
		writeError(w, fmt.Errorf("%w: profile %q", ErrNotFound, file))
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", file))
	io.Copy(w, f) //nolint:errcheck // client gone mid-download
}

// deleteJob cancels a pending job; a terminal job is removed instead.
func (s *Server) deleteJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.m.Get(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: job %q", ErrNotFound, id))
		return
	}
	if job.State().Terminal() {
		if err := s.m.Delete(id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
		return
	}
	if err := s.m.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) uploadTrace(w http.ResponseWriter, r *http.Request) {
	st, err := s.m.Traces().Put(r.URL.Query().Get("label"), r.Body)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/traces/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (s *Server) listTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.m.Traces().List()})
}

func (s *Server) deleteTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.m.Traces().Delete(id) {
		writeError(w, fmt.Errorf("%w: trace %q", ErrNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) listExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": sim.Experiments()})
}

// listTenants serves GET /v1/tenants: per-tenant scheduling state (depth,
// in-flight, sheds by reason, SLO attainment, queue-wait quantiles). 501
// when womd runs without -tenants.
func (s *Server) listTenants(w http.ResponseWriter, _ *http.Request) {
	views, err := s.m.TenantViews()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": views})
}

// requireStore resolves the result store or reports ErrNoStore.
func (s *Server) requireStore(w http.ResponseWriter) *resultstore.Store {
	store := s.m.Store()
	if store == nil {
		writeError(w, ErrNoStore)
		return nil
	}
	return store
}

func (s *Server) listResults(w http.ResponseWriter, _ *http.Request) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	entries := store.Entries()
	summaries := make([]resultstore.Summary, len(entries))
	for i, e := range entries {
		summaries[i] = e.Summary()
	}
	writeJSON(w, http.StatusOK, map[string]any{"schema": store.SchemaVersion(), "results": summaries})
}

func (s *Server) getStoredResult(w http.ResponseWriter, r *http.Request) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	key := r.PathValue("key")
	entry, ok := store.Get(key)
	if !ok {
		writeError(w, fmt.Errorf("%w: result %q", ErrNotFound, key))
		return
	}
	writeJSON(w, http.StatusOK, entry)
}

func (s *Server) pinBaseline(w http.ResponseWriter, r *http.Request) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("engine: decoding baseline request: %w", err))
		return
	}
	b, err := store.PinBaseline(req.Name)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/baselines/"+b.Name)
	writeJSON(w, http.StatusCreated, b)
}

func (s *Server) listBaselines(w http.ResponseWriter, _ *http.Request) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	type summary struct {
		Name      string `json:"name"`
		Schema    string `json:"schema"`
		CreatedAt string `json:"created_at"`
		Results   int    `json:"results"`
	}
	baselines := store.Baselines()
	out := make([]summary, len(baselines))
	for i, b := range baselines {
		out[i] = summary{Name: b.Name, Schema: b.Schema,
			CreatedAt: b.CreatedAt.UTC().Format(time.RFC3339Nano),
			Results:   len(b.Metrics)}
	}
	writeJSON(w, http.StatusOK, map[string]any{"baselines": out})
}

func (s *Server) getBaseline(w http.ResponseWriter, r *http.Request) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	b, err := store.Baseline(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, b)
}

// compareBaseline reports the current store against a pinned baseline:
// GET /v1/compare?baseline=NAME&tolerance=0.02 (tolerance defaults to 0,
// i.e. exact agreement).
func (s *Server) compareBaseline(w http.ResponseWriter, r *http.Request) {
	store := s.requireStore(w)
	if store == nil {
		return
	}
	name := r.URL.Query().Get("baseline")
	if name == "" {
		writeError(w, fmt.Errorf("engine: compare needs ?baseline=name"))
		return
	}
	tol := 0.0
	if q := r.URL.Query().Get("tolerance"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || v < 0 {
			writeError(w, fmt.Errorf("engine: bad tolerance %q", q))
			return
		}
		tol = v
	}
	b, err := store.Baseline(name)
	if err != nil {
		writeError(w, err)
		return
	}
	cmp, err := resultstore.Compare(b, store.Entries(), tol)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, cmp)
}

func (s *Server) promMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteProm(w)
}

// WriteProm writes the full Prometheus exposition GET /metrics serves:
// service counters, store gauge, per-job progress, runtime metrics, and
// every registered appender (cluster families, federated fleet families,
// the history store's own gauges). The history self-scrape gathers from
// here, so everything /metrics exposes is also everything history
// records.
func (s *Server) WriteProm(w io.Writer) {
	s.m.Metrics().WriteProm(w)
	if store := s.m.Store(); store != nil {
		fmt.Fprintf(w, "# HELP womd_store_results Distinct results held by the result store.\n"+
			"# TYPE womd_store_results gauge\nwomd_store_results %d\n", store.Len())
	}
	// One gauge sample per running progress-reporting job. The header is
	// emitted only alongside samples: a TYPE line with no series would trip
	// exposition-format checkers (and this repo's prom test).
	var progress []ProgressView
	var exps []string
	for _, j := range s.m.Jobs() {
		if p := j.Progress(); p.State == StateRunning && p.Total > 0 {
			progress = append(progress, p)
			exps = append(exps, j.exp.Name)
		}
	}
	if len(progress) > 0 {
		fmt.Fprintf(w, "# HELP womd_job_progress Fraction of a running job's records processed.\n"+
			"# TYPE womd_job_progress gauge\n")
		for i, p := range progress {
			fmt.Fprintf(w, "womd_job_progress{job=%q,experiment=%q} %g\n", p.ID, exps[i], p.Fraction)
		}
	}
	if s.poller != nil {
		s.poller.WriteProm(w)
	}
	for _, f := range s.promExtra {
		f(w)
	}
}

func (s *Server) jsonMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Metrics().Snapshot())
}

// Health is the GET /healthz body: liveness plus enough build and uptime
// context to tell which binary is answering.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"revision"`
	JobsRunning   int64   `json:"jobs_running"`
	QueueDepth    int64   `json:"queue_depth"`
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	goVersion, revision := buildInfo()
	met := s.m.Metrics()
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		UptimeSeconds: met.Uptime().Seconds(),
		GoVersion:     goVersion,
		Revision:      revision,
		JobsRunning:   met.Running.Load(),
		QueueDepth:    met.QueueDepth.Load(),
	})
}

// readyz is readiness, split from /healthz's liveness: a draining or
// saturated process is still alive (do not restart it) but should stop
// receiving new work (503). Load balancers poll this; the cluster agent
// reports the same verdict in its heartbeats so the coordinator routes
// around not-ready workers.
func (s *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	rd := s.m.Readiness(s.readySat)
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rd)
}

func (s *Server) listAlerts(w http.ResponseWriter, _ *http.Request) {
	if s.alerts == nil {
		writeError(w, ErrNoAlerts)
		return
	}
	views := s.alerts.Alerts()
	counts := map[health.State]int{}
	for _, v := range views {
		counts[v.State]++
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"alerts": views,
		"counts": counts,
	})
}

func (s *Server) getAlert(w http.ResponseWriter, r *http.Request) {
	if s.alerts == nil {
		writeError(w, ErrNoAlerts)
		return
	}
	id := r.PathValue("id")
	v, ok := s.alerts.Alert(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: alert %q", ErrNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, v)
}
