package engine

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// buildInfo reports the running binary's Go toolchain version and VCS
// revision (with a "-dirty" suffix for modified trees). Test binaries and
// builds outside a repository report "unknown". Read once: the answer cannot
// change while the process lives.
var buildInfo = sync.OnceValues(func() (goVersion, revision string) {
	goVersion = runtime.Version()
	revision = "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return goVersion, revision
	}
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty && revision != "unknown" {
		revision += "-dirty"
	}
	return goVersion, revision
})
