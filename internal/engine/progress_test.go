package engine

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"womcpcm/internal/sim"
	"womcpcm/internal/trace"
)

func progressTrace(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		op := trace.Write
		if i%3 == 0 {
			op = trace.Read
		}
		recs[i] = trace.Record{Op: op, Addr: uint64(i%512) * 16384, Time: int64(i) * 60}
	}
	return recs
}

// TestJobProgressMonotonic polls a running replay job and checks the
// acceptance contract: the reported done count never decreases, the total is
// records × 4 architectures, and the job finishes with done == total.
func TestJobProgressMonotonic(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 8})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	recs := progressTrace(100000)
	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "replay", Params: sim.Params{
		Trace: recs, TraceLabel: "progress", Ranks: 2, Banks: 4, Parallelism: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}

	total := int64(len(recs)) * 4
	var last ProgressView
	sawPartial := false
	for !job.State().Terminal() {
		p := job.Progress()
		if p.Done < last.Done {
			t.Fatalf("progress moved backwards: %d → %d", last.Done, p.Done)
		}
		if p.Total != 0 && p.Total != total {
			t.Fatalf("total = %d, want %d", p.Total, total)
		}
		if p.Done > 0 && p.Done < total {
			sawPartial = true
		}
		last = p
		time.Sleep(time.Millisecond)
	}
	if !sawPartial {
		t.Error("never observed a partial progress reading; trace too small?")
	}
	final := job.Progress()
	if final.Done != total || final.Total != total || final.Fraction != 1 {
		t.Errorf("final progress = %+v, want done=total=%d", final, total)
	}
	if _, err := job.Result(); err != nil {
		t.Fatal(err)
	}

	// The HTTP face serves the same view.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var got ProgressView
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.ID != job.ID() || got.Done != total || got.Fraction != 1 {
		t.Errorf("GET progress = %+v", got)
	}

	// Unknown jobs 404 with the structured error shape.
	resp, err = http.Get(ts.URL + "/v1/jobs/j-999999/progress")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job progress status = %d", resp.StatusCode)
	}
}

// TestProgressGaugeExposition checks womd_job_progress: absent without
// running progress-reporting jobs (a TYPE line with no samples would trip
// format checkers), present with one sample per running job.
func TestProgressGaugeExposition(t *testing.T) {
	mgr := New(Config{Workers: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	srv := NewServer(mgr)

	scrape := func() string {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec.Body.String()
	}
	if body := scrape(); strings.Contains(body, "womd_job_progress") {
		t.Errorf("idle scrape exposes womd_job_progress:\n%s", body)
	}

	// Inject a running job mid-flight; the test lives in package engine so
	// it can place one directly instead of racing a real worker.
	job := &Job{id: "j-000042", exp: sim.Experiment{Name: "replay"}, state: StateRunning}
	job.setProgress(150, 600)
	mgr.mu.Lock()
	mgr.jobs[job.id] = job
	mgr.mu.Unlock()

	body := scrape()
	want := `womd_job_progress{job="j-000042",experiment="replay"} 0.25`
	if !strings.Contains(body, want) {
		t.Errorf("scrape missing %q:\n%s", want, body)
	}
}

// TestSetProgressMonotonic checks stale concurrent reports can never move
// the gauge backwards and totals only widen from zero.
func TestSetProgressMonotonic(t *testing.T) {
	var j Job
	j.setProgress(100, 400)
	j.setProgress(50, 400) // stale report from a slower goroutine
	if p := j.Progress(); p.Done != 100 {
		t.Errorf("done = %d after stale report, want 100", p.Done)
	}
	j.setProgress(400, 400)
	if p := j.Progress(); p.Done != 400 || p.Fraction != 1 {
		t.Errorf("progress = %+v, want done=400 fraction=1", p)
	}
}
