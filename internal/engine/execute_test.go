package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"womcpcm/internal/sim"
)

// waitJobTerminal polls a job to a terminal state.
func waitJobTerminal(t *testing.T, job *Job, timeout time.Duration) State {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !job.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", job.ID(), job.State())
		}
		time.Sleep(2 * time.Millisecond)
	}
	return job.State()
}

// TestExecuteHookRemote checks a configured Execute hook replaces local
// execution: the job succeeds with the hook's result, the local experiment
// never runs, and queue wait is observed exactly once.
func TestExecuteHookRemote(t *testing.T) {
	var calls atomic.Int64
	canned := &sim.Result{Experiment: "fig5", Text: "remote sentinel"}
	mgr := New(Config{Workers: 1, QueueDepth: 4,
		Execute: func(ctx context.Context, job *Job) (*sim.Result, error) {
			calls.Add(1)
			return canned, nil
		}})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck

	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "fig5", Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitJobTerminal(t, job, 30*time.Second); got != StateSucceeded {
		t.Fatalf("state = %s, want succeeded", got)
	}
	res, err := job.Result()
	if err != nil || res == nil || res.Text != "remote sentinel" {
		t.Fatalf("result = %+v, %v; want the hook's canned result", res, err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("Execute called %d times, want 1", got)
	}
	if got := mgr.Metrics().QueueWaitSnapshot().Count; got != 1 {
		t.Errorf("queue wait observations = %d, want 1", got)
	}
}

// TestExecuteHookLocalFallback checks ErrExecuteLocally hands the job back
// to the in-process path, which computes a real result.
func TestExecuteHookLocalFallback(t *testing.T) {
	var calls atomic.Int64
	mgr := New(Config{Workers: 1, QueueDepth: 4,
		Execute: func(ctx context.Context, job *Job) (*sim.Result, error) {
			calls.Add(1)
			return nil, ErrExecuteLocally
		}})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck

	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "fig5", Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitJobTerminal(t, job, 60*time.Second); got != StateSucceeded {
		t.Fatalf("state = %s, want succeeded", got)
	}
	res, err := job.Result()
	if err != nil || res == nil || res.Data == nil {
		t.Fatalf("result = %+v, %v; want a locally computed result", res, err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("Execute called %d times, want 1", got)
	}
}

// TestExecuteHookError checks a hook failure fails the job with the hook's
// error rather than silently falling back to a local run.
func TestExecuteHookError(t *testing.T) {
	boom := errors.New("fleet exploded")
	mgr := New(Config{Workers: 1, QueueDepth: 4,
		Execute: func(ctx context.Context, job *Job) (*sim.Result, error) {
			return nil, boom
		}})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck

	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "fig5", Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitJobTerminal(t, job, 30*time.Second); got != StateFailed {
		t.Fatalf("state = %s, want failed", got)
	}
	if _, err := job.Result(); !errors.Is(err, boom) {
		t.Errorf("result error = %v, want the hook's error", err)
	}
	if got := mgr.Metrics().Failed.Load(); got != 1 {
		t.Errorf("failed counter = %d, want 1", got)
	}
}
