package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"womcpcm/internal/sched"
	"womcpcm/internal/sim"
)

// blockingManager builds a manager whose Execute hook parks every job until
// the returned release func is called (tests fill the queue deterministically).
func blockingManager(t *testing.T, cfg Config) (*Manager, func()) {
	t.Helper()
	block := make(chan struct{})
	cfg.Execute = func(ctx context.Context, job *Job) (*sim.Result, error) {
		select {
		case <-block:
			return &sim.Result{Experiment: job.Experiment()}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	mgr := New(cfg)
	var released bool
	release := func() {
		if !released {
			released = true
			close(block)
		}
	}
	t.Cleanup(func() {
		release()
		mgr.Shutdown(context.Background()) //nolint:errcheck
	})
	return mgr, release
}

// shedBody is the JSON error shape of a shed 429.
type shedBody struct {
	Error       string `json:"error"`
	Reason      string `json:"reason"`
	Tenant      string `json:"tenant"`
	RetryAfterS int64  `json:"retry_after_s"`
}

// TestFIFOQueueFullRetryAfter: even without tenant scheduling, a full-queue
// 429 carries a Retry-After header and a machine-readable reason.
func TestFIFOQueueFullRetryAfter(t *testing.T) {
	mgr, _ := blockingManager(t, Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	// One job running (blocked in the hook), one queued; the third rejects.
	var last *http.Response
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(JobRequest{Experiment: "fig5", Params: fastParams()})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %d: status %d, want 202", i, resp.StatusCode)
			}
			continue
		}
		last = resp
	}
	defer last.Body.Close()
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status = %d, want 429", last.StatusCode)
	}
	if ra := last.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	var body shedBody
	if err := json.NewDecoder(last.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != "queue_full" || body.RetryAfterS < 1 {
		t.Errorf("shed body = %+v, want reason queue_full and retry_after_s ≥ 1", body)
	}
	if !strings.Contains(body.Error, "queue full") {
		t.Errorf("error message %q lost the queue-full text", body.Error)
	}
}

// TestTenantsRouteUnconfigured: GET /v1/tenants is 501 on the default FIFO.
func TestTenantsRouteUnconfigured(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 2})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("GET /v1/tenants = %d without -tenants, want 501", resp.StatusCode)
	}
	if _, err := mgr.TenantViews(); !errors.Is(err, ErrNoTenants) {
		t.Fatalf("TenantViews err = %v, want ErrNoTenants", err)
	}
}

// tenantTestConfig is a two-class setup with a small global bound so tests
// reach the shed thresholds quickly: best-effort sheds at depth 2,
// interactive only at the full bound of 4.
func tenantTestConfig() sched.Config {
	return sched.Config{
		Tenants: []TenantClassAlias{
			{Name: "interactive", Weight: 4, Priority: 0, DeadlineMs: 30000},
			{Name: "best-effort", Weight: 1, Priority: 1},
		},
		DefaultTenant: "best-effort",
		MaxDepth:      4,
	}
}

// TenantClassAlias keeps the test readable without the sched import noise.
type TenantClassAlias = sched.TenantClass

// TestTenantQueueEndToEnd drives the tenant scheduler through the full HTTP
// surface: canonical tenant attribution in the JobView, graduated shedding
// with tenant and reason in the 429 body, and live state on /v1/tenants.
func TestTenantQueueEndToEnd(t *testing.T) {
	scheduler := sched.New(tenantTestConfig())
	mgr, release := blockingManager(t, Config{
		Workers: 1,
		Queue:   NewTenantQueue(scheduler),
	})
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	submit := func(tenant string) (*http.Response, JobView) {
		t.Helper()
		body, _ := json.Marshal(JobRequest{Experiment: "fig5", Params: fastParams(), Tenant: tenant})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var view JobView
		json.Unmarshal(raw, &view) //nolint:errcheck // error bodies decode to zero view
		return resp, view
	}

	// Unknown tenant canonicalizes to the default in the JobView.
	resp, view := submit("no-such-tenant")
	if resp.StatusCode != http.StatusAccepted || view.Tenant != "best-effort" {
		t.Fatalf("unknown tenant: status %d tenant %q, want 202/best-effort", resp.StatusCode, view.Tenant)
	}
	// That job is now running (blocked); fill to best-effort's threshold
	// with interactive work, which may not shed yet.
	for i := 0; i < 2; i++ {
		if resp, _ := submit("interactive"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("interactive submit %d: status %d", i, resp.StatusCode)
		}
	}
	// Depth 2 = best-effort's graduated threshold: it sheds with the full
	// detail while interactive is still admitted.
	resp, _ = submit("best-effort")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("best-effort at threshold: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("tenant shed without Retry-After header")
	}
	// Re-read the body via a fresh shed to decode it (the first response
	// body was consumed into the JobView decode above).
	body, _ := json.Marshal(JobRequest{Experiment: "fig5", Params: fastParams(), Tenant: "best-effort"})
	raw, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var shed shedBody
	json.NewDecoder(raw.Body).Decode(&shed) //nolint:errcheck
	raw.Body.Close()
	if shed.Reason != "priority_shed" || shed.Tenant != "best-effort" || shed.RetryAfterS < 1 {
		t.Fatalf("shed body = %+v, want priority_shed of best-effort", shed)
	}
	for i := 0; i < 2; i++ {
		if resp, _ := submit("interactive"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("interactive past best-effort threshold: status %d, want 202", resp.StatusCode)
		}
	}
	// Global bound reached: now even interactive sheds, reason queue_full.
	resp, _ = submit("interactive")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("interactive at full bound: status %d, want 429", resp.StatusCode)
	}

	// /v1/tenants reflects all of it.
	tr, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/tenants = %d, want 200", tr.StatusCode)
	}
	var listing struct {
		Tenants []sched.TenantView `json:"tenants"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Tenants) != 2 {
		t.Fatalf("tenant views = %+v, want 2 entries", listing.Tenants)
	}
	byName := map[string]sched.TenantView{}
	for _, v := range listing.Tenants {
		byName[v.Name] = v
	}
	if v := byName["best-effort"]; v.Sheds < 2 || v.ShedReasons["priority_shed"] < 2 {
		t.Errorf("best-effort view = %+v, want ≥2 priority sheds", v)
	}
	if v := byName["interactive"]; v.Sheds < 1 || v.Admits != 4 {
		t.Errorf("interactive view = %+v, want 4 admits and ≥1 shed", v)
	}

	// Unblock and drain: every admitted job completes.
	release()
	for _, j := range mgr.Jobs() {
		if got := waitJobTerminal(t, j, 30*time.Second); got != StateSucceeded {
			t.Fatalf("job %s = %s after release, want succeeded", j.ID(), got)
		}
	}
}

// TestAdmittedAtPreserved: a submission carrying AdmittedAtMs (a cluster
// re-dispatch) keeps the original admission as its submitted time, so
// queue-wait is measured from first admission; future timestamps clamp to
// now.
func TestAdmittedAtPreserved(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 4, Execute: func(ctx context.Context, job *Job) (*sim.Result, error) {
		return &sim.Result{Experiment: job.Experiment()}, nil
	}})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck

	then := time.Now().Add(-5 * time.Second)
	job, err := mgr.Submit(context.Background(), JobRequest{
		Experiment: "fig5", Params: fastParams(),
		Tenant: "batch", AdmittedAtMs: then.UnixMilli(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := job.SubmittedAt(); got.Sub(then).Abs() > 50*time.Millisecond {
		t.Fatalf("SubmittedAt = %v, want ≈ %v (first admission preserved)", got, then)
	}
	if got := job.TenantName(); got != "batch" {
		t.Errorf("TenantName = %q, want batch", got)
	}
	waitJobTerminal(t, job, 30*time.Second)
	// The queue-wait histogram must have seen the ≥5s wait.
	if snap := mgr.Metrics().QueueWaitSnapshot(); snap.Count != 1 {
		t.Fatalf("queue wait observations = %d, want 1", snap.Count)
	}

	future, err := mgr.Submit(context.Background(), JobRequest{
		Experiment: "fig5", Params: fastParams(),
		AdmittedAtMs: time.Now().Add(time.Hour).UnixMilli(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := future.SubmittedAt(); time.Since(got).Abs() > 5*time.Second {
		t.Fatalf("future AdmittedAtMs not clamped to now: %v", got)
	}
}
