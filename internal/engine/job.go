// Package engine turns the one-shot experiment harness (internal/sim) into
// a long-running simulation service: a job manager with a bounded queue and
// admission control, a worker pool executing registry experiments with
// per-job cancellation and timeouts, an in-memory store for uploaded
// traces, service metrics with per-experiment wall-time histograms, and the
// HTTP/JSON API cmd/womd serves.
package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"womcpcm/internal/sim"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle: Queued → Running → one of the terminal states. A queued
// job canceled before a worker picks it up goes straight to Canceled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// JobRequest is the POST /v1/jobs payload: which registry experiment to
// run, its parameters, and optional trace reference and timeout.
type JobRequest struct {
	// Experiment is a registry name (see sim.ExperimentNames) or alias.
	Experiment string `json:"experiment"`
	// Params parameterizes the run; the zero value is the paper setup.
	Params sim.Params `json:"params"`
	// TraceID references an uploaded trace (required by "replay").
	TraceID string `json:"trace_id,omitempty"`
	// TimeoutMs bounds the run; 0 selects the manager's default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Job is one submitted experiment moving through the manager.
type Job struct {
	id      string
	seq     uint64 // submission sequence, for stable listing order
	exp     sim.Experiment
	req     JobRequest
	params  sim.Params
	timeout time.Duration
	key     string // resultstore content key; "" when not cacheable
	cached  bool   // served from the result store without executing
	dedupOf string // leader job id this submission was folded into
	reqID   string // submitting request's id, carried into lifecycle logs

	// progress counts records processed against the job's known total,
	// fed lock-free by the running experiment (sim.WithProgress). Done
	// only grows — see setProgress — so pollers observe a monotone gauge.
	progressDone  atomic.Int64
	progressTotal atomic.Int64

	// hub fans live telemetry windows and progress out to SSE subscribers
	// (GET /v1/jobs/{id}/stream); the manager closes it when the job reaches
	// a terminal state. nil for jobs born terminal (cache hits).
	hub *streamHub
	// streamPermille throttles "progress" stream events to ≥1‰ steps so a
	// fine-grained reporting stride cannot flood subscriber buffers.
	streamPermille atomic.Int64

	mu        sync.Mutex
	state     State
	err       error
	result    *sim.Result
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // set while running
	cancelReq bool               // cancel requested before running
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the experiment result once the job succeeded.
func (j *Job) Result() (*sim.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// requestCancel asks the job to stop. Returns the state observed: a queued
// job is marked for skipping, a running job has its context canceled, and a
// terminal job is left untouched.
func (j *Job) requestCancel() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.cancelReq = true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.state
}

// markRunning transitions Queued → Running unless cancellation was
// requested first, in which case the job finishes as Canceled.
func (j *Job) markRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelReq {
		j.state = StateCanceled
		j.err = context.Canceled
		j.finished = time.Now()
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// settleFollower resolves a deduped submission with its leader's outcome,
// unless the follower was independently canceled first. It returns the state
// the follower ended in.
func (j *Job) settleFollower(state State, res *sim.Result, err error) State {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return j.state
	}
	if j.cancelReq {
		j.state = StateCanceled
		j.err = context.Canceled
	} else {
		j.state = state
		j.result = res
		j.err = err
	}
	j.finished = time.Now()
	return j.state
}

// finish records the terminal state.
func (j *Job) finish(state State, res *sim.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.result = res
	j.err = err
	j.finished = time.Now()
	j.cancel = nil
}

// setProgress is the job's sim.ProgressFunc. Experiment callbacks may race
// (parallel per-architecture simulations share one cumulative counter), so
// Done advances by compare-and-swap maximum: a stale report can never move
// the gauge backwards.
func (j *Job) setProgress(done, total int64) {
	if total > 0 {
		j.progressTotal.Store(total)
	}
	for {
		cur := j.progressDone.Load()
		if done <= cur || j.progressDone.CompareAndSwap(cur, done) {
			return
		}
	}
}

// reportProgress is the job's sim.ProgressFunc while it runs under a
// manager: the monotone gauge update plus a throttled "progress" event to
// stream subscribers (at most one per permille of completion).
func (j *Job) reportProgress(done, total int64) {
	j.setProgress(done, total)
	if j.hub == nil || total <= 0 {
		return
	}
	p := done * 1000 / total
	for {
		cur := j.streamPermille.Load()
		if p <= cur {
			return
		}
		if j.streamPermille.CompareAndSwap(cur, p) {
			break
		}
	}
	j.hub.publish("progress", j.Progress())
}

// ProgressView is the JSON shape of GET /v1/jobs/{id}/progress. Total is 0
// for experiments that do not report progress (everything but "replay").
type ProgressView struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Done  int64  `json:"done"`
	Total int64  `json:"total"`
	// Fraction is Done/Total, 0 when the total is unknown.
	Fraction float64 `json:"fraction"`
}

// Progress snapshots the job's completion gauge.
func (j *Job) Progress() ProgressView {
	v := ProgressView{
		ID:    j.id,
		State: j.State(),
		Done:  j.progressDone.Load(),
		Total: j.progressTotal.Load(),
	}
	if v.Total > 0 {
		v.Fraction = float64(v.Done) / float64(v.Total)
	}
	return v
}

// JobView is the JSON shape of a job's status.
type JobView struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	State      State  `json:"state"`
	Error      string `json:"error,omitempty"`
	TraceID    string `json:"trace_id,omitempty"`
	// Cached marks a submission served straight from the result store.
	Cached bool `json:"cached,omitempty"`
	// DedupOf names the identical in-flight job this one was folded into.
	DedupOf     string `json:"dedup_of,omitempty"`
	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// DurationMs is the run's wall time (running jobs: elapsed so far).
	DurationMs int64 `json:"duration_ms,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Experiment:  j.exp.Name,
		State:       j.state,
		TraceID:     j.req.TraceID,
		Cached:      j.cached,
		DedupOf:     j.dedupOf,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
		switch {
		case !j.finished.IsZero():
			v.DurationMs = j.finished.Sub(j.started).Milliseconds()
		default:
			v.DurationMs = time.Since(j.started).Milliseconds()
		}
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}
