// Package engine turns the one-shot experiment harness (internal/sim) into
// a long-running simulation service: a job manager with a bounded queue and
// admission control, a worker pool executing registry experiments with
// per-job cancellation and timeouts, an in-memory store for uploaded
// traces, service metrics with per-experiment wall-time histograms, and the
// HTTP/JSON API cmd/womd serves.
package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"womcpcm/internal/perfmon"
	"womcpcm/internal/probe"
	"womcpcm/internal/sim"
	"womcpcm/internal/span"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle: Queued → Running → one of the terminal states. A queued
// job canceled before a worker picks it up goes straight to Canceled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// JobRequest is the POST /v1/jobs payload: which registry experiment to
// run, its parameters, and optional trace reference and timeout.
type JobRequest struct {
	// Experiment is a registry name (see sim.ExperimentNames) or alias.
	Experiment string `json:"experiment"`
	// Params parameterizes the run; the zero value is the paper setup.
	Params sim.Params `json:"params"`
	// TraceID references an uploaded trace (required by "replay").
	TraceID string `json:"trace_id,omitempty"`
	// TimeoutMs bounds the run; 0 selects the manager's default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Tenant names the scheduling class this submission bills to; unknown
	// or empty names map to the default tenant. Ignored (but recorded in
	// the JobView) when womd runs without -tenants.
	Tenant string `json:"tenant,omitempty"`
	// AdmittedAtMs is the Unix-millisecond time the job was first admitted,
	// set by a cluster coordinator re-submitting the job on a worker so its
	// queue-wait and tenant deadline stay measured from the original
	// admission. 0 (external submissions) means "now".
	AdmittedAtMs int64 `json:"admitted_at_ms,omitempty"`
}

// Job is one submitted experiment moving through the manager.
type Job struct {
	id      string
	seq     uint64 // submission sequence, for stable listing order
	exp     sim.Experiment
	req     JobRequest
	params  sim.Params
	timeout time.Duration
	key     string // resultstore content key; "" when not cacheable
	cached  bool   // served from the result store without executing
	dedupOf string // leader job id this submission was folded into
	reqID   string // submitting request's id, carried into lifecycle logs
	// tenant is the scheduling class the job was admitted under: the
	// canonical name resolved by the tenant queue, or the raw request
	// tenant on the default FIFO. Written only before the job is visible
	// to workers (Submit/Enqueue), so reads need no lock.
	tenant string

	// trace is the root "job" span's position in the job's distributed
	// trace: the parent for every lifecycle child span (queue_wait,
	// dispatch, execute, store, sse_stream) and the source of the
	// traceparent a coordinator forwards to a worker. rootSpan is that
	// span's live handle, ended exactly once (endTrace) when the job
	// settles; traceEnqueued marks when the job entered the queue, the
	// retroactive queue_wait span's left edge. All three are written only
	// before the job is visible (Submit, under m.mu), like tenant.
	trace         span.Context
	rootSpan      *span.Active
	traceEnqueued time.Time

	// startedCh closes when the job transitions Queued → Running; set only
	// for jobs that will actually execute (queue leaders). Cluster workers
	// watch it to tell a coordinator the dispatched job left the queue.
	startedCh chan struct{}

	// progress counts records processed against the job's known total,
	// fed lock-free by the running experiment (sim.WithProgress). Done
	// only grows — see setProgress — so pollers observe a monotone gauge.
	progressDone  atomic.Int64
	progressTotal atomic.Int64

	// span is the job's host-time accounting (internal/perfmon), installed
	// when the worker starts the run; nil when perf accounting is disabled
	// or the job never ran. The monitor goroutine and progress snapshots
	// read it concurrently, hence the atomic pointer.
	span atomic.Pointer[perfmon.Span]
	// classes accumulates the job's simulated write-class totals, advanced
	// at each of the job's simulation completions — mid-job progress
	// snapshots see counts from every finished simulation, not just at job
	// end.
	classes [probe.NumWriteKinds]atomic.Uint64
	// profiled latches the one slow-job profile capture per job.
	profiled atomic.Bool

	// hub fans live telemetry windows and progress out to SSE subscribers
	// (GET /v1/jobs/{id}/stream); the manager closes it when the job reaches
	// a terminal state. nil for jobs born terminal (cache hits).
	hub *streamHub
	// streamPermille throttles "progress" stream events to ≥1‰ steps so a
	// fine-grained reporting stride cannot flood subscriber buffers.
	streamPermille atomic.Int64

	mu        sync.Mutex
	state     State
	err       error
	result    *sim.Result
	perf      *perfmon.JobRecord // final accounting, set at job end
	worker    string             // cluster worker id the job executed on
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // set while running
	cancelReq bool               // cancel requested before running
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Key returns the resultstore content key; "" when the job is not
// content-addressable (trace replays, or no store configured).
func (j *Job) Key() string { return j.key }

// RequestID returns the submitting request's id ("" when none was supplied),
// the token that ties every lifecycle log line — including cluster dispatch
// and requeue lines — back to one HTTP request.
func (j *Job) RequestID() string { return j.reqID }

// Experiment returns the registry name the job runs.
func (j *Job) Experiment() string { return j.exp.Name }

// Request returns the submission as received (trace reference unresolved).
func (j *Job) Request() JobRequest { return j.req }

// Params returns the resolved run parameters, including any trace records
// pulled from the upload store. Callers must treat slices as read-only.
func (j *Job) Params() sim.Params { return j.params }

// Timeout returns the job's execution bound; 0 means unbounded.
func (j *Job) Timeout() time.Duration { return j.timeout }

// TenantName returns the scheduling class the job was admitted under ("",
// when submitted without a tenant on the default FIFO queue). A cluster
// coordinator forwards it in the dispatch so the worker bills the same
// class.
func (j *Job) TenantName() string { return j.tenant }

// TraceContext returns the job's position in its distributed trace — the
// root "job" span every lifecycle child parents under. Zero (invalid) when
// tracing is off.
func (j *Job) TraceContext() span.Context { return j.trace }

// endTrace closes the job's root span with its terminal state. Idempotent
// (span.Active.End latches) and nil-safe, so every settle path may call it.
func (j *Job) endTrace() {
	if j.rootSpan == nil {
		return
	}
	j.rootSpan.SetStr("state", string(j.State()))
	if w := j.workerID(); w != "" {
		j.rootSpan.SetStr("worker", w)
	}
	j.rootSpan.End()
}

// closedCh is the Started answer for jobs that never pass through the queue.
var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Started returns a channel closed when the job leaves the queue for a
// worker goroutine. Meaningful only for jobs that execute (queue leaders);
// cache hits and deduped followers report an already-closed channel.
func (j *Job) Started() <-chan struct{} {
	if j.startedCh == nil {
		return closedCh
	}
	return j.startedCh
}

// CancelIfQueued cancels the job only when it has not started running,
// reporting whether it did. Cluster coordinators use it to steal a queued
// job from an overloaded worker without killing one that already executes.
func (j *Job) CancelIfQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.cancelReq = true
	return true
}

// SetWorker records the cluster worker id the job was dispatched to; it
// shows up in the JobView and the finished log line.
func (j *Job) SetWorker(id string) {
	j.mu.Lock()
	j.worker = id
	j.mu.Unlock()
}

// workerID snapshots the dispatched-to worker id ("" when local).
func (j *Job) workerID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.worker
}

// ForwardProgress feeds a progress report observed elsewhere (a cluster
// worker) into this job's monotone gauge and its SSE subscribers, exactly as
// a local run's sim.ProgressFunc would.
func (j *Job) ForwardProgress(done, total int64) { j.reportProgress(done, total) }

// PublishRaw fans an already-marshaled event payload out to this job's SSE
// subscribers — the pass-through a coordinator uses to re-emit worker stream
// frames (telemetry windows) without re-marshaling them.
func (j *Job) PublishRaw(name string, data []byte) {
	if j.hub == nil {
		return
	}
	j.hub.publishRaw(name, data)
}

// SubscribeStream exposes the job's live event feed (the SSE hub) to
// non-HTTP consumers — a cluster worker forwarding frames to its
// coordinator. The channel closes when the job reaches a terminal state;
// cancel must be called when the consumer stops early. Jobs born terminal
// return an already-closed feed.
func (j *Job) SubscribeStream() (<-chan StreamEvent, func()) {
	if j.hub == nil {
		ch := make(chan StreamEvent)
		close(ch)
		return ch, func() {}
	}
	sub, cancel := j.hub.subscribe()
	return sub.ch, cancel
}

// SetRemotePerf installs a host-time record measured on the worker that
// executed this job remotely, so the coordinator's JobView carries the
// worker's accounting instead of a meaningless dispatch-side span.
func (j *Job) SetRemotePerf(v PerfView) {
	j.setPerf(v.JobRecord)
	if len(v.WriteClasses) > 0 {
		j.addClassCounts(classArray(v.WriteClasses))
	}
}

// submittedAt returns the admission time (for the queue-wait histogram).
func (j *Job) submittedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted
}

// SubmittedAt exposes the job's first admission time. A cluster
// coordinator forwards it in the dispatch (DispatchRequest.AdmittedAtMs)
// so a worker's queue-wait accounting starts at the original admission.
func (j *Job) SubmittedAt() time.Time { return j.submittedAt() }

// Result returns the experiment result once the job succeeded.
func (j *Job) Result() (*sim.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// requestCancel asks the job to stop. Returns the state observed: a queued
// job is marked for skipping, a running job has its context canceled, and a
// terminal job is left untouched.
func (j *Job) requestCancel() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.cancelReq = true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.state
}

// markRunning transitions Queued → Running unless cancellation was
// requested first, in which case the job finishes as Canceled.
func (j *Job) markRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelReq {
		j.state = StateCanceled
		j.err = context.Canceled
		j.finished = time.Now()
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	if j.startedCh != nil {
		close(j.startedCh)
	}
	return true
}

// settleFollower resolves a deduped submission with its leader's outcome,
// unless the follower was independently canceled first. It returns the state
// the follower ended in.
func (j *Job) settleFollower(state State, res *sim.Result, err error) State {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return j.state
	}
	if j.cancelReq {
		j.state = StateCanceled
		j.err = context.Canceled
	} else {
		j.state = state
		j.result = res
		j.err = err
	}
	j.finished = time.Now()
	return j.state
}

// finish records the terminal state.
func (j *Job) finish(state State, res *sim.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.result = res
	j.err = err
	j.finished = time.Now()
	j.cancel = nil
}

// setProgress is the job's sim.ProgressFunc. Experiment callbacks may race
// (parallel per-architecture simulations share one cumulative counter), so
// Done advances by compare-and-swap maximum: a stale report can never move
// the gauge backwards.
func (j *Job) setProgress(done, total int64) {
	if total > 0 {
		j.progressTotal.Store(total)
	}
	for {
		cur := j.progressDone.Load()
		if done <= cur || j.progressDone.CompareAndSwap(cur, done) {
			return
		}
	}
}

// reportProgress is the job's sim.ProgressFunc while it runs under a
// manager: the monotone gauge update plus a throttled "progress" event to
// stream subscribers (at most one per permille of completion).
func (j *Job) reportProgress(done, total int64) {
	j.setProgress(done, total)
	if j.hub == nil || total <= 0 {
		return
	}
	p := done * 1000 / total
	for {
		cur := j.streamPermille.Load()
		if p <= cur {
			return
		}
		if j.streamPermille.CompareAndSwap(cur, p) {
			break
		}
	}
	j.hub.publish("progress", j.Progress())
}

// addClassCounts folds one finished simulation's write-class totals into
// the job's own counters (the manager additionally feeds the service-wide
// metrics).
func (j *Job) addClassCounts(counts [probe.NumWriteKinds]uint64) {
	for k, n := range counts {
		if n > 0 {
			j.classes[k].Add(n)
		}
	}
}

// classArray maps a write-class name→count map (the wire form) back onto the
// kind-indexed array the counters use; unknown names are ignored.
func classArray(m map[string]uint64) [probe.NumWriteKinds]uint64 {
	var out [probe.NumWriteKinds]uint64
	for k := 0; k < probe.NumWriteKinds; k++ {
		out[k] = m[probe.Kind(k).String()]
	}
	return out
}

// classCounts snapshots the job's write-class totals as a name→count map,
// omitting zero classes.
func (j *Job) classCounts() map[string]uint64 {
	var out map[string]uint64
	for k := 0; k < probe.NumWriteKinds; k++ {
		if n := j.classes[k].Load(); n > 0 {
			if out == nil {
				out = make(map[string]uint64, probe.NumWriteKinds)
			}
			out[probe.Kind(k).String()] = n
		}
	}
	return out
}

// setPerf records the job's final host-time accounting.
func (j *Job) setPerf(rec perfmon.JobRecord) {
	j.mu.Lock()
	j.perf = &rec
	j.mu.Unlock()
}

// perfRecord snapshots the job's final host-time accounting; nil until set.
func (j *Job) perfRecord() *perfmon.JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.perf
}

// ProgressView is the JSON shape of GET /v1/jobs/{id}/progress. Total is 0
// for experiments that do not report progress (everything but "replay").
// The perf fields make mid-job snapshots self-contained: simulated events
// executed so far, the live throughput, per-class write totals from every
// finished simulation, and how many SSE events this job's subscribers have
// lost to full buffers.
type ProgressView struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Done  int64  `json:"done"`
	Total int64  `json:"total"`
	// Fraction is Done/Total, 0 when the total is unknown.
	Fraction float64 `json:"fraction"`
	// SimEvents and EventsPerSec report live host-time throughput (0 when
	// perf accounting is disabled or the job has not started).
	SimEvents    int64   `json:"sim_events,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// WriteClasses maps write class → simulated rows written, accumulated
	// at each simulation completion inside the job.
	WriteClasses map[string]uint64 `json:"write_classes,omitempty"`
	// StreamDropped counts this job's SSE events lost to slow subscribers.
	StreamDropped uint64 `json:"stream_dropped,omitempty"`
}

// Progress snapshots the job's completion gauge and live perf counters.
func (j *Job) Progress() ProgressView {
	v := ProgressView{
		ID:    j.id,
		State: j.State(),
		Done:  j.progressDone.Load(),
		Total: j.progressTotal.Load(),
	}
	if v.Total > 0 {
		v.Fraction = float64(v.Done) / float64(v.Total)
	}
	if span := j.span.Load(); span != nil {
		v.SimEvents = span.LiveEvents()
		v.EventsPerSec, _ = perfmon.Rates(v.SimEvents, span.Elapsed())
	}
	v.WriteClasses = j.classCounts()
	if j.hub != nil {
		v.StreamDropped = j.hub.droppedCount()
	}
	return v
}

// PerfView is the perf block of a terminal job's status: the span's
// host-time record plus the per-job counters the satellite feeds surface.
type PerfView struct {
	perfmon.JobRecord
	// WriteClasses maps write class → simulated rows written by this job.
	WriteClasses map[string]uint64 `json:"write_classes,omitempty"`
	// StreamDropped counts SSE events this job's subscribers lost.
	StreamDropped uint64 `json:"stream_dropped,omitempty"`
}

// JobView is the JSON shape of a job's status.
type JobView struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	State      State  `json:"state"`
	Error      string `json:"error,omitempty"`
	TraceID    string `json:"trace_id,omitempty"`
	// Cached marks a submission served straight from the result store.
	Cached bool `json:"cached,omitempty"`
	// DedupOf names the identical in-flight job this one was folded into.
	DedupOf string `json:"dedup_of,omitempty"`
	// Worker names the cluster worker the job was dispatched to; empty for
	// jobs executed in-process.
	Worker string `json:"worker,omitempty"`
	// Tenant is the scheduling class the job was admitted under.
	Tenant string `json:"tenant,omitempty"`
	// Traceparent is the job's distributed-trace position in W3C form;
	// its trace id keys GET /v1/jobs/{id}/trace. Empty when tracing is off.
	Traceparent string `json:"traceparent,omitempty"`
	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// DurationMs is the run's wall time (running jobs: elapsed so far).
	DurationMs int64 `json:"duration_ms,omitempty"`
	// Perf is the job's host-time accounting, present once it finished
	// running with perf accounting enabled.
	Perf *PerfView `json:"perf,omitempty"`
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	v := JobView{
		ID:          j.id,
		Experiment:  j.exp.Name,
		State:       j.state,
		TraceID:     j.req.TraceID,
		Cached:      j.cached,
		DedupOf:     j.dedupOf,
		Worker:      j.worker,
		Tenant:      j.tenant,
		Traceparent: j.trace.Traceparent(),
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
		switch {
		case !j.finished.IsZero():
			v.DurationMs = j.finished.Sub(j.started).Milliseconds()
		default:
			v.DurationMs = time.Since(j.started).Milliseconds()
		}
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.perf != nil {
		pv := &PerfView{JobRecord: *j.perf}
		v.Perf = pv
	}
	j.mu.Unlock()
	// The per-job atomics live outside j.mu; fill them in after releasing it.
	if v.Perf != nil {
		v.Perf.WriteClasses = j.classCounts()
		if j.hub != nil {
			v.Perf.StreamDropped = j.hub.droppedCount()
		}
	}
	return v
}
