package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"womcpcm/internal/sim"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

// fastParams keeps service tests quick: one benchmark, a short trace, a
// reduced rank count.
func fastParams() sim.Params {
	return sim.Params{
		Requests: 20000,
		Seed:     7,
		Bench:    []string{"qsort"},
		Ranks:    4,
	}
}

// postJSON submits a job request and decodes the response body.
func postJSON(t *testing.T, ts *httptest.Server, req JobRequest) (int, JobView) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	raw, _ := io.ReadAll(resp.Body)
	json.Unmarshal(raw, &view) //nolint:errcheck // error bodies decode to zero view
	return resp.StatusCode, view
}

// pollResult polls /v1/jobs/{id}/result until 200 or the deadline.
func pollResult(t *testing.T, ts *httptest.Server, id string) map[string]json.RawMessage {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var out map[string]json.RawMessage
			if err := json.Unmarshal(raw, &out); err != nil {
				t.Fatalf("decoding result: %v", err)
			}
			return out
		case http.StatusAccepted:
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("job %s: unexpected status %d: %s", id, resp.StatusCode, raw)
		}
	}
	t.Fatalf("job %s: no result before deadline", id)
	return nil
}

// resultData extracts result.data from a polled result envelope.
func resultData(t *testing.T, env map[string]json.RawMessage, into any) {
	t.Helper()
	var res struct {
		Data json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(env["result"], &res); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(res.Data, into); err != nil {
		t.Fatal(err)
	}
}

// TestServiceEndToEnd is the acceptance test: start the server, POST a fig5
// job and a custom workload-sweep job, poll both to completion, check the
// results against the equivalent direct internal/sim calls, and check that
// /metrics reflects the runs.
func TestServiceEndToEnd(t *testing.T) {
	mgr := New(Config{Workers: 2, QueueDepth: 8})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	// A fig5 job over the paper benchmark filter.
	status, fig5Job := postJSON(t, ts, JobRequest{Experiment: "fig5", Params: fastParams()})
	if status != http.StatusAccepted {
		t.Fatalf("fig5 submit status = %d", status)
	}
	if fig5Job.State != StateQueued && fig5Job.State != StateRunning {
		t.Fatalf("fig5 submit state = %s", fig5Job.State)
	}

	// A custom workload sweep: qsort's profile under a new name.
	custom, err := workload.ProfileByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	custom.Name = "custom-qsort"
	sweepParams := fastParams()
	sweepParams.Bench = nil
	sweepParams.Profile = &custom
	status, sweepJob := postJSON(t, ts, JobRequest{Experiment: "sweep", Params: sweepParams})
	if status != http.StatusAccepted {
		t.Fatalf("sweep submit status = %d", status)
	}

	// Poll both to completion and compare with direct sim calls.
	var got sim.Fig5Result
	resultData(t, pollResult(t, ts, fig5Job.ID), &got)
	cfg, err := fastParams().Config(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("fig5 rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	if got.MeanWrite != want.MeanWrite || got.MeanRead != want.MeanRead {
		t.Errorf("fig5 means drifted from direct call:\n got %v %v\nwant %v %v",
			got.MeanWrite, got.MeanRead, want.MeanWrite, want.MeanRead)
	}

	var sweepGot sim.Fig5Result
	resultData(t, pollResult(t, ts, sweepJob.ID), &sweepGot)
	if len(sweepGot.Rows) != 1 || sweepGot.Rows[0].Benchmark != "custom-qsort" {
		t.Fatalf("sweep rows = %+v", sweepGot.Rows)
	}
	// The sweep renamed qsort, so its numbers must differ only by the
	// name-derived generator seed — both runs must at least agree that
	// every architecture beats baseline.
	for a := 1; a < 4; a++ {
		if sweepGot.Rows[0].Write[a] >= 1 {
			t.Errorf("sweep arch %d write %.3f not below baseline", a, sweepGot.Rows[0].Write[a])
		}
	}

	// Metrics must reflect the two completed jobs.
	snap := mgr.Metrics().Snapshot()
	if snap.JobsQueued != 2 || snap.JobsCompleted != 2 || snap.JobsFailed != 0 {
		t.Errorf("metrics = %+v", snap)
	}
	if snap.QueueDepth != 0 || snap.JobsRunning != 0 {
		t.Errorf("gauges not drained: %+v", snap)
	}
	if w, ok := snap.WallNs["fig5"]; !ok || w.Count != 1 {
		t.Errorf("fig5 wall histogram = %+v", snap.WallNs)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"womd_jobs_completed_total 2",
		"womd_queue_depth 0",
		`womd_job_wall_seconds_count{experiment="fig5"} 1`,
		`womd_job_wall_seconds_count{experiment="sweep"} 1`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The experiments listing serves the registry.
	resp, err = http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	listing, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(listing), `"fig5"`) || !strings.Contains(string(listing), `"sweep"`) {
		t.Errorf("experiment listing incomplete: %s", listing)
	}
}

// TestTraceUploadAndReplay uploads a binary trace and replays it.
func TestTraceUploadAndReplay(t *testing.T) {
	mgr := New(Config{Workers: 2, QueueDepth: 8})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	var buf bytes.Buffer
	w := trace.NewBinWriter(&buf)
	for i := 0; i < 5000; i++ {
		op := trace.Read
		if i%3 == 0 {
			op = trace.Write
		}
		w.Write(trace.Record{Op: op, Addr: uint64(i%64) * 16384, Time: int64(i) * 60})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/traces?label=synthetic", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var st StoredTrace
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Count != 5000 || st.Label != "synthetic" {
		t.Fatalf("stored trace = %+v", st)
	}

	params := sim.Params{Ranks: 4}
	status, job := postJSON(t, ts, JobRequest{Experiment: "replay", Params: params, TraceID: st.ID})
	if status != http.StatusAccepted {
		t.Fatalf("replay submit status = %d", status)
	}
	var got sim.ReplayResult
	resultData(t, pollResult(t, ts, job.ID), &got)
	if got.Records != 5000 || len(got.Runs) != 4 {
		t.Fatalf("replay result: records=%d runs=%d", got.Records, len(got.Runs))
	}
	if got.NormWrite[0] != 1 {
		t.Errorf("baseline not normalized: %v", got.NormWrite)
	}

	// A replay job without a trace reference is rejected at admission.
	status, _ = postJSON(t, ts, JobRequest{Experiment: "replay", Params: params})
	if status != http.StatusBadRequest {
		t.Errorf("trace-less replay status = %d", status)
	}
	// An unknown trace id is a 404.
	status, _ = postJSON(t, ts, JobRequest{Experiment: "replay", Params: params, TraceID: "t-999999"})
	if status != http.StatusNotFound {
		t.Errorf("unknown trace status = %d", status)
	}

	// A malformed upload errors instead of panicking or storing garbage.
	resp, err = http.Post(ts.URL+"/v1/traces", "application/octet-stream",
		strings.NewReader("WOMT\x01\x00\x00\x00garbage-that-is-not-a-record"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed upload status = %d", resp.StatusCode)
	}
}

// TestAdmissionControl fills the queue behind a single busy worker and
// checks the 429 + metrics path, then cancellation of a queued job.
func TestAdmissionControl(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	// A slow job to occupy the single worker: one long single-threaded sim.
	slow := sim.Params{Requests: 400000, Bench: []string{"qsort"}, Ranks: 4, Parallelism: 1}
	status, running := postJSON(t, ts, JobRequest{Experiment: "fig5", Params: slow})
	if status != http.StatusAccepted {
		t.Fatalf("first submit = %d", status)
	}
	status, queued := postJSON(t, ts, JobRequest{Experiment: "fig6", Params: slow})
	if status != http.StatusAccepted {
		t.Fatalf("second submit = %d", status)
	}
	// Worker busy on job 1, queue holds job 2 → job 3 must bounce.
	status, _ = postJSON(t, ts, JobRequest{Experiment: "fig7", Params: slow})
	if status != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", status)
	}
	if got := mgr.Metrics().Rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d", got)
	}

	// Cancel the queued job: it must reach canceled without running.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}

	// Cancel the running job too, then wait for both to settle.
	if err := mgr.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		j1, _ := mgr.Get(running.ID)
		j2, _ := mgr.Get(queued.ID)
		if j1.State().Terminal() && j2.State().Terminal() {
			if j2.State() != StateCanceled {
				t.Errorf("queued job state = %s, want canceled", j2.State())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not settle: %s / %s", j1.State(), j2.State())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGracefulDrain submits jobs and shuts down immediately: every accepted
// job must still complete, and later submissions must be refused.
func TestGracefulDrain(t *testing.T) {
	mgr := New(Config{Workers: 2, QueueDepth: 8})
	params := fastParams()
	params.Requests = 5000
	var ids []string
	for i := 0; i < 3; i++ {
		job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "fig5", Params: params})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		j, ok := mgr.Get(id)
		if !ok {
			t.Fatalf("job %s lost", id)
		}
		if j.State() != StateSucceeded {
			t.Errorf("job %s state = %s after drain", id, j.State())
		}
		if res, err := j.Result(); err != nil || res == nil {
			t.Errorf("job %s result missing: %v", id, err)
		}
	}
	if _, err := mgr.Submit(context.Background(), JobRequest{Experiment: "fig5", Params: params}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain = %v, want ErrDraining", err)
	}
	if got := mgr.Metrics().Snapshot(); got.JobsCompleted != 3 {
		t.Errorf("completed = %d", got.JobsCompleted)
	}
	// A second Shutdown is a no-op.
	if err := mgr.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestJobTimeout bounds a job with a 1 ms budget: it must fail cleanly.
func TestJobTimeout(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	params := fastParams()
	params.Requests = 100000
	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "fig5", Params: params, TimeoutMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !job.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout job stuck in %s", job.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State() != StateFailed {
		t.Fatalf("state = %s, want failed", job.State())
	}
	if _, err := job.Result(); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("timeout error = %v", err)
	}
	if got := mgr.Metrics().Failed.Load(); got != 1 {
		t.Errorf("failed counter = %d", got)
	}
}

// TestSubmitValidation rejects bad requests at admission time.
func TestSubmitValidation(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 1})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	cases := []JobRequest{
		{Experiment: "nope"},
		{Experiment: "fig5", Params: sim.Params{Bench: []string{"not-a-benchmark"}}},
		{Experiment: "fig5", Params: sim.Params{Suite: "not-a-suite"}},
		{Experiment: "sweep"}, // missing profile
	}
	for _, req := range cases {
		if _, err := mgr.Submit(context.Background(), req); err == nil {
			t.Errorf("Submit(%+v) accepted", req)
		}
	}
	if got := mgr.Metrics().Queued.Load(); got != 0 {
		t.Errorf("queued counter = %d after rejects", got)
	}
}

// TestDeleteLifecycle covers delete of finished jobs and the not-found path.
func TestDeleteLifecycle(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	params := fastParams()
	params.Requests = 2000
	job, err := mgr.Submit(context.Background(), JobRequest{Experiment: "fig5", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !job.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job stuck")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := mgr.Delete(job.ID()); err != nil {
		t.Fatal(err)
	}
	if _, ok := mgr.Get(job.ID()); ok {
		t.Error("job still present after delete")
	}
	if err := mgr.Delete(job.ID()); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
	if err := mgr.Cancel("j-404"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown = %v", err)
	}
}

// TestMetricsProm sanity-checks the exposition format shape.
func TestMetricsProm(t *testing.T) {
	m := NewMetrics()
	m.Queued.Add(3)
	m.ObserveWall("fig5", 1500*time.Millisecond)
	m.ObserveWall("fig5", 2*time.Millisecond)
	var b bytes.Buffer
	m.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE womd_jobs_queued_total counter",
		"womd_jobs_queued_total 3",
		"# TYPE womd_job_wall_seconds histogram",
		`womd_job_wall_seconds_bucket{experiment="fig5",le="+Inf"} 2`,
		`womd_job_wall_seconds_count{experiment="fig5"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q\n%s", want, out)
		}
	}
	snap := m.WallSnapshot()["fig5"]
	if snap.Count != 2 || snap.MaxNs < int64(time.Second) {
		t.Errorf("wall snapshot = %+v", snap)
	}
	if len(snap.Buckets) == 0 || snap.Buckets[len(snap.Buckets)-1].Count != 2 {
		t.Errorf("cumulative buckets wrong: %+v", snap.Buckets)
	}
}

// TestStoreBounds covers the upload caps.
func TestStoreBounds(t *testing.T) {
	s := NewTraceStore(10, 1)
	var buf bytes.Buffer
	w := trace.NewBinWriter(&buf)
	for i := 0; i < 20; i++ {
		w.Write(trace.Record{Op: trace.Read, Addr: uint64(i), Time: int64(i)})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("big", bytes.NewReader(buf.Bytes())); !errors.Is(err, trace.ErrTooLong) {
		t.Errorf("oversized upload = %v", err)
	}
	small := "R 0x40 100\nW 0x80 160\n"
	if _, err := s.Put("a", strings.NewReader(small)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", strings.NewReader(small)); !errors.Is(err, ErrStoreFull) {
		t.Errorf("store overflow = %v", err)
	}
	if _, err := s.Put("empty", strings.NewReader("# nothing\n")); err == nil {
		t.Error("empty upload accepted")
	}
	if _, err := s.Put("unordered", strings.NewReader("R 0x40 100\nR 0x80 50\n")); err == nil {
		t.Error("time-unordered upload accepted")
	}
	if got := len(s.List()); got != 1 {
		t.Errorf("stored traces = %d", got)
	}
}

func ExampleNewServer() {
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	resp, _ := http.Get(ts.URL + "/healthz")
	var h Health
	json.NewDecoder(resp.Body).Decode(&h) //nolint:errcheck
	resp.Body.Close()
	fmt.Println(h.Status, h.GoVersion == runtime.Version())
	// Output: ok true
}
