package endurance

import (
	"testing"
	"testing/quick"
)

func TestStartGapValidation(t *testing.T) {
	if _, err := NewStartGap(0, 10); err == nil {
		t.Error("accepted zero rows")
	}
	if _, err := NewStartGap(8, 0); err == nil {
		t.Error("accepted zero period")
	}
	sg, err := NewStartGap(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Rows() != 8 || sg.PhysicalRows() != 9 {
		t.Errorf("sizes: %d/%d", sg.Rows(), sg.PhysicalRows())
	}
	if _, err := sg.Map(-1); err == nil {
		t.Error("mapped negative row")
	}
	if _, err := sg.Map(8); err == nil {
		t.Error("mapped out-of-range row")
	}
}

// TestStartGapBijective: at every point of a long movement sequence, the
// logical→physical mapping is injective and avoids the gap slot.
func TestStartGapBijective(t *testing.T) {
	sg, err := NewStartGap(16, 1) // move on every write: fastest rotation
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 200; step++ {
		seen := map[int]bool{}
		for l := 0; l < sg.Rows(); l++ {
			p, err := sg.Map(l)
			if err != nil {
				t.Fatal(err)
			}
			if p < 0 || p >= sg.PhysicalRows() {
				t.Fatalf("step %d: row %d maps outside region: %d", step, l, p)
			}
			if p == sg.gap {
				t.Fatalf("step %d: row %d maps onto the gap", step, l)
			}
			if seen[p] {
				t.Fatalf("step %d: physical row %d mapped twice", step, p)
			}
			seen[p] = true
		}
		if _, err := sg.OnWrite(nil); err != nil {
			t.Fatal(err)
		}
	}
	if sg.Moves() != 200 {
		t.Errorf("moves = %d, want 200", sg.Moves())
	}
}

// TestStartGapPreservesData: driving a real storage array through the
// leveler keeps every logical row's content intact across full rotations.
func TestStartGapPreservesData(t *testing.T) {
	const rows, period = 8, 3
	sg, err := NewStartGap(rows, period)
	if err != nil {
		t.Fatal(err)
	}
	store := make([]byte, sg.PhysicalRows())
	copyRow := func(src, dst int) error {
		store[dst] = store[src]
		return nil
	}
	// Logical row i holds value 10+i.
	for l := 0; l < rows; l++ {
		p, _ := sg.Map(l)
		store[p] = byte(10 + l)
	}
	// Hammer writes (rewriting each logical row's own value) for several
	// full rotations: (rows+1)*period writes per rotation.
	for w := 0; w < (rows+1)*period*5; w++ {
		l := w % rows
		p, err := sg.Map(l)
		if err != nil {
			t.Fatal(err)
		}
		store[p] = byte(10 + l) // the write itself
		if _, err := sg.OnWrite(copyRow); err != nil {
			t.Fatal(err)
		}
	}
	for l := 0; l < rows; l++ {
		p, _ := sg.Map(l)
		if store[p] != byte(10+l) {
			t.Errorf("logical row %d reads %d, want %d", l, store[p], 10+l)
		}
	}
}

// TestStartGapSpreadsWear: hammering one logical row must spread physical
// writes across the whole region once rotations happen.
func TestStartGapSpreadsWear(t *testing.T) {
	const rows, period = 16, 2
	sg, err := NewStartGap(rows, period)
	if err != nil {
		t.Fatal(err)
	}
	writes := make([]uint64, sg.PhysicalRows())
	copyRow := func(src, dst int) error {
		writes[dst]++ // the gap-movement copy is itself a write
		return nil
	}
	total := (rows + 1) * period * rows * 2 // many full rotations
	for w := 0; w < total; w++ {
		p, err := sg.Map(3) // always the same logical row
		if err != nil {
			t.Fatal(err)
		}
		writes[p]++
		if _, err := sg.OnWrite(copyRow); err != nil {
			t.Fatal(err)
		}
	}
	touched := 0
	var max uint64
	for _, n := range writes {
		if n > 0 {
			touched++
		}
		if n > max {
			max = n
		}
	}
	if touched != sg.PhysicalRows() {
		t.Errorf("only %d of %d physical rows touched", touched, sg.PhysicalRows())
	}
	// Without leveling all writes would hit one row; with it, the hottest
	// row must carry well under half of them.
	if float64(max) > 0.5*float64(total) {
		t.Errorf("hottest row carries %d of %d writes; leveling ineffective", max, total)
	}
}

// TestStartGapQuickMappingStable: between movements, Map is a pure function.
func TestStartGapQuickMappingStable(t *testing.T) {
	sg, err := NewStartGap(32, 1000)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(l uint8) bool {
		log := int(l) % 32
		a, err1 := sg.Map(log)
		b, err2 := sg.Map(log)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLifetimeEstimate(t *testing.T) {
	l := DefaultLifetime()
	// 1000 writes to the hottest row over 1 ms → 1e6 writes/s; endurance
	// 1e8 → 100 s unleveled.
	unlev, lev, err := l.Estimate(1000, 16000, 16, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	const yearSeconds = 365.25 * 24 * 3600
	if got := unlev * yearSeconds; got < 99 || got > 101 {
		t.Errorf("unleveled lifetime = %v s, want ~100", got)
	}
	// Leveled: 16000 writes over 16 rows in 1 ms → same 1e6/s per row here.
	if got := lev * yearSeconds; got < 99 || got > 101 {
		t.Errorf("leveled lifetime = %v s, want ~100", got)
	}
	// Concentrated wear: leveling buys the rows/hot-share factor.
	unlev2, lev2, err := l.Estimate(16000, 16000, 16, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if lev2 <= unlev2*15 {
		t.Errorf("leveling gain %vx, want ~16x", lev2/unlev2)
	}
	if _, _, err := l.Estimate(1, 1, 0, 1); err == nil {
		t.Error("accepted zero region")
	}
	if _, _, err := l.Estimate(1, 1, 1, 0); err == nil {
		t.Error("accepted zero window")
	}
	if _, _, err := (Lifetime{}).Estimate(1, 1, 1, 1); err == nil {
		t.Error("accepted zero endurance")
	}
}
