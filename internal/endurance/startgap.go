// Package endurance addresses the paper's declared future work (§6: "their
// impact on the endurance of PCM is not explicitly addressed in this paper,
// and the problem remains open"): wear accounting and wear leveling for the
// WOM-code PCM architectures.
//
// Two pieces:
//
//   - StartGap implements the Start-Gap wear-leveling scheme of Qureshi et
//     al. (MICRO 2009), the standard PCM address-rotation layer: one spare
//     row per region and a gap pointer that advances every Period writes,
//     slowly rotating the logical-to-physical row mapping so that no hot
//     logical row pins a physical row.
//
//   - Lifetime estimates device lifetime from the wear counters the
//     functional models already collect (pcm.Wear), with and without
//     leveling.
//
// WOM-codes interact with endurance favorably — in-budget rewrites perform
// only RESET transitions on a shrinking set of cells, and the §3.2 refresh
// adds one full-row write per cycle — so the combined accounting here is
// what the paper's future-work sentence asks for.
package endurance

import (
	"fmt"
)

// StartGap is a Start-Gap wear-leveling region: Rows logical rows mapped
// onto Rows+1 physical rows. The mapping is
//
//	phys = (logical + start) mod Rows; if phys ≥ gap { phys++ }
//
// and every Period writes the gap moves down one slot (copying the
// displaced row), wrapping by advancing start — a full rotation every
// (Rows+1)·Period writes.
type StartGap struct {
	rows      int
	period    int
	start     int
	gap       int
	sinceMove int
	moves     uint64
}

// NewStartGap builds a leveler for rows logical rows, moving the gap every
// period writes (Qureshi et al. use ψ = 100).
func NewStartGap(rows, period int) (*StartGap, error) {
	if rows < 1 {
		return nil, fmt.Errorf("endurance: start-gap needs at least one row, got %d", rows)
	}
	if period < 1 {
		return nil, fmt.Errorf("endurance: gap movement period must be positive, got %d", period)
	}
	return &StartGap{rows: rows, period: period, gap: rows}, nil
}

// Rows returns the number of logical rows.
func (s *StartGap) Rows() int { return s.rows }

// PhysicalRows returns the region size including the spare row.
func (s *StartGap) PhysicalRows() int { return s.rows + 1 }

// Moves returns the number of gap movements performed.
func (s *StartGap) Moves() uint64 { return s.moves }

// Map translates a logical row to its current physical row.
func (s *StartGap) Map(logical int) (int, error) {
	if logical < 0 || logical >= s.rows {
		return 0, fmt.Errorf("endurance: logical row %d outside [0,%d)", logical, s.rows)
	}
	phys := (logical + s.start) % s.rows
	if phys >= s.gap {
		phys++
	}
	return phys, nil
}

// OnWrite accounts one write to the region and, when the movement period
// elapses, advances the gap: the row above the gap is copied into the gap
// slot (via copyRow, physical indices) and the gap takes its place. When
// the gap reaches slot 0 it wraps to the top and the start pointer
// advances, completing one step of the rotation. It reports whether a
// movement happened.
func (s *StartGap) OnWrite(copyRow func(srcPhys, dstPhys int) error) (bool, error) {
	s.sinceMove++
	if s.sinceMove < s.period {
		return false, nil
	}
	s.sinceMove = 0
	s.moves++
	if s.gap == 0 {
		// The spare reached slot 0: relocate the top physical row into it,
		// completing one rotation step, and advance the start pointer.
		if copyRow != nil {
			if err := copyRow(s.rows, 0); err != nil {
				return false, fmt.Errorf("endurance: gap wrap copy: %w", err)
			}
		}
		s.gap = s.rows
		s.start = (s.start + 1) % s.rows
		return true, nil
	}
	if copyRow != nil {
		if err := copyRow(s.gap-1, s.gap); err != nil {
			return false, fmt.Errorf("endurance: gap movement copy: %w", err)
		}
	}
	s.gap--
	return true, nil
}

// Lifetime estimates device lifetime from wear statistics.
type Lifetime struct {
	// CellEndurance is the write endurance of a PCM cell; published parts
	// sustain 10^7–10^9 writes (default 10^8).
	CellEndurance float64
}

// DefaultLifetime returns the 10^8-write assumption.
func DefaultLifetime() Lifetime { return Lifetime{CellEndurance: 1e8} }

// Estimate converts wear counters collected over an observation window of
// durationNs into projected years until the first row dies, without
// leveling (the hottest row keeps its rate) and with ideal leveling (all
// observed writes spread over regionRows rows).
func (l Lifetime) Estimate(maxRowWrites, totalWrites uint64, regionRows int, durationNs int64) (unleveledYears, leveledYears float64, err error) {
	if durationNs <= 0 {
		return 0, 0, fmt.Errorf("endurance: non-positive observation window %d ns", durationNs)
	}
	if regionRows < 1 {
		return 0, 0, fmt.Errorf("endurance: region of %d rows", regionRows)
	}
	if l.CellEndurance <= 0 {
		return 0, 0, fmt.Errorf("endurance: non-positive cell endurance")
	}
	const yearNs = 365.25 * 24 * 3600 * 1e9
	seconds := float64(durationNs) / 1e9
	if maxRowWrites > 0 {
		rate := float64(maxRowWrites) / seconds // writes/s on the hottest row
		unleveledYears = l.CellEndurance / rate / (yearNs / 1e9)
	}
	if totalWrites > 0 {
		rate := float64(totalWrites) / float64(regionRows) / seconds
		leveledYears = l.CellEndurance / rate / (yearNs / 1e9)
	}
	return unleveledYears, leveledYears, nil
}
