package trace

import (
	"bufio"
	"fmt"
	"io"
)

// NewAutoReader returns a Source over r, sniffing the binary magic and
// falling back to the text format. It never fails on construction; format
// errors surface through the Source's Err after exhaustion.
func NewAutoReader(r io.Reader) Source {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binMagic))
	if err == nil && [4]byte(head) == binMagic {
		return NewBinReader(br)
	}
	// Short or unreadable streams fall through to the text reader, which
	// reports the underlying error (or yields an empty trace for EOF).
	return NewTextReader(br)
}

// ErrTooLong reports a stream that exceeds a CollectLimit bound.
var ErrTooLong = fmt.Errorf("trace: stream exceeds record limit")

// CollectLimit drains a source into a slice, failing with ErrTooLong once
// more than max records arrive (max <= 0 means unlimited). Services use it
// to bound untrusted uploads without buffering unbounded input.
func CollectLimit(src Source, max int) ([]Record, error) {
	var out []Record
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if max > 0 && len(out) >= max {
			return nil, fmt.Errorf("%w (max %d)", ErrTooLong, max)
		}
		out = append(out, r)
	}
	return out, src.Err()
}
