package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRecords() []Record {
	return []Record{
		{Op: Read, Addr: 0x1000, Time: 0},
		{Op: Write, Addr: 0x1040, Time: 27},
		{Op: Write, Addr: 0xdeadbeef, Time: 150},
		{Op: Read, Addr: 0, Time: 150},
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Error("op letters wrong")
	}
	if Op(9).String() != "Op(9)" {
		t.Error("unknown op rendering")
	}
	for _, s := range []string{"R", "r"} {
		if op, err := ParseOp(s); err != nil || op != Read {
			t.Errorf("ParseOp(%q) = %v, %v", s, op, err)
		}
	}
	if _, err := ParseOp("x"); err == nil {
		t.Error("parsed bogus op")
	}
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource(sampleRecords())
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleRecords()) {
		t.Error("collect mismatch")
	}
	if _, ok := src.Next(); ok {
		t.Error("source yielded past end")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(sampleRecords()); err != nil {
		t.Error(err)
	}
	bad := []Record{{Time: 10}, {Time: 5}}
	if err := Validate(bad); err == nil {
		t.Error("accepted time-disordered trace")
	}
	if err := Validate(nil); err != nil {
		t.Error("rejected empty trace")
	}
}

func TestLimit(t *testing.T) {
	src := NewLimit(NewSliceSource(sampleRecords()), 2)
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("limit yielded %d records, want 2", len(got))
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	w.Comment("synthetic trace")
	for _, r := range sampleRecords() {
		w.Write(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(sampleRecords()) {
		t.Errorf("writer count = %d", w.Count())
	}
	got, err := Collect(NewTextReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleRecords()) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, sampleRecords())
	}
}

func TestTextReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nR 0x10 5\n   \n# mid\nW 16 7\n"
	got, err := Collect(NewTextReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{{Read, 0x10, 5}, {Write, 16, 7}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTextReaderErrors(t *testing.T) {
	cases := []string{
		"R 0x10",            // missing time
		"X 0x10 5",          // bad op
		"R zz 5",            // bad addr
		"R 0x10 notatime",   // bad time
		"R 0x10 -5",         // negative time
		"R 0x10 5 trailing", // extra field
	}
	for _, in := range cases {
		_, err := Collect(NewTextReader(strings.NewReader(in)))
		if err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestBinRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	for _, r := range sampleRecords() {
		w.Write(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8+len(sampleRecords())*binRecordSize {
		t.Errorf("encoded %d bytes", buf.Len())
	}
	got, err := Collect(NewBinReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleRecords()) {
		t.Error("binary round trip mismatch")
	}
}

func TestBinEmptyTraceHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewBinReader(&buf))
	if err != nil || len(got) != 0 {
		t.Errorf("empty trace: %v, %v", got, err)
	}
}

func TestBinBadMagic(t *testing.T) {
	_, err := Collect(NewBinReader(strings.NewReader("NOTATRACE HEADER")))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBinBadVersion(t *testing.T) {
	raw := append([]byte("WOMT"), 99, 0, 0, 0)
	_, err := Collect(NewBinReader(bytes.NewReader(raw)))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("err = %v, want version error", err)
	}
}

func TestBinBadOpByte(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	w.Write(Record{Op: Read})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] = 7 // corrupt the op byte of the first record
	_, err := Collect(NewBinReader(bytes.NewReader(raw)))
	if err == nil {
		t.Error("accepted corrupt op byte")
	}
}

// TestBinQuickRoundTrip property-checks arbitrary records through the
// binary codec.
func TestBinQuickRoundTrip(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]Record, int(n%50))
		tm := int64(0)
		for i := range recs {
			tm += rng.Int63n(100)
			recs[i] = Record{Op: Op(rng.Intn(2)), Addr: rng.Uint64(), Time: tm}
		}
		var buf bytes.Buffer
		w := NewBinWriter(&buf)
		for _, r := range recs {
			w.Write(r)
		}
		if w.Flush() != nil {
			return false
		}
		got, err := Collect(NewBinReader(&buf))
		if err != nil {
			return false
		}
		return len(got) == len(recs) && (len(recs) == 0 || reflect.DeepEqual(got, recs))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
