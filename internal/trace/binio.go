package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format: an 8-byte header ("WOMT" magic, version 1, 3 bytes
// reserved) followed by fixed 17-byte little-endian records:
//
//	byte 0      op (0 read, 1 write)
//	bytes 1-8   address
//	bytes 9-16  time (ns)
var binMagic = [4]byte{'W', 'O', 'M', 'T'}

// binVersion is the current binary trace version.
const binVersion = 1

const binRecordSize = 17

// ErrBadMagic indicates the stream is not a binary trace.
var ErrBadMagic = errors.New("trace: bad binary trace magic")

// BinWriter emits the binary trace format.
type BinWriter struct {
	w      *bufio.Writer
	n      int
	err    error
	header bool
}

// NewBinWriter wraps w; the header is emitted lazily on first write.
func NewBinWriter(w io.Writer) *BinWriter {
	return &BinWriter{w: bufio.NewWriter(w)}
}

func (b *BinWriter) writeHeader() {
	var h [8]byte
	copy(h[:4], binMagic[:])
	h[4] = binVersion
	_, b.err = b.w.Write(h[:])
	b.header = true
}

// Write appends one record.
func (b *BinWriter) Write(r Record) {
	if b.err != nil {
		return
	}
	if !b.header {
		b.writeHeader()
		if b.err != nil {
			return
		}
	}
	var buf [binRecordSize]byte
	buf[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(buf[1:9], r.Addr)
	binary.LittleEndian.PutUint64(buf[9:17], uint64(r.Time))
	_, b.err = b.w.Write(buf[:])
	if b.err == nil {
		b.n++
	}
}

// Count returns the number of records written.
func (b *BinWriter) Count() int { return b.n }

// Flush flushes buffered output (emitting the header even for an empty
// trace) and returns the first error encountered.
func (b *BinWriter) Flush() error {
	if b.err != nil {
		return b.err
	}
	if !b.header {
		b.writeHeader()
		if b.err != nil {
			return b.err
		}
	}
	return b.w.Flush()
}

// BinReader parses the binary trace format as a Source.
type BinReader struct {
	r      *bufio.Reader
	err    error
	header bool
}

// NewBinReader wraps r.
func NewBinReader(r io.Reader) *BinReader {
	return &BinReader{r: bufio.NewReader(r)}
}

func (b *BinReader) readHeader() {
	var h [8]byte
	if _, err := io.ReadFull(b.r, h[:]); err != nil {
		b.err = fmt.Errorf("trace: reading header: %w", err)
		return
	}
	if [4]byte(h[:4]) != binMagic {
		b.err = ErrBadMagic
		return
	}
	if h[4] != binVersion {
		b.err = fmt.Errorf("trace: unsupported binary trace version %d", h[4])
		return
	}
	b.header = true
}

// Next implements Source.
func (b *BinReader) Next() (Record, bool) {
	if b.err != nil {
		return Record{}, false
	}
	if !b.header {
		b.readHeader()
		if b.err != nil {
			return Record{}, false
		}
	}
	var buf [binRecordSize]byte
	if _, err := io.ReadFull(b.r, buf[:]); err != nil {
		if !errors.Is(err, io.EOF) {
			b.err = fmt.Errorf("trace: reading record: %w", err)
		}
		return Record{}, false
	}
	if buf[0] > byte(Write) {
		b.err = fmt.Errorf("trace: invalid op byte %d", buf[0])
		return Record{}, false
	}
	t := int64(binary.LittleEndian.Uint64(buf[9:17]))
	if t < 0 {
		b.err = fmt.Errorf("trace: negative record time %d", t)
		return Record{}, false
	}
	return Record{
		Op:   Op(buf[0]),
		Addr: binary.LittleEndian.Uint64(buf[1:9]),
		Time: t,
	}, true
}

// Err implements Source.
func (b *BinReader) Err() error { return b.err }
