// Package trace defines the memory access trace format used to drive the
// simulator — the stand-in for the paper's Pin-captured traces (§5). A
// trace is a time-ordered stream of records, each a read or write of one
// memory line at a physical byte address with an arrival time in
// nanoseconds.
//
// Two encodings are provided: a human-editable text form ("R 0x1f40 2700"
// per line, with '#' comments) and a compact binary form with a magic
// header for bulk traces emitted by cmd/tracegen.
package trace

import (
	"fmt"
)

// Op is the access type.
type Op uint8

const (
	// Read is a memory load (LLC miss fill).
	Read Op = iota
	// Write is a memory store (LLC writeback).
	Write
)

// String renders the op as the single letter used by the text format.
func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// ParseOp parses a text-format op letter.
func ParseOp(s string) (Op, error) {
	switch s {
	case "R", "r":
		return Read, nil
	case "W", "w":
		return Write, nil
	default:
		return 0, fmt.Errorf("trace: unknown op %q", s)
	}
}

// Record is one memory access.
type Record struct {
	// Op is the access type.
	Op Op
	// Addr is the physical byte address of the accessed line.
	Addr uint64
	// Time is the arrival time at the memory controller, in nanoseconds
	// from the start of the trace. Times must be non-decreasing.
	Time int64
}

// String renders the record in text-trace form.
func (r Record) String() string {
	return fmt.Sprintf("%s 0x%x %d", r.Op, r.Addr, r.Time)
}

// Source yields a time-ordered stream of records. Next returns the zero
// Record and false after the final record; implementations surface decoding
// errors via Err after exhaustion.
type Source interface {
	Next() (Record, bool)
	Err() error
}

// SliceSource adapts an in-memory record slice to Source.
type SliceSource struct {
	recs []Record
	pos  int
}

// NewSliceSource wraps recs; the slice is not copied.
func NewSliceSource(recs []Record) *SliceSource {
	return &SliceSource{recs: recs}
}

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Err implements Source; a slice source never fails.
func (*SliceSource) Err() error { return nil }

// Collect drains a source into a slice, failing on a source error.
func Collect(src Source) ([]Record, error) {
	var out []Record
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, src.Err()
}

// Validate checks that records are time-ordered.
func Validate(recs []Record) error {
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			return fmt.Errorf("trace: record %d arrives at %d ns, before record %d at %d ns",
				i, recs[i].Time, i-1, recs[i-1].Time)
		}
	}
	return nil
}

// Limit wraps a source, yielding at most n records.
type Limit struct {
	src Source
	n   int
}

// NewLimit returns a source that stops after n records of src.
func NewLimit(src Source, n int) *Limit {
	return &Limit{src: src, n: n}
}

// Next implements Source.
func (l *Limit) Next() (Record, bool) {
	if l.n <= 0 {
		return Record{}, false
	}
	l.n--
	return l.src.Next()
}

// Err implements Source.
func (l *Limit) Err() error { return l.src.Err() }
