package trace

import (
	"bytes"
	"testing"
)

// FuzzTrace exercises the decode paths the womd service exposes to
// untrusted uploads: arbitrary bytes must decode to records or a clean
// error — never a panic — and everything that decodes must survive a
// binary encode/decode round trip bit-for-bit.
func FuzzTrace(f *testing.F) {
	// A valid binary trace as a seed.
	var buf bytes.Buffer
	w := NewBinWriter(&buf)
	w.Write(Record{Op: Read, Addr: 0x1f40, Time: 2700})
	w.Write(Record{Op: Write, Addr: 0x1f80, Time: 2754})
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})                                            // empty stream
	f.Add(buf.Bytes()[:8])                                     // header only
	f.Add(buf.Bytes()[:12])                                    // truncated record
	f.Add([]byte("WOMT\x02\x00\x00\x00"))                      // unsupported version
	f.Add([]byte("WXYZ\x01\x00\x00\x00"))                      // bad magic
	f.Add([]byte("# comment\nR 0x1f40 2700\nW 0x1f80 2754\n")) // text form
	f.Add([]byte("R 0x1f40 notatime\n"))                       // malformed text

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := CollectLimit(NewAutoReader(bytes.NewReader(data)), 1<<16)
		if err != nil {
			return // malformed input must error, not panic
		}
		for _, r := range recs {
			if r.Op != Read && r.Op != Write {
				t.Fatalf("decoded invalid op %d", r.Op)
			}
		}
		var enc bytes.Buffer
		bw := NewBinWriter(&enc)
		for _, r := range recs {
			bw.Write(r)
		}
		if err := bw.Flush(); err != nil {
			t.Fatalf("encoding decoded records: %v", err)
		}
		back, err := Collect(NewBinReader(bytes.NewReader(enc.Bytes())))
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip length %d != %d", len(back), len(recs))
		}
		for i := range recs {
			if back[i] != recs[i] {
				t.Fatalf("record %d: round trip %+v != %+v", i, back[i], recs[i])
			}
		}
	})
}
