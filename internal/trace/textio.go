package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TextWriter emits records in the text trace format, one per line:
//
//	R 0x7f2a40 2700
//	W 0x7f2a80 2754
//
// Lines beginning with '#' are comments; blank lines are ignored on read.
type TextWriter struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewTextWriter wraps w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: bufio.NewWriter(w)}
}

// Comment writes a comment line.
func (t *TextWriter) Comment(s string) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, "# %s\n", s)
}

// Write appends one record.
func (t *TextWriter) Write(r Record) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, "%s 0x%x %d\n", r.Op, r.Addr, r.Time)
	if t.err == nil {
		t.n++
	}
}

// Count returns the number of records written.
func (t *TextWriter) Count() int { return t.n }

// Flush flushes buffered output and returns the first error encountered.
func (t *TextWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// TextReader parses the text trace format as a Source.
type TextReader struct {
	sc   *bufio.Scanner
	line int
	err  error
}

// NewTextReader wraps r.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &TextReader{sc: sc}
}

// Next implements Source.
func (t *TextReader) Next() (Record, bool) {
	if t.err != nil {
		return Record{}, false
	}
	for t.sc.Scan() {
		t.line++
		line := strings.TrimSpace(t.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseTextRecord(line)
		if err != nil {
			t.err = fmt.Errorf("trace: line %d: %w", t.line, err)
			return Record{}, false
		}
		return rec, true
	}
	t.err = t.sc.Err()
	return Record{}, false
}

// Err implements Source.
func (t *TextReader) Err() error { return t.err }

func parseTextRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return Record{}, fmt.Errorf("want 3 fields \"OP ADDR TIME\", got %d", len(fields))
	}
	op, err := ParseOp(fields[0])
	if err != nil {
		return Record{}, err
	}
	addr, err := strconv.ParseUint(fields[1], 0, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad address %q: %w", fields[1], err)
	}
	tm, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad time %q: %w", fields[2], err)
	}
	if tm < 0 {
		return Record{}, fmt.Errorf("negative time %d", tm)
	}
	return Record{Op: op, Addr: addr, Time: tm}, nil
}
