// Package core is the paper-facing API of the reproduction: the four PCM
// architectures Li and Mohanram evaluate (DATE 2014), each available as a
// timing System (driven by access traces, §5's methodology) and as a
// FunctionalMemory (a data-carrying model that stores real bits through the
// WOM codec and enforces the RESET-only programming discipline).
//
//	Baseline    conventional PCM: every write pays the SET latency
//	WOMCode     §3.1: inverted <2^2>^2/3 WOM-code rows, wide-column
//	Refresh     §3.2: WOM-code plus idle-cycle PCM-refresh
//	WCPCM       §4:   per-rank WOM-cache over conventional PCM
package core

import (
	"fmt"
	"sync/atomic"

	"womcpcm/internal/memctrl"
	"womcpcm/internal/pcm"
	"womcpcm/internal/probe"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
)

// Arch identifies one of the paper's four evaluated architectures.
type Arch int

const (
	// Baseline is conventional PCM without WOM-codes.
	Baseline Arch = iota
	// WOMCode is the §3.1 WOM-code PCM architecture.
	WOMCode
	// Refresh is WOM-code PCM with §3.2 PCM-refresh.
	Refresh
	// WCPCM is the §4 WOM-code cached PCM architecture.
	WCPCM
)

// Arches lists the four architectures in the paper's plotting order
// (Fig. 5: blue, red, green, purple).
func Arches() []Arch { return []Arch{Baseline, WOMCode, Refresh, WCPCM} }

// String names the architecture as the paper's figures do.
func (a Arch) String() string {
	switch a {
	case Baseline:
		return "PCM w/o WOM-code"
	case WOMCode:
		return "WOM-code PCM"
	case Refresh:
		return "PCM-refresh"
	case WCPCM:
		return "WCPCM"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Options tune a System away from the paper's defaults.
type Options struct {
	// Geometry defaults to pcm.DefaultGeometry (§5).
	Geometry pcm.Geometry
	// Timing defaults to pcm.DefaultTiming (§5).
	Timing pcm.Timing
	// Organization selects wide-column (default) or hidden-page for the
	// WOMCode and Refresh architectures.
	Organization memctrl.Organization
	// Rewrites is the WOM-code budget k; 0 selects the paper's 2.
	Rewrites int
	// RefreshThresholdPct is r_th; negative selects the default (10).
	RefreshThresholdPct float64
	// RefreshTableSize is the per-bank row address table depth; 0 selects
	// the paper's 5.
	RefreshTableSize int
	// FreshArrays treats never-written main-array rows as factory-erased.
	// The default (false) models a long-running system where a row of
	// unknown state must be assumed to be at the rewrite limit.
	FreshArrays bool
	// Probe, when set, streams fine-grained simulator events (write
	// classification, refresh lifecycle, cache actions, bank occupancy)
	// to its sinks; see internal/probe. nil disables instrumentation at
	// zero cost. Probes are single-simulation: attach a fresh one per
	// Simulate call when running concurrently.
	Probe *probe.Probe
	// Latency, when set, observes every completed demand request
	// (memctrl.Config.Latency) — the telemetry collector's latency feed.
	// Same single-simulation ownership as Probe.
	Latency memctrl.LatencyHook
	// Events, when set, receives a live count of simulator event-loop steps
	// (memctrl.Config.Events) — the host-time throughput feed internal/perfmon
	// reads. Unlike Probe and Latency, one counter may be shared by parallel
	// simulations; the controller advances it atomically in strides.
	Events *atomic.Int64
}

// DefaultOptions returns the paper's §5 configuration.
func DefaultOptions() Options {
	return Options{
		Geometry:            pcm.DefaultGeometry(),
		Timing:              pcm.DefaultTiming(),
		Rewrites:            2,
		RefreshThresholdPct: 10,
		RefreshTableSize:    5,
	}
}

// normalize fills zero values with paper defaults.
func (o Options) normalize() Options {
	def := DefaultOptions()
	if o.Geometry == (pcm.Geometry{}) {
		o.Geometry = def.Geometry
	}
	if o.Timing == (pcm.Timing{}) {
		o.Timing = def.Timing
	}
	if o.Rewrites == 0 {
		o.Rewrites = def.Rewrites
	}
	if o.RefreshThresholdPct < 0 {
		o.RefreshThresholdPct = def.RefreshThresholdPct
	}
	if o.RefreshTableSize == 0 {
		o.RefreshTableSize = def.RefreshTableSize
	}
	return o
}

// System is a simulated memory system of one architecture; Simulate runs a
// trace through a fresh controller each call, so a System is reusable and
// safe for repeated experiments.
type System struct {
	arch Arch
	cfg  memctrl.Config
}

// NewSystem builds a System. Zero fields of opts take the paper's defaults;
// pass DefaultOptions() for the exact §5 setup.
func NewSystem(arch Arch, opts Options) (*System, error) {
	opts = opts.normalize()
	cfg := memctrl.Config{Geometry: opts.Geometry, Timing: opts.Timing,
		Probe: opts.Probe, Latency: opts.Latency, Events: opts.Events}
	switch arch {
	case Baseline:
	case WOMCode:
		cfg.WOM = &memctrl.WOMConfig{Rewrites: opts.Rewrites, Org: opts.Organization, FreshArrays: opts.FreshArrays}
	case Refresh:
		cfg.WOM = &memctrl.WOMConfig{Rewrites: opts.Rewrites, Org: opts.Organization, FreshArrays: opts.FreshArrays}
		cfg.Refresh = &memctrl.RefreshConfig{
			ThresholdPct: opts.RefreshThresholdPct,
			TableSize:    opts.RefreshTableSize,
		}
	case WCPCM:
		cfg.Cache = &memctrl.CacheConfig{
			Rewrites:  opts.Rewrites,
			TableSize: opts.RefreshTableSize,
		}
	default:
		return nil, fmt.Errorf("core: unknown architecture %d", int(arch))
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{arch: arch, cfg: cfg}, nil
}

// Arch returns the system's architecture.
func (s *System) Arch() Arch { return s.arch }

// Config exposes the underlying controller configuration.
func (s *System) Config() memctrl.Config { return s.cfg }

// MemoryOverhead returns the architecture's extra-cell overhead relative to
// conventional PCM with a code overhead of (Wits/DataBits − 1): 0.5 for the
// paper's code. WOM-code PCM pays it across the whole array; WCPCM pays
// (1+0.5)/N_bank (§4's 4.7 % at 32 banks); baseline pays nothing.
func (s *System) MemoryOverhead(codeOverhead float64) float64 {
	switch s.arch {
	case WOMCode, Refresh:
		return codeOverhead
	case WCPCM:
		return s.cfg.Geometry.WOMCacheOverhead(codeOverhead)
	default:
		return 0
	}
}

// Simulate runs src through a fresh controller and labels the result.
func (s *System) Simulate(src trace.Source) (*stats.Run, error) {
	ctrl, err := memctrl.New(s.cfg)
	if err != nil {
		return nil, err
	}
	return ctrl.Run(src)
}

// SimulateRecords is Simulate over an in-memory trace.
func (s *System) SimulateRecords(recs []trace.Record) (*stats.Run, error) {
	return s.Simulate(trace.NewSliceSource(recs))
}
