package core

import (
	"fmt"
	"sort"

	"womcpcm/internal/pcm"
	"womcpcm/internal/womcode"
)

// FunctionalMemory is the data-carrying counterpart of System: it stores
// real bits through the WOM row codec into pcm.Array cells and relies on
// the array's write-mode enforcement to prove the central claim of §3.1 —
// every in-budget rewrite programs cells with RESET operations only, and
// only α-writes (and conventional-PCM writes) need SET.
//
// The model is row-consistent: a write smaller than a row performs a
// read-merge-write of the full row, which is how the row-buffer-based
// architectures of §3.1 behave.
type FunctionalMemory struct {
	arch   Arch
	geom   pcm.Geometry
	mapper *pcm.AddrMapper
	codec  *womcode.RowCodec // nil for Baseline
	k      int
	banks  [][]*funcBank
	caches []*funcCache // WCPCM only
}

// funcBank is one bank's cell array plus WOM bookkeeping.
type funcBank struct {
	arr    *pcm.Array
	gens   map[int]int
	limits map[int]struct{}
}

// funcCache is one rank's WOM-cache array with its selector fields.
type funcCache struct {
	funcBank
	entries map[int]funcCacheEntry
}

type funcCacheEntry struct {
	bank  int
	valid bool
}

// WriteResult reports what one write physically did.
type WriteResult struct {
	// Alpha is true when the write had SET operations on its critical path:
	// a WOM α-write or any conventional-PCM write.
	Alpha bool
	// CacheHit and CacheVictim describe the WCPCM write protocol outcome.
	CacheHit    bool
	CacheVictim bool
	// Sets and Resets count cell transitions performed on the directly
	// written array (victim write-backs excluded).
	Sets, Resets int
}

// NewFunctionalMemory builds a functional model of arch over geometry g
// using code (the paper's womcode.InvRS223 unless experimenting). The code
// must be inverted — PCM orientation — for the WOM architectures.
func NewFunctionalMemory(arch Arch, g pcm.Geometry, code womcode.Code) (*FunctionalMemory, error) {
	switch arch {
	case Baseline, WOMCode, Refresh, WCPCM:
	default:
		return nil, fmt.Errorf("core: unknown architecture %d", int(arch))
	}
	mapper, err := pcm.NewAddrMapper(g)
	if err != nil {
		return nil, err
	}
	m := &FunctionalMemory{arch: arch, geom: g, mapper: mapper}
	usesWOM := arch == WOMCode || arch == Refresh || arch == WCPCM
	if usesWOM {
		if !code.Inverted() {
			return nil, fmt.Errorf("core: %s needs an inverted WOM-code, got %s", arch, code.Name())
		}
		m.codec, err = womcode.NewRowCodec(code, g.RowBits())
		if err != nil {
			return nil, err
		}
		m.k = code.Writes()
	}
	newBank := func(encoded bool) (*funcBank, error) {
		bits := g.RowBits()
		erasedOne := false
		if encoded {
			bits = m.codec.EncodedBits()
			erasedOne = true
		}
		arr, err := pcm.NewArray(g.RowsPerBank, bits, erasedOne)
		if err != nil {
			return nil, err
		}
		return &funcBank{arr: arr, gens: make(map[int]int), limits: make(map[int]struct{})}, nil
	}
	mainEncoded := arch == WOMCode || arch == Refresh
	m.banks = make([][]*funcBank, g.Ranks)
	for r := range m.banks {
		m.banks[r] = make([]*funcBank, g.BanksPerRank)
		for b := range m.banks[r] {
			if m.banks[r][b], err = newBank(mainEncoded); err != nil {
				return nil, err
			}
		}
	}
	if arch == WCPCM {
		m.caches = make([]*funcCache, g.Ranks)
		for r := range m.caches {
			fb, err := newBank(true)
			if err != nil {
				return nil, err
			}
			m.caches[r] = &funcCache{funcBank: *fb, entries: make(map[int]funcCacheEntry)}
		}
	}
	return m, nil
}

// Arch returns the modeled architecture.
func (m *FunctionalMemory) Arch() Arch { return m.arch }

func (m *FunctionalMemory) locate(addr uint64, n int) (pcm.Location, int, error) {
	loc := m.mapper.Map(addr)
	colBytes := (m.geom.DataWidth() + 7) / 8
	off := loc.Col * colBytes
	off += int(addr % uint64(colBytes))
	if off+n > m.geom.RowBytes() {
		return loc, 0, fmt.Errorf("core: access of %d bytes at %#x crosses a row boundary", n, addr)
	}
	return loc, off, nil
}

// Write stores data at addr; the access must not cross a row boundary.
func (m *FunctionalMemory) Write(addr uint64, data []byte) (WriteResult, error) {
	loc, off, err := m.locate(addr, len(data))
	if err != nil {
		return WriteResult{}, err
	}
	if m.arch == WCPCM {
		return m.cacheWrite(loc, off, data)
	}
	bank := m.banks[loc.Rank][loc.Bank]
	if m.codec == nil {
		return bank.rawWrite(loc.Row, off, data, m.geom.RowBytes())
	}
	cur, err := m.rowData(bank, loc.Row)
	if err != nil {
		return WriteResult{}, err
	}
	copy(cur[off:], data)
	return m.womProgram(bank, loc.Row, cur)
}

// Read loads n bytes from addr; the access must not cross a row boundary.
func (m *FunctionalMemory) Read(addr uint64, n int) ([]byte, error) {
	loc, off, err := m.locate(addr, n)
	if err != nil {
		return nil, err
	}
	if m.arch == WCPCM {
		if e, ok := m.caches[loc.Rank].entries[loc.Row]; ok && e.valid && e.bank == loc.Bank {
			row, err := m.rowData(&m.caches[loc.Rank].funcBank, loc.Row)
			if err != nil {
				return nil, err
			}
			return row[off : off+n], nil
		}
	}
	bank := m.banks[loc.Rank][loc.Bank]
	row, err := m.rowData(bank, loc.Row)
	if err != nil {
		return nil, err
	}
	return row[off : off+n], nil
}

// rowData returns the decoded (or raw) data content of a row.
func (m *FunctionalMemory) rowData(b *funcBank, row int) ([]byte, error) {
	raw, err := b.arr.ReadRow(row)
	if err != nil {
		return nil, err
	}
	if m.codec == nil || b.arr.RowBits() == m.geom.RowBits() {
		return raw, nil
	}
	return m.codec.Decode(raw)
}

// rawWrite is the conventional-PCM path: read-merge-write with SET allowed.
func (b *funcBank) rawWrite(row, off int, data []byte, rowBytes int) (WriteResult, error) {
	cur, err := b.arr.ReadRow(row)
	if err != nil {
		return WriteResult{}, err
	}
	copy(cur[off:], data)
	sets, resets, err := b.arr.ProgramRow(row, cur, pcm.FullWrite)
	if err != nil {
		return WriteResult{}, err
	}
	return WriteResult{Alpha: true, Sets: sets, Resets: resets}, nil
}

// womProgram writes full row data through the WOM codec, consuming one
// write of the row's budget (or α-writing at the limit).
func (m *FunctionalMemory) womProgram(b *funcBank, row int, data []byte) (WriteResult, error) {
	gen := b.gens[row]
	if gen < m.k {
		prev, err := b.arr.ReadRow(row)
		if err != nil {
			return WriteResult{}, err
		}
		enc, err := m.codec.Encode(prev, data, gen)
		if err != nil {
			return WriteResult{}, err
		}
		// The array enforces that this in-budget write truly needs no SET.
		sets, resets, err := b.arr.ProgramRow(row, enc, pcm.ResetOnly)
		if err != nil {
			return WriteResult{}, err
		}
		b.gens[row] = gen + 1
		if gen+1 == m.k {
			b.limits[row] = struct{}{}
		}
		return WriteResult{Sets: sets, Resets: resets}, nil
	}
	res, err := m.alphaProgram(b, row, data)
	if err != nil {
		return WriteResult{}, err
	}
	return res, nil
}

// alphaProgram rewrites the row with the first-write pattern (SET allowed).
func (m *FunctionalMemory) alphaProgram(b *funcBank, row int, data []byte) (WriteResult, error) {
	enc, err := m.codec.Encode(m.codec.InitialRow(), data, 0)
	if err != nil {
		return WriteResult{}, err
	}
	sets, resets, err := b.arr.ProgramRow(row, enc, pcm.FullWrite)
	if err != nil {
		return WriteResult{}, err
	}
	delete(b.limits, row)
	b.gens[row] = 1
	if m.k == 1 {
		b.limits[row] = struct{}{}
	}
	return WriteResult{Alpha: true, Sets: sets, Resets: resets}, nil
}

// cacheWrite implements the §4 WCPCM write protocol functionally.
func (m *FunctionalMemory) cacheWrite(loc pcm.Location, off int, data []byte) (WriteResult, error) {
	ca := m.caches[loc.Rank]
	e, present := ca.entries[loc.Row]
	hit := !present || !e.valid || e.bank == loc.Bank
	var res WriteResult

	if !hit {
		// Evict: decode the victim row and write it back to its bank.
		victim, err := m.rowData(&ca.funcBank, loc.Row)
		if err != nil {
			return WriteResult{}, err
		}
		if _, err := m.banks[loc.Rank][e.bank].rawWrite(loc.Row, 0, victim, m.geom.RowBytes()); err != nil {
			return WriteResult{}, err
		}
		res.CacheVictim = true
	} else {
		res.CacheHit = true
	}

	// Assemble the full row content to cache: the cached copy if this bank
	// already owns the entry, else the row from main memory.
	var cur []byte
	var err error
	if present && e.valid && e.bank == loc.Bank {
		cur, err = m.rowData(&ca.funcBank, loc.Row)
	} else {
		cur, err = m.rowData(m.banks[loc.Rank][loc.Bank], loc.Row)
	}
	if err != nil {
		return WriteResult{}, err
	}
	copy(cur[off:], data)

	wres, err := m.womProgram(&ca.funcBank, loc.Row, cur)
	if err != nil {
		return WriteResult{}, err
	}
	res.Alpha = wres.Alpha
	res.Sets, res.Resets = wres.Sets, wres.Resets
	ca.entries[loc.Row] = funcCacheEntry{bank: loc.Bank, valid: true}
	return res, nil
}

// AtLimitRows counts rows currently at the rewrite limit across all WOM
// arrays.
func (m *FunctionalMemory) AtLimitRows() int {
	n := 0
	for _, b := range m.eachWOMBank() {
		n += len(b.limits)
	}
	return n
}

// RefreshAtLimit refreshes up to maxRows rows that have reached the rewrite
// limit (the functional analogue of §3.2's PCM-refresh: read out, rewrite
// in the first-write pattern) and returns how many it refreshed. Pass a
// negative maxRows to refresh everything.
func (m *FunctionalMemory) RefreshAtLimit(maxRows int) (int, error) {
	done := 0
	for _, b := range m.eachWOMBank() {
		rows := make([]int, 0, len(b.limits))
		for row := range b.limits {
			rows = append(rows, row)
		}
		sort.Ints(rows)
		for _, row := range rows {
			if maxRows >= 0 && done >= maxRows {
				return done, nil
			}
			data, err := m.rowData(b, row)
			if err != nil {
				return done, err
			}
			if _, err := m.alphaProgram(b, row, data); err != nil {
				return done, err
			}
			done++
		}
	}
	return done, nil
}

// eachWOMBank lists the arrays that carry WOM-coded rows, in a fixed order.
func (m *FunctionalMemory) eachWOMBank() []*funcBank {
	var out []*funcBank
	if m.arch == WOMCode || m.arch == Refresh {
		for _, rank := range m.banks {
			for _, b := range rank {
				out = append(out, b)
			}
		}
	}
	for _, ca := range m.caches {
		out = append(out, &ca.funcBank)
	}
	return out
}

// Wear aggregates endurance counters across every array in the system —
// the accounting the paper leaves to future work.
func (m *FunctionalMemory) Wear() pcm.Wear {
	var w pcm.Wear
	add := func(x pcm.Wear) {
		w.TouchedRows += x.TouchedRows
		w.TotalWrites += x.TotalWrites
		if x.MaxRowWrites > w.MaxRowWrites {
			w.MaxRowWrites = x.MaxRowWrites
		}
		w.SetOps += x.SetOps
		w.ResetOps += x.ResetOps
	}
	for _, rank := range m.banks {
		for _, b := range rank {
			add(b.arr.WearStats())
		}
	}
	for _, ca := range m.caches {
		add(ca.arr.WearStats())
	}
	return w
}
