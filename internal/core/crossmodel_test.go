package core

import (
	"testing"

	"womcpcm/internal/memctrl"
	"womcpcm/internal/pcm"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
	"womcpcm/internal/womcode"
	"womcpcm/internal/workload"
)

// TestTimingMatchesFunctionalAlphaCount is the cross-model integration
// check: the timing simulator's WOM generation bookkeeping and the
// functional model's actual encoded-bit state machine must agree on which
// writes are α-writes. Both process the same trace (no refresh, fresh
// arrays, k = 2), so the total α count must match exactly — if the timing
// model's counters ever diverged from what the codec can really do, this
// breaks.
func TestTimingMatchesFunctionalAlphaCount(t *testing.T) {
	g := funcGeometry()
	profile, err := workload.ProfileByName("464.h264ref")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := workload.Generate(profile, g, 31, 4000)
	if err != nil {
		t.Fatal(err)
	}

	// Timing model.
	cfg := memctrl.Config{
		Geometry: g,
		Timing:   pcm.DefaultTiming(),
		WOM:      &memctrl.WOMConfig{Rewrites: 2, FreshArrays: true},
	}
	ctrl, err := memctrl.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := ctrl.Run(trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}

	// Functional model, replaying the same accesses.
	mem, err := NewFunctionalMemory(WOMCode, g, womcode.InvRS223())
	if err != nil {
		t.Fatal(err)
	}
	var funcAlpha, funcFast uint64
	payload := []byte{0xA5}
	for _, rec := range recs {
		if rec.Op != trace.Write {
			continue
		}
		res, err := mem.Write(rec.Addr, payload)
		if err != nil {
			t.Fatal(err)
		}
		if res.Alpha {
			funcAlpha++
		} else {
			funcFast++
		}
	}

	if got := run.Classes[stats.WriteAlpha]; got != funcAlpha {
		t.Errorf("timing α-writes %d, functional α-writes %d", got, funcAlpha)
	}
	if got := run.Classes[stats.WriteFast]; got != funcFast {
		t.Errorf("timing fast writes %d, functional fast writes %d", got, funcFast)
	}
	if funcAlpha == 0 || funcFast == 0 {
		t.Errorf("degenerate trace: α=%d fast=%d", funcAlpha, funcFast)
	}
}
