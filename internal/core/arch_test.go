package core

import (
	"math"
	"testing"

	"womcpcm/internal/memctrl"
	"womcpcm/internal/pcm"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

func smallGeometry() pcm.Geometry {
	return pcm.Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 256, ColsPerRow: 16, BitsPerCol: 8, Devices: 8}
}

func smallOptions() Options {
	o := DefaultOptions()
	o.Geometry = smallGeometry()
	return o
}

func TestArchNamesAndOrder(t *testing.T) {
	want := []string{"PCM w/o WOM-code", "WOM-code PCM", "PCM-refresh", "WCPCM"}
	arches := Arches()
	if len(arches) != 4 {
		t.Fatalf("Arches() = %v", arches)
	}
	for i, a := range arches {
		if a.String() != want[i] {
			t.Errorf("arch %d = %q, want %q", i, a.String(), want[i])
		}
	}
	if Arch(42).String() != "Arch(42)" {
		t.Error("unknown arch rendering")
	}
}

func TestNewSystemConfigs(t *testing.T) {
	for _, a := range Arches() {
		s, err := NewSystem(a, smallOptions())
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if s.Arch() != a {
			t.Errorf("Arch() = %v, want %v", s.Arch(), a)
		}
		cfg := s.Config()
		switch a {
		case Baseline:
			if cfg.WOM != nil || cfg.Refresh != nil || cfg.Cache != nil {
				t.Error("baseline config has features enabled")
			}
		case WOMCode:
			if cfg.WOM == nil || cfg.Refresh != nil || cfg.Cache != nil {
				t.Error("WOM config wrong")
			}
		case Refresh:
			if cfg.WOM == nil || cfg.Refresh == nil {
				t.Error("refresh config wrong")
			}
			if cfg.Refresh.TableSize != 5 || cfg.Refresh.ThresholdPct != 10 {
				t.Errorf("refresh defaults = %+v", cfg.Refresh)
			}
		case WCPCM:
			if cfg.Cache == nil || cfg.WOM != nil {
				t.Error("WCPCM config wrong")
			}
		}
	}
	if _, err := NewSystem(Arch(9), smallOptions()); err == nil {
		t.Error("accepted unknown architecture")
	}
}

// TestZeroOptionsDefaultToPaper: a zero Options must produce the §5 setup.
func TestZeroOptionsDefaultToPaper(t *testing.T) {
	s, err := NewSystem(Refresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Geometry != pcm.DefaultGeometry() {
		t.Error("geometry did not default")
	}
	if cfg.Timing != pcm.DefaultTiming() {
		t.Error("timing did not default")
	}
	if cfg.WOM.Rewrites != 2 {
		t.Errorf("rewrites = %d, want 2", cfg.WOM.Rewrites)
	}
}

func TestMemoryOverhead(t *testing.T) {
	mk := func(a Arch) *System {
		s, err := NewSystem(a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if got := mk(Baseline).MemoryOverhead(0.5); got != 0 {
		t.Errorf("baseline overhead = %v", got)
	}
	if got := mk(WOMCode).MemoryOverhead(0.5); got != 0.5 {
		t.Errorf("WOM overhead = %v", got)
	}
	// The §4 claim: 1.5/32 = 4.6875 % ≈ 4.7 %.
	if got := mk(WCPCM).MemoryOverhead(0.5); math.Abs(got-0.046875) > 1e-12 {
		t.Errorf("WCPCM overhead = %v, want 0.046875", got)
	}
}

// TestSystemsReproduceOrdering is the miniature Fig. 5 shape check: on a
// rewrite-friendly workload, every WOM architecture beats baseline on write
// latency, and PCM-refresh is the best. The embedded qsort profile keeps
// per-rank traffic low enough that the 2-rank test geometry does not
// bottleneck the single WOM-cache array (the full-geometry experiment in
// internal/sim uses the paper's 16 ranks).
func TestSystemsReproduceOrdering(t *testing.T) {
	p, err := workload.ProfileByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := workload.Generate(p, smallGeometry(), 17, 20000)
	if err != nil {
		t.Fatal(err)
	}
	means := map[Arch]float64{}
	for _, a := range Arches() {
		s, err := NewSystem(a, smallOptions())
		if err != nil {
			t.Fatal(err)
		}
		run, err := s.SimulateRecords(recs)
		if err != nil {
			t.Fatal(err)
		}
		means[a] = run.WriteLatency.Mean()
	}
	if !(means[Refresh] < means[WOMCode] && means[WOMCode] < means[Baseline]) {
		t.Errorf("write latency ordering violated: refresh %.1f, wom %.1f, base %.1f",
			means[Refresh], means[WOMCode], means[Baseline])
	}
	if means[WCPCM] >= means[Baseline] {
		t.Errorf("WCPCM %.1f not better than baseline %.1f", means[WCPCM], means[Baseline])
	}
}

// TestSystemReusable: Simulate twice on one System gives identical results.
func TestSystemReusable(t *testing.T) {
	p, _ := workload.ProfileByName("qsort")
	recs, err := workload.Generate(p, smallGeometry(), 3, 2000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(WCPCM, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.SimulateRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SimulateRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if a.WriteLatency.Mean() != b.WriteLatency.Mean() || a.CacheHits != b.CacheHits {
		t.Error("System.Simulate not reusable/deterministic")
	}
}

func TestSystemHiddenPageOption(t *testing.T) {
	o := smallOptions()
	o.Organization = memctrl.HiddenPage
	o.FreshArrays = true // factory-erased: the cold write is in budget
	s, err := NewSystem(WOMCode, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().WOM.Org != memctrl.HiddenPage {
		t.Error("organization option not applied")
	}
	recs := []trace.Record{{Op: trace.Write, Addr: 0, Time: 0}}
	run, err := s.SimulateRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Activation 27 + fast program 40 + column 15 + burst 5 + hidden-page
	// burst 5.
	if run.WriteLatency.Mean() != 92 {
		t.Errorf("hidden-page write latency = %v, want 92", run.WriteLatency.Mean())
	}
}
