package core

import (
	"bytes"
	"math/rand"
	"testing"

	"womcpcm/internal/pcm"
	"womcpcm/internal/womcode"
)

func funcGeometry() pcm.Geometry {
	// 2 ranks × 2 banks × 16 rows of 128 bytes: small enough to sweep.
	return pcm.Geometry{Ranks: 2, BanksPerRank: 2, RowsPerBank: 16, ColsPerRow: 16, BitsPerCol: 8, Devices: 8}
}

func newFunc(t *testing.T, arch Arch) *FunctionalMemory {
	t.Helper()
	m, err := NewFunctionalMemory(arch, funcGeometry(), womcode.InvRS223())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFunctionalRejectsBadSetup(t *testing.T) {
	if _, err := NewFunctionalMemory(WOMCode, funcGeometry(), womcode.RS223()); err == nil {
		t.Error("accepted a non-inverted code for a WOM architecture")
	}
	if _, err := NewFunctionalMemory(Arch(7), funcGeometry(), womcode.InvRS223()); err == nil {
		t.Error("accepted unknown architecture")
	}
	if _, err := NewFunctionalMemory(Baseline, pcm.Geometry{}, womcode.InvRS223()); err == nil {
		t.Error("accepted invalid geometry")
	}
}

// TestFunctionalReadYourWrites: every architecture returns exactly what was
// stored, across rewrites and row sharing.
func TestFunctionalReadYourWrites(t *testing.T) {
	for _, arch := range Arches() {
		m := newFunc(t, arch)
		rng := rand.New(rand.NewSource(int64(arch)))
		ref := map[uint64]byte{}
		for i := 0; i < 300; i++ {
			addr := uint64(rng.Intn(4096))
			n := 1 + rng.Intn(16)
			// Clamp to the row: rows are 128 bytes and addresses wrap at 4 KiB.
			if rem := 128 - int(addr%128); n > rem {
				n = rem
			}
			data := make([]byte, n)
			rng.Read(data)
			if _, err := m.Write(addr, data); err != nil {
				t.Fatalf("%s: write %d: %v", arch, i, err)
			}
			for j, b := range data {
				ref[addr+uint64(j)] = b
			}
			// Occasionally read back a random previously written byte.
			probe := addr + uint64(rng.Intn(n))
			got, err := m.Read(probe, 1)
			if err != nil {
				t.Fatalf("%s: read: %v", arch, err)
			}
			if got[0] != ref[probe] {
				t.Fatalf("%s: read %#x = %#x, want %#x", arch, probe, got[0], ref[probe])
			}
		}
		// Full sweep at the end.
		for addr, want := range ref {
			got, err := m.Read(addr, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != want {
				t.Errorf("%s: final read %#x = %#x, want %#x", arch, addr, got[0], want)
			}
		}
	}
}

// TestFunctionalAlphaPattern: the WOM architecture's writes follow
// fast, fast, α, fast, α on one row — and the fast ones truly perform zero
// SET transitions (enforced by pcm.Array's ResetOnly mode).
func TestFunctionalAlphaPattern(t *testing.T) {
	m := newFunc(t, WOMCode)
	wantAlpha := []bool{false, false, true, false, true}
	for i, want := range wantAlpha {
		data := []byte{byte(i + 1), byte(i * 3)}
		res, err := m.Write(64, data)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if res.Alpha != want {
			t.Errorf("write %d: alpha = %v, want %v", i, res.Alpha, want)
		}
		if !res.Alpha && res.Sets != 0 {
			t.Errorf("write %d: fast write performed %d SETs", i, res.Sets)
		}
		got, err := m.Read(64, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("write %d: read back %x, want %x", i, got, data)
		}
	}
}

// TestFunctionalBaselineAlwaysAlpha: conventional PCM writes always count
// as SET-class.
func TestFunctionalBaselineAlwaysAlpha(t *testing.T) {
	m := newFunc(t, Baseline)
	for i := 0; i < 3; i++ {
		res, err := m.Write(0, []byte{0xff})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Alpha {
			t.Errorf("write %d: baseline write not SET-class", i)
		}
	}
}

// TestFunctionalRefresh: refreshing at-limit rows makes the next write fast
// again and preserves the data.
func TestFunctionalRefresh(t *testing.T) {
	m := newFunc(t, Refresh)
	if _, err := m.Write(128, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write(128, []byte{0xBB}); err != nil {
		t.Fatal(err)
	}
	if m.AtLimitRows() != 1 {
		t.Fatalf("at-limit rows = %d, want 1", m.AtLimitRows())
	}
	n, err := m.RefreshAtLimit(-1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || m.AtLimitRows() != 0 {
		t.Fatalf("refreshed %d rows, %d still at limit", n, m.AtLimitRows())
	}
	got, err := m.Read(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xBB {
		t.Errorf("refresh corrupted data: %#x", got[0])
	}
	res, err := m.Write(128, []byte{0xCC})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alpha {
		t.Error("write after refresh was an α-write")
	}
}

// TestFunctionalRefreshBudget: maxRows bounds the work.
func TestFunctionalRefreshBudget(t *testing.T) {
	m := newFunc(t, Refresh)
	for row := 0; row < 3; row++ {
		addr := uint64(row * 128 * 4) // distinct rows (4 banks per row sweep)
		for i := 0; i < 2; i++ {
			if _, err := m.Write(addr, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if m.AtLimitRows() != 3 {
		t.Fatalf("at-limit rows = %d, want 3", m.AtLimitRows())
	}
	n, err := m.RefreshAtLimit(2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || m.AtLimitRows() != 1 {
		t.Errorf("refreshed %d, %d remain; want 2, 1", n, m.AtLimitRows())
	}
}

// TestFunctionalWCPCMProtocol: hit/miss/victim flow preserves data across
// the cache and main arrays.
func TestFunctionalWCPCMProtocol(t *testing.T) {
	m := newFunc(t, WCPCM)
	g := funcGeometry()
	mapper, err := pcm.NewAddrMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	a1 := mapper.Unmap(pcm.Location{Rank: 0, Bank: 0, Row: 3})
	a2 := mapper.Unmap(pcm.Location{Rank: 0, Bank: 1, Row: 3}) // same cache row, different tag

	res, err := m.Write(a1, []byte{0x11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || res.CacheVictim {
		t.Errorf("first write: %+v, want cold hit", res)
	}
	res, err = m.Write(a2, []byte{0x22})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit || !res.CacheVictim {
		t.Errorf("conflicting write: %+v, want victim eviction", res)
	}
	// Both values must read back: a1 now from main memory, a2 from cache.
	if got, _ := m.Read(a1, 1); got[0] != 0x11 {
		t.Errorf("evicted row read = %#x, want 0x11", got[0])
	}
	if got, _ := m.Read(a2, 1); got[0] != 0x22 {
		t.Errorf("cached row read = %#x, want 0x22", got[0])
	}
}

// TestFunctionalRowBoundary: accesses may not cross rows.
func TestFunctionalRowBoundary(t *testing.T) {
	m := newFunc(t, Baseline)
	if _, err := m.Write(120, make([]byte, 16)); err == nil {
		t.Error("accepted a row-crossing write")
	}
	if _, err := m.Read(120, 16); err == nil {
		t.Error("accepted a row-crossing read")
	}
}

// TestFunctionalWear: endurance counters move and SET ops stay low for
// in-budget writes.
func TestFunctionalWear(t *testing.T) {
	m := newFunc(t, WOMCode)
	if _, err := m.Write(0, []byte{0xFF, 0xEE}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Write(0, []byte{0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	w := m.Wear()
	if w.TotalWrites != 2 || w.TouchedRows != 1 {
		t.Errorf("wear = %+v", w)
	}
	if w.SetOps != 0 {
		t.Errorf("in-budget writes performed %d SETs", w.SetOps)
	}
	if w.ResetOps == 0 {
		t.Error("no RESETs recorded")
	}
}

// TestFunctionalParityCode: the functional model works with a different
// (higher-k) inverted code, per §2.2's claim that any WOM-code plugs in.
func TestFunctionalParityCode(t *testing.T) {
	m, err := NewFunctionalMemory(WOMCode, funcGeometry(), womcode.Invert(womcode.Parity(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Parity(4): k = 4 writes per row before the α.
	for i := 0; i < 4; i++ {
		res, err := m.Write(0, []byte{byte(i)})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if res.Alpha {
			t.Errorf("write %d: α before the k=4 budget", i)
		}
	}
	res, err := m.Write(0, []byte{9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Alpha {
		t.Error("fifth write was not an α-write")
	}
	if got, _ := m.Read(0, 1); got[0] != 9 {
		t.Errorf("read = %d, want 9", got[0])
	}
}

// TestFunctionalRefreshInterleavedFuzz: random writes and reads with
// RefreshAtLimit interleaved — data must always match a flat reference
// model, and refreshed rows must accept a fast write afterwards.
func TestFunctionalRefreshInterleavedFuzz(t *testing.T) {
	m := newFunc(t, Refresh)
	rng := rand.New(rand.NewSource(99))
	ref := map[uint64]byte{}
	for i := 0; i < 600; i++ {
		switch rng.Intn(10) {
		case 0, 1: // refresh a bounded batch
			if _, err := m.RefreshAtLimit(rng.Intn(4)); err != nil {
				t.Fatal(err)
			}
		case 2, 3, 4: // read back a known byte
			if len(ref) == 0 {
				continue
			}
			var addr uint64
			for a := range ref {
				addr = a
				break
			}
			got, err := m.Read(addr, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != ref[addr] {
				t.Fatalf("step %d: read %#x = %#x, want %#x", i, addr, got[0], ref[addr])
			}
		default: // write
			addr := uint64(rng.Intn(2048)) &^ 1
			n := 1 + rng.Intn(8)
			if rem := 128 - int(addr%128); n > rem {
				n = rem
			}
			data := make([]byte, n)
			rng.Read(data)
			if _, err := m.Write(addr, data); err != nil {
				t.Fatal(err)
			}
			for j, b := range data {
				ref[addr+uint64(j)] = b
			}
		}
	}
	// Drain all at-limit rows and verify every byte survived.
	if _, err := m.RefreshAtLimit(-1); err != nil {
		t.Fatal(err)
	}
	if m.AtLimitRows() != 0 {
		t.Errorf("%d rows still at limit after full refresh", m.AtLimitRows())
	}
	for addr, want := range ref {
		got, err := m.Read(addr, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want {
			t.Errorf("final read %#x = %#x, want %#x", addr, got[0], want)
		}
	}
}
