package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// TenantMix is one tenant's slice of the offered load.
type TenantMix struct {
	// Name is the tenant to bill submissions to (JobRequest.Tenant).
	Name string `json:"name"`
	// Share is this tenant's fraction of arrivals; shares are normalized
	// over their sum, so 2:3:5 and 0.2:0.3:0.5 mean the same thing.
	Share float64 `json:"share"`
	// Experiment and Params form the submitted job body.
	Experiment string          `json:"experiment"`
	Params     json.RawMessage `json:"params,omitempty"`
	// TimeoutMs bounds each submitted job; 0 uses the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// SLOMs is the tenant's queue-wait SLO target: the report marks the
	// tenant attained when its observed p95 queue wait is ≤ SLOMs.
	// 0 = no SLO asserted.
	SLOMs float64 `json:"slo_ms,omitempty"`
}

// Mix is the loadgen input document: how long to offer load, under which
// arrival process, split across which tenants.
type Mix struct {
	DurationS float64     `json:"duration_s"`
	Arrival   ArrivalSpec `json:"arrival"`
	Tenants   []TenantMix `json:"tenants"`
}

// Validate reports the first error in the mix document.
func (m Mix) Validate() error {
	if m.DurationS <= 0 {
		return fmt.Errorf("loadgen: duration_s must be > 0")
	}
	if len(m.Tenants) == 0 {
		return fmt.Errorf("loadgen: mix needs at least one tenant")
	}
	seen := make(map[string]bool, len(m.Tenants))
	total := 0.0
	for _, t := range m.Tenants {
		if t.Name == "" {
			return fmt.Errorf("loadgen: tenant with empty name")
		}
		if seen[t.Name] {
			return fmt.Errorf("loadgen: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Share <= 0 {
			return fmt.Errorf("loadgen: tenant %q: share must be > 0", t.Name)
		}
		if t.Experiment == "" {
			return fmt.Errorf("loadgen: tenant %q: experiment is required", t.Name)
		}
		total += t.Share
	}
	if total <= 0 {
		return fmt.Errorf("loadgen: tenant shares sum to 0")
	}
	if _, err := m.Arrival.Build(); err != nil {
		return err
	}
	return nil
}

// ParseMix decodes and validates a mix document, rejecting unknown fields.
func ParseMix(data []byte) (Mix, error) {
	var m Mix
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Mix{}, fmt.Errorf("loadgen: decoding mix: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Mix{}, err
	}
	return m, nil
}

// LoadMix reads and parses a mix file.
func LoadMix(path string) (Mix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Mix{}, fmt.Errorf("loadgen: reading mix: %w", err)
	}
	return ParseMix(data)
}

// Arrival is one scheduled submission: when it fires and for which tenant.
type Arrival struct {
	At     time.Duration
	Tenant *TenantMix
}

// Schedule precomputes the full run deterministically from the arrival
// seed: arrival offsets from one rng stream, tenant attribution from a
// second (seed+1), so changing the tenant mix does not perturb the arrival
// times and vice versa.
func (m Mix) Schedule() ([]Arrival, error) {
	proc, err := m.Arrival.Build()
	if err != nil {
		return nil, err
	}
	d := time.Duration(m.DurationS * float64(time.Second))
	times := proc.Arrivals(d, rand.New(rand.NewSource(m.Arrival.Seed)))
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	total := 0.0
	for _, t := range m.Tenants {
		total += t.Share
	}
	pick := rand.New(rand.NewSource(m.Arrival.Seed + 1))
	out := make([]Arrival, len(times))
	for i, at := range times {
		r := pick.Float64() * total
		idx := len(m.Tenants) - 1 // fallback absorbs rounding at r≈total
		acc := 0.0
		for j := range m.Tenants {
			acc += m.Tenants[j].Share
			if r < acc {
				idx = j
				break
			}
		}
		out[i] = Arrival{At: at, Tenant: &m.Tenants[idx]}
	}
	return out, nil
}
