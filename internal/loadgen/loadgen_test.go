package loadgen

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func testMix() Mix {
	return Mix{
		DurationS: 10,
		Arrival:   ArrivalSpec{Process: "poisson", RatePerS: 50, Seed: 42},
		Tenants: []TenantMix{
			{Name: "interactive", Share: 0.2, Experiment: "fig5", SLOMs: 400},
			{Name: "batch", Share: 0.3, Experiment: "fig5"},
			{Name: "best-effort", Share: 0.5, Experiment: "fig5"},
		},
	}
}

// TestScheduleDeterministic: a fixed seed reproduces the exact arrival
// schedule — times and tenant attribution — and a different seed does not.
func TestScheduleDeterministic(t *testing.T) {
	mix := testMix()
	a, err := mix.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mix.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Tenant.Name != b[i].Tenant.Name {
			t.Fatalf("arrival %d differs across runs: %v/%s vs %v/%s",
				i, a[i].At, a[i].Tenant.Name, b[i].At, b[i].Tenant.Name)
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("arrival %d out of order: %v after %v", i, a[i].At, a[i-1].At)
		}
		if a[i].At < 0 || a[i].At >= 10*time.Second {
			t.Fatalf("arrival %d outside the run window: %v", i, a[i].At)
		}
	}
	mix.Arrival.Seed = 43
	c, err := mix.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].At != c[i].At {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("changing the seed did not change the schedule")
	}
}

// TestScheduleSharesAndRate: over many arrivals, the tenant split tracks the
// shares and the arrival count tracks rate×duration.
func TestScheduleSharesAndRate(t *testing.T) {
	mix := testMix()
	mix.DurationS = 40 // 2000 expected arrivals
	schedule, err := mix.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	want := mix.Arrival.RatePerS * mix.DurationS
	if got := float64(len(schedule)); math.Abs(got-want) > 0.2*want {
		t.Fatalf("arrivals = %g, want ≈ %g (Poisson at %g/s over %gs)",
			got, want, mix.Arrival.RatePerS, mix.DurationS)
	}
	counts := map[string]int{}
	for _, a := range schedule {
		counts[a.Tenant.Name]++
	}
	for _, tm := range mix.Tenants {
		got := float64(counts[tm.Name]) / float64(len(schedule))
		if math.Abs(got-tm.Share) > 0.05 {
			t.Errorf("tenant %s share = %.3f, want ≈ %.3f", tm.Name, got, tm.Share)
		}
	}
}

// TestMMPPBurstsRaiseRate: the two-state process offers more load than a
// pure calm-rate Poisson and less than a pure burst-rate one.
func TestMMPPBurstsRaiseRate(t *testing.T) {
	p := MMPP2{RatePerS: 50, BurstRatePerS: 400, MeanCalmS: 2, MeanBurstS: 2}
	rng := rand.New(rand.NewSource(7))
	n := len(p.Arrivals(60*time.Second, rng))
	lo, hi := 50*60, 400*60
	if n <= lo || n >= hi {
		t.Fatalf("mmpp arrivals = %d over 60s, want within (%d, %d)", n, lo, hi)
	}
}

// TestDiurnalStaysNearMean: thinning preserves the period-mean rate.
func TestDiurnalStaysNearMean(t *testing.T) {
	p := Diurnal{RatePerS: 100, Amplitude: 0.8, PeriodS: 10}
	rng := rand.New(rand.NewSource(7))
	n := float64(len(p.Arrivals(60*time.Second, rng)))
	want := 100.0 * 60
	if math.Abs(n-want) > 0.15*want {
		t.Fatalf("diurnal arrivals = %g over 60s, want ≈ %g", n, want)
	}
}

// TestArrivalSpecValidation rejects incomplete or unknown processes.
func TestArrivalSpecValidation(t *testing.T) {
	bad := []ArrivalSpec{
		{Process: "poisson"},               // no rate
		{Process: "mmpp", RatePerS: 10},    // no burst params
		{Process: "diurnal", RatePerS: 10}, // no period
		{Process: "diurnal", RatePerS: 10, PeriodS: 5, Amplitude: 2},
		{Process: "weibull", RatePerS: 10}, // unknown
	}
	for _, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("spec %+v built without error", s)
		}
	}
	if _, err := (ArrivalSpec{RatePerS: 1}).Build(); err != nil {
		t.Errorf("empty process should default to poisson: %v", err)
	}
}

// TestParseMixRejects: malformed documents fail loudly.
func TestParseMixRejects(t *testing.T) {
	bad := map[string]string{
		"unknown field": `{"duration_s":1,"arrival":{"rate_per_s":1},"tenants":[{"name":"a","share":1,"experiment":"fig5"}],"oops":1}`,
		"no tenants":    `{"duration_s":1,"arrival":{"rate_per_s":1},"tenants":[]}`,
		"dup tenant":    `{"duration_s":1,"arrival":{"rate_per_s":1},"tenants":[{"name":"a","share":1,"experiment":"fig5"},{"name":"a","share":1,"experiment":"fig5"}]}`,
		"no experiment": `{"duration_s":1,"arrival":{"rate_per_s":1},"tenants":[{"name":"a","share":1}]}`,
		"zero share":    `{"duration_s":1,"arrival":{"rate_per_s":1},"tenants":[{"name":"a","share":0,"experiment":"fig5"}]}`,
		"zero duration": `{"duration_s":0,"arrival":{"rate_per_s":1},"tenants":[{"name":"a","share":1,"experiment":"fig5"}]}`,
	}
	for name, doc := range bad {
		if _, err := ParseMix([]byte(doc)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// TestQuantilesExact pins the order statistics on a known sample.
func TestQuantilesExact(t *testing.T) {
	if q := quantiles(nil); q != (Quantiles{}) {
		t.Errorf("empty sample quantiles = %+v, want zero", q)
	}
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(99 - i) // reversed: quantiles must sort
	}
	q := quantiles(ms)
	if q.P50 != 49 || q.P95 != 94 || q.P99 != 98 || q.Max != 99 {
		t.Errorf("quantiles = %+v, want p50 49, p95 94, p99 98, max 99", q)
	}
}

// TestShedShareVacuous: no sheds means every assertion passes; with sheds
// the share is the tenant's fraction.
func TestShedShareVacuous(t *testing.T) {
	r := &Report{}
	if got := r.ShedShare("anyone"); got != 1 {
		t.Errorf("ShedShare with no sheds = %g, want 1", got)
	}
	r = &Report{Shed: 10, Tenants: []TenantReport{{Name: "be", Shed: 9}, {Name: "int", Shed: 1}}}
	if got := r.ShedShare("be"); got != 0.9 {
		t.Errorf("ShedShare(be) = %g, want 0.9", got)
	}
	if got := r.ShedShare("absent"); got != 0 {
		t.Errorf("ShedShare(absent) = %g, want 0", got)
	}
}
