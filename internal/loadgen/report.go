package loadgen

import "sort"

// Schema identifies the report document format.
const Schema = "womcpcm-loadgen-v1"

// Quantiles are exact order statistics over one observed distribution,
// in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// quantiles computes exact order statistics from the raw sample (sorted in
// place). Zero value when no samples.
func quantiles(ms []float64) Quantiles {
	if len(ms) == 0 {
		return Quantiles{}
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return Quantiles{
		P50: at(0.50), P90: at(0.90), P95: at(0.95), P99: at(0.99),
		Max: ms[len(ms)-1],
	}
}

// TenantReport is one tenant's share of the run.
type TenantReport struct {
	Name string `json:"name"`
	// Offered counts scheduled arrivals; Admitted those the service
	// accepted (202); Shed those rejected 429, broken down by the server's
	// shed reason; SubmitErrors everything else that failed at submission
	// (connection errors, 5xx).
	Offered      int            `json:"offered"`
	Admitted     int            `json:"admitted"`
	Shed         int            `json:"shed"`
	ShedReasons  map[string]int `json:"shed_reasons,omitempty"`
	SubmitErrors int            `json:"submit_errors,omitempty"`
	// Completed/Failed/Unresolved partition the admitted jobs: reached a
	// successful terminal state, a failed/canceled one, or still pending
	// when the drain timeout expired.
	Completed  int `json:"completed"`
	Failed     int `json:"failed,omitempty"`
	Unresolved int `json:"unresolved,omitempty"`
	// QueueWaitMs is submitted→started and LatencyMs submitted→finished,
	// both from server-reported timestamps of completed jobs.
	QueueWaitMs Quantiles `json:"queue_wait_ms"`
	LatencyMs   Quantiles `json:"latency_ms"`
	// SLOMs echoes the mix target; SLOAttained is p95 queue wait ≤ SLOMs
	// (absent when the mix declares no SLO).
	SLOMs       float64 `json:"slo_ms,omitempty"`
	SLOAttained *bool   `json:"slo_attained,omitempty"`
}

// Report is the womcpcm-loadgen-v1 output document.
type Report struct {
	Schema    string      `json:"schema"`
	BaseURL   string      `json:"base_url"`
	DurationS float64     `json:"duration_s"`
	Arrival   ArrivalSpec `json:"arrival"`

	// Offered counts scheduled arrivals; OfferedPerS is Offered/Duration.
	// AttainedPerS is completions per second — under overload it plateaus
	// at service capacity while OfferedPerS keeps climbing; the gap is the
	// shed (and failed) load.
	Offered      int     `json:"offered"`
	Admitted     int     `json:"admitted"`
	Shed         int     `json:"shed"`
	Completed    int     `json:"completed"`
	Failed       int     `json:"failed,omitempty"`
	Unresolved   int     `json:"unresolved,omitempty"`
	OfferedPerS  float64 `json:"offered_per_s"`
	AttainedPerS float64 `json:"attained_per_s"`

	Tenants []TenantReport `json:"tenants"`
}

// ShedShare reports the named tenant's fraction of all sheds in the run;
// vacuously 1 when nothing was shed (an un-overloaded run cannot fail a
// shed-share assertion).
func (r *Report) ShedShare(tenant string) float64 {
	if r.Shed == 0 {
		return 1
	}
	for _, t := range r.Tenants {
		if t.Name == tenant {
			return float64(t.Shed) / float64(r.Shed)
		}
	}
	return 0
}

// Tenant returns the named tenant's report, nil when absent.
func (r *Report) Tenant(name string) *TenantReport {
	for i := range r.Tenants {
		if r.Tenants[i].Name == name {
			return &r.Tenants[i]
		}
	}
	return nil
}
