package loadgen_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"womcpcm/internal/engine"
	"womcpcm/internal/loadgen"
	"womcpcm/internal/sched"
	"womcpcm/internal/sim"
)

// TestMMPPOverloadSLO is the acceptance run for multi-tenant scheduling: a
// 3-tenant mix under a bursty MMPP arrival process whose bursts (400/s)
// overflow a service with ~200 jobs/s capacity. The scheduler must hold the
// interactive tenant's p95 queue-wait SLO while graduated shedding pushes
// nearly all rejections onto the best-effort tenant.
func TestMMPPOverloadSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load run")
	}

	// Capacity: 2 workers × 10ms per job ≈ 200 jobs/s.
	scheduler := sched.New(sched.Config{
		Tenants: []sched.TenantClass{
			{Name: "interactive", Weight: 8, Priority: 0, DeadlineMs: 400},
			{Name: "batch", Weight: 3, Priority: 1, DeadlineMs: 5000},
			{Name: "best-effort", Weight: 1, Priority: 2},
		},
		DefaultTenant: "best-effort",
		MaxDepth:      120, // thresholds: interactive 120, batch 80, best-effort 40
	})
	mgr := engine.New(engine.Config{
		Workers: 2,
		Queue:   engine.NewTenantQueue(scheduler),
		Execute: func(ctx context.Context, job *engine.Job) (*sim.Result, error) {
			select {
			case <-time.After(10 * time.Millisecond):
				return &sim.Result{Experiment: job.Experiment()}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx) //nolint:errcheck
	}()
	ts := httptest.NewServer(engine.NewServer(mgr))
	defer ts.Close()

	params := json.RawMessage(`{"requests":20000,"seed":7,"bench":["qsort"],"ranks":4}`)
	mix := loadgen.Mix{
		DurationS: 8,
		Arrival: loadgen.ArrivalSpec{
			Process:       "mmpp",
			RatePerS:      100, // calm: under capacity
			BurstRatePerS: 400, // burst: 2× capacity
			MeanCalmS:     1.5,
			MeanBurstS:    1.5,
			Seed:          11,
		},
		// Shares keep burst-time interactive+batch demand (0.3 × 400 =
		// 120/s) below capacity even on slow machines (e.g. under -race),
		// so best-effort is always the tenant the graduated thresholds
		// push the overflow onto.
		Tenants: []loadgen.TenantMix{
			{Name: "interactive", Share: 0.15, Experiment: "fig5", Params: params, SLOMs: 400},
			{Name: "batch", Share: 0.15, Experiment: "fig5", Params: params},
			{Name: "best-effort", Share: 0.7, Experiment: "fig5", Params: params},
		},
	}
	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:      ts.URL,
		Mix:          mix,
		PollInterval: 10 * time.Millisecond,
		DrainTimeout: 30 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Schema != loadgen.Schema {
		t.Errorf("schema = %q, want %q", rep.Schema, loadgen.Schema)
	}
	if rep.Offered == 0 || rep.Admitted == 0 {
		t.Fatalf("empty run: offered %d admitted %d", rep.Offered, rep.Admitted)
	}
	// The bursts must actually overload the service — otherwise the shed
	// assertions below are vacuous and the run proves nothing.
	if rep.Shed == 0 {
		t.Fatalf("no sheds: offered %.0f/s against ~200/s capacity did not overload", rep.OfferedPerS)
	}
	if rep.Unresolved != 0 {
		t.Errorf("%d admitted jobs never reached a terminal state", rep.Unresolved)
	}
	for _, tr := range rep.Tenants {
		if tr.SubmitErrors != 0 {
			t.Errorf("tenant %s: %d submit errors", tr.Name, tr.SubmitErrors)
		}
		if tr.Failed != 0 {
			t.Errorf("tenant %s: %d failed jobs", tr.Name, tr.Failed)
		}
	}

	// Acceptance: the interactive SLO holds through the overload...
	inter := rep.Tenant("interactive")
	if inter == nil || inter.SLOAttained == nil {
		t.Fatalf("interactive tenant report incomplete: %+v", inter)
	}
	if !*inter.SLOAttained {
		t.Errorf("interactive SLO missed: p95 queue wait %.1fms > %.0fms (completed %d)",
			inter.QueueWaitMs.P95, inter.SLOMs, inter.Completed)
	}
	// ...and best-effort absorbs at least 90%% of the sheds.
	if share := rep.ShedShare("best-effort"); share < 0.9 {
		t.Errorf("best-effort absorbed %.1f%% of %d sheds, want ≥ 90%%", share*100, rep.Shed)
	}
	// Interactive itself must never have been shed at these depths.
	if inter.Shed > 0 {
		t.Errorf("interactive was shed %d times", inter.Shed)
	}
	t.Logf("offered %.0f/s attained %.0f/s; interactive p95 wait %.1fms; sheds %d (best-effort %.0f%%)",
		rep.OfferedPerS, rep.AttainedPerS, inter.QueueWaitMs.P95, rep.Shed,
		rep.ShedShare("best-effort")*100)
}
