package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Options configures one load-generation run.
type Options struct {
	// BaseURL is the womd instance under load, e.g. http://localhost:8080.
	BaseURL string
	// Mix is the validated input document (LoadMix).
	Mix Mix
	// Client issues the HTTP requests; nil uses a 10s-timeout default.
	Client *http.Client
	// PollInterval spaces job-status polls (default 25ms).
	PollInterval time.Duration
	// DrainTimeout bounds how long after the last arrival the run waits
	// for admitted jobs to reach a terminal state (default 60s); jobs
	// still pending then count as unresolved.
	DrainTimeout time.Duration
	// Logf receives one-line progress messages; nil discards them.
	Logf func(format string, args ...any)
}

// outcome is one arrival's fate, filled in by its firing goroutine.
type outcome struct {
	tenant      string
	admitted    bool
	shedReason  string // non-empty = rejected 429
	submitErr   bool   // transport failure or unexpected status
	state       string // terminal job state, "" while unresolved
	queueWaitMs float64
	latencyMs   float64
}

// jobStatus is the slice of a JobView the driver reads. The server emits
// RFC3339Nano timestamps, which encoding/json parses into time.Time.
type jobStatus struct {
	ID          string    `json:"id"`
	State       string    `json:"state"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
}

func terminal(state string) bool {
	return state == "succeeded" || state == "failed" || state == "canceled"
}

// Run executes the mix against BaseURL: arrivals fire at their precomputed
// offsets on the wall clock — never gated on earlier completions (open
// loop) — and each is tracked to a terminal state by polling. Run returns
// the aggregated report; ctx cancellation aborts the run with an error.
func Run(ctx context.Context, opts Options) (*Report, error) {
	mix := opts.Mix
	schedule, err := mix.Schedule()
	if err != nil {
		return nil, err
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	poll := opts.PollInterval
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	drain := opts.DrainTimeout
	if drain <= 0 {
		drain = 60 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	base := strings.TrimRight(opts.BaseURL, "/")

	logf("loadgen: %d arrivals over %.1fs (%s, %.1f/s offered) against %s",
		len(schedule), mix.DurationS, orDefault(mix.Arrival.Process, "poisson"),
		float64(len(schedule))/mix.DurationS, base)

	results := make([]outcome, len(schedule))
	// Pollers stop at the drain deadline; the firing schedule itself only
	// stops on ctx cancellation.
	deadline := time.Now().Add(time.Duration(mix.DurationS*float64(time.Second)) + drain)
	runCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	var wg sync.WaitGroup
	start := time.Now()
	for i, a := range schedule {
		if !sleepUntil(ctx, start.Add(a.At)) {
			return nil, ctx.Err()
		}
		wg.Add(1)
		go func(i int, a Arrival) {
			defer wg.Done()
			results[i] = fire(runCtx, client, base, a.Tenant, poll)
		}(i, a)
	}
	logf("loadgen: all arrivals fired; draining up to %s", drain)
	wg.Wait()

	rep := buildReport(base, mix, results)
	logf("loadgen: offered %d admitted %d shed %d completed %d unresolved %d",
		rep.Offered, rep.Admitted, rep.Shed, rep.Completed, rep.Unresolved)
	return rep, nil
}

// sleepUntil waits for the wall-clock instant t; false when ctx ended
// first.
func sleepUntil(ctx context.Context, t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// fire submits one job and tracks it to a terminal state.
func fire(ctx context.Context, client *http.Client, base string, t *TenantMix, poll time.Duration) outcome {
	out := outcome{tenant: t.Name}
	body := map[string]any{"experiment": t.Experiment, "tenant": t.Name}
	if len(t.Params) > 0 {
		body["params"] = json.RawMessage(t.Params)
	}
	if t.TimeoutMs > 0 {
		body["timeout_ms"] = t.TimeoutMs
	}
	buf, _ := json.Marshal(body)
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/jobs", bytes.NewReader(buf))
	if err != nil {
		out.submitErr = true
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		out.submitErr = true
		return out
	}
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		// fall through to tracking
	case http.StatusTooManyRequests:
		var e struct {
			Reason string `json:"reason"`
		}
		json.Unmarshal(respBody, &e) //nolint:errcheck // absent reason → "unknown"
		out.shedReason = orDefault(e.Reason, "unknown")
		return out
	default:
		out.submitErr = true
		return out
	}
	var js jobStatus
	if err := json.Unmarshal(respBody, &js); err != nil || js.ID == "" {
		out.submitErr = true
		return out
	}
	out.admitted = true

	for !terminal(js.State) {
		if !sleepUntil(ctx, time.Now().Add(poll)) {
			return out // drain deadline hit: unresolved
		}
		req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+js.ID, nil)
		if err != nil {
			return out
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return out
			}
			continue // transient poll failure; the deadline bounds retries
		}
		pollBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			continue
		}
		if err := json.Unmarshal(pollBody, &js); err != nil {
			continue
		}
	}
	out.state = js.State
	if !js.StartedAt.IsZero() {
		out.queueWaitMs = js.StartedAt.Sub(js.SubmittedAt).Seconds() * 1e3
	}
	if !js.FinishedAt.IsZero() {
		out.latencyMs = js.FinishedAt.Sub(js.SubmittedAt).Seconds() * 1e3
	}
	return out
}

// buildReport aggregates per-arrival outcomes into the report document.
func buildReport(base string, mix Mix, results []outcome) *Report {
	rep := &Report{
		Schema:    Schema,
		BaseURL:   base,
		DurationS: mix.DurationS,
		Arrival:   mix.Arrival,
	}
	type agg struct {
		tr    TenantReport
		waits []float64
		lats  []float64
	}
	aggs := make(map[string]*agg, len(mix.Tenants))
	for _, t := range mix.Tenants {
		aggs[t.Name] = &agg{tr: TenantReport{Name: t.Name, SLOMs: t.SLOMs}}
	}
	for _, o := range results {
		a := aggs[o.tenant]
		a.tr.Offered++
		switch {
		case o.shedReason != "":
			a.tr.Shed++
			if a.tr.ShedReasons == nil {
				a.tr.ShedReasons = make(map[string]int)
			}
			a.tr.ShedReasons[o.shedReason]++
		case o.submitErr:
			a.tr.SubmitErrors++
		case o.admitted:
			a.tr.Admitted++
			switch o.state {
			case "succeeded":
				a.tr.Completed++
				a.waits = append(a.waits, o.queueWaitMs)
				a.lats = append(a.lats, o.latencyMs)
			case "":
				a.tr.Unresolved++
			default: // failed, canceled
				a.tr.Failed++
			}
		}
	}
	for _, t := range mix.Tenants {
		a := aggs[t.Name]
		a.tr.QueueWaitMs = quantiles(a.waits)
		a.tr.LatencyMs = quantiles(a.lats)
		if a.tr.SLOMs > 0 {
			attained := a.tr.Completed > 0 && a.tr.QueueWaitMs.P95 <= a.tr.SLOMs
			a.tr.SLOAttained = &attained
		}
		rep.Tenants = append(rep.Tenants, a.tr)
		rep.Offered += a.tr.Offered
		rep.Admitted += a.tr.Admitted
		rep.Shed += a.tr.Shed
		rep.Completed += a.tr.Completed
		rep.Failed += a.tr.Failed
		rep.Unresolved += a.tr.Unresolved
	}
	if mix.DurationS > 0 {
		rep.OfferedPerS = float64(rep.Offered) / mix.DurationS
		rep.AttainedPerS = float64(rep.Completed) / mix.DurationS
	}
	return rep
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
