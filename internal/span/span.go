// Package span is womd's lightweight distributed-tracing subsystem: trace
// and span identifiers with parent links, wall-clock start times paired
// with monotonic durations, typed attributes, a bounded per-process span
// buffer with deterministic head sampling, and W3C traceparent propagation
// over HTTP.
//
// The model is deliberately small. A trace is identified by a 128-bit id
// and covers one job's whole lifecycle across processes; a span is one
// timed operation inside it (admission, queue wait, dispatch RPC, worker
// execution, result store, SSE fan-out), linked to its parent by span id.
// Each process records its own spans into a Recorder — a fixed-capacity
// ring that evicts oldest-first, so tracing can stay always-on without
// unbounded memory. The keep/drop decision is made once per trace at its
// head (StartTrace) from a seeded hash of the trace id, and the decision
// rides the W3C sampled flag across process hops, so a trace is either
// recorded everywhere or nowhere and a fixed seed yields a fixed keep/drop
// sequence (testable determinism).
//
// Cluster workers ship their buffered spans back to the coordinator
// (internal/cluster), which merges them via Recorder.Ingest into one
// per-job trace served as Chrome trace-event JSON (ChromeTraceOf) —
// directly loadable in Perfetto, and rendered to an HTML waterfall by
// `womtool spans`. See DESIGN.md §14.
package span

import (
	"sync"
	"time"
)

// Context identifies a position in a trace: the trace id, the id of the
// current (parent-to-be) span, and whether the trace is being recorded.
// It is the unit of propagation — across goroutines via values, across
// processes via the W3C traceparent header (Traceparent / Parse).
type Context struct {
	// TraceID is 32 lowercase hex characters (128 bits), shared by every
	// span of the trace.
	TraceID string `json:"trace_id"`
	// SpanID is 16 lowercase hex characters (64 bits): the span that new
	// children should parent to.
	SpanID string `json:"span_id"`
	// Sampled is the head-sampling decision, made once when the trace
	// started and propagated unchanged — an unsampled trace records
	// nothing in any process.
	Sampled bool `json:"sampled"`
}

// Valid reports whether the context carries well-formed ids.
func (c Context) Valid() bool {
	return len(c.TraceID) == 32 && len(c.SpanID) == 16 &&
		isHex(c.TraceID) && isHex(c.SpanID) &&
		c.TraceID != zeroTraceID && c.SpanID != zeroSpanID
}

// Attrs carries a span's typed attributes. Values are set through the
// typed setters on Active (strings, int64s, float64s, bools); integer
// values larger than 2⁵³ lose precision across a JSON hop.
type Attrs map[string]any

// Span is one completed timed operation, the wire and storage form.
// StartNs is the wall clock (Unix nanoseconds, comparable across
// processes up to clock skew); DurNs was measured on the recording
// process's monotonic clock, so a span's duration is immune to wall-clock
// steps even though its placement is not.
type Span struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the parent span's id; empty for a trace's root span.
	Parent string `json:"parent_id,omitempty"`
	// Name says what the span timed: "job", "admission", "queue_wait",
	// "dispatch", "execute", "store", "sse_stream", ...
	Name string `json:"name"`
	// Service names the process that recorded the span (Recorder service):
	// "coordinator", a worker's fleet name, "womd" standalone.
	Service string `json:"service"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Attrs   Attrs  `json:"attrs,omitempty"`
}

// End returns the span's wall-clock end in Unix nanoseconds.
func (s Span) End() int64 { return s.StartNs + s.DurNs }

// Active is a started, not-yet-ended span. A nil *Active is a valid inert
// span: every method is a no-op and Context returns the zero Context, so
// call sites need no tracing-enabled checks. An Active for an unsampled
// trace still carries a valid Context (for propagation) but records
// nothing on End.
type Active struct {
	rec    *Recorder // nil: unsampled or tracing disabled
	ctx    Context
	parent string
	name   string
	start  time.Time // carries the monotonic reading for End's duration

	mu    sync.Mutex
	attrs Attrs
	ended bool
}

// Context returns the span's trace position, the parent for children and
// the source of the traceparent header. Zero for a nil span.
func (a *Active) Context() Context {
	if a == nil {
		return Context{}
	}
	return a.ctx
}

func (a *Active) set(k string, v any) {
	if a == nil || a.rec == nil {
		return
	}
	a.mu.Lock()
	if !a.ended {
		if a.attrs == nil {
			a.attrs = make(Attrs, 4)
		}
		a.attrs[k] = v
	}
	a.mu.Unlock()
}

// SetStr attaches a string attribute.
func (a *Active) SetStr(k, v string) { a.set(k, v) }

// SetInt attaches an int64 attribute.
func (a *Active) SetInt(k string, v int64) { a.set(k, v) }

// SetFloat attaches a float64 attribute.
func (a *Active) SetFloat(k string, v float64) { a.set(k, v) }

// SetBool attaches a bool attribute.
func (a *Active) SetBool(k string, v bool) { a.set(k, v) }

// End completes the span — duration from the monotonic clock — and hands
// it to the recorder. Idempotent; no-op for nil or unsampled spans.
func (a *Active) End() {
	if a == nil || a.rec == nil {
		return
	}
	a.mu.Lock()
	if a.ended {
		a.mu.Unlock()
		return
	}
	a.ended = true
	attrs := a.attrs
	a.mu.Unlock()
	a.rec.add(Span{
		TraceID: a.ctx.TraceID,
		SpanID:  a.ctx.SpanID,
		Parent:  a.parent,
		Name:    a.name,
		Service: a.rec.service,
		StartNs: a.start.UnixNano(),
		DurNs:   time.Since(a.start).Nanoseconds(),
		Attrs:   attrs,
	})
}

const (
	zeroTraceID = "00000000000000000000000000000000"
	zeroSpanID  = "0000000000000000"
)

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
