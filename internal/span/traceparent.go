package span

import (
	"net/http"
	"strings"
)

// Header is the W3C Trace Context propagation header name.
const Header = "traceparent"

// Traceparent encodes the context as a W3C traceparent header value:
// 00-<trace-id>-<span-id>-<flags>, flags 01 when sampled. Empty for an
// invalid context.
func (c Context) Traceparent() string {
	if !c.Valid() {
		return ""
	}
	flags := "00"
	if c.Sampled {
		flags = "01"
	}
	return "00-" + c.TraceID + "-" + c.SpanID + "-" + flags
}

// ParseTraceparent decodes a W3C traceparent value. Unknown versions are
// accepted if the version-00 prefix fields parse (per spec, forward
// compatibility); malformed values return ok=false.
func ParseTraceparent(v string) (Context, bool) {
	v = strings.TrimSpace(v)
	// version(2) - trace(32) - span(16) - flags(2) = 55 bytes minimum.
	if len(v) < 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return Context{}, false
	}
	version, tid, sid, flags := v[0:2], v[3:35], v[36:52], v[53:55]
	if !isHex(version) || version == "ff" {
		return Context{}, false
	}
	if version == "00" && len(v) != 55 {
		return Context{}, false
	}
	if len(v) > 55 && v[55] != '-' {
		return Context{}, false
	}
	if !isHex(tid) || !isHex(sid) || !isHex(flags) {
		return Context{}, false
	}
	c := Context{TraceID: tid, SpanID: sid, Sampled: flags[1]&1 == 1}
	if !c.Valid() {
		return Context{}, false
	}
	return c, true
}

// FromRequest extracts the trace context from an incoming request's
// traceparent header, if present and well-formed.
func FromRequest(r *http.Request) (Context, bool) {
	return ParseTraceparent(r.Header.Get(Header))
}

// Inject writes the context's traceparent header into h; no-op for an
// invalid context.
func (c Context) Inject(h http.Header) {
	if tp := c.Traceparent(); tp != "" {
		h.Set(Header, tp)
	}
}
