package span

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestBufferBounding(t *testing.T) {
	rec := New(Config{Capacity: 4, Seed: 7})
	root := rec.StartTrace("job")
	tc := root.Context()
	base := time.Now()
	for i := 0; i < 10; i++ {
		rec.Record(tc, fmt.Sprintf("step-%d", i), base.Add(time.Duration(i)*time.Millisecond), base.Add(time.Duration(i+1)*time.Millisecond), nil)
	}
	snap := rec.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("buffered %d spans, want capacity 4", len(snap))
	}
	// Oldest-first eviction: the survivors are the last four recorded.
	for i, s := range snap {
		want := fmt.Sprintf("step-%d", 6+i)
		if s.Name != want {
			t.Errorf("snapshot[%d] = %q, want %q", i, s.Name, want)
		}
	}
	var buf bytes.Buffer
	rec.WriteProm(&buf)
	out := buf.String()
	if !strings.Contains(out, "womd_spans_evicted_total 6") {
		t.Errorf("WriteProm missing eviction count:\n%s", out)
	}
	if !strings.Contains(out, "womd_spans_buffered 4") {
		t.Errorf("WriteProm missing buffered gauge:\n%s", out)
	}
}

func TestDeterministicHeadSampling(t *testing.T) {
	// Same seed ⇒ same trace ids and the same keep/drop sequence.
	decisions := func(seed uint64) []bool {
		rec := New(Config{SampleRate: 0.5, Seed: seed})
		out := make([]bool, 0, 64)
		for i := 0; i < 64; i++ {
			out = append(out, rec.StartTrace("job").Context().Sampled)
		}
		return out
	}
	a, b := decisions(42), decisions(42)
	kept := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically seeded recorders", i)
		}
		if a[i] {
			kept++
		}
	}
	if kept == 0 || kept == len(a) {
		t.Fatalf("rate 0.5 kept %d/%d traces; sampling is not discriminating", kept, len(a))
	}
	c := decisions(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("different seeds produced identical keep/drop sequences")
	}
}

func TestSamplingDecisionFollowsTraceID(t *testing.T) {
	// The decision is a pure function of (seed, trace id): a second
	// recorder with the same seed agrees on someone else's trace id.
	r1 := New(Config{SampleRate: 0.5, Seed: 9})
	r2 := New(Config{SampleRate: 0.5, Seed: 9, Service: "other"})
	for i := 0; i < 32; i++ {
		tc := r1.StartTrace("job").Context()
		if got := r2.sampled(tc.TraceID); got != tc.Sampled {
			t.Fatalf("trace %s: r1 sampled=%v, r2 says %v", tc.TraceID, tc.Sampled, got)
		}
	}
}

func TestUnsampledTraceRecordsNothing(t *testing.T) {
	rec := New(Config{SampleRate: -1, Seed: 3})
	root := rec.StartTrace("job")
	if !root.Context().Valid() {
		t.Fatalf("unsampled trace must still carry valid ids for propagation")
	}
	if root.Context().Sampled {
		t.Fatalf("rate -1 sampled a trace")
	}
	child := rec.StartSpan(root.Context(), "step")
	child.SetStr("k", "v")
	child.End()
	root.End()
	if n := len(rec.Snapshot()); n != 0 {
		t.Fatalf("unsampled trace recorded %d spans", n)
	}
}

func TestNilRecorderAndSpanAreInert(t *testing.T) {
	var rec *Recorder
	root := rec.StartTrace("job")
	if root != nil {
		t.Fatalf("nil recorder returned a non-nil span")
	}
	root.SetInt("k", 1) // must not panic
	root.End()
	if tc := root.Context(); tc.Valid() {
		t.Fatalf("nil span has a valid context")
	}
	if got := rec.Ingest([]Span{{TraceID: "x"}}); got != 0 {
		t.Fatalf("nil recorder ingested %d", got)
	}
}

func TestSpanParentLinksAndEndIdempotence(t *testing.T) {
	rec := New(Config{Seed: 5})
	root := rec.StartTrace("job")
	child := rec.StartSpan(root.Context(), "execute")
	child.SetInt("sim_events", 123)
	child.End()
	child.End() // idempotent
	root.End()
	spans := rec.Trace(root.Context().TraceID)
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["execute"].Parent != byName["job"].SpanID {
		t.Errorf("execute parent = %q, want root %q", byName["execute"].Parent, byName["job"].SpanID)
	}
	if byName["job"].Parent != "" {
		t.Errorf("root has parent %q", byName["job"].Parent)
	}
	if got := byName["execute"].Attrs["sim_events"]; got != int64(123) {
		t.Errorf("attr sim_events = %v (%T)", got, got)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	rec := New(Config{Seed: 11})
	tc := rec.StartTrace("job").Context()
	tp := tc.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q malformed", tp)
	}
	got, ok := ParseTraceparent(tp)
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, tc)
	}

	// Unsampled flag round-trips too.
	tc.Sampled = false
	got, ok = ParseTraceparent(tc.Traceparent())
	if !ok || got.Sampled {
		t.Fatalf("unsampled round trip: %+v ok=%v", got, ok)
	}

	r, _ := http.NewRequest("GET", "http://x/", nil)
	tc.Inject(r.Header)
	got, ok = FromRequest(r)
	if !ok || got != tc {
		t.Fatalf("header round trip: %+v ok=%v", got, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",     // missing flags
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-", // trailing junk on v00
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // forbidden version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",  // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",  // zero span id
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",  // uppercase ids
		"00+0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
	}
	for _, v := range bad {
		if _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted", v)
		}
	}
	// Future version with extra suffix is accepted (forward compat).
	if _, ok := ParseTraceparent("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); !ok {
		t.Errorf("future-version traceparent rejected")
	}
}

func TestIngestDedup(t *testing.T) {
	rec := New(Config{Seed: 13})
	spans := []Span{
		{TraceID: strings.Repeat("a", 32), SpanID: strings.Repeat("1", 16), Name: "execute", Service: "w-001", StartNs: 100, DurNs: 50},
		{TraceID: strings.Repeat("a", 32), SpanID: strings.Repeat("2", 16), Name: "job", Service: "w-001", StartNs: 90, DurNs: 80},
	}
	if got := rec.Ingest(spans); got != 2 {
		t.Fatalf("first ingest added %d, want 2", got)
	}
	// Double delivery (DoneFrame + fallback POST) must be harmless.
	if got := rec.Ingest(spans); got != 0 {
		t.Fatalf("second ingest added %d, want 0", got)
	}
	if got := rec.Ingest([]Span{{TraceID: "bogus", SpanID: "x", Name: "junk"}}); got != 0 {
		t.Fatalf("malformed ingest added %d", got)
	}
	tr := rec.Trace(strings.Repeat("a", 32))
	if len(tr) != 2 || tr[0].Name != "job" || tr[1].Name != "execute" {
		t.Fatalf("trace order wrong: %+v", tr)
	}
}

func TestChromeTraceOf(t *testing.T) {
	tid := strings.Repeat("a", 32)
	spans := []Span{
		{TraceID: tid, SpanID: "0000000000000001", Name: "job", Service: "coordinator", StartNs: 1_000_000, DurNs: 5_000_000},
		{TraceID: tid, SpanID: "0000000000000002", Parent: "0000000000000001", Name: "dispatch", Service: "coordinator", StartNs: 2_000_000, DurNs: 3_000_000},
		{TraceID: tid, SpanID: "0000000000000003", Parent: "0000000000000002", Name: "execute", Service: "w-001", StartNs: 2_500_000, DurNs: 2_000_000, Attrs: Attrs{"sim_events": int64(9)}},
	}
	tr := ChromeTraceOf(spans)
	if tr.DisplayTimeUnit == "" {
		t.Fatalf("missing displayTimeUnit")
	}
	var meta, slices int
	pids := map[int]string{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			pids[ev.Pid] = ev.Args["name"].(string)
		case "X":
			slices++
			if ev.Args["span_id"] == nil {
				t.Errorf("slice %q missing span_id arg", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || slices != 3 {
		t.Fatalf("got %d metadata + %d slices, want 2 + 3", meta, slices)
	}
	if pids[1] != "coordinator" || pids[2] != "w-001" {
		t.Fatalf("pid naming wrong: %v", pids)
	}
	// job and dispatch overlap on the coordinator → distinct lanes.
	lanes := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			lanes[ev.Name] = ev.Tid
		}
	}
	if lanes["job"] == lanes["dispatch"] {
		t.Errorf("overlapping spans share lane %d", lanes["job"])
	}
	// Metadata sorts first; slices are start-ordered after normalization.
	if tr.TraceEvents[0].Ph != "M" || tr.TraceEvents[1].Ph != "M" {
		t.Errorf("metadata not first")
	}
	if tr.TraceEvents[2].Name != "job" || tr.TraceEvents[2].Ts != 0 {
		t.Errorf("first slice = %q ts=%v, want job at 0", tr.TraceEvents[2].Name, tr.TraceEvents[2].Ts)
	}
}

func TestRecordRetroactive(t *testing.T) {
	rec := New(Config{Seed: 17})
	root := rec.StartTrace("job")
	start := time.Now().Add(-10 * time.Millisecond)
	ctx := rec.Record(root.Context(), "queue_wait", start, start.Add(4*time.Millisecond), Attrs{"tenant": "t1"})
	if !ctx.Valid() {
		t.Fatalf("Record returned invalid context")
	}
	root.End()
	spans := rec.Trace(root.Context().TraceID)
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	qw := spans[0]
	if qw.Name != "queue_wait" || qw.DurNs != (4*time.Millisecond).Nanoseconds() {
		t.Fatalf("queue_wait span wrong: %+v", qw)
	}
	if qw.Parent != root.Context().SpanID {
		t.Fatalf("queue_wait parent %q, want %q", qw.Parent, root.Context().SpanID)
	}
}
