package span

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// Config parameterizes a Recorder. The zero value is usable: service
// "womd", capacity 4096, sample everything, random seed.
type Config struct {
	// Service names this process in recorded spans ("coordinator",
	// "w-001", ...). Defaults to "womd".
	Service string
	// Capacity bounds the span ring; oldest spans are evicted when full.
	// Defaults to 4096.
	Capacity int
	// SampleRate is the head-sampling probability in [0,1]. 0 means 1.0
	// (record everything); negative disables recording entirely while
	// still issuing valid ids for propagation.
	SampleRate float64
	// Seed drives both id generation and the sampling hash. 0 draws a
	// random seed; a fixed seed makes id and keep/drop sequences
	// reproducible (tests).
	Seed uint64
}

// Recorder owns a process's span buffer: it issues trace/span ids, makes
// the head-sampling decision, and keeps the most recent completed spans
// in a fixed-size ring. All methods are safe for concurrent use and all
// are nil-safe — a nil *Recorder records nothing and returns inert
// (but propagation-valid: zero) values, so tracing can be wired
// unconditionally and switched off by config.
type Recorder struct {
	service   string
	capacity  int
	threshold uint64 // keep trace iff mix(hash(traceID)^seed) < threshold

	mu      sync.Mutex
	idState uint64 // splitmix64 state for id generation
	seed    uint64
	ring    []Span
	head    int                    // next write position
	count   int                    // live spans in ring
	byKey   map[[2]string]struct{} // (trace,span) dedup for Ingest

	recorded   uint64
	evicted    uint64
	sampledOut uint64
}

// New builds a Recorder from cfg.
func New(cfg Config) *Recorder {
	if cfg.Service == "" {
		cfg.Service = "womd"
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	if cfg.Seed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			cfg.Seed = binary.LittleEndian.Uint64(b[:])
		} else {
			cfg.Seed = uint64(time.Now().UnixNano())
		}
		if cfg.Seed == 0 {
			cfg.Seed = 1
		}
	}
	rate := cfg.SampleRate
	if rate == 0 {
		rate = 1
	}
	var threshold uint64
	switch {
	case rate >= 1:
		threshold = math.MaxUint64
	case rate <= 0:
		threshold = 0
	default:
		threshold = uint64(rate * math.MaxUint64)
	}
	return &Recorder{
		service:   cfg.Service,
		capacity:  cfg.Capacity,
		threshold: threshold,
		idState:   cfg.Seed,
		seed:      cfg.Seed,
		ring:      make([]Span, cfg.Capacity),
		byKey:     make(map[[2]string]struct{}),
	}
}

// Service returns the service name stamped on this recorder's spans.
func (r *Recorder) Service() string {
	if r == nil {
		return ""
	}
	return r.service
}

// splitmix64 finalizer — also the id-sequence step function.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *Recorder) next64() uint64 {
	r.idState++
	v := mix64(r.idState)
	if v == 0 { // all-zero ids are invalid per W3C
		v = 1
	}
	return v
}

// sampled makes the deterministic keep/drop decision for a trace id:
// FNV-64a of the id, xored with the seed, splitmix-finalized, compared
// against the rate threshold. Same seed + same trace id ⇒ same answer.
func (r *Recorder) sampled(traceID string) bool {
	h := fnv.New64a()
	io.WriteString(h, traceID)
	return mix64(h.Sum64()^r.seed) < r.threshold
}

// StartTrace begins a new trace rooted at a span called name. The
// returned Active always carries a valid Context (ids are issued even
// when the trace is sampled out or the recorder is nil, so propagation
// and response annotation still work); only sampled traces record spans.
func (r *Recorder) StartTrace(name string) *Active {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	tid := fmt.Sprintf("%016x%016x", r.next64(), r.next64())
	sid := fmt.Sprintf("%016x", r.next64())
	r.mu.Unlock()
	ctx := Context{TraceID: tid, SpanID: sid, Sampled: r.sampled(tid)}
	a := &Active{ctx: ctx, name: name, start: time.Now()}
	if ctx.Sampled {
		a.rec = r
	} else {
		r.mu.Lock()
		r.sampledOut++
		r.mu.Unlock()
	}
	return a
}

// StartSpan begins a child span under parent. A nil or invalid parent
// context yields nil (inert) — spans never start their own traces, so an
// uninstrumented caller simply produces no children. The parent's
// sampling decision is inherited, never re-made.
func (r *Recorder) StartSpan(parent Context, name string) *Active {
	if r == nil || !parent.Valid() {
		return nil
	}
	r.mu.Lock()
	sid := fmt.Sprintf("%016x", r.next64())
	r.mu.Unlock()
	a := &Active{
		ctx:    Context{TraceID: parent.TraceID, SpanID: sid, Sampled: parent.Sampled},
		parent: parent.SpanID,
		name:   name,
		start:  time.Now(),
	}
	if parent.Sampled {
		a.rec = r
	}
	return a
}

// Record registers a completed span retroactively from wall-clock
// endpoints — for phases whose boundaries are only known after the fact
// (queue wait: enqueue time to dequeue time). Returns the recorded
// span's context so further children can parent to it.
func (r *Recorder) Record(parent Context, name string, start, end time.Time, attrs Attrs) Context {
	if r == nil || !parent.Valid() {
		return Context{}
	}
	r.mu.Lock()
	sid := fmt.Sprintf("%016x", r.next64())
	r.mu.Unlock()
	ctx := Context{TraceID: parent.TraceID, SpanID: sid, Sampled: parent.Sampled}
	if !parent.Sampled {
		return ctx
	}
	dur := end.Sub(start)
	if dur < 0 {
		dur = 0
	}
	r.add(Span{
		TraceID: ctx.TraceID,
		SpanID:  ctx.SpanID,
		Parent:  parent.SpanID,
		Name:    name,
		Service: r.service,
		StartNs: start.UnixNano(),
		DurNs:   dur.Nanoseconds(),
		Attrs:   attrs,
	})
	return ctx
}

// add inserts one completed span, evicting the oldest if the ring is full.
func (r *Recorder) add(s Span) {
	r.mu.Lock()
	r.insertLocked(s)
	r.mu.Unlock()
}

func (r *Recorder) insertLocked(s Span) {
	key := [2]string{s.TraceID, s.SpanID}
	if _, dup := r.byKey[key]; dup {
		return
	}
	if r.count == r.capacity {
		old := r.ring[r.head]
		delete(r.byKey, [2]string{old.TraceID, old.SpanID})
		r.evicted++
	} else {
		r.count++
	}
	r.ring[r.head] = s
	r.head = (r.head + 1) % r.capacity
	r.byKey[key] = struct{}{}
	r.recorded++
}

// Ingest merges externally recorded spans (a worker's, shipped over the
// dispatch stream or the /cluster/v1/spans fallback) into the buffer,
// deduplicating by (trace id, span id) so double delivery is harmless.
// Returns how many spans were newly inserted.
func (r *Recorder) Ingest(spans []Span) int {
	if r == nil || len(spans) == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	added := 0
	for _, s := range spans {
		if len(s.TraceID) != 32 || len(s.SpanID) != 16 {
			continue
		}
		before := r.recorded
		r.insertLocked(s)
		if r.recorded != before {
			added++
		}
	}
	return added
}

// Trace returns all buffered spans of one trace, ordered by start time
// (then span id for ties). Nil if none are buffered.
func (r *Recorder) Trace(traceID string) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Span
	for i := 0; i < r.count; i++ {
		s := r.ring[(r.head-r.count+i+r.capacity)%r.capacity]
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	r.mu.Unlock()
	sortSpans(out)
	return out
}

// Snapshot returns every buffered span, oldest first.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(r.head-r.count+i+r.capacity)%r.capacity])
	}
	return out
}

func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// WriteProm emits the recorder's own health as Prometheus text families.
func (r *Recorder) WriteProm(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	recorded, evicted, sampledOut, buffered := r.recorded, r.evicted, r.sampledOut, r.count
	r.mu.Unlock()
	fmt.Fprintf(w, "# HELP womd_spans_recorded_total Spans accepted into the trace buffer.\n")
	fmt.Fprintf(w, "# TYPE womd_spans_recorded_total counter\n")
	fmt.Fprintf(w, "womd_spans_recorded_total %d\n", recorded)
	fmt.Fprintf(w, "# HELP womd_spans_evicted_total Spans evicted from the full trace buffer.\n")
	fmt.Fprintf(w, "# TYPE womd_spans_evicted_total counter\n")
	fmt.Fprintf(w, "womd_spans_evicted_total %d\n", evicted)
	fmt.Fprintf(w, "# HELP womd_spans_sampled_out_total Traces dropped by head sampling.\n")
	fmt.Fprintf(w, "# TYPE womd_spans_sampled_out_total counter\n")
	fmt.Fprintf(w, "womd_spans_sampled_out_total %d\n", sampledOut)
	fmt.Fprintf(w, "# HELP womd_spans_buffered Spans currently held in the trace buffer.\n")
	fmt.Fprintf(w, "# TYPE womd_spans_buffered gauge\n")
	fmt.Fprintf(w, "womd_spans_buffered %d\n", buffered)
}
