package span

import (
	"sort"

	"womcpcm/internal/probe"
)

// ChromeTraceOf renders one trace's spans as Chrome trace-event JSON
// (the same probe.ChromeTrace schema womsim timelines use, so the output
// opens directly in Perfetto or chrome://tracing). Each service becomes
// a process (pid), with "M" metadata naming it; within a service,
// concurrent spans are packed into lanes (tids) greedily — a span takes
// the first lane whose previous occupant ended before it starts — so the
// waterfall reads top-to-bottom without overlap. Timestamps are
// normalized to the earliest span start and emitted in microseconds;
// span/parent ids and attributes ride along in args.
func ChromeTraceOf(spans []Span) probe.ChromeTrace {
	tr := probe.ChromeTrace{DisplayTimeUnit: "ms"}
	if len(spans) == 0 {
		tr.TraceEvents = []probe.ChromeEvent{}
		return tr
	}
	ordered := append([]Span(nil), spans...)
	sortSpans(ordered)
	t0 := ordered[0].StartNs
	for _, s := range ordered {
		if s.StartNs < t0 {
			t0 = s.StartNs
		}
	}

	services := make([]string, 0, 2)
	seen := make(map[string]bool)
	for _, s := range ordered {
		if !seen[s.Service] {
			seen[s.Service] = true
			services = append(services, s.Service)
		}
	}
	sort.Strings(services)
	pidOf := make(map[string]int, len(services))
	for i, svc := range services {
		pidOf[svc] = i + 1
		tr.TraceEvents = append(tr.TraceEvents, probe.ChromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1,
			Args: map[string]any{"name": svc},
		})
	}

	// laneEnds[pid] holds each lane's current wall-clock end; spans were
	// sorted by start, so first-fit packing is well-defined.
	laneEnds := make(map[int][]int64)
	for _, s := range ordered {
		pid := pidOf[s.Service]
		lanes := laneEnds[pid]
		tid := -1
		for i, end := range lanes {
			if end <= s.StartNs {
				tid = i
				break
			}
		}
		if tid < 0 {
			tid = len(lanes)
			lanes = append(lanes, 0)
		}
		lanes[tid] = s.End()
		laneEnds[pid] = lanes

		args := map[string]any{"span_id": s.SpanID}
		if s.Parent != "" {
			args["parent_id"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		dur := float64(s.DurNs) / 1e3
		if dur <= 0 {
			dur = 0.001 // sub-µs spans still need a visible slice
		}
		tr.TraceEvents = append(tr.TraceEvents, probe.ChromeEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(s.StartNs-t0) / 1e3,
			Dur:  dur,
			Pid:  pid,
			Tid:  tid,
			Args: args,
		})
	}

	sort.SliceStable(tr.TraceEvents, func(i, j int) bool {
		mi, mj := tr.TraceEvents[i].Ph == "M", tr.TraceEvents[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return tr.TraceEvents[i].Ts < tr.TraceEvents[j].Ts
	})
	return tr
}
