package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Chrome trace-event format (the JSON flavor Perfetto and
// chrome://tracing open directly): a traceEvents array of instant ("i") and
// complete ("X") events plus process/thread name metadata ("M"). Timestamps
// and durations are microseconds; the simulator's nanosecond clock maps to
// fractional µs, which both viewers accept.

// ChromeEvent is one trace-event record. Exported so tests and tools can
// json.Unmarshal generated timelines against the schema.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace-event JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// trackID folds (rank, bank) into a stable thread id: banks of rank r are
// r·1000+bank+1 and the rank-scoped track (cache array, rank refresh
// scheduling) is r·1000. One track per bank is the Perfetto view the
// exporter promises.
func trackID(rank, bank int) int { return rank*1000 + bank + 1 }

// trackName labels a track for the thread_name metadata.
func trackName(rank, bank int) string {
	if bank < 0 {
		return fmt.Sprintf("rank %d (rank-wide)", rank)
	}
	return fmt.Sprintf("rank %d bank %d", rank, bank)
}

// ChromeTraceOf converts the sinks' event streams into one trace object.
// Each sink contributes its events under its own process (Pid/Label);
// events are ordered by start time within the merged stream.
func ChromeTraceOf(sinks ...*TimelineSink) ChromeTrace {
	tr := ChromeTrace{DisplayTimeUnit: "ns"}
	for _, s := range sinks {
		if s == nil {
			continue
		}
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: "process_name", Ph: "M", Pid: s.Pid,
			Args: map[string]any{"name": s.Label},
		})
		named := make(map[int]bool)
		for _, ev := range s.Events() {
			tid := trackID(ev.Rank, ev.Bank)
			if !named[tid] {
				named[tid] = true
				tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
					Name: "thread_name", Ph: "M", Pid: s.Pid, Tid: tid,
					Args: map[string]any{"name": trackName(ev.Rank, ev.Bank)},
				})
			}
			ce := ChromeEvent{
				Name: ev.Kind.String(),
				Cat:  ev.Kind.Category(),
				Ts:   float64(ev.Time) / 1e3,
				Pid:  s.Pid,
				Tid:  tid,
			}
			if ev.Row >= 0 {
				ce.Args = map[string]any{"row": ev.Row}
			}
			if ev.Dur > 0 {
				ce.Ph = "X"
				ce.Dur = float64(ev.Dur) / 1e3
			} else {
				ce.Ph = "i"
				ce.Scope = "t"
			}
			tr.TraceEvents = append(tr.TraceEvents, ce)
		}
	}
	// Stable start-time order (metadata first) keeps diffs and streaming
	// viewers happy; the format itself does not require it.
	sort.SliceStable(tr.TraceEvents, func(i, j int) bool {
		mi, mj := tr.TraceEvents[i].Ph == "M", tr.TraceEvents[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return tr.TraceEvents[i].Ts < tr.TraceEvents[j].Ts
	})
	return tr
}

// WriteChromeTrace renders the sinks as Chrome trace-event JSON on w. The
// output opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, sinks ...*TimelineSink) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ChromeTraceOf(sinks...))
}
