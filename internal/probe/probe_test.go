package probe

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestKindStringsAndCategories(t *testing.T) {
	seen := make(map[string]bool)
	for k := Kind(0); int(k) < NumKinds; k++ {
		name := k.String()
		if name == "" || seen[name] {
			t.Errorf("kind %d: bad or duplicate name %q", k, name)
		}
		seen[name] = true
		switch k.Category() {
		case "write", "refresh", "cache", "bank":
		default:
			t.Errorf("kind %s: unexpected category %q", name, k.Category())
		}
	}
	if WriteAlpha.Category() != "write" || RefreshPaused.Category() != "refresh" ||
		CacheEvict.Category() != "cache" || BankBusy.Category() != "bank" {
		t.Errorf("category boundaries drifted")
	}
}

func TestProbeFansOut(t *testing.T) {
	c1, c2 := NewCounterSink(), NewCounterSink()
	p := New(c1, nil, c2)
	p.Emit(Event{Kind: WriteAlpha})
	p.Emit(Event{Kind: WriteAlpha})
	p.Emit(Event{Kind: CacheHit})
	for _, c := range []*CounterSink{c1, c2} {
		if got := c.Count(WriteAlpha); got != 2 {
			t.Errorf("Count(WriteAlpha) = %d, want 2", got)
		}
		if got := c.Total(); got != 3 {
			t.Errorf("Total() = %d, want 3", got)
		}
	}
	if got := c1.Counts()["write-alpha"]; got != 2 {
		t.Errorf("Counts()[write-alpha] = %d, want 2", got)
	}
}

func TestRingSinkKeepsTail(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Time: Clock(i), Kind: BankBusy})
	}
	if r.Total() != 10 {
		t.Fatalf("Total() = %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events()) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := Clock(6 + i); ev.Time != want {
			t.Errorf("Events()[%d].Time = %d, want %d", i, ev.Time, want)
		}
	}
	// Overwritten events must not vanish from the accounting: the snapshot
	// carries the drop count beside the retained tail.
	if got := r.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
	snap := r.Snapshot()
	if snap.Total != 10 || snap.Dropped != 6 {
		t.Errorf("Snapshot Total=%d Dropped=%d, want 10 and 6", snap.Total, snap.Dropped)
	}
	if snap.Total-snap.Dropped != uint64(len(snap.Events)) {
		t.Errorf("Total−Dropped = %d, want len(Events) = %d",
			snap.Total-snap.Dropped, len(snap.Events))
	}
	if len(snap.Events) != 4 || snap.Events[0].Time != 6 {
		t.Errorf("Snapshot.Events = %+v, want tail starting at time 6", snap.Events)
	}
}

func TestRingSinkPartialFill(t *testing.T) {
	r := NewRingSink(8)
	r.Record(Event{Time: 1})
	r.Record(Event{Time: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Time != 1 || evs[1].Time != 2 {
		t.Fatalf("Events() = %+v, want times [1 2]", evs)
	}
	if snap := r.Snapshot(); snap.Dropped != 0 || snap.Total != 2 {
		t.Errorf("Snapshot Total=%d Dropped=%d before wraparound, want 2 and 0",
			snap.Total, snap.Dropped)
	}
}

func TestTimelineSinkLimit(t *testing.T) {
	s := NewTimelineSink(1, "test", 3)
	for i := 0; i < 5; i++ {
		s.Record(Event{Time: Clock(i)})
	}
	if s.Len() != 3 || s.Dropped() != 2 {
		t.Fatalf("Len=%d Dropped=%d, want 3 and 2", s.Len(), s.Dropped())
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	s := NewTimelineSink(7, "WOM-code PCM", 0)
	s.Record(Event{Time: 1000, Dur: 250, Kind: BankBusy, Rank: 0, Bank: 3, Row: 42})
	s.Record(Event{Time: 1250, Kind: WriteAlpha, Rank: 0, Bank: 3, Row: 42})
	s.Record(Event{Time: 2000, Dur: 500, Kind: RefreshPaused, Rank: 1, Bank: -1, Row: 7})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, s); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var tr ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("output is not trace-event JSON: %v", err)
	}

	var names []string
	meta := map[string]int{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "M" {
			meta[ev.Name]++
			continue
		}
		names = append(names, ev.Name)
		if ev.Pid != 7 {
			t.Errorf("event %s: pid = %d, want 7", ev.Name, ev.Pid)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur <= 0 {
				t.Errorf("span %s: dur = %v, want > 0", ev.Name, ev.Dur)
			}
		case "i":
			if ev.Scope != "t" {
				t.Errorf("instant %s: scope = %q, want t", ev.Name, ev.Scope)
			}
		default:
			t.Errorf("event %s: unexpected phase %q", ev.Name, ev.Ph)
		}
	}
	if meta["process_name"] != 1 || meta["thread_name"] != 2 {
		t.Errorf("metadata = %v, want 1 process_name and 2 thread_name", meta)
	}
	want := []string{"bank-busy", "write-alpha", "refresh-paused"}
	if len(names) != len(want) {
		t.Fatalf("events = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("events[%d] = %q, want %q (sorted by start time)", i, names[i], want[i])
		}
	}
	// Distinct tracks: bank 3 of rank 0 vs rank-wide track of rank 1.
	if trackID(0, 3) == trackID(1, -1) {
		t.Errorf("track ids collide")
	}
	// ts is µs: the 1000 ns event must surface at 1 µs.
	if tr.TraceEvents[2].Ph == "X" && tr.TraceEvents[2].Ts != 1.0 {
		t.Logf("events: %+v", tr.TraceEvents)
	}
}
