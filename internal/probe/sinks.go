package probe

// CounterSink aggregates events into per-kind counts — the cheap always-on
// sink: no allocation per event, one array increment.
type CounterSink struct {
	counts [numKinds]uint64
}

// NewCounterSink returns an empty counter sink.
func NewCounterSink() *CounterSink { return &CounterSink{} }

// Record implements Sink.
func (c *CounterSink) Record(ev Event) {
	if int(ev.Kind) < len(c.counts) {
		c.counts[ev.Kind]++
	}
}

// Count returns the number of events of one kind.
func (c *CounterSink) Count(k Kind) uint64 {
	if int(k) >= len(c.counts) {
		return 0
	}
	return c.counts[k]
}

// Total returns the number of events recorded.
func (c *CounterSink) Total() uint64 {
	var n uint64
	for _, v := range c.counts {
		n += v
	}
	return n
}

// Counts exports the non-zero counters keyed by kind name.
func (c *CounterSink) Counts() map[string]uint64 {
	out := make(map[string]uint64)
	for k, v := range c.counts {
		if v > 0 {
			out[Kind(k).String()] = v
		}
	}
	return out
}

// RingSink keeps the last N events for post-mortem inspection: when a run
// misbehaves, the tail of the event stream shows what the controller was
// doing without paying for full retention.
type RingSink struct {
	buf   []Event
	next  int
	total uint64
}

// NewRingSink returns a ring holding the most recent n events (n ≥ 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]Event, 0, n)}
}

// Record implements Sink.
func (r *RingSink) Record(ev Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns the number of events ever recorded.
func (r *RingSink) Total() uint64 { return r.total }

// Dropped returns the number of events overwritten by newer ones — the
// prefix of the stream the ring no longer holds.
func (r *RingSink) Dropped() uint64 { return r.total - uint64(len(r.buf)) }

// Events returns the retained events oldest-first.
func (r *RingSink) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// RingSnapshot is a ring's state at one instant: the retained tail plus the
// loss accounting that tells a reader whether the tail is the whole story.
type RingSnapshot struct {
	// Total counts events ever recorded; Dropped counts the overwritten
	// prefix. Total − Dropped == len(Events).
	Total   uint64
	Dropped uint64
	// Events is the retained tail, oldest-first.
	Events []Event
}

// Snapshot exports the ring with its drop accounting. Before this existed,
// post-mortem consumers read Events() alone and could mistake a truncated
// tail for the full event stream.
func (r *RingSink) Snapshot() RingSnapshot {
	return RingSnapshot{Total: r.total, Dropped: r.Dropped(), Events: r.Events()}
}

// TimelineSink retains the full event stream of one simulation for Chrome
// trace-event export, up to a configurable bound. Each sink becomes one
// trace "process" (Pid/Label), so several simulations — e.g. the four
// architectures replaying the same workload — merge into one timeline.
type TimelineSink struct {
	// Pid is the trace process id; Label its displayed name.
	Pid   int
	Label string

	limit   int
	events  []Event
	dropped uint64
}

// NewTimelineSink builds a sink exporting as trace process pid named label.
// limit bounds retained events (0 = unbounded); events past the bound are
// counted in Dropped instead of retained.
func NewTimelineSink(pid int, label string, limit int) *TimelineSink {
	return &TimelineSink{Pid: pid, Label: label, limit: limit}
}

// Record implements Sink.
func (t *TimelineSink) Record(ev Event) {
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Len returns the number of retained events.
func (t *TimelineSink) Len() int { return len(t.events) }

// Dropped returns the number of events discarded past the limit.
func (t *TimelineSink) Dropped() uint64 { return t.dropped }

// Events returns the retained events in emission order.
func (t *TimelineSink) Events() []Event { return t.events }
