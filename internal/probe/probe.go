// Package probe is the low-overhead typed event bus of the discrete-event
// memory simulator (internal/memctrl). The controller emits one Event per
// interesting occurrence — a classified row write, a refresh lifecycle
// transition, a WOM-cache action, a bank busy interval — each stamped with
// the simulated clock and its bank/rank coordinates, and a Probe fans the
// stream out to composable sinks: cheap always-on counters (CounterSink), a
// bounded post-mortem ring (RingSink), and a Chrome trace-event exporter
// (TimelineSink + WriteChromeTrace) whose output opens directly in Perfetto
// or chrome://tracing.
//
// The zero-cost contract: a Controller with no probe configured pays exactly
// one nil pointer check per emission site (see DESIGN.md §9 and the
// BenchmarkRun*Probe benchmarks in internal/memctrl). A Probe and its sinks
// are owned by a single simulation goroutine and are not safe for concurrent
// use; give every Controller its own.
package probe

import "fmt"

// Clock is a simulated timestamp or duration in nanoseconds, mirroring
// memctrl.Clock without importing it.
type Clock = int64

// Kind classifies an Event. The taxonomy covers the four write classes the
// paper's mechanisms distinguish, the PCM-refresh lifecycle (§3.2), the
// WCPCM write-cache actions (§4), and bank occupancy.
type Kind uint8

const (
	// WriteFlipNWrite is a conventional full row write: every write of the
	// baseline architecture and WCPCM victim write-backs. (Named for the
	// Flip-N-Write coding conventional PCM uses to bound flipped cells; it
	// cannot remove the SET from the critical path.)
	WriteFlipNWrite Kind = iota
	// WriteFirst is the first write into an erased WOM row (generation 0),
	// programmed with the fast first-write pattern.
	WriteFirst
	// WriteWOMRewrite is an in-budget RESET-only WOM rewrite
	// (0 < generation < k).
	WriteWOMRewrite
	// WriteAlpha is the slow α-write issued once the row exhausted its
	// rewrite budget — the §3.2 bottleneck PCM-refresh attacks.
	WriteAlpha

	// RefreshScheduled marks a refresh scheduling point electing a rank
	// (burst refresh) or a cache array.
	RefreshScheduled
	// RefreshStarted marks one bank (or cache array) beginning to refresh
	// a tracked at-limit row.
	RefreshStarted
	// RefreshPaused marks write pausing: a demand access preempted the
	// refresh; the event spans the truncated refresh interval.
	RefreshPaused
	// RefreshResumed marks a previously paused row re-entering refresh at
	// a later scheduling point.
	RefreshResumed
	// RefreshCompleted marks a committed refresh; the event spans the full
	// refresh interval.
	RefreshCompleted

	// CacheHit is a WOM-cache lookup serviced in place (read tag match, or
	// write to the row already caching this bank).
	CacheHit
	// CacheFill is a write allocating an empty (invalid) cache row.
	CacheFill
	// CacheEvict is a write displacing another bank's victim row.
	CacheEvict
	// CacheWriteback is the victim's write-back request entering the main
	// memory queue.
	CacheWriteback

	// BankBusy spans one service occupancy of a bank or cache array.
	BankBusy

	numKinds
)

// NumKinds is the number of defined event kinds.
const NumKinds = int(numKinds)

// NumWriteKinds is the number of write-classification kinds; kinds
// 0..NumWriteKinds-1 are exactly the write classes.
const NumWriteKinds = int(WriteAlpha) + 1

var kindNames = [...]string{
	"write-flip-n-write", "write-first", "write-wom-rewrite", "write-alpha",
	"refresh-scheduled", "refresh-started", "refresh-paused",
	"refresh-resumed", "refresh-completed",
	"cache-hit", "cache-fill", "cache-evict", "cache-writeback",
	"bank-busy",
}

// String names the kind as it appears in timelines and counter snapshots.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Category groups kinds for timeline filtering: "write", "refresh",
// "cache", or "bank".
func (k Kind) Category() string {
	switch {
	case k <= WriteAlpha:
		return "write"
	case k <= RefreshCompleted:
		return "refresh"
	case k <= CacheWriteback:
		return "cache"
	default:
		return "bank"
	}
}

// Event is one simulator occurrence.
type Event struct {
	// Time is the simulated start time (ns).
	Time Clock
	// Dur is the simulated duration for interval events (bank busy,
	// refresh spans); 0 marks an instant.
	Dur Clock
	// Kind classifies the event.
	Kind Kind
	// Rank and Bank locate the event; Bank is -1 for rank-scoped events
	// (the per-rank WOM-cache array, rank-level refresh scheduling).
	Rank, Bank int
	// Row is the affected row address, -1 when not row-specific.
	Row int
}

// Sink consumes events. Implementations are single-goroutine, like the
// simulator that feeds them.
type Sink interface {
	Record(Event)
}

// Probe fans events out to its sinks. A nil *Probe is inert only through
// the caller's nil check — the controller guards every emission site with
// one, which is the entire disabled-path cost.
type Probe struct {
	sinks []Sink
}

// New builds a probe over the given sinks. Nil sinks are skipped.
func New(sinks ...Sink) *Probe {
	p := &Probe{}
	for _, s := range sinks {
		if s != nil {
			p.sinks = append(p.sinks, s)
		}
	}
	return p
}

// Emit records ev in every sink.
func (p *Probe) Emit(ev Event) {
	for _, s := range p.sinks {
		s.Record(ev)
	}
}
