package stats

// Bucket is one cumulative histogram bucket: Count samples observed at or
// below UpperNs. The log2-spaced layout mirrors Latency's internal buckets
// and maps directly onto Prometheus-style `le` histogram series.
type Bucket struct {
	UpperNs int64  `json:"upper_ns"`
	Count   uint64 `json:"count"` // cumulative
}

// LatencySnapshot is an exportable copy of a Latency distribution, safe to
// serialize and render after the source keeps accumulating.
type LatencySnapshot struct {
	Count   uint64   `json:"count"`
	SumNs   int64    `json:"sum_ns"`
	MinNs   int64    `json:"min_ns"`
	MaxNs   int64    `json:"max_ns"`
	MeanNs  float64  `json:"mean_ns"`
	P50Ns   int64    `json:"p50_ns"`
	P95Ns   int64    `json:"p95_ns"`
	P99Ns   int64    `json:"p99_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot exports the distribution: summary statistics plus the cumulative
// buckets up to the last non-empty one. The caller must not mutate l
// concurrently (wrap shared instances in a mutex).
func (l *Latency) Snapshot() LatencySnapshot {
	s := LatencySnapshot{
		Count:  l.Count,
		SumNs:  l.Sum,
		MinNs:  l.Min,
		MaxNs:  l.Max,
		MeanNs: l.Mean(),
	}
	if l.Count == 0 {
		return s
	}
	s.P50Ns = l.Quantile(0.50)
	s.P95Ns = l.Quantile(0.95)
	s.P99Ns = l.Quantile(0.99)
	last := -1
	for i, c := range l.buckets {
		if c > 0 {
			last = i
		}
	}
	var cum uint64
	s.Buckets = make([]Bucket, 0, last+1)
	for i := 0; i <= last; i++ {
		cum += l.buckets[i]
		s.Buckets = append(s.Buckets, Bucket{UpperNs: int64(1) << uint(i+1), Count: cum})
	}
	return s
}
