package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLatencyBasics(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Quantile(0.5) != 0 {
		t.Error("empty latency not zero")
	}
	for _, v := range []int64{40, 150, 40, 150} {
		l.Observe(v)
	}
	if l.Count != 4 || l.Sum != 380 {
		t.Errorf("count/sum = %d/%d", l.Count, l.Sum)
	}
	if l.Mean() != 95 {
		t.Errorf("mean = %v, want 95", l.Mean())
	}
	if l.Min != 40 || l.Max != 150 {
		t.Errorf("min/max = %d/%d", l.Min, l.Max)
	}
	if !strings.Contains(l.String(), "n=4") {
		t.Errorf("String() = %q", l.String())
	}
}

func TestLatencyNegativeClamped(t *testing.T) {
	var l Latency
	l.Observe(-10)
	if l.Min != 0 || l.Sum != 0 {
		t.Error("negative sample not clamped")
	}
}

func TestLatencyQuantile(t *testing.T) {
	var l Latency
	for i := 0; i < 99; i++ {
		l.Observe(40)
	}
	l.Observe(5000)
	// p50 must bound 40; p995+ must reach the outlier's bucket.
	if q := l.Quantile(0.5); q < 40 || q > 64 {
		t.Errorf("p50 bound = %d", q)
	}
	if q := l.Quantile(1.0); q < 5000 {
		t.Errorf("p100 bound = %d, want ≥ 5000", q)
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b Latency
	a.Observe(10)
	a.Observe(20)
	b.Observe(5)
	b.Observe(40)
	a.Merge(&b)
	if a.Count != 4 || a.Sum != 75 || a.Min != 5 || a.Max != 40 {
		t.Errorf("merged = %+v", a)
	}
	var empty Latency
	a.Merge(&empty)
	if a.Count != 4 {
		t.Error("merging empty changed count")
	}
	empty.Merge(&a)
	if empty.Count != 4 || empty.Min != 5 {
		t.Errorf("merge into empty = %+v", empty)
	}
}

func TestLatencyReset(t *testing.T) {
	var l Latency
	for _, ns := range []int64{5, 10, 1000} {
		l.Observe(ns)
	}
	l.Reset()
	if l.Count != 0 || l.Sum != 0 || l.Min != 0 || l.Max != 0 {
		t.Errorf("after Reset = %+v, want zero value", l)
	}
	if got := l.Quantile(0.95); got != 0 {
		t.Errorf("Quantile after Reset = %d, want 0 (histogram must clear)", got)
	}
	// A reset histogram behaves exactly like a fresh one.
	l.Observe(7)
	var fresh Latency
	fresh.Observe(7)
	if l != fresh {
		t.Errorf("reset-then-observe = %+v, fresh = %+v", l, fresh)
	}
	// Merging a reset (empty) histogram is a no-op.
	var a Latency
	a.Observe(42)
	a.Merge(&l)
	if a.Count != 2 || a.Min != 7 || a.Max != 42 {
		t.Errorf("merge after reset = %+v", a)
	}
}

// TestLatencyQuantileMonotone property: quantile bounds are monotone in q
// and always ≥ min observed.
func TestLatencyQuantileMonotone(t *testing.T) {
	prop := func(samples []uint16) bool {
		var l Latency
		for _, s := range samples {
			l.Observe(int64(s))
		}
		if len(samples) == 0 {
			return true
		}
		prev := int64(0)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
			v := l.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestServiceClassNames(t *testing.T) {
	want := map[ServiceClass]string{
		ReadArray:      "read-array",
		ReadCacheHit:   "read-cache-hit",
		WriteBaseline:  "write-baseline",
		WriteFast:      "write-fast",
		WriteAlpha:     "write-alpha",
		WriteCacheHit:  "write-cache-hit",
		WriteCacheMiss: "write-cache-miss",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if !strings.Contains(ServiceClass(99).String(), "99") {
		t.Error("unknown class rendering")
	}
}

func TestRunDerivedMetrics(t *testing.T) {
	var r Run
	if r.CacheHitRate() != 0 || r.AlphaFraction() != 0 {
		t.Error("empty run not zero")
	}
	r.CacheHits, r.CacheMisses = 3, 1
	if r.CacheHitRate() != 0.75 {
		t.Errorf("hit rate = %v", r.CacheHitRate())
	}
	r.Class(WriteFast)
	r.Class(WriteFast)
	r.Class(WriteFast)
	r.Class(WriteAlpha)
	if r.AlphaFraction() != 0.25 {
		t.Errorf("alpha fraction = %v", r.AlphaFraction())
	}
	r.Refreshes = 2
	s := r.Summary()
	for _, want := range []string{"write-fast", "write-alpha", "cache hit rate", "refreshes"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestNormalized(t *testing.T) {
	var base, r Run
	base.WriteLatency.Observe(100)
	base.ReadLatency.Observe(50)
	r.WriteLatency.Observe(80)
	r.ReadLatency.Observe(45)
	w, rd := r.Normalized(&base)
	if math.Abs(w-0.8) > 1e-12 || math.Abs(rd-0.9) > 1e-12 {
		t.Errorf("normalized = (%v, %v)", w, rd)
	}
	var empty Run
	w, rd = r.Normalized(&empty)
	if w != 0 || rd != 0 {
		t.Error("normalizing against empty base should yield 0")
	}
}

func TestAggregates(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if g := GeoMean([]float64{4, 1}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %v", g)
	}
	if g := GeoMean([]float64{0, -1}); g != 0 {
		t.Errorf("GeoMean of non-positives = %v", g)
	}
	s := Sorted([]float64{3, 1, 2})
	if s[0] != 1 || s[2] != 3 {
		t.Errorf("Sorted = %v", s)
	}
}

// TestLatencyMergeEqualsCombined property: merging two collectors is
// identical to observing the union.
func TestLatencyMergeEqualsCombined(t *testing.T) {
	prop := func(a, b []uint16) bool {
		var la, lb, all Latency
		for _, v := range a {
			la.Observe(int64(v))
			all.Observe(int64(v))
		}
		for _, v := range b {
			lb.Observe(int64(v))
			all.Observe(int64(v))
		}
		la.Merge(&lb)
		return la == all
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
