// Package stats aggregates the measurements the paper reports: average
// memory read and write latencies per architecture (Fig. 5), WOM-cache hit
// rates (Fig. 6), and the service-class breakdowns (fast RESET-only writes
// versus α-writes, refresh activity) that explain them.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Latency accumulates request latencies in nanoseconds.
//
// A Latency is not safe for concurrent use: the simulator is single-threaded
// per run, so Observe/Merge/Reset carry no synchronization. Callers that
// aggregate across goroutines (e.g. engine wall-time metrics) must hold
// their own lock.
type Latency struct {
	Count uint64
	Sum   int64
	Min   int64
	Max   int64
	// histogram of log2-spaced buckets: bucket i counts latencies in
	// [2^i, 2^(i+1)). Bucket 0 also absorbs latency 0.
	buckets [40]uint64
}

// Observe records one latency sample.
func (l *Latency) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	if l.Count == 0 || ns < l.Min {
		l.Min = ns
	}
	if ns > l.Max {
		l.Max = ns
	}
	l.Count++
	l.Sum += ns
	b := 0
	for v := ns; v > 1 && b < len(l.buckets)-1; v >>= 1 {
		b++
	}
	l.buckets[b]++
}

// Mean returns the average latency, or 0 with no samples.
func (l *Latency) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.Sum) / float64(l.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) from the
// log-spaced histogram: the top of the first bucket whose cumulative count
// reaches q.
func (l *Latency) Quantile(q float64) int64 {
	if l.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(l.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range l.buckets {
		cum += c
		if cum >= target {
			return int64(1) << uint(i+1)
		}
	}
	return l.Max
}

// Merge folds other into l.
func (l *Latency) Merge(other *Latency) {
	if other.Count == 0 {
		return
	}
	if l.Count == 0 || other.Min < l.Min {
		l.Min = other.Min
	}
	if other.Max > l.Max {
		l.Max = other.Max
	}
	l.Count += other.Count
	l.Sum += other.Sum
	for i := range l.buckets {
		l.buckets[i] += other.buckets[i]
	}
}

// Reset returns l to the empty state, as if freshly allocated, so a caller
// rolling over epochs can reuse one histogram instead of allocating per
// epoch.
func (l *Latency) Reset() {
	*l = Latency{}
}

// String summarizes the distribution.
func (l *Latency) String() string {
	return fmt.Sprintf("n=%d mean=%.1fns min=%d max=%d p95≤%d", l.Count, l.Mean(), l.Min, l.Max, l.Quantile(0.95))
}

// ServiceClass labels how a request was serviced, the breakdown behind the
// paper's latency differences.
type ServiceClass int

const (
	// ReadArray is a read that had to activate its row (row-buffer miss).
	ReadArray ServiceClass = iota
	// ReadRowHit is a read serviced from the open row buffer.
	ReadRowHit
	// ReadCacheHit is a read serviced by the WOM-cache (WCPCM only).
	ReadCacheHit
	// WriteBaseline is a conventional full row write (SET on the path) —
	// every write of PCM without WOM-codes, and WCPCM victim write-backs.
	WriteBaseline
	// WriteFast is an in-budget WOM-code row write (RESET-only).
	WriteFast
	// WriteAlpha is the row write issued after the rewrite limit — the
	// paper's α-write, as slow as a baseline write.
	WriteAlpha
	// WriteCacheHit is a write absorbed by the WOM-cache.
	WriteCacheHit
	// WriteCacheMiss is a write that displaced a WOM-cache victim.
	WriteCacheMiss
	numServiceClasses
)

// String names the class.
func (c ServiceClass) String() string {
	names := [...]string{
		"read-array", "read-row-hit", "read-cache-hit",
		"write-baseline", "write-fast", "write-alpha",
		"write-cache-hit", "write-cache-miss",
	}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("ServiceClass(%d)", int(c))
}

// Run collects all measurements of one simulation run.
type Run struct {
	// Arch and Workload label the run.
	Arch, Workload string
	// ReadLatency and WriteLatency measure demand requests (arrival to
	// completion, queueing included). Internal traffic (cache victim
	// write-backs, refreshes) is excluded from latency but counted below.
	ReadLatency, WriteLatency Latency
	// Classes counts service events per class, internal traffic included.
	// Reads contribute read-array/read-row-hit/read-cache-hit; writes
	// contribute write-baseline/fast/alpha (main arrays) or
	// write-cache-hit/miss (WCPCM demand writes, whose underlying cache
	// array write additionally counts as write-fast/alpha), so WCPCM class
	// totals exceed the request count.
	Classes [numServiceClasses]uint64
	// Refreshes counts completed PCM-refresh row operations; RefreshAborts
	// counts refreshes preempted by demand traffic (write pausing).
	Refreshes, RefreshAborts uint64
	// CacheHits/CacheMisses count WOM-cache lookups (WCPCM only); reads
	// and writes both probe.
	CacheHits, CacheMisses uint64
	// VictimWrites counts write-back requests spawned by cache misses.
	VictimWrites uint64
	// WriteCancels counts in-service writes aborted by arriving reads
	// (write cancellation scheduling, the paper's [7]).
	WriteCancels uint64
	// Events counts discrete-event steps the simulator executed for this
	// run — request arrivals plus every scheduled event handled (service
	// completions, refresh ticks, refresh completions). It is the
	// denominator of the host-time throughput figures (simulated-events/sec)
	// internal/perfmon reports.
	Events uint64
	// SimulatedNs is the completion time of the last request.
	SimulatedNs int64
}

// Class increments a service-class counter.
func (r *Run) Class(c ServiceClass) { r.Classes[c]++ }

// CacheHitRate returns hits/(hits+misses), or 0 without lookups.
func (r *Run) CacheHitRate() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// AlphaFraction returns the fraction of WOM array row writes that were
// α-writes — the §3.2 bottleneck PCM-refresh attacks.
func (r *Run) AlphaFraction() float64 {
	writes := r.Classes[WriteFast] + r.Classes[WriteAlpha]
	if writes == 0 {
		return 0
	}
	return float64(r.Classes[WriteAlpha]) / float64(writes)
}

// Summary renders a one-run report.
func (r *Run) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s:\n", r.Arch, r.Workload)
	fmt.Fprintf(&b, "  reads : %s\n", r.ReadLatency.String())
	fmt.Fprintf(&b, "  writes: %s\n", r.WriteLatency.String())
	for c := ServiceClass(0); c < numServiceClasses; c++ {
		if r.Classes[c] > 0 {
			fmt.Fprintf(&b, "  %-16s %d\n", c.String(), r.Classes[c])
		}
	}
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&b, "  cache hit rate: %.1f%%\n", 100*r.CacheHitRate())
	}
	if r.Refreshes+r.RefreshAborts > 0 {
		fmt.Fprintf(&b, "  refreshes: %d (%d aborted)\n", r.Refreshes, r.RefreshAborts)
	}
	if r.WriteCancels > 0 {
		fmt.Fprintf(&b, "  write cancellations: %d\n", r.WriteCancels)
	}
	return b.String()
}

// Normalized returns this run's mean latencies divided by a baseline run's,
// the form Fig. 5 plots.
func (r *Run) Normalized(base *Run) (write, read float64) {
	if m := base.WriteLatency.Mean(); m > 0 {
		write = r.WriteLatency.Mean() / m
	}
	if m := base.ReadLatency.Mean(); m > 0 {
		read = r.ReadLatency.Mean() / m
	}
	return write, read
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries;
// it is the conventional cross-benchmark average for normalized metrics.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (the paper's "on average across
// the benchmarks").
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sorted returns a sorted copy of xs.
func Sorted(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
