package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Dispatch outcomes for womd_cluster_dispatch_total.
const (
	outcomeOK      = "ok"      // done frame received, job settled
	outcomeRequeue = "requeue" // dispatch or stream failed; job re-routed
	outcomeStolen  = "stolen"  // queued job stolen back for rebalancing
	outcomeError   = "error"   // dispatch RPC itself failed
)

// clusterMetrics aggregates the coordinator's fleet counters, exported as
// the womd_cluster_* Prometheus families via Coordinator.WriteProm.
type clusterMetrics struct {
	Requeues  atomic.Uint64 // jobs re-routed after a worker failure/eviction
	Steals    atomic.Uint64 // queued jobs stolen back for rebalancing
	Evictions atomic.Uint64 // workers evicted on heartbeat timeout

	mu       sync.Mutex
	dispatch map[[2]string]uint64 // {worker, outcome} → count
}

func newClusterMetrics() *clusterMetrics {
	return &clusterMetrics{dispatch: make(map[[2]string]uint64)}
}

// CountDispatch increments womd_cluster_dispatch_total{worker,outcome}.
func (m *clusterMetrics) CountDispatch(worker, outcome string) {
	m.mu.Lock()
	m.dispatch[[2]string{worker, outcome}]++
	m.mu.Unlock()
}

// writeDispatch renders the labeled dispatch family. The HELP/TYPE header is
// emitted only alongside samples, matching the repo's exposition convention.
func (m *clusterMetrics) writeDispatch(w io.Writer) {
	m.mu.Lock()
	keys := make([][2]string, 0, len(m.dispatch))
	for k := range m.dispatch {
		keys = append(keys, k)
	}
	counts := make([]uint64, len(keys))
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for i, k := range keys {
		counts[i] = m.dispatch[k]
	}
	m.mu.Unlock()
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP womd_cluster_dispatch_total Job dispatches by worker and outcome.\n"+
		"# TYPE womd_cluster_dispatch_total counter\n")
	for i, k := range keys {
		fmt.Fprintf(w, "womd_cluster_dispatch_total{worker=%q,outcome=%q} %d\n", k[0], k[1], counts[i])
	}
}

// WriteProm exports the coordinator's cluster families: the fleet gauge (by
// state), per-worker heartbeat age, and the dispatch/requeue/steal/eviction
// counters. Installed on the engine server via engine.WithPromAppender.
func (c *Coordinator) WriteProm(w io.Writer) {
	type workerStat struct {
		id       string
		ageMs    int64
		draining bool
	}
	c.mu.Lock()
	stats := make([]workerStat, 0, len(c.workers))
	for _, ws := range c.workers {
		stats = append(stats, workerStat{
			id:       ws.id,
			ageMs:    c.now().Sub(ws.lastBeat).Milliseconds(),
			draining: ws.draining,
		})
	}
	c.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].id < stats[j].id })

	active, draining := 0, 0
	for _, s := range stats {
		if s.draining {
			draining++
		} else {
			active++
		}
	}
	fmt.Fprintf(w, "# HELP womd_cluster_workers Registered cluster workers by state.\n"+
		"# TYPE womd_cluster_workers gauge\n"+
		"womd_cluster_workers{state=\"active\"} %d\n"+
		"womd_cluster_workers{state=\"draining\"} %d\n", active, draining)
	if len(stats) > 0 {
		fmt.Fprintf(w, "# HELP womd_cluster_heartbeat_age_seconds Time since each worker's last heartbeat.\n"+
			"# TYPE womd_cluster_heartbeat_age_seconds gauge\n")
		for _, s := range stats {
			fmt.Fprintf(w, "womd_cluster_heartbeat_age_seconds{worker=%q} %g\n",
				s.id, float64(s.ageMs)/1000)
		}
	}
	m := c.metrics
	m.writeDispatch(w)
	fmt.Fprintf(w, "# HELP womd_cluster_requeue_total Jobs re-routed after a worker failure or eviction.\n"+
		"# TYPE womd_cluster_requeue_total counter\nwomd_cluster_requeue_total %d\n", m.Requeues.Load())
	fmt.Fprintf(w, "# HELP womd_cluster_steals_total Queued jobs stolen back for rebalancing.\n"+
		"# TYPE womd_cluster_steals_total counter\nwomd_cluster_steals_total %d\n", m.Steals.Load())
	fmt.Fprintf(w, "# HELP womd_cluster_evictions_total Workers evicted on heartbeat timeout.\n"+
		"# TYPE womd_cluster_evictions_total counter\nwomd_cluster_evictions_total %d\n", m.Evictions.Load())
	c.writeFederated(w)
}
