package cluster

// Fleet metrics federation: the coordinator periodically scrapes each
// registered worker's GET /metrics, keeps the womd_* families, renames
// them womd_fleet_* and stamps every sample with an instance="<worker id>"
// label, then re-exposes the merged result on its own /metrics (appended
// by Coordinator.WriteProm) plus a summarized JSON view on GET /v1/fleet.
// The rename keeps the coordinator's own womd_* families collision-free,
// and the strict exposition rule (one TYPE header per family, never
// without samples) holds because each federated family is emitted once
// with the samples of every instance under it.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// scrapeTimeout bounds one worker /metrics fetch; a wedged worker must not
// stall the whole federation pass for long.
const scrapeTimeout = 5 * time.Second

// scrapeBodyLimit caps one scrape response. A worker exposition is a few
// KiB; anything near the cap is a misconfigured endpoint, not metrics.
const scrapeBodyLimit = 4 << 20

// fleetFamily is one merged metric family across instances. Immutable once
// installed into federated.families — a pass builds a fresh map and swaps
// it in, so readers can render outside the lock.
type fleetFamily struct {
	help    string
	typ     string
	samples []string // fully rendered lines, instance label applied
}

// federated holds the result of the coordinator's last scrape pass.
type federated struct {
	mu        sync.Mutex
	families  map[string]*fleetFamily
	instances int       // workers scraped successfully in the last pass
	errors    uint64    // cumulative failed scrapes
	last      time.Time // when the last pass finished (zero: none yet)
}

// federateLoop runs scrape passes every cfg.Federate until stopped.
func (c *Coordinator) federateLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Federate)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.FederateOnce(context.Background())
		}
	}
}

// FederateOnce performs one scrape pass over the registered fleet and
// swaps the merged families in. Exported so tests (and debugging) can
// force a pass deterministically instead of waiting on the loop.
func (c *Coordinator) FederateOnce(ctx context.Context) {
	type target struct{ id, addr string }
	c.mu.Lock()
	targets := make([]target, 0, len(c.workers))
	for _, ws := range c.workers {
		targets = append(targets, target{id: ws.id, addr: ws.addr})
	}
	c.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })

	fams := make(map[string]*fleetFamily)
	up := 0
	var errs uint64
	for _, t := range targets {
		body, err := c.scrapeWorker(ctx, t.addr)
		if err != nil {
			errs++
			c.log.Warn("fleet metrics scrape failed", "worker", t.id, "error", err.Error())
			continue
		}
		up++
		mergeFleetFamilies(fams, body, t.id)
	}
	c.fed.mu.Lock()
	c.fed.families = fams
	c.fed.instances = up
	c.fed.errors += errs
	c.fed.last = c.now()
	c.fed.mu.Unlock()
}

// scrapeWorker fetches one worker's Prometheus exposition text.
func (c *Coordinator) scrapeWorker(ctx context.Context, addr string) (string, error) {
	sctx, cancel := context.WithTimeout(ctx, scrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, "GET", addr+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return "", fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, scrapeBodyLimit))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// fleetName maps a worker family name into the federated namespace.
// Non-womd families are dropped, and already-federated ones too — scraping
// another coordinator must not compound the prefix.
func fleetName(name string) (string, bool) {
	if !strings.HasPrefix(name, "womd_") || strings.HasPrefix(name, "womd_fleet_") {
		return "", false
	}
	return "womd_fleet_" + name[len("womd_"):], true
}

// mergeFleetFamilies folds one instance's exposition into fams. The parse
// leans on the repo's own exposition convention (HELP then TYPE headers,
// immediately followed by the family's samples): samples are attributed to
// the most recent header, which also covers histogram series whose sample
// names extend the family name (_bucket, _sum, _count).
func mergeFleetFamilies(fams map[string]*fleetFamily, body, instance string) {
	var cur *fleetFamily
	var curBase string // original womd_* name of cur
	header := func(name string) *fleetFamily {
		fn, ok := fleetName(name)
		if !ok {
			cur, curBase = nil, ""
			return nil
		}
		fam := fams[fn]
		if fam == nil {
			fam = &fleetFamily{}
			fams[fn] = fam
		}
		cur, curBase = fam, name
		return fam
	}
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name, help, _ := strings.Cut(line[len("# HELP "):], " ")
			if fam := header(name); fam != nil && fam.help == "" {
				fam.help = help
			}
		case strings.HasPrefix(line, "# TYPE "):
			name, typ, _ := strings.Cut(line[len("# TYPE "):], " ")
			if fam := header(name); fam != nil && fam.typ == "" {
				fam.typ = typ
			}
		case line == "" || strings.HasPrefix(line, "#"):
			// comment or blank: family context unchanged
		default:
			if cur == nil {
				continue // family was skipped; skip its samples too
			}
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			if !strings.HasPrefix(name, curBase) {
				continue // stray sample with no preceding header
			}
			cur.samples = append(cur.samples, fleetSampleLine(line, name, instance))
		}
	}
}

// fleetSampleLine renames one sample line into the womd_fleet_ namespace
// and appends the instance label. The closing brace is located from the
// right: label values may contain '}', but the value after the label set
// never does.
func fleetSampleLine(line, name, instance string) string {
	fleet := "womd_fleet_" + name[len("womd_"):]
	rest := line[len(name):]
	if strings.HasPrefix(rest, "{") {
		i := strings.LastIndex(rest, "}")
		if i < 0 {
			return fleet + rest // malformed; pass through renamed
		}
		return fleet + rest[:i] + `,instance="` + instance + `"` + rest[i:]
	}
	return fleet + `{instance="` + instance + `"}` + rest
}

// writeFederated renders the merged fleet families plus the federation
// meta-metrics. Families that gathered no samples are skipped so a TYPE
// header never appears bare.
func (c *Coordinator) writeFederated(w io.Writer) {
	c.fed.mu.Lock()
	instances, errors, last := c.fed.instances, c.fed.errors, c.fed.last
	names := make([]string, 0, len(c.fed.families))
	fams := make([]*fleetFamily, 0, len(c.fed.families))
	for name, fam := range c.fed.families {
		if len(fam.samples) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, c.fed.families[name])
	}
	c.fed.mu.Unlock()

	fmt.Fprintf(w, "# HELP womd_fleet_instances Workers scraped successfully in the last federation pass.\n"+
		"# TYPE womd_fleet_instances gauge\nwomd_fleet_instances %d\n", instances)
	fmt.Fprintf(w, "# HELP womd_fleet_scrape_errors_total Failed worker /metrics scrapes.\n"+
		"# TYPE womd_fleet_scrape_errors_total counter\nwomd_fleet_scrape_errors_total %d\n", errors)
	if !last.IsZero() {
		fmt.Fprintf(w, "# HELP womd_fleet_scrape_age_seconds Time since the last federation pass.\n"+
			"# TYPE womd_fleet_scrape_age_seconds gauge\nwomd_fleet_scrape_age_seconds %g\n",
			c.now().Sub(last).Seconds())
	}
	for i, name := range names {
		fam := fams[i]
		if fam.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, fam.help)
		}
		if fam.typ != "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, fam.typ)
		}
		for _, s := range fam.samples {
			fmt.Fprintln(w, s)
		}
	}
}

// FleetWorkerView is one worker in GET /v1/fleet: identity plus the load
// figures from its most recent heartbeat.
type FleetWorkerView struct {
	ID             string `json:"id"`
	Name           string `json:"name"`
	Addr           string `json:"addr"`
	Capacity       int    `json:"capacity"`
	HeartbeatAgeMs int64  `json:"heartbeat_age_ms"`
	Draining       bool   `json:"draining,omitempty"`
	Ready          bool   `json:"ready"`
	QueueDepth     int64  `json:"queue_depth"`
	Running        int64  `json:"running"`
	Completed      uint64 `json:"completed"`
	Failed         uint64 `json:"failed"`
	SimEvents      uint64 `json:"sim_events"`
	Outstanding    int    `json:"outstanding"`
}

// FleetTotals sums the per-worker load figures.
type FleetTotals struct {
	Workers    int    `json:"workers"`
	QueueDepth int64  `json:"queue_depth"`
	Running    int64  `json:"running"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	SimEvents  uint64 `json:"sim_events"`
}

// FleetFederation reports the scrape loop's health.
type FleetFederation struct {
	Instances    int    `json:"instances"`
	ScrapeErrors uint64 `json:"scrape_errors"`
	// LastScrapeAgeMs is -1 until the first pass completes.
	LastScrapeAgeMs int64 `json:"last_scrape_age_ms"`
}

// FleetView is the GET /v1/fleet payload.
type FleetView struct {
	Workers    []FleetWorkerView `json:"workers"`
	Totals     FleetTotals       `json:"totals"`
	Federation FleetFederation   `json:"federation"`
}

// HandleFleet serves GET /v1/fleet: the operator-facing fleet summary —
// per-worker load, fleet totals, federation health. Mounted on the
// coordinator's public API mux by cmd/womd.
func (c *Coordinator) HandleFleet(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	workers := make([]FleetWorkerView, 0, len(c.workers))
	for _, ws := range c.workers {
		workers = append(workers, FleetWorkerView{
			ID:             ws.id,
			Name:           ws.name,
			Addr:           ws.addr,
			Capacity:       ws.capacity,
			HeartbeatAgeMs: c.now().Sub(ws.lastBeat).Milliseconds(),
			Draining:       ws.draining,
			Ready:          !ws.draining && !ws.notReady,
			QueueDepth:     ws.queueDepth,
			Running:        ws.running,
			Completed:      ws.completed,
			Failed:         ws.failed,
			SimEvents:      ws.simEvents,
			Outstanding:    len(ws.assignments),
		})
	}
	c.mu.Unlock()
	sort.Slice(workers, func(i, j int) bool { return workers[i].ID < workers[j].ID })

	view := FleetView{Workers: workers}
	for _, wv := range workers {
		view.Totals.Workers++
		view.Totals.QueueDepth += wv.QueueDepth
		view.Totals.Running += wv.Running
		view.Totals.Completed += wv.Completed
		view.Totals.Failed += wv.Failed
		view.Totals.SimEvents += wv.SimEvents
	}
	c.fed.mu.Lock()
	view.Federation = FleetFederation{
		Instances:       c.fed.instances,
		ScrapeErrors:    c.fed.errors,
		LastScrapeAgeMs: -1,
	}
	if !c.fed.last.IsZero() {
		view.Federation.LastScrapeAgeMs = c.now().Sub(c.fed.last).Milliseconds()
	}
	c.fed.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}
