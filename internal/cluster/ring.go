package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// ringVnodes is how many points each member contributes to the hash ring.
// Enough for an even spread over a handful of workers without making
// membership changes expensive — fleets here are tens of workers, not
// thousands.
const ringVnodes = 64

// ring is a consistent-hash ring: keys map to members such that adding or
// removing one member only remaps the keys that hashed to its arc. Safe for
// concurrent use.
type ring struct {
	mu      sync.RWMutex
	points  []ringPoint // sorted by hash
	members map[string]struct{}
}

type ringPoint struct {
	hash   uint64
	member string
}

func newRing() *ring {
	return &ring{members: make(map[string]struct{})}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never errors
	// fnv barely avalanches on short, similar strings ("w-001#0" …), which
	// would cluster each member's virtual nodes into one contiguous arc; a
	// splitmix64 finalizer spreads them across the ring.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a member's virtual nodes; adding an existing member is a
// no-op.
func (r *ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for v := 0; v < ringVnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash:   ringHash(member + "#" + strconv.Itoa(v)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its virtual nodes.
func (r *ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Pick maps key to a member, walking clockwise from the key's hash and
// skipping members for which skip returns true (draining or excluded
// workers). Returns "" when the ring is empty or every member is skipped.
func (r *ring) Pick(key string, skip func(member string) bool) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	tried := make(map[string]struct{}, len(r.members))
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, seen := tried[p.member]; seen {
			continue
		}
		tried[p.member] = struct{}{}
		if skip == nil || !skip(p.member) {
			return p.member
		}
		if len(tried) == len(r.members) {
			return ""
		}
	}
	return ""
}

// Members snapshots the current membership.
func (r *ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
