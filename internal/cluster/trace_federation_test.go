package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"womcpcm/internal/engine"
	"womcpcm/internal/probe"
	"womcpcm/internal/sim"
	"womcpcm/internal/span"
)

// TestClusterMergedTrace is the distributed-tracing e2e: a job submitted to
// the coordinator executes on a worker, and the coordinator's trace buffer
// ends up holding one stitched trace — coordinator lifecycle spans, the
// dispatch span, and the worker's own lifecycle spans shipped back over the
// done frame (or the /cluster/v1/spans fallback) — served as Chrome trace
// JSON from GET /v1/jobs/{id}/trace.
func TestClusterMergedTrace(t *testing.T) {
	tc := newTestCluster(t, Config{}, engine.Config{})
	tc.addWorker("alpha")
	tc.addWorker("beta")

	job, err := tc.mgr.Submit(context.Background(), engine.JobRequest{
		Experiment: "fig5",
		Params:     sim.Params{Requests: 400, Bench: []string{"qsort"}, Parallelism: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, engine.StateSucceeded, 60*time.Second)
	tid := job.TraceContext().TraceID
	if len(tid) != 32 {
		t.Fatalf("job trace id = %q, want 32 hex digits", tid)
	}

	// Worker spans arrive asynchronously (done frame, then the POST
	// fallback after the stream closes) — poll until the worker's root
	// "job" span lands in the coordinator's buffer.
	var spans []span.Span
	var workerJob *span.Span
	deadline := time.Now().Add(30 * time.Second)
	for workerJob == nil {
		if time.Now().After(deadline) {
			t.Fatalf("worker spans never reached the coordinator; have %v", spanNames(spans))
		}
		spans = tc.coord.tracer.Trace(tid)
		for i := range spans {
			if spans[i].Name == "job" && spans[i].Service != "coordinator" {
				workerJob = &spans[i]
				break
			}
		}
		if workerJob == nil {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// One trace, both processes, the full lifecycle vocabulary.
	services := make(map[string]bool)
	for _, s := range spans {
		if s.TraceID != tid {
			t.Fatalf("span %s/%s leaked into trace %s", s.Service, s.Name, tid)
		}
		services[s.Service] = true
	}
	if len(services) < 2 || !services["coordinator"] {
		t.Errorf("merged trace spans services %v, want coordinator + a worker", services)
	}
	names := spanNames(spans)
	for _, want := range []string{"job", "admission", "queue_wait", "dispatch", "execute"} {
		if !names[want] {
			t.Errorf("merged trace missing a %q span (got %v)", want, names)
		}
	}

	// The stitch point: the worker's root span parents under the
	// coordinator's dispatch span, so the waterfall nests correctly.
	var dispatch *span.Span
	for i := range spans {
		if spans[i].Name == "dispatch" && spans[i].Service == "coordinator" {
			dispatch = &spans[i]
		}
	}
	if dispatch == nil {
		t.Fatal("no dispatch span in the merged trace")
	}
	if workerJob.Parent != dispatch.SpanID {
		t.Errorf("worker job span parent = %q, want dispatch span %q",
			workerJob.Parent, dispatch.SpanID)
	}
	if workerJob.Service == dispatch.Service {
		t.Errorf("worker job span recorded by %q, want a worker service", workerJob.Service)
	}

	// The HTTP surface serves the same merged trace as Chrome trace JSON.
	resp, err := http.Get(tc.ts.URL + "/v1/jobs/" + job.ID() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Trace-ID"); got != tid {
		t.Errorf("X-Trace-ID = %q, want %q", got, tid)
	}
	var ct probe.ChromeTrace
	if err := json.Unmarshal([]byte(body), &ct); err != nil {
		t.Fatalf("trace body is not Chrome trace JSON: %v", err)
	}
	slices, procs := 0, 0
	for _, ev := range ct.TraceEvents {
		switch {
		case ev.Ph == "X":
			slices++
		case ev.Ph == "M" && ev.Name == "process_name":
			procs++
		}
	}
	if slices < len(spans) {
		t.Errorf("Chrome trace has %d slices for %d buffered spans", slices, len(spans))
	}
	if procs < 2 {
		t.Errorf("Chrome trace names %d processes, want coordinator + worker", procs)
	}
}

func spanNames(spans []span.Span) map[string]bool {
	names := make(map[string]bool)
	for _, s := range spans {
		names[s.Name] = true
	}
	return names
}

// TestClusterFederatedMetrics checks fleet federation end to end: after a
// job completes on a worker, a federation pass re-exposes the worker's
// womd_* families on the coordinator's /metrics as womd_fleet_* with
// instance labels — in strictly valid exposition format — and GET /v1/fleet
// summarizes the same fleet.
func TestClusterFederatedMetrics(t *testing.T) {
	tc := newTestCluster(t, Config{}, engine.Config{})
	tc.addWorker("alpha")
	tc.addWorker("beta")

	job, err := tc.mgr.Submit(context.Background(), engine.JobRequest{
		Experiment: "fig5",
		Params:     sim.Params{Requests: 400, Bench: []string{"qsort"}, Parallelism: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, engine.StateSucceeded, 60*time.Second)

	tc.coord.FederateOnce(context.Background())
	prom := httpGetBody(t, tc.ts.URL+"/metrics")
	types, samples := parseProm(t, prom)

	// Every declared family must be backed by samples (the strict
	// exposition rule federation must preserve while merging).
	backed := make(map[string]bool)
	for _, s := range samples {
		backed[promBaseName(s.name)] = true
		backed[s.name] = true
	}
	for name, typ := range types {
		if !backed[name] {
			t.Errorf("# TYPE %s %s has no samples", name, typ)
		}
	}

	// Both workers were scraped; their engine counters appear under the
	// fleet namespace with instance labels, and the completed-jobs total
	// across instances counts our one job.
	instances := map[string]bool{}
	var completed float64
	for _, s := range samples {
		if s.name == "womd_fleet_instances" && s.value != 2 {
			t.Errorf("womd_fleet_instances = %g, want 2", s.value)
		}
		if !strings.HasPrefix(s.name, "womd_fleet_") || !strings.HasPrefix(promBaseName(s.name), "womd_fleet_") {
			continue
		}
		switch s.name {
		case "womd_fleet_instances", "womd_fleet_scrape_errors_total", "womd_fleet_scrape_age_seconds":
			continue // federation meta-metrics carry no instance label
		}
		inst := s.labels["instance"]
		if !regexp.MustCompile(`^w-\d{3}$`).MatchString(inst) {
			t.Fatalf("federated sample %s labels %v: missing worker instance", s.name, s.labels)
		}
		instances[inst] = true
		if s.name == "womd_fleet_jobs_completed_total" {
			completed += s.value
		}
	}
	if len(instances) != 2 {
		t.Errorf("federated samples cover instances %v, want 2 workers", instances)
	}
	if completed != 1 {
		t.Errorf("sum of womd_fleet_jobs_completed_total = %g, want 1:\n%s",
			completed, grepLines(prom, "womd_fleet_jobs_completed_total"))
	}
	if typ := types["womd_fleet_jobs_completed_total"]; typ != "counter" {
		t.Errorf("womd_fleet_jobs_completed_total TYPE = %q, want counter", typ)
	}
	// The span-buffer health families federate too — fleet-wide tracing
	// observability from one scrape.
	if !backed["womd_fleet_spans_recorded_total"] {
		t.Error("worker span-recorder metrics not federated")
	}

	// The JSON summary agrees: two workers, our job counted, a fresh pass.
	// Completed totals ride on heartbeats, so give them a beat to land.
	var fleet FleetView
	deadline := time.Now().Add(10 * time.Second)
	for {
		body := httpGetBody(t, tc.ts.URL+"/v1/fleet")
		if err := json.Unmarshal([]byte(body), &fleet); err != nil {
			t.Fatalf("GET /v1/fleet: %v: %s", err, body)
		}
		if fleet.Totals.Completed >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if fleet.Totals.Workers != 2 || len(fleet.Workers) != 2 {
		t.Errorf("fleet view totals %+v (%d workers), want 2", fleet.Totals, len(fleet.Workers))
	}
	if fleet.Totals.Completed != 1 {
		t.Errorf("fleet totals completed = %d, want 1", fleet.Totals.Completed)
	}
	if fleet.Federation.Instances != 2 {
		t.Errorf("fleet federation instances = %d, want 2", fleet.Federation.Instances)
	}
	if fleet.Federation.LastScrapeAgeMs < 0 {
		t.Error("fleet federation reports no completed scrape pass")
	}
	for _, w := range fleet.Workers {
		if w.ID == "" || w.Name == "" || w.Addr == "" || w.Capacity != 2 {
			t.Errorf("fleet worker view incomplete: %+v", w)
		}
	}
}

// promSample / parseProm mirror the engine package's strict exposition
// parser: bad label quoting, duplicate TYPE lines, and malformed values all
// fail the test. Duplicated rather than exported — it is itself part of the
// contract under test.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
	promLabelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"`)
)

func parseProm(t *testing.T, body string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	for ln, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := types[fields[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, fields[2])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}
		name := promNameRe.FindString(line)
		if name == "" {
			t.Fatalf("line %d: no metric name: %q", ln+1, line)
		}
		rest := line[len(name):]
		labels := make(map[string]string)
		if strings.HasPrefix(rest, "{") {
			rest = rest[1:]
			for !strings.HasPrefix(rest, "}") {
				m := promLabelRe.FindStringSubmatch(rest)
				if m == nil {
					t.Fatalf("line %d: bad label quoting after %q{: %q", ln+1, name, rest)
				}
				labels[m[1]] = m[2]
				rest = rest[len(m[0]):]
				rest = strings.TrimPrefix(rest, ",")
			}
			rest = rest[1:]
		}
		valStr := strings.TrimSpace(rest)
		value, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q for %s: %v", ln+1, valStr, name, err)
		}
		samples = append(samples, promSample{name: name, labels: labels, value: value})
	}
	return types, samples
}

// promBaseName strips the histogram series suffixes.
func promBaseName(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}
