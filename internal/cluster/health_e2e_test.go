package cluster

import (
	"context"
	"net/http"
	"testing"
	"time"

	"womcpcm/internal/engine"
	"womcpcm/internal/health"
	"womcpcm/internal/sim"
)

// TestWorkerDeathFiresFleetAlert is the fleet-health acceptance e2e: with
// two workers registered, killing the one that served a job fires the
// heartbeat_stale alert for it — annotated with that job's exemplar trace,
// resolvable through the coordinator's trace API — and the alert resolves
// once a replacement re-registers under the same name and the dead
// incarnation is evicted.
func TestWorkerDeathFiresFleetAlert(t *testing.T) {
	ex := health.NewExemplars()
	tc := newTestCluster(t, Config{}, engine.Config{Exemplars: ex})
	workers := map[string]*testWorker{
		"alpha": tc.addWorker("alpha"),
		"beta":  tc.addWorker("beta"),
	}

	he, err := health.NewEngine(health.Config{
		Rules: health.RulesConfig{Rules: []health.Rule{{
			Name:      "fleet-health",
			Kind:      health.KindHeartbeatStale,
			Threshold: 0.3, // seconds of heartbeat silence; beats are 100ms
		}}},
		Signals:   health.Signals{Workers: tc.coord.HealthWorkers},
		Exemplars: ex,
	})
	if err != nil {
		t.Fatal(err)
	}

	// One job through the fleet seeds the worker exemplar and tells us which
	// worker to kill.
	tid := tc.putTrace("health-e2e", replayTrace(2000))
	job, err := tc.mgr.Submit(context.Background(), engine.JobRequest{
		Experiment: "replay",
		Params:     sim.Params{Ranks: 2, Banks: 4, Parallelism: 1},
		TraceID:    tid,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for job.State() != engine.StateSucceeded {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	victimID := job.View().Worker
	if victimID == "" {
		t.Fatal("job ran locally; no worker to kill")
	}
	victim := ""
	for _, ws := range tc.coord.HealthWorkers() {
		if ws.ID == victimID {
			victim = ws.Name
		}
	}
	if victim == "" {
		t.Fatalf("worker %s not in fleet view", victimID)
	}

	waitAlert := func(state health.State) health.AlertView {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			he.EvalOnce()
			for _, a := range he.Alerts() {
				if a.Rule == "fleet-health" && a.Subject == victim && a.State == state {
					return a
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("no %s fleet-health alert for %s (alerts: %+v)",
					state, victim, he.Alerts())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	workers[victim].kill()
	fired := waitAlert(health.StateFiring)
	if fired.Annotations["exemplar_job"] != job.ID() {
		t.Fatalf("exemplar_job = %q, want %q (annotations %v)",
			fired.Annotations["exemplar_job"], job.ID(), fired.Annotations)
	}
	if fired.Annotations["exemplar_trace"] == "" {
		t.Fatalf("firing alert has no exemplar trace: %v", fired.Annotations)
	}
	// The annotation must link to a resolvable trace on the coordinator.
	resp, err := http.Get(tc.ts.URL + fired.Annotations["trace_url"])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", fired.Annotations["trace_url"], resp.StatusCode)
	}

	// A replacement registering under the same name becomes the subject's
	// healthy incarnation once the dead one ages out of the fleet.
	tc.addWorker(victim)
	resolved := waitAlert(health.StateResolved)
	if resolved.ID != fired.ID {
		t.Fatalf("resolved alert %s is not the fired alert %s", resolved.ID, fired.ID)
	}
	if resolved.ResolvedAt == nil {
		t.Fatal("resolved alert missing ResolvedAt")
	}
}

// TestNotReadyRouting pins readiness-aware worker eligibility: a worker
// whose heartbeat flags NotReady keeps its registration but stops being
// routable — for both the ring owner and the least-loaded fallback — and
// comes back the moment a heartbeat clears the flag.
func TestNotReadyRouting(t *testing.T) {
	c := NewCoordinator(Config{})
	for _, name := range []string{"a", "b"} {
		c.mu.Lock()
		c.seq++
		ws := &workerState{
			id:          "w-" + name,
			name:        name,
			addr:        "http://" + name,
			lastBeat:    time.Now(),
			assignments: make(map[string]*assignment),
		}
		c.workers[ws.id] = ws
		c.ring.Add(ws.id)
		c.mu.Unlock()
	}

	const key = "routing-key"
	owner := c.Owner(key)
	if owner == "" {
		t.Fatal("no owner with two live workers")
	}
	c.mu.Lock()
	c.workers[owner].notReady = true
	c.mu.Unlock()
	if got := c.Owner(key); got == owner || got == "" {
		t.Fatalf("owner after notReady = %q, want the other worker", got)
	}
	if ws := c.pickWorker(key, false, nil); ws == nil || ws.id == owner {
		t.Fatalf("least-loaded pick = %+v, want the ready worker", ws)
	}
	c.mu.Lock()
	for _, ws := range c.workers {
		ws.notReady = true
	}
	c.mu.Unlock()
	if got := c.Owner(key); got != "" {
		t.Fatalf("owner with whole fleet not ready = %q, want none", got)
	}
	if ws := c.pickWorker(key, false, nil); ws != nil {
		t.Fatalf("pick with whole fleet not ready = %+v, want nil", ws)
	}
	c.mu.Lock()
	c.workers[owner].notReady = false
	c.mu.Unlock()
	if got := c.Owner(key); got != owner {
		t.Fatalf("owner after recovery = %q, want %q", got, owner)
	}
}
