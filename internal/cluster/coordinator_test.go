package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"womcpcm/internal/engine"
	"womcpcm/internal/sim"
)

func postTo(t *testing.T, url string, in, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestRegisterFingerprintMismatch checks a worker built with a different sim
// registry is refused with 409 — mixed builds must not serve jobs.
func TestRegisterFingerprintMismatch(t *testing.T) {
	coord := NewCoordinator(Config{})
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	resp := postTo(t, ts.URL+"/cluster/v1/register", RegisterRequest{
		Name: "bad", Addr: "http://127.0.0.1:1", Fingerprint: "deadbeefdeadbeef",
	}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched fingerprint register = HTTP %d, want 409", resp.StatusCode)
	}

	var ok RegisterResponse
	resp = postTo(t, ts.URL+"/cluster/v1/register", RegisterRequest{
		Name: "good", Addr: "http://127.0.0.1:2", Fingerprint: sim.RegistryFingerprint(),
	}, &ok)
	if resp.StatusCode != http.StatusOK || ok.ID == "" {
		t.Fatalf("matching register = HTTP %d id %q, want 200 with id", resp.StatusCode, ok.ID)
	}
}

// TestHeartbeatUnknownWorker checks an evicted or unknown id gets 404, the
// signal to re-register.
func TestHeartbeatUnknownWorker(t *testing.T) {
	coord := NewCoordinator(Config{})
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()
	resp := postTo(t, ts.URL+"/cluster/v1/heartbeat", HeartbeatRequest{ID: "w-999"}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown heartbeat = HTTP %d, want 404", resp.StatusCode)
	}
}

// TestEvictionOnHeartbeatTimeout registers a worker that never heartbeats
// and checks the eviction loop removes it and counts it.
func TestEvictionOnHeartbeatTimeout(t *testing.T) {
	coord := NewCoordinator(Config{Heartbeat: 20 * time.Millisecond, EvictAfter: 80 * time.Millisecond})
	coord.Start()
	defer coord.Stop()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	postTo(t, ts.URL+"/cluster/v1/register", RegisterRequest{
		Name: "silent", Addr: "http://127.0.0.1:3", Fingerprint: sim.RegistryFingerprint(),
	}, nil)
	if n := coord.liveWorkers(); n != 1 {
		t.Fatalf("live workers after register = %d, want 1", n)
	}
	deadline := time.Now().Add(3 * time.Second)
	for coord.liveWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("silent worker never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := coord.metrics.Evictions.Load(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	var prom bytes.Buffer
	coord.WriteProm(&prom)
	if !strings.Contains(prom.String(), "womd_cluster_evictions_total 1") {
		t.Errorf("WriteProm missing eviction counter:\n%s", prom.String())
	}
	if !strings.Contains(prom.String(), `womd_cluster_workers{state="active"} 0`) {
		t.Errorf("WriteProm missing workers gauge:\n%s", prom.String())
	}
}

// TestExecuteFallsBackWithoutWorkers checks a coordinator with an empty
// fleet runs jobs locally: the Execute hook declines and the manager's
// in-process path is the fallback.
func TestExecuteFallsBackWithoutWorkers(t *testing.T) {
	coord := NewCoordinator(Config{})
	mgr := engine.New(engine.Config{Workers: 1, QueueDepth: 4, Execute: coord.Execute})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck
	coord.AttachManager(mgr)

	job, err := mgr.Submit(context.Background(), engine.JobRequest{
		Experiment: "fig5",
		Params:     sim.Params{Requests: 500, Bench: []string{"qsort"}, Parallelism: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, engine.StateSucceeded, 30*time.Second)
	if res, err := job.Result(); err != nil || res == nil {
		t.Fatalf("local fallback result = %v, %v", res, err)
	}
	if w := job.View().Worker; w != "" {
		t.Errorf("local fallback job carries worker %q, want none", w)
	}
}

// waitState polls a job until it reaches want or the deadline passes.
func waitState(t *testing.T, job *engine.Job, want engine.State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if s := job.State(); s == want {
			return
		} else if s.Terminal() {
			_, err := job.Result()
			t.Fatalf("job %s reached %s (err %v), want %s", job.ID(), s, err, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", job.ID(), job.State(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
