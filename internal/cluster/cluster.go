// Package cluster distributes the womd engine across a coordinator and a
// fleet of workers.
//
// The coordinator is a standalone womd process that keeps the public HTTP
// API, admission queue, result store, singleflight, and SSE fan-out exactly
// as in single-process mode, but installs a dispatcher as the engine's
// Execute hook (engine.Config.Execute): a worker-pool goroutine that
// dequeues a job hands it to the dispatcher, which routes it to a cluster
// worker over a small HTTP/JSON RPC surface mounted under /cluster/v1/ and
// streams the run's events back. Workers run their own engine.Manager and
// expose the worker half of the RPC surface; they register with the
// coordinator at startup and heartbeat with load stats thereafter.
//
// Coordinator-side endpoints (served by Coordinator.Handler):
//
//	POST /cluster/v1/register     worker joins the fleet
//	POST /cluster/v1/heartbeat    liveness + load report
//	POST /cluster/v1/drain        worker announces shutdown (SIGTERM)
//	GET  /cluster/v1/workers      fleet view (debugging, smoke tests)
//	GET  /cluster/v1/traces/{id}  binary trace download for replay dispatch
//	POST /cluster/v1/spans        worker ships job spans (DoneFrame fallback)
//
// Worker-side endpoints (served by Agent.Handler):
//
//	POST /cluster/v1/jobs                   dispatch one job
//	POST /cluster/v1/jobs/{id}/cancel       propagate cancel / steal a queued job
//	GET  /cluster/v1/jobs/{id}/events       NDJSON event stream for one job
//
// Routing is consistent hashing (fnv-64a ring with virtual nodes) over the
// job's result-store content key, so identical submissions land on the same
// worker and fold into its local cache; jobs with no content key (trace
// replays) hash their computed parameter key or job id instead. Redispatches
// after a failure go to the least-loaded surviving worker.
//
// Failure handling: a worker that misses heartbeats past EvictAfter is
// evicted and its in-flight jobs requeued; a worker whose not-yet-started
// backlog exceeds the fleet average by StealMargin has queued jobs stolen
// back and re-routed; a worker announcing drain stops receiving work and
// has its queued (not running) jobs stolen immediately.
package cluster

import (
	"encoding/json"

	"womcpcm/internal/engine"
	"womcpcm/internal/sim"
	"womcpcm/internal/span"
)

// RegisterRequest is the POST /cluster/v1/register payload: the worker's
// advertised base URL (scheme://host:port, no trailing slash), its slot
// capacity, and the sim-registry fingerprint it was built with. A
// fingerprint mismatch is rejected — a worker with a different experiment
// set or params schema would silently compute different results.
type RegisterRequest struct {
	Name        string `json:"name"`
	Addr        string `json:"addr"`
	Capacity    int    `json:"capacity"`
	Fingerprint string `json:"fingerprint"`
}

// RegisterResponse assigns the worker its fleet id and the heartbeat
// interval the coordinator expects.
type RegisterResponse struct {
	ID          string `json:"id"`
	HeartbeatMs int64  `json:"heartbeat_ms"`
}

// HeartbeatRequest is the periodic liveness + load report. QueueDepth and
// Running describe the worker's local engine; Draining marks a worker that
// has begun shutdown and must receive no new work.
type HeartbeatRequest struct {
	ID         string `json:"id"`
	QueueDepth int64  `json:"queue_depth"`
	Running    int64  `json:"running"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	SimEvents  uint64 `json:"sim_events"`
	Draining   bool   `json:"draining,omitempty"`
	// NotReady marks a worker whose readiness probe fails (queue saturated)
	// without it draining: the coordinator keeps it in the fleet but routes
	// around it until a later heartbeat clears the flag. The zero value
	// means ready, so workers predating the field stay routable.
	NotReady bool `json:"not_ready,omitempty"`
}

// DrainRequest announces a worker's shutdown (POST /cluster/v1/drain): the
// coordinator stops routing to it and steals its queued jobs; running jobs
// finish streaming within the worker's drain budget.
type DrainRequest struct {
	ID string `json:"id"`
}

// DispatchRequest is the coordinator → worker job handoff. Params travels in
// its JSON schema form (the in-memory trace slice is excluded); a replay
// job instead carries the coordinator's TraceID, which the worker resolves
// by downloading GET {coordinator}/cluster/v1/traces/{id} once and caching
// the decoded records in its local trace store.
type DispatchRequest struct {
	JobID      string     `json:"job_id"` // coordinator job id, for logs
	RequestID  string     `json:"request_id,omitempty"`
	Experiment string     `json:"experiment"`
	Params     sim.Params `json:"params"`
	TraceID    string     `json:"trace_id,omitempty"`
	TraceLabel string     `json:"trace_label,omitempty"`
	TimeoutMs  int64      `json:"timeout_ms,omitempty"`
	// Tenant bills the job to the same scheduling class on the worker as
	// on the coordinator (womd -tenants).
	Tenant string `json:"tenant,omitempty"`
	// AdmittedAtMs is the coordinator-side first-admission time
	// (Unix milliseconds), so the worker measures queue-wait and any
	// tenant deadline from the client's original admission — a requeued
	// or stolen job does not have its deadline restarted at each hop.
	AdmittedAtMs int64 `json:"admitted_at_ms,omitempty"`
	// Traceparent carries the coordinator job's W3C trace context so the
	// worker's spans join the same distributed trace. Also sent as the
	// traceparent HTTP header on the dispatch POST; the body copy survives
	// header-stripping proxies.
	Traceparent string `json:"traceparent,omitempty"`
}

// DispatchResponse acknowledges a dispatch with the worker-local job id all
// follow-up RPCs (events, cancel) address.
type DispatchResponse struct {
	WorkerJobID string `json:"worker_job_id"`
}

// Frame is one NDJSON line of a job's event stream
// (GET /cluster/v1/jobs/{id}/events). Event names mirror the SSE protocol —
// "started", "progress", "window" — plus the terminal "done"; Data holds the
// event's payload (a ProgressFrame, a raw SSE window payload, or a
// DoneFrame).
type Frame struct {
	Event string          `json:"event"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// ProgressFrame is the "progress" frame payload: the worker-side completion
// gauge, re-reported on the coordinator job via Job.ForwardProgress (the
// coordinator's own view carries its job id, so the worker's is not
// forwarded verbatim).
type ProgressFrame struct {
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
}

// DoneFrame is the terminal frame: the worker job's outcome, its result on
// success, and the worker-measured host-time accounting the coordinator
// installs via Job.SetRemotePerf.
type DoneFrame struct {
	State  engine.State     `json:"state"`
	Error  string           `json:"error,omitempty"`
	Result *sim.Result      `json:"result,omitempty"`
	Perf   *engine.PerfView `json:"perf,omitempty"`
	// Spans are the worker-side spans of the job's distributed trace,
	// merged into the coordinator's span buffer on settle. Empty when the
	// worker has no tracer or the trace was sampled out.
	Spans []span.Span `json:"spans,omitempty"`
}

// SpanPush is the POST /cluster/v1/spans payload: the fallback path for
// shipping worker spans when the done frame could not carry them (stream
// broke after the run finished, spans recorded after the frame was built).
// The coordinator merges them into its buffer keyed by trace id, so the
// push is idempotent.
type SpanPush struct {
	WorkerID string      `json:"worker_id,omitempty"`
	Spans    []span.Span `json:"spans"`
}

// CancelResponse answers POST /cluster/v1/jobs/{id}/cancel. For
// reason=steal, Stolen reports whether the job was still queued and is now
// canceled (stealable); a job already running is left untouched and keeps
// streaming.
type CancelResponse struct {
	Stolen bool         `json:"stolen"`
	State  engine.State `json:"state"`
}

// WorkerView is one fleet member in GET /cluster/v1/workers.
type WorkerView struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Capacity int    `json:"capacity"`
	// HeartbeatAgeMs is the time since the last heartbeat (or registration).
	HeartbeatAgeMs int64 `json:"heartbeat_age_ms"`
	Draining       bool  `json:"draining,omitempty"`
	// Ready reports routing eligibility: not draining and the worker's last
	// heartbeat did not flag its readiness probe.
	Ready bool `json:"ready"`
	// QueueDepth and Running echo the worker's last load report.
	QueueDepth int64 `json:"queue_depth"`
	Running    int64 `json:"running"`
	// Outstanding counts coordinator-side assignments in flight on this
	// worker (dispatched, not yet terminal).
	Outstanding int `json:"outstanding"`
}
