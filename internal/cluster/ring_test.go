package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministic checks the same key always maps to the same member.
func TestRingDeterministic(t *testing.T) {
	r := newRing()
	r.Add("w-001")
	r.Add("w-002")
	r.Add("w-003")
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%d", i)
		first := r.Pick(key, nil)
		if first == "" {
			t.Fatalf("Pick(%q) = empty on a populated ring", key)
		}
		for n := 0; n < 10; n++ {
			if got := r.Pick(key, nil); got != first {
				t.Fatalf("Pick(%q) = %q, want stable %q", key, got, first)
			}
		}
	}
}

// TestRingBalance checks virtual nodes spread keys roughly evenly: no member
// of a 4-worker ring owns more than half of 1000 keys.
func TestRingBalance(t *testing.T) {
	r := newRing()
	members := []string{"w-001", "w-002", "w-003", "w-004"}
	for _, m := range members {
		r.Add(m)
	}
	counts := make(map[string]int)
	for i := 0; i < 1000; i++ {
		counts[r.Pick(fmt.Sprintf("key-%d", i), nil)]++
	}
	for _, m := range members {
		if counts[m] == 0 {
			t.Errorf("member %s owns no keys", m)
		}
		if counts[m] > 500 {
			t.Errorf("member %s owns %d/1000 keys — ring badly unbalanced", m, counts[m])
		}
	}
}

// TestRingMinimalDisruption checks removing one member only remaps the keys
// it owned.
func TestRingMinimalDisruption(t *testing.T) {
	r := newRing()
	for _, m := range []string{"w-001", "w-002", "w-003"} {
		r.Add(m)
	}
	before := make(map[string]string)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		before[key] = r.Pick(key, nil)
	}
	r.Remove("w-002")
	for key, owner := range before {
		got := r.Pick(key, nil)
		if owner != "w-002" && got != owner {
			t.Fatalf("key %q moved %s → %s though its owner survived", key, owner, got)
		}
		if owner == "w-002" && got == "w-002" {
			t.Fatalf("key %q still maps to removed member", key)
		}
	}
}

// TestRingSkip checks skip-filtered members are routed around, and an
// all-skipped ring returns empty.
func TestRingSkip(t *testing.T) {
	r := newRing()
	r.Add("w-001")
	r.Add("w-002")
	got := r.Pick("some-key", func(m string) bool { return m == "w-001" })
	if got != "w-002" {
		t.Fatalf("Pick with w-001 skipped = %q, want w-002", got)
	}
	if got := r.Pick("some-key", func(string) bool { return true }); got != "" {
		t.Fatalf("Pick with all skipped = %q, want empty", got)
	}
	if got := newRing().Pick("k", nil); got != "" {
		t.Fatalf("Pick on empty ring = %q, want empty", got)
	}
}
