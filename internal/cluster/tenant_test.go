package cluster

import (
	"context"
	"testing"
	"time"

	"womcpcm/internal/engine"
	"womcpcm/internal/sim"
)

// TestDispatchPreservesTenantAdmission: a job dispatched to a worker carries
// its tenant and original admission time, so the worker-side engine measures
// queue-wait (and any tenant deadline) from the client's first admission
// rather than restarting the clock at the hop.
func TestDispatchPreservesTenantAdmission(t *testing.T) {
	tc := newTestCluster(t, Config{}, engine.Config{})
	w := tc.addWorker("alpha")

	then := time.Now().Add(-3 * time.Second)
	job, err := tc.mgr.Submit(context.Background(), engine.JobRequest{
		Experiment:   "fig5",
		Params:       sim.Params{Requests: 20000, Seed: 7, Bench: []string{"qsort"}, Ranks: 4},
		Tenant:       "batch",
		AdmittedAtMs: then.UnixMilli(),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, engine.StateSucceeded, 60*time.Second)

	jobs := w.mgr.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("worker ran %d jobs, want 1", len(jobs))
	}
	remote := jobs[0]
	if got := remote.TenantName(); got != "batch" {
		t.Errorf("worker-side tenant = %q, want batch", got)
	}
	if got := remote.SubmittedAt(); got.Sub(then).Abs() > 100*time.Millisecond {
		t.Errorf("worker-side SubmittedAt = %v, want ≈ %v (admission preserved across dispatch)", got, then)
	}
	if got := job.SubmittedAt(); got.Sub(then).Abs() > 100*time.Millisecond {
		t.Errorf("coordinator-side SubmittedAt = %v, want ≈ %v", got, then)
	}
}
