package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"womcpcm/internal/engine"
	"womcpcm/internal/health"
	"womcpcm/internal/resultstore"
	"womcpcm/internal/sim"
	"womcpcm/internal/span"
	"womcpcm/internal/trace"
)

// Config tunes the coordinator. Zero values select production defaults.
type Config struct {
	// Heartbeat is the interval workers are told to report at (default 5s).
	Heartbeat time.Duration
	// EvictAfter is the heartbeat silence after which a worker is presumed
	// dead: removed from the ring, its in-flight jobs requeued (default
	// 3 × Heartbeat).
	EvictAfter time.Duration
	// DispatchWait bounds how long a job waits for a worker to register when
	// the fleet is empty before falling back to local execution (default 0:
	// fall back immediately).
	DispatchWait time.Duration
	// Rebalance spaces work-stealing passes (default 2 × Heartbeat).
	Rebalance time.Duration
	// StealMargin is how far above the fleet-average pending backlog a
	// worker may sit before queued jobs are stolen back (default 2).
	StealMargin int
	// Logger receives dispatch/requeue/eviction logs; nil discards them.
	Logger *slog.Logger
	// Client performs worker RPCs (default http.DefaultClient).
	Client *http.Client
	// Tracer records coordinator-side dispatch spans and merges worker
	// spans shipped back after each run. Nil disables tracing.
	Tracer *span.Recorder
	// Federate spaces fleet-metrics scrape passes, which build the
	// womd_fleet_* federated families from each worker's /metrics (default
	// 2 × Heartbeat; negative disables federation).
	Federate time.Duration
	// now is the test clock hook.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 5 * time.Second
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3 * c.Heartbeat
	}
	if c.Rebalance <= 0 {
		c.Rebalance = 2 * c.Heartbeat
	}
	if c.Federate == 0 {
		c.Federate = 2 * c.Heartbeat
	}
	if c.StealMargin <= 0 {
		c.StealMargin = 2
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// streamReconnects is how many times a broken worker event stream is
// reattached before the job is requeued elsewhere.
const streamReconnects = 2

// maxDispatchAttempts bounds how many workers one job is tried on before
// falling back to local execution — a job must not starve because the whole
// fleet is flapping.
const maxDispatchAttempts = 6

// dispatchTimeout bounds the dispatch RPC itself. The POST deliberately does
// not use the job's context: aborting it mid-flight can leave the worker
// running a job the coordinator never learned the worker-side id for, making
// it uncancelable. The ack always lands (or the worker is declared failed),
// and only then is coordinator-side cancellation honored — with a targeted
// cancel RPC. The bound covers worker-side trace downloads, which happen
// before the ack.
const dispatchTimeout = 60 * time.Second

// workerState is the coordinator's view of one fleet member. Mutable fields
// are guarded by Coordinator.mu; id/name/addr/capacity are immutable.
type workerState struct {
	id       string
	name     string
	addr     string // base URL, no trailing slash
	capacity int

	lastBeat   time.Time
	draining   bool
	notReady   bool // readiness probe failing per the last heartbeat
	queueDepth int64
	running    int64
	completed  uint64
	failed     uint64
	simEvents  uint64
	// assignments tracks in-flight dispatches (coordinator job id → state)
	// so eviction and stealing can reach the goroutines streaming them.
	assignments map[string]*assignment
}

// assignment is one dispatched job's coordination handle. The dispatching
// goroutine (Coordinator.Execute) owns it; eviction and rebalance loops
// post signals into signal (capacity 1, non-blocking — one pending signal
// is enough).
type assignment struct {
	job         *engine.Job
	workerJobID string
	started     bool // guarded by Coordinator.mu; set on the "started" frame
	signal      chan string
}

// Coordinator routes engine jobs to registered workers. Install its Execute
// as engine.Config.Execute, then AttachManager the resulting manager, mount
// Handler under /cluster/v1/, and Start the maintenance loops.
type Coordinator struct {
	cfg         Config
	log         *slog.Logger
	client      *http.Client
	metrics     *clusterMetrics
	tracer      *span.Recorder
	fed         federated
	ring        *ring
	fingerprint string

	mu      sync.Mutex
	seq     uint64
	workers map[string]*workerState
	mgr     *engine.Manager

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator builds a coordinator accepting workers whose sim registry
// matches this binary's fingerprint.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	return &Coordinator{
		cfg:         cfg,
		log:         cfg.Logger,
		client:      cfg.Client,
		metrics:     newClusterMetrics(),
		tracer:      cfg.Tracer,
		ring:        newRing(),
		fingerprint: sim.RegistryFingerprint(),
		workers:     make(map[string]*workerState),
		stopCh:      make(chan struct{}),
	}
}

func (c *Coordinator) now() time.Time { return c.cfg.now() }

// AttachManager wires the engine manager in after construction (the manager
// itself is built with Execute: c.Execute, so the two reference each other).
func (c *Coordinator) AttachManager(m *engine.Manager) {
	c.mu.Lock()
	c.mgr = m
	c.mu.Unlock()
}

// Start launches the eviction, rebalance, and metrics-federation loops.
func (c *Coordinator) Start() {
	n := 2
	if c.cfg.Federate > 0 {
		n++
	}
	c.wg.Add(n)
	go c.evictLoop()
	go c.rebalanceLoop()
	if c.cfg.Federate > 0 {
		go c.federateLoop()
	}
}

// Stop halts the maintenance loops. In-flight dispatches are not
// interrupted — the manager's own shutdown drains them.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.wg.Wait()
}

// Handler mounts the coordinator's /cluster/v1/ RPC surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/register", c.handleRegister)
	mux.HandleFunc("POST /cluster/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /cluster/v1/drain", c.handleDrain)
	mux.HandleFunc("GET /cluster/v1/workers", c.handleWorkers)
	mux.HandleFunc("GET /cluster/v1/traces/{id}", c.handleTrace)
	mux.HandleFunc("POST /cluster/v1/spans", c.handleSpans)
	return mux
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding register: %w", err))
		return
	}
	if req.Addr == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: register without addr"))
		return
	}
	if req.Fingerprint != c.fingerprint {
		httpError(w, http.StatusConflict, fmt.Errorf(
			"cluster: sim registry fingerprint %q does not match coordinator %q — mixed builds would compute different results",
			req.Fingerprint, c.fingerprint))
		return
	}
	c.mu.Lock()
	// A re-registration from an address we already track replaces the old
	// incarnation: its process restarted, so anything in flight there is
	// requeued via the eviction path.
	for id, ws := range c.workers {
		if ws.addr == req.Addr {
			c.evictLocked(ws, "replaced by re-registration")
			delete(c.workers, id)
		}
	}
	c.seq++
	ws := &workerState{
		id:          fmt.Sprintf("w-%03d", c.seq),
		name:        req.Name,
		addr:        req.Addr,
		capacity:    req.Capacity,
		lastBeat:    c.now(),
		assignments: make(map[string]*assignment),
	}
	c.workers[ws.id] = ws
	c.ring.Add(ws.id)
	c.mu.Unlock()
	c.log.Info("worker registered", "worker", ws.id, "name", req.Name,
		"addr", req.Addr, "capacity", req.Capacity)
	writeJSON(w, http.StatusOK, RegisterResponse{
		ID: ws.id, HeartbeatMs: c.cfg.Heartbeat.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding heartbeat: %w", err))
		return
	}
	c.mu.Lock()
	ws, ok := c.workers[req.ID]
	if ok {
		ws.lastBeat = c.now()
		ws.queueDepth = req.QueueDepth
		ws.running = req.Running
		ws.completed = req.Completed
		ws.failed = req.Failed
		ws.simEvents = req.SimEvents
		if req.NotReady != ws.notReady {
			ws.notReady = req.NotReady
			c.log.Info("worker readiness changed", "worker", ws.id, "ready", !req.NotReady)
		}
		if req.Draining && !ws.draining {
			c.drainLocked(ws)
		}
	}
	c.mu.Unlock()
	if !ok {
		// Unknown id — evicted or coordinator restarted. 404 tells the
		// worker to re-register.
		httpError(w, http.StatusNotFound, fmt.Errorf("cluster: unknown worker %q", req.ID))
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req DrainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding drain: %w", err))
		return
	}
	c.mu.Lock()
	ws, ok := c.workers[req.ID]
	if ok {
		c.drainLocked(ws)
	}
	c.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("cluster: unknown worker %q", req.ID))
		return
	}
	c.log.Info("worker draining", "worker", req.ID)
	writeJSON(w, http.StatusOK, struct{}{})
}

// drainLocked marks a worker draining: out of the ring, queued (not yet
// started) assignments stolen back for re-routing. Running jobs keep
// streaming — the worker's drain budget lets them finish.
func (c *Coordinator) drainLocked(ws *workerState) {
	if ws.draining {
		return
	}
	ws.draining = true
	c.ring.Remove(ws.id)
	for _, asn := range ws.assignments {
		if !asn.started {
			signalAssignment(asn, "steal")
		}
	}
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	views := make([]WorkerView, 0, len(c.workers))
	for _, ws := range c.workers {
		views = append(views, WorkerView{
			ID: ws.id, Name: ws.name, Addr: ws.addr, Capacity: ws.capacity,
			HeartbeatAgeMs: c.now().Sub(ws.lastBeat).Milliseconds(),
			Draining:       ws.draining,
			Ready:          !ws.draining && !ws.notReady,
			QueueDepth:     ws.queueDepth,
			Running:        ws.running,
			Outstanding:    len(ws.assignments),
		})
	}
	c.mu.Unlock()
	for i := 0; i < len(views); i++ {
		for j := i + 1; j < len(views); j++ {
			if views[j].ID < views[i].ID {
				views[i], views[j] = views[j], views[i]
			}
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Workers []WorkerView `json:"workers"`
	}{views})
}

// handleTrace serves an uploaded trace in binary form for a worker
// resolving a replay dispatch.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	mgr := c.mgr
	c.mu.Unlock()
	if mgr == nil {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: no manager attached"))
		return
	}
	st, ok := mgr.Traces().Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("cluster: unknown trace %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	bw := trace.NewBinWriter(w)
	for _, rec := range st.Records() {
		bw.Write(rec)
	}
	bw.Flush() //nolint:errcheck // worker retries a broken download
}

// handleSpans ingests spans a worker ships directly — the fallback
// delivery path for runs whose event stream broke before the done frame
// landed. The recorder dedups by (trace id, span id), so double delivery
// against the done-frame path is harmless.
func (c *Coordinator) handleSpans(w http.ResponseWriter, r *http.Request) {
	var req SpanPush
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding spans: %w", err))
		return
	}
	n := c.tracer.Ingest(req.Spans)
	writeJSON(w, http.StatusOK, struct {
		Ingested int `json:"ingested"`
	}{n})
}

// evictLoop removes workers whose heartbeats went silent and requeues their
// in-flight jobs.
func (c *Coordinator) evictLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.EvictAfter / 2)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.mu.Lock()
			now := c.now()
			for id, ws := range c.workers {
				if now.Sub(ws.lastBeat) > c.cfg.EvictAfter {
					c.evictLocked(ws, "heartbeat timeout")
					delete(c.workers, id)
					c.metrics.Evictions.Add(1)
				}
			}
			c.mu.Unlock()
		}
	}
}

// evictLocked removes a worker from the ring and signals every in-flight
// assignment to requeue. Caller holds c.mu and deletes the map entry.
func (c *Coordinator) evictLocked(ws *workerState, reason string) {
	c.ring.Remove(ws.id)
	for _, asn := range ws.assignments {
		signalAssignment(asn, "evict")
	}
	c.log.Warn("worker evicted", "worker", ws.id, "addr", ws.addr,
		"reason", reason, "inflight", len(ws.assignments))
}

// rebalanceLoop steals queued jobs back from workers whose pending backlog
// sits more than StealMargin above the fleet average.
func (c *Coordinator) rebalanceLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Rebalance)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.rebalanceOnce()
		}
	}
}

func (c *Coordinator) rebalanceOnce() {
	c.mu.Lock()
	defer c.mu.Unlock()
	live, totalPending := 0, 0
	pending := make(map[*workerState][]*assignment)
	for _, ws := range c.workers {
		if ws.draining {
			continue
		}
		live++
		for _, asn := range ws.assignments {
			if !asn.started {
				pending[ws] = append(pending[ws], asn)
				totalPending++
			}
		}
	}
	if live < 2 {
		return
	}
	avg := totalPending / live
	for ws, asns := range pending {
		excess := len(asns) - avg - c.cfg.StealMargin
		for i := 0; i < excess; i++ {
			signalAssignment(asns[i], "steal")
			c.log.Info("stealing queued job for rebalance", "worker", ws.id,
				"job", asns[i].job.ID(), "pending", len(asns), "fleet_avg", avg)
		}
	}
}

// signalAssignment posts a signal without blocking; a signal already
// pending is enough.
func signalAssignment(asn *assignment, s string) {
	select {
	case asn.signal <- s:
	default:
	}
}

// routingKey derives the consistent-hash key for a job: the result-store
// content key when present (so identical submissions land on one worker and
// fold into its cache), the computed parameter key otherwise (trace replays
// — not cacheable, still deterministic), the job id as a last resort.
func (c *Coordinator) routingKey(job *engine.Job) string {
	if k := job.Key(); k != "" {
		return k
	}
	if k, err := resultstore.KeyForParams(job.Experiment(), job.Params(), "route"); err == nil {
		if tid := job.Request().TraceID; tid != "" {
			return k + "\x00" + tid
		}
		return k
	}
	return job.ID()
}

// Owner reports which worker a routing key currently maps to — test and
// debugging introspection.
func (c *Coordinator) Owner(key string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Pick(key, func(m string) bool {
		ws := c.workers[m]
		return ws == nil || ws.draining || ws.notReady
	})
}

// HealthWorkers snapshots the fleet for the alerting engine
// (health.Signals.Workers): identity, heartbeat age, and eligibility, so
// heartbeat_stale rules fire on silent workers without re-deriving the
// coordinator's bookkeeping.
func (c *Coordinator) HealthWorkers() []health.WorkerStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	stats := make([]health.WorkerStat, 0, len(c.workers))
	for _, ws := range c.workers {
		stats = append(stats, health.WorkerStat{
			ID:           ws.id,
			Name:         ws.name,
			HeartbeatAge: now.Sub(ws.lastBeat),
			Draining:     ws.draining,
			Ready:        !ws.draining && !ws.notReady,
		})
	}
	return stats
}

// FederationErrors reports the cumulative failed-scrape count
// (health.Signals.ScrapeErrors): the scrape_errors rule alerts on its
// growth rate.
func (c *Coordinator) FederationErrors() uint64 {
	c.fed.mu.Lock()
	defer c.fed.mu.Unlock()
	return c.fed.errors
}

// liveWorkers reports how many non-draining workers are registered.
func (c *Coordinator) liveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ws := range c.workers {
		if !ws.draining {
			n++
		}
	}
	return n
}

// pickWorker chooses the target for one dispatch attempt: the ring owner on
// the first try (cache affinity), the least-loaded survivor on requeues.
func (c *Coordinator) pickWorker(key string, firstAttempt bool, exclude map[string]bool) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if firstAttempt {
		id := c.ring.Pick(key, func(m string) bool {
			ws := c.workers[m]
			return ws == nil || ws.draining || ws.notReady || exclude[m]
		})
		if id != "" {
			return c.workers[id]
		}
		return nil
	}
	var best *workerState
	for _, ws := range c.workers {
		if ws.draining || ws.notReady || exclude[ws.id] {
			continue
		}
		if best == nil || len(ws.assignments) < len(best.assignments) {
			best = ws
		}
	}
	return best
}

func (c *Coordinator) addAssignment(ws *workerState, asn *assignment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.workers[ws.id]; ok && cur == ws {
		ws.assignments[asn.job.ID()] = asn
	}
}

func (c *Coordinator) removeAssignment(ws *workerState, jobID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(ws.assignments, jobID)
}

func (c *Coordinator) markStarted(asn *assignment) {
	c.mu.Lock()
	asn.started = true
	c.mu.Unlock()
}

// Execute is the engine's Execute hook: route the job to a worker, stream
// its run back, requeue on worker failure. It returns
// engine.ErrExecuteLocally when no worker can take the job, so standalone
// behavior is the universal fallback. Requeues happen inside this call —
// the job never re-enters the manager's queue, so the queue-wait histogram
// observes it exactly once and its request id rides along unchanged.
func (c *Coordinator) Execute(ctx context.Context, job *engine.Job) (*sim.Result, error) {
	if len(job.Params().Trace) > 0 && job.Request().TraceID == "" {
		// An inline trace (direct API use, tests) has no coordinator-side
		// trace id for the worker to download — run it here.
		return nil, engine.ErrExecuteLocally
	}
	key := c.routingKey(job)
	exclude := make(map[string]bool)
	for attempt := 0; attempt < maxDispatchAttempts; attempt++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		ws := c.pickWorker(key, attempt == 0 && len(exclude) == 0, exclude)
		if ws == nil && len(exclude) > 0 {
			// Every live worker failed this job once; start over on the
			// whole fleet rather than giving up while workers exist.
			exclude = make(map[string]bool)
			ws = c.pickWorker(key, true, exclude)
		}
		if ws == nil {
			if c.cfg.DispatchWait > 0 && c.waitForWorker(ctx) {
				continue
			}
			return nil, engine.ErrExecuteLocally
		}
		res, err, v := c.runOn(ctx, ws, job, attempt)
		switch v {
		case vDone:
			return res, err
		case vSteal:
			c.metrics.Steals.Add(1)
			c.metrics.CountDispatch(ws.id, outcomeStolen)
			exclude[ws.id] = true
			c.log.Info("job stolen for re-route", "job", job.ID(),
				"request_id", job.RequestID(), "worker", ws.id)
		case vRequeue:
			c.metrics.Requeues.Add(1)
			c.metrics.CountDispatch(ws.id, outcomeRequeue)
			exclude[ws.id] = true
			c.log.Warn("job requeued after worker failure", "job", job.ID(),
				"request_id", job.RequestID(), "worker", ws.id)
		}
	}
	c.log.Warn("dispatch attempts exhausted; running locally", "job", job.ID(),
		"request_id", job.RequestID())
	return nil, engine.ErrExecuteLocally
}

// waitForWorker polls for a live worker for up to DispatchWait. True means
// one registered; false means fall back to local execution.
func (c *Coordinator) waitForWorker(ctx context.Context) bool {
	deadline := time.After(c.cfg.DispatchWait)
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-deadline:
			return false
		case <-tick.C:
			if c.liveWorkers() > 0 {
				return true
			}
		}
	}
}

type verdict int

const (
	vDone    verdict = iota // outcome final (success, failure, or canceled)
	vRequeue                // worker failed; try another
	vSteal                  // queued job stolen back; try another
)

// runOn dispatches job to ws and consumes its event stream until a terminal
// outcome, a worker failure, or a steal.
func (c *Coordinator) runOn(ctx context.Context, ws *workerState, job *engine.Job, attempt int) (res *sim.Result, jobErr error, v verdict) {
	// The dispatch leg of the job's trace: one span per attempt, carrying
	// the target worker and how the attempt ended. The worker's own "job"
	// span parents under it via the traceparent on the dispatch RPC, so the
	// merged trace shows the remote run nested inside this hop.
	dsp := c.tracer.StartSpan(job.TraceContext(), "dispatch")
	dsp.SetStr("worker", ws.id)
	dsp.SetInt("attempt", int64(attempt))
	defer func() {
		switch {
		case v == vSteal:
			dsp.SetStr("outcome", "steal")
		case v == vRequeue:
			dsp.SetStr("outcome", "requeue")
		case jobErr != nil:
			dsp.SetStr("outcome", "error")
			dsp.SetStr("error", jobErr.Error())
		default:
			dsp.SetStr("outcome", "ok")
		}
		dsp.End()
	}()
	spec := DispatchRequest{
		JobID:      job.ID(),
		RequestID:  job.RequestID(),
		Experiment: job.Experiment(),
		Params:     job.Params(),
		TraceID:    job.Request().TraceID,
		TraceLabel: job.Params().TraceLabel,
		TimeoutMs:  job.Timeout().Milliseconds(),
		Tenant:     job.TenantName(),
	}
	if at := job.SubmittedAt(); !at.IsZero() {
		spec.AdmittedAtMs = at.UnixMilli()
	}
	hdr := make(http.Header)
	if tc := dsp.Context(); tc.Valid() {
		spec.Traceparent = tc.Traceparent()
		hdr.Set(span.Header, spec.Traceparent)
	}
	if spec.RequestID != "" {
		hdr.Set("X-Request-ID", spec.RequestID)
	}
	var ack DispatchResponse
	dctx, dcancel := context.WithTimeout(context.Background(), dispatchTimeout)
	err := postJSONHeaders(dctx, c.client, ws.addr+"/cluster/v1/jobs", hdr, spec, &ack)
	dcancel()
	if err != nil {
		c.metrics.CountDispatch(ws.id, outcomeError)
		if ctx.Err() != nil {
			return nil, ctx.Err(), vDone
		}
		return nil, nil, vRequeue
	}
	asn := &assignment{job: job, workerJobID: ack.WorkerJobID, signal: make(chan string, 1)}
	c.addAssignment(ws, asn)
	defer c.removeAssignment(ws, job.ID())
	job.SetWorker(ws.id)
	c.log.Info("job dispatched", "job", job.ID(), "request_id", job.RequestID(),
		"experiment", job.Experiment(), "worker", ws.id, "worker_job", ack.WorkerJobID)
	if ctx.Err() != nil {
		// Canceled while the dispatch was in flight: the worker has the job,
		// so stop it there before reporting the cancellation.
		c.cancelRemote(ws, ack.WorkerJobID, "")
		return nil, ctx.Err(), vDone
	}

	for reconnect := 0; ; reconnect++ {
		res, err, v, retry := c.consumeStream(ctx, ws, asn)
		if !retry {
			if v == vDone && err == nil && res != nil {
				c.metrics.CountDispatch(ws.id, outcomeOK)
			}
			return res, err, v
		}
		if reconnect >= streamReconnects {
			return nil, nil, vRequeue
		}
		select {
		case <-ctx.Done():
			c.cancelRemote(ws, asn.workerJobID, "")
			return nil, ctx.Err(), vDone
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// consumeStream attaches to the worker's event stream for one assignment
// and processes frames until the job settles, the stream breaks
// (retry=true), the coordinator-side context ends, or a steal/evict signal
// lands.
func (c *Coordinator) consumeStream(ctx context.Context, ws *workerState, asn *assignment) (*sim.Result, error, verdict, bool) {
	job := asn.job
	req, err := http.NewRequestWithContext(ctx, "GET",
		ws.addr+"/cluster/v1/jobs/"+asn.workerJobID+"/events", nil)
	if err != nil {
		return nil, nil, vRequeue, false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			c.cancelRemote(ws, asn.workerJobID, "")
			return nil, ctx.Err(), vDone, false
		}
		return nil, nil, vRequeue, true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		// The worker is alive but no longer knows the job (restart between
		// dispatch and attach) — requeue, no point retrying the stream.
		return nil, nil, vRequeue, false
	}

	frames := make(chan Frame)
	go func() {
		defer close(frames)
		dec := json.NewDecoder(resp.Body)
		for {
			var f Frame
			if err := dec.Decode(&f); err != nil {
				return
			}
			select {
			case frames <- f:
			case <-ctx.Done():
				return
			}
		}
	}()

	for {
		select {
		case <-ctx.Done():
			// Coordinator-side cancel or timeout: propagate to the worker so
			// the remote run stops too, then report the context error — the
			// manager maps it onto canceled/timed-out.
			c.cancelRemote(ws, asn.workerJobID, "")
			return nil, ctx.Err(), vDone, false
		case sig := <-asn.signal:
			switch sig {
			case "evict":
				// Heartbeats died but maybe only the control plane did; tell
				// the worker to stop the job in case it is still alive.
				c.cancelRemote(ws, asn.workerJobID, "")
				return nil, nil, vRequeue, false
			case "steal":
				var cr CancelResponse
				err := c.postJSON(context.Background(),
					ws.addr+"/cluster/v1/jobs/"+asn.workerJobID+"/cancel?reason=steal", struct{}{}, &cr)
				if err == nil && cr.Stolen {
					return nil, nil, vSteal, false
				}
				// Already running (or unreachable — eviction will follow):
				// keep streaming.
			}
		case f, ok := <-frames:
			if !ok {
				// Stream broke without a done frame: worker died or the
				// connection dropped. Retry the attach; the dispatch loop
				// requeues after streamReconnects failures.
				if ctx.Err() != nil {
					c.cancelRemote(ws, asn.workerJobID, "")
					return nil, ctx.Err(), vDone, false
				}
				return nil, nil, vRequeue, true
			}
			switch f.Event {
			case "started":
				c.markStarted(asn)
			case "progress":
				var p ProgressFrame
				if json.Unmarshal(f.Data, &p) == nil {
					job.ForwardProgress(p.Done, p.Total)
				}
			case "done":
				var d DoneFrame
				if err := json.Unmarshal(f.Data, &d); err != nil {
					return nil, nil, vRequeue, true
				}
				return c.settle(job, d)
			default:
				// Telemetry windows and any future frame types fan out to
				// the coordinator's SSE subscribers verbatim.
				job.PublishRaw(f.Event, f.Data)
			}
		}
	}
}

// settle maps a done frame onto the (result, error) contract the engine
// manager expects from an ExecuteFunc.
func (c *Coordinator) settle(job *engine.Job, d DoneFrame) (*sim.Result, error, verdict, bool) {
	if d.Perf != nil {
		job.SetRemotePerf(*d.Perf)
	}
	// Worker spans ride the done frame; merging is idempotent, so the
	// push-based fallback (POST /cluster/v1/spans) delivering the same
	// spans again is harmless.
	c.tracer.Ingest(d.Spans)
	switch d.State {
	case engine.StateSucceeded:
		if d.Result == nil {
			return nil, fmt.Errorf("cluster: worker reported success without a result"), vDone, false
		}
		return d.Result, nil, vDone, false
	case engine.StateCanceled:
		return nil, context.Canceled, vDone, false
	default:
		msg := d.Error
		if msg == "" {
			msg = "worker reported " + string(d.State)
		}
		return nil, fmt.Errorf("cluster: %s", msg), vDone, false
	}
}

// cancelRemote asks a worker to stop a job, best effort — the worker may
// already be gone.
func (c *Coordinator) cancelRemote(ws *workerState, workerJobID, reason string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	url := ws.addr + "/cluster/v1/jobs/" + workerJobID + "/cancel"
	if reason != "" {
		url += "?reason=" + reason
	}
	var cr CancelResponse
	c.postJSON(ctx, url, struct{}{}, &cr) //nolint:errcheck // best effort
}

// postJSON performs one JSON-in/JSON-out POST against a worker or
// coordinator endpoint.
func (c *Coordinator) postJSON(ctx context.Context, url string, in, out any) error {
	return postJSON(ctx, c.client, url, in, out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	return postJSONHeaders(ctx, client, url, nil, in, out)
}

// postJSONHeaders is postJSON with extra request headers — the dispatch
// RPC rides traceparent and X-Request-ID alongside the JSON body.
func postJSONHeaders(ctx context.Context, client *http.Client, url string, hdr http.Header, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s: %w", url, err)
	}
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &rpcError{Status: resp.StatusCode, Body: string(bytes.TrimSpace(msg)), URL: url}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// rpcError is a non-2xx RPC response, keeping the status for callers that
// branch on it (heartbeat 404 → re-register).
type rpcError struct {
	Status int
	Body   string
	URL    string
}

func (e *rpcError) Error() string {
	return fmt.Sprintf("cluster: %s: HTTP %d: %s", e.URL, e.Status, e.Body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone mid-write
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
