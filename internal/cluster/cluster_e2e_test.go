package cluster

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"womcpcm/internal/engine"
	"womcpcm/internal/resultstore"
	"womcpcm/internal/sim"
	"womcpcm/internal/span"
	"womcpcm/internal/trace"
)

// syncBuffer is a goroutine-safe log sink for asserting on slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// testCluster is an in-process coordinator: engine manager with the
// dispatch hook, the public API, and the cluster RPC surface on one
// listener.
type testCluster struct {
	t     *testing.T
	coord *Coordinator
	mgr   *engine.Manager
	ts    *httptest.Server
	logs  *syncBuffer
}

func newTestCluster(t *testing.T, ccfg Config, ecfg engine.Config) *testCluster {
	t.Helper()
	logs := &syncBuffer{}
	logger := slog.New(slog.NewTextHandler(logs, nil))
	if ccfg.Logger == nil {
		ccfg.Logger = logger
	}
	if ccfg.Heartbeat == 0 {
		ccfg.Heartbeat = 100 * time.Millisecond
	}
	if ccfg.EvictAfter == 0 {
		ccfg.EvictAfter = 600 * time.Millisecond
	}
	// Tracing mirrors womd's coordinator wiring: one recorder shared by the
	// public engine (root job spans) and the coordinator (dispatch spans,
	// ingest of worker spans). Fixed seed for reproducible ids.
	if ccfg.Tracer == nil {
		ccfg.Tracer = span.New(span.Config{Service: "coordinator", Seed: 42})
	}
	if ecfg.Tracer == nil {
		ecfg.Tracer = ccfg.Tracer
	}
	coord := NewCoordinator(ccfg)
	if ecfg.Workers == 0 {
		ecfg.Workers = 4
	}
	if ecfg.QueueDepth == 0 {
		ecfg.QueueDepth = 16
	}
	if ecfg.Logger == nil {
		ecfg.Logger = logger
	}
	ecfg.Execute = coord.Execute
	mgr := engine.New(ecfg)
	coord.AttachManager(mgr)
	coord.Start()
	mux := http.NewServeMux()
	mux.Handle("/cluster/v1/", coord.Handler())
	mux.HandleFunc("GET /v1/fleet", coord.HandleFleet)
	mux.Handle("/", engine.NewServer(mgr, engine.WithPromAppender(coord.WriteProm)))
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		coord.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Shutdown(ctx) //nolint:errcheck
	})
	return &testCluster{t: t, coord: coord, mgr: mgr, ts: ts, logs: logs}
}

// testWorker is one in-process fleet member: its own engine and the agent
// RPC surface on its own listener.
type testWorker struct {
	agent *Agent
	mgr   *engine.Manager
	ts    *httptest.Server
}

// addWorker spins up a worker, joins it to the fleet, and waits for the
// registration to land.
func (tc *testCluster) addWorker(name string) *testWorker {
	tc.t.Helper()
	// Each worker gets its own recorder, seeded from its name so two
	// workers never issue colliding span ids (same seed ⇒ same id
	// sequence, and Ingest dedups by id).
	wrec := span.New(span.Config{Service: name, Seed: fnvSeed(name)})
	mgr := engine.New(engine.Config{Workers: 2, QueueDepth: 16, Tracer: wrec})
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	agent := NewAgent(AgentConfig{
		Coordinator: tc.ts.URL,
		Advertise:   ts.URL,
		Name:        name,
		Capacity:    2,
		Heartbeat:   100 * time.Millisecond,
		Tracer:      wrec,
	}, mgr)
	mux.Handle("/cluster/v1/", agent.Handler())
	// The worker's own engine API — federation scrapes its /metrics.
	mux.Handle("/", engine.NewServer(mgr, engine.WithPromAppender(wrec.WriteProm)))
	before := tc.coord.liveWorkers()
	if err := agent.Start(); err != nil {
		ts.Close()
		tc.t.Fatalf("worker %s registration: %v", name, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tc.coord.liveWorkers() <= before {
		if time.Now().After(deadline) {
			tc.t.Fatalf("worker %s never joined the fleet", name)
		}
		time.Sleep(5 * time.Millisecond)
	}
	w := &testWorker{agent: agent, mgr: mgr, ts: ts}
	tc.t.Cleanup(func() { w.kill() })
	return w
}

// kill simulates sudden worker death: listener closed mid-stream, running
// jobs aborted, heartbeats stopped. Idempotent.
func (w *testWorker) kill() {
	if w.ts == nil {
		return
	}
	w.ts.CloseClientConnections()
	w.ts.Close()
	w.ts = nil
	w.agent.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()            // expired context aborts running jobs immediately
	w.mgr.Shutdown(ctx) //nolint:errcheck
}

// putTrace stores records in the coordinator's trace store, returning the
// trace id replay submissions reference.
func (tc *testCluster) putTrace(label string, recs []trace.Record) string {
	tc.t.Helper()
	var buf bytes.Buffer
	bw := trace.NewBinWriter(&buf)
	for _, r := range recs {
		bw.Write(r)
	}
	if err := bw.Flush(); err != nil {
		tc.t.Fatal(err)
	}
	st, err := tc.mgr.Traces().Put(label, &buf)
	if err != nil {
		tc.t.Fatal(err)
	}
	return st.ID
}

// replayTrace builds a synthetic trace long enough to stay in flight while
// tests poke at the job.
func replayTrace(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		op := trace.Write
		if i%3 == 0 {
			op = trace.Read
		}
		recs[i] = trace.Record{Op: op, Addr: uint64(i%512) * 16384, Time: int64(i) * 60}
	}
	return recs
}

type sseEvent struct {
	name string
	data string
}

// readSSE parses frames until the limit, the body ends, or stop returns
// true for a parsed frame.
func readSSE(t *testing.T, body *bufio.Reader, limit int, stop func(sseEvent) bool) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := sseEvent{}
	for len(events) < limit {
		line, err := body.ReadString('\n')
		if err != nil {
			return events
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			if stop != nil && stop(cur) {
				return events
			}
			cur = sseEvent{}
		}
	}
	return events
}

// TestClusterDispatchAndSSE is the happy-path e2e on one worker: a replay
// job submitted to the coordinator executes on the worker, its telemetry
// and progress stream back through the coordinator's SSE endpoint — across
// a mid-job client reconnect — and the job view names the worker.
func TestClusterDispatchAndSSE(t *testing.T) {
	tc := newTestCluster(t, Config{}, engine.Config{})
	w := tc.addWorker("alpha")

	tid := tc.putTrace("e2e", replayTrace(300000))
	job, err := tc.mgr.Submit(context.Background(), engine.JobRequest{
		Experiment: "replay",
		Params:     sim.Params{Ranks: 2, Banks: 4, Parallelism: 1},
		TraceID:    tid,
	})
	if err != nil {
		t.Fatal(err)
	}

	// First SSE connection: read a handful of live events, then hang up
	// mid-job.
	resp, err := http.Get(tc.ts.URL + "/v1/jobs/" + job.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	first := readSSE(t, bufio.NewReader(resp.Body), 3, func(ev sseEvent) bool { return ev.name == "done" })
	resp.Body.Close()
	if len(first) == 0 {
		t.Fatal("no SSE events before reconnect")
	}
	sawDone := first[len(first)-1].name == "done"

	// Reconnect: the stream resumes (or reports the terminal state) and
	// must end with exactly one done event.
	resp, err = http.Get(tc.ts.URL + "/v1/jobs/" + job.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	second := readSSE(t, bufio.NewReader(resp.Body), 100000, func(ev sseEvent) bool { return ev.name == "done" })
	if len(second) == 0 || second[len(second)-1].name != "done" {
		t.Fatalf("reconnected stream did not end in done (%d events)", len(second))
	}
	var windows, progress int
	for _, ev := range append(first, second...) {
		switch ev.name {
		case "window":
			windows++
		case "progress":
			progress++
		}
	}
	if !sawDone && windows == 0 {
		t.Error("no telemetry window events reached the SSE client")
	}
	if progress == 0 {
		t.Error("no progress events reached the SSE client")
	}

	waitState(t, job, engine.StateSucceeded, 60*time.Second)
	view := job.View()
	if view.Worker == "" {
		t.Error("job view missing the worker it executed on")
	}
	if view.Perf == nil {
		t.Error("job view missing the worker-measured perf record")
	}
	res, err := job.Result()
	if err != nil || res == nil {
		t.Fatalf("result = %v, %v", res, err)
	}
	// The run truly happened on the worker: its engine completed one job,
	// the coordinator's pool ran nothing locally.
	if got := w.mgr.Metrics().Completed.Load(); got != 1 {
		t.Errorf("worker completed %d jobs, want 1", got)
	}
	prom := httpGetBody(t, tc.ts.URL+"/metrics")
	if !strings.Contains(prom, `womd_cluster_dispatch_total{worker="w-001",outcome="ok"} 1`) {
		t.Errorf("coordinator /metrics missing dispatch counter:\n%s", grepLines(prom, "womd_cluster"))
	}
}

// TestClusterRoutingDeterminism checks identical submissions land on the
// same worker via the consistent-hash ring, and that concurrent identical
// submissions fold into one remote execution (singleflight).
func TestClusterRoutingDeterminism(t *testing.T) {
	store, err := resultstore.Open(t.TempDir(), resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	tc := newTestCluster(t, Config{}, engine.Config{Store: store})
	w1 := tc.addWorker("alpha")
	w2 := tc.addWorker("beta")

	params := sim.Params{Requests: 400, Bench: []string{"qsort"}, Parallelism: 1}
	req := engine.JobRequest{Experiment: "fig5", Params: params}

	// Two concurrent identical submissions: singleflight makes one remote
	// execution; the follower settles with the leader's outcome.
	leader, err := tc.mgr.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := tc.mgr.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if follower.View().DedupOf != leader.ID() {
		t.Fatalf("follower dedup_of = %q, want %q", follower.View().DedupOf, leader.ID())
	}
	waitState(t, leader, engine.StateSucceeded, 60*time.Second)
	waitState(t, follower, engine.StateSucceeded, 60*time.Second)
	if n := len(w1.mgr.Jobs()) + len(w2.mgr.Jobs()); n != 1 {
		t.Errorf("fleet executed %d jobs for 2 identical submissions, want 1", n)
	}
	firstWorker := leader.View().Worker
	if firstWorker == "" {
		t.Fatal("leader executed locally, want remote dispatch")
	}
	if owner := tc.coord.Owner(tc.coord.routingKey(leader)); owner != firstWorker {
		t.Errorf("ring owner = %q, executed on %q", owner, firstWorker)
	}

	// A later identical submission is a cache hit — served from the store,
	// never dispatched.
	cached, err := tc.mgr.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if v := cached.View(); !v.Cached || v.State != engine.StateSucceeded {
		t.Errorf("repeat submission = %+v, want cached success", v)
	}

	// Distinct params still route deterministically: same worker on every
	// resubmission of the same key.
	params2 := sim.Params{Requests: 401, Bench: []string{"qsort"}, Parallelism: 1}
	var workers []string
	for i := 0; i < 2; i++ {
		j, err := tc.mgr.Submit(context.Background(), engine.JobRequest{Experiment: "fig5", Params: params2})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, engine.StateSucceeded, 60*time.Second)
		v := j.View()
		if i == 0 && v.Cached {
			t.Fatal("first params2 submission unexpectedly cached")
		}
		if !v.Cached {
			workers = append(workers, v.Worker)
		}
	}
	for _, w := range workers {
		if w != workers[0] {
			t.Errorf("identical submissions executed on %v, want one worker", workers)
		}
	}
}

// TestClusterCancelPropagation is the cancel-over-RPC contract: canceling
// (or timing out) a dispatched job on the coordinator stops the run on the
// worker too.
func TestClusterCancelPropagation(t *testing.T) {
	tc := newTestCluster(t, Config{}, engine.Config{})
	// Store the trace before the worker joins: generating millions of records
	// on a small box starves a live worker's heartbeat goroutine long enough
	// to trip eviction.
	tid := tc.putTrace("cancel", replayTrace(3000000))
	w := tc.addWorker("alpha")
	job, err := tc.mgr.Submit(context.Background(), engine.JobRequest{
		Experiment: "replay",
		Params:     sim.Params{Ranks: 2, Banks: 4, Parallelism: 1},
		TraceID:    tid,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the job is genuinely running on the worker.
	waitState(t, job, engine.StateRunning, 30*time.Second)
	deadline := time.Now().Add(30 * time.Second)
	for len(w.mgr.Jobs()) == 0 || w.mgr.Jobs()[0].State() == engine.StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started on the worker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := tc.mgr.Cancel(job.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, job, engine.StateCanceled, 30*time.Second)
	// The worker-side run must stop as well — cancel crossed the RPC.
	wjob := w.mgr.Jobs()[0]
	deadline = time.Now().Add(30 * time.Second)
	for !wjob.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("worker job still %s after coordinator cancel", wjob.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s := wjob.State(); s != engine.StateCanceled {
		t.Errorf("worker job = %s after coordinator cancel, want canceled", s)
	}

	// Timeout variant: the coordinator-side deadline propagates the same
	// way and reports the usual timed-out failure.
	timed, err := tc.mgr.Submit(context.Background(), engine.JobRequest{
		Experiment: "replay",
		Params:     sim.Params{Ranks: 2, Banks: 4, Parallelism: 1},
		TraceID:    tid,
		// Well under the replay's runtime even on a fast machine — at
		// 300ms the 3M-record replay occasionally finished first.
		TimeoutMs: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, timed, engine.StateFailed, 30*time.Second)
	if _, err := timed.Result(); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("timed-out job error = %v, want timeout", err)
	}
}

// TestClusterWorkerDeathRequeue kills a worker mid-job and checks the
// acceptance contract: the job requeues to the survivor and completes, the
// queue-wait histogram counts it once, and the requeue log line keeps the
// original request id.
func TestClusterWorkerDeathRequeue(t *testing.T) {
	tc := newTestCluster(t, Config{}, engine.Config{})
	w1 := tc.addWorker("alpha")
	w2 := tc.addWorker("beta")

	tid := tc.putTrace("death", replayTrace(400000))
	ctx := engine.WithRequestID(context.Background(), "req-death-1")
	job, err := tc.mgr.Submit(ctx, engine.JobRequest{
		Experiment: "replay",
		Params:     sim.Params{Ranks: 2, Banks: 4, Parallelism: 1},
		TraceID:    tid,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Find which worker got the job, then kill that worker mid-run.
	var victim, survivor *testWorker
	var victimID string
	deadline := time.Now().Add(30 * time.Second)
	for victim == nil {
		if time.Now().After(deadline) {
			t.Fatal("job never dispatched")
		}
		switch {
		case len(w1.mgr.Jobs()) > 0 && w1.mgr.Jobs()[0].State() == engine.StateRunning:
			victim, survivor, victimID = w1, w2, w1.agent.ID()
		case len(w2.mgr.Jobs()) > 0 && w2.mgr.Jobs()[0].State() == engine.StateRunning:
			victim, survivor, victimID = w2, w1, w2.agent.ID()
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	victim.kill()

	waitState(t, job, engine.StateSucceeded, 120*time.Second)
	view := job.View()
	if view.Worker == "" || view.Worker == victimID {
		t.Errorf("job finished on %q, want the survivor (victim %q)", view.Worker, victimID)
	}
	if got := survivor.mgr.Metrics().Completed.Load(); got != 1 {
		t.Errorf("survivor completed %d jobs, want 1", got)
	}
	if got := tc.coord.metrics.Requeues.Load(); got == 0 {
		t.Error("requeue counter not incremented")
	}
	// Satellite contract: the requeue does not re-enter the admission
	// queue, so queue wait is observed exactly once for this job.
	if got := tc.mgr.Metrics().QueueWaitSnapshot().Count; got != 1 {
		t.Errorf("queue-wait observations = %d, want 1", got)
	}
	// And the requeue log line still carries the submitting request id.
	logs := tc.logs.String()
	found := false
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "job requeued") && strings.Contains(line, "request_id=req-death-1") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no requeue log line with the original request id:\n%s", grepLines(logs, "requeue"))
	}
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// fnvSeed derives a per-worker recorder seed from the worker's name.
func fnvSeed(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name)) //nolint:errcheck // fnv never errors
	s := h.Sum64()
	if s == 0 {
		s = 1
	}
	return s
}

// grepLines filters s to lines containing substr, for focused failure
// output.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
