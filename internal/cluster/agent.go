package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"womcpcm/internal/engine"
	"womcpcm/internal/sim"
	"womcpcm/internal/span"
)

// AgentConfig wires one worker into a coordinator's fleet.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL (scheme://host:port).
	Coordinator string
	// Advertise is this worker's own base URL, reachable from the
	// coordinator.
	Advertise string
	// Name labels the worker in the coordinator's fleet view (default:
	// Advertise).
	Name string
	// Capacity reports the worker's engine pool size to the coordinator.
	Capacity int
	// Heartbeat is the report interval until the coordinator assigns one at
	// registration (default 5s).
	Heartbeat time.Duration
	// Client performs coordinator RPCs (default http.DefaultClient).
	Client *http.Client
	// Logger receives registration/heartbeat logs; nil discards them.
	Logger *slog.Logger
	// Tracer is the worker engine's span recorder. Dispatched jobs' spans
	// are read from it and shipped back to the coordinator (on the done
	// frame and via POST /cluster/v1/spans). Nil disables shipping.
	Tracer *span.Recorder
}

// Agent is the worker side of the cluster: it registers with the
// coordinator, heartbeats load reports, and serves the dispatch RPC surface
// (Handler) backed by the worker's own engine.Manager.
type Agent struct {
	cfg    AgentConfig
	mgr    *engine.Manager
	log    *slog.Logger
	client *http.Client

	id        atomic.Value // string; "" until registered
	draining  atomic.Bool
	heartbeat atomic.Int64 // interval in ns, updated from RegisterResponse

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu       sync.Mutex
	traceIDs map[string]string // coordinator trace id → local trace id
}

// NewAgent builds a worker agent over mgr. Call Start to join the fleet,
// mount Handler on the worker's HTTP server, and BeginDrain + Stop on
// shutdown.
func NewAgent(cfg AgentConfig, mgr *engine.Manager) *Agent {
	if cfg.Name == "" {
		cfg.Name = cfg.Advertise
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	a := &Agent{
		cfg:      cfg,
		mgr:      mgr,
		log:      cfg.Logger,
		client:   cfg.Client,
		stopCh:   make(chan struct{}),
		traceIDs: make(map[string]string),
	}
	a.id.Store("")
	a.heartbeat.Store(int64(cfg.Heartbeat))
	return a
}

// ID returns the coordinator-assigned worker id ("" before registration).
func (a *Agent) ID() string { return a.id.Load().(string) }

// Start registers with the coordinator and launches the heartbeat loop. A
// failed initial registration is returned but not fatal: the loop keeps
// retrying, so a worker started before its coordinator joins once it
// appears.
func (a *Agent) Start() error {
	err := a.register()
	a.wg.Add(1)
	go a.heartbeatLoop()
	return err
}

// Stop halts the heartbeat loop.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stopCh) })
	a.wg.Wait()
}

// BeginDrain refuses new dispatches and tells the coordinator to stop
// routing here and steal back whatever is still queued. Call it before
// shutting the engine down; running jobs finish streaming meanwhile.
func (a *Agent) BeginDrain() {
	a.draining.Store(true)
	if id := a.ID(); id != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		err := postJSON(ctx, a.client, a.cfg.Coordinator+"/cluster/v1/drain",
			DrainRequest{ID: id}, nil)
		if err != nil {
			a.log.Warn("drain announcement failed", "error", err.Error())
		}
	}
}

func (a *Agent) register() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var resp RegisterResponse
	err := postJSON(ctx, a.client, a.cfg.Coordinator+"/cluster/v1/register", RegisterRequest{
		Name:        a.cfg.Name,
		Addr:        a.cfg.Advertise,
		Capacity:    a.cfg.Capacity,
		Fingerprint: sim.RegistryFingerprint(),
	}, &resp)
	if err != nil {
		return fmt.Errorf("cluster: registering with %s: %w", a.cfg.Coordinator, err)
	}
	a.id.Store(resp.ID)
	if resp.HeartbeatMs > 0 {
		a.heartbeat.Store(int64(time.Duration(resp.HeartbeatMs) * time.Millisecond))
	}
	a.log.Info("registered with coordinator", "coordinator", a.cfg.Coordinator,
		"worker", resp.ID, "heartbeat_ms", resp.HeartbeatMs)
	return nil
}

// heartbeatLoop reports load until stopped, re-registering whenever the
// coordinator stops recognizing this worker (eviction, restart).
func (a *Agent) heartbeatLoop() {
	defer a.wg.Done()
	for {
		interval := time.Duration(a.heartbeat.Load())
		select {
		case <-a.stopCh:
			return
		case <-time.After(interval):
		}
		if a.ID() == "" {
			if err := a.register(); err != nil {
				a.log.Warn("registration retry failed", "error", err.Error())
			}
			continue
		}
		m := a.mgr.Metrics()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := postJSON(ctx, a.client, a.cfg.Coordinator+"/cluster/v1/heartbeat", HeartbeatRequest{
			ID:         a.ID(),
			QueueDepth: m.QueueDepth.Load(),
			Running:    m.Running.Load(),
			Completed:  m.Completed.Load(),
			Failed:     m.Failed.Load(),
			SimEvents:  m.SimEvents.Load(),
			Draining:   a.draining.Load(),
			// Readiness rides every heartbeat so a saturated worker is routed
			// around within one interval and re-admitted as soon as it drains
			// below the threshold — no extra RPC, no separate probe loop.
			NotReady: !a.mgr.Readiness(0).Ready,
		}, nil)
		cancel()
		var re *rpcError
		switch {
		case err == nil:
		case errors.As(err, &re) && re.Status == http.StatusNotFound:
			// Evicted (or the coordinator restarted): rejoin under a new id.
			a.log.Warn("coordinator no longer knows this worker; re-registering")
			a.id.Store("")
			if err := a.register(); err != nil {
				a.log.Warn("re-registration failed", "error", err.Error())
			}
		default:
			a.log.Warn("heartbeat failed", "error", err.Error())
		}
	}
}

// Handler mounts the worker's /cluster/v1/ RPC surface.
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/jobs", a.handleDispatch)
	mux.HandleFunc("POST /cluster/v1/jobs/{id}/cancel", a.handleCancel)
	mux.HandleFunc("GET /cluster/v1/jobs/{id}/events", a.handleEvents)
	return mux
}

func (a *Agent) handleDispatch(w http.ResponseWriter, r *http.Request) {
	if a.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: worker draining"))
		return
	}
	var spec DispatchRequest
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: decoding dispatch: %w", err))
		return
	}
	// The request id arrives in the body and as X-Request-ID; body wins
	// (it is the coordinator's canonical copy), the header covers callers
	// that only speak HTTP conventions.
	if spec.RequestID == "" {
		spec.RequestID = r.Header.Get("X-Request-ID")
	}
	req := engine.JobRequest{
		Experiment:   spec.Experiment,
		Params:       spec.Params,
		TimeoutMs:    spec.TimeoutMs,
		Tenant:       spec.Tenant,
		AdmittedAtMs: spec.AdmittedAtMs,
	}
	if spec.TraceID != "" {
		localID, err := a.resolveTrace(r.Context(), spec.TraceID, spec.TraceLabel)
		if err != nil {
			httpError(w, http.StatusBadGateway,
				fmt.Errorf("cluster: fetching trace %s: %w", spec.TraceID, err))
			return
		}
		req.TraceID = localID
	}
	// The coordinator's request id rides into this worker's lifecycle logs,
	// so one submission is traceable across dispatch and requeue hops; the
	// traceparent (header first, body as the proxy-proof copy) parents this
	// worker's "job" span under the coordinator's dispatch span.
	ctx := engine.WithRequestID(context.Background(), spec.RequestID)
	tc, traced := span.FromRequest(r)
	if !traced {
		tc, traced = span.ParseTraceparent(spec.Traceparent)
	}
	if traced {
		ctx = engine.WithTraceParent(ctx, tc)
	}
	job, err := a.mgr.Submit(ctx, req)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, engine.ErrQueueFull), errors.Is(err, engine.ErrTooManyJobs):
			status = http.StatusTooManyRequests
		case errors.Is(err, engine.ErrDraining):
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	a.log.Info("job accepted from coordinator", "job", job.ID(),
		"coordinator_job", spec.JobID, "request_id", spec.RequestID,
		"experiment", spec.Experiment)
	if jtc := job.TraceContext(); a.cfg.Tracer != nil && jtc.Sampled {
		a.wg.Add(1)
		go a.shipSpans(job)
	}
	writeJSON(w, http.StatusOK, DispatchResponse{WorkerJobID: job.ID()})
}

// shipSpans waits for a dispatched job to settle, then pushes its recorded
// spans to the coordinator — the fallback delivery path for runs whose
// event stream broke before the done frame (which also carries the spans)
// could land. The coordinator's ingest dedups by (trace id, span id), so
// the usual double delivery is harmless.
func (a *Agent) shipSpans(job *engine.Job) {
	defer a.wg.Done()
	sub, cancel := job.SubscribeStream()
	defer cancel()
	for {
		select {
		case <-a.stopCh:
			return
		case _, open := <-sub:
			if open {
				continue // live event; only the close matters here
			}
		}
		break
	}
	spans := a.cfg.Tracer.Trace(job.TraceContext().TraceID)
	if len(spans) == 0 {
		return
	}
	ctx, cancelPost := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelPost()
	err := postJSON(ctx, a.client, a.cfg.Coordinator+"/cluster/v1/spans",
		SpanPush{WorkerID: a.ID(), Spans: spans}, nil)
	if err != nil {
		a.log.Warn("span shipping failed", "job", job.ID(), "error", err.Error())
	}
}

// resolveTrace maps a coordinator trace id onto this worker's trace store,
// downloading the binary trace once and serving repeats from the local
// store.
func (a *Agent) resolveTrace(ctx context.Context, coordID, label string) (string, error) {
	a.mu.Lock()
	if localID, ok := a.traceIDs[coordID]; ok {
		if _, still := a.mgr.Traces().Get(localID); still {
			a.mu.Unlock()
			return localID, nil
		}
		delete(a.traceIDs, coordID) // evicted locally; re-download
	}
	a.mu.Unlock()

	req, err := http.NewRequestWithContext(ctx, "GET",
		a.cfg.Coordinator+"/cluster/v1/traces/"+coordID, nil)
	if err != nil {
		return "", err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	if label == "" {
		label = coordID
	}
	st, err := a.mgr.Traces().Put(label, resp.Body)
	if err != nil {
		return "", err
	}
	a.mu.Lock()
	a.traceIDs[coordID] = st.ID
	a.mu.Unlock()
	return st.ID, nil
}

func (a *Agent) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := a.mgr.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("cluster: unknown job %q", id))
		return
	}
	if r.URL.Query().Get("reason") == "steal" {
		// A steal must not kill a job that already started — only cancel
		// while it still sits in the local queue, and tell the coordinator
		// which way it went.
		stolen := job.CancelIfQueued()
		writeJSON(w, http.StatusOK, CancelResponse{Stolen: stolen, State: job.State()})
		return
	}
	a.mgr.Cancel(id) //nolint:errcheck // job exists; terminal cancel is a no-op
	writeJSON(w, http.StatusOK, CancelResponse{State: job.State()})
}

// handleEvents streams one job's lifecycle as NDJSON frames: "started" when
// the job leaves the local queue, every hub event ("progress", "window")
// as it happens, and a terminal "done" frame carrying outcome, result, and
// the worker-measured perf record. The stream ends after done; a
// coordinator reattaching to a finished job gets the done frame
// immediately.
func (a *Agent) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := a.mgr.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("cluster: unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	send := func(f Frame) bool {
		if err := enc.Encode(f); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	sendDone := func() {
		view := job.View()
		res, jobErr := job.Result()
		d := DoneFrame{State: view.State, Error: view.Error, Result: res, Perf: view.Perf}
		if jobErr != nil && d.Error == "" {
			d.Error = jobErr.Error()
		}
		if tc := job.TraceContext(); tc.Sampled {
			d.Spans = a.cfg.Tracer.Trace(tc.TraceID)
		}
		data, err := json.Marshal(d)
		if err != nil {
			return
		}
		send(Frame{Event: "done", Data: data})
	}

	sub, cancelSub := job.SubscribeStream()
	defer cancelSub()
	started := job.Started()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-started:
			if !send(Frame{Event: "started"}) {
				return
			}
			started = nil // fire once
		case ev, open := <-sub:
			if !open {
				sendDone()
				return
			}
			if !send(Frame{Event: ev.Name, Data: ev.Data}) {
				return
			}
		}
	}
}
