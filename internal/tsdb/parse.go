package tsdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The scrape source is womd's own /metrics exposition (engine
// Server.WriteProm), so the parser handles exactly the Prometheus text
// format that writer produces: `# `-prefixed comments, bare samples
// `name value`, and labeled samples `name{k="v",...} value` with
// backslash-escaped quotes inside label values. An optional trailing
// timestamp field is ignored — the scrape time stamps every sample.

// scrapedSample is one parsed exposition line.
type scrapedSample struct {
	metric string
	labels string // raw label body, as written between { and }
	value  float64
}

// parseExposition extracts every sample line from a Prometheus text
// exposition. Malformed lines are counted, not fatal: one odd line must
// not blind the whole scrape.
func parseExposition(text string, out []scrapedSample) (samples []scrapedSample, malformed int) {
	samples = out[:0]
	for len(text) > 0 {
		line := text
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			line, text = text[:i], text[i+1:]
		} else {
			text = ""
		}
		line = strings.TrimSpace(line)
		if line == "" || line[0] == '#' {
			continue
		}
		s, ok := parseSampleLine(line)
		if !ok {
			malformed++
			continue
		}
		samples = append(samples, s)
	}
	return samples, malformed
}

// parseSampleLine splits one sample line into metric, raw label body, and
// value.
func parseSampleLine(line string) (scrapedSample, bool) {
	var s scrapedSample
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return s, false
	}
	s.metric = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := labelBodyEnd(rest)
		if end < 0 {
			return s, false
		}
		s.labels = rest[1:end]
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, false
	}
	s.value = v
	return s, true
}

// labelBodyEnd returns the index of the closing '}' of a label body that
// starts at rest[0] == '{', honoring quoted values with backslash escapes.
func labelBodyEnd(rest string) int {
	inQuote := false
	for i := 1; i < len(rest); i++ {
		c := rest[i]
		switch {
		case inQuote && c == '\\':
			i++ // skip the escaped byte
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '}':
			return i
		}
	}
	return -1
}

// parseLabels expands a raw label body into a map. Returns nil for an
// empty body.
func parseLabels(body string) (map[string]string, error) {
	if body == "" {
		return nil, nil
	}
	out := make(map[string]string, 4)
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("tsdb: label body %q: missing '='", body)
		}
		name := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("tsdb: label %q: unquoted value", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(body) {
				return nil, fmt.Errorf("tsdb: label %q: unterminated value", name)
			}
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				next := body[i+1]
				switch next {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(next)
				default:
					val.WriteByte(c)
					val.WriteByte(next)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		out[name] = val.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return out, nil
}

// canonicalKey is a series' stable identity: metric plus labels sorted by
// name, formatted back into exposition syntax. Replay, ingest, and query
// all meet at this string.
func canonicalKey(metric string, labels map[string]string) string {
	if len(labels) == 0 {
		return metric
	}
	names := make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(metric)
	b.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// matchLabels reports whether a series' labels satisfy every matcher.
func matchLabels(labels, match map[string]string) bool {
	for k, want := range match {
		if labels[k] != want {
			return false
		}
	}
	return true
}
