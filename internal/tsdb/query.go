package tsdb

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// ErrBadQuery reports an invalid range query; the HTTP layer maps it to
// 400.
var ErrBadQuery = errors.New("tsdb: bad query")

// RangeQuery asks for one metric's aggregated history. Every output point
// at time t summarizes the half-open window [t-step, t) — the same
// orientation the downsampler's buckets use, so a tier bucket nests
// exactly inside an aligned query window and rate() agrees across tiers.
type RangeQuery struct {
	Metric string
	// Match restricts the series set: every listed label must equal.
	Match map[string]string
	// StartMs/EndMs bound the query, unix milliseconds, inclusive.
	StartMs, EndMs int64
	// StepMs is the output resolution (default: a 100-point spread).
	StepMs int64
	// Agg is one of rate, avg, min, max, sum (default avg).
	Agg string
	// TierStep forces a tier by its bucket width; zero auto-selects the
	// finest tier whose retention still covers StartMs.
	TierStep time.Duration
}

// SeriesResult is one matched series' aggregated points.
type SeriesResult struct {
	Metric string            `json:"metric"`
	Labels map[string]string `json:"labels,omitempty"`
	// Tier is the bucket width the answer was computed from, in
	// milliseconds; 0 = raw samples.
	TierMs int64   `json:"tier_ms"`
	Points []Point `json:"points"`
}

// SeriesInfo is one series' discovery row for /v1/series.
type SeriesInfo struct {
	Metric string            `json:"metric"`
	Labels map[string]string `json:"labels,omitempty"`
	// MinMs/MaxMs bound the raw samples currently held.
	MinMs int64 `json:"min_ms,omitempty"`
	MaxMs int64 `json:"max_ms,omitempty"`
}

var validAggs = map[string]bool{"rate": true, "avg": true, "min": true, "max": true, "sum": true}

// QueryRange evaluates q against every matching series. Windows with no
// data are omitted, not zero-filled. Nil DB returns an empty result.
func (db *DB) QueryRange(q RangeQuery) ([]SeriesResult, error) {
	if db == nil {
		return nil, nil
	}
	if q.Metric == "" {
		return nil, fmt.Errorf("%w: metric is required", ErrBadQuery)
	}
	if q.EndMs <= q.StartMs {
		return nil, fmt.Errorf("%w: end must be after start", ErrBadQuery)
	}
	if q.Agg == "" {
		q.Agg = "avg"
	}
	if !validAggs[q.Agg] {
		return nil, fmt.Errorf("%w: unknown agg %q", ErrBadQuery, q.Agg)
	}
	if q.StepMs <= 0 {
		q.StepMs = (q.EndMs - q.StartMs) / 100
		if q.StepMs < 1000 {
			q.StepMs = 1000
		}
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	tier, tierIdx, err := db.pickTierLocked(q)
	if err != nil {
		return nil, err
	}
	var out []SeriesResult
	for _, s := range db.seriesSortedLocked() {
		if s.metric != q.Metric || !matchLabels(s.labels, q.Match) {
			continue
		}
		var pts []Point
		if tierIdx == 0 {
			pts = evalRaw(db.rawSamplesLocked(s, q.StartMs-2*q.StepMs, q.EndMs), q)
		} else {
			pts = evalAgg(s.aggs[tierIdx-1], q)
		}
		if len(pts) == 0 {
			continue
		}
		out = append(out, SeriesResult{
			Metric: s.metric, Labels: s.labels,
			TierMs: tier.Step.Milliseconds(), Points: pts,
		})
	}
	return out, nil
}

// pickTierLocked selects the finest tier whose retention window still
// covers the query start (or the explicitly requested tier).
func (db *DB) pickTierLocked(q RangeQuery) (TierSpec, int, error) {
	if q.TierStep > 0 {
		for i, t := range db.opts.Tiers {
			if t.Step == q.TierStep {
				return t, i, nil
			}
		}
		return TierSpec{}, 0, fmt.Errorf("%w: no tier with step %s", ErrBadQuery, q.TierStep)
	}
	now := db.now().UnixMilli()
	for i, t := range db.opts.Tiers {
		if q.StartMs >= now-t.Retention.Milliseconds() {
			return t, i, nil
		}
	}
	last := len(db.opts.Tiers) - 1
	return db.opts.Tiers[last], last, nil
}

// seriesSortedLocked returns every series in stable key order.
func (db *DB) seriesSortedLocked() []*series {
	out := make([]*series, 0, len(db.series))
	for _, s := range db.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// rawSamplesLocked decodes a series' raw samples within [fromMs, toMs].
// Chunks recovered from a torn tail decode as far as they go; a decode
// error ends that chunk early rather than failing the query.
func (db *DB) rawSamplesLocked(s *series, fromMs, toMs int64) []Point {
	var out []Point
	emit := func(data []byte, n int, startT, endT int64) {
		if endT < fromMs || startT > toMs {
			return
		}
		it := iterChunk(data, n)
		for {
			t, v, ok := it.next()
			if !ok {
				break
			}
			if t < fromMs || t > toMs {
				continue
			}
			out = append(out, Point{T: t, V: v})
		}
	}
	for _, sc := range s.sealed {
		emit(sc.data, sc.n, sc.startT, sc.endT)
	}
	if s.head != nil && s.head.n > 0 {
		emit(s.head.bytes(), s.head.n, s.head.startT, s.head.endT)
	}
	// Sealed chunks are time-ordered, but a restart can interleave a
	// replayed chunk with freshly scraped samples; sort to be safe.
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// evalRaw aggregates raw samples into q's step windows. For rate, the
// reset-aware increase of each consecutive sample pair is attributed to
// the window holding the later sample — the same rule downsampling uses,
// which is what keeps raw and tiered rates in agreement.
func evalRaw(samples []Point, q RangeQuery) []Point {
	if len(samples) == 0 {
		return nil
	}
	type acc struct {
		min, max, sum float64
		count         uint64
		inc           float64
	}
	buckets := make(map[int64]*acc)
	bucketEnd := func(t int64) (int64, bool) {
		if t < q.StartMs-q.StepMs || t >= q.EndMs {
			return 0, false
		}
		// Window [be-step, be) with be on the start+k*step grid.
		k := (t - (q.StartMs - q.StepMs)) / q.StepMs
		return q.StartMs + k*q.StepMs, true
	}
	var prev Point
	hasPrev := false
	for _, p := range samples {
		be, ok := bucketEnd(p.T)
		if ok {
			a := buckets[be]
			if a == nil {
				a = &acc{min: p.V, max: p.V}
				buckets[be] = a
			}
			if p.V < a.min {
				a.min = p.V
			}
			if p.V > a.max {
				a.max = p.V
			}
			a.sum += p.V
			a.count++
			if hasPrev {
				if d := p.V - prev.V; d >= 0 {
					a.inc += d
				} else {
					a.inc += p.V
				}
			}
		}
		prev, hasPrev = p, true
	}
	return collectBuckets(q, func(be int64) (float64, bool) {
		a, ok := buckets[be]
		if !ok || a.count == 0 {
			return 0, false
		}
		switch q.Agg {
		case "rate":
			return a.inc / (float64(q.StepMs) / 1000), true
		case "min":
			return a.min, true
		case "max":
			return a.max, true
		case "sum":
			return a.sum, true
		default:
			return a.sum / float64(a.count), true
		}
	})
}

// evalAgg aggregates a tier's finalized (and currently-open) buckets into
// q's step windows. A tier bucket belongs to the window containing its
// start.
func evalAgg(a *aggState, q RangeQuery) []Point {
	pts := a.done
	var open []AggPoint
	if a.bucketT >= 0 {
		open = []AggPoint{a.cur}
	}
	type acc struct {
		AggPoint
		ok bool
	}
	buckets := make(map[int64]*acc)
	feed := func(p AggPoint) {
		if p.T < q.StartMs-q.StepMs || p.T >= q.EndMs {
			return
		}
		k := (p.T - (q.StartMs - q.StepMs)) / q.StepMs
		be := q.StartMs + k*q.StepMs
		c := buckets[be]
		if c == nil {
			c = &acc{AggPoint: p, ok: true}
			buckets[be] = c
			return
		}
		if p.Min < c.Min {
			c.Min = p.Min
		}
		if p.Max > c.Max {
			c.Max = p.Max
		}
		c.Sum += p.Sum
		c.Count += p.Count
		c.Last = p.Last
		c.Inc += p.Inc
	}
	for _, p := range pts {
		feed(p)
	}
	for _, p := range open {
		feed(p)
	}
	return collectBuckets(q, func(be int64) (float64, bool) {
		c, ok := buckets[be]
		if !ok || c.Count == 0 {
			return 0, false
		}
		switch q.Agg {
		case "rate":
			return c.Inc / (float64(q.StepMs) / 1000), true
		case "min":
			return c.Min, true
		case "max":
			return c.Max, true
		case "sum":
			return c.Sum, true
		default:
			return c.Sum / float64(c.Count), true
		}
	})
}

// collectBuckets walks the output grid start..end and emits the windows
// that have data.
func collectBuckets(q RangeQuery, value func(be int64) (float64, bool)) []Point {
	var out []Point
	for be := q.StartMs; be <= q.EndMs; be += q.StepMs {
		if v, ok := value(be); ok {
			out = append(out, Point{T: be, V: v})
		}
	}
	return out
}

// Series lists held series, optionally restricted to one metric, sorted
// by key. Nil DB returns nil.
func (db *DB) Series(metric string) []SeriesInfo {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []SeriesInfo
	for _, s := range db.seriesSortedLocked() {
		if metric != "" && s.metric != metric {
			continue
		}
		info := SeriesInfo{Metric: s.metric, Labels: s.labels}
		if len(s.sealed) > 0 {
			info.MinMs = s.sealed[0].startT
			info.MaxMs = s.sealed[len(s.sealed)-1].endT
		}
		if s.head != nil && s.head.n > 0 {
			if info.MinMs == 0 {
				info.MinMs = s.head.startT
			}
			info.MaxMs = s.head.endT
		}
		out = append(out, info)
	}
	return out
}

// RawSamples returns a series' raw samples in [fromMs, toMs] — the
// backfill feed for burn-rate windows after a restart. Nil DB returns
// nil.
func (db *DB) RawSamples(metric string, match map[string]string, fromMs, toMs int64) []Point {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	key := canonicalKey(metric, match)
	s, ok := db.series[key]
	if !ok {
		return nil
	}
	return db.rawSamplesLocked(s, fromMs, toMs)
}
