package tsdb

import (
	"encoding/json"
	"sort"
	"time"
)

// The alert journal makes the alerting plane restart-durable: every
// lifecycle transition (pending, firing, resolved, flapped) is appended
// to the same segment log as metric history, replayed on open, and the
// latest pending/firing event per rule+subject key is the active set a
// restarted womd rehydrates its health engine from.

// AppendAlertTransition journals one alert lifecycle event. The alert
// body is carried opaquely (the health plane's own JSON view), so the
// store does not couple to its schema. Transitions persist immediately —
// they are rare and each one matters across a restart. No-op on nil.
func (db *DB) AppendAlertTransition(at time.Time, to, key string, alert json.RawMessage) {
	if db == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	tr := Transition{At: at, To: to, Key: key, Alert: alert}
	db.applyTransition(tr)
	if db.seg == nil {
		return
	}
	if err := db.appendRecord(record{Kind: "alert", Transition: &tr}, at.UnixMilli()); err != nil {
		db.log.Error("history: persisting alert transition", "err", err)
	}
}

// AlertHistory returns journaled transitions newest-first, bounded by
// limit (0 = all held) and optionally to [from, to] (zero times skip the
// bound). Nil DB returns nil.
func (db *DB) AlertHistory(from, to time.Time, limit int) []Transition {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]Transition, 0, len(db.transitions))
	for i := len(db.transitions) - 1; i >= 0; i-- {
		tr := db.transitions[i]
		if !from.IsZero() && tr.At.Before(from) {
			continue
		}
		if !to.IsZero() && tr.At.After(to) {
			continue
		}
		out = append(out, tr)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// ActiveAlerts returns the latest pending/firing transition per alert
// key — the set a restarted process should rehydrate. Sorted by key for
// determinism. Nil DB returns nil.
func (db *DB) ActiveAlerts() []Transition {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]Transition, 0, len(db.activeAlerts))
	for _, tr := range db.activeAlerts {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
