// Package tsdb is womd's embedded metrics history: a small time-series
// store that scrapes the process's own Prometheus exposition (including
// federated womd_fleet_* families on a coordinator) on a fixed interval,
// holds recent samples in Gorilla-style compressed chunks, downsamples
// them through retention tiers that preserve min/max/sum/count and
// reset-aware counter increase, and persists sealed chunks, aggregate
// buckets, and alert state transitions to CRC32-framed append-only
// segments (the resultstore log format) so history and alert state
// survive a restart.
package tsdb

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Log format constants, mirroring resultstore: each segment is an 8-byte
// header followed by frames of [4-byte LE length][4-byte LE CRC32-IEEE of
// payload][JSON payload].
const (
	segHeader     = "WOMTSv1\n"
	segPrefix     = "hist-"
	segSuffix     = ".log"
	frameOverhead = 8
	maxPayload    = 16 << 20
)

var (
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("tsdb: history closed")
	// ErrCorrupt reports corruption in a non-final segment — damage a
	// crash cannot produce, so it is surfaced instead of truncated away.
	ErrCorrupt = errors.New("tsdb: corrupt interior segment")
)

// Point is one raw sample. T is unix milliseconds.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// AggPoint is one downsampled bucket: enough moments to answer avg, min,
// max, and sum honestly, plus Inc — the reset-aware counter increase whose
// deltas landed in this bucket — so rate() over a coarse tier agrees with
// rate() over raw.
type AggPoint struct {
	T     int64   `json:"t"` // bucket start, unix ms
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count uint64  `json:"count"`
	First float64 `json:"first"`
	Last  float64 `json:"last"`
	Inc   float64 `json:"inc"`
}

// TierSpec is one retention tier. Step 0 marks the raw tier; any other
// step downsamples raw samples into Step-wide buckets. Retention bounds
// how long the tier's data is kept, in memory and on disk.
type TierSpec struct {
	Step      time.Duration
	Retention time.Duration
}

// DefaultTiers is raw 5s samples for 1h, 1m buckets for 24h, 10m buckets
// for 7d.
func DefaultTiers() []TierSpec {
	return []TierSpec{
		{Step: 0, Retention: time.Hour},
		{Step: time.Minute, Retention: 24 * time.Hour},
		{Step: 10 * time.Minute, Retention: 7 * 24 * time.Hour},
	}
}

// ParseTiers parses womd's -history-retention syntax: comma-separated
// step=retention pairs, finest tier first, where step is "raw" (or "0")
// for the raw tier and a Go duration otherwise — e.g.
// "raw=1h,1m=24h,10m=168h".
func ParseTiers(s string) ([]TierSpec, error) {
	var out []TierSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		stepStr, keepStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("tsdb: tier %q: want step=retention", part)
		}
		var step time.Duration
		if v := strings.TrimSpace(stepStr); v != "raw" && v != "0" {
			var err error
			if step, err = time.ParseDuration(v); err != nil {
				return nil, fmt.Errorf("tsdb: tier %q: %w", part, err)
			}
			if step <= 0 {
				return nil, fmt.Errorf("tsdb: tier %q: step must be positive or \"raw\"", part)
			}
		}
		keep, err := time.ParseDuration(strings.TrimSpace(keepStr))
		if err != nil {
			return nil, fmt.Errorf("tsdb: tier %q: %w", part, err)
		}
		if keep <= 0 {
			return nil, fmt.Errorf("tsdb: tier %q: retention must be positive", part)
		}
		out = append(out, TierSpec{Step: step, Retention: keep})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tsdb: empty retention spec")
	}
	if out[0].Step != 0 {
		return nil, fmt.Errorf("tsdb: first tier must be raw (step \"raw\")")
	}
	for i := 1; i < len(out); i++ {
		if out[i].Step <= out[i-1].Step {
			return nil, fmt.Errorf("tsdb: tiers must be ordered finest to coarsest")
		}
	}
	return out, nil
}

// Options tunes a DB. Zero values select production defaults.
type Options struct {
	// Dir holds the segment log; empty keeps history in memory only.
	Dir string
	// ScrapeInterval is the self-scrape cadence (default 5s).
	ScrapeInterval time.Duration
	// FlushInterval bounds how long finalized aggregate buckets and the
	// sealed-chunk backlog wait before being persisted (default 60s).
	FlushInterval time.Duration
	// Tiers is the retention ladder; default DefaultTiers(). The first
	// entry must be the raw tier (Step 0).
	Tiers []TierSpec
	// MaxSamplesPerChunk seals a head chunk at this many samples
	// (default 512).
	MaxSamplesPerChunk int
	// MaxSegmentBytes rotates to a fresh segment past this size
	// (default 4 MiB). Small segments make retention GC fine-grained.
	MaxSegmentBytes int64
	// MaxTransitions bounds the in-memory alert transition history
	// (default 4096).
	MaxTransitions int
	// Logger receives scrape and persistence errors; nil discards.
	Logger *slog.Logger
	// Now is the clock, a test hook; nil means time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.ScrapeInterval <= 0 {
		o.ScrapeInterval = 5 * time.Second
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 60 * time.Second
	}
	if len(o.Tiers) == 0 {
		o.Tiers = DefaultTiers()
	}
	if o.MaxSamplesPerChunk <= 0 {
		o.MaxSamplesPerChunk = 512
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.MaxTransitions <= 0 {
		o.MaxTransitions = 4096
	}
	return o
}

// aggState accumulates one series' downsampling into one tier.
type aggState struct {
	step    int64 // bucket width, ms
	bucketT int64 // current bucket start; -1 = none open
	cur     AggPoint
	done    []AggPoint // finalized buckets, sorted by T
	dirty   []AggPoint // finalized but not yet persisted
}

// series is one metric+labelset's full state across every tier.
type series struct {
	metric string
	labels map[string]string
	key    string

	head   *chunk
	sealed []sealedChunk
	dirty  []sealedChunk // sealed but not yet persisted

	// prev raw sample, the baseline for reset-aware increase.
	prevT   int64
	prevV   float64
	hasPrev bool

	aggs []*aggState // one per non-raw tier, in Options.Tiers order
}

// Transition is one persisted alert lifecycle event. Alert carries the
// alerting plane's own JSON view opaquely, so tsdb does not depend on the
// health package's types.
type Transition struct {
	At    time.Time       `json:"at"`
	To    string          `json:"to"` // pending|firing|resolved|flapped
	Key   string          `json:"key"`
	Alert json.RawMessage `json:"alert"`
}

// record is the on-disk payload: exactly one body per kind.
type record struct {
	Kind string `json:"kind"` // "chunk", "agg", or "alert"

	// chunk + agg common identity
	Metric string            `json:"metric,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`

	// chunk
	Start   int64  `json:"start,omitempty"` // ms
	End     int64  `json:"end,omitempty"`   // ms
	Samples int    `json:"samples,omitempty"`
	Data    []byte `json:"data,omitempty"` // chunk bitstream (base64 via JSON)

	// agg
	StepMs int64      `json:"step_ms,omitempty"`
	Points []AggPoint `json:"points,omitempty"`

	// alert
	Transition *Transition `json:"transition,omitempty"`
}

// DB is the history store. All exported methods are safe on a nil
// receiver — they no-op or return zero values — so womd threads one
// pointer through regardless of -history.
type DB struct {
	opts Options
	now  func() time.Time
	log  *slog.Logger

	mu     sync.Mutex
	closed bool
	series map[string]*series

	seg      *os.File
	segIndex int
	segSize  int64
	segMaxT  map[int]int64 // newest record time per segment, for GC

	transitions  []Transition
	activeAlerts map[string]Transition

	scrapes      uint64
	scrapeErrs   uint64
	samplesTotal uint64
	malformed    uint64
	lastScrapeAt time.Time
	lastFlush    time.Time

	started bool
	stop    chan struct{}
	done    chan struct{}

	scratch []scrapedSample // reused scrape parse buffer
}

// Open builds a DB and, when opts.Dir is set, replays its segment log —
// truncating a torn tail off the final segment — so prior history and
// alert state are queryable before the first scrape.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if len(opts.Tiers) == 0 || opts.Tiers[0].Step != 0 {
		return nil, fmt.Errorf("tsdb: first tier must be raw (step 0)")
	}
	for _, t := range opts.Tiers[1:] {
		if t.Step <= 0 {
			return nil, fmt.Errorf("tsdb: non-raw tier needs a positive step")
		}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	db := &DB{
		opts:         opts,
		now:          now,
		log:          log,
		series:       make(map[string]*series),
		segMaxT:      make(map[int]int64),
		activeAlerts: make(map[string]Transition),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	if opts.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	segs, err := db.segmentList()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := db.openSegment(1); err != nil {
			return nil, err
		}
		return db, nil
	}
	for i, idx := range segs {
		if err := db.replaySegment(idx, i == len(segs)-1); err != nil {
			return nil, err
		}
	}
	db.finishReplay()
	last := segs[len(segs)-1]
	f, err := os.OpenFile(db.segPath(last), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	db.seg, db.segIndex, db.segSize = f, last, st.Size()
	return db, nil
}

func (db *DB) segPath(idx int) string {
	return filepath.Join(db.opts.Dir, fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix))
}

func (db *DB) segmentList() ([]int, error) {
	names, err := filepath.Glob(filepath.Join(db.opts.Dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	var out []int
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(name), segPrefix+"%08d"+segSuffix, &idx); err == nil {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

func (db *DB) openSegment(idx int) error {
	f, err := os.OpenFile(db.segPath(idx), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	if _, err := f.Write([]byte(segHeader)); err != nil {
		f.Close()
		return fmt.Errorf("tsdb: %w", err)
	}
	if db.seg != nil {
		db.seg.Close()
	}
	db.seg, db.segIndex, db.segSize = f, idx, int64(len(segHeader))
	return nil
}

// replaySegment loads one segment. Any malformed frame in the final
// segment is a torn tail left by a crash: truncate at the last good frame
// and stop. The same damage in an interior segment is ErrCorrupt.
func (db *DB) replaySegment(idx int, final bool) error {
	path := db.segPath(idx)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	defer f.Close()

	truncate := func(off int64, cause string) error {
		if !final {
			return fmt.Errorf("%w: %s at offset %d of %s", ErrCorrupt, cause, off, path)
		}
		return os.Truncate(path, off)
	}

	hdr := make([]byte, len(segHeader))
	if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != segHeader {
		if err := truncate(0, "bad segment header"); err != nil {
			return err
		}
		if final {
			return os.WriteFile(path, []byte(segHeader), 0o644)
		}
		return nil
	}

	off := int64(len(segHeader))
	frame := make([]byte, frameOverhead)
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			if err == io.EOF {
				return nil
			}
			return truncate(off, "torn frame header")
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > maxPayload {
			return truncate(off, "implausible frame length")
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return truncate(off, "torn payload")
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return truncate(off, "crc mismatch")
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return truncate(off, "undecodable record")
		}
		db.applyReplay(idx, rec)
		off += frameOverhead + int64(length)
	}
}

// applyReplay indexes one replayed record. Unknown kinds are skipped, not
// fatal, so a newer writer's records do not brick an older reader.
func (db *DB) applyReplay(segIdx int, rec record) {
	switch rec.Kind {
	case "chunk":
		if len(rec.Data) == 0 || rec.Samples <= 0 {
			return
		}
		s := db.getSeries(rec.Metric, rec.Labels)
		s.sealed = append(s.sealed, sealedChunk{
			data: rec.Data, n: rec.Samples, startT: rec.Start, endT: rec.End,
		})
		db.noteSegTime(segIdx, rec.End)
	case "agg":
		if rec.StepMs <= 0 || len(rec.Points) == 0 {
			return
		}
		s := db.getSeries(rec.Metric, rec.Labels)
		for _, a := range db.aggsFor(s) {
			if a.step != rec.StepMs {
				continue
			}
			a.done = append(a.done, rec.Points...)
			db.noteSegTime(segIdx, rec.Points[len(rec.Points)-1].T+rec.StepMs)
		}
	case "alert":
		if rec.Transition == nil {
			return
		}
		db.applyTransition(*rec.Transition)
		db.noteSegTime(segIdx, rec.Transition.At.UnixMilli())
	}
}

func (db *DB) noteSegTime(idx int, t int64) {
	if t > db.segMaxT[idx] {
		db.segMaxT[idx] = t
	}
}

// finishReplay sorts and merges replayed state into query order. A
// graceful shutdown persists partial aggregate buckets, so replay can see
// two points for the same bucket (pre- and post-restart halves); they are
// merged, not duplicated.
func (db *DB) finishReplay() {
	for _, s := range db.series {
		sort.Slice(s.sealed, func(i, j int) bool { return s.sealed[i].startT < s.sealed[j].startT })
		for _, a := range s.aggs {
			sort.Slice(a.done, func(i, j int) bool { return a.done[i].T < a.done[j].T })
			a.done = mergeAggDuplicates(a.done)
		}
	}
	sort.SliceStable(db.transitions, func(i, j int) bool {
		return db.transitions[i].At.Before(db.transitions[j].At)
	})
}

// mergeAggDuplicates folds sorted points sharing a bucket start into one.
func mergeAggDuplicates(pts []AggPoint) []AggPoint {
	if len(pts) < 2 {
		return pts
	}
	out := pts[:1]
	for _, p := range pts[1:] {
		last := &out[len(out)-1]
		if p.T != last.T {
			out = append(out, p)
			continue
		}
		if p.Min < last.Min {
			last.Min = p.Min
		}
		if p.Max > last.Max {
			last.Max = p.Max
		}
		last.Sum += p.Sum
		last.Count += p.Count
		last.Last = p.Last // sorted stable: later record wins
		last.Inc += p.Inc
	}
	return out
}

// applyTransition records one alert lifecycle event and updates the
// restart-durable active set.
func (db *DB) applyTransition(tr Transition) {
	db.transitions = append(db.transitions, tr)
	if over := len(db.transitions) - db.opts.MaxTransitions; over > 0 {
		db.transitions = append(db.transitions[:0], db.transitions[over:]...)
	}
	switch tr.To {
	case "pending", "firing":
		db.activeAlerts[tr.Key] = tr
	default: // resolved, flapped, or anything newer we don't know
		delete(db.activeAlerts, tr.Key)
	}
}

// getSeries finds or creates the series for metric+labels (caller holds
// db.mu or is inside Open's single-threaded replay).
func (db *DB) getSeries(metric string, labels map[string]string) *series {
	key := canonicalKey(metric, labels)
	if s, ok := db.series[key]; ok {
		return s
	}
	// Clone the metric name: during a scrape it is a slice of the full
	// exposition buffer, which the series must not pin.
	s := &series{metric: strings.Clone(metric), labels: labels, key: key}
	s.aggs = db.aggsFor(s)
	db.series[key] = s
	return s
}

// aggsFor lazily builds the series' per-tier accumulators.
func (db *DB) aggsFor(s *series) []*aggState {
	if s.aggs != nil {
		return s.aggs
	}
	for _, t := range db.opts.Tiers[1:] {
		s.aggs = append(s.aggs, &aggState{step: t.Step.Milliseconds(), bucketT: -1})
	}
	return s.aggs
}

// Start launches the self-scrape loop. gather must write the full
// Prometheus exposition to scrape (engine Server.WriteProm); it is called
// outside the DB lock, so the exposition may itself include the DB's own
// WriteProm output. No-op on nil.
func (db *DB) Start(gather func(io.Writer)) {
	if db == nil || gather == nil {
		return
	}
	db.mu.Lock()
	if db.started || db.closed {
		db.mu.Unlock()
		return
	}
	db.started = true
	db.mu.Unlock()
	go func() {
		defer close(db.done)
		// First pass immediately: a restarted daemon has live samples —
		// and a scrape counter — before one interval elapses.
		db.ScrapeOnce(gather)
		t := time.NewTicker(db.opts.ScrapeInterval)
		defer t.Stop()
		for {
			select {
			case <-db.stop:
				return
			case <-t.C:
				db.ScrapeOnce(gather)
			}
		}
	}()
}

// ScrapeOnce gathers one exposition and ingests every sample at the
// current time. Exposed for deterministic tests and the smoke script.
// No-op on nil.
func (db *DB) ScrapeOnce(gather func(io.Writer)) {
	if db == nil || gather == nil {
		return
	}
	var buf bytes.Buffer
	gather(&buf) // outside db.mu: the exposition includes db.WriteProm

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	now := db.now()
	samples, malformed := parseExposition(buf.String(), db.scratch)
	db.scratch = samples[:0]
	db.scrapes++
	db.malformed += uint64(malformed)
	db.lastScrapeAt = now
	t := now.UnixMilli()
	for _, sm := range samples {
		labels, err := parseLabels(sm.labels)
		if err != nil {
			db.malformed++
			continue
		}
		db.ingestLocked(db.getSeries(sm.metric, labels), t, sm.value)
	}
	db.samplesTotal += uint64(len(samples))
	db.maintainLocked(now)
}

// Append ingests one sample directly (backfill, ObserveJob, tests).
// No-op on nil.
func (db *DB) Append(metric string, labels map[string]string, t int64, v float64) {
	if db == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	db.ingestLocked(db.getSeries(metric, labels), t, v)
}

// ObserveJob records one finished job's wall time under the experiment's
// history series. The disabled path (nil DB) is one pointer check and
// zero allocations — the job hot path contract shared with probe, span,
// and exemplars.
func (db *DB) ObserveJob(experiment string, wallSeconds float64) {
	if db == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	s := db.getSeries("womd_history_job_wall_seconds", map[string]string{"experiment": experiment})
	db.ingestLocked(s, db.now().UnixMilli(), wallSeconds)
}

// ingestLocked appends one sample to a series and feeds every aggregate
// tier, attributing reset-aware counter increase to the bucket holding
// the later sample of each delta.
func (db *DB) ingestLocked(s *series, t int64, v float64) {
	if s.head == nil {
		s.head = &chunk{}
	} else if t <= s.head.endT {
		return // duplicate or time regression; self-scrape never rewinds
	}
	s.head.append(t, v)
	if s.head.n >= db.opts.MaxSamplesPerChunk {
		db.sealHeadLocked(s)
	}

	var inc float64
	if s.hasPrev {
		if d := v - s.prevV; d >= 0 {
			inc = d
		} else {
			inc = v // counter reset: the new value is the known increase
		}
	}
	s.prevT, s.prevV, s.hasPrev = t, v, true

	for _, a := range s.aggs {
		b := t - mod(t, a.step)
		if a.bucketT != b {
			if a.bucketT >= 0 {
				db.finalizeAggLocked(a)
			}
			a.bucketT = b
			a.cur = AggPoint{T: b, Min: v, Max: v, First: v}
		}
		c := &a.cur
		if v < c.Min {
			c.Min = v
		}
		if v > c.Max {
			c.Max = v
		}
		c.Sum += v
		c.Count++
		c.Last = v
		c.Inc += inc
	}
}

// mod is a floor modulus for possibly-negative timestamps.
func mod(t, step int64) int64 {
	m := t % step
	if m < 0 {
		m += step
	}
	return m
}

func (db *DB) finalizeAggLocked(a *aggState) {
	a.done = append(a.done, a.cur)
	a.dirty = append(a.dirty, a.cur)
	a.bucketT = -1
}

// sealHeadLocked freezes a full head chunk and queues it for persistence.
func (db *DB) sealHeadLocked(s *series) {
	if s.head == nil || s.head.n == 0 {
		return
	}
	sc := s.head.seal()
	s.sealed = append(s.sealed, sc)
	s.dirty = append(s.dirty, sc)
	s.head = nil
}

// maintainLocked runs the periodic bookkeeping that rides each scrape:
// seal aged heads, flush dirty state to disk, prune expired data, GC
// fully-expired segments.
func (db *DB) maintainLocked(now time.Time) {
	flushDue := now.Sub(db.lastFlush) >= db.opts.FlushInterval
	if flushDue {
		db.lastFlush = now
	}
	for _, s := range db.series {
		if flushDue && s.head != nil && s.head.n > 1 &&
			now.UnixMilli()-s.head.startT >= db.opts.FlushInterval.Milliseconds() {
			db.sealHeadLocked(s)
		}
	}
	db.pruneLocked(now)
	if flushDue {
		db.flushLocked(now)
	}
}

// pruneLocked drops chunks and buckets past their tier's retention.
func (db *DB) pruneLocked(now time.Time) {
	rawCut := now.Add(-db.opts.Tiers[0].Retention).UnixMilli()
	for _, s := range db.series {
		n := 0
		for _, sc := range s.sealed {
			if sc.endT >= rawCut {
				s.sealed[n] = sc
				n++
			}
		}
		clear(s.sealed[n:])
		s.sealed = s.sealed[:n]
		for i, a := range s.aggs {
			cut := now.Add(-db.opts.Tiers[i+1].Retention).UnixMilli()
			drop := 0
			for drop < len(a.done) && a.done[drop].T+a.step < cut {
				drop++
			}
			if drop > 0 {
				a.done = append(a.done[:0], a.done[drop:]...)
			}
		}
	}
}

// flushLocked persists dirty sealed chunks and finalized buckets, then
// deletes non-active segments whose newest record is past the longest
// retention.
func (db *DB) flushLocked(now time.Time) {
	if db.seg == nil {
		for _, s := range db.series {
			s.dirty = nil
			for _, a := range s.aggs {
				a.dirty = nil
			}
		}
		return
	}
	for _, s := range db.series {
		for _, sc := range s.dirty {
			rec := record{Kind: "chunk", Metric: s.metric, Labels: s.labels,
				Start: sc.startT, End: sc.endT, Samples: sc.n, Data: sc.data}
			if err := db.appendRecord(rec, sc.endT); err != nil {
				db.log.Error("history: persisting chunk", "err", err)
				return
			}
		}
		s.dirty = nil
		for _, a := range s.aggs {
			if len(a.dirty) == 0 {
				continue
			}
			rec := record{Kind: "agg", Metric: s.metric, Labels: s.labels,
				StepMs: a.step, Points: a.dirty}
			if err := db.appendRecord(rec, a.dirty[len(a.dirty)-1].T+a.step); err != nil {
				db.log.Error("history: persisting aggregates", "err", err)
				return
			}
			a.dirty = nil
		}
	}
	db.gcSegmentsLocked(now)
}

// gcSegmentsLocked unlinks sealed segments whose entire contents are past
// the longest retention tier.
func (db *DB) gcSegmentsLocked(now time.Time) {
	var maxRet time.Duration
	for _, t := range db.opts.Tiers {
		if t.Retention > maxRet {
			maxRet = t.Retention
		}
	}
	cut := now.Add(-maxRet).UnixMilli()
	for idx, maxT := range db.segMaxT {
		if idx == db.segIndex || maxT >= cut {
			continue
		}
		if err := os.Remove(db.segPath(idx)); err != nil {
			db.log.Error("history: removing expired segment", "segment", idx, "err", err)
			continue
		}
		delete(db.segMaxT, idx)
	}
}

// appendRecord frames and writes one record, rotating segments past the
// size cap.
func (db *DB) appendRecord(rec record, maxT int64) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("tsdb: record of %d bytes exceeds %d-byte frame cap", len(payload), maxPayload)
	}
	need := int64(frameOverhead + len(payload))
	if db.segSize+need > db.opts.MaxSegmentBytes && db.segSize > int64(len(segHeader)) {
		if err := db.openSegment(db.segIndex + 1); err != nil {
			return err
		}
	}
	frame := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameOverhead:], payload)
	if _, err := db.seg.Write(frame); err != nil {
		return err
	}
	db.segSize += need
	db.noteSegTime(db.segIndex, maxT)
	return nil
}

// Close stops the scrape loop, seals every head, finalizes every open
// aggregate bucket, and flushes all of it — a graceful restart loses
// nothing. No-op on nil.
func (db *DB) Close() error {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	started := db.started
	db.started = false
	db.mu.Unlock()
	if started {
		close(db.stop)
		<-db.done
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	for _, s := range db.series {
		db.sealHeadLocked(s)
		for _, a := range s.aggs {
			if a.bucketT >= 0 {
				db.finalizeAggLocked(a)
			}
		}
	}
	db.flushLocked(db.now())
	if db.seg == nil {
		return nil
	}
	err := db.seg.Sync()
	if cerr := db.seg.Close(); err == nil {
		err = cerr
	}
	db.seg = nil
	return err
}

// Enabled reports whether history exists (false on nil), so callers can
// gate optional UI without poking internals.
func (db *DB) Enabled() bool { return db != nil }

// WriteProm emits the history plane's own womd_history_* families. Safe
// on nil (writes nothing).
func (db *DB) WriteProm(w io.Writer) {
	if db == nil {
		return
	}
	db.mu.Lock()
	nSeries := len(db.series)
	var nChunks, nBytes, nAgg int
	for _, s := range db.series {
		nChunks += len(s.sealed)
		for _, sc := range s.sealed {
			nBytes += len(sc.data)
		}
		if s.head != nil {
			nChunks++
			nBytes += len(s.head.w.b)
		}
		for _, a := range s.aggs {
			nAgg += len(a.done)
		}
	}
	scrapes, errs, samples, malformed := db.scrapes, db.scrapeErrs, db.samplesTotal, db.malformed
	transitions := len(db.transitions)
	db.mu.Unlock()

	fmt.Fprintf(w, "# HELP womd_history_series Live series tracked by the embedded history store.\n")
	fmt.Fprintf(w, "# TYPE womd_history_series gauge\nwomd_history_series %d\n", nSeries)
	fmt.Fprintf(w, "# HELP womd_history_chunks Raw-tier chunks held in memory (sealed plus heads).\n")
	fmt.Fprintf(w, "# TYPE womd_history_chunks gauge\nwomd_history_chunks %d\n", nChunks)
	fmt.Fprintf(w, "# HELP womd_history_chunk_bytes Compressed raw-tier bytes held in memory.\n")
	fmt.Fprintf(w, "# TYPE womd_history_chunk_bytes gauge\nwomd_history_chunk_bytes %d\n", nBytes)
	fmt.Fprintf(w, "# HELP womd_history_agg_points Downsampled buckets held across aggregate tiers.\n")
	fmt.Fprintf(w, "# TYPE womd_history_agg_points gauge\nwomd_history_agg_points %d\n", nAgg)
	fmt.Fprintf(w, "# HELP womd_history_scrapes_total Self-scrape passes completed.\n")
	fmt.Fprintf(w, "# TYPE womd_history_scrapes_total counter\nwomd_history_scrapes_total %d\n", scrapes)
	fmt.Fprintf(w, "# HELP womd_history_scrape_errors_total Self-scrape passes that failed.\n")
	fmt.Fprintf(w, "# TYPE womd_history_scrape_errors_total counter\nwomd_history_scrape_errors_total %d\n", errs)
	fmt.Fprintf(w, "# HELP womd_history_samples_total Samples ingested.\n")
	fmt.Fprintf(w, "# TYPE womd_history_samples_total counter\nwomd_history_samples_total %d\n", samples)
	fmt.Fprintf(w, "# HELP womd_history_malformed_lines_total Exposition lines the scraper could not parse.\n")
	fmt.Fprintf(w, "# TYPE womd_history_malformed_lines_total counter\nwomd_history_malformed_lines_total %d\n", malformed)
	fmt.Fprintf(w, "# HELP womd_history_alert_transitions Alert lifecycle events held in history.\n")
	fmt.Fprintf(w, "# TYPE womd_history_alert_transitions gauge\nwomd_history_alert_transitions %d\n", transitions)
}

// ScrapeInterval reports the configured self-scrape cadence (0 on nil).
func (db *DB) ScrapeInterval() time.Duration {
	if db == nil {
		return 0
	}
	return db.opts.ScrapeInterval
}
