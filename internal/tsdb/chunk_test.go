package tsdb

import (
	"math"
	"math/rand"
	"testing"
)

func requireSamples(t *testing.T, want, got []Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].T != want[i].T {
			t.Fatalf("sample %d: t=%d want %d", i, got[i].T, want[i].T)
		}
		if got[i].V != want[i].V && !(math.IsNaN(got[i].V) && math.IsNaN(want[i].V)) {
			t.Fatalf("sample %d: v=%v want %v", i, got[i].V, want[i].V)
		}
	}
}

func TestChunkRoundTripRegular(t *testing.T) {
	var want []Point
	v := 0.0
	for i := 0; i < 500; i++ {
		v += float64(i%7) * 0.25
		want = append(want, Point{T: 1_700_000_000_000 + int64(i)*5000, V: v})
	}
	sc := encodeSamples(want)
	got, err := sc.decodeAll()
	if err != nil {
		t.Fatal(err)
	}
	requireSamples(t, want, got)
	// A steady 5s cadence should compress far below 16 bytes/sample.
	if perSample := float64(len(sc.data)) / float64(len(want)); perSample > 6 {
		t.Fatalf("regular series cost %.1f bytes/sample, want < 6", perSample)
	}
}

func TestChunkRoundTripConstant(t *testing.T) {
	var want []Point
	for i := 0; i < 256; i++ {
		want = append(want, Point{T: int64(i) * 1000, V: 42.5})
	}
	sc := encodeSamples(want)
	got, err := sc.decodeAll()
	if err != nil {
		t.Fatal(err)
	}
	requireSamples(t, want, got)
	// dod=0 (1 bit) + same value (1 bit): ~2 bits/sample after the first.
	if len(sc.data) > 16+2*256/8+8 {
		t.Fatalf("constant series used %d bytes for 256 samples", len(sc.data))
	}
}

func TestChunkRoundTripAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var want []Point
	tcur := int64(0)
	for i := 0; i < 1000; i++ {
		// Wild jitter exercises every delta-of-delta width class.
		switch rng.Intn(5) {
		case 0:
			tcur += 1
		case 1:
			tcur += rng.Int63n(100)
		case 2:
			tcur += rng.Int63n(10_000)
		case 3:
			tcur += rng.Int63n(10_000_000)
		default:
			tcur += 5000
		}
		var v float64
		switch rng.Intn(6) {
		case 0:
			v = 0
		case 1:
			v = math.Inf(1)
		case 2:
			v = math.NaN()
		case 3:
			v = -math.MaxFloat64
		case 4:
			v = float64(rng.Intn(1000))
		default:
			v = rng.NormFloat64() * 1e9
		}
		want = append(want, Point{T: tcur, V: v})
	}
	sc := encodeSamples(want)
	got, err := sc.decodeAll()
	if err != nil {
		t.Fatal(err)
	}
	requireSamples(t, want, got)
}

func TestChunkSingleSampleAndEmpty(t *testing.T) {
	sc := encodeSamples([]Point{{T: 123456789, V: -0.5}})
	got, err := sc.decodeAll()
	if err != nil {
		t.Fatal(err)
	}
	requireSamples(t, []Point{{T: 123456789, V: -0.5}}, got)

	empty := encodeSamples(nil)
	if empty.n != 0 {
		t.Fatalf("empty chunk has n=%d", empty.n)
	}
	if pts, err := empty.decodeAll(); err != nil || len(pts) != 0 {
		t.Fatalf("empty decode: %v %v", pts, err)
	}
}

func TestChunkTruncatedBitstreamErrors(t *testing.T) {
	var want []Point
	for i := 0; i < 64; i++ {
		want = append(want, Point{T: int64(i) * 5000, V: float64(i * i)})
	}
	sc := encodeSamples(want)
	// Claim more samples than the bitstream holds: the iterator must
	// surface an error, never loop or invent data.
	it := iterChunk(sc.data[:len(sc.data)/2], sc.n)
	n := 0
	for {
		_, _, ok := it.next()
		if !ok {
			break
		}
		n++
	}
	if it.err() == nil {
		t.Fatal("truncated bitstream decoded without error")
	}
	if n >= len(want) {
		t.Fatalf("truncated bitstream yielded %d samples of %d", n, len(want))
	}
}

func FuzzChunkRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(5000), 0.5, uint8(10))
	f.Add(int64(-100), int64(1), -1e300, uint8(200))
	f.Fuzz(func(t *testing.T, t0, dt int64, v0 float64, n uint8) {
		if dt < 0 {
			dt = -dt
		}
		var want []Point
		tcur, v := t0, v0
		for i := 0; i < int(n); i++ {
			want = append(want, Point{T: tcur, V: v})
			tcur += dt + int64(i%3)
			v = v*1.0001 + float64(i)
		}
		sc := encodeSamples(want)
		got, err := sc.decodeAll()
		if err != nil {
			t.Fatal(err)
		}
		requireSamples(t, want, got)
	})
}
