package tsdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a hand-advanced clock shared by a DB under test.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	// Aligned to the 10m grid so tier buckets land on round boundaries.
	base := time.UnixMilli((1_700_000_000_000 / 600_000) * 600_000)
	return &testClock{t: base}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func openTestDB(t *testing.T, dir string, clk *testClock) *DB {
	t.Helper()
	db, err := Open(Options{
		Dir:            dir,
		ScrapeInterval: 5 * time.Second,
		FlushInterval:  30 * time.Second,
		Tiers: []TierSpec{
			{Step: 0, Retention: 2 * time.Hour},
			{Step: time.Minute, Retention: 24 * time.Hour},
			{Step: 10 * time.Minute, Retention: 7 * 24 * time.Hour},
		},
		Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestScrapeIngestAndQueryAvg(t *testing.T) {
	clk := newTestClock()
	db := openTestDB(t, "", clk)
	defer db.Close()

	val := 0.0
	gather := func(w io.Writer) {
		fmt.Fprintf(w, "# HELP womd_test_gauge test\n# TYPE womd_test_gauge gauge\n")
		fmt.Fprintf(w, "womd_test_gauge{zone=\"a\"} %g\n", val)
		fmt.Fprintf(w, "womd_test_gauge{zone=\"b\"} %g\n", val*2)
	}
	start := clk.Now().UnixMilli()
	for i := 0; i < 60; i++ {
		clk.Advance(5 * time.Second)
		val = float64(i)
		db.ScrapeOnce(gather)
	}
	end := clk.Now().UnixMilli()

	res, err := db.QueryRange(RangeQuery{
		Metric: "womd_test_gauge", StartMs: start + 60_000, EndMs: end + 1,
		StepMs: 60_000, Agg: "avg",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d series, want 2", len(res))
	}
	if res[0].Labels["zone"] != "a" || res[1].Labels["zone"] != "b" {
		t.Fatalf("series order: %v, %v", res[0].Labels, res[1].Labels)
	}
	if len(res[0].Points) < 4 {
		t.Fatalf("too few points: %d", len(res[0].Points))
	}
	// zone=b is always exactly twice zone=a; averages must preserve that.
	for i, p := range res[0].Points {
		if b := res[1].Points[i].V; math.Abs(b-2*p.V) > 1e-9 {
			t.Fatalf("point %d: zone b=%v, want %v", i, b, 2*p.V)
		}
	}

	// Matcher restricts to one series.
	res, err = db.QueryRange(RangeQuery{
		Metric: "womd_test_gauge", Match: map[string]string{"zone": "b"},
		StartMs: start + 60_000, EndMs: end + 1, StepMs: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Labels["zone"] != "b" {
		t.Fatalf("matcher returned %+v", res)
	}

	infos := db.Series("womd_test_gauge")
	if len(infos) != 2 {
		t.Fatalf("Series: %+v", infos)
	}
	if all := db.Series(""); len(all) < 2 {
		t.Fatalf("Series(\"\"): %+v", all)
	}
}

func TestQueryValidation(t *testing.T) {
	db := openTestDB(t, "", newTestClock())
	defer db.Close()
	for _, q := range []RangeQuery{
		{Metric: "", StartMs: 0, EndMs: 1},
		{Metric: "m", StartMs: 5, EndMs: 5},
		{Metric: "m", StartMs: 0, EndMs: 1, Agg: "median"},
		{Metric: "m", StartMs: 0, EndMs: 1, TierStep: 3 * time.Second},
	} {
		if _, err := db.QueryRange(q); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("query %+v: err=%v, want ErrBadQuery", q, err)
		}
	}
}

// TestRateDownsampleAgreement pins the tentpole correctness criterion:
// rate() evaluated from the 1m tier agrees with rate() from raw samples
// on a synthetic counter with a mid-stream reset.
func TestRateDownsampleAgreement(t *testing.T) {
	clk := newTestClock()
	db := openTestDB(t, "", clk)
	defer db.Close()

	v := 0.0
	gather := func(w io.Writer) {
		fmt.Fprintf(w, "womd_test_counter_total %g\n", v)
	}
	start := clk.Now().UnixMilli()
	for i := 0; i < 360; i++ { // 30 minutes at 5s
		clk.Advance(5 * time.Second)
		if i == 180 {
			v = 3 // counter reset (process restart)
		} else {
			v += 7 + float64(i%13)
		}
		db.ScrapeOnce(gather)
	}
	end := clk.Now().UnixMilli()

	q := RangeQuery{
		Metric:  "womd_test_counter_total",
		StartMs: start + 120_000, EndMs: end, StepMs: 120_000, Agg: "rate",
	}
	raw, err := db.QueryRange(q)
	if err != nil {
		t.Fatal(err)
	}
	qt := q
	qt.TierStep = time.Minute
	tiered, err := db.QueryRange(qt)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 1 || len(tiered) != 1 {
		t.Fatalf("series: raw=%d tiered=%d", len(raw), len(tiered))
	}
	if raw[0].TierMs != 0 || tiered[0].TierMs != 60_000 {
		t.Fatalf("tiers: raw=%d tiered=%d", raw[0].TierMs, tiered[0].TierMs)
	}
	rp, tp := raw[0].Points, tiered[0].Points
	if len(rp) < 10 {
		t.Fatalf("too few raw rate points: %d", len(rp))
	}
	tpByT := make(map[int64]float64, len(tp))
	for _, p := range tp {
		tpByT[p.T] = p.V
	}
	compared := 0
	for _, p := range rp {
		tv, ok := tpByT[p.T]
		if !ok {
			continue
		}
		compared++
		if p.V == 0 && tv == 0 {
			continue
		}
		if rel := math.Abs(p.V-tv) / math.Max(math.Abs(p.V), math.Abs(tv)); rel > 0.01 {
			t.Fatalf("rate at %d: raw=%v tier=%v (rel %.4f > 1%%)", p.T, p.V, tv, rel)
		}
	}
	if compared < 10 {
		t.Fatalf("only %d comparable windows", compared)
	}
}

func TestRestartContinuity(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	v := 0.0
	gather := func(w io.Writer) {
		fmt.Fprintf(w, "womd_test_counter_total %g\n", v)
	}

	db := openTestDB(t, dir, clk)
	start := clk.Now().UnixMilli()
	for i := 0; i < 120; i++ { // 10 minutes
		clk.Advance(5 * time.Second)
		v += 5
		db.ScrapeOnce(gather)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": new process, same dir. Counters restart from zero too.
	clk.Advance(10 * time.Second)
	v = 0
	db2 := openTestDB(t, dir, clk)
	defer db2.Close()
	for i := 0; i < 120; i++ {
		clk.Advance(5 * time.Second)
		v += 5
		db2.ScrapeOnce(gather)
	}
	end := clk.Now().UnixMilli()

	res, err := db2.QueryRange(RangeQuery{
		Metric:  "womd_test_counter_total",
		StartMs: start + 60_000, EndMs: end, StepMs: 60_000, Agg: "max",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("series: %d", len(res))
	}
	pts := res[0].Points
	// ~20 one-minute windows; the restart gap may drop at most one.
	if len(pts) < 18 {
		t.Fatalf("restart left only %d windows of ~20", len(pts))
	}
	// Windows from both sides of the restart must be present.
	var before, after bool
	mid := start + 10*60_000
	for _, p := range pts {
		if p.T < mid {
			before = true
		}
		if p.T > mid+60_000 {
			after = true
		}
	}
	if !before || !after {
		t.Fatalf("windows span: before=%v after=%v", before, after)
	}
	for i := 1; i < len(pts); i++ {
		if gap := pts[i].T - pts[i-1].T; gap > 2*60_000 {
			t.Fatalf("gap of %dms between windows %d and %d", gap, i-1, i)
		}
	}
}

// TestTornTailEveryOffset truncates the final segment at every byte
// offset; every truncation must open cleanly (the torn tail is cut off)
// and leave an appendable store — the resultstore crash contract.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	db := openTestDB(t, dir, clk)
	v := 0.0
	gather := func(w io.Writer) { fmt.Fprintf(w, "womd_torn_total %g\n", v) }
	for i := 0; i < 24; i++ {
		clk.Advance(5 * time.Second)
		v++
		db.ScrapeOnce(gather)
	}
	db.AppendAlertTransition(clk.Now(), "firing", "r\x00s", json.RawMessage(`{"id":"al-000001"}`))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	seg := segs[len(segs)-1]
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(segHeader) {
		t.Fatalf("segment only %d bytes", len(full))
	}

	for off := 0; off <= len(full); off++ {
		tdir := t.TempDir()
		for _, s := range segs {
			data, err := os.ReadFile(s)
			if err != nil {
				t.Fatal(err)
			}
			if s == seg {
				data = data[:off]
			}
			if err := os.WriteFile(filepath.Join(tdir, filepath.Base(s)), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		db2 := openTestDB(t, tdir, clk)
		db2.Append("womd_torn_total", nil, clk.Now().UnixMilli()+int64(off)+1, 99)
		if err := db2.Close(); err != nil {
			t.Fatalf("offset %d: close: %v", off, err)
		}
		// The recovered store must reopen cleanly after the new append.
		db3 := openTestDB(t, tdir, clk)
		if err := db3.Close(); err != nil {
			t.Fatalf("offset %d: reopen: %v", off, err)
		}
	}
}

func TestInteriorCorruptionRefuses(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	db, err := Open(Options{
		Dir: dir, MaxSegmentBytes: 256, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		db.AppendAlertTransition(clk.Now().Add(time.Duration(i)*time.Second),
			"pending", fmt.Sprintf("k%d", i), json.RawMessage(`{}`))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Now: clk.Now}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
}

func TestAlertJournalReplay(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	db := openTestDB(t, dir, clk)
	at := clk.Now()
	db.AppendAlertTransition(at, "pending", "keyA", json.RawMessage(`{"id":"al-000001","state":"pending"}`))
	db.AppendAlertTransition(at.Add(time.Second), "firing", "keyA", json.RawMessage(`{"id":"al-000001","state":"firing"}`))
	db.AppendAlertTransition(at.Add(2*time.Second), "pending", "keyB", json.RawMessage(`{"id":"al-000002","state":"pending"}`))
	db.AppendAlertTransition(at.Add(3*time.Second), "firing", "keyB", json.RawMessage(`{"id":"al-000002","state":"firing"}`))
	db.AppendAlertTransition(at.Add(4*time.Second), "resolved", "keyB", json.RawMessage(`{"id":"al-000002","state":"resolved"}`))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openTestDB(t, dir, clk)
	defer db2.Close()
	hist := db2.AlertHistory(time.Time{}, time.Time{}, 0)
	if len(hist) != 5 {
		t.Fatalf("history: %d transitions, want 5", len(hist))
	}
	if hist[0].To != "resolved" || hist[0].Key != "keyB" {
		t.Fatalf("newest first: %+v", hist[0])
	}
	active := db2.ActiveAlerts()
	if len(active) != 1 || active[0].Key != "keyA" || active[0].To != "firing" {
		t.Fatalf("active: %+v", active)
	}
	// Bounded + filtered lookups.
	if h := db2.AlertHistory(time.Time{}, time.Time{}, 2); len(h) != 2 {
		t.Fatalf("limit: %d", len(h))
	}
	if h := db2.AlertHistory(at.Add(4*time.Second), time.Time{}, 0); len(h) != 1 {
		t.Fatalf("from filter: %d", len(h))
	}
}

func TestRetentionPruneAndSegmentGC(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	db, err := Open(Options{
		Dir:                dir,
		ScrapeInterval:     5 * time.Second,
		FlushInterval:      30 * time.Second,
		MaxSegmentBytes:    2048,
		MaxSamplesPerChunk: 32,
		Tiers: []TierSpec{
			{Step: 0, Retention: 5 * time.Minute},
			{Step: time.Minute, Retention: 10 * time.Minute},
		},
		Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	v := 0.0
	gather := func(w io.Writer) { fmt.Fprintf(w, "womd_prune_total %g\n", v) }
	for i := 0; i < 600; i++ { // 50 minutes
		clk.Advance(5 * time.Second)
		v++
		db.ScrapeOnce(gather)
	}
	now := clk.Now().UnixMilli()

	db.mu.Lock()
	s := db.series[canonicalKey("womd_prune_total", nil)]
	rawCut := now - (5*time.Minute + time.Minute).Milliseconds()
	for _, sc := range s.sealed {
		if sc.endT < rawCut {
			db.mu.Unlock()
			t.Fatalf("sealed chunk ending %d survived raw retention (cut %d)", sc.endT, rawCut)
		}
	}
	aggCut := now - (10*time.Minute + 2*time.Minute).Milliseconds()
	for _, p := range s.aggs[0].done {
		if p.T < aggCut {
			db.mu.Unlock()
			t.Fatalf("agg bucket %d survived tier retention (cut %d)", p.T, aggCut)
		}
	}
	nseg := len(db.segMaxT)
	db.mu.Unlock()

	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) != nseg {
		t.Fatalf("on-disk segments %d != tracked %d", len(segs), nseg)
	}
	// 50 minutes of history at a 10-minute max retention with 2 KiB
	// segments: GC must have removed early segments.
	if len(segs) == 0 || strings.Contains(segs[0], fmt.Sprintf("%s%08d%s", segPrefix, 1, segSuffix)) {
		t.Fatalf("segment GC never ran: %v", segs)
	}
}

func TestParseExposition(t *testing.T) {
	text := `# HELP womd_jobs_total jobs
# TYPE womd_jobs_total counter
womd_jobs_total{state="completed"} 12
womd_jobs_total{state="failed"} 1
womd_up 1
womd_weird{msg="a\"b\\c",other="x,y"} 3.5
this line is garbage
womd_ts_suffix 4 1700000000000
`
	samples, malformed := parseExposition(text, nil)
	if malformed != 1 {
		t.Fatalf("malformed=%d, want 1", malformed)
	}
	if len(samples) != 5 {
		t.Fatalf("samples=%d, want 5: %+v", len(samples), samples)
	}
	labels, err := parseLabels(samples[2].labels)
	if err != nil || len(labels) != 0 {
		t.Fatalf("bare metric labels: %v %v", labels, err)
	}
	labels, err = parseLabels(samples[3].labels)
	if err != nil {
		t.Fatal(err)
	}
	if labels["msg"] != `a"b\c` || labels["other"] != "x,y" {
		t.Fatalf("escaped labels: %+v", labels)
	}
	if samples[4].value != 4 {
		t.Fatalf("timestamped sample value: %v", samples[4].value)
	}
	if canonicalKey("m", map[string]string{"b": "2", "a": "1"}) != `m{a="1",b="2"}` {
		t.Fatal("canonicalKey not sorted")
	}
}

func TestNilDBIsInert(t *testing.T) {
	var db *DB
	db.Start(nil)
	db.ScrapeOnce(func(io.Writer) {})
	db.Append("m", nil, 1, 2)
	db.ObserveJob("exp", 0.5)
	db.AppendAlertTransition(time.Now(), "firing", "k", nil)
	db.WriteProm(io.Discard)
	if db.Enabled() {
		t.Fatal("nil DB reports enabled")
	}
	if res, err := db.QueryRange(RangeQuery{Metric: "m", StartMs: 0, EndMs: 1}); res != nil || err != nil {
		t.Fatalf("nil query: %v %v", res, err)
	}
	if db.Series("") != nil || db.ActiveAlerts() != nil || db.AlertHistory(time.Time{}, time.Time{}, 0) != nil {
		t.Fatal("nil accessors returned data")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScrapeLoopStartStop(t *testing.T) {
	db, err := Open(Options{ScrapeInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	n := 0
	db.Start(func(w io.Writer) {
		mu.Lock()
		n++
		mu.Unlock()
		fmt.Fprintf(w, "womd_loop_total %d\n", n)
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := n
		mu.Unlock()
		if got >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scrape loop never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if db.Series("womd_loop_total") == nil {
		t.Fatal("loop scraped nothing")
	}
}
