package tsdb

import (
	"io"
	"testing"
)

// The disabled history plane (-history=false → nil *DB) must cost one
// pointer check and zero allocations on the job hot path, matching the
// probe/span/exemplar nil-contracts.
func TestObserveJobDisabledZeroAlloc(t *testing.T) {
	var db *DB
	if allocs := testing.AllocsPerRun(1000, func() {
		db.ObserveJob("conf_date", 0.123)
	}); allocs != 0 {
		t.Fatalf("nil ObserveJob allocated %v times per run", allocs)
	}
}

func BenchmarkObserveJobDisabled(b *testing.B) {
	var db *DB
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.ObserveJob("conf_date", 0.123)
	}
}

func BenchmarkObserveJobEnabled(b *testing.B) {
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.ObserveJob("conf_date", 0.123)
	}
}

func BenchmarkChunkAppend(b *testing.B) {
	b.ReportAllocs()
	var c chunk
	for i := 0; i < b.N; i++ {
		c.append(int64(i)*5000, float64(i%97))
		if c.n >= 512 {
			c = chunk{}
		}
	}
}

func BenchmarkScrapeOnce(b *testing.B) {
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	// A realistic exposition: ~200 series.
	var text []byte
	for i := 0; i < 200; i++ {
		text = append(text, []byte("womd_bench_metric{idx=\""+string(rune('a'+i%26))+"\",grp=\""+string(rune('a'+i/26))+"\"} 1.5\n")...)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.ScrapeOnce(func(w io.Writer) {
			w.Write(text) //nolint:errcheck
		})
	}
}
