package tsdb

import (
	"fmt"
	"math"
	"math/bits"
)

// Chunk encoding: a Gorilla-style bitstream per series. The first sample
// stores its timestamp (milliseconds) and value verbatim; every later
// sample stores the delta-of-delta of its timestamp in one of five
// variable-width classes and the XOR of its value bits against the
// previous value, reusing the previous meaningful-bit window when it still
// fits. Self-scraped series tick on a fixed interval, so the common sample
// costs one bit for time (dod == 0) and one for an unchanged value.

// bitWriter appends bits MSB-first into a byte slice.
type bitWriter struct {
	b     []byte
	nbits uint8 // bits used in the final byte (0 = byte boundary)
}

func (w *bitWriter) writeBit(bit uint64) {
	if w.nbits == 0 {
		w.b = append(w.b, 0)
		w.nbits = 8
	}
	w.nbits--
	if bit != 0 {
		w.b[len(w.b)-1] |= 1 << w.nbits
	}
}

// writeBits appends the low n bits of v, MSB-first.
func (w *bitWriter) writeBits(v uint64, n int) {
	for n > 0 {
		n--
		w.writeBit((v >> uint(n)) & 1)
	}
}

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	b   []byte
	off int   // next byte
	rem uint8 // bits remaining in the current byte
	cur byte
}

func newBitReader(b []byte) *bitReader { return &bitReader{b: b} }

func (r *bitReader) readBit() (uint64, error) {
	if r.rem == 0 {
		if r.off >= len(r.b) {
			return 0, fmt.Errorf("tsdb: chunk bitstream exhausted")
		}
		r.cur = r.b[r.off]
		r.off++
		r.rem = 8
	}
	r.rem--
	return uint64(r.cur>>r.rem) & 1, nil
}

func (r *bitReader) readBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | bit
	}
	return v, nil
}

// chunk is one sealed or appending run of (timestamp, value) samples for a
// single series. Fields beyond the bitstream are the appender's rolling
// state; a sealed chunk is read through its iterator only.
type chunk struct {
	w bitWriter
	n int // samples held

	startT, endT int64 // ms, inclusive

	prevT     int64
	prevDelta int64
	prevV     uint64
	leading   uint8
	trailing  uint8
}

// append adds one sample. Timestamps must be non-decreasing; the caller
// (the series head) guarantees it.
func (c *chunk) append(t int64, v float64) {
	vb := math.Float64bits(v)
	if c.n == 0 {
		c.startT = t
		// First sample: raw 64-bit timestamp and value.
		c.w.writeBits(uint64(t), 64)
		c.w.writeBits(vb, 64)
		c.prevT, c.prevV = t, vb
		c.leading, c.trailing = 0xff, 0
		c.n++
		c.endT = t
		return
	}
	delta := t - c.prevT
	dod := delta - c.prevDelta
	switch {
	case dod == 0:
		c.w.writeBit(0)
	case dod >= -64 && dod <= 63:
		c.w.writeBits(0b10, 2)
		c.w.writeBits(uint64(dod)&0x7f, 7)
	case dod >= -256 && dod <= 255:
		c.w.writeBits(0b110, 3)
		c.w.writeBits(uint64(dod)&0x1ff, 9)
	case dod >= -2048 && dod <= 2047:
		c.w.writeBits(0b1110, 4)
		c.w.writeBits(uint64(dod)&0xfff, 12)
	default:
		c.w.writeBits(0b1111, 4)
		c.w.writeBits(uint64(dod), 64)
	}
	c.prevDelta = delta
	c.prevT = t

	xor := vb ^ c.prevV
	if xor == 0 {
		c.w.writeBit(0)
	} else {
		c.w.writeBit(1)
		leading := uint8(bits.LeadingZeros64(xor))
		trailing := uint8(bits.TrailingZeros64(xor))
		if leading >= 32 {
			leading = 31 // 5-bit field
		}
		if c.leading != 0xff && leading >= c.leading && trailing >= c.trailing {
			// The previous window still covers the meaningful bits.
			c.w.writeBit(0)
			c.w.writeBits(xor>>c.trailing, 64-int(c.leading)-int(c.trailing))
		} else {
			c.leading, c.trailing = leading, trailing
			sig := 64 - int(leading) - int(trailing)
			c.w.writeBit(1)
			c.w.writeBits(uint64(leading), 5)
			// sig is in [1,64]; encode 64 as 0 in the 6-bit field.
			c.w.writeBits(uint64(sig)&0x3f, 6)
			c.w.writeBits(xor>>trailing, sig)
		}
	}
	c.prevV = vb
	c.n++
	c.endT = t
}

// bytes returns the chunk's encoded form (shared backing; callers that
// persist it must copy if the chunk keeps appending).
func (c *chunk) bytes() []byte { return c.w.b }

// chunkIter decodes a chunk bitstream sample by sample.
type chunkIter struct {
	r *bitReader
	n int // samples remaining

	t         int64
	delta     int64
	v         uint64
	leading   uint8
	trailing  uint8
	first     bool
	sampleErr error
}

// iter returns a decoder over encoded chunk bytes holding n samples.
func iterChunk(data []byte, n int) *chunkIter {
	return &chunkIter{r: newBitReader(data), n: n, first: true}
}

// next returns the next sample; ok=false at the end or on a decode error
// (recorded in err()).
func (it *chunkIter) next() (t int64, v float64, ok bool) {
	if it.n <= 0 || it.sampleErr != nil {
		return 0, 0, false
	}
	it.n--
	if it.first {
		it.first = false
		tb, err := it.r.readBits(64)
		if err == nil {
			var vb uint64
			vb, err = it.r.readBits(64)
			if err == nil {
				it.t, it.v = int64(tb), vb
				return it.t, math.Float64frombits(it.v), true
			}
		}
		it.sampleErr = err
		return 0, 0, false
	}
	var dod int64
	bit, err := it.r.readBit()
	if err != nil {
		it.sampleErr = err
		return 0, 0, false
	}
	if bit == 1 {
		width := 0
		for _, w := range []int{7, 9, 12} {
			bit, err = it.r.readBit()
			if err != nil {
				it.sampleErr = err
				return 0, 0, false
			}
			if bit == 0 {
				width = w
				break
			}
		}
		if width == 0 {
			width = 64
		}
		raw, err := it.r.readBits(width)
		if err != nil {
			it.sampleErr = err
			return 0, 0, false
		}
		// Sign-extend the variable-width two's-complement field.
		if width < 64 && raw&(1<<uint(width-1)) != 0 {
			raw |= ^uint64(0) << uint(width)
		}
		dod = int64(raw)
	}
	it.delta += dod
	it.t += it.delta

	bit, err = it.r.readBit()
	if err != nil {
		it.sampleErr = err
		return 0, 0, false
	}
	if bit == 1 {
		bit, err = it.r.readBit()
		if err != nil {
			it.sampleErr = err
			return 0, 0, false
		}
		if bit == 1 {
			lead, err := it.r.readBits(5)
			if err != nil {
				it.sampleErr = err
				return 0, 0, false
			}
			sigRaw, err := it.r.readBits(6)
			if err != nil {
				it.sampleErr = err
				return 0, 0, false
			}
			sig := int(sigRaw)
			if sig == 0 {
				sig = 64
			}
			it.leading = uint8(lead)
			it.trailing = uint8(64 - int(lead) - sig)
			xor, err := it.r.readBits(sig)
			if err != nil {
				it.sampleErr = err
				return 0, 0, false
			}
			it.v ^= xor << it.trailing
		} else {
			sig := 64 - int(it.leading) - int(it.trailing)
			xor, err := it.r.readBits(sig)
			if err != nil {
				it.sampleErr = err
				return 0, 0, false
			}
			it.v ^= xor << it.trailing
		}
	}
	return it.t, math.Float64frombits(it.v), true
}

// err reports a decode failure, if any (torn or corrupt chunk bytes).
func (it *chunkIter) err() error { return it.sampleErr }

// sealedChunk is an immutable encoded chunk plus its index metadata — the
// in-memory form of a persisted raw-tier chunk.
type sealedChunk struct {
	data         []byte
	n            int
	startT, endT int64 // ms
}

// seal freezes the chunk, copying its bitstream.
func (c *chunk) seal() sealedChunk {
	data := make([]byte, len(c.w.b))
	copy(data, c.w.b)
	return sealedChunk{data: data, n: c.n, startT: c.startT, endT: c.endT}
}

// encodeSamples is a convenience used by tests and backfill: one sealed
// chunk from a sample slice.
func encodeSamples(samples []Point) sealedChunk {
	var c chunk
	for _, s := range samples {
		c.append(s.T, s.V)
	}
	return c.seal()
}

// decodeAll expands a sealed chunk; used by replay sanity checks and tests.
func (sc sealedChunk) decodeAll() ([]Point, error) {
	out := make([]Point, 0, sc.n)
	it := iterChunk(sc.data, sc.n)
	for {
		t, v, ok := it.next()
		if !ok {
			break
		}
		out = append(out, Point{T: t, V: v})
	}
	if err := it.err(); err != nil {
		return nil, err
	}
	return out, nil
}
