// Package energy estimates the energy consumption of a simulated run — the
// dimension the paper touches twice: §3.2 states that "the energy
// consumption of PCM-refresh is equal to the energy consumption of a single
// row read followed by a single row write", and §2.2 cites WoM-SET (Zhang
// et al., ISLPED 2013 [34]) as the prior work applying WOM-codes to PCM for
// energy rather than latency.
//
// The model is post-hoc: it prices the service-class counters a run already
// collects, so the timing simulator needs no changes and any recorded
// stats.Run can be priced under any energy model.
//
// Pricing follows PCM energy asymmetry: a RESET pulse is short but at high
// current, a SET pulse long at lower current; per-pulse energy is of the
// same order, with SET moderately more expensive in most published
// characterizations (the defaults use Lee et al., ISCA 2009 class numbers).
package energy

import (
	"fmt"
	"strings"

	"womcpcm/internal/stats"
)

// Model prices the primitive operations of a PCM memory system, in
// picojoules per row-granular operation.
type Model struct {
	// RowRead is the energy of one array row read (activation + sense).
	RowRead float64
	// RowWriteFast is a RESET-only row write (an in-budget WOM rewrite).
	RowWriteFast float64
	// RowWriteFull is a full row write with SET pulses on half the cells
	// on average — a conventional write or a WOM α-write.
	RowWriteFull float64
	// RowBuffer is a column access served from the row buffer.
	RowBuffer float64
}

// Default returns a representative pricing (pJ per 16 KB-row operation)
// derived from ISCA 2009-class per-bit figures: reads ~2 pJ/bit, RESET
// ~19.2 pJ/bit on flipped cells, SET ~13.5 pJ/bit but over a 3.75× longer
// pulse. The absolute scale cancels in the normalized comparisons the
// reports make.
func Default() Model {
	return Model{
		RowRead:      260,
		RowWriteFast: 610,
		RowWriteFull: 1500,
		RowBuffer:    15,
	}
}

// Validate checks the model's physical sanity.
func (m Model) Validate() error {
	switch {
	case m.RowRead <= 0, m.RowWriteFast <= 0, m.RowWriteFull <= 0, m.RowBuffer <= 0:
		return fmt.Errorf("energy: all prices must be positive: %+v", m)
	case m.RowWriteFull < m.RowWriteFast:
		return fmt.Errorf("energy: full write %.0f cheaper than RESET-only write %.0f", m.RowWriteFull, m.RowWriteFast)
	}
	return nil
}

// Breakdown is the priced result of one run.
type Breakdown struct {
	// Reads, Writes, Refresh and Buffer are energy totals in pJ.
	Reads   float64
	Writes  float64
	Refresh float64
	Buffer  float64
}

// Total sums the components.
func (b Breakdown) Total() float64 { return b.Reads + b.Writes + b.Refresh + b.Buffer }

// Price computes the energy of a run under the model. Per §3.2, each
// completed PCM-refresh costs one row read plus one full row write; aborted
// refreshes are not charged (write pausing stops them before the write
// phase). Array reads and buffer hits are priced per class; victim
// write-backs and cache writes are already in the class counters.
func (m Model) Price(run *stats.Run) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	c := func(cl stats.ServiceClass) float64 { return float64(run.Classes[cl]) }
	var b Breakdown
	b.Reads = (c(stats.ReadArray) + c(stats.ReadCacheHit)) * m.RowRead
	b.Buffer = c(stats.ReadRowHit) * m.RowBuffer
	b.Writes = c(stats.WriteFast)*m.RowWriteFast +
		(c(stats.WriteBaseline)+c(stats.WriteAlpha))*m.RowWriteFull
	// WCPCM cache misses read the victim row out before programming.
	b.Reads += c(stats.WriteCacheMiss) * m.RowRead
	b.Refresh = float64(run.Refreshes) * (m.RowRead + m.RowWriteFull)
	return b, nil
}

// PerAccess normalizes a breakdown by the run's demand access count.
func PerAccess(run *stats.Run, b Breakdown) float64 {
	n := run.ReadLatency.Count + run.WriteLatency.Count
	if n == 0 {
		return 0
	}
	return b.Total() / float64(n)
}

// Compare prices several runs and renders a table normalized to the first
// (conventionally the baseline architecture).
func Compare(m Model, runs []*stats.Run) (string, error) {
	if len(runs) == 0 {
		return "", fmt.Errorf("energy: no runs to compare")
	}
	var sb strings.Builder
	var base float64
	fmt.Fprintf(&sb, "%-22s %12s %10s %10s %10s %8s\n",
		"architecture", "total (pJ)", "writes", "refresh", "pJ/access", "vs base")
	for i, run := range runs {
		b, err := m.Price(run)
		if err != nil {
			return "", err
		}
		if i == 0 {
			base = b.Total()
		}
		rel := 0.0
		if base > 0 {
			rel = b.Total() / base
		}
		fmt.Fprintf(&sb, "%-22s %12.0f %10.0f %10.0f %10.2f %8.3f\n",
			run.Arch, b.Total(), b.Writes, b.Refresh, PerAccess(run, b), rel)
	}
	return sb.String(), nil
}
