package energy

import (
	"strings"
	"testing"

	"womcpcm/internal/core"
	"womcpcm/internal/pcm"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

func TestModelValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{},
		{RowRead: 1, RowWriteFast: 10, RowWriteFull: 5, RowBuffer: 1}, // full < fast
		{RowRead: -1, RowWriteFast: 1, RowWriteFull: 2, RowBuffer: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d validated", i)
		}
	}
}

// TestPriceHandComputed prices a synthetic run against a unit model.
func TestPriceHandComputed(t *testing.T) {
	m := Model{RowRead: 10, RowWriteFast: 20, RowWriteFull: 100, RowBuffer: 1}
	var run stats.Run
	run.Classes[stats.ReadArray] = 3
	run.Classes[stats.ReadRowHit] = 5
	run.Classes[stats.WriteFast] = 4
	run.Classes[stats.WriteAlpha] = 2
	run.Classes[stats.WriteBaseline] = 1
	run.Classes[stats.WriteCacheMiss] = 2
	run.Refreshes = 3
	b, err := m.Price(&run)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3*10.0 + 2*10.0; b.Reads != want {
		t.Errorf("reads = %v, want %v", b.Reads, want)
	}
	if want := 5 * 1.0; b.Buffer != want {
		t.Errorf("buffer = %v, want %v", b.Buffer, want)
	}
	if want := 4*20.0 + 3*100.0; b.Writes != want {
		t.Errorf("writes = %v, want %v", b.Writes, want)
	}
	// §3.2: a refresh costs one row read + one full row write.
	if want := 3 * (10.0 + 100.0); b.Refresh != want {
		t.Errorf("refresh = %v, want %v", b.Refresh, want)
	}
	if b.Total() != b.Reads+b.Buffer+b.Writes+b.Refresh {
		t.Error("total mismatch")
	}
	if _, err := (Model{}).Price(&run); err == nil {
		t.Error("invalid model priced a run")
	}
}

func TestPerAccess(t *testing.T) {
	var run stats.Run
	if PerAccess(&run, Breakdown{Reads: 10}) != 0 {
		t.Error("empty run should price to 0 per access")
	}
	run.ReadLatency.Observe(1)
	run.WriteLatency.Observe(1)
	if got := PerAccess(&run, Breakdown{Reads: 10}); got != 5 {
		t.Errorf("per access = %v, want 5", got)
	}
}

// TestArchitectureEnergyOrdering runs a real workload through the four
// architectures and checks the energy story the paper implies: WOM-code
// PCM saves write energy (RESET-only rewrites), while PCM-refresh trades
// some of that saving for refresh energy.
func TestArchitectureEnergyOrdering(t *testing.T) {
	g := pcm.Geometry{Ranks: 4, BanksPerRank: 16, RowsPerBank: 2048,
		ColsPerRow: 256, BitsPerCol: 4, Devices: 16}
	profile, err := workload.ProfileByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	model := Default()
	runs := make([]*stats.Run, 0, 4)
	price := map[core.Arch]Breakdown{}
	for _, a := range core.Arches() {
		opts := core.DefaultOptions()
		opts.Geometry = g
		sys, err := core.NewSystem(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewGenerator(profile, g, 5)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sys.Simulate(trace.NewLimit(gen, 30000))
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
		b, err := model.Price(run)
		if err != nil {
			t.Fatal(err)
		}
		price[a] = b
	}
	if price[core.WOMCode].Writes >= price[core.Baseline].Writes {
		t.Errorf("WOM write energy %.0f not below baseline %.0f",
			price[core.WOMCode].Writes, price[core.Baseline].Writes)
	}
	if price[core.Refresh].Refresh == 0 {
		t.Error("refresh architecture consumed no refresh energy")
	}
	if price[core.Baseline].Refresh != 0 {
		t.Error("baseline charged refresh energy")
	}
	out, err := Compare(model, runs)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PCM w/o WOM-code", "PCM-refresh", "vs base"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare table missing %q:\n%s", want, out)
		}
	}
	if _, err := Compare(model, nil); err == nil {
		t.Error("compared zero runs")
	}
}

// TestPriceMonotonicInActivity property: adding service events never
// lowers any energy component.
func TestPriceMonotonicInActivity(t *testing.T) {
	m := Default()
	base := &stats.Run{}
	base.Classes[stats.ReadArray] = 5
	base.Classes[stats.WriteFast] = 5
	b0, err := m.Price(base)
	if err != nil {
		t.Fatal(err)
	}
	for c := stats.ServiceClass(0); c < stats.ServiceClass(8); c++ {
		more := *base
		more.Classes[c] += 3
		b1, err := m.Price(&more)
		if err != nil {
			t.Fatal(err)
		}
		if b1.Total() < b0.Total() {
			t.Errorf("class %v: adding events lowered energy %.0f → %.0f", c, b0.Total(), b1.Total())
		}
	}
	more := *base
	more.Refreshes += 2
	b1, err := m.Price(&more)
	if err != nil {
		t.Fatal(err)
	}
	// §3.2: each refresh adds exactly one row read + one full row write.
	if want := b0.Total() + 2*(m.RowRead+m.RowWriteFull); b1.Total() != want {
		t.Errorf("refresh pricing: %.0f, want %.0f", b1.Total(), want)
	}
}
