package workload

import (
	"fmt"
	"math"
	"math/rand"

	"womcpcm/internal/pcm"
	"womcpcm/internal/trace"
)

// LineBytes is the access granularity: one 64-byte cache line, matching the
// 64-bit channel with a DDR3 burst of 8.
const LineBytes = 64

// Generator produces a deterministic synthetic access stream for a Profile.
// It implements trace.Source and never fails.
type Generator struct {
	p       Profile
	rng     *rand.Rand
	zipf    *rand.Zipf
	mapper  *pcm.AddrMapper
	rowPerm []int // footprint row → physical row space, scattering the zipf head

	now          int64
	burstLeft    int
	burstRank    int
	inBurst      bool
	seqRow       int
	seqLine      int
	seqRun       int
	colsPer      int
	lastWriteRow int
	wroteOnce    bool
}

// NewGenerator builds a generator over geometry g, seeded for
// reproducibility. The profile must validate.
func NewGenerator(p Profile, g pcm.Geometry, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mapper, err := pcm.NewAddrMapper(g)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed ^ int64(hashString(p.Name))))
	gen := &Generator{
		p:       p,
		rng:     rng,
		zipf:    rand.NewZipf(rng, p.ZipfS, 1, uint64(p.FootprintRows-1)),
		mapper:  mapper,
		colsPer: g.RowBytes() / LineBytes,
	}
	// A fixed pseudorandom permutation decorrelates Zipf rank from physical
	// placement, so hot rows scatter across banks instead of piling onto
	// bank 0.
	gen.rowPerm = rng.Perm(p.FootprintRows)
	return gen, nil
}

// hashString gives a stable per-benchmark seed perturbation (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// Next implements trace.Source: it yields records forever; callers bound
// the stream with trace.NewLimit or a request budget.
func (g *Generator) Next() (trace.Record, bool) {
	// Arrival process: geometric-length bursts of closely spaced accesses
	// separated by exponential idle gaps.
	if g.burstLeft <= 0 {
		g.burstLeft = 1 + g.geometric(g.p.BurstLen)
		g.now += g.exponential(g.p.MeanGapNs)
		g.inBurst = false // the first access anchors the burst's rank
	} else {
		g.now += g.p.BurstGapNs
	}
	g.burstLeft--

	isRead := g.rng.Float64() < g.p.ReadFraction
	if isRead && g.wroteOnce && g.rng.Float64() < g.p.ReadReuse {
		// Read-after-write row reuse: the read lands on the row most
		// recently stored to, queueing behind the slow write at its bank
		// (and row-hitting once the write completes).
		return g.record(true, g.lastWriteRow, g.rng.Intn(g.colsPer)), true
	}
	var row int
	switch {
	case g.rng.Float64() < g.p.SeqFraction:
		// Streaming cursor: runs of consecutive lines, hopping to the next
		// row (= next bank under row interleaving) after SeqRunLines.
		runLen := g.p.SeqRunLines
		if runLen <= 0 {
			runLen = 2
		}
		if g.seqRun >= runLen {
			g.seqRun = 0
			g.seqRow++
			if g.seqRow >= g.p.FootprintRows {
				// Stripe finished: next sweep reads/writes the following
				// line window of every row (wrapping — streaming kernels
				// iterate over their arrays).
				g.seqRow = 0
				g.seqLine += runLen
				if g.seqLine >= g.colsPer {
					g.seqLine = 0
				}
			}
		}
		col := (g.seqLine + g.seqRun) % g.colsPer
		g.seqRun++
		return g.record(isRead, g.seqRow, col), true
	case !isRead && g.rng.Float64() < g.p.WriteHotFraction:
		// Hot write set: stores cycle roughly uniformly over a bounded set
		// of rows (frame buffers, tables, output arrays), giving each row
		// a rewrite interval of HotRows/write-rate — the reuse pattern the
		// WOM rewrite budget and PCM-refresh feed on.
		row = g.affine(func() int { return g.rng.Intn(g.p.HotRows) })
	default:
		row = g.affine(func() int { return int(g.zipf.Uint64()) })
	}
	col := g.rng.Intn(g.colsPer)
	return g.record(isRead, row, col), true
}

// Err implements trace.Source.
func (*Generator) Err() error { return nil }

// rankOf returns the rank a footprint row maps to.
func (g *Generator) rankOf(row int) int {
	phys := uint64(g.rowPerm[row])
	return g.mapper.Map(phys * uint64(g.mapper.Geometry().RowBytes())).Rank
}

// affine samples a row, biasing later burst accesses toward the burst's
// anchor rank with probability RankAffinity (rejection sampling, bounded).
func (g *Generator) affine(sample func() int) int {
	row := sample()
	if !g.inBurst || g.rng.Float64() >= g.p.RankAffinity {
		return row
	}
	for try := 0; try < 24 && g.rankOf(row) != g.burstRank; try++ {
		row = sample()
	}
	return row
}

func (g *Generator) record(isRead bool, row, col int) trace.Record {
	op := trace.Write
	if isRead {
		op = trace.Read
	} else {
		g.lastWriteRow = row
		g.wroteOnce = true
	}
	if !g.inBurst {
		g.inBurst = true
		g.burstRank = g.rankOf(row)
	}
	phys := uint64(g.rowPerm[row])
	addr := phys*uint64(g.mapper.Geometry().RowBytes()) + uint64(col*LineBytes)
	return trace.Record{Op: op, Addr: addr, Time: g.now}
}

// exponential draws an exponential gap with the given mean, clamped to at
// least 1 ns.
func (g *Generator) exponential(mean float64) int64 {
	v := int64(math.Round(g.rng.ExpFloat64() * mean))
	if v < 1 {
		v = 1
	}
	return v
}

// geometric draws a geometric variate with the given mean (≥ 1).
func (g *Generator) geometric(mean int) int {
	if mean <= 1 {
		return 0
	}
	p := 1 / float64(mean)
	n := 0
	for g.rng.Float64() > p && n < 16*mean {
		n++
	}
	return n
}

// Generate materializes n records into a slice.
func Generate(p Profile, g pcm.Geometry, seed int64, n int) ([]trace.Record, error) {
	gen, err := NewGenerator(p, g, seed)
	if err != nil {
		return nil, err
	}
	recs, err := trace.Collect(trace.NewLimit(gen, n))
	if err != nil {
		return nil, err
	}
	if len(recs) != n {
		return nil, fmt.Errorf("workload: generator yielded %d of %d records", len(recs), n)
	}
	return recs, nil
}
