// Package workload synthesizes memory access traces that stand in for the
// paper's Pin-captured benchmark traces (§5). Each of the 20 benchmarks —
// SPEC CPU2006 integer and floating point, MiBench, SPLASH-2 — is described
// by a Profile whose knobs drive exactly the behaviors the paper's results
// hinge on:
//
//   - ReadFraction: the read/write mix; writes are what WOM-codes speed up.
//   - MeanGapNs / BurstLen / BurstGapNs: memory intensity and burstiness;
//     idle rank cycles are what PCM-refresh harvests, and same-bank bursts
//     are what makes slow writes block reads (the Fig. 5(b) effect).
//   - FootprintRows / ZipfS: working-set size and row-reuse skew; repeated
//     writes to the same rows exercise the WOM rewrite budget and determine
//     the WOM-cache hit rate (Fig. 6).
//   - SeqFraction: streaming behavior; sequential lines share a row and a
//     bank, adding row-buffer-style locality and bank pressure.
//   - WriteHotFraction / HotRows: extra write clustering, modeling stores
//     concentrating on a few structures (e.g. h264ref reference frames).
//
// Generators are deterministic given (Profile, seed, geometry), so every
// experiment is reproducible bit-for-bit.
package workload

import "fmt"

// Suite labels the benchmark's origin suite.
type Suite string

// The paper's three suites (§5).
const (
	SPEC   Suite = "SPEC CPU2006"
	MiB    Suite = "MiBench"
	SPLASH Suite = "SPLASH-2"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	// Name is the benchmark's name as the paper lists it.
	Name string
	// Suite is the origin suite.
	Suite Suite

	// ReadFraction is the fraction of accesses that are reads, in [0,1].
	ReadFraction float64

	// FootprintRows is the number of distinct memory rows the benchmark
	// touches (its working set at row granularity).
	FootprintRows int

	// ZipfS is the Zipf skew (> 1) of row reuse: higher values concentrate
	// accesses on few rows.
	ZipfS float64

	// SeqFraction is the fraction of accesses issued by the sequential
	// streaming cursor rather than the reuse distribution, in [0,1].
	SeqFraction float64

	// SeqRunLines bounds how many consecutive lines the streaming cursor
	// emits within one row before hopping to the next row (and, under the
	// row-interleaved mapping, the next bank). Real LLC miss streams do
	// not camp on a single 16 KB row for 256 consecutive misses — PCM
	// memory controllers interleave streams across banks at fine
	// granularity; 0 selects the default of 2.
	SeqRunLines int

	// MeanGapNs is the mean inter-burst gap in nanoseconds (exponential);
	// smaller means more memory-intensive.
	MeanGapNs float64

	// BurstLen is the mean number of accesses per burst (geometric).
	BurstLen int

	// BurstGapNs is the arrival gap between accesses within a burst.
	BurstGapNs int64

	// WriteHotFraction is the probability a write is redirected to the hot
	// row set, in [0,1].
	WriteHotFraction float64

	// HotRows is the size of the hot row set (≤ FootprintRows).
	HotRows int

	// ReadReuse is the probability a read targets the most recently
	// written row, in [0,1]. Read-after-write row reuse is what queues
	// reads behind slow writes at a bank — the mechanism behind the
	// paper's Fig. 5(b) read latency improvements.
	ReadReuse float64

	// RankAffinity is the probability an access within a burst stays in
	// the rank the burst started on, in [0,1]. Bursts of LLC misses share
	// spatial locality, so they tend to land in one rank — concentrating
	// load on its banks and, under WCPCM, its WOM-cache array (the Fig. 7
	// banks/rank parallelism effect).
	RankAffinity float64
}

// Validate checks the profile's parameter ranges.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile needs a name")
	case p.ReadFraction < 0 || p.ReadFraction > 1:
		return fmt.Errorf("workload: %s: ReadFraction %v outside [0,1]", p.Name, p.ReadFraction)
	case p.FootprintRows < 1:
		return fmt.Errorf("workload: %s: FootprintRows %d < 1", p.Name, p.FootprintRows)
	case p.ZipfS <= 1:
		return fmt.Errorf("workload: %s: ZipfS %v must exceed 1", p.Name, p.ZipfS)
	case p.SeqFraction < 0 || p.SeqFraction > 1:
		return fmt.Errorf("workload: %s: SeqFraction %v outside [0,1]", p.Name, p.SeqFraction)
	case p.MeanGapNs <= 0:
		return fmt.Errorf("workload: %s: MeanGapNs %v must be positive", p.Name, p.MeanGapNs)
	case p.BurstLen < 1:
		return fmt.Errorf("workload: %s: BurstLen %d < 1", p.Name, p.BurstLen)
	case p.BurstGapNs < 0:
		return fmt.Errorf("workload: %s: negative BurstGapNs", p.Name)
	case p.WriteHotFraction < 0 || p.WriteHotFraction > 1:
		return fmt.Errorf("workload: %s: WriteHotFraction %v outside [0,1]", p.Name, p.WriteHotFraction)
	case p.HotRows < 1 || p.HotRows > p.FootprintRows:
		return fmt.Errorf("workload: %s: HotRows %d outside [1,FootprintRows]", p.Name, p.HotRows)
	case p.ReadReuse < 0 || p.ReadReuse > 1:
		return fmt.Errorf("workload: %s: ReadReuse %v outside [0,1]", p.Name, p.ReadReuse)
	case p.RankAffinity < 0 || p.RankAffinity > 1:
		return fmt.Errorf("workload: %s: RankAffinity %v outside [0,1]", p.Name, p.RankAffinity)
	}
	return nil
}

// Profiles returns the 20 benchmark profiles of §5 in the paper's order:
// five SPEC integer, five SPEC floating point, five MiBench, five SPLASH-2.
//
// The parameters encode each benchmark's published memory character
// (intensity, mix, locality) at the level of fidelity the experiments need;
// see DESIGN.md §3 for the substitution rationale.
func Profiles() []Profile {
	return []Profile{
		// --- SPEC CPU2006 integer ---
		{Name: "400.perlbench", Suite: SPEC, ReadFraction: 0.72, FootprintRows: 14000, ZipfS: 1.35,
			SeqFraction: 0.15, MeanGapNs: 340, BurstLen: 4, BurstGapNs: 30, WriteHotFraction: 0.70, HotRows: 500, ReadReuse: 0.55, RankAffinity: 0},
		{Name: "401.bzip2", Suite: SPEC, ReadFraction: 0.64, FootprintRows: 8400, ZipfS: 1.25,
			SeqFraction: 0.45, MeanGapNs: 300, BurstLen: 6, BurstGapNs: 25, WriteHotFraction: 0.65, HotRows: 800, ReadReuse: 0.50, RankAffinity: 0},
		{Name: "456.hmmer", Suite: SPEC, ReadFraction: 0.80, FootprintRows: 4200, ZipfS: 1.60,
			SeqFraction: 0.20, MeanGapNs: 380, BurstLen: 3, BurstGapNs: 30, WriteHotFraction: 0.75, HotRows: 250, ReadReuse: 0.60, RankAffinity: 0},
		{Name: "462.libq", Suite: SPEC, ReadFraction: 0.74, FootprintRows: 3500, ZipfS: 1.10,
			SeqFraction: 0.80, MeanGapNs: 240, BurstLen: 8, BurstGapNs: 20, WriteHotFraction: 0.50, HotRows: 600, ReadReuse: 0.40, RankAffinity: 0},
		{Name: "464.h264ref", Suite: SPEC, ReadFraction: 0.55, FootprintRows: 6300, ZipfS: 1.55,
			SeqFraction: 0.25, MeanGapNs: 320, BurstLen: 5, BurstGapNs: 25, WriteHotFraction: 0.90, HotRows: 300, ReadReuse: 0.65, RankAffinity: 0},
		// --- SPEC CPU2006 floating point ---
		{Name: "410.bwaves", Suite: SPEC, ReadFraction: 0.70, FootprintRows: 4200, ZipfS: 1.08,
			SeqFraction: 0.75, MeanGapNs: 220, BurstLen: 10, BurstGapNs: 15, WriteHotFraction: 0.55, HotRows: 800, ReadReuse: 0.45, RankAffinity: 0},
		{Name: "436.cactusADM", Suite: SPEC, ReadFraction: 0.62, FootprintRows: 10500, ZipfS: 1.20,
			SeqFraction: 0.40, MeanGapNs: 280, BurstLen: 6, BurstGapNs: 22, WriteHotFraction: 0.70, HotRows: 700, ReadReuse: 0.55, RankAffinity: 0},
		{Name: "465.tonto", Suite: SPEC, ReadFraction: 0.71, FootprintRows: 7000, ZipfS: 1.40,
			SeqFraction: 0.25, MeanGapNs: 360, BurstLen: 4, BurstGapNs: 28, WriteHotFraction: 0.70, HotRows: 400, ReadReuse: 0.55, RankAffinity: 0},
		{Name: "470.lbm", Suite: SPEC, ReadFraction: 0.52, FootprintRows: 4200, ZipfS: 1.06,
			SeqFraction: 0.85, MeanGapNs: 200, BurstLen: 12, BurstGapNs: 12, WriteHotFraction: 0.55, HotRows: 1000, ReadReuse: 0.45, RankAffinity: 0},
		{Name: "482.sphinx3", Suite: SPEC, ReadFraction: 0.85, FootprintRows: 6300, ZipfS: 1.45,
			SeqFraction: 0.30, MeanGapNs: 330, BurstLen: 4, BurstGapNs: 26, WriteHotFraction: 0.70, HotRows: 300, ReadReuse: 0.60, RankAffinity: 0},
		// --- MiBench (embedded: lower intensity, smaller footprints) ---
		{Name: "qsort", Suite: MiB, ReadFraction: 0.60, FootprintRows: 2100, ZipfS: 1.45,
			SeqFraction: 0.20, MeanGapNs: 900, BurstLen: 3, BurstGapNs: 35, WriteHotFraction: 0.80, HotRows: 200, ReadReuse: 0.60, RankAffinity: 0},
		{Name: "mad", Suite: MiB, ReadFraction: 0.70, FootprintRows: 2800, ZipfS: 1.35,
			SeqFraction: 0.55, MeanGapNs: 750, BurstLen: 4, BurstGapNs: 30, WriteHotFraction: 0.75, HotRows: 160, ReadReuse: 0.55, RankAffinity: 0},
		{Name: "FFT", Suite: MiB, ReadFraction: 0.66, FootprintRows: 3500, ZipfS: 1.30,
			SeqFraction: 0.35, MeanGapNs: 800, BurstLen: 4, BurstGapNs: 30, WriteHotFraction: 0.75, HotRows: 250, ReadReuse: 0.55, RankAffinity: 0},
		{Name: "typeset", Suite: MiB, ReadFraction: 0.75, FootprintRows: 5600, ZipfS: 1.40,
			SeqFraction: 0.25, MeanGapNs: 650, BurstLen: 4, BurstGapNs: 32, WriteHotFraction: 0.70, HotRows: 280, ReadReuse: 0.55, RankAffinity: 0},
		{Name: "stringsearch", Suite: MiB, ReadFraction: 0.88, FootprintRows: 1050, ZipfS: 1.70,
			SeqFraction: 0.40, MeanGapNs: 1000, BurstLen: 3, BurstGapNs: 35, WriteHotFraction: 0.80, HotRows: 100, ReadReuse: 0.65, RankAffinity: 0},
		// --- SPLASH-2 (HPC: higher intensity, larger footprints) ---
		{Name: "ocean", Suite: SPLASH, ReadFraction: 0.60, FootprintRows: 5600, ZipfS: 1.10,
			SeqFraction: 0.60, MeanGapNs: 220, BurstLen: 8, BurstGapNs: 15, WriteHotFraction: 0.60, HotRows: 900, ReadReuse: 0.50, RankAffinity: 0},
		{Name: "water-ns", Suite: SPLASH, ReadFraction: 0.70, FootprintRows: 6300, ZipfS: 1.35,
			SeqFraction: 0.25, MeanGapNs: 260, BurstLen: 6, BurstGapNs: 18, WriteHotFraction: 0.70, HotRows: 500, ReadReuse: 0.60, RankAffinity: 0},
		{Name: "water-sp", Suite: SPLASH, ReadFraction: 0.72, FootprintRows: 5600, ZipfS: 1.38,
			SeqFraction: 0.25, MeanGapNs: 270, BurstLen: 6, BurstGapNs: 18, WriteHotFraction: 0.72, HotRows: 450, ReadReuse: 0.60, RankAffinity: 0},
		{Name: "raytrace", Suite: SPLASH, ReadFraction: 0.84, FootprintRows: 11200, ZipfS: 1.22,
			SeqFraction: 0.15, MeanGapNs: 280, BurstLen: 6, BurstGapNs: 20, WriteHotFraction: 0.60, HotRows: 700, ReadReuse: 0.50, RankAffinity: 0},
		{Name: "lu-ncb", Suite: SPLASH, ReadFraction: 0.61, FootprintRows: 6300, ZipfS: 1.30,
			SeqFraction: 0.45, MeanGapNs: 250, BurstLen: 7, BurstGapNs: 16, WriteHotFraction: 0.68, HotRows: 650, ReadReuse: 0.55, RankAffinity: 0},
	}
}

// ProfileByName finds a profile by benchmark name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// SuiteProfiles returns the profiles belonging to one suite.
func SuiteProfiles(s Suite) []Profile {
	var out []Profile
	for _, p := range Profiles() {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}
