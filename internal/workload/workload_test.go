package workload

import (
	"reflect"
	"testing"

	"womcpcm/internal/pcm"
	"womcpcm/internal/trace"
)

func testGeometry() pcm.Geometry {
	return pcm.Geometry{Ranks: 4, BanksPerRank: 8, RowsPerBank: 4096, ColsPerRow: 256, BitsPerCol: 4, Devices: 16}
}

func TestProfilesCoverThePaper(t *testing.T) {
	ps := Profiles()
	if len(ps) != 20 {
		t.Fatalf("got %d profiles, the paper evaluates 20", len(ps))
	}
	counts := map[Suite]int{}
	names := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
		counts[p.Suite]++
	}
	if counts[SPEC] != 10 || counts[MiB] != 5 || counts[SPLASH] != 5 {
		t.Errorf("suite sizes = %v, want SPEC 10 / MiBench 5 / SPLASH-2 5", counts)
	}
	// Benchmarks the paper calls out by name must exist.
	for _, name := range []string{"464.h264ref", "470.lbm", "qsort", "ocean", "stringsearch"} {
		if !names[name] {
			t.Errorf("missing paper benchmark %s", name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("464.h264ref")
	if err != nil || p.Suite != SPEC {
		t.Fatalf("ProfileByName: %v, %v", p, err)
	}
	if _, err := ProfileByName("no-such-benchmark"); err == nil {
		t.Error("found a bogus benchmark")
	}
}

func TestSuiteProfiles(t *testing.T) {
	if got := len(SuiteProfiles(MiB)); got != 5 {
		t.Errorf("MiBench has %d profiles, want 5", got)
	}
}

func TestProfileValidateRejectsBadKnobs(t *testing.T) {
	base := Profiles()[0]
	mutations := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.ReadFraction = 1.5 },
		func(p *Profile) { p.FootprintRows = 0 },
		func(p *Profile) { p.ZipfS = 1.0 },
		func(p *Profile) { p.SeqFraction = -0.1 },
		func(p *Profile) { p.MeanGapNs = 0 },
		func(p *Profile) { p.BurstLen = 0 },
		func(p *Profile) { p.BurstGapNs = -1 },
		func(p *Profile) { p.WriteHotFraction = 2 },
		func(p *Profile) { p.HotRows = 0 },
		func(p *Profile) { p.HotRows = p.FootprintRows + 1 },
		func(p *Profile) { p.ReadReuse = -0.5 },
		func(p *Profile) { p.ReadReuse = 1.5 },
		func(p *Profile) { p.RankAffinity = -1 },
		func(p *Profile) { p.RankAffinity = 2 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ProfileByName("qsort")
	a, err := Generate(p, testGeometry(), 42, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, testGeometry(), 42, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different traces")
	}
	c, err := Generate(p, testGeometry(), 43, 500)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratorTimeOrdered(t *testing.T) {
	for _, p := range Profiles() {
		recs, err := Generate(p, testGeometry(), 7, 2000)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := trace.Validate(recs); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// TestGeneratorMixMatchesProfile: the empirical read fraction must track the
// profile within sampling noise.
func TestGeneratorMixMatchesProfile(t *testing.T) {
	for _, name := range []string{"470.lbm", "stringsearch", "464.h264ref"} {
		p, _ := ProfileByName(name)
		recs, err := Generate(p, testGeometry(), 1, 20000)
		if err != nil {
			t.Fatal(err)
		}
		reads := 0
		for _, r := range recs {
			if r.Op == trace.Read {
				reads++
			}
		}
		got := float64(reads) / float64(len(recs))
		if diff := got - p.ReadFraction; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: read fraction %.3f, profile %.3f", name, got, p.ReadFraction)
		}
	}
}

// TestGeneratorFootprint: addresses stay within the profile's row footprint
// and line alignment.
func TestGeneratorFootprint(t *testing.T) {
	p, _ := ProfileByName("stringsearch")
	g := testGeometry()
	recs, err := Generate(p, g, 3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	limit := uint64(p.FootprintRows) * uint64(g.RowBytes())
	for _, r := range recs {
		if r.Addr >= limit {
			t.Fatalf("address %#x beyond footprint %#x", r.Addr, limit)
		}
		if r.Addr%LineBytes != 0 {
			t.Fatalf("address %#x not line aligned", r.Addr)
		}
	}
}

// TestGeneratorReuse: a skewed profile must revisit rows; a streaming one
// must touch many more distinct rows.
func TestGeneratorReuse(t *testing.T) {
	g := testGeometry()
	distinct := func(name string) int {
		p, _ := ProfileByName(name)
		recs, err := Generate(p, g, 5, 8000)
		if err != nil {
			t.Fatal(err)
		}
		rows := map[uint64]bool{}
		for _, r := range recs {
			rows[r.Addr/uint64(g.RowBytes())] = true
		}
		return len(rows)
	}
	hot := distinct("stringsearch") // tiny footprint, high skew
	cold := distinct("470.lbm")     // streaming, huge footprint
	if hot >= cold {
		t.Errorf("distinct rows: stringsearch %d, lbm %d; want stringsearch ≪ lbm", hot, cold)
	}
	if cold < 500 {
		t.Errorf("lbm touched only %d distinct rows; streaming broken?", cold)
	}
}

// TestGeneratorIntensityOrdering: HPC workloads must arrive far faster than
// embedded ones, giving PCM-refresh different idle budgets.
func TestGeneratorIntensityOrdering(t *testing.T) {
	g := testGeometry()
	span := func(name string) int64 {
		p, _ := ProfileByName(name)
		recs, err := Generate(p, g, 11, 5000)
		if err != nil {
			t.Fatal(err)
		}
		return recs[len(recs)-1].Time
	}
	if hpc, emb := span("ocean"), span("stringsearch"); hpc*3 > emb {
		t.Errorf("ocean span %d ns vs stringsearch %d ns: want ≥3× intensity difference", hpc, emb)
	}
}

func TestGeneratorRejectsBadInputs(t *testing.T) {
	p := Profiles()[0]
	p.ZipfS = 0.5
	if _, err := NewGenerator(p, testGeometry(), 1); err == nil {
		t.Error("accepted invalid profile")
	}
	if _, err := NewGenerator(Profiles()[0], pcm.Geometry{}, 1); err == nil {
		t.Error("accepted invalid geometry")
	}
}

func TestHashStringStable(t *testing.T) {
	if hashString("ocean") != hashString("ocean") {
		t.Error("hash not deterministic")
	}
	if hashString("ocean") == hashString("water-ns") {
		t.Error("suspicious hash collision between benchmark names")
	}
}

// TestReadReuseFollowsWrites: with full read reuse, most reads land on the
// row most recently written; with none, they rarely do.
func TestReadReuseFollowsWrites(t *testing.T) {
	g := testGeometry()
	followRate := func(reuse float64) float64 {
		p, _ := ProfileByName("qsort")
		p.ReadReuse = reuse
		recs, err := Generate(p, g, 9, 10000)
		if err != nil {
			t.Fatal(err)
		}
		var lastWrite uint64
		var wrote bool
		follows, reads := 0, 0
		rowOf := func(a uint64) uint64 { return a / uint64(g.RowBytes()) }
		for _, r := range recs {
			if r.Op == trace.Write {
				lastWrite, wrote = rowOf(r.Addr), true
				continue
			}
			if !wrote {
				continue
			}
			reads++
			if rowOf(r.Addr) == lastWrite {
				follows++
			}
		}
		return float64(follows) / float64(reads)
	}
	high, low := followRate(0.9), followRate(0)
	if high < 0.5 {
		t.Errorf("follow rate with reuse 0.9 = %.2f, want ≥ 0.5", high)
	}
	if low > 0.2 {
		t.Errorf("follow rate with reuse 0 = %.2f, want small", low)
	}
	if high <= low {
		t.Errorf("reuse knob inert: %.2f vs %.2f", high, low)
	}
}

// TestRankAffinityClustersBursts: with affinity on, accesses within a
// burst stay in the anchor rank far more often than without.
func TestRankAffinityClustersBursts(t *testing.T) {
	g := testGeometry()
	mapper, err := pcm.NewAddrMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	sameRankRate := func(affinity float64) float64 {
		p, _ := ProfileByName("464.h264ref")
		p.RankAffinity = affinity
		p.SeqFraction = 0 // streams ignore affinity by design
		p.ReadReuse = 0
		recs, err := Generate(p, g, 3, 8000)
		if err != nil {
			t.Fatal(err)
		}
		same, pairs := 0, 0
		for i := 1; i < len(recs); i++ {
			// Same-burst heuristic: arrivals within the intra-burst gap.
			if recs[i].Time-recs[i-1].Time > int64(p.BurstGapNs) {
				continue
			}
			pairs++
			if mapper.Map(recs[i].Addr).Rank == mapper.Map(recs[i-1].Addr).Rank {
				same++
			}
		}
		if pairs == 0 {
			t.Fatal("no burst pairs found")
		}
		return float64(same) / float64(pairs)
	}
	with, without := sameRankRate(0.95), sameRankRate(0)
	if with <= without+0.2 {
		t.Errorf("rank affinity inert: %.2f with vs %.2f without", with, without)
	}
}
