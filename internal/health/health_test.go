package health

import (
	"strings"
	"testing"
	"time"
)

// fakeClock drives deterministic evaluation.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// burnSignals builds a tenant whose windowed attainment is controlled by
// the test through a pointer.
func burnSignals(attainment *float64) Signals {
	return Signals{
		Tenants: func() []TenantStat {
			return []TenantStat{{Name: "interactive", DeadlineMs: 50}}
		},
		TenantSLO: func(tenant string, w time.Duration) (uint64, uint64, bool) {
			if tenant != "interactive" {
				return 0, 0, false
			}
			// 1000 samples at the requested attainment, every window.
			return uint64(*attainment * 1000), 1000, true
		},
	}
}

func burnRules(forS, keepS float64) RulesConfig {
	return RulesConfig{Rules: []Rule{{
		Name: "slo-burn", Kind: KindBurnRate, Severity: "page",
		Objective: 0.99, ForS: forS, KeepFiringS: keepS,
	}}}
}

func TestBurnRateLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(50_000, 0)}
	att := 1.0
	ex := NewExemplars()
	ex.Observe("tenant:interactive", "j-0001", "deadbeefdeadbeefdeadbeefdeadbeef")
	e, err := NewEngine(Config{
		Rules: burnRules(10, 10), Signals: burnSignals(&att),
		Exemplars: ex, Now: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy: no alerts.
	e.EvalOnce()
	if got := e.Alerts(); len(got) != 0 {
		t.Fatalf("healthy alerts = %+v, want none", got)
	}

	// Attainment collapses: burn = (1-0.5)/0.01 = 50 > both 14 and 3 →
	// fast and slow pairs both go pending.
	att = 0.5
	e.EvalOnce()
	alerts := e.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("pending alerts = %d, want 2 (fast+slow)", len(alerts))
	}
	for _, a := range alerts {
		if a.State != StatePending {
			t.Fatalf("alert %s state = %s, want pending", a.Rule, a.State)
		}
		if a.Subject != "interactive" {
			t.Fatalf("alert subject = %q, want interactive", a.Subject)
		}
	}

	// for_s=10 not yet elapsed: still pending after 5s.
	clk.advance(5 * time.Second)
	e.EvalOnce()
	if a := e.Alerts()[0]; a.State != StatePending {
		t.Fatalf("state after 5s = %s, want pending", a.State)
	}

	// 10s held → firing, with the exemplar annotations attached.
	clk.advance(5 * time.Second)
	e.EvalOnce()
	var fast AlertView
	for _, a := range e.Alerts() {
		if a.State != StateFiring {
			t.Fatalf("alert %s state = %s, want firing", a.Rule, a.State)
		}
		if a.Rule == "slo-burn-fast" {
			fast = a
		}
	}
	if fast.ID == "" {
		t.Fatal("no slo-burn-fast alert")
	}
	if fast.Annotations["exemplar_trace"] != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Fatalf("exemplar_trace = %q", fast.Annotations["exemplar_trace"])
	}
	if fast.Annotations["trace_url"] != "/v1/jobs/j-0001/trace" {
		t.Fatalf("trace_url = %q", fast.Annotations["trace_url"])
	}
	if fast.FiredAt == nil || !fast.FiredAt.Equal(clk.t) {
		t.Fatalf("fired_at = %v, want %v", fast.FiredAt, clk.t)
	}

	// Recovery: condition clears but keep_firing_s=10 damps resolution.
	att = 1.0
	clk.advance(2 * time.Second)
	e.EvalOnce()
	if a, ok := e.Alert(fast.ID); !ok || a.State != StateFiring {
		t.Fatalf("alert during damper = %+v ok=%v, want still firing", a, ok)
	}

	// Damper elapses → resolved, retrievable by id from history.
	clk.advance(10 * time.Second)
	e.EvalOnce()
	a, ok := e.Alert(fast.ID)
	if !ok || a.State != StateResolved {
		t.Fatalf("post-damper alert = %+v ok=%v, want resolved", a, ok)
	}
	if a.ResolvedAt == nil || !a.ResolvedAt.Equal(clk.t) {
		t.Fatalf("resolved_at = %v, want %v", a.ResolvedAt, clk.t)
	}
	// Resolved history is part of Alerts().
	views := e.Alerts()
	if len(views) != 2 {
		t.Fatalf("alert history = %d entries, want 2 resolved", len(views))
	}
}

func TestPendingFlapDrops(t *testing.T) {
	clk := &fakeClock{t: time.Unix(50_000, 0)}
	att := 0.5
	e, _ := NewEngine(Config{Rules: burnRules(30, 0), Signals: burnSignals(&att), Now: clk.now})
	e.EvalOnce()
	if len(e.Alerts()) != 2 {
		t.Fatal("expected pending alerts")
	}
	// Clears before for_s → dropped entirely, never fires.
	att = 1.0
	clk.advance(5 * time.Second)
	e.EvalOnce()
	if got := e.Alerts(); len(got) != 0 {
		t.Fatalf("flapped alerts still present: %+v", got)
	}
	e.mu.Lock()
	flaps, fired := e.flapsTotal, e.firedTotal
	e.mu.Unlock()
	if flaps != 2 || fired != 0 {
		t.Fatalf("flaps=%d fired=%d, want 2/0", flaps, fired)
	}
}

func TestDedupByRuleSubject(t *testing.T) {
	clk := &fakeClock{t: time.Unix(50_000, 0)}
	att := 0.5
	e, _ := NewEngine(Config{Rules: burnRules(0, 0), Signals: burnSignals(&att), Now: clk.now})
	for i := 0; i < 5; i++ {
		e.EvalOnce()
		clk.advance(time.Second)
	}
	// Five violating evals of the same rule+subject stay two alerts.
	if got := e.Alerts(); len(got) != 2 {
		t.Fatalf("alerts after repeat evals = %d, want 2", len(got))
	}
}

func TestReloadKeepsFiringState(t *testing.T) {
	clk := &fakeClock{t: time.Unix(50_000, 0)}
	att := 0.5
	e, _ := NewEngine(Config{Rules: burnRules(0, 300), Signals: burnSignals(&att), Now: clk.now})
	e.EvalOnce()
	before := e.Alerts()
	if len(before) != 2 || before[0].State != StateFiring {
		t.Fatalf("setup: %+v", before)
	}

	// Reload keeping the rule (tweaked objective): firing state survives,
	// same alert ids.
	rc := burnRules(0, 300)
	rc.Rules[0].Objective = 0.95
	if err := e.Reload(rc); err != nil {
		t.Fatal(err)
	}
	after := e.Alerts()
	if len(after) != 2 || after[0].ID != before[0].ID || after[0].State != StateFiring {
		t.Fatalf("reload lost firing state: before=%+v after=%+v", before, after)
	}

	// Reload dropping the rule: firing alerts resolve with a reason.
	if err := e.Reload(RulesConfig{Rules: []Rule{{
		Name: "other", Kind: KindQueueSaturation,
	}}}); err != nil {
		t.Fatal(err)
	}
	for _, a := range e.Alerts() {
		if a.State != StateResolved {
			t.Fatalf("alert %s after rule removal = %s, want resolved", a.Rule, a.State)
		}
		if a.Annotations["resolved_reason"] == "" {
			t.Fatal("removed-rule resolution carries no reason annotation")
		}
	}
}

func TestStructuralRules(t *testing.T) {
	clk := &fakeClock{t: time.Unix(50_000, 0)}
	qs := QueueStat{Depth: 95, Cap: 100}
	sheds := uint64(0)
	scrapes := uint64(0)
	captures := uint64(0)
	workers := []WorkerStat{
		{ID: "w-001", Name: "alpha", HeartbeatAge: time.Second, Ready: true},
		{ID: "w-002", Name: "beta", HeartbeatAge: time.Second, Ready: true},
	}
	e, err := NewEngine(Config{
		Rules: RulesConfig{Rules: []Rule{
			{Name: "sat", Kind: KindQueueSaturation},
			{Name: "shed", Kind: KindShedRate, Threshold: 0.5},
			{Name: "stale", Kind: KindHeartbeatStale, Threshold: 5},
			{Name: "scrape", Kind: KindScrapeErrors},
			{Name: "slow", Kind: KindSlowJobs},
		}},
		Signals: Signals{
			Queue: func() (QueueStat, bool) { return qs, true },
			Tenants: func() []TenantStat {
				return []TenantStat{{Name: "batch", Sheds: sheds}}
			},
			Workers:      func() []WorkerStat { return workers },
			ScrapeErrors: func() (uint64, bool) { return scrapes, true },
			SlowCaptures: func() (uint64, bool) { return captures, true },
		},
		Now: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}

	// First pass: saturation fires (95% ≥ 90%); rate rules only baseline.
	e.EvalOnce()
	byRule := func() map[string]AlertView {
		m := make(map[string]AlertView)
		for _, a := range e.Alerts() {
			if a.State != StateResolved {
				m[a.Rule] = a
			}
		}
		return m
	}
	m := byRule()
	if len(m) != 1 || m["sat"].Subject != "queue" {
		t.Fatalf("first pass alerts = %+v, want only sat", m)
	}

	// Second pass: counters grew, heartbeats went stale.
	clk.advance(10 * time.Second)
	sheds, scrapes, captures = 20, 3, 2
	workers[1].HeartbeatAge = 8 * time.Second
	e.EvalOnce()
	m = byRule()
	for _, want := range []struct{ rule, subject string }{
		{"sat", "queue"},
		{"shed", "batch"},
		{"stale", "beta"},
		{"scrape", "federation"},
		{"slow", "perfmon"},
	} {
		a, ok := m[want.rule]
		if !ok || a.Subject != want.subject {
			t.Fatalf("rule %s: got %+v (ok=%v), want subject %s", want.rule, a, ok, want.subject)
		}
	}
	if m["shed"].Value != 2 { // 20 sheds / 10 s
		t.Fatalf("shed rate = %g, want 2", m["shed"].Value)
	}

	// Draining workers are exempt from staleness.
	workers[1].Draining = true
	qs.Depth = 0
	sheds, scrapes, captures = 20, 3, 2 // no growth
	clk.advance(10 * time.Second)
	e.EvalOnce()
	m = byRule()
	if len(m) != 0 {
		t.Fatalf("recovered pass still has %+v", m)
	}
}

func TestRulesParsing(t *testing.T) {
	if _, err := ParseRules([]byte(`{"rules":[{"name":"x","kind":"nope"}]}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParseRules([]byte(`{"rules":[{"name":"a","kind":"slow_jobs"},{"name":"a","kind":"slow_jobs"}]}`)); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := ParseRules([]byte(`{"rules":[{"name":"b","kind":"burn_rate","objective":1.5}]}`)); err == nil {
		t.Fatal("objective outside (0,1) accepted")
	}
	if _, err := ParseRules([]byte(`{"rules":[{"name":"b","kind":"burn_rate","objective":0.99,"surprise":1}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	c, err := ParseRules([]byte(`{"interval_ms":250,"rules":[{"name":"b","kind":"burn_rate","objective":0.99}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Interval() != 250*time.Millisecond {
		t.Fatalf("interval = %v", c.Interval())
	}
	r := c.Rules[0]
	if r.FastBurn != 14 || r.SlowBurn != 3 || r.FastShortS != 60 || r.SlowLongS != 1800 {
		t.Fatalf("burn defaults not filled: %+v", r)
	}
	if r.Severity != "warn" {
		t.Fatalf("severity default = %q", r.Severity)
	}
	// The shipped defaults must validate (DefaultRules panics otherwise).
	DefaultRules()
}

func TestWriteProm(t *testing.T) {
	clk := &fakeClock{t: time.Unix(50_000, 0)}
	att := 0.5
	e, _ := NewEngine(Config{Rules: burnRules(0, 0), Signals: burnSignals(&att), Now: clk.now})
	e.EvalOnce()
	var b strings.Builder
	e.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		`womd_alerts{state="firing"} 2`,
		`womd_alerts{state="pending"} 0`,
		`womd_alert_transitions_total{state="firing"} 2`,
		`womd_alert_evaluations_total 1`,
		`womd_alert_flaps_total 0`,
		`womd_alert_firing{rule="slo-burn-fast",subject="interactive"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE never appear without samples: with nothing firing the
	// per-alert family vanishes entirely.
	att = 1.0
	e.EvalOnce()
	b.Reset()
	e.WriteProm(&b)
	if strings.Contains(b.String(), "womd_alert_firing") {
		t.Fatalf("womd_alert_firing emitted with no firing alerts:\n%s", b.String())
	}
}

func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	e.Start()
	e.Stop()
	e.EvalOnce()
	e.WriteProm(&strings.Builder{})
	if got := e.Alerts(); got != nil {
		t.Fatalf("nil Alerts = %v", got)
	}
	if _, ok := e.Alert("al-000001"); ok {
		t.Fatal("nil Alert found something")
	}
	if err := e.Reload(DefaultRules()); err == nil {
		t.Fatal("nil Reload did not error")
	}
}

func TestStartStop(t *testing.T) {
	att := 1.0
	e, _ := NewEngine(Config{
		Rules:   RulesConfig{IntervalMs: 1, Rules: burnRules(0, 0).Rules},
		Signals: burnSignals(&att),
	})
	e.Start()
	e.Start() // idempotent
	deadline := time.After(2 * time.Second)
	for {
		e.mu.Lock()
		n := e.evals
		e.mu.Unlock()
		if n > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background loop never evaluated")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	e.Stop()
	e.Stop() // idempotent
}
