package health

import (
	"fmt"
	"io"
	"sort"
)

// WriteProm renders the womd_alert_* families in Prometheus text
// exposition format — wired into GET /metrics via engine.WithPromAppender
// when womd runs with -alerts. No-op on a nil engine, so the appender can
// be registered unconditionally.
func (e *Engine) WriteProm(w io.Writer) {
	if e == nil {
		return
	}
	e.mu.Lock()
	var pending, firing int
	type firingAlert struct{ rule, subject string }
	var live []firingAlert
	for _, a := range e.active {
		if a.state == StateFiring {
			firing++
			live = append(live, firingAlert{a.rule, a.subject})
		} else {
			pending++
		}
	}
	evals, pendingT, firedT, resolvedT, flapsT :=
		e.evals, e.pendingTotal, e.firedTotal, e.resolvedTotal, e.flapsTotal
	e.mu.Unlock()

	fmt.Fprintf(w, "# HELP womd_alerts Active alerts by lifecycle state.\n"+
		"# TYPE womd_alerts gauge\n"+
		"womd_alerts{state=\"pending\"} %d\n"+
		"womd_alerts{state=\"firing\"} %d\n", pending, firing)
	fmt.Fprintf(w, "# HELP womd_alert_transitions_total Alert lifecycle transitions since start.\n"+
		"# TYPE womd_alert_transitions_total counter\n"+
		"womd_alert_transitions_total{state=\"pending\"} %d\n"+
		"womd_alert_transitions_total{state=\"firing\"} %d\n"+
		"womd_alert_transitions_total{state=\"resolved\"} %d\n", pendingT, firedT, resolvedT)
	fmt.Fprintf(w, "# HELP womd_alert_evaluations_total Rule evaluation passes.\n"+
		"# TYPE womd_alert_evaluations_total counter\n"+
		"womd_alert_evaluations_total %d\n", evals)
	fmt.Fprintf(w, "# HELP womd_alert_flaps_total Pending alerts that cleared before firing.\n"+
		"# TYPE womd_alert_flaps_total counter\n"+
		"womd_alert_flaps_total %d\n", flapsT)
	// Per-alert series only when something is firing: the exposition test
	// requires every HELP/TYPE header to have at least one sample.
	if len(live) == 0 {
		return
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].rule != live[j].rule {
			return live[i].rule < live[j].rule
		}
		return live[i].subject < live[j].subject
	})
	fmt.Fprintf(w, "# HELP womd_alert_firing One series per firing alert.\n"+
		"# TYPE womd_alert_firing gauge\n")
	for _, a := range live {
		fmt.Fprintf(w, "womd_alert_firing{rule=%q,subject=%q} 1\n", a.rule, a.subject)
	}
}
