package health

import (
	"testing"
	"time"
)

// transitionRec is one OnTransition callback observation.
type transitionRec struct {
	to  string
	key string
	id  string
}

// TestOnTransitionJournal pins the hook's contract: every lifecycle edge
// (pending, firing, resolved, flapped) is reported exactly once, in
// order, with the stable rule+subject key.
func TestOnTransitionJournal(t *testing.T) {
	clk := &fakeClock{t: time.Unix(50_000, 0)}
	att := 1.0
	var recs []transitionRec
	e, err := NewEngine(Config{
		Rules: burnRules(10, 10), Signals: burnSignals(&att), Now: clk.now,
		OnTransition: func(_ time.Time, to, key string, v AlertView) {
			recs = append(recs, transitionRec{to: to, key: key, id: v.ID})
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	att = 0.5
	e.EvalOnce() // fast+slow pending
	if len(recs) != 2 || recs[0].to != "pending" || recs[1].to != "pending" {
		t.Fatalf("after first eval: %+v, want 2 pending", recs)
	}
	clk.advance(10 * time.Second)
	e.EvalOnce() // both fire
	if len(recs) != 4 || recs[2].to != "firing" || recs[3].to != "firing" {
		t.Fatalf("after hold: %+v, want +2 firing", recs)
	}
	if recs[2].key == recs[3].key {
		t.Fatalf("fast and slow share key %q", recs[2].key)
	}

	// Healthy again: keep_firing damps for 10s, then both resolve.
	att = 1.0
	clk.advance(5 * time.Second)
	e.EvalOnce()
	if len(recs) != 4 {
		t.Fatalf("mid-damping transitions: %+v", recs)
	}
	clk.advance(6 * time.Second)
	e.EvalOnce()
	if len(recs) != 6 || recs[4].to != "resolved" || recs[5].to != "resolved" {
		t.Fatalf("after damping: %+v, want +2 resolved", recs)
	}

	// A short blip that clears before for_s is a flap.
	att = 0.5
	e.EvalOnce()
	att = 1.0
	clk.advance(time.Second)
	e.EvalOnce()
	var flaps int
	for _, r := range recs[6:] {
		if r.to == "flapped" {
			flaps++
		}
	}
	if flaps != 2 {
		t.Fatalf("flap transitions = %d (%+v), want 2", flaps, recs[6:])
	}
}

// TestRestoreReinstallsFiring checks the restart path: journaled firing
// alerts come back active with their ids, the id sequence continues past
// them, and the next evaluation pass governs them like live alerts.
func TestRestoreReinstallsFiring(t *testing.T) {
	clk := &fakeClock{t: time.Unix(50_000, 0)}
	att := 0.5
	a, err := NewEngine(Config{Rules: burnRules(0, 10), Signals: burnSignals(&att), Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	a.EvalOnce() // for_s=0: straight to firing
	views := a.Alerts()
	if len(views) != 2 || views[0].State != StateFiring {
		t.Fatalf("seed engine alerts: %+v", views)
	}
	if views[0].RuleBase != "slo-burn" {
		t.Fatalf("RuleBase = %q, want slo-burn", views[0].RuleBase)
	}

	// "Restart": fresh engine, same rules, restore the journaled set.
	b, err := NewEngine(Config{Rules: burnRules(0, 10), Signals: burnSignals(&att), Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	if n := b.Restore(views); n != 2 {
		t.Fatalf("Restore = %d, want 2", n)
	}
	got := b.Alerts()
	if len(got) != 2 {
		t.Fatalf("restored alerts: %+v", got)
	}
	for i, v := range got {
		if v.State != StateFiring {
			t.Fatalf("restored state = %s, want firing", v.State)
		}
		if v.ID != views[i].ID {
			t.Fatalf("restored id = %s, want %s", v.ID, views[i].ID)
		}
		if v.Annotations["restored"] != "true" {
			t.Fatalf("missing restored annotation: %+v", v.Annotations)
		}
	}

	// Re-restoring the same views is a no-op (keys already active).
	if n := b.Restore(views); n != 0 {
		t.Fatalf("second Restore = %d, want 0", n)
	}

	// Condition still true: the next pass sustains them, no duplicates.
	b.EvalOnce()
	if got := b.Alerts(); len(got) != 2 || got[0].State != StateFiring {
		t.Fatalf("post-eval alerts: %+v", got)
	}

	// Condition cleared: keep_firing damps from the restore instant, then
	// the restored alerts resolve like native ones.
	att = 1.0
	clk.advance(11 * time.Second)
	b.EvalOnce()
	for _, v := range b.Alerts() {
		if v.State != StateResolved {
			t.Fatalf("after damping: %s = %s, want resolved", v.Rule, v.State)
		}
	}

	// The id sequence continued past the restored ids: a brand-new alert
	// must not collide.
	att = 0.5
	b.EvalOnce()
	fresh := b.Alerts()
	for _, v := range fresh {
		if v.State != StateFiring {
			continue
		}
		for _, old := range views {
			if v.ID == old.ID {
				t.Fatalf("new alert reused journaled id %s", v.ID)
			}
		}
	}
}

// TestRestoreSkipsUnknownRule: a journaled alert whose rule was removed
// from the config does not come back.
func TestRestoreSkipsUnknownRule(t *testing.T) {
	clk := &fakeClock{t: time.Unix(50_000, 0)}
	att := 1.0
	e, err := NewEngine(Config{Rules: burnRules(0, 10), Signals: burnSignals(&att), Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	fired := time.Unix(49_000, 0)
	n := e.Restore([]AlertView{
		{ID: "al-000007", Rule: "ghost-rule", Subject: "interactive",
			State: StateFiring, StartedAt: fired, FiredAt: &fired},
		{ID: "al-000008", Rule: "slo-burn-fast", RuleBase: "slo-burn",
			Subject: "interactive", State: StateResolved, StartedAt: fired},
	})
	if n != 0 {
		t.Fatalf("Restore = %d, want 0 (unknown rule + resolved state)", n)
	}
	if got := e.Alerts(); len(got) != 0 {
		t.Fatalf("alerts after skip-restore: %+v", got)
	}
}
