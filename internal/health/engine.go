package health

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// QueueStat is the engine queue's occupancy signal.
type QueueStat struct {
	Depth    int
	Cap      int // 0 = unbounded/unknown; saturation rules skip it
	Rejected uint64
	Draining bool
}

// TenantStat is one tenant's scheduler snapshot, the burn-rate and
// shed-rate subject list.
type TenantStat struct {
	Name       string
	Depth      int
	Sheds      uint64
	DeadlineMs int64 // 0 = no deadline, so no error budget to burn
}

// WorkerStat is one fleet member as the coordinator sees it.
type WorkerStat struct {
	ID           string
	Name         string
	HeartbeatAge time.Duration
	Draining     bool
	Ready        bool
}

// Signals wires the evaluator to the rest of the process. Every field is
// optional — a nil func means that signal plane does not exist in this
// role (e.g. no Workers on a standalone womd) and rules over it never
// produce violations.
type Signals struct {
	// Queue reports engine queue occupancy (queue_saturation, and the
	// service-wide shed_rate fallback when no tenants are configured).
	Queue func() (QueueStat, bool)
	// Tenants lists scheduler tenants (burn_rate and shed_rate subjects).
	Tenants func() []TenantStat
	// TenantSLO reports a tenant's windowed dequeue outcomes
	// (sched.Scheduler.WindowSLO) — the burn-rate numerator/denominator.
	TenantSLO func(tenant string, window time.Duration) (met, total uint64, ok bool)
	// Workers lists fleet members (heartbeat_stale).
	Workers func() []WorkerStat
	// ScrapeErrors is the coordinator's cumulative federation scrape
	// error count (scrape_errors).
	ScrapeErrors func() (uint64, bool)
	// SlowCaptures is the cumulative slow-job profile capture count
	// (slow_jobs).
	SlowCaptures func() (uint64, bool)
}

// Config configures an Engine.
type Config struct {
	// Rules is the rule set; zero value uses DefaultRules().
	Rules RulesConfig
	// Signals feeds the evaluator; see Signals.
	Signals Signals
	// Exemplars, when non-nil, annotates violations with the most recent
	// job/trace seen for the alert's subject.
	Exemplars *Exemplars
	// Logger receives state transitions; nil discards.
	Logger *slog.Logger
	// OnTransition, when non-nil, observes every alert lifecycle
	// transition — to is "pending", "firing", "flapped", or "resolved" —
	// as it happens; womd points it at the history store's alert journal
	// so transitions survive a restart. key is the alert's stable
	// rule+subject identity (the Restore dedup key). Called with the
	// engine's lock held: keep it fast and never call back into the
	// engine.
	OnTransition func(at time.Time, to string, key string, view AlertView)
	// MaxResolved bounds the resolved-alert history; default 64.
	MaxResolved int
	// Now is the clock, a test hook; nil means time.Now.
	Now func() time.Time
}

// counterSample is one prior observation of a cumulative counter, the
// baseline for rate rules.
type counterSample struct {
	v float64
	t time.Time
}

// alert is the internal lifecycle record; AlertView is its wire form.
type alert struct {
	id        string
	rule      string // emitted rule name (burn pairs: <base>-fast/-slow)
	ruleBase  string // config rule name, the Reload survival key
	subject   string
	severity  string
	state     State
	value     float64
	threshold float64
	startedAt time.Time // when the condition first held (pending began)
	firedAt   time.Time
	resolved  time.Time
	lastTrue  time.Time // most recent true evaluation, the damping anchor
	keep      time.Duration
	ann       map[string]string
}

// violation is one rule/subject condition found true by a collect pass.
type violation struct {
	rule      string
	base      string
	subject   string
	severity  string
	value     float64
	threshold float64
	forDur    time.Duration
	keep      time.Duration
	ann       map[string]string
}

func (v violation) key() string { return v.rule + "\x00" + v.subject }

// Engine evaluates rules against live signals on a fixed cadence and
// maintains the alert set. A nil *Engine is inert — every method no-ops —
// so womd can thread one pointer through regardless of -alerts.
type Engine struct {
	mu       sync.Mutex
	cfg      Config
	rules    []Rule
	interval time.Duration
	now      func() time.Time
	log      *slog.Logger

	seq       uint64
	active    map[string]*alert // keyed rule+subject
	resolvedQ []*alert          // bounded, newest last
	prev      map[string]counterSample

	evals         uint64
	pendingTotal  uint64
	firedTotal    uint64
	resolvedTotal uint64
	flapsTotal    uint64

	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewEngine builds an Engine; call Start to begin evaluating, or EvalOnce
// for deterministic manual passes (tests). Invalid rules return an error.
func NewEngine(cfg Config) (*Engine, error) {
	if len(cfg.Rules.Rules) == 0 {
		cfg.Rules = DefaultRules()
	} else if err := cfg.Rules.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxResolved <= 0 {
		cfg.MaxResolved = 64
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	return &Engine{
		cfg:      cfg,
		rules:    cfg.Rules.Rules,
		interval: cfg.Rules.Interval(),
		now:      now,
		log:      log,
		active:   make(map[string]*alert),
		prev:     make(map[string]counterSample),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Start launches the evaluation loop. No-op on nil or if already started.
func (e *Engine) Start() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	interval := e.interval
	e.mu.Unlock()
	go func() {
		defer close(e.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				e.EvalOnce()
			}
		}
	}()
}

// Stop halts the evaluation loop. No-op on nil or if never started.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.mu.Lock()
	started := e.started
	e.started = false
	e.mu.Unlock()
	if !started {
		return
	}
	close(e.stop)
	<-e.done
}

// EvalOnce runs one evaluation pass: collect violations from every rule,
// then advance the alert state machine. Safe to call concurrently with
// the background loop (tests drive it directly). No-op on nil.
func (e *Engine) EvalOnce() {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	e.applyLocked(now, e.collectLocked(now))
	e.evals++
}

// Reload swaps the rule set. Firing alerts whose rule survives (by name)
// keep their state and history; alerts whose rule disappeared are
// resolved (firing) or dropped (pending). The evaluation cadence is not
// changed by a reload — restart womd to change interval_ms.
func (e *Engine) Reload(rc RulesConfig) error {
	if e == nil {
		return fmt.Errorf("health: alerting not enabled")
	}
	if err := rc.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	keep := make(map[string]bool, len(rc.Rules))
	for _, r := range rc.Rules {
		keep[r.Name] = true
	}
	now := e.now()
	for key, a := range e.active {
		if keep[a.ruleBase] {
			continue
		}
		if a.state == StateFiring {
			a.annotate("resolved_reason", "rule removed by reload")
			e.resolveLocked(now, key, a)
		} else {
			delete(e.active, key)
		}
	}
	e.rules = rc.Rules
	return nil
}

// Restore reinstalls pending and firing alerts journaled by a previous
// process, so a restart does not silently drop active incidents while
// the evaluator rebuilds its windows. Views whose rule no longer exists
// in the current rule set are skipped, as are keys already active. The
// id sequence continues past the largest restored id so new alerts never
// collide with journaled ones. Restored alerts carry a restored=true
// annotation and behave exactly like live ones: the next evaluation pass
// either sustains them (condition still true, e.g. from backfilled SLO
// windows) or walks them through flap/keep-firing damping. Returns the
// number restored. No-op on nil.
func (e *Engine) Restore(views []AlertView) int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	byName := make(map[string]*Rule, len(e.rules))
	for i := range e.rules {
		byName[e.rules[i].Name] = &e.rules[i]
	}
	restored := 0
	for _, v := range views {
		if v.State != StatePending && v.State != StateFiring {
			continue
		}
		base := v.RuleBase
		if base == "" {
			base = v.Rule
		}
		r, ok := byName[base]
		if !ok {
			e.log.Info("alert not restored: rule gone", "alert", v.ID, "rule", v.Rule)
			continue
		}
		key := v.Rule + "\x00" + v.Subject
		if _, exists := e.active[key]; exists {
			continue
		}
		a := &alert{
			id:        v.ID,
			rule:      v.Rule,
			ruleBase:  base,
			subject:   v.Subject,
			severity:  v.Severity,
			state:     v.State,
			value:     v.Value,
			threshold: v.Threshold,
			startedAt: v.StartedAt,
			lastTrue:  now, // damping restarts from the restore instant
			keep:      r.keepDur(),
		}
		if v.FiredAt != nil {
			a.firedAt = *v.FiredAt
		}
		for k, val := range v.Annotations {
			a.annotate(k, val)
		}
		a.annotate("restored", "true")
		e.active[key] = a
		var n uint64
		if _, err := fmt.Sscanf(v.ID, "al-%d", &n); err == nil && n > e.seq {
			e.seq = n
		}
		restored++
		e.log.Info("alert restored", "alert", a.id, "rule", a.rule,
			"subject", a.subject, "state", a.state)
	}
	return restored
}

func (a *alert) annotate(k, v string) {
	if a.ann == nil {
		a.ann = make(map[string]string, 4)
	}
	a.ann[k] = v
}

// collectLocked evaluates every rule against the current signals.
func (e *Engine) collectLocked(now time.Time) []violation {
	var out []violation
	for i := range e.rules {
		r := &e.rules[i]
		switch r.Kind {
		case KindBurnRate:
			out = e.burnRate(out, r)
		case KindQueueSaturation:
			out = e.queueSaturation(out, r)
		case KindShedRate:
			out = e.shedRate(out, r, now)
		case KindHeartbeatStale:
			out = e.heartbeatStale(out, r)
		case KindScrapeErrors:
			out = e.counterRateRule(out, r, now, e.cfg.Signals.ScrapeErrors,
				"federation", "federation scraping workers' /metrics is failing",
				"scrape errors/s", nil)
		case KindSlowJobs:
			out = e.counterRateRule(out, r, now, e.cfg.Signals.SlowCaptures,
				"perfmon", "slow-job verdicts are being captured",
				"captures/s", []string{"slow", "service"})
		}
	}
	return out
}

func (e *Engine) burnRate(out []violation, r *Rule) []violation {
	sig := e.cfg.Signals
	if sig.Tenants == nil || sig.TenantSLO == nil {
		return out
	}
	budget := 1 - r.Objective
	for _, t := range sig.Tenants() {
		if r.Tenant != "" && r.Tenant != t.Name {
			continue
		}
		if t.DeadlineMs <= 0 {
			continue
		}
		burn := func(w time.Duration) (float64, bool) {
			met, total, ok := sig.TenantSLO(t.Name, w)
			if !ok || total == 0 {
				return 0, ok
			}
			return (1 - float64(met)/float64(total)) / budget, true
		}
		pair := func(short, long time.Duration, factor float64, label string) {
			if factor <= 0 {
				return
			}
			bs, okS := burn(short)
			bl, okL := burn(long)
			if !okS || !okL || bs <= factor || bl <= factor {
				return
			}
			v := violation{
				rule:      r.Name + "-" + label,
				base:      r.Name,
				subject:   t.Name,
				severity:  r.Severity,
				value:     min(bs, bl),
				threshold: factor,
				forDur:    r.forDur(),
				keep:      r.keepDur(),
				ann: map[string]string{
					"summary": fmt.Sprintf(
						"tenant %s is burning its error budget at %.1fx/%.1fx (%s/%s, objective %g)",
						t.Name, bs, bl, short, long, r.Objective),
					"pair": label,
				},
			}
			e.annotateExemplar(v.ann, "tenant:"+t.Name, "shed:tenant:"+t.Name, "service")
			out = append(out, v)
		}
		fs, fl := r.fastWindows()
		ss, sl := r.slowWindows()
		pair(fs, fl, r.FastBurn, "fast")
		pair(ss, sl, r.SlowBurn, "slow")
	}
	return out
}

func (e *Engine) queueSaturation(out []violation, r *Rule) []violation {
	if e.cfg.Signals.Queue == nil {
		return out
	}
	qs, ok := e.cfg.Signals.Queue()
	if !ok || qs.Cap <= 0 {
		return out
	}
	frac := float64(qs.Depth) / float64(qs.Cap)
	if frac < r.Threshold {
		return out
	}
	v := violation{
		rule: r.Name, base: r.Name, subject: "queue",
		severity: r.Severity, value: frac, threshold: r.Threshold,
		forDur: r.forDur(), keep: r.keepDur(),
		ann: map[string]string{
			"summary": fmt.Sprintf("job queue %d/%d (%.0f%% of capacity)",
				qs.Depth, qs.Cap, frac*100),
		},
	}
	e.annotateExemplar(v.ann, "shed", "service")
	return append(out, v)
}

func (e *Engine) shedRate(out []violation, r *Rule, now time.Time) []violation {
	sig := e.cfg.Signals
	if sig.Tenants != nil {
		for _, t := range sig.Tenants() {
			if r.Tenant != "" && r.Tenant != t.Name {
				continue
			}
			rate, ok := e.counterRate("shed\x00"+t.Name, float64(t.Sheds), now)
			if !ok || rate <= r.Threshold {
				continue
			}
			v := violation{
				rule: r.Name, base: r.Name, subject: t.Name,
				severity: r.Severity, value: rate, threshold: r.Threshold,
				forDur: r.forDur(), keep: r.keepDur(),
				ann: map[string]string{
					"summary": fmt.Sprintf("tenant %s shedding %.1f jobs/s", t.Name, rate),
				},
			}
			e.annotateExemplar(v.ann, "shed:tenant:"+t.Name, "shed", "service")
			out = append(out, v)
		}
		return out
	}
	if sig.Queue == nil {
		return out
	}
	qs, ok := sig.Queue()
	if !ok {
		return out
	}
	rate, ok := e.counterRate("shed\x00service", float64(qs.Rejected), now)
	if !ok || rate <= r.Threshold {
		return out
	}
	v := violation{
		rule: r.Name, base: r.Name, subject: "service",
		severity: r.Severity, value: rate, threshold: r.Threshold,
		forDur: r.forDur(), keep: r.keepDur(),
		ann: map[string]string{
			"summary": fmt.Sprintf("service rejecting %.1f jobs/s at admission", rate),
		},
	}
	e.annotateExemplar(v.ann, "shed", "service")
	return append(out, v)
}

func (e *Engine) heartbeatStale(out []violation, r *Rule) []violation {
	if e.cfg.Signals.Workers == nil {
		return out
	}
	stale := time.Duration(r.Threshold * float64(time.Second))
	for _, w := range e.cfg.Signals.Workers() {
		if w.Draining || w.HeartbeatAge < stale {
			continue
		}
		subject := w.Name
		if subject == "" {
			subject = w.ID
		}
		v := violation{
			rule: r.Name, base: r.Name, subject: subject,
			severity: r.Severity, value: w.HeartbeatAge.Seconds(), threshold: r.Threshold,
			forDur: r.forDur(), keep: r.keepDur(),
			ann: map[string]string{
				"summary": fmt.Sprintf("worker %s (%s) last heartbeat %.1fs ago",
					subject, w.ID, w.HeartbeatAge.Seconds()),
				"worker_id": w.ID,
			},
		}
		e.annotateExemplar(v.ann, "worker:"+w.ID, "worker:"+subject, "service")
		out = append(out, v)
	}
	return out
}

// counterRateRule handles the single-subject cumulative-counter kinds.
func (e *Engine) counterRateRule(out []violation, r *Rule, now time.Time,
	read func() (uint64, bool), subject, what, unit string, exemplarKeys []string) []violation {
	if read == nil {
		return out
	}
	val, ok := read()
	if !ok {
		return out
	}
	rate, ok := e.counterRate(r.Kind+"\x00"+subject, float64(val), now)
	if !ok || rate <= r.Threshold {
		return out
	}
	v := violation{
		rule: r.Name, base: r.Name, subject: subject,
		severity: r.Severity, value: rate, threshold: r.Threshold,
		forDur: r.forDur(), keep: r.keepDur(),
		ann: map[string]string{
			"summary": fmt.Sprintf("%s (%.2f %s)", what, rate, unit),
		},
	}
	if exemplarKeys == nil {
		exemplarKeys = []string{"service"}
	}
	e.annotateExemplar(v.ann, exemplarKeys...)
	return append(out, v)
}

// counterRate turns consecutive observations of a cumulative counter into
// a per-second rate. The first observation (or a counter reset) only
// records the baseline and reports ok=false.
func (e *Engine) counterRate(key string, val float64, now time.Time) (float64, bool) {
	prev, seen := e.prev[key]
	e.prev[key] = counterSample{v: val, t: now}
	if !seen || !now.After(prev.t) || val < prev.v {
		return 0, false
	}
	return (val - prev.v) / now.Sub(prev.t).Seconds(), true
}

// annotateExemplar attaches the first exemplar found under keys: the
// job/trace an operator should look at first.
func (e *Engine) annotateExemplar(ann map[string]string, keys ...string) {
	ex := e.cfg.Exemplars
	if ex == nil {
		return
	}
	for _, k := range keys {
		sample, ok := ex.Get(k)
		if !ok {
			continue
		}
		if sample.TraceID != "" {
			ann["exemplar_trace"] = sample.TraceID
		}
		if sample.JobID != "" {
			ann["exemplar_job"] = sample.JobID
			ann["trace_url"] = "/v1/jobs/" + sample.JobID + "/trace"
		}
		return
	}
}

// applyLocked advances the state machine: violations seen this pass
// create or sustain alerts; active alerts not seen either flap out
// (pending) or ride their keep_firing damper toward resolution (firing).
func (e *Engine) applyLocked(now time.Time, violations []violation) {
	seen := make(map[string]bool, len(violations))
	for _, v := range violations {
		key := v.key()
		seen[key] = true
		a, ok := e.active[key]
		if !ok {
			e.seq++
			a = &alert{
				id:        fmt.Sprintf("al-%06d", e.seq),
				rule:      v.rule,
				ruleBase:  v.base,
				subject:   v.subject,
				severity:  v.severity,
				state:     StatePending,
				startedAt: now,
			}
			e.active[key] = a
			e.pendingTotal++
			e.log.Info("alert pending", "alert", a.id, "rule", a.rule, "subject", a.subject)
			e.notifyLocked(now, "pending", key, a)
		}
		a.value = v.value
		a.threshold = v.threshold
		a.severity = v.severity
		a.keep = v.keep
		a.lastTrue = now
		for k, val := range v.ann {
			a.annotate(k, val)
		}
		if a.state == StatePending && now.Sub(a.startedAt) >= v.forDur {
			a.state = StateFiring
			a.firedAt = now
			e.firedTotal++
			e.log.Warn("alert firing", "alert", a.id, "rule", a.rule,
				"subject", a.subject, "severity", a.severity, "value", a.value)
			e.notifyLocked(now, "firing", key, a)
		}
	}
	for key, a := range e.active {
		if seen[key] {
			continue
		}
		switch a.state {
		case StatePending:
			// Condition cleared before for_s elapsed: a flap, not an alert.
			delete(e.active, key)
			e.flapsTotal++
			e.log.Info("alert flapped", "alert", a.id, "rule", a.rule, "subject", a.subject)
			e.notifyLocked(now, "flapped", key, a)
		case StateFiring:
			if now.Sub(a.lastTrue) >= a.keep {
				e.resolveLocked(now, key, a)
			}
		}
	}
}

// resolveLocked retires one firing alert into the bounded history.
func (e *Engine) resolveLocked(now time.Time, key string, a *alert) {
	delete(e.active, key)
	a.state = StateResolved
	a.resolved = now
	e.resolvedTotal++
	e.resolvedQ = append(e.resolvedQ, a)
	if over := len(e.resolvedQ) - e.cfg.MaxResolved; over > 0 {
		e.resolvedQ = append(e.resolvedQ[:0], e.resolvedQ[over:]...)
	}
	e.log.Info("alert resolved", "alert", a.id, "rule", a.rule, "subject", a.subject,
		"after", now.Sub(a.firedAt).Round(time.Millisecond))
	e.notifyLocked(now, "resolved", key, a)
}

// notifyLocked reports one lifecycle transition to the configured
// observer.
func (e *Engine) notifyLocked(at time.Time, to, key string, a *alert) {
	if e.cfg.OnTransition == nil {
		return
	}
	e.cfg.OnTransition(at, to, key, a.view())
}

// AlertView is an alert's wire form in GET /v1/alerts.
type AlertView struct {
	ID   string `json:"id"`
	Rule string `json:"rule"`
	// RuleBase is the config rule name behind Rule (burn-rate pairs emit
	// <base>-fast/-slow); Restore uses it to re-derive damping from the
	// current rule set.
	RuleBase  string  `json:"rule_base,omitempty"`
	Subject   string  `json:"subject"`
	Severity  string  `json:"severity"`
	State     State   `json:"state"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// StartedAt is when the condition first held; FiredAt/ResolvedAt are
	// zero until those transitions happen.
	StartedAt  time.Time  `json:"started_at"`
	FiredAt    *time.Time `json:"fired_at,omitempty"`
	ResolvedAt *time.Time `json:"resolved_at,omitempty"`
	// Annotations carry the human summary plus exemplar_job /
	// exemplar_trace / trace_url links into the tracing plane.
	Annotations map[string]string `json:"annotations,omitempty"`
}

func (a *alert) view() AlertView {
	v := AlertView{
		ID:        a.id,
		Rule:      a.rule,
		RuleBase:  a.ruleBase,
		Subject:   a.subject,
		Severity:  a.severity,
		State:     a.state,
		Value:     a.value,
		Threshold: a.threshold,
		StartedAt: a.startedAt,
	}
	if !a.firedAt.IsZero() {
		t := a.firedAt
		v.FiredAt = &t
	}
	if !a.resolved.IsZero() {
		t := a.resolved
		v.ResolvedAt = &t
	}
	if len(a.ann) > 0 {
		v.Annotations = make(map[string]string, len(a.ann))
		for k, val := range a.ann {
			v.Annotations[k] = val
		}
	}
	return v
}

// Alerts snapshots the alert set: firing first, then pending (each group
// by id), then resolved history newest-first. Nil on a nil engine.
func (e *Engine) Alerts() []AlertView {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var firing, pending []AlertView
	for _, a := range e.active {
		if a.state == StateFiring {
			firing = append(firing, a.view())
		} else {
			pending = append(pending, a.view())
		}
	}
	byID := func(s []AlertView) {
		sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
	}
	byID(firing)
	byID(pending)
	out := append(firing, pending...)
	for i := len(e.resolvedQ) - 1; i >= 0; i-- {
		out = append(out, e.resolvedQ[i].view())
	}
	return out
}

// Alert looks one alert up by id across active and resolved sets.
func (e *Engine) Alert(id string) (AlertView, bool) {
	if e == nil {
		return AlertView{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, a := range e.active {
		if a.id == id {
			return a.view(), true
		}
	}
	for _, a := range e.resolvedQ {
		if a.id == id {
			return a.view(), true
		}
	}
	return AlertView{}, false
}
