package health

import (
	"sync"
	"time"
)

// Exemplar is the most recent job observed for a subject: the concrete
// instance an alert annotation points at, linking the aggregate signal
// back to one distributed trace (GET /v1/jobs/{id}/trace).
type Exemplar struct {
	JobID   string
	TraceID string
	At      time.Time
}

// maxExemplarSubjects bounds the subject map; subjects are tenants,
// workers, and a few fixed planes, so the cap exists only as a backstop
// against unbounded worker-id churn.
const maxExemplarSubjects = 4096

// Exemplars is a last-job-per-subject store fed by the engine on every
// job settle (subjects "service", "tenant:<name>", "worker:<id>", "slow",
// "shed", "shed:tenant:<name>") and read by the alert evaluator to
// annotate violations. A nil *Exemplars is inert: Observe and Get cost
// one pointer check, which is the whole -alerts=false hot-path tax.
type Exemplars struct {
	mu sync.Mutex
	m  map[string]Exemplar
}

// NewExemplars builds an empty store.
func NewExemplars() *Exemplars {
	return &Exemplars{m: make(map[string]Exemplar, 16)}
}

// Observe records the latest job seen for subject. No-op on nil.
func (e *Exemplars) Observe(subject, jobID, traceID string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	if _, ok := e.m[subject]; ok || len(e.m) < maxExemplarSubjects {
		e.m[subject] = Exemplar{JobID: jobID, TraceID: traceID, At: time.Now()}
	}
	e.mu.Unlock()
}

// Get returns the latest exemplar for subject, if any. No-op on nil.
func (e *Exemplars) Get(subject string) (Exemplar, bool) {
	if e == nil {
		return Exemplar{}, false
	}
	e.mu.Lock()
	ex, ok := e.m[subject]
	e.mu.Unlock()
	return ex, ok
}
