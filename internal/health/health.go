// Package health is womd's SLO-evaluation and alerting engine: it turns
// the signals the rest of the system already exposes — per-tenant
// windowed SLO attainment (internal/sched), queue occupancy and shed
// counters (internal/engine), worker heartbeats and federation scrape
// errors (internal/cluster), slow-job profile captures (perfmon) — into
// alerts with a full lifecycle.
//
// The centerpiece is Google-SRE-style multi-window burn-rate evaluation:
// a tenant's error budget is 1−objective, its burn rate over a window is
// (1 − attainment(window)) / (1 − objective), and a rule fires only when
// both a short and a long window burn faster than the rule's factor — the
// short window makes detection fast, the long window keeps a momentary
// blip from paging. Each burn_rate rule evaluates two such pairs: a fast
// pair (default 1m/5m at 14×) that catches budget-destroying incidents in
// minutes, and a slow pair (default 5m/30m at 3×) for sustained
// degradation. Structural rules (queue_saturation, shed_rate,
// heartbeat_stale, scrape_errors, slow_jobs) watch the planes an SLO
// ratio cannot see.
//
// Every alert walks pending → firing → resolved: a violation must hold
// for the rule's `for_s` before it fires (a pending alert that clears
// first is dropped and counted as a flap), and a firing alert survives
// `keep_firing_s` of healthy evaluations before resolving (flap damping).
// Alerts dedup by rule+subject, and their annotations carry an exemplar
// job/trace id (Exemplars, fed by the engine) linking straight into
// GET /v1/jobs/{id}/trace. Served as GET /v1/alerts and womd_alert_*
// metric families; `womtool top` renders the live view. Everything is
// nil-safe in the internal/span style, so -alerts=false costs one pointer
// check on the job hot path. See DESIGN.md §15.
package health

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// State is an alert's lifecycle position.
type State string

const (
	// StatePending: the condition is true but has not yet held for the
	// rule's `for_s`.
	StatePending State = "pending"
	// StateFiring: the condition held long enough; the alert is live.
	StateFiring State = "firing"
	// StateResolved: a previously firing alert whose condition stayed
	// clear for `keep_firing_s`.
	StateResolved State = "resolved"
)

// Rule kinds. Each kind reads one signal plane; see Rule.
const (
	KindBurnRate        = "burn_rate"
	KindQueueSaturation = "queue_saturation"
	KindShedRate        = "shed_rate"
	KindHeartbeatStale  = "heartbeat_stale"
	KindScrapeErrors    = "scrape_errors"
	KindSlowJobs        = "slow_jobs"
)

// Default burn-rate windows and factors, per the SRE-workbook pairing.
const (
	defaultFastShortS = 60
	defaultFastLongS  = 300
	defaultSlowShortS = 300
	defaultSlowLongS  = 1800
	defaultFastBurn   = 14
	defaultSlowBurn   = 3
)

// Rule is one alerting rule, the unit of the -alert-rules JSON file.
//
// Kind selects the signal and the meaning of Threshold:
//
//   - burn_rate: per tenant with a deadline, fire when both windows of a
//     pair burn the error budget (1−Objective) faster than the pair's
//     factor. Emits alerts named "<name>-fast" / "<name>-slow" with the
//     tenant as subject. Threshold is unused.
//   - queue_saturation: queued depth / capacity ≥ Threshold
//     (default 0.9). Subject "queue".
//   - shed_rate: per-tenant sheds per second > Threshold (default 1).
//   - heartbeat_stale: a registered, non-draining worker's last heartbeat
//     is older than Threshold seconds (default 15). Subject is the
//     worker's fleet name.
//   - scrape_errors: federation scrape errors per second > Threshold
//     (default 0, i.e. any growth). Subject "federation".
//   - slow_jobs: slow-job profile captures per second > Threshold
//     (default 0). Subject "perfmon".
//
// Rate kinds compare counter deltas between consecutive evaluations; the
// first evaluation only establishes the baseline.
type Rule struct {
	// Name identifies the rule; unique within a config. Burn-rate rules
	// emit per-pair alerts as <name>-fast and <name>-slow.
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Severity is free-form operator routing ("warn" default, "page").
	Severity string `json:"severity,omitempty"`
	// ForS is how long (seconds) the condition must hold before the alert
	// leaves pending; 0 fires on the first true evaluation.
	ForS float64 `json:"for_s,omitempty"`
	// KeepFiringS is the flap damper: a firing alert resolves only after
	// this many seconds of consecutively clear evaluations.
	KeepFiringS float64 `json:"keep_firing_s,omitempty"`
	// Tenant restricts a burn_rate/shed_rate rule to one tenant; empty
	// covers all.
	Tenant string `json:"tenant,omitempty"`

	// Threshold's unit depends on Kind; see above.
	Threshold float64 `json:"threshold,omitempty"`

	// burn_rate knobs. Objective is the SLO target in (0,1), e.g. 0.99.
	// FastBurn/SlowBurn are the pair factors; 0 keeps the default, a
	// negative value disables that pair. Window fields are seconds.
	Objective  float64 `json:"objective,omitempty"`
	FastBurn   float64 `json:"fast_burn,omitempty"`
	SlowBurn   float64 `json:"slow_burn,omitempty"`
	FastShortS float64 `json:"fast_short_s,omitempty"`
	FastLongS  float64 `json:"fast_long_s,omitempty"`
	SlowShortS float64 `json:"slow_short_s,omitempty"`
	SlowLongS  float64 `json:"slow_long_s,omitempty"`
}

// forDur / keepDur are the rule's durations as time.Durations.
func (r *Rule) forDur() time.Duration  { return time.Duration(r.ForS * float64(time.Second)) }
func (r *Rule) keepDur() time.Duration { return time.Duration(r.KeepFiringS * float64(time.Second)) }

func (r *Rule) fastWindows() (short, long time.Duration) {
	return time.Duration(r.FastShortS) * time.Second, time.Duration(r.FastLongS) * time.Second
}

func (r *Rule) slowWindows() (short, long time.Duration) {
	return time.Duration(r.SlowShortS) * time.Second, time.Duration(r.SlowLongS) * time.Second
}

// RulesConfig is the -alert-rules file: evaluation cadence plus rules.
type RulesConfig struct {
	// IntervalMs spaces evaluation passes; default 5000.
	IntervalMs int64  `json:"interval_ms,omitempty"`
	Rules      []Rule `json:"rules"`
}

// Interval is the evaluation cadence with the default applied.
func (c RulesConfig) Interval() time.Duration {
	if c.IntervalMs <= 0 {
		return 5 * time.Second
	}
	return time.Duration(c.IntervalMs) * time.Millisecond
}

var ruleKinds = map[string]bool{
	KindBurnRate:        true,
	KindQueueSaturation: true,
	KindShedRate:        true,
	KindHeartbeatStale:  true,
	KindScrapeErrors:    true,
	KindSlowJobs:        true,
}

// Validate checks the config and fills per-kind defaults in place.
func (c *RulesConfig) Validate() error {
	if len(c.Rules) == 0 {
		return fmt.Errorf("health: no rules configured")
	}
	seen := make(map[string]bool, len(c.Rules))
	for i := range c.Rules {
		r := &c.Rules[i]
		if r.Name == "" {
			return fmt.Errorf("health: rule %d has no name", i)
		}
		if strings.ContainsAny(r.Name, "\"\\\n") {
			return fmt.Errorf("health: rule %q: name may not contain quotes or newlines", r.Name)
		}
		if seen[r.Name] {
			return fmt.Errorf("health: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		if !ruleKinds[r.Kind] {
			return fmt.Errorf("health: rule %q: unknown kind %q", r.Name, r.Kind)
		}
		if r.Severity == "" {
			r.Severity = "warn"
		}
		if r.ForS < 0 || r.KeepFiringS < 0 {
			return fmt.Errorf("health: rule %q: negative duration", r.Name)
		}
		switch r.Kind {
		case KindBurnRate:
			if r.Objective <= 0 || r.Objective >= 1 {
				return fmt.Errorf("health: rule %q: objective must be in (0,1), got %g", r.Name, r.Objective)
			}
			if r.FastBurn == 0 {
				r.FastBurn = defaultFastBurn
			}
			if r.SlowBurn == 0 {
				r.SlowBurn = defaultSlowBurn
			}
			if r.FastShortS == 0 {
				r.FastShortS = defaultFastShortS
			}
			if r.FastLongS == 0 {
				r.FastLongS = defaultFastLongS
			}
			if r.SlowShortS == 0 {
				r.SlowShortS = defaultSlowShortS
			}
			if r.SlowLongS == 0 {
				r.SlowLongS = defaultSlowLongS
			}
			if r.FastShortS > r.FastLongS || r.SlowShortS > r.SlowLongS {
				return fmt.Errorf("health: rule %q: a pair's short window must not exceed its long window", r.Name)
			}
		case KindQueueSaturation:
			if r.Threshold == 0 {
				r.Threshold = 0.9
			}
			if r.Threshold < 0 || r.Threshold > 1 {
				return fmt.Errorf("health: rule %q: saturation threshold must be in [0,1], got %g", r.Name, r.Threshold)
			}
		case KindShedRate:
			if r.Threshold == 0 {
				r.Threshold = 1
			}
			if r.Threshold < 0 {
				return fmt.Errorf("health: rule %q: negative threshold", r.Name)
			}
		case KindHeartbeatStale:
			if r.Threshold == 0 {
				r.Threshold = 15
			}
			if r.Threshold < 0 {
				return fmt.Errorf("health: rule %q: negative threshold", r.Name)
			}
		case KindScrapeErrors, KindSlowJobs:
			if r.Threshold < 0 {
				return fmt.Errorf("health: rule %q: negative threshold", r.Name)
			}
		}
	}
	return nil
}

// ParseRules decodes and validates a rules config; unknown fields are
// rejected so typos fail loudly at startup.
func ParseRules(data []byte) (RulesConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c RulesConfig
	if err := dec.Decode(&c); err != nil {
		return RulesConfig{}, fmt.Errorf("health: parse rules: %w", err)
	}
	if err := c.Validate(); err != nil {
		return RulesConfig{}, err
	}
	return c, nil
}

// LoadRules reads a rules config from a file.
func LoadRules(path string) (RulesConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RulesConfig{}, fmt.Errorf("health: %w", err)
	}
	return ParseRules(data)
}

// DefaultRules is the built-in rule set used when -alert-rules is not
// given: SRE-workbook burn rates on every tenant with a deadline, plus
// structural rules over each signal plane. Rules whose signal plane is
// absent (no tenants, no cluster) simply never produce violations.
func DefaultRules() RulesConfig {
	c := RulesConfig{
		IntervalMs: 5000,
		Rules: []Rule{
			{Name: "slo-burn", Kind: KindBurnRate, Severity: "page",
				Objective: 0.99, KeepFiringS: 60},
			{Name: "queue-saturation", Kind: KindQueueSaturation, Severity: "warn",
				ForS: 10, KeepFiringS: 30},
			{Name: "shed-rate", Kind: KindShedRate, Severity: "warn",
				ForS: 10, KeepFiringS: 30},
			{Name: "worker-heartbeat-stale", Kind: KindHeartbeatStale, Severity: "page",
				KeepFiringS: 30},
			{Name: "fleet-scrape-errors", Kind: KindScrapeErrors, Severity: "warn",
				ForS: 10, KeepFiringS: 60},
			{Name: "slow-jobs", Kind: KindSlowJobs, Severity: "warn",
				KeepFiringS: 60},
		},
	}
	if err := c.Validate(); err != nil {
		panic("health: default rules invalid: " + err.Error())
	}
	return c
}
