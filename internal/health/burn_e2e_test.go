package health_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"womcpcm/internal/engine"
	"womcpcm/internal/health"
	"womcpcm/internal/loadgen"
	"womcpcm/internal/sched"
	"womcpcm/internal/sim"
	"womcpcm/internal/span"
)

// TestMMPPOverloadFiresFastBurnAlert is the burn-rate acceptance e2e: an
// MMPP burst of interactive jobs whose queue wait blows the tenant deadline
// fires the fast-burn alert (served over /v1/alerts, annotated with an
// exemplar trace resolvable via the jobs API), and a calm recovery phase
// that refills the error budget resolves it.
//
// Timing is deterministic: each burst arrival back-dates its admission
// past the deadline — the queue wait an open-loop overload would have
// produced — so attainment does not depend on scheduler timing.
func TestMMPPOverloadFiresFastBurnAlert(t *testing.T) {
	s := sched.New(sched.Config{
		MaxDepth: 4096,
		Tenants: []sched.TenantClass{
			{Name: "interactive", Weight: 4, DeadlineMs: 50},
			{Name: "batch", Weight: 1},
		},
	})
	ex := health.NewExemplars()
	mgr := engine.New(engine.Config{
		Workers:   2,
		Queue:     engine.NewTenantQueue(s),
		Exemplars: ex,
		Tracer:    span.New(span.Config{Service: "burn-e2e", Seed: 11}),
		Execute: func(ctx context.Context, job *engine.Job) (*sim.Result, error) {
			return &sim.Result{}, nil // execution cost is not under test
		},
	})
	defer mgr.Shutdown(context.Background()) //nolint:errcheck

	he, err := health.NewEngine(health.Config{
		Rules: health.RulesConfig{Rules: []health.Rule{{
			Name:      "interactive-slo",
			Kind:      health.KindBurnRate,
			Tenant:    "interactive",
			Objective: 0.5,
			FastBurn:  1.5,
			SlowBurn:  50, // keep the slow pair quiet; the fast pair is under test
		}}},
		Signals: health.Signals{
			Tenants: func() []health.TenantStat {
				views := s.Views()
				out := make([]health.TenantStat, 0, len(views))
				for _, v := range views {
					out = append(out, health.TenantStat{
						Name: v.Name, Depth: v.Depth,
						Sheds: v.Sheds, DeadlineMs: v.DeadlineMs,
					})
				}
				return out
			},
			TenantSLO: s.WindowSLO,
		},
		Exemplars: ex,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(engine.NewServer(mgr, engine.WithAlerts(he)))
	defer ts.Close()

	submit := func(i int, admitted time.Time) {
		t.Helper()
		_, err := mgr.Submit(context.Background(), engine.JobRequest{
			Experiment: "fig5",
			Params: sim.Params{
				Requests: 20000, Seed: int64(1000 + i),
				Bench: []string{"qsort"}, Ranks: 4,
			},
			Tenant:       "interactive",
			AdmittedAtMs: admitted.UnixMilli(),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	drain := func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for s.Depth() > 0 || mgr.Metrics().Running.Load() > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("queue never drained (depth %d)", s.Depth())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	fetchAlert := func(state health.State) *health.AlertView {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/alerts")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Alerts []health.AlertView `json:"alerts"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		for i, a := range body.Alerts {
			if a.Rule == "interactive-slo-fast" && a.Subject == "interactive" && a.State == state {
				return &body.Alerts[i]
			}
		}
		return nil
	}

	// Overload: an MMPP2 burst's arrivals all miss the 50ms queue-wait
	// deadline. The seeded process makes the schedule reproducible; the
	// top-up loop guards against a draw landing in the calm state.
	rng := rand.New(rand.NewSource(7))
	process := loadgen.MMPP2{RatePerS: 2, BurstRatePerS: 80, MeanCalmS: 0.02, MeanBurstS: 5}
	burst := process.Arrivals(time.Second, rng)
	for len(burst) < 20 {
		burst = append(burst, process.Arrivals(time.Second, rng)...)
	}
	backDated := time.Now().Add(-10 * time.Second)
	for i := range burst {
		submit(i, backDated)
	}
	drain()
	he.EvalOnce()
	fired := fetchAlert(health.StateFiring)
	if fired == nil {
		t.Fatalf("no firing interactive-slo-fast alert after %d missed deadlines", len(burst))
	}
	if fired.Annotations["exemplar_trace"] == "" || fired.Annotations["trace_url"] == "" {
		t.Fatalf("firing alert lacks exemplar annotations: %v", fired.Annotations)
	}
	resp, err := http.Get(ts.URL + fired.Annotations["trace_url"])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", fired.Annotations["trace_url"], resp.StatusCode)
	}

	// Recovery: calm-rate arrivals admitted on time refill the budget —
	// 5× the misses puts windowed attainment at ~0.83, well above the
	// 1 − objective·FastBurn = 0.25 floor the rule needs.
	calm := loadgen.Poisson{RatePerS: 300}.Arrivals(time.Second, rng)
	for len(calm) < 5*len(burst) {
		calm = append(calm, loadgen.Poisson{RatePerS: 300}.Arrivals(time.Second, rng)...)
	}
	for i := range calm {
		submit(len(burst)+i, time.Now())
	}
	drain()
	he.EvalOnce()
	resolved := fetchAlert(health.StateResolved)
	if resolved == nil {
		t.Fatalf("alert did not resolve after %d on-time dequeues", len(calm))
	}
	if resolved.ID != fired.ID {
		t.Fatalf("resolved alert %s is not the fired alert %s", resolved.ID, fired.ID)
	}
	if resolved.Annotations["exemplar_trace"] == "" {
		t.Fatalf("resolved alert lost its exemplar: %v", resolved.Annotations)
	}
}
