package health

import (
	"testing"
	"time"
)

func TestExemplars(t *testing.T) {
	ex := NewExemplars()
	if _, ok := ex.Get("service"); ok {
		t.Fatal("empty store returned an exemplar")
	}
	ex.Observe("service", "j-0001", "aaaa")
	ex.Observe("service", "j-0002", "bbbb")
	got, ok := ex.Get("service")
	if !ok || got.JobID != "j-0002" || got.TraceID != "bbbb" {
		t.Fatalf("Get = %+v ok=%v, want latest j-0002", got, ok)
	}
	if got.At.IsZero() || time.Since(got.At) > time.Minute {
		t.Fatalf("exemplar timestamp not set: %v", got.At)
	}
}

// TestNilExemplarsZeroAlloc pins the -alerts=false contract: with no
// Exemplars configured, the engine's per-job observe call is one nil
// check and allocates nothing.
func TestNilExemplarsZeroAlloc(t *testing.T) {
	var ex *Exemplars
	allocs := testing.AllocsPerRun(1000, func() {
		ex.Observe("tenant:interactive", "j-0001", "aaaa")
		if _, ok := ex.Get("tenant:interactive"); ok {
			t.Fatal("nil store returned an exemplar")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil Exemplars allocated %g per op, want 0", allocs)
	}
}

// BenchmarkExemplarsDisabled is the hot-path number -alerts=false is
// pinned to: compare against BenchmarkExemplarsEnabled.
func BenchmarkExemplarsDisabled(b *testing.B) {
	var ex *Exemplars
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex.Observe("tenant:interactive", "j-0001", "aaaa")
	}
}

func BenchmarkExemplarsEnabled(b *testing.B) {
	ex := NewExemplars()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex.Observe("tenant:interactive", "j-0001", "aaaa")
	}
}
