package memctrl

import (
	"reflect"
	"testing"

	"womcpcm/internal/pcm"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

// Hand-computable service durations with the default timing (27/150/40/150,
// column 15, burst 5) under the write-through row-buffer policy:
//
//	read, row-buffer hit            column+burst            = 20 ns
//	read, activation                rowRead+column+burst    = 47 ns
//	write to open row, WOM fast     reset+column+burst      = 60 ns
//	write to open row, slow         rowWrite+column+burst   = 170 ns
//	write w/ activation, WOM fast   rowRead+60              = 87 ns
//	write w/ activation, slow       rowRead+170             = 197 ns
const (
	tReadHit   = 20
	tReadMiss  = 47
	tWriteFast = 60
	tWriteSlow = 170
	tActFast   = 87
	tActSlow   = 197
)

// testGeometry: 2 ranks × 4 banks, 64 rows, 128-byte rows — small enough to
// hand-compute addresses.
func testGeometry() pcm.Geometry {
	return pcm.Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 64, ColsPerRow: 16, BitsPerCol: 8, Devices: 8}
}

func testConfig(wom *WOMConfig, refresh *RefreshConfig, cache *CacheConfig) Config {
	return Config{
		Geometry: testGeometry(),
		Timing:   pcm.DefaultTiming(),
		WOM:      wom,
		Refresh:  refresh,
		Cache:    cache,
	}
}

// freshWOM returns the WOM config with factory-erased arrays, which the
// hand-computed latency tests assume.
func freshWOM() *WOMConfig { return &WOMConfig{Rewrites: 2, FreshArrays: true} }

// addrOf composes the byte address of (rank, bank, row).
func addrOf(t *testing.T, g pcm.Geometry, rank, bank, row int) uint64 {
	t.Helper()
	m, err := pcm.NewAddrMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	return m.Unmap(pcm.Location{Rank: rank, Bank: bank, Row: row})
}

func runTrace(t *testing.T, cfg Config, recs []trace.Record) *stats.Run {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.Run(trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if c.inFlight != 0 {
		t.Fatalf("%d requests still in flight after Run", c.inFlight)
	}
	return run
}

func TestConfigValidation(t *testing.T) {
	if err := testConfig(nil, nil, nil).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		testConfig(nil, DefaultRefresh(), nil),        // refresh without WOM
		testConfig(DefaultWOM(), nil, DefaultCache()), // cache plus main WOM
		testConfig(&WOMConfig{Rewrites: 0}, nil, nil), // k < 1
		testConfig(DefaultWOM(), &RefreshConfig{ThresholdPct: 120, TableSize: 5}, nil),
		testConfig(DefaultWOM(), &RefreshConfig{ThresholdPct: 10, TableSize: 0}, nil),
		testConfig(nil, nil, &CacheConfig{Rewrites: 0, TableSize: 5}),
		testConfig(nil, nil, &CacheConfig{Rewrites: 2, TableSize: 0}),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	neg := testConfig(nil, nil, nil)
	neg.PausePenalty = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative pause penalty validated")
	}
}

func TestArchNames(t *testing.T) {
	tests := []struct {
		cfg  Config
		want string
	}{
		{testConfig(nil, nil, nil), "PCM w/o WOM-code"},
		{testConfig(DefaultWOM(), nil, nil), "WOM-code PCM"},
		{testConfig(&WOMConfig{Rewrites: 2, Org: HiddenPage}, nil, nil), "WOM-code PCM (hidden-page)"},
		{testConfig(DefaultWOM(), DefaultRefresh(), nil), "PCM-refresh"},
		{testConfig(nil, nil, DefaultCache()), "WCPCM"},
	}
	for _, tt := range tests {
		if got := tt.cfg.ArchName(); got != tt.want {
			t.Errorf("ArchName = %q, want %q", got, tt.want)
		}
	}
	if WideColumn.String() != "wide-column" || HiddenPage.String() != "hidden-page" {
		t.Error("organization names")
	}
}

// TestBaselineSingleAccessLatencies: on an idle bank a read activates its
// row (47 ns) and a write activates and programs the array (197 ns).
func TestBaselineSingleAccessLatencies(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{
		{Op: trace.Read, Addr: addrOf(t, g, 0, 0, 1), Time: 0},
		{Op: trace.Write, Addr: addrOf(t, g, 0, 1, 2), Time: 1000},
	}
	run := runTrace(t, testConfig(nil, nil, nil), recs)
	if got := run.ReadLatency.Mean(); got != tReadMiss {
		t.Errorf("read latency = %v, want %d", got, tReadMiss)
	}
	if got := run.WriteLatency.Mean(); got != tActSlow {
		t.Errorf("write latency = %v, want %d", got, tActSlow)
	}
	if run.Classes[stats.ReadArray] != 1 || run.Classes[stats.WriteBaseline] != 1 {
		t.Errorf("classes = %v", run.Classes)
	}
	if run.SimulatedNs != 1000+tActSlow {
		t.Errorf("simulated ns = %d, want %d", run.SimulatedNs, 1000+tActSlow)
	}
}

// TestRowBufferHit: a second access to the open row costs only the column
// access and burst.
func TestRowBufferHit(t *testing.T) {
	g := testGeometry()
	addr := addrOf(t, g, 0, 0, 1)
	recs := []trace.Record{
		{Op: trace.Read, Addr: addr, Time: 0},
		{Op: trace.Read, Addr: addr + 64, Time: 1000}, // same row, next line
	}
	run := runTrace(t, testConfig(nil, nil, nil), recs)
	if run.ReadLatency.Max != tReadMiss || run.ReadLatency.Min != tReadHit {
		t.Errorf("read latencies = [%d, %d], want [%d, %d]",
			run.ReadLatency.Min, run.ReadLatency.Max, tReadHit, tReadMiss)
	}
	if run.Classes[stats.ReadRowHit] != 1 || run.Classes[stats.ReadArray] != 1 {
		t.Errorf("classes = %v", run.Classes)
	}
}

// TestBankQueueing: writes to one bank serialize FIFO; an independent bank
// proceeds in parallel.
func TestBankQueueing(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 1), Time: 0},  // done at 197
		{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 2), Time: 10}, // starts 197, +197 → done 394
		{Op: trace.Write, Addr: addrOf(t, g, 0, 1, 3), Time: 10}, // parallel bank: 197
	}
	run := runTrace(t, testConfig(nil, nil, nil), recs)
	want := (197.0 + 384.0 + 197.0) / 3
	if got := run.WriteLatency.Mean(); got != want {
		t.Errorf("write latency = %v, want %v", got, want)
	}
	if run.WriteLatency.Max != 384 {
		t.Errorf("max write latency = %d, want 384", run.WriteLatency.Max)
	}
	if run.Classes[stats.WriteBaseline] != 3 {
		t.Errorf("baseline writes = %d, want 3", run.Classes[stats.WriteBaseline])
	}
}

// TestReadBlockedByWrite reproduces the Fig. 5(b) mechanism: a read queued
// behind a slow write waits it out — far less with the WOM-code.
func TestReadBlockedByWrite(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 1), Time: 0},
		{Op: trace.Read, Addr: addrOf(t, g, 0, 0, 2), Time: 10},
	}
	base := runTrace(t, testConfig(nil, nil, nil), recs)
	// Write completes at 197; the read then activates: 197+47−10 = 234.
	if got := base.ReadLatency.Mean(); got != 234 {
		t.Errorf("baseline blocked read latency = %v, want 234", got)
	}
	wom := runTrace(t, testConfig(freshWOM(), nil, nil), recs)
	// The write is now 87 ns: 87+47−10 = 124.
	if got := wom.ReadLatency.Mean(); got != 124 {
		t.Errorf("WOM blocked read latency = %v, want 124", got)
	}
}

// alternating returns n writes that ping-pong between two rows of bank 0,
// forcing a write-back on every access after the first.
func alternating(t *testing.T, g pcm.Geometry, n int, spacing int64) []trace.Record {
	t.Helper()
	a := addrOf(t, g, 0, 0, 5)
	b := addrOf(t, g, 0, 0, 9)
	var recs []trace.Record
	for i := 0; i < n; i++ {
		addr := a
		if i%2 == 1 {
			addr = b
		}
		recs = append(recs, trace.Record{Op: trace.Write, Addr: addr, Time: int64(i) * spacing})
	}
	return recs
}

// TestWOMWriteSequence: with k=2 and fresh arrays, each row independently
// follows fast, fast, α, fast, α…; alternating 8 writes over two rows gives
// 6 fast and 2 α writes, every one paying an activation (row ping-pong).
func TestWOMWriteSequence(t *testing.T) {
	g := testGeometry()
	recs := alternating(t, g, 8, 1000)
	run := runTrace(t, testConfig(freshWOM(), nil, nil), recs)
	if run.Classes[stats.WriteFast] != 6 || run.Classes[stats.WriteAlpha] != 2 {
		t.Fatalf("writes fast=%d α=%d, want 6/2",
			run.Classes[stats.WriteFast], run.Classes[stats.WriteAlpha])
	}
	want := (6*87.0 + 2*197) / 8
	if got := run.WriteLatency.Mean(); got != want {
		t.Errorf("write latency = %v, want %v", got, want)
	}
	if f := run.AlphaFraction(); f != 0.25 {
		t.Errorf("alpha fraction = %v, want 0.25", f)
	}
}

// TestWOMNormalizedGain: on a write-dominated pattern the normalized WOM
// latency sits above the pure §3.2 bound (activation and column overheads
// do not shrink) but clearly below baseline.
func TestWOMNormalizedGain(t *testing.T) {
	g := testGeometry()
	recs := alternating(t, g, 200, 1000)
	base := runTrace(t, testConfig(nil, nil, nil), recs)
	wom := runTrace(t, testConfig(freshWOM(), nil, nil), recs)
	norm := wom.WriteLatency.Mean() / base.WriteLatency.Mean()
	bound := (2 - 1 + 3.75) / (2 * 3.75) // 0.6333
	if norm < bound-1e-9 {
		t.Errorf("normalized write latency %v beat the analytic bound %v", norm, bound)
	}
	if norm > 0.80 {
		t.Errorf("normalized write latency %v too close to baseline; WOM path broken?", norm)
	}
}

// TestHiddenPageCostsOneBurstMore: same trace, hidden-page organization
// pays one extra burst per access.
func TestHiddenPageCostsOneBurstMore(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 1), Time: 0},
		{Op: trace.Read, Addr: addrOf(t, g, 0, 1, 2), Time: 1000},
	}
	wide := runTrace(t, testConfig(&WOMConfig{Rewrites: 2, Org: WideColumn, FreshArrays: true}, nil, nil), recs)
	hidden := runTrace(t, testConfig(&WOMConfig{Rewrites: 2, Org: HiddenPage, FreshArrays: true}, nil, nil), recs)
	if hidden.WriteLatency.Mean() != wide.WriteLatency.Mean()+5 {
		t.Errorf("hidden-page write = %v, wide-column write = %v, want +5",
			hidden.WriteLatency.Mean(), wide.WriteLatency.Mean())
	}
	if hidden.ReadLatency.Mean() != wide.ReadLatency.Mean()+5 {
		t.Errorf("hidden-page read = %v, wide-column read = %v, want +5",
			hidden.ReadLatency.Mean(), wide.ReadLatency.Mean())
	}
}

// TestRefreshEliminatesAlpha: with long idle gaps between conflicting
// writes, every at-limit row is refreshed before its next write-back, so
// no α-write reaches the critical path (§3.2's ideal S× case).
func TestRefreshEliminatesAlpha(t *testing.T) {
	g := testGeometry()
	recs := alternating(t, g, 10, 10000)
	run := runTrace(t, testConfig(freshWOM(), DefaultRefresh(), nil), recs)
	if run.Classes[stats.WriteAlpha] != 0 {
		t.Fatalf("α-writes = %d, want 0 with ample idle time", run.Classes[stats.WriteAlpha])
	}
	if run.Classes[stats.WriteFast] != 10 {
		t.Fatalf("fast writes = %d, want 10", run.Classes[stats.WriteFast])
	}
	if got := run.WriteLatency.Mean(); got != tActFast {
		t.Errorf("write latency = %v, want %d", got, tActFast)
	}
	if run.Refreshes == 0 {
		t.Error("no refreshes recorded")
	}
}

// TestRefreshSkipsBusyRank: a rank with traffic in flight at the tick is
// not refreshed, so the at-limit row's next write-back stays an α-write;
// without the tick-time traffic the refresh keeps everything fast.
func TestRefreshSkipsBusyRank(t *testing.T) {
	g := testGeometry()
	a := addrOf(t, g, 0, 0, 5)
	other := addrOf(t, g, 0, 1, 3)
	cfg := testConfig(freshWOM(), DefaultRefresh(), nil)

	warmup := []trace.Record{
		{Op: trace.Write, Addr: a, Time: 0},   // fast, gen 1
		{Op: trace.Write, Addr: a, Time: 200}, // fast, gen 2: at limit, tabled
	}
	tail := trace.Record{Op: trace.Write, Addr: a, Time: 4300} // α unless refreshed

	busy := append(append([]trace.Record{}, warmup...),
		trace.Record{Op: trace.Write, Addr: other, Time: 4000}, tail)
	run := runTrace(t, cfg, busy)
	if run.Classes[stats.WriteAlpha] != 1 {
		t.Errorf("busy rank: α-writes = %d, want 1", run.Classes[stats.WriteAlpha])
	}

	control := append(append([]trace.Record{}, warmup...), tail)
	run = runTrace(t, cfg, control)
	if run.Classes[stats.WriteAlpha] != 0 {
		t.Errorf("control: α-writes = %d, want 0", run.Classes[stats.WriteAlpha])
	}
	if run.Refreshes == 0 {
		t.Error("control: refresh did not run")
	}
}

// TestWritePausing: a demand write that lands mid-refresh preempts it,
// paying only the pause penalty.
func TestWritePausing(t *testing.T) {
	g := testGeometry()
	a := addrOf(t, g, 0, 0, 5)
	recs := []trace.Record{
		{Op: trace.Write, Addr: a, Time: 0},   // 87: fast, gen 1
		{Op: trace.Write, Addr: a, Time: 200}, // 60: fast, gen 2 (limit, tabled)
		// The tick at 4000 starts a refresh of row 5 lasting 150+4·5 = 170.
		{Op: trace.Write, Addr: a, Time: 4010}, // lands mid-refresh
	}
	run := runTrace(t, testConfig(freshWOM(), DefaultRefresh(), nil), recs)
	if run.RefreshAborts != 1 {
		t.Fatalf("refresh aborts = %d, want 1", run.RefreshAborts)
	}
	// The preempting write: pause 5 ns, then the α-write to the open row
	// (the aborted refresh left it at the limit): 4015+170 → latency 175.
	if run.WriteLatency.Max != 175 {
		t.Errorf("preempting write latency = %d, want 175", run.WriteLatency.Max)
	}
	if run.Classes[stats.WriteAlpha] != 1 {
		t.Errorf("α-writes = %d, want 1", run.Classes[stats.WriteAlpha])
	}
}

// TestNoPausingWaitsOutRefresh: with write pausing disabled (ablation), the
// demand write waits for the refresh and then benefits from it.
func TestNoPausingWaitsOutRefresh(t *testing.T) {
	g := testGeometry()
	a := addrOf(t, g, 0, 0, 5)
	recs := []trace.Record{
		{Op: trace.Write, Addr: a, Time: 0},
		{Op: trace.Write, Addr: a, Time: 200},  // gen 2: at limit, tabled
		{Op: trace.Write, Addr: a, Time: 4010}, // mid-refresh (4000–4170)
	}
	cfg := testConfig(freshWOM(), &RefreshConfig{ThresholdPct: 10, TableSize: 5, NoPausing: true}, nil)
	run := runTrace(t, cfg, recs)
	if run.RefreshAborts != 0 {
		t.Errorf("refresh aborts = %d, want 0 without pausing", run.RefreshAborts)
	}
	if run.Refreshes == 0 {
		t.Error("refresh did not complete")
	}
	// The write waits until 4170, then is a fast write to the refreshed
	// open row: latency = 4170 − 4010 + 60 = 220.
	if run.WriteLatency.Max != 220 {
		t.Errorf("write latency = %d, want 220", run.WriteLatency.Max)
	}
	if run.Classes[stats.WriteAlpha] != 0 {
		t.Errorf("α-writes = %d, want 0", run.Classes[stats.WriteAlpha])
	}
}

// TestRunRejectsDisorderedTrace: arrivals must be time-ordered.
func TestRunRejectsDisorderedTrace(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 1), Time: 100},
		{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 2), Time: 50},
	}
	c, err := New(testConfig(nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(trace.NewSliceSource(recs)); err == nil {
		t.Error("accepted a disordered trace")
	}
}

// TestEmptyTrace: running nothing is fine.
func TestEmptyTrace(t *testing.T) {
	run := runTrace(t, testConfig(DefaultWOM(), DefaultRefresh(), nil), nil)
	if run.ReadLatency.Count+run.WriteLatency.Count != 0 {
		t.Error("latencies recorded for empty trace")
	}
}

// TestDeterminism: identical workloads produce bit-identical statistics on
// every architecture.
func TestDeterminism(t *testing.T) {
	p, err := workload.ProfileByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := workload.Generate(p, testGeometry(), 99, 3000)
	if err != nil {
		t.Fatal(err)
	}
	configs := []Config{
		testConfig(nil, nil, nil),
		testConfig(DefaultWOM(), nil, nil),
		testConfig(DefaultWOM(), DefaultRefresh(), nil),
		testConfig(nil, nil, DefaultCache()),
	}
	for _, cfg := range configs {
		a := runTrace(t, cfg, recs)
		b := runTrace(t, cfg, recs)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: runs differ", cfg.ArchName())
		}
	}
}

// TestRequestConservation: every trace record is serviced exactly once on
// every architecture, and class totals are consistent with the op mix.
func TestRequestConservation(t *testing.T) {
	p, err := workload.ProfileByName("464.h264ref")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := workload.Generate(p, testGeometry(), 5, 5000)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes uint64
	for _, r := range recs {
		if r.Op == trace.Read {
			reads++
		} else {
			writes++
		}
	}
	for _, cfg := range []Config{
		testConfig(nil, nil, nil),
		testConfig(DefaultWOM(), nil, nil),
		testConfig(&WOMConfig{Rewrites: 2, Org: HiddenPage}, nil, nil),
		testConfig(DefaultWOM(), DefaultRefresh(), nil),
		testConfig(nil, nil, DefaultCache()),
	} {
		run := runTrace(t, cfg, recs)
		if run.ReadLatency.Count != reads {
			t.Errorf("%s: %d read samples, want %d", cfg.ArchName(), run.ReadLatency.Count, reads)
		}
		if run.WriteLatency.Count != writes {
			t.Errorf("%s: %d write samples, want %d", cfg.ArchName(), run.WriteLatency.Count, writes)
		}
		gotReads := run.Classes[stats.ReadArray] + run.Classes[stats.ReadRowHit] + run.Classes[stats.ReadCacheHit]
		if gotReads != reads {
			t.Errorf("%s: read class total %d, want %d", cfg.ArchName(), gotReads, reads)
		}
		if cfg.Cache != nil {
			gotWrites := run.Classes[stats.WriteCacheHit] + run.Classes[stats.WriteCacheMiss]
			if gotWrites != writes {
				t.Errorf("WCPCM write class total %d, want %d", gotWrites, writes)
			}
			// Every demand write programs the cache array once.
			if arr := run.Classes[stats.WriteFast] + run.Classes[stats.WriteAlpha]; arr != writes {
				t.Errorf("WCPCM cache array writes %d, want %d", arr, writes)
			}
			// Victim write-backs are the only main-memory writes.
			if run.Classes[stats.WriteBaseline] != run.VictimWrites {
				t.Errorf("victim writes %d vs main-memory writes %d",
					run.VictimWrites, run.Classes[stats.WriteBaseline])
			}
		} else {
			gotWrites := run.Classes[stats.WriteBaseline] + run.Classes[stats.WriteFast] + run.Classes[stats.WriteAlpha]
			if gotWrites != writes {
				t.Errorf("%s: write class total %d, want %d", cfg.ArchName(), gotWrites, writes)
			}
		}
	}
}
