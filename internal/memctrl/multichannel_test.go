package memctrl

import (
	"testing"

	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

func TestMultiChannelValidation(t *testing.T) {
	cfg := testConfig(nil, nil, nil)
	for _, n := range []int{0, -1, 3, 6} {
		if _, err := NewMultiChannel(cfg, n); err == nil {
			t.Errorf("accepted %d channels", n)
		}
	}
	mc, err := NewMultiChannel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Channels() != 4 {
		t.Errorf("Channels() = %d", mc.Channels())
	}
}

// TestChannelOfStriping: consecutive lines round-robin across channels and
// the local address squeezes the channel bits out losslessly.
func TestChannelOfStriping(t *testing.T) {
	cfg := testConfig(nil, nil, nil)
	mc, err := NewMultiChannel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	locals := map[uint64]int{}
	for line := uint64(0); line < 16; line++ {
		ch, local := mc.channelOf(line * 64)
		if ch != int(line%4) {
			t.Errorf("line %d → channel %d, want %d", line, ch, line%4)
		}
		seen[ch] = true
		// Within one channel, locals must be distinct and dense.
		if prev, dup := locals[local<<8|uint64(ch)]; dup {
			t.Errorf("collision: %d", prev)
		}
		locals[local<<8|uint64(ch)] = int(line)
	}
	if len(seen) != 4 {
		t.Errorf("striping hit %d channels", len(seen))
	}
	// Byte offsets within a line stay put.
	if _, local := mc.channelOf(64 + 13); local%64 != 13 {
		t.Error("line offset not preserved")
	}
	// Single channel passes addresses through untouched.
	one, err := NewMultiChannel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ch, local := one.channelOf(0xdeadbeef); ch != 0 || local != 0xdeadbeef {
		t.Error("single channel rewrote the address")
	}
}

// TestMultiChannelOneEqualsPlain: a 1-channel MultiChannel is bit-for-bit
// the plain controller.
func TestMultiChannelOneEqualsPlain(t *testing.T) {
	p, err := workload.ProfileByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := workload.Generate(p, testGeometry(), 77, 3000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(DefaultWOM(), DefaultRefresh(), nil)
	plain := runTrace(t, cfg, recs)
	mc, err := NewMultiChannel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := mc.Run(trace.NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if plain.WriteLatency != multi.WriteLatency || plain.ReadLatency != multi.ReadLatency ||
		plain.Classes != multi.Classes || plain.Refreshes != multi.Refreshes {
		t.Error("1-channel MultiChannel differs from plain controller")
	}
}

// TestMultiChannelScaling: striping a contended trace over more channels
// reduces latency and conserves every request.
func TestMultiChannelScaling(t *testing.T) {
	p, err := workload.ProfileByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := workload.Generate(p, testGeometry(), 5, 8000)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes uint64
	for _, r := range recs {
		if r.Op == trace.Read {
			reads++
		} else {
			writes++
		}
	}
	cfg := testConfig(nil, nil, nil)
	means := map[int]float64{}
	for _, n := range []int{1, 4} {
		mc, err := NewMultiChannel(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		run, err := mc.Run(trace.NewSliceSource(recs))
		if err != nil {
			t.Fatal(err)
		}
		if run.ReadLatency.Count != reads || run.WriteLatency.Count != writes {
			t.Fatalf("%d channels: samples %d/%d, want %d/%d",
				n, run.ReadLatency.Count, run.WriteLatency.Count, reads, writes)
		}
		means[n] = run.WriteLatency.Mean() + run.ReadLatency.Mean()
		if n > 1 && run.Arch == "" {
			t.Error("merged run lost its label")
		}
	}
	if means[4] > means[1] {
		t.Errorf("4 channels (%.1f) slower than 1 (%.1f)", means[4], means[1])
	}
}
