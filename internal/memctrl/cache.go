package memctrl

import (
	"womcpcm/internal/probe"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
)

// cacheArray is one rank's WOM-cache (§4): a wide-column WOM-code PCM array
// with as many rows as a main-memory bank, fronting the rank's banks as an
// N_bank-way write cache. The tag of a cached row is the bank address it
// belongs to; a single valid bit completes the selector field.
//
// The array embeds server: it services one access at a time with its own
// FIFO queue, and participates in PCM-refresh.
type cacheArray struct {
	server
	entries map[int]cacheEntry
}

// cacheEntry is the selector field of one cache row.
type cacheEntry struct {
	bank  int
	valid bool
}

func newCacheArray(rank int, cfg Config) *cacheArray {
	ca := &cacheArray{
		server:  server{rank: rank, idx: -1, openRow: -1, abortedRow: -1},
		entries: make(map[int]cacheEntry),
	}
	if cfg.Cache.Technology == WOMCache {
		// Cache arrays are new, factory-erased hardware: fresh start.
		ca.wom = newWOMState(cfg.Cache.Rewrites, cfg.Cache.TableSize, false)
	}
	return ca
}

// dispatchCache starts service on a rank's WOM-cache array if possible.
func (c *Controller) dispatchCache(ca *cacheArray, now Clock) {
	if ca.inService != nil || ca.queued() == 0 {
		return
	}
	if ca.refreshPending && ca.refreshEnd > now {
		c.preemptRefresh(&ca.server, now)
	}
	req := ca.pop()
	start := now
	if ca.busyUntil > start {
		start = ca.busyUntil
	}
	dur := c.cacheService(ca, req, start)
	ca.inService = req
	ca.busyUntil = start + dur
	if c.probe != nil {
		c.probe.Emit(probe.Event{Time: start, Dur: dur, Kind: probe.BankBusy,
			Rank: ca.rank, Bank: ca.idx, Row: req.Loc.Row})
	}
	c.schedule(event{time: start + dur, kind: evCacheComplete, rank: ca.rank})
}

// cacheService resolves a cache access at dispatch time and returns its
// service duration. The cache array is itself a write-through PCM array
// with a row buffer: reads to the open row skip the array access, and
// every write programs the cells after activating its row if needed — the
// activation also reads out the victim on a tag miss (§4: "the controller
// first outputs the current data and the bank address to a register").
func (c *Controller) cacheService(ca *cacheArray, req *Request, start Clock) Clock {
	t := c.cfg.Timing
	row := req.Loc.Row
	var dur Clock
	if ca.openRow != row {
		dur += t.RowRead
		ca.openRow = row
	}

	if req.Op == trace.Read {
		// Read hit, classified at routing time; the activation above (or
		// the already-open row) services it.
		return dur + t.Column + t.Burst
	}

	e, present := ca.entries[row]
	hit := !present || !e.valid || e.bank == req.Loc.Bank
	action := probe.CacheHit
	if !present || !e.valid {
		action = probe.CacheFill
	}
	if hit {
		// §4: valid bit invalid, or tag matches — program in place.
		c.run.CacheHits++
		req.class = stats.WriteCacheHit
	} else {
		// §4: the victim row is in the buffer; it moves to the write-back
		// register and its write request is inserted into the main-memory
		// queue at completion.
		c.run.CacheMisses++
		req.class = stats.WriteCacheMiss
		req.spawnVictim = true
		req.victimBank = e.bank
		action = probe.CacheEvict
	}
	if c.probe != nil {
		c.probe.Emit(probe.Event{Time: start, Kind: action, Rank: ca.rank, Bank: ca.idx, Row: row})
	}
	if ca.wom != nil {
		if c.probe != nil {
			c.probe.Emit(probe.Event{Time: start, Kind: womWriteKind(ca.wom, row),
				Rank: ca.rank, Bank: ca.idx, Row: row})
		}
		var arrayClass stats.ServiceClass
		dur += c.arrayWrite(ca.wom, row, &arrayClass)
		c.run.Class(arrayClass)
	}
	// A DRAM cache array absorbs the write at row-buffer speed: no PCM
	// programming pulse at all.
	ca.entries[row] = cacheEntry{bank: req.Loc.Bank, valid: true}
	return dur + t.Column + t.Burst
}
