// Package memctrl implements the event-driven PCM memory-system simulator
// that stands in for the paper's modified DRAMSim2 (§5). It models a single
// channel of ranks and banks with per-bank FIFO queues, the paper's PCM
// service latencies, WOM-code row rewrite state, the PCM-refresh engine
// (§3.2) with write pausing, and the WCPCM per-rank WOM-cache front end
// (§4).
//
// One Controller type covers all four evaluated architectures; the options
// in Config select the behavior:
//
//	baseline PCM:     Config{WOM: nil, Refresh: nil, Cache: nil}
//	WOM-code PCM:     Config{WOM: &WOMConfig{...}}
//	PCM-refresh:      Config{WOM: ..., Refresh: &RefreshConfig{...}}
//	WCPCM:            Config{Cache: &CacheConfig{...}} (conventional main)
//
// Time is int64 nanoseconds throughout.
package memctrl

import (
	"fmt"
	"sync/atomic"

	"womcpcm/internal/pcm"
	"womcpcm/internal/probe"
)

// Clock is a simulation timestamp or duration in nanoseconds.
type Clock = int64

// Organization selects how the extra WOM-code bits are provisioned (§3.1).
type Organization int

const (
	// WideColumn widens every column from Z to Wits/DataBits·Z bits; the
	// encoded row is accessed in one array operation. Fixed code, fastest.
	WideColumn Organization = iota
	// HiddenPage stores the upper encoded bits in controller-reserved
	// hidden pages; flexible code choice at a small per-access transfer
	// overhead (modeled as one extra burst on the bank).
	HiddenPage
)

// String names the organization.
func (o Organization) String() string {
	switch o {
	case WideColumn:
		return "wide-column"
	case HiddenPage:
		return "hidden-page"
	default:
		return fmt.Sprintf("Organization(%d)", int(o))
	}
}

// WOMConfig enables WOM-code writes on the main PCM arrays.
type WOMConfig struct {
	// Rewrites is k, the code's guaranteed writes per erased row (2 for the
	// paper's <2^2>^2/3 code).
	Rewrites int
	// Org selects the memory organization provisioning the code overhead.
	Org Organization
	// FreshArrays treats never-written rows as factory-erased (all wits
	// set), so their first k writes are fast. The default (false) is the
	// long-running-system assumption: a row of unknown state must be
	// treated as at the rewrite limit, so its first observed write is an
	// α-write. WCPCM cache arrays are always fresh — they are new,
	// pre-conditioned hardware that PCM-refresh keeps restoring.
	FreshArrays bool
}

// DefaultWOM returns the paper's configuration: the <2^2>^2/3 code in the
// wide-column organization.
func DefaultWOM() *WOMConfig { return &WOMConfig{Rewrites: 2, Org: WideColumn} }

// RefreshConfig enables PCM-refresh (§3.2). Requires WOM.
type RefreshConfig struct {
	// ThresholdPct is r_th: an idle rank is refreshed only if more than
	// this percentage of its banks have at least one row at the rewrite
	// limit. 0 refreshes any idle rank with one candidate.
	ThresholdPct float64
	// TableSize is the per-bank row address table depth; the paper uses 5
	// ("the most recent 5 pages that have reached the rewrite limit").
	TableSize int
	// NoPausing disables write pausing (ablation): demand accesses wait
	// out an ongoing refresh instead of preempting it.
	NoPausing bool
	// MaxRanksPerTick bounds how many idle ranks one scheduling point may
	// refresh; 0 (the default) refreshes every eligible idle rank — rank
	// refreshes are independent array operations, so nothing serializes
	// them. 1 models a strict one-command-per-period controller.
	MaxRanksPerTick int
}

// DefaultRefresh returns the default configuration: the paper's 5-entry
// row address table and an eager threshold (the paper introduces r_th but
// does not fix its value; the RthSweep ablation explores it).
func DefaultRefresh() *RefreshConfig { return &RefreshConfig{ThresholdPct: 0, TableSize: 5} }

// CacheTechnology selects what the per-rank cache array is built from.
type CacheTechnology int

const (
	// WOMCache is the paper's §4 design: a wide-column WOM-code PCM array
	// with PCM-refresh. Pure-PCM fabrication, 1.5/N_bank overhead.
	WOMCache CacheTechnology = iota
	// DRAMCache models the hybrid DRAM/PCM alternative the paper compares
	// against (§4, [18] PDRAM): a DRAM array in front of PCM. Writes and
	// reads complete at DRAM row speeds (no SET, no WOM budget, no
	// PCM-refresh), but the design needs mixed-technology fabrication and
	// inherits DRAM's scaling limits — the §4 practicality argument.
	DRAMCache
)

// String names the technology.
func (t CacheTechnology) String() string {
	switch t {
	case WOMCache:
		return "WOM-cache"
	case DRAMCache:
		return "DRAM-cache"
	default:
		return fmt.Sprintf("CacheTechnology(%d)", int(t))
	}
}

// CacheConfig enables the WCPCM per-rank cache (§4). With the default
// WOMCache technology the array is a wide-column WOM-code array with
// PCM-refresh; the main memory behind it is conventional PCM.
type CacheConfig struct {
	// Rewrites is the cache array's WOM rewrite budget (2 for the paper).
	// Ignored by DRAMCache.
	Rewrites int
	// TableSize is the cache array's refresh row table depth. Ignored by
	// DRAMCache.
	TableSize int
	// Technology selects the cache array implementation.
	Technology CacheTechnology
}

// DefaultCache returns the paper's configuration.
func DefaultCache() *CacheConfig { return &CacheConfig{Rewrites: 2, TableSize: 5} }

// SchedConfig enables the write-scheduling policies of Qureshi et al.
// (HPCA 2010), the paper's [7] — the alternative approach to the PCM write
// problem that §1 argues is insufficient on its own. Useful as an ablation
// comparator against WOM-codes.
type SchedConfig struct {
	// ReadPriority serves queued reads before queued writes at each bank.
	ReadPriority bool
	// WriteCancellation lets an arriving read cancel the write currently
	// in service at its bank; the write restarts later (at most
	// MaxCancels times, then it runs to completion). Requires
	// ReadPriority.
	WriteCancellation bool
	// MaxCancels bounds how often one write may be cancelled (default 4).
	MaxCancels int
}

// Config assembles a simulated memory system.
type Config struct {
	// Geometry and Timing describe the device (§5 defaults via
	// pcm.DefaultGeometry and pcm.DefaultTiming).
	Geometry pcm.Geometry
	Timing   pcm.Timing
	// WOM, Refresh and Cache select the architecture; see the package
	// comment. Refresh requires WOM; Cache excludes both (the WOM behavior
	// lives inside the cache array).
	WOM     *WOMConfig
	Refresh *RefreshConfig
	Cache   *CacheConfig
	// Sched optionally enables read-priority scheduling and write
	// cancellation ([7]); nil keeps plain per-bank FCFS.
	Sched *SchedConfig
	// PausePenalty is the bank re-arbitration delay a demand access pays
	// when it preempts an ongoing PCM-refresh (write pausing, §3.2).
	// Defaults to one burst.
	PausePenalty Clock
	// Probe, when set, receives fine-grained simulator events: write
	// classification, refresh lifecycle, WOM-cache actions, and bank busy
	// intervals (see internal/probe). nil — the default — reduces every
	// instrumentation site to one pointer check, so uninstrumented runs
	// pay nothing (benchmark-verified; see BenchmarkRunNilProbe). The
	// probe and its sinks are used from the controller's goroutine only.
	Probe *probe.Probe
	// Latency, when set, observes every completed demand request:
	// (completion time, read?, latency). The probe stream carries no demand
	// latencies, so windowed telemetry (internal/telemetry) hooks in here.
	// Same contract as Probe: nil costs one pointer check per completion,
	// and the hook runs on the controller's goroutine.
	Latency LatencyHook
	// Events, when set, receives a live count of discrete-event steps the
	// controller executes: the shared counter is advanced in strides of
	// eventFlushStride (plus a final flush), so a long simulation's host-time
	// throughput (simulated-events/sec) is observable while it runs —
	// internal/perfmon's rolling rate and the engine's slow-job detector read
	// it. Several parallel simulations may share one counter (Add is atomic).
	// nil — the default — costs one pointer check per flush decision and
	// allocates nothing (see TestEventCountDisabledAllocs and
	// BenchmarkRunEventCounter).
	Events *atomic.Int64
}

// LatencyHook observes a completed demand request at simulated time now.
type LatencyHook func(now Clock, read bool, latency Clock)

// DefaultConfig returns the baseline system with the paper's geometry and
// timing.
func DefaultConfig() Config {
	return Config{Geometry: pcm.DefaultGeometry(), Timing: pcm.DefaultTiming()}
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.Refresh != nil && c.WOM == nil {
		return fmt.Errorf("memctrl: PCM-refresh requires WOM-code writes")
	}
	if c.Cache != nil && (c.WOM != nil || c.Refresh != nil) {
		return fmt.Errorf("memctrl: WCPCM uses a conventional PCM main memory; configure WOM inside CacheConfig")
	}
	if c.WOM != nil && c.WOM.Rewrites < 1 {
		return fmt.Errorf("memctrl: WOM rewrite budget %d < 1", c.WOM.Rewrites)
	}
	if c.Refresh != nil {
		if c.Refresh.TableSize < 1 {
			return fmt.Errorf("memctrl: refresh table size %d < 1", c.Refresh.TableSize)
		}
		if c.Refresh.ThresholdPct < 0 || c.Refresh.ThresholdPct > 100 {
			return fmt.Errorf("memctrl: refresh threshold %v%% outside [0,100]", c.Refresh.ThresholdPct)
		}
	}
	if c.Cache != nil && c.Cache.Technology == WOMCache {
		if c.Cache.Rewrites < 1 {
			return fmt.Errorf("memctrl: cache rewrite budget %d < 1", c.Cache.Rewrites)
		}
		if c.Cache.TableSize < 1 {
			return fmt.Errorf("memctrl: cache table size %d < 1", c.Cache.TableSize)
		}
	}
	if c.PausePenalty < 0 {
		return fmt.Errorf("memctrl: negative pause penalty")
	}
	if c.Sched != nil {
		if c.Sched.WriteCancellation && !c.Sched.ReadPriority {
			return fmt.Errorf("memctrl: write cancellation requires read priority")
		}
		if c.Sched.MaxCancels < 0 {
			return fmt.Errorf("memctrl: negative cancellation bound")
		}
	}
	return nil
}

// ArchName derives the paper's name for the configured architecture.
func (c Config) ArchName() string {
	switch {
	case c.Cache != nil && c.Cache.Technology == DRAMCache:
		return "hybrid DRAM/PCM"
	case c.Cache != nil:
		return "WCPCM"
	case c.Refresh != nil:
		return "PCM-refresh"
	case c.WOM != nil:
		if c.WOM.Org == HiddenPage {
			return "WOM-code PCM (hidden-page)"
		}
		return "WOM-code PCM"
	default:
		return "PCM w/o WOM-code"
	}
}
