package memctrl

import "testing"

// TestWOMStateLifecycle walks one row through the k=2 cycle of §3.1/3.2:
// two fast writes, then the α-write, then alternation.
func TestWOMStateLifecycle(t *testing.T) {
	w := newWOMState(2, 5, false)
	if w.atLimit(7) {
		t.Fatal("fresh row at limit")
	}
	if !w.write(7) { // gen 0 → 1
		t.Fatal("first write not fast")
	}
	if !w.write(7) { // gen 1 → 2 (limit)
		t.Fatal("second write not fast")
	}
	if !w.atLimit(7) || !w.hasCandidates() {
		t.Fatal("row not tracked at limit after k writes")
	}
	if w.write(7) { // α-write
		t.Fatal("write at limit should be α")
	}
	if w.atLimit(7) || w.hasCandidates() {
		t.Fatal("α-write should leave gen=1 and clear the table entry")
	}
	if !w.write(7) { // gen 1 → 2
		t.Fatal("post-α write not fast")
	}
	if !w.atLimit(7) {
		t.Fatal("row should be back at limit")
	}
}

// TestWOMStateRefreshCycle: a committed refresh buys exactly one more fast
// write for k=2.
func TestWOMStateRefreshCycle(t *testing.T) {
	w := newWOMState(2, 5, false)
	w.write(3)
	w.write(3)
	row, ok := w.popCandidate()
	if !ok || row != 3 {
		t.Fatalf("popCandidate = (%d, %v)", row, ok)
	}
	if w.hasCandidates() {
		t.Fatal("table should be empty after pop")
	}
	w.commitRefresh(3)
	if w.atLimit(3) {
		t.Fatal("refreshed row still at limit")
	}
	if !w.write(3) {
		t.Fatal("write after refresh not fast")
	}
	if !w.atLimit(3) {
		t.Fatal("row should hit limit again after one write")
	}
}

// TestWOMStateAbort: a preempted refresh returns the row to the table.
func TestWOMStateAbort(t *testing.T) {
	w := newWOMState(2, 5, false)
	w.write(3)
	w.write(3)
	row, _ := w.popCandidate()
	w.abortRefresh(row)
	if !w.hasCandidates() {
		t.Fatal("aborted refresh lost the row")
	}
	got, _ := w.popCandidate()
	if got != 3 {
		t.Fatalf("re-pushed row = %d", got)
	}
}

// TestWOMStateTableEviction: only the most recent tableSize at-limit rows
// are tracked (the paper's 5-entry row address buffer).
func TestWOMStateTableEviction(t *testing.T) {
	w := newWOMState(1, 3, false)
	for row := 0; row < 5; row++ {
		w.write(row) // k=1: every first write hits the limit
	}
	if len(w.table) != 3 {
		t.Fatalf("table holds %d rows, want 3", len(w.table))
	}
	// Oldest rows 0 and 1 must have been evicted.
	for _, want := range []int{2, 3, 4} {
		got, ok := w.popCandidate()
		if !ok || got != want {
			t.Fatalf("popCandidate = (%d,%v), want %d", got, ok, want)
		}
	}
	// Evicted rows are still at limit — they will α-write.
	if !w.atLimit(0) {
		t.Fatal("evicted row lost its limit state")
	}
}

// TestWOMStateNoDuplicates: re-reaching the limit does not duplicate a
// table entry.
func TestWOMStateNoDuplicates(t *testing.T) {
	w := newWOMState(1, 3, false)
	w.write(9)
	w.pushLimit(9)
	if len(w.table) != 1 {
		t.Fatalf("table = %v, want single entry", w.table)
	}
}

// TestWOMStateK1: the degenerate one-write code — every demand write is an
// α unless a refresh intervenes.
func TestWOMStateK1(t *testing.T) {
	w := newWOMState(1, 2, false)
	if !w.write(4) { // gen 0 → 1: the one budgeted write
		t.Fatal("first write with k=1 should be fast")
	}
	if w.write(4) {
		t.Fatal("second write with k=1 should be α")
	}
	// After the α the row is at limit again immediately.
	if !w.atLimit(4) {
		t.Fatal("k=1 row should re-enter the limit after α")
	}
	w2 := newWOMState(1, 2, false)
	w2.write(5)
	row, _ := w2.popCandidate()
	w2.commitRefresh(row)
	if !w2.atLimit(5) || !w2.hasCandidates() {
		t.Fatal("k=1 refresh should re-track the row")
	}
}

func TestThresholdCount(t *testing.T) {
	tests := []struct {
		pct   float64
		banks int
		want  int
	}{
		{0, 32, 1},
		{10, 32, 3},
		{50, 32, 16},
		{100, 32, 32},
		{10, 4, 1},
	}
	for _, tt := range tests {
		if got := thresholdCount(tt.pct, tt.banks); got != tt.want {
			t.Errorf("thresholdCount(%v, %d) = %d, want %d", tt.pct, tt.banks, got, tt.want)
		}
	}
}

// TestWOMStateDirtyStart: under the long-running-system assumption, an
// unseen row is at the rewrite limit — its first write is an α — and the
// normal cycle resumes afterwards.
func TestWOMStateDirtyStart(t *testing.T) {
	w := newWOMState(2, 5, true)
	if !w.atLimit(11) {
		t.Fatal("unseen dirty row not at limit")
	}
	if w.hasCandidates() {
		t.Fatal("unseen rows must not appear in the refresh table")
	}
	if w.write(11) {
		t.Fatal("first write to a dirty row should be α")
	}
	if !w.write(11) { // gen 1 → 2
		t.Fatal("second write should be fast")
	}
	if !w.atLimit(11) || !w.hasCandidates() {
		t.Fatal("row should now be tracked at limit")
	}
}
