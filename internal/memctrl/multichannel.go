package memctrl

import (
	"fmt"

	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
)

// MultiChannel simulates an n-channel memory system: n independent
// controllers (each with the full per-channel geometry) with consecutive
// cache lines striped across channels. The paper evaluates a single
// channel (§5); multi-channel is the §1 "exascale capacity" scaling axis —
// channels multiply both capacity and bandwidth, and because each channel
// has its own WOM state and refresh engine, the architectures compose
// unchanged.
//
// Address mapping: the line-interleave bits directly above the 64-byte
// line offset select the channel, so streams fan out across channels.
type MultiChannel struct {
	controllers []*Controller
	channels    int
}

// lineShift is the log2 of the striping granularity (one 64-byte line).
const lineShift = 6

// NewMultiChannel builds an n-channel system; each channel gets cfg's full
// geometry. n must be a power of two.
func NewMultiChannel(cfg Config, n int) (*MultiChannel, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("memctrl: channel count must be a positive power of two, got %d", n)
	}
	mc := &MultiChannel{channels: n}
	for i := 0; i < n; i++ {
		ctrl, err := New(cfg)
		if err != nil {
			return nil, err
		}
		mc.controllers = append(mc.controllers, ctrl)
	}
	return mc, nil
}

// Channels returns the channel count.
func (m *MultiChannel) Channels() int { return m.channels }

// channelOf extracts the channel index and the address as seen by that
// channel's controller (channel bits squeezed out).
func (m *MultiChannel) channelOf(addr uint64) (int, uint64) {
	if m.channels == 1 {
		return 0, addr
	}
	mask := uint64(m.channels - 1)
	ch := int(addr >> lineShift & mask)
	local := addr&(1<<lineShift-1) | (addr >> lineShift / uint64(m.channels) << lineShift)
	return ch, local
}

// Run splits the trace across channels and simulates them. Channels are
// fully independent, so each is run to completion on its own sub-trace;
// statistics are merged (latency distributions, class and event counters).
func (m *MultiChannel) Run(src trace.Source) (*stats.Run, error) {
	subs := make([][]trace.Record, m.channels)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		ch, local := m.channelOf(rec.Addr)
		rec.Addr = local
		subs[ch] = append(subs[ch], rec)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	var merged *stats.Run
	for ch, ctrl := range m.controllers {
		run, err := ctrl.Run(trace.NewSliceSource(subs[ch]))
		if err != nil {
			return nil, fmt.Errorf("memctrl: channel %d: %w", ch, err)
		}
		if merged == nil {
			merged = run
			continue
		}
		mergeRuns(merged, run)
	}
	merged.Arch = fmt.Sprintf("%s ×%d channels", merged.Arch, m.channels)
	return merged, nil
}

// mergeRuns folds b's measurements into a.
func mergeRuns(a, b *stats.Run) {
	a.ReadLatency.Merge(&b.ReadLatency)
	a.WriteLatency.Merge(&b.WriteLatency)
	for i := range a.Classes {
		a.Classes[i] += b.Classes[i]
	}
	a.Refreshes += b.Refreshes
	a.RefreshAborts += b.RefreshAborts
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.VictimWrites += b.VictimWrites
	a.WriteCancels += b.WriteCancels
	if b.SimulatedNs > a.SimulatedNs {
		a.SimulatedNs = b.SimulatedNs
	}
}
