package memctrl

import (
	"fmt"

	"womcpcm/internal/pcm"
	"womcpcm/internal/probe"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
)

// Request is one memory access in flight through the controller.
type Request struct {
	// ID orders requests by admission.
	ID uint64
	// Op is the access type.
	Op trace.Op
	// Arrive is the arrival time at the controller (ns).
	Arrive Clock
	// Loc is the decoded physical location.
	Loc pcm.Location
	// Internal marks controller-generated traffic (WOM-cache victim
	// write-backs); internal requests occupy banks but are excluded from
	// the demand latency statistics.
	Internal bool

	class       stats.ServiceClass
	spawnVictim bool
	victimBank  int
	cancels     int
}

// server is one serially serviced resource: a main-memory bank or a rank's
// WOM-cache array. Requests queue FIFO; service begins when the resource
// frees and holds it for the service duration.
type server struct {
	rank, idx int
	q         []*Request
	qHead     int
	inService *Request
	busyUntil Clock
	wom       *womState

	// Write-through row buffer: openRow is the row currently latched (-1
	// when closed). Reads to the open row skip the array access; writes
	// always program the array (the paper's per-write row-write cost) but
	// a write to a non-open row first activates it — the read-modify-write
	// the WOM encoder needs.
	openRow int

	// token invalidates in-flight completion events after a write
	// cancellation: stale events carry an older token and are ignored.
	token uint64

	refreshPending bool
	refreshRow     int
	refreshStart   Clock
	refreshEnd     Clock
	// abortedRow remembers the last refresh row write pausing preempted,
	// so the probe can tell a resumed refresh from a fresh one.
	abortedRow int
}

func (s *server) queued() int { return len(s.q) - s.qHead }

func (s *server) enqueue(r *Request) {
	if s.qHead > 0 && s.qHead == len(s.q) {
		s.q = s.q[:0]
		s.qHead = 0
	}
	s.q = append(s.q, r)
}

func (s *server) pop() *Request {
	r := s.q[s.qHead]
	s.q[s.qHead] = nil
	s.qHead++
	if s.qHead == len(s.q) {
		s.q = s.q[:0]
		s.qHead = 0
	}
	return r
}

// popPreferred pops the first queued read when readFirst is set (read
// priority scheduling, [7]); otherwise plain FIFO.
func (s *server) popPreferred(readFirst bool) *Request {
	if !readFirst {
		return s.pop()
	}
	for i := s.qHead; i < len(s.q); i++ {
		if s.q[i].Op == trace.Read {
			r := s.q[i]
			copy(s.q[s.qHead+1:i+1], s.q[s.qHead:i])
			s.q[s.qHead] = nil
			s.qHead++
			if s.qHead == len(s.q) {
				s.q = s.q[:0]
				s.qHead = 0
			}
			return r
		}
	}
	return s.pop()
}

// pushFront returns a cancelled write to the head of the queue.
func (s *server) pushFront(r *Request) {
	if s.qHead > 0 {
		s.qHead--
		s.q[s.qHead] = r
		return
	}
	s.q = append(s.q, nil)
	copy(s.q[1:], s.q)
	s.q[0] = r
}

// idleAt reports whether the server is completely quiescent at time now.
func (s *server) idleAt(now Clock) bool {
	return s.inService == nil && s.queued() == 0 && s.busyUntil <= now && !s.refreshPending
}

// Controller simulates one memory channel under the configured
// architecture. Create with New, feed a time-ordered trace with Run.
type Controller struct {
	cfg    Config
	mapper *pcm.AddrMapper
	banks  [][]*server   // [rank][bank]
	caches []*cacheArray // per rank; nil entries unless cfg.Cache != nil

	events       eventHeap
	seq          uint64
	run          *stats.Run
	reqID        uint64
	inFlight     int
	arrivalsDone bool
	rrNext       int
	lastTime     Clock
	// probe receives instrumentation events; nil (the default) disables
	// them at the cost of one pointer check per emission site.
	probe *probe.Probe
	// latency observes completed demand requests; nil (the default) costs
	// one pointer check per completion.
	latency LatencyHook
	// evLocal accumulates event-loop steps between flushes to the shared
	// cfg.Events counter; see countEvent.
	evLocal int64
}

// New builds a controller; the config must validate.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PausePenalty == 0 {
		cfg.PausePenalty = cfg.Timing.Burst
	}
	mapper, err := pcm.NewAddrMapper(cfg.Geometry)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:     cfg,
		mapper:  mapper,
		run:     &stats.Run{Arch: cfg.ArchName()},
		probe:   cfg.Probe,
		latency: cfg.Latency,
	}
	c.banks = make([][]*server, cfg.Geometry.Ranks)
	for r := range c.banks {
		c.banks[r] = make([]*server, cfg.Geometry.BanksPerRank)
		for b := range c.banks[r] {
			s := &server{rank: r, idx: b, openRow: -1, abortedRow: -1}
			if cfg.WOM != nil {
				tableSize := 1
				if cfg.Refresh != nil {
					tableSize = cfg.Refresh.TableSize
				}
				s.wom = newWOMState(cfg.WOM.Rewrites, tableSize, !cfg.WOM.FreshArrays)
			}
			c.banks[r][b] = s
		}
	}
	if cfg.Cache != nil {
		c.caches = make([]*cacheArray, cfg.Geometry.Ranks)
		for r := range c.caches {
			c.caches[r] = newCacheArray(r, cfg)
		}
	}
	return c, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Run drains src through the simulated memory system and returns the
// collected statistics. The controller is single-use.
func (c *Controller) Run(src trace.Source) (*stats.Run, error) {
	next, ok := src.Next()
	c.arrivalsDone = !ok
	if c.refreshEnabled() && !c.arrivalsDone {
		c.schedule(event{time: c.cfg.Timing.RefreshPeriod, kind: evRefreshTick})
	}
	for {
		evT, haveEv := c.nextEventTime()
		switch {
		case !c.arrivalsDone && (!haveEv || next.Time <= evT):
			if next.Time < c.lastTime {
				return nil, fmt.Errorf("memctrl: trace time goes backwards at %d ns (now %d)", next.Time, c.lastTime)
			}
			c.arrive(next)
			next, ok = src.Next()
			if !ok {
				c.arrivalsDone = true
				if err := src.Err(); err != nil {
					return nil, err
				}
			}
		case haveEv:
			c.countEvent()
			ev := c.popEvent()
			c.lastTime = ev.time
			c.handle(ev)
		default:
			c.run.SimulatedNs = c.lastTime
			if c.cfg.Events != nil && c.evLocal > 0 {
				c.cfg.Events.Add(c.evLocal)
				c.evLocal = 0
			}
			return c.run, nil
		}
	}
}

func (c *Controller) refreshEnabled() bool {
	if c.cfg.Refresh != nil {
		return true
	}
	return c.cfg.Cache != nil && c.cfg.Cache.Technology == WOMCache
}

// eventFlushStride bounds how often the shared Events counter is touched:
// steps accumulate locally and flush every stride (plus once at Run's end),
// so the live-rate feed costs one atomic add per stride instead of per step.
const eventFlushStride = 1024

// countEvent accounts one event-loop step — an arrival or a handled event —
// in the run statistics and, when a live counter is configured, toward the
// next stride flush. The disabled path is one field increment and one nil
// check, allocation-free.
func (c *Controller) countEvent() {
	c.run.Events++
	if c.cfg.Events == nil {
		return
	}
	c.evLocal++
	if c.evLocal >= eventFlushStride {
		c.cfg.Events.Add(c.evLocal)
		c.evLocal = 0
	}
}

// arrive admits one trace record.
func (c *Controller) arrive(rec trace.Record) {
	c.countEvent()
	c.lastTime = rec.Time
	req := &Request{
		ID:     c.reqID,
		Op:     rec.Op,
		Arrive: rec.Time,
		Loc:    c.mapper.Map(rec.Addr),
	}
	c.reqID++
	c.inFlight++
	c.route(req, rec.Time)
}

// maybeCancelWrite implements write cancellation ([7]): an arriving read
// aborts the write in service at its bank, which restarts from scratch
// after a re-arbitration penalty; the read then wins arbitration through
// read priority.
func (c *Controller) maybeCancelWrite(s *server, now Clock) {
	sched := c.cfg.Sched
	if sched == nil || !sched.WriteCancellation {
		return
	}
	w := s.inService
	if w == nil || w.Op != trace.Write {
		return
	}
	max := sched.MaxCancels
	if max == 0 {
		max = 4
	}
	if w.cancels >= max {
		return
	}
	w.cancels++
	c.run.WriteCancels++
	s.token++ // the in-flight completion event is now stale
	s.inService = nil
	s.busyUntil = now + c.cfg.PausePenalty
	s.pushFront(w)
}

// route places a request on its server queue and attempts dispatch.
func (c *Controller) route(req *Request, now Clock) {
	if c.cfg.Cache != nil && !req.Internal {
		ca := c.caches[req.Loc.Rank]
		if req.Op == trace.Write {
			// §4 write protocol: every demand write targets the rank's
			// WOM-cache; hit/miss resolves at dispatch.
			ca.enqueue(req)
			c.dispatchCache(ca, now)
			return
		}
		// §4 read protocol: probe cache and main memory in parallel; on a
		// tag match the cache services the read.
		if e, ok := ca.entries[req.Loc.Row]; ok && e.valid && e.bank == req.Loc.Bank {
			c.run.CacheHits++
			req.class = stats.ReadCacheHit
			if c.probe != nil {
				c.probe.Emit(probe.Event{Time: now, Kind: probe.CacheHit,
					Rank: req.Loc.Rank, Bank: -1, Row: req.Loc.Row})
			}
			ca.enqueue(req)
			c.dispatchCache(ca, now)
			return
		}
		c.run.CacheMisses++
	}
	s := c.banks[req.Loc.Rank][req.Loc.Bank]
	if req.Op == trace.Read {
		c.maybeCancelWrite(s, now)
	}
	s.enqueue(req)
	c.dispatchBank(s, now)
}

// preemptRefresh implements write pausing: a demand access aborts the
// bank's in-progress refresh, paying only the re-arbitration penalty; the
// refresh row stays at the rewrite limit and returns to the table.
func (c *Controller) preemptRefresh(s *server, now Clock) {
	s.refreshPending = false
	if s.refreshRow >= 0 {
		s.wom.abortRefresh(s.refreshRow)
		c.run.RefreshAborts++
		s.abortedRow = s.refreshRow
		if c.probe != nil {
			c.probe.Emit(probe.Event{Time: s.refreshStart, Dur: now - s.refreshStart,
				Kind: probe.RefreshPaused, Rank: s.rank, Bank: s.idx, Row: s.refreshRow})
		}
	}
	s.busyUntil = now + c.cfg.PausePenalty
}

// dispatchBank starts service on a main-memory bank if possible.
func (c *Controller) dispatchBank(s *server, now Clock) {
	if s.inService != nil || s.queued() == 0 {
		return
	}
	if s.refreshPending && s.refreshEnd > now {
		if c.cfg.Refresh != nil && c.cfg.Refresh.NoPausing {
			// Ablation: wait for the refresh to finish; refreshDone
			// re-dispatches after committing, so the write sees the
			// refreshed row state.
			return
		}
		c.preemptRefresh(s, now)
	}
	req := s.popPreferred(c.cfg.Sched != nil && c.cfg.Sched.ReadPriority)
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	dur := c.bankService(s, req)
	s.inService = req
	s.busyUntil = start + dur
	if c.probe != nil {
		c.probe.Emit(probe.Event{Time: start, Dur: dur, Kind: probe.BankBusy,
			Rank: s.rank, Bank: s.idx, Row: req.Loc.Row})
	}
	c.schedule(event{time: start + dur, kind: evComplete, rank: s.rank, bank: s.idx, token: s.token})
}

// bankService computes the service duration for a main-bank request and
// classifies it. Reads to the open row are row-buffer hits; reads to other
// rows activate (the §5 row read, 27 ns). Writes always program the PCM
// array — RESET-class when the WOM rewrite budget covers them, the full
// row write otherwise — after activating the target row if it is not open
// (the read-modify-write the WOM encoder needs).
func (c *Controller) bankService(s *server, req *Request) Clock {
	t := c.cfg.Timing
	var dur Clock
	hit := s.openRow == req.Loc.Row
	if !hit {
		dur += t.RowRead
		s.openRow = req.Loc.Row
	}
	if req.Op == trace.Read {
		if hit {
			req.class = stats.ReadRowHit
		} else {
			req.class = stats.ReadArray
		}
	} else {
		// Classify without consuming the WOM budget: the budget commits
		// at completion, so a cancelled write leaves the row untouched.
		dur += c.classifyWrite(s.wom, req)
	}
	dur += t.Column + t.Burst
	if c.cfg.WOM != nil && c.cfg.WOM.Org == HiddenPage {
		// The hidden page holding the upper encoded bits adds one burst of
		// transfer per access (see Organization docs).
		dur += t.Burst
	}
	return dur
}

// classifyWrite prices a main-bank row write from the row's current WOM
// state without mutating it; the matching budget commit happens in
// handle(evComplete) once the write truly finishes.
func (c *Controller) classifyWrite(wom *womState, req *Request) Clock {
	t := c.cfg.Timing
	switch {
	case wom == nil:
		req.class = stats.WriteBaseline
		return t.RowWrite
	case !wom.atLimit(req.Loc.Row):
		req.class = stats.WriteFast
		return t.Reset
	default:
		req.class = stats.WriteAlpha
		return t.RowWrite
	}
}

// womWriteKind maps a row's pre-commit WOM generation to the probe's write
// classification: generation 0 is the fast first-write pattern, an
// in-budget generation is a RESET-only rewrite, and an exhausted budget
// forces the slow α-write.
func womWriteKind(w *womState, row int) probe.Kind {
	switch gen := w.gen(row); {
	case gen == 0:
		return probe.WriteFirst
	case gen < w.k:
		return probe.WriteWOMRewrite
	default:
		return probe.WriteAlpha
	}
}

// arrayWrite charges one PCM array row write, consuming the row's WOM
// budget when the array is WOM-coded, and stores the class in *class.
func (c *Controller) arrayWrite(wom *womState, row int, class *stats.ServiceClass) Clock {
	t := c.cfg.Timing
	switch {
	case wom == nil:
		*class = stats.WriteBaseline
		return t.RowWrite
	case wom.write(row):
		*class = stats.WriteFast
		return t.Reset
	default:
		*class = stats.WriteAlpha
		return t.RowWrite
	}
}

// handle dispatches one event.
func (c *Controller) handle(ev event) {
	switch ev.kind {
	case evComplete:
		s := c.banks[ev.rank][ev.bank]
		if ev.token != s.token {
			// The serviced write was cancelled; this completion is stale.
			return
		}
		req := s.inService
		if req.Op == trace.Write && s.wom != nil {
			// Commit the WOM budget the write consumed (classification
			// happened at dispatch; commit waits for true completion so
			// cancelled writes leave the row untouched). The probe event
			// rides the commit: cancelled writes never surface.
			if c.probe != nil {
				c.probe.Emit(probe.Event{Time: ev.time, Kind: womWriteKind(s.wom, req.Loc.Row),
					Rank: s.rank, Bank: s.idx, Row: req.Loc.Row})
			}
			s.wom.write(req.Loc.Row)
		} else if req.Op == trace.Write && c.probe != nil {
			c.probe.Emit(probe.Event{Time: ev.time, Kind: probe.WriteFlipNWrite,
				Rank: s.rank, Bank: s.idx, Row: req.Loc.Row})
		}
		c.complete(req, ev.time)
		s.inService = nil
		c.dispatchBank(s, ev.time)

	case evCacheComplete:
		ca := c.caches[ev.rank]
		req := ca.inService
		if req.spawnVictim {
			c.spawnVictim(req, ev.time)
		}
		// §4: the miss penalty beyond the cache access itself is a tag
		// comparison — the victim write-back drains asynchronously.
		c.complete(req, ev.time)
		ca.inService = nil
		c.dispatchCache(ca, ev.time)
	case evRefreshTick:
		c.refreshTick(ev.time)
	case evRefreshDone:
		c.refreshDone(ev.rank, ev.time)
	case evCacheRefreshDone:
		c.cacheRefreshDone(ev.rank, ev.time)
	}
}

// complete records a finished request.
func (c *Controller) complete(req *Request, now Clock) {
	c.run.Class(req.class)
	if !req.Internal {
		lat := now - req.Arrive
		if req.Op == trace.Read {
			c.run.ReadLatency.Observe(lat)
		} else {
			c.run.WriteLatency.Observe(lat)
		}
		if c.latency != nil {
			c.latency(now, req.Op == trace.Read, lat)
		}
	}
	c.inFlight--
}

// spawnVictim inserts the WOM-cache victim write-back into the main memory
// queue (§4: "the write request of the victim data in the register is
// inserted into the queue of memory accesses issued to the PCM main
// memory").
func (c *Controller) spawnVictim(req *Request, now Clock) {
	victim := &Request{
		ID:       c.reqID,
		Op:       trace.Write,
		Arrive:   now,
		Loc:      pcm.Location{Rank: req.Loc.Rank, Bank: req.victimBank, Row: req.Loc.Row},
		Internal: true,
	}
	c.reqID++
	c.inFlight++
	c.run.VictimWrites++
	if c.probe != nil {
		c.probe.Emit(probe.Event{Time: now, Kind: probe.CacheWriteback,
			Rank: victim.Loc.Rank, Bank: victim.Loc.Bank, Row: victim.Loc.Row})
	}
	s := c.banks[victim.Loc.Rank][victim.Loc.Bank]
	s.enqueue(victim)
	c.dispatchBank(s, now)
}
