package memctrl

import (
	"testing"

	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

func schedConfig(sched *SchedConfig) Config {
	cfg := testConfig(nil, nil, nil)
	cfg.Sched = sched
	return cfg
}

func TestSchedConfigValidation(t *testing.T) {
	if err := schedConfig(&SchedConfig{ReadPriority: true}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := schedConfig(&SchedConfig{WriteCancellation: true}).Validate(); err == nil {
		t.Error("cancellation without read priority validated")
	}
	if err := schedConfig(&SchedConfig{ReadPriority: true, MaxCancels: -1}).Validate(); err == nil {
		t.Error("negative cancel bound validated")
	}
}

// TestReadPriorityJumpsQueue: a read queued behind a waiting write is
// served first under read priority.
func TestReadPriorityJumpsQueue(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 1), Time: 0},  // in service until 197
		{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 2), Time: 10}, // queued
		{Op: trace.Read, Addr: addrOf(t, g, 0, 0, 3), Time: 20},  // queued behind it
	}
	fifo := runTrace(t, schedConfig(nil), recs)
	// FIFO: read waits for both writes: 197 + 197 + 47 − 20 = 421.
	if got := fifo.ReadLatency.Mean(); got != 421 {
		t.Errorf("FIFO read latency = %v, want 421", got)
	}
	prio := runTrace(t, schedConfig(&SchedConfig{ReadPriority: true}), recs)
	// Read priority: the read runs right after the in-service write:
	// 197 + 47 − 20 = 224.
	if got := prio.ReadLatency.Mean(); got != 224 {
		t.Errorf("read-priority read latency = %v, want 224", got)
	}
	// The displaced write finishes last: 197+47+197 − 10 = 431.
	if got := prio.WriteLatency.Max; got != 431 {
		t.Errorf("displaced write latency = %v, want 431", got)
	}
}

// TestWriteCancellation: an arriving read aborts the in-service write and
// is served after only the re-arbitration penalty; the write restarts.
func TestWriteCancellation(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 1), Time: 0},
		{Op: trace.Read, Addr: addrOf(t, g, 0, 0, 2), Time: 50}, // mid-write
	}
	sched := &SchedConfig{ReadPriority: true, WriteCancellation: true}
	run := runTrace(t, schedConfig(sched), recs)
	if run.WriteCancels != 1 {
		t.Fatalf("write cancels = %d, want 1", run.WriteCancels)
	}
	// Read: pause 5 ns then activation 47 → latency 52.
	if got := run.ReadLatency.Mean(); got != 52 {
		t.Errorf("read latency = %v, want 52", got)
	}
	// Write: restarts at 102 — row 1 is no longer open (the read activated
	// row 2), so it re-activates: 102 + 197 − 0 = 299.
	if got := run.WriteLatency.Mean(); got != 299 {
		t.Errorf("cancelled write latency = %v, want 299", got)
	}
	// Exactly one baseline write committed (no double budget/class count).
	if run.Classes[stats.WriteBaseline] != 1 {
		t.Errorf("write class count = %d, want 1", run.Classes[stats.WriteBaseline])
	}
}

// TestWriteCancellationBudgetIntegrity: a cancelled WOM write must not
// consume the row's rewrite budget; only the completed write commits.
func TestWriteCancellationBudgetIntegrity(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 1), Time: 0},
		{Op: trace.Read, Addr: addrOf(t, g, 0, 0, 2), Time: 50}, // cancels it
		{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 1), Time: 5000},
	}
	cfg := testConfig(freshWOM(), nil, nil)
	cfg.Sched = &SchedConfig{ReadPriority: true, WriteCancellation: true}
	run := runTrace(t, cfg, recs)
	if run.WriteCancels != 1 {
		t.Fatalf("write cancels = %d, want 1", run.WriteCancels)
	}
	// Both writes are in budget: the first consumed one write (gen 1) when
	// it finally completed, the second consumes the other (gen 2). Had the
	// cancelled attempt also committed, the second write would be an α.
	if run.Classes[stats.WriteFast] != 2 || run.Classes[stats.WriteAlpha] != 0 {
		t.Errorf("classes fast=%d α=%d, want 2/0",
			run.Classes[stats.WriteFast], run.Classes[stats.WriteAlpha])
	}
}

// TestWriteCancellationBounded: a write is cancelled at most MaxCancels
// times, then runs to completion even under a read storm.
func TestWriteCancellationBounded(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{{Op: trace.Write, Addr: addrOf(t, g, 0, 0, 1), Time: 0}}
	for i := 0; i < 10; i++ {
		recs = append(recs, trace.Record{
			Op: trace.Read, Addr: addrOf(t, g, 0, 0, 2), Time: int64(40 + i*60)})
	}
	cfg := schedConfig(&SchedConfig{ReadPriority: true, WriteCancellation: true, MaxCancels: 2})
	run := runTrace(t, cfg, recs)
	if run.WriteCancels != 2 {
		t.Errorf("write cancels = %d, want 2 (bounded)", run.WriteCancels)
	}
	if run.WriteLatency.Count != 1 || run.Classes[stats.WriteBaseline] != 1 {
		t.Error("write did not complete exactly once")
	}
}

// TestSchedulingIsNotEnough reproduces the paper's §1 argument: write
// scheduling improves read latency but leaves write latency essentially
// untouched, whereas the WOM-code attacks the writes themselves.
func TestSchedulingIsNotEnough(t *testing.T) {
	p, err := workload.ProfileByName("464.h264ref")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := workload.Generate(p, testGeometry(), 13, 8000)
	if err != nil {
		t.Fatal(err)
	}
	base := runTrace(t, schedConfig(nil), recs)
	sched := runTrace(t, schedConfig(&SchedConfig{ReadPriority: true, WriteCancellation: true}), recs)
	wom := runTrace(t, testConfig(freshWOM(), nil, nil), recs)

	if sched.ReadLatency.Mean() >= base.ReadLatency.Mean() {
		t.Errorf("scheduling did not improve reads: %.1f vs %.1f",
			sched.ReadLatency.Mean(), base.ReadLatency.Mean())
	}
	if sched.WriteLatency.Mean() < base.WriteLatency.Mean() {
		t.Errorf("scheduling improved writes (%.1f vs %.1f)? it only defers them",
			sched.WriteLatency.Mean(), base.WriteLatency.Mean())
	}
	if wom.WriteLatency.Mean() >= sched.WriteLatency.Mean() {
		t.Errorf("WOM-code writes %.1f not below scheduled writes %.1f",
			wom.WriteLatency.Mean(), sched.WriteLatency.Mean())
	}
}
