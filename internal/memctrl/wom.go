package memctrl

// womState tracks the per-row WOM-code rewrite budget of one array (a main
// bank or a rank's WOM-cache array) plus the row address table the
// PCM-refresh engine consumes (§3.2).
//
// A row's generation counts writes consumed since the row last held the
// erased (all wits set) pattern:
//
//	gen 0        erased — the next write is the fast first-write pattern
//	0 < gen < k  in budget — the next write is a fast RESET-only rewrite
//	gen == k     at the rewrite limit — the next write is the slow α-write,
//	             or PCM-refresh restores the row in idle time
//
// The α-write rewrites the row with the first-write pattern, so it leaves
// gen = 1, exactly like a completed refresh followed by one demand write.
type womState struct {
	k         int
	gens      map[int]uint32
	table     []int // FIFO of at-limit rows awaiting refresh
	tableSize int
	// dirty treats unseen rows as already at the rewrite limit (the
	// long-running-system assumption); fresh arrays treat them as erased.
	dirty bool
}

func newWOMState(k, tableSize int, dirty bool) *womState {
	return &womState{k: k, gens: make(map[int]uint32), tableSize: tableSize, dirty: dirty}
}

// gen returns the row's consumed-write count, applying the dirty-start
// assumption to rows never seen before.
func (w *womState) gen(row int) int {
	if g, ok := w.gens[row]; ok {
		return int(g)
	}
	if w.dirty {
		return w.k
	}
	return 0
}

// write consumes one write on row and reports whether it was a fast
// RESET-only write (true) or an α-write (false).
func (w *womState) write(row int) bool {
	gen := w.gen(row)
	if gen < w.k {
		gen++
		w.gens[row] = uint32(gen)
		if gen == w.k {
			w.pushLimit(row)
		}
		return true
	}
	// α-write: the row is rewritten with the first-write pattern.
	w.dropLimit(row)
	w.gens[row] = 1
	if w.k == 1 {
		w.pushLimit(row)
	}
	return false
}

// atLimit reports whether row has exhausted its rewrite budget.
func (w *womState) atLimit(row int) bool { return w.gen(row) == w.k }

// hasCandidates reports whether the refresh table is non-empty.
func (w *womState) hasCandidates() bool { return len(w.table) > 0 }

// popCandidate removes and returns the oldest tracked at-limit row.
func (w *womState) popCandidate() (int, bool) {
	if len(w.table) == 0 {
		return 0, false
	}
	row := w.table[0]
	w.table = w.table[1:]
	return row, true
}

// commitRefresh records a completed refresh: the row is restored to the
// erased pattern and immediately rewritten with its data in the first-write
// pattern, leaving one write consumed (§3.2: "The refreshed PCM row can be
// immediately written by the pattern of the second write").
func (w *womState) commitRefresh(row int) {
	w.gens[row] = 1
	if w.k == 1 {
		w.pushLimit(row)
	}
}

// abortRefresh returns a popped candidate to the table after write pausing
// preempted its refresh; the row is still at the limit.
func (w *womState) abortRefresh(row int) {
	if w.atLimit(row) {
		w.pushLimit(row)
	}
}

// pushLimit records row in the table, keeping only the most recent
// tableSize entries (the paper's 5-deep row address buffer); older entries
// fall out and will be repaired by a demand α-write instead.
func (w *womState) pushLimit(row int) {
	for _, r := range w.table {
		if r == row {
			return
		}
	}
	if len(w.table) == w.tableSize {
		copy(w.table, w.table[1:])
		w.table = w.table[:len(w.table)-1]
	}
	w.table = append(w.table, row)
}

// dropLimit removes row from the table if present.
func (w *womState) dropLimit(row int) {
	for i, r := range w.table {
		if r == row {
			w.table = append(w.table[:i], w.table[i+1:]...)
			return
		}
	}
}
