package memctrl

import "container/heap"

// eventKind discriminates scheduled simulator events.
type eventKind uint8

const (
	// evComplete: a bank finished servicing its in-flight request.
	evComplete eventKind = iota
	// evCacheComplete: a rank's WOM-cache array finished its request.
	evCacheComplete
	// evRefreshTick: the periodic PCM-refresh scheduling point.
	evRefreshTick
	// evRefreshDone: a rank's burst-mode refresh operation completed.
	evRefreshDone
	// evCacheRefreshDone: a rank's WOM-cache refresh completed.
	evCacheRefreshDone
)

// event is one scheduled occurrence. seq breaks time ties deterministically
// in scheduling order.
type event struct {
	time Clock
	seq  uint64
	kind eventKind
	rank int
	bank int
	// token matches server.token for completion events; a cancellation
	// bumps the server token, orphaning the in-flight event.
	token uint64
}

// eventHeap is a min-heap on (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// schedule pushes an event.
func (c *Controller) schedule(e event) {
	e.seq = c.seq
	c.seq++
	heap.Push(&c.events, e)
}

// nextEventTime peeks at the earliest scheduled event time.
func (c *Controller) nextEventTime() (Clock, bool) {
	if len(c.events) == 0 {
		return 0, false
	}
	return c.events[0].time, true
}

// popEvent removes and returns the earliest event.
func (c *Controller) popEvent() event {
	return heap.Pop(&c.events).(event)
}
