package memctrl

import (
	"testing"

	"womcpcm/internal/probe"
	"womcpcm/internal/trace"
)

// kindTimes extracts the (start, dur) pairs of one kind in emission order.
func kindTimes(evs []probe.Event, k probe.Kind) [][2]Clock {
	var out [][2]Clock
	for _, ev := range evs {
		if ev.Kind == k {
			out = append(out, [2]Clock{ev.Time, ev.Dur})
		}
	}
	return out
}

// TestProbeWriteClassificationAndPauseResume drives the §3.2 refresh
// architecture through a write-pausing episode and checks the emitted event
// stream: write classes ride the budget commit, the preempted refresh
// surfaces as a paused span, and the next tick resumes the same row.
func TestProbeWriteClassificationAndPauseResume(t *testing.T) {
	g := testGeometry()
	rowA := addrOf(t, g, 0, 0, 5)
	rowB := addrOf(t, g, 0, 0, 9)
	counters := probe.NewCounterSink()
	ring := probe.NewRingSink(128)
	cfg := testConfig(freshWOM(), DefaultRefresh(), nil)
	cfg.Probe = probe.New(counters, ring)

	recs := []trace.Record{
		{Op: trace.Write, Addr: rowA, Time: 0},   // first write, gen 1
		{Op: trace.Write, Addr: rowA, Time: 200}, // rewrite, gen 2: at limit, tabled
		// The tick at 4000 starts refreshing row 5 (150+4·5 = 170 ns); the
		// write to row 9 at 4010 preempts it without touching row 5's table
		// entry, so the tick at 8000 resumes row 5.
		{Op: trace.Write, Addr: rowB, Time: 4010},
	}
	run := runTrace(t, cfg, recs)
	if run.RefreshAborts != 1 || run.Refreshes != 1 {
		t.Fatalf("aborts=%d refreshes=%d, want 1 and 1", run.RefreshAborts, run.Refreshes)
	}

	want := map[probe.Kind]uint64{
		probe.WriteFirst:       2, // row 5 at t=0, row 9 at t=4010
		probe.WriteWOMRewrite:  1, // row 5 at t=200
		probe.RefreshScheduled: 2, // ticks at 4000 and 8000
		probe.RefreshStarted:   1, // row 5 at 4000
		probe.RefreshPaused:    1, // preempted at 4010
		probe.RefreshResumed:   1, // row 5 again at 8000
		probe.RefreshCompleted: 1, // commits at 8170
		probe.BankBusy:         3, // one service span per write
	}
	for k, n := range want {
		if got := counters.Count(k); got != n {
			t.Errorf("%s events = %d, want %d", k, got, n)
		}
	}

	evs := ring.Events()
	if paused := kindTimes(evs, probe.RefreshPaused); len(paused) != 1 ||
		paused[0] != [2]Clock{4000, 10} {
		t.Errorf("paused spans = %v, want [[4000 10]]", paused)
	}
	if done := kindTimes(evs, probe.RefreshCompleted); len(done) != 1 ||
		done[0] != [2]Clock{8000, 170} {
		t.Errorf("completed spans = %v, want [[8000 170]]", done)
	}
	for _, ev := range evs {
		if ev.Kind == probe.RefreshResumed && ev.Row != 5 {
			t.Errorf("resumed row = %d, want 5", ev.Row)
		}
	}
}

// TestProbeAlphaAndBaselineWrites checks the two slow-path write classes:
// a WOM row past its budget α-writes, and an uncoded baseline bank emits
// conventional (Flip-N-Write class) events.
func TestProbeAlphaAndBaselineWrites(t *testing.T) {
	g := testGeometry()
	a := addrOf(t, g, 0, 0, 5)
	recs := []trace.Record{
		{Op: trace.Write, Addr: a, Time: 0},
		{Op: trace.Write, Addr: a, Time: 500},
		{Op: trace.Write, Addr: a, Time: 1000}, // gen 2 → α-write
	}

	counters := probe.NewCounterSink()
	cfg := testConfig(freshWOM(), nil, nil)
	cfg.Probe = probe.New(counters)
	runTrace(t, cfg, recs)
	if counters.Count(probe.WriteAlpha) != 1 {
		t.Errorf("α-write events = %d, want 1", counters.Count(probe.WriteAlpha))
	}

	counters = probe.NewCounterSink()
	cfg = testConfig(nil, nil, nil)
	cfg.Probe = probe.New(counters)
	runTrace(t, cfg, recs)
	if counters.Count(probe.WriteFlipNWrite) != 3 {
		t.Errorf("baseline write events = %d, want 3", counters.Count(probe.WriteFlipNWrite))
	}
	if counters.Count(probe.WriteFirst)+counters.Count(probe.WriteWOMRewrite)+
		counters.Count(probe.WriteAlpha) != 0 {
		t.Errorf("baseline run emitted WOM write classes: %v", counters.Counts())
	}
}

// TestProbeCacheActions drives the WCPCM cache through fill, evict (with
// write-back), and hit, checking each surfaces as its own event kind.
func TestProbeCacheActions(t *testing.T) {
	g := testGeometry()
	bank0 := addrOf(t, g, 0, 0, 5)
	bank1 := addrOf(t, g, 0, 1, 5) // same row index, different bank: conflict
	counters := probe.NewCounterSink()
	cfg := testConfig(nil, nil, DefaultCache())
	cfg.Probe = probe.New(counters)

	recs := []trace.Record{
		{Op: trace.Write, Addr: bank0, Time: 0},    // fill: cache row 5 empty
		{Op: trace.Write, Addr: bank1, Time: 500},  // evict bank 0's victim + write-back
		{Op: trace.Write, Addr: bank1, Time: 1000}, // hit: row 5 caches bank 1
		{Op: trace.Read, Addr: bank1, Time: 1500},  // read hit
	}
	run := runTrace(t, cfg, recs)
	if run.VictimWrites != 1 {
		t.Fatalf("victim writes = %d, want 1", run.VictimWrites)
	}
	want := map[probe.Kind]uint64{
		probe.CacheFill:      1,
		probe.CacheEvict:     1,
		probe.CacheWriteback: 1,
		probe.CacheHit:       2, // write hit + read hit
		// The victim write-back lands on the conventional main memory.
		probe.WriteFlipNWrite: 1,
		// Every cache array write programs the fresh WOM array.
		probe.WriteFirst: 1,
	}
	for k, n := range want {
		if got := counters.Count(k); got != n {
			t.Errorf("%s events = %d, want %d", k, got, n)
		}
	}
	// Cache row 5 takes three writes on a k=2 budget: first, rewrite, α.
	if counters.Count(probe.WriteWOMRewrite) != 1 || counters.Count(probe.WriteAlpha) != 1 {
		t.Errorf("cache-array rewrites=%d α=%d, want 1 and 1",
			counters.Count(probe.WriteWOMRewrite), counters.Count(probe.WriteAlpha))
	}
}
