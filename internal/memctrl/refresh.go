package memctrl

// PCM-refresh engine (§3.2). Every RefreshPeriod the controller scans the
// ranks round-robin, picks the first idle rank meeting the r_th threshold,
// and issues a burst-mode refresh: each bank with a tracked at-limit row
// reads it out and rewrites it in the WOM first-write pattern, occupying
// the rank's banks for t_WR + N_bank·L_burst/2. Demand accesses arriving at
// a refreshing bank preempt it (write pausing, see preemptRefresh).
//
// In WCPCM the refresh targets the per-rank WOM-cache arrays instead — the
// paper's cache is "wide-column design with PCM-refresh" — and the main
// memory, being conventional PCM, needs none.

import "womcpcm/internal/probe"

// emitRefreshStart publishes a bank (or cache array) beginning to refresh
// row at now — as a resume when write pausing previously preempted the same
// row, as a fresh start otherwise.
func (c *Controller) emitRefreshStart(s *server, row int, now Clock) {
	kind := probe.RefreshStarted
	if row == s.abortedRow {
		kind = probe.RefreshResumed
		s.abortedRow = -1
	}
	if c.probe != nil {
		c.probe.Emit(probe.Event{Time: now, Kind: kind, Rank: s.rank, Bank: s.idx, Row: row})
	}
}

// refreshTick runs one scheduling point and re-arms the next while the
// simulation still has work.
func (c *Controller) refreshTick(now Clock) {
	if c.cfg.Cache != nil {
		c.cacheRefreshTick(now)
	} else if c.cfg.Refresh != nil {
		c.mainRefreshTick(now)
	}
	if !(c.arrivalsDone && c.inFlight == 0) {
		c.schedule(event{time: now + c.cfg.Timing.RefreshPeriod, kind: evRefreshTick})
	}
}

// mainRefreshTick refreshes idle eligible ranks, scanning round-robin from
// the rotating pointer and honoring MaxRanksPerTick (0 = no bound).
func (c *Controller) mainRefreshTick(now Clock) {
	ranks := c.cfg.Geometry.Ranks
	budget := c.cfg.Refresh.MaxRanksPerTick
	if budget <= 0 || budget > ranks {
		budget = ranks
	}
	issued := 0
	for i := 0; i < ranks && issued < budget; i++ {
		r := (c.rrNext + i) % ranks
		if c.rankEligible(r, now) {
			c.startRankRefresh(r, now)
			issued++
			if issued == budget {
				c.rrNext = (r + 1) % ranks
			}
		}
	}
}

// rankEligible implements the idle-rank and r_th checks.
func (c *Controller) rankEligible(rank int, now Clock) bool {
	need := thresholdCount(c.cfg.Refresh.ThresholdPct, c.cfg.Geometry.BanksPerRank)
	candidates := 0
	for _, s := range c.banks[rank] {
		if !s.idleAt(now) {
			return false
		}
		if s.wom.hasCandidates() {
			candidates++
		}
	}
	return candidates >= need
}

// thresholdCount converts r_th% of banksPerRank into a minimum candidate
// bank count, at least 1.
func thresholdCount(pct float64, banksPerRank int) int {
	need := int(pct * float64(banksPerRank) / 100)
	if need < 1 {
		need = 1
	}
	return need
}

// startRankRefresh issues the burst-mode refresh command: every bank of the
// rank is occupied for t_WR + N_bank·L_burst/2; banks with a tracked
// at-limit row rewrite it, the others merely participate in the burst.
// Write pausing can preempt any of them individually.
func (c *Controller) startRankRefresh(rank int, now Clock) {
	end := now + c.cfg.Timing.RefreshLatency(c.cfg.Geometry.BanksPerRank)
	if c.probe != nil {
		c.probe.Emit(probe.Event{Time: now, Kind: probe.RefreshScheduled, Rank: rank, Bank: -1, Row: -1})
	}
	for _, s := range c.banks[rank] {
		row, ok := s.wom.popCandidate()
		if !ok {
			row = -1
		}
		s.refreshPending = true
		s.refreshRow = row
		s.refreshStart = now
		s.refreshEnd = end
		s.busyUntil = end
		if row >= 0 {
			c.emitRefreshStart(s, row, now)
		}
	}
	c.schedule(event{time: end, kind: evRefreshDone, rank: rank})
}

// refreshDone commits the refreshes that were not preempted.
func (c *Controller) refreshDone(rank int, now Clock) {
	for _, s := range c.banks[rank] {
		if s.refreshPending && s.refreshEnd == now {
			s.refreshPending = false
			if s.refreshRow >= 0 {
				s.wom.commitRefresh(s.refreshRow)
				c.run.Refreshes++
				if c.probe != nil {
					c.probe.Emit(probe.Event{Time: s.refreshStart, Dur: now - s.refreshStart,
						Kind: probe.RefreshCompleted, Rank: s.rank, Bank: s.idx, Row: s.refreshRow})
				}
			}
			c.dispatchBank(s, now)
		}
	}
}

// cacheRefreshTick refreshes every idle WOM-cache array with a pending
// candidate; the threshold concept degenerates to "has at least one
// candidate" for the single per-rank array.
func (c *Controller) cacheRefreshTick(now Clock) {
	for r, ca := range c.caches {
		if ca.wom == nil {
			continue // DRAM cache arrays need no PCM-refresh
		}
		if ca.idleAt(now) && ca.wom.hasCandidates() {
			row, _ := ca.wom.popCandidate()
			ca.refreshPending = true
			ca.refreshRow = row
			ca.refreshStart = now
			ca.refreshEnd = now + c.cfg.Timing.RowWrite + c.cfg.Timing.Burst
			ca.busyUntil = ca.refreshEnd
			if c.probe != nil {
				c.probe.Emit(probe.Event{Time: now, Kind: probe.RefreshScheduled, Rank: r, Bank: -1, Row: -1})
			}
			c.emitRefreshStart(&ca.server, row, now)
			c.schedule(event{time: ca.refreshEnd, kind: evCacheRefreshDone, rank: r})
		}
	}
}

// cacheRefreshDone commits a cache array refresh unless preempted.
func (c *Controller) cacheRefreshDone(rank int, now Clock) {
	ca := c.caches[rank]
	if ca.refreshPending && ca.refreshEnd == now {
		ca.refreshPending = false
		ca.wom.commitRefresh(ca.refreshRow)
		c.run.Refreshes++
		if c.probe != nil {
			c.probe.Emit(probe.Event{Time: ca.refreshStart, Dur: now - ca.refreshStart,
				Kind: probe.RefreshCompleted, Rank: ca.rank, Bank: ca.idx, Row: ca.refreshRow})
		}
		c.dispatchCache(ca, now)
	}
}
