package memctrl

import (
	"testing"

	"womcpcm/internal/pcm"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
	"womcpcm/internal/workload"
)

// TestWCPCMWriteHitCold: the first write to a cache row is a hit (valid bit
// clear); the cache array activates the row and programs it RESET-fast:
// 27+40+20 = 87 ns.
func TestWCPCMWriteHitCold(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 1, 5), Time: 0},
	}
	run := runTrace(t, testConfig(nil, nil, DefaultCache()), recs)
	if got := run.WriteLatency.Mean(); got != tActFast {
		t.Errorf("cold cache write latency = %v, want %d", got, tActFast)
	}
	if run.CacheHits != 1 || run.CacheMisses != 0 {
		t.Errorf("hits/misses = %d/%d, want 1/0", run.CacheHits, run.CacheMisses)
	}
	if run.Classes[stats.WriteCacheHit] != 1 {
		t.Errorf("classes = %v", run.Classes)
	}
	if run.VictimWrites != 0 {
		t.Error("cold hit spawned a victim")
	}
}

// TestWCPCMWriteHitSameBank: rewriting the same (bank, row) hits the tag
// and the open row buffer, leaving only the fast program: 60 ns.
func TestWCPCMWriteHitSameBank(t *testing.T) {
	g := testGeometry()
	addr := addrOf(t, g, 0, 1, 5)
	recs := []trace.Record{
		{Op: trace.Write, Addr: addr, Time: 0},
		{Op: trace.Write, Addr: addr, Time: 1000},
	}
	run := runTrace(t, testConfig(nil, nil, DefaultCache()), recs)
	if run.CacheHits != 2 || run.CacheMisses != 0 {
		t.Errorf("hits/misses = %d/%d, want 2/0", run.CacheHits, run.CacheMisses)
	}
	if run.WriteLatency.Max != tActFast || run.WriteLatency.Min != tWriteFast {
		t.Errorf("write latencies = [%d, %d], want [%d, %d]",
			run.WriteLatency.Min, run.WriteLatency.Max, tWriteFast, tActFast)
	}
}

// TestWCPCMWriteMissEvictsVictim: a write to the same row index from a
// different bank misses the tag; the victim row (already in the buffer) is
// shipped to the main-memory queue (§4 write protocol).
func TestWCPCMWriteMissEvictsVictim(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 1, 5), Time: 0},
		{Op: trace.Write, Addr: addrOf(t, g, 0, 2, 5), Time: 1000},
	}
	run := runTrace(t, testConfig(nil, nil, DefaultCache()), recs)
	if run.CacheHits != 1 || run.CacheMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", run.CacheHits, run.CacheMisses)
	}
	if run.VictimWrites != 1 {
		t.Fatalf("victim writes = %d, want 1", run.VictimWrites)
	}
	// The conflicting write finds the victim's row open (its data is right
	// there to evict) and programs fast: 60 ns; the cold fill cost 87.
	if got := run.WriteLatency.Max; got != tActFast {
		t.Errorf("max write latency = %d, want %d (the cold fill)", got, tActFast)
	}
	// The victim write-back lands in main memory as a conventional write.
	if run.Classes[stats.WriteBaseline] != 1 {
		t.Errorf("main-memory victim writes = %d, want 1", run.Classes[stats.WriteBaseline])
	}
	if run.Classes[stats.WriteCacheMiss] != 1 {
		t.Errorf("cache miss class = %d, want 1", run.Classes[stats.WriteCacheMiss])
	}
}

// TestWCPCMReadProtocol: reads probe the cache; a tag match is serviced by
// the cache array, a mismatch by main memory, and reads never modify the
// cache contents.
func TestWCPCMReadProtocol(t *testing.T) {
	g := testGeometry()
	recs := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 1, 5), Time: 0},
		{Op: trace.Read, Addr: addrOf(t, g, 0, 1, 5), Time: 1000},  // cache hit, open row: 20
		{Op: trace.Read, Addr: addrOf(t, g, 0, 2, 5), Time: 2000},  // tag mismatch → main: 47
		{Op: trace.Read, Addr: addrOf(t, g, 0, 1, 9), Time: 3000},  // empty entry → main: 47
		{Op: trace.Write, Addr: addrOf(t, g, 0, 1, 5), Time: 4000}, // still a hit: reads didn't evict
	}
	run := runTrace(t, testConfig(nil, nil, DefaultCache()), recs)
	if run.Classes[stats.ReadCacheHit] != 1 {
		t.Errorf("read cache hits = %d, want 1", run.Classes[stats.ReadCacheHit])
	}
	if run.Classes[stats.ReadArray] != 2 {
		t.Errorf("main-memory reads = %d, want 2", run.Classes[stats.ReadArray])
	}
	if run.CacheHits != 3 || run.CacheMisses != 2 {
		t.Errorf("hits/misses = %d/%d, want 3/2", run.CacheHits, run.CacheMisses)
	}
	want := (20.0 + 47 + 47) / 3
	if got := run.ReadLatency.Mean(); got != want {
		t.Errorf("read latency = %v, want %v", got, want)
	}
}

// TestWCPCMCacheAlphaAndRefresh: the cache array's WOM budget behaves like
// the main arrays': row-buffer conflicts consume it, the budget exhausts
// into an α, and idle gaps let PCM-refresh restore the rows.
func TestWCPCMCacheAlphaAndRefresh(t *testing.T) {
	g := testGeometry()
	tight := alternating(t, g, 6, 500)
	run := runTrace(t, testConfig(nil, nil, DefaultCache()), tight)
	// Each row's three writes go fast, fast, α: two α-writes in total.
	if run.Classes[stats.WriteAlpha] != 2 {
		t.Errorf("tight spacing: cache α-writes = %d, want 2", run.Classes[stats.WriteAlpha])
	}
	if run.WriteLatency.Max != tActSlow {
		t.Errorf("tight spacing: max latency = %d, want %d (α write)", run.WriteLatency.Max, tActSlow)
	}

	// Widely spaced: a refresh lands between conflicts; everything stays
	// fast.
	wide := alternating(t, g, 6, 10000)
	run = runTrace(t, testConfig(nil, nil, DefaultCache()), wide)
	if run.Classes[stats.WriteAlpha] != 0 {
		t.Errorf("wide spacing: cache α-writes = %d, want 0", run.Classes[stats.WriteAlpha])
	}
	if run.Refreshes == 0 {
		t.Error("wide spacing: no cache refreshes recorded")
	}
	if run.WriteLatency.Max != tActFast {
		t.Errorf("wide spacing: max latency = %d, want %d", run.WriteLatency.Max, tActFast)
	}
}

// TestWCPCMCacheSerializesPerRank: two same-cycle writes to different banks
// of one rank share the single cache array, so the second queues and pays
// the first's write-back; across ranks they proceed in parallel.
func TestWCPCMCacheSerializesPerRank(t *testing.T) {
	g := testGeometry()
	sameRank := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 1, 5), Time: 0},
		{Op: trace.Write, Addr: addrOf(t, g, 0, 2, 6), Time: 0},
	}
	run := runTrace(t, testConfig(nil, nil, DefaultCache()), sameRank)
	// Second write: starts at 87, activates its own row and programs fast
	// (87) → latency 174.
	if run.WriteLatency.Max != 174 {
		t.Errorf("same-rank second write latency = %d, want 174", run.WriteLatency.Max)
	}
	diffRank := []trace.Record{
		{Op: trace.Write, Addr: addrOf(t, g, 0, 1, 5), Time: 0},
		{Op: trace.Write, Addr: addrOf(t, g, 1, 2, 6), Time: 0},
	}
	run = runTrace(t, testConfig(nil, nil, DefaultCache()), diffRank)
	if run.WriteLatency.Max != tActFast {
		t.Errorf("cross-rank write latency = %d, want %d (parallel arrays)", run.WriteLatency.Max, tActFast)
	}
}

// TestWCPCMHitRateFallsWithAssociativityPressure reproduces the Fig. 6
// trend in miniature: with more banks per rank, more distinct bank tags
// compete for each cache row, so the hit rate drops.
func TestWCPCMHitRateFallsWithAssociativityPressure(t *testing.T) {
	p, err := workload.ProfileByName("464.h264ref")
	if err != nil {
		t.Fatal(err)
	}
	hitRate := func(banks int) float64 {
		g := testGeometry()
		g.BanksPerRank = banks
		recs, err := workload.Generate(p, g, 21, 6000)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Geometry: g, Timing: pcm.DefaultTiming(), Cache: DefaultCache()}
		run := runTrace(t, cfg, recs)
		return run.CacheHitRate()
	}
	r4, r32 := hitRate(4), hitRate(32)
	if r4 <= r32 {
		t.Errorf("hit rate with 4 banks/rank (%.3f) not above 32 banks/rank (%.3f)", r4, r32)
	}
}

// TestDRAMCacheComparator: the hybrid DRAM/PCM alternative (§4, [18])
// absorbs writes at row-buffer speed with no WOM budget, no α-writes and
// no PCM-refresh — faster than the WOM-cache but needing mixed-technology
// fabrication, which is the paper's §4 practicality argument.
func TestDRAMCacheComparator(t *testing.T) {
	g := testGeometry()
	recs := alternating(t, g, 6, 500)
	dram := Config{Geometry: g, Timing: pcm.DefaultTiming(),
		Cache: &CacheConfig{Technology: DRAMCache}}
	if dram.ArchName() != "hybrid DRAM/PCM" {
		t.Errorf("arch name = %q", dram.ArchName())
	}
	drun := runTrace(t, dram, recs)
	if drun.Classes[stats.WriteAlpha]+drun.Classes[stats.WriteFast] != 0 {
		t.Error("DRAM cache performed PCM array writes")
	}
	if drun.Refreshes != 0 {
		t.Error("DRAM cache was PCM-refreshed")
	}
	wrun := runTrace(t, testConfig(nil, nil, DefaultCache()), recs)
	if drun.WriteLatency.Mean() >= wrun.WriteLatency.Mean() {
		t.Errorf("DRAM cache writes %.1f not below WOM-cache %.1f",
			drun.WriteLatency.Mean(), wrun.WriteLatency.Mean())
	}
	// Alternating rows at the DRAM cache: activation + column = 47 each
	// after the first; the WOM-cache pays the PCM program on top.
	if drun.WriteLatency.Max != tReadMiss {
		t.Errorf("DRAM cache write latency = %d, want %d", drun.WriteLatency.Max, tReadMiss)
	}
}

// TestDRAMCacheValidationSkipsWOMKnobs: zero Rewrites/TableSize are fine
// for a DRAM cache.
func TestDRAMCacheValidationSkipsWOMKnobs(t *testing.T) {
	cfg := Config{Geometry: testGeometry(), Timing: pcm.DefaultTiming(),
		Cache: &CacheConfig{Technology: DRAMCache}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if CacheTechnology(9).String() == "" || WOMCache.String() != "WOM-cache" {
		t.Error("technology names")
	}
}
