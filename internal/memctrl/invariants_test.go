package memctrl

import (
	"fmt"
	"math/rand"
	"testing"

	"womcpcm/internal/pcm"
	"womcpcm/internal/stats"
	"womcpcm/internal/trace"
)

// fuzzConfigs enumerates every architectural feature combination the
// controller supports.
func fuzzConfigs() []Config {
	var cfgs []Config
	add := func(c Config) {
		c.Geometry = testGeometry()
		c.Timing = pcm.DefaultTiming()
		cfgs = append(cfgs, c)
	}
	scheds := []*SchedConfig{
		nil,
		{ReadPriority: true},
		{ReadPriority: true, WriteCancellation: true},
		{ReadPriority: true, WriteCancellation: true, MaxCancels: 1},
	}
	for _, sched := range scheds {
		add(Config{Sched: sched})
		add(Config{WOM: DefaultWOM(), Sched: sched})
		add(Config{WOM: freshWOM(), Sched: sched})
		add(Config{WOM: &WOMConfig{Rewrites: 1}, Sched: sched})
		add(Config{WOM: &WOMConfig{Rewrites: 4, Org: HiddenPage}, Sched: sched})
		add(Config{WOM: DefaultWOM(), Refresh: DefaultRefresh(), Sched: sched})
		add(Config{WOM: DefaultWOM(), Refresh: &RefreshConfig{ThresholdPct: 50, TableSize: 2, NoPausing: true}, Sched: sched})
		add(Config{WOM: DefaultWOM(), Refresh: &RefreshConfig{ThresholdPct: 0, TableSize: 5, MaxRanksPerTick: 1}, Sched: sched})
		add(Config{Cache: DefaultCache(), Sched: sched})
		add(Config{Cache: &CacheConfig{Rewrites: 1, TableSize: 1}, Sched: sched})
		add(Config{Cache: &CacheConfig{Technology: DRAMCache}, Sched: sched})
	}
	return cfgs
}

// fuzzTrace builds an adversarial random trace: mixed ops, bursts, hot
// rows, repeated addresses, simultaneous arrivals.
func fuzzTrace(seed int64, n int) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	g := testGeometry()
	recs := make([]trace.Record, 0, n)
	now := int64(0)
	for len(recs) < n {
		// Bursts of 1..8 arrivals, sometimes at the same instant.
		burst := 1 + rng.Intn(8)
		for b := 0; b < burst && len(recs) < n; b++ {
			if rng.Intn(3) != 0 {
				now += int64(rng.Intn(120))
			}
			op := trace.Write
			if rng.Intn(100) < 60 {
				op = trace.Read
			}
			var addr uint64
			switch rng.Intn(3) {
			case 0: // hot row set
				addr = uint64(rng.Intn(8)) * uint64(g.RowBytes())
			case 1: // anywhere
				addr = uint64(rng.Int63n(int64(g.CapacityBytes())))
			default: // sequential-ish
				addr = uint64(len(recs)) * 64
			}
			recs = append(recs, trace.Record{Op: op, Addr: addr, Time: now})
		}
		now += int64(rng.Intn(4000))
	}
	return recs
}

// TestControllerInvariantsUnderFuzz drives every feature combination with
// adversarial traces and checks the invariants that must hold regardless
// of configuration:
//
//   - every demand request completes exactly once, with non-negative
//     latency bounded by the simulation span;
//   - read/write sample counts match the trace's op mix;
//   - class totals are consistent;
//   - the simulator terminates with nothing in flight.
func TestControllerInvariantsUnderFuzz(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		recs := fuzzTrace(seed, 2500)
		var reads, writes uint64
		for _, r := range recs {
			if r.Op == trace.Read {
				reads++
			} else {
				writes++
			}
		}
		for i, cfg := range fuzzConfigs() {
			name := fmt.Sprintf("seed %d cfg %d (%s)", seed, i, cfg.ArchName())
			ctrl, err := New(cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			run, err := ctrl.Run(trace.NewSliceSource(recs))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if ctrl.inFlight != 0 {
				t.Fatalf("%s: %d requests still in flight", name, ctrl.inFlight)
			}
			if run.ReadLatency.Count != reads || run.WriteLatency.Count != writes {
				t.Fatalf("%s: latency samples %d/%d, want %d/%d", name,
					run.ReadLatency.Count, run.WriteLatency.Count, reads, writes)
			}
			if run.ReadLatency.Min < 0 || run.WriteLatency.Min < 0 {
				t.Fatalf("%s: negative latency", name)
			}
			span := run.SimulatedNs
			if run.ReadLatency.Max > span || run.WriteLatency.Max > span {
				t.Fatalf("%s: latency exceeds simulated span %d", name, span)
			}
			gotReads := run.Classes[stats.ReadArray] + run.Classes[stats.ReadRowHit] + run.Classes[stats.ReadCacheHit]
			if gotReads != reads {
				t.Fatalf("%s: read classes %d, want %d", name, gotReads, reads)
			}
			if cfg.Cache != nil {
				gotWrites := run.Classes[stats.WriteCacheHit] + run.Classes[stats.WriteCacheMiss]
				if gotWrites != writes {
					t.Fatalf("%s: cache write classes %d, want %d", name, gotWrites, writes)
				}
				if run.Classes[stats.WriteBaseline] != run.VictimWrites {
					t.Fatalf("%s: victims %d vs main writes %d", name,
						run.VictimWrites, run.Classes[stats.WriteBaseline])
				}
			} else {
				gotWrites := run.Classes[stats.WriteBaseline] + run.Classes[stats.WriteFast] + run.Classes[stats.WriteAlpha]
				if gotWrites != writes {
					t.Fatalf("%s: write classes %d, want %d", name, gotWrites, writes)
				}
			}
			if cfg.Sched == nil || !cfg.Sched.WriteCancellation {
				if run.WriteCancels != 0 {
					t.Fatalf("%s: cancellations without the feature", name)
				}
			}
			if cfg.Refresh == nil && (cfg.Cache == nil || cfg.Cache.Technology == DRAMCache) {
				if run.Refreshes+run.RefreshAborts != 0 {
					t.Fatalf("%s: refresh activity without the feature", name)
				}
			}
		}
	}
}

// TestControllerFuzzDeterminism: every fuzz configuration is bit-for-bit
// deterministic.
func TestControllerFuzzDeterminism(t *testing.T) {
	recs := fuzzTrace(42, 1500)
	for i, cfg := range fuzzConfigs() {
		a := runTrace(t, cfg, recs)
		b := runTrace(t, cfg, recs)
		if a.WriteLatency != b.WriteLatency || a.ReadLatency != b.ReadLatency ||
			a.Classes != b.Classes || a.Refreshes != b.Refreshes || a.WriteCancels != b.WriteCancels {
			t.Errorf("cfg %d (%s): runs differ", i, cfg.ArchName())
		}
	}
}
