package memctrl

import (
	"sync/atomic"
	"testing"

	"womcpcm/internal/pcm"
	"womcpcm/internal/trace"
)

// eventTestConfig is the PCM-refresh architecture over a small geometry —
// the configuration with the richest event mix (arrivals, service
// completions, refresh ticks, refresh completions).
func eventTestConfig(g pcm.Geometry) Config {
	return Config{
		Geometry: g,
		Timing:   pcm.DefaultTiming(),
		WOM:      DefaultWOM(),
		Refresh:  DefaultRefresh(),
	}
}

// TestEventCountTotalsMatchRun checks the live counter's final total equals
// the run's Events field: every stride flush plus the terminal flush must
// account for every event-loop step.
func TestEventCountTotalsMatchRun(t *testing.T) {
	g := pcm.Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 64, ColsPerRow: 16, BitsPerCol: 8, Devices: 8}
	cfg := eventTestConfig(g)
	var live atomic.Int64
	cfg.Events = &live
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.Run(trace.NewSliceSource(benchRecords(g, 5000)))
	if err != nil {
		t.Fatal(err)
	}
	if run.Events == 0 {
		t.Fatal("run recorded zero events")
	}
	if run.Events < 5000 {
		t.Errorf("run.Events = %d, want at least one event per request (5000)", run.Events)
	}
	if got := uint64(live.Load()); got != run.Events {
		t.Errorf("live counter = %d, run.Events = %d", got, run.Events)
	}
}

// TestEventCountDeterministic pins that the event count is a function of the
// trace and configuration alone, so it is a stable denominator for
// events/sec comparisons across runs and machines.
func TestEventCountDeterministic(t *testing.T) {
	g := pcm.Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 64, ColsPerRow: 16, BitsPerCol: 8, Devices: 8}
	recs := benchRecords(g, 3000)
	var totals [2]uint64
	for i := range totals {
		c, err := New(eventTestConfig(g))
		if err != nil {
			t.Fatal(err)
		}
		run, err := c.Run(trace.NewSliceSource(recs))
		if err != nil {
			t.Fatal(err)
		}
		totals[i] = run.Events
	}
	if totals[0] != totals[1] {
		t.Errorf("event count not deterministic: %d vs %d", totals[0], totals[1])
	}
}

// TestEventCountDisabledAllocs pins the disabled path's allocation contract:
// attaching a live counter must not change how many allocations a run
// performs, and the nil path must match it — the counter feed is stride
// batched and allocation free either way.
func TestEventCountDisabledAllocs(t *testing.T) {
	g := pcm.Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 32, ColsPerRow: 16, BitsPerCol: 8, Devices: 8}
	recs := benchRecords(g, 2000)
	measure := func(events *atomic.Int64) float64 {
		return testing.AllocsPerRun(3, func() {
			cfg := eventTestConfig(g)
			cfg.Events = events
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Run(trace.NewSliceSource(recs)); err != nil {
				t.Fatal(err)
			}
		})
	}
	var live atomic.Int64
	nilAllocs := measure(nil)
	liveAllocs := measure(&live)
	if nilAllocs != liveAllocs {
		t.Errorf("allocation count changed with live event counter: nil=%v live=%v", nilAllocs, liveAllocs)
	}
}

// BenchmarkRunEventCounter measures Controller.Run with a live event counter
// attached; compare against BenchmarkRunNilProbe (the nil-everything
// baseline) to see the stride-batched atomic feed's cost.
func BenchmarkRunEventCounter(b *testing.B) {
	g := pcm.Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 64, ColsPerRow: 16, BitsPerCol: 8, Devices: 8}
	recs := benchRecords(g, 20000)
	var live atomic.Int64
	cfg := eventTestConfig(g)
	cfg.Events = &live
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(trace.NewSliceSource(recs)); err != nil {
			b.Fatal(err)
		}
	}
}
