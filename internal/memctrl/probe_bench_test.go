package memctrl

import (
	"testing"

	"womcpcm/internal/pcm"
	"womcpcm/internal/probe"
	"womcpcm/internal/telemetry"
	"womcpcm/internal/trace"
)

// benchRecords builds a deterministic mixed read/write stream with enough
// row reuse to exercise every write class and the refresh engine.
func benchRecords(g pcm.Geometry, n int) []trace.Record {
	m, err := pcm.NewAddrMapper(g)
	if err != nil {
		panic(err)
	}
	recs := make([]trace.Record, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range recs {
		state = state*6364136223846793005 + 1442695040888963407
		rank := int(state>>33) % g.Ranks
		bank := int(state>>41) % g.BanksPerRank
		row := int(state>>49) % 16 // tight footprint: rows hit the rewrite limit
		op := trace.Write
		if state&3 == 0 {
			op = trace.Read
		}
		recs[i] = trace.Record{
			Op:   op,
			Addr: m.Unmap(pcm.Location{Rank: rank, Bank: bank, Row: row}),
			Time: int64(i) * 40,
		}
	}
	return recs
}

// benchmarkRun measures Controller.Run over the PCM-refresh architecture —
// the configuration hitting the most instrumentation sites (write classes,
// refresh lifecycle, bank busy) — with the given probe attached.
func benchmarkRun(b *testing.B, p *probe.Probe) {
	g := pcm.Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 64, ColsPerRow: 16, BitsPerCol: 8, Devices: 8}
	cfg := Config{
		Geometry: g,
		Timing:   pcm.DefaultTiming(),
		WOM:      DefaultWOM(),
		Refresh:  DefaultRefresh(),
		Probe:    p,
	}
	recs := benchRecords(g, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(trace.NewSliceSource(recs)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunNilProbe is the zero-overhead contract's baseline: disabled
// instrumentation must cost nothing beyond a nil check per site. Compare
// against BenchmarkRunCounterProbe (make bench-probe).
func BenchmarkRunNilProbe(b *testing.B) { benchmarkRun(b, nil) }

// BenchmarkRunCounterProbe measures the cheap always-on aggregation sink.
func BenchmarkRunCounterProbe(b *testing.B) {
	benchmarkRun(b, probe.New(probe.NewCounterSink()))
}

// BenchmarkRunRingProbe measures the bounded post-mortem ring sink.
func BenchmarkRunRingProbe(b *testing.B) {
	benchmarkRun(b, probe.New(probe.NewRingSink(4096)))
}

// BenchmarkRunTelemetryProbe measures the windowed telemetry collector on
// both feeds: the probe bus and the controller latency hook. Compare against
// BenchmarkRunNilProbe for the enabled-path cost; the disabled path is the
// nil case, unchanged by the Latency hook (one extra pointer check per
// completion).
func BenchmarkRunTelemetryProbe(b *testing.B) {
	g := pcm.Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 64, ColsPerRow: 16, BitsPerCol: 8, Devices: 8}
	recs := benchRecords(g, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := telemetry.New(telemetry.Options{Banks: g.Ranks * g.BanksPerRank})
		cfg := Config{
			Geometry: g,
			Timing:   pcm.DefaultTiming(),
			WOM:      DefaultWOM(),
			Refresh:  DefaultRefresh(),
			Probe:    probe.New(col),
			Latency:  col.ObserveLatency,
		}
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		run, err := c.Run(trace.NewSliceSource(recs))
		if err != nil {
			b.Fatal(err)
		}
		col.Finish(cfg.ArchName(), run.SimulatedNs)
	}
}
