package resultstore

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"womcpcm/internal/sim"
)

func TestCanonicalJSON(t *testing.T) {
	cases := []struct{ in, want string }{
		{`{"b":2,"a":1}`, `{"a":1,"b":2}`},
		{`{ "a" : [ 1 , 2 ] }`, `{"a":[1,2]}`},
		{`{"x":{"z":true,"y":null}}`, `{"x":{"y":null,"z":true}}`},
		{`[{"b":"x","a":"y"}]`, `[{"a":"y","b":"x"}]`},
		{`9007199254740993`, `9007199254740993`}, // > 2^53: no float64 loss
		{`"s"`, `"s"`},
	}
	for _, c := range cases {
		got, err := CanonicalJSON([]byte(c.in))
		if err != nil {
			t.Errorf("CanonicalJSON(%s): %v", c.in, err)
			continue
		}
		if string(got) != c.want {
			t.Errorf("CanonicalJSON(%s) = %s, want %s", c.in, got, c.want)
		}
	}
	for _, bad := range []string{``, `{`, `{"a":1}trailing`, `nope`} {
		if _, err := CanonicalJSON([]byte(bad)); err == nil {
			t.Errorf("CanonicalJSON(%q) accepted", bad)
		}
	}
}

func TestKeyInvariance(t *testing.T) {
	a, err := Key("fig5", []byte(`{"requests":1000,"seed":7}`), "s1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Key("fig5", []byte(` {"seed": 7, "requests": 1000} `), "s1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("field order changed the key: %s vs %s", a, b)
	}
	// Each component must be significant.
	for _, other := range [][3]string{
		{"fig6", `{"requests":1000,"seed":7}`, "s1"}, // experiment
		{"fig5", `{"requests":1001,"seed":7}`, "s1"}, // params
		{"fig5", `{"requests":1000,"seed":7}`, "s2"}, // schema
	} {
		k, err := Key(other[0], []byte(other[1]), other[2])
		if err != nil {
			t.Fatal(err)
		}
		if k == a {
			t.Errorf("key collision with %v", other)
		}
	}
}

func TestKeyForParams(t *testing.T) {
	p := sim.Params{Requests: 1000, Seed: 7, Bench: []string{"qsort"}}
	a, err := KeyForParams("fig5", p, "s1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := KeyForParams("fig5", p, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic param key")
	}
	// The in-memory trace is outside the JSON schema, and such runs must
	// not be cacheable.
	exp, err := sim.LookupExperiment("replay")
	if err != nil {
		t.Fatal(err)
	}
	if Cacheable(exp, p) {
		t.Error("replay experiment reported cacheable")
	}
	fig5, err := sim.LookupExperiment("fig5")
	if err != nil {
		t.Fatal(err)
	}
	if !Cacheable(fig5, p) {
		t.Error("fig5 reported uncacheable")
	}
}

// writeShuffled re-emits v like writeCanonical but with object keys in
// REVERSED sort order — a syntactically different spelling of the same
// document, used to probe order invariance.
func writeShuffled(buf *bytes.Buffer, v any) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Sort(sort.Reverse(sort.StringSlice(keys)))
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, _ := json.Marshal(k)
			buf.Write(kb)
			buf.WriteString(": ")
			writeShuffled(buf, x[k])
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteString(" , ")
			}
			writeShuffled(buf, e)
		}
		buf.WriteByte(']')
	case json.Number:
		buf.WriteString(x.String())
	default:
		b, _ := json.Marshal(x)
		buf.Write(b)
	}
}

// FuzzCanonicalKey feeds arbitrary JSON documents through the hasher and
// checks the normalization contract: reordering object members (at any
// nesting depth) never changes the key, and canonicalization is idempotent.
func FuzzCanonicalKey(f *testing.F) {
	f.Add([]byte(`{"requests":200000,"seed":1}`))
	f.Add([]byte(`{"bench":["qsort","ocean"],"thresholds":[0,5,10.5]}`))
	f.Add([]byte(`{"profile":{"name":"x","mix":{"r":0.5,"w":0.5}},"banks":8}`))
	f.Add([]byte(`[1,2,{"z":null,"a":true}]`))
	f.Add([]byte(`{"":{"":0}}`))
	f.Add([]byte(`{"a":1e308,"b":-0.0,"c":9007199254740993}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		canon, err := CanonicalJSON(data)
		if err != nil {
			t.Skip() // not a JSON document
		}
		// Idempotence: canonical form is a fixed point.
		again, err := CanonicalJSON(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %s: %v", canon, err)
		}
		if !bytes.Equal(canon, again) {
			t.Fatalf("not idempotent: %s vs %s", canon, again)
		}
		// Order invariance: a reversed-key spelling hashes identically.
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.UseNumber()
		var v any
		if err := dec.Decode(&v); err != nil {
			t.Fatalf("decode after canonicalize succeeded: %v", err)
		}
		var shuffled bytes.Buffer
		writeShuffled(&shuffled, v)
		k1, err := Key("exp", data, "s")
		if err != nil {
			t.Fatal(err)
		}
		k2, err := Key("exp", shuffled.Bytes(), "s")
		if err != nil {
			t.Fatalf("shuffled spelling rejected: %s: %v", shuffled.Bytes(), err)
		}
		if k1 != k2 {
			t.Fatalf("member order changed key:\n  %s\n  %s", data, shuffled.Bytes())
		}
	})
}
