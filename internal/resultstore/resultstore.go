// Package resultstore is the durable memoization layer of the simulation
// service: a crash-safe, content-addressed store for experiment results.
// Results are keyed by a canonical hash of (experiment name, normalized
// sim.Params JSON, schema version) and persisted in an append-only segment
// log with per-record CRC32 framing. The full index lives in memory and is
// rebuilt by replaying the log on open; a torn tail left by a crash is
// truncated away, keeping every fully-written record. Named baselines —
// flattened numeric snapshots of the store — ride in the same log and feed
// regression detection (womtool regress, womd /v1/compare).
package resultstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"womcpcm/internal/sim"
)

// Log format constants. Each segment is
//
//	[8-byte header "WOMRSv1\n"] followed by frames of
//	[4-byte LE payload length][4-byte LE CRC32-IEEE of payload][payload]
//
// where the payload is one JSON-encoded record. Frames are appended only;
// an update to a key simply appends a newer record, and replay keeps the
// last one (last-writer-wins).
const (
	segHeader     = "WOMRSv1\n"
	segPrefix     = "seg-"
	segSuffix     = ".log"
	frameOverhead = 8 // length + crc
)

// maxPayload rejects absurd frame lengths during replay so a corrupt length
// field cannot trigger a multi-gigabyte allocation.
const maxPayload = 64 << 20

// Errors the store returns.
var (
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("resultstore: store closed")
	// ErrNoBaseline reports an unknown baseline name.
	ErrNoBaseline = errors.New("resultstore: baseline not found")
	// ErrCorrupt reports corruption in a non-final segment, which a crash
	// cannot produce — the store refuses to guess and asks for operator
	// attention instead of silently dropping interior history.
	ErrCorrupt = errors.New("resultstore: corrupt interior segment")
)

// Entry is one stored result: the content key, the request that produced
// it, and the result itself. Result.Data round-trips through JSON, so after
// a reopen it holds generic maps rather than the original result structs.
type Entry struct {
	Key        string          `json:"key"`
	Experiment string          `json:"experiment"`
	Schema     string          `json:"schema"`
	Params     json.RawMessage `json:"params"` // canonical JSON
	Result     *sim.Result     `json:"result"`
	WallNs     int64           `json:"wall_ns,omitempty"`
	CreatedAt  time.Time       `json:"created_at"`
}

// Summary is the listing shape of an entry (no result body).
type Summary struct {
	Key        string    `json:"key"`
	Experiment string    `json:"experiment"`
	Schema     string    `json:"schema"`
	WallNs     int64     `json:"wall_ns,omitempty"`
	CreatedAt  time.Time `json:"created_at"`
}

// Summary projects the entry for listings.
func (e *Entry) Summary() Summary {
	return Summary{Key: e.Key, Experiment: e.Experiment, Schema: e.Schema,
		WallNs: e.WallNs, CreatedAt: e.CreatedAt}
}

// Baseline pins one named snapshot of the store: every entry's numeric
// metrics, flattened to dotted paths, frozen at pin time. Regression
// checks compare a later store state against these numbers.
type Baseline struct {
	Name      string    `json:"name"`
	Schema    string    `json:"schema"`
	CreatedAt time.Time `json:"created_at"`
	// Metrics maps entry key → metric path → value (see Flatten).
	Metrics map[string]map[string]float64 `json:"metrics"`
	// Experiments maps entry key → experiment name, for readable reports.
	Experiments map[string]string `json:"experiments"`
}

// record is the on-disk payload: exactly one of the two bodies is set.
type record struct {
	Kind     string    `json:"kind"` // "result" or "baseline"
	Entry    *Entry    `json:"entry,omitempty"`
	Baseline *Baseline `json:"baseline,omitempty"`
}

// Options tunes a store. Zero values select production defaults.
type Options struct {
	// SchemaVersion invalidates old keys wholesale when the sim schema
	// changes (default sim.SchemaVersion).
	SchemaVersion string
	// MaxSegmentBytes rotates to a fresh segment past this size
	// (default 64 MiB).
	MaxSegmentBytes int64
	// Sync fsyncs after every append. Off by default: the log tolerates a
	// torn tail, so the worst a crash costs is the records the OS had not
	// flushed — acceptable for a cache, and an order of magnitude faster.
	Sync bool
}

func (o Options) withDefaults() Options {
	if o.SchemaVersion == "" {
		o.SchemaVersion = sim.SchemaVersion
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
	return o
}

// Store is the persistent result cache. All methods are safe for concurrent
// use; writes serialize on one append head.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	closed    bool
	entries   map[string]*Entry
	baselines map[string]*Baseline
	seg       *os.File // active (last) segment, opened for append
	segIndex  int
	segSize   int64
}

// Open creates dir if needed, replays every segment oldest-first to rebuild
// the index, truncates a torn tail off the final segment, and leaves the
// final segment open for append.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		entries:   make(map[string]*Entry),
		baselines: make(map[string]*Baseline),
	}
	segs, err := s.segmentList()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := s.openSegment(1); err != nil {
			return nil, err
		}
		return s, nil
	}
	for i, idx := range segs {
		final := i == len(segs)-1
		if err := s.replaySegment(idx, final); err != nil {
			return nil, err
		}
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(s.segPath(last), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s.seg, s.segIndex, s.segSize = f, last, st.Size()
	return s, nil
}

// segPath names segment idx.
func (s *Store) segPath(idx int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix))
}

// segmentList returns the segment indices present, sorted ascending.
func (s *Store) segmentList() ([]int, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	var out []int
	for _, name := range names {
		base := filepath.Base(name)
		var idx int
		if _, err := fmt.Sscanf(base, segPrefix+"%08d"+segSuffix, &idx); err == nil {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

// openSegment creates a fresh segment and makes it the append head.
func (s *Store) openSegment(idx int) error {
	f, err := os.OpenFile(s.segPath(idx), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := f.Write([]byte(segHeader)); err != nil {
		f.Close()
		return fmt.Errorf("resultstore: %w", err)
	}
	if s.seg != nil {
		s.seg.Close()
	}
	s.seg, s.segIndex, s.segSize = f, idx, int64(len(segHeader))
	return nil
}

// replaySegment loads one segment into the index. In the final segment any
// malformed frame — short header, short payload, CRC mismatch, bad JSON,
// absurd length — is treated as a torn tail: the file is truncated at the
// last good frame and replay stops. The same damage in an earlier segment
// is impossible under crash semantics (only the append head can tear), so
// there it surfaces as ErrCorrupt.
func (s *Store) replaySegment(idx int, final bool) error {
	path := s.segPath(idx)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	defer f.Close()

	truncate := func(off int64, cause string) error {
		if !final {
			return fmt.Errorf("%w: %s at offset %d of %s", ErrCorrupt, cause, off, path)
		}
		return os.Truncate(path, off)
	}

	hdr := make([]byte, len(segHeader))
	if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != segHeader {
		// A segment torn inside its 8-byte header holds no records at all.
		if err := truncate(0, "bad segment header"); err != nil {
			return err
		}
		if final {
			// Restore the header so the segment is appendable again.
			return os.WriteFile(path, []byte(segHeader), 0o644)
		}
		return nil
	}

	off := int64(len(segHeader))
	frame := make([]byte, frameOverhead)
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			if err == io.EOF {
				return nil // clean end
			}
			return truncate(off, "torn frame header")
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length == 0 || length > maxPayload {
			return truncate(off, "implausible frame length")
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return truncate(off, "torn payload")
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return truncate(off, "crc mismatch")
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return truncate(off, "undecodable record")
		}
		s.apply(rec)
		off += frameOverhead + int64(length)
	}
}

// apply indexes one replayed record; later records win.
func (s *Store) apply(rec record) {
	switch {
	case rec.Kind == "result" && rec.Entry != nil:
		s.entries[rec.Entry.Key] = rec.Entry
	case rec.Kind == "baseline" && rec.Baseline != nil:
		s.baselines[rec.Baseline.Name] = rec.Baseline
	}
	// Unknown kinds are skipped, not fatal: a newer writer may add record
	// types an older reader can safely ignore.
}

// append frames and writes one record, rotating segments past the size cap.
func (s *Store) append(rec record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("resultstore: encoding record: %w", err)
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("resultstore: record of %d bytes exceeds %d-byte frame cap", len(payload), maxPayload)
	}
	need := int64(frameOverhead + len(payload))
	if s.segSize+need > s.opts.MaxSegmentBytes && s.segSize > int64(len(segHeader)) {
		if err := s.openSegment(s.segIndex + 1); err != nil {
			return err
		}
	}
	frame := make([]byte, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameOverhead:], payload)
	if _, err := s.seg.Write(frame); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	s.segSize += need
	if s.opts.Sync {
		if err := s.seg.Sync(); err != nil {
			return fmt.Errorf("resultstore: %w", err)
		}
	}
	return nil
}

// SchemaVersion returns the schema tag keys are derived under.
func (s *Store) SchemaVersion() string { return s.opts.SchemaVersion }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the entry under key, if present.
func (s *Store) Get(key string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return e, ok
}

// Put persists an entry and indexes it, replacing any previous entry under
// the same key (the log keeps both; replay keeps the newer).
func (s *Store) Put(e Entry) error {
	if e.Key == "" {
		return fmt.Errorf("resultstore: entry has no key")
	}
	if e.CreatedAt.IsZero() {
		e.CreatedAt = time.Now().UTC()
	}
	if e.Schema == "" {
		e.Schema = s.opts.SchemaVersion
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.append(record{Kind: "result", Entry: &e}); err != nil {
		return err
	}
	s.entries[e.Key] = &e
	return nil
}

// Entries lists every stored entry sorted by experiment then key, so
// listings are stable across processes and reopens.
func (s *Store) Entries() []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Len reports the number of distinct result keys held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// PinBaseline snapshots the current store under name: every entry's
// flattened numeric metrics, frozen. Pinning over an existing name
// replaces it.
func (s *Store) PinBaseline(name string) (*Baseline, error) {
	if name == "" {
		return nil, fmt.Errorf("resultstore: baseline needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	b := &Baseline{
		Name:        name,
		Schema:      s.opts.SchemaVersion,
		CreatedAt:   time.Now().UTC(),
		Metrics:     make(map[string]map[string]float64, len(s.entries)),
		Experiments: make(map[string]string, len(s.entries)),
	}
	for key, e := range s.entries {
		m, err := EntryMetrics(e)
		if err != nil {
			return nil, err
		}
		b.Metrics[key] = m
		b.Experiments[key] = e.Experiment
	}
	if err := s.append(record{Kind: "baseline", Baseline: b}); err != nil {
		return nil, err
	}
	s.baselines[name] = b
	return b, nil
}

// Baseline returns a pinned baseline by name.
func (s *Store) Baseline(name string) (*Baseline, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.baselines[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBaseline, name)
	}
	return b, nil
}

// Baselines lists pinned baselines sorted by name.
func (s *Store) Baselines() []*Baseline {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Baseline, 0, len(s.baselines))
	for _, b := range s.baselines {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close flushes and closes the append head. A closed store still serves
// reads from its in-memory index.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.seg == nil {
		return nil
	}
	err := s.seg.Sync()
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	s.seg = nil
	return err
}
