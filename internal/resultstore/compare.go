package resultstore

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"womcpcm/internal/sim"
)

// Flatten reduces an arbitrary JSON-shaped value to its numeric leaves,
// keyed by dotted path ("Rows.3.Write.1", "MeanRead.2"). Strings and
// booleans are skipped — regression detection compares numbers. The walk is
// schema-free on purpose: every experiment's result (latencies, α-write
// fractions, hit rates, energy figures) flattens the same way, so regress
// needs no per-experiment code.
func Flatten(v any) map[string]float64 {
	out := make(map[string]float64)
	flattenInto(out, "", v)
	return out
}

func flattenInto(out map[string]float64, prefix string, v any) {
	join := func(p, k string) string {
		if p == "" {
			return k
		}
		return p + "." + k
	}
	switch x := v.(type) {
	case map[string]any:
		for k, e := range x {
			flattenInto(out, join(prefix, k), e)
		}
	case []any:
		for i, e := range x {
			flattenInto(out, join(prefix, fmt.Sprintf("%d", i)), e)
		}
	case float64:
		out[prefix] = x
	case json.Number:
		if f, err := x.Float64(); err == nil {
			out[prefix] = f
		}
	}
}

// EntryMetrics flattens an entry's result data. The data is normalized
// through JSON first so fresh in-memory structs and reloaded generic maps
// flatten identically.
func EntryMetrics(e *Entry) (map[string]float64, error) {
	if e.Result == nil {
		return map[string]float64{}, nil
	}
	return ResultMetrics(e.Result)
}

// ResultMetrics flattens a result's data through a JSON round-trip.
func ResultMetrics(res *sim.Result) (map[string]float64, error) {
	raw, err := json.Marshal(res.Data)
	if err != nil {
		return nil, fmt.Errorf("resultstore: flattening result: %w", err)
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, fmt.Errorf("resultstore: flattening result: %w", err)
	}
	return Flatten(v), nil
}

// Delta is one metric that moved beyond tolerance between a baseline and
// the current store. A nil Base or Current marks shape drift — the metric
// exists on only one side — which always counts as a regression.
type Delta struct {
	Key        string   `json:"key"`
	Experiment string   `json:"experiment"`
	Metric     string   `json:"metric"`
	Base       *float64 `json:"base,omitempty"`
	Current    *float64 `json:"current,omitempty"`
	// Rel is |current−base| / max(|base|, 1e-12), the relative movement the
	// tolerance is checked against; 0 for shape drift.
	Rel float64 `json:"rel,omitempty"`
}

// ShapeDrift reports whether the delta is a metric appearing or vanishing
// rather than a numeric movement.
func (d Delta) ShapeDrift() bool { return d.Base == nil || d.Current == nil }

// Comparison reports the current store state against a pinned baseline.
type Comparison struct {
	Baseline  string  `json:"baseline"`
	Schema    string  `json:"schema"`
	Tolerance float64 `json:"tolerance"`
	// Checked counts baseline keys present in the current store.
	Checked int `json:"checked"`
	// Regressions lists metrics that moved beyond tolerance, worst first.
	Regressions []Delta `json:"regressions"`
	// MissingKeys are baseline keys absent from the current store (not
	// regressions — the runs simply have not been reproduced yet).
	MissingKeys []string `json:"missing_keys,omitempty"`
	// NewKeys are current-store keys the baseline never saw.
	NewKeys []string `json:"new_keys,omitempty"`
}

// Compare checks every baseline key that is present in the current store:
// each shared metric must agree within the relative tolerance; a metric
// that vanished or appeared also counts as a regression (shape drift is
// drift). tol ≤ 0 means exact comparison.
func Compare(b *Baseline, entries []*Entry, tol float64) (*Comparison, error) {
	cmp := &Comparison{Baseline: b.Name, Schema: b.Schema, Tolerance: tol}
	current := make(map[string]*Entry, len(entries))
	for _, e := range entries {
		current[e.Key] = e
	}
	baseKeys := make([]string, 0, len(b.Metrics))
	for key := range b.Metrics {
		baseKeys = append(baseKeys, key)
	}
	sort.Strings(baseKeys)
	for _, key := range baseKeys {
		e, ok := current[key]
		if !ok {
			cmp.MissingKeys = append(cmp.MissingKeys, key)
			continue
		}
		cmp.Checked++
		cur, err := EntryMetrics(e)
		if err != nil {
			return nil, err
		}
		base := b.Metrics[key]
		paths := make([]string, 0, len(base)+len(cur))
		for p := range base {
			paths = append(paths, p)
		}
		for p := range cur {
			if _, ok := base[p]; !ok {
				paths = append(paths, p)
			}
		}
		sort.Strings(paths)
		for _, p := range paths {
			bv, inBase := base[p]
			cv, inCur := cur[p]
			switch {
			case !inBase:
				cv := cv
				cmp.Regressions = append(cmp.Regressions, Delta{
					Key: key, Experiment: e.Experiment, Metric: p, Current: &cv})
			case !inCur:
				bv := bv
				cmp.Regressions = append(cmp.Regressions, Delta{
					Key: key, Experiment: e.Experiment, Metric: p, Base: &bv})
			default:
				rel := math.Abs(cv-bv) / math.Max(math.Abs(bv), 1e-12)
				if rel > tol {
					bv, cv := bv, cv
					cmp.Regressions = append(cmp.Regressions, Delta{
						Key: key, Experiment: e.Experiment, Metric: p,
						Base: &bv, Current: &cv, Rel: rel})
				}
			}
		}
	}
	for key := range current {
		if _, ok := b.Metrics[key]; !ok {
			cmp.NewKeys = append(cmp.NewKeys, key)
		}
	}
	sort.Strings(cmp.NewKeys)
	// Shape drift first, then worst movement; ties keep the deterministic
	// key/metric order.
	sort.SliceStable(cmp.Regressions, func(i, j int) bool {
		di, dj := cmp.Regressions[i], cmp.Regressions[j]
		if di.ShapeDrift() != dj.ShapeDrift() {
			return di.ShapeDrift()
		}
		return di.Rel > dj.Rel
	})
	return cmp, nil
}
