package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"womcpcm/internal/sim"
)

// CanonicalJSON re-encodes one JSON document in canonical form: object keys
// sorted, insignificant whitespace removed, and number literals preserved
// exactly as written (no float64 round-trip, so 64-bit seeds survive).
// Two documents that differ only in member order or whitespace canonicalize
// to identical bytes — the property the content hash below depends on.
func CanonicalJSON(doc []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("resultstore: canonicalizing: %w", err)
	}
	// Reject trailing garbage so "{}x" and "{}" cannot collide.
	if dec.More() {
		return nil, fmt.Errorf("resultstore: canonicalizing: trailing data after JSON value")
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeCanonical emits v with sorted object keys and no whitespace.
func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case json.Number:
		buf.WriteString(x.String())
	default: // string, bool, nil
		b, err := json.Marshal(x)
		if err != nil {
			return err
		}
		buf.Write(b)
	}
	return nil
}

// Key derives the content address of one (experiment, params, schema)
// triple: sha256 over the three components with NUL separators, the params
// document canonicalized first. Identical requests hash identically no
// matter how the JSON was spelled; any schema bump invalidates every old
// key at once.
func Key(experiment string, paramsJSON []byte, schema string) (string, error) {
	canon, err := CanonicalJSON(paramsJSON)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(experiment))
	h.Write([]byte{0})
	h.Write([]byte(schema))
	h.Write([]byte{0})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// KeyForParams is Key over the JSON encoding of p. Fields excluded from the
// JSON schema (the in-memory trace slice) do not contribute — callers must
// not cache trace-bearing runs (see Cacheable).
func KeyForParams(experiment string, p sim.Params, schema string) (string, error) {
	doc, err := json.Marshal(p)
	if err != nil {
		return "", fmt.Errorf("resultstore: encoding params: %w", err)
	}
	return Key(experiment, doc, schema)
}

// Cacheable reports whether a run of exp with p is content-addressable:
// trace replays are not, because the trace records live outside the params
// JSON the key hashes.
func Cacheable(exp sim.Experiment, p sim.Params) bool {
	return !exp.NeedsTrace && len(p.Trace) == 0
}
