package resultstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"womcpcm/internal/sim"
)

// fakeResult builds a small, JSON-stable result for store tests.
func fakeResult(exp string, mean float64) *sim.Result {
	return &sim.Result{
		Experiment: exp,
		Data: map[string]any{
			"MeanWrite": []any{1.0, mean},
			"Rows": []any{
				map[string]any{"Benchmark": "qsort", "Write": []any{1.0, mean}},
			},
		},
		Text: "table for " + exp,
	}
}

// mustPut stores a fake entry under a synthetic key.
func mustPut(t *testing.T, s *Store, key, exp string, mean float64) {
	t.Helper()
	if err := s.Put(Entry{
		Key:        key,
		Experiment: exp,
		Params:     json.RawMessage(`{"requests":1000}`),
		Result:     fakeResult(exp, mean),
		WallNs:     12345,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "aaa", "fig5", 0.8)
	mustPut(t, s, "bbb", "fig6", 0.9)
	// Overwrite: the newer record must win after replay.
	mustPut(t, s, "aaa", "fig5", 0.75)
	if _, err := s.PinBaseline("v1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Appending after close must fail cleanly.
	if err := s.Put(Entry{Key: "zzz"}); !errors.Is(err, ErrClosed) {
		t.Errorf("put after close = %v", err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Len(); got != 2 {
		t.Fatalf("reopened entries = %d, want 2", got)
	}
	e, ok := r.Get("aaa")
	if !ok {
		t.Fatal("aaa missing after reopen")
	}
	if e.Experiment != "fig5" || e.WallNs != 12345 || e.Result.Text != "table for fig5" {
		t.Errorf("entry drifted: %+v", e)
	}
	m, err := EntryMetrics(e)
	if err != nil {
		t.Fatal(err)
	}
	if m["MeanWrite.1"] != 0.75 {
		t.Errorf("last write did not win: MeanWrite.1 = %v", m["MeanWrite.1"])
	}
	b, err := r.Baseline("v1")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Metrics) != 2 || b.Experiments["bbb"] != "fig6" {
		t.Errorf("baseline did not survive reopen: %+v", b)
	}
	// Entries listing is deterministic: sorted by experiment then key.
	entries := r.Entries()
	if len(entries) != 2 || entries[0].Key != "aaa" || entries[1].Key != "bbb" {
		t.Errorf("entries order: %v, %v", entries[0].Key, entries[1].Key)
	}
}

// TestTornTailEveryOffset is the crash-recovery acceptance test: a store
// log truncated at EVERY byte offset inside its final record must reopen
// cleanly with all fully-written records intact and stay appendable.
func TestTornTailEveryOffset(t *testing.T) {
	src := t.TempDir()
	s, err := Open(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "aaa", "fig5", 0.8)
	mustPut(t, s, "bbb", "fig6", 0.9)
	segPath := s.segPath(1)
	st, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	lastGood := st.Size() // offset where the final record begins
	mustPut(t, s, "ccc", "fig7", 0.7)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(full))
	if total <= lastGood {
		t.Fatalf("final record added no bytes: %d <= %d", total, lastGood)
	}

	for off := lastGood; off < total; off++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segPath)), full[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("offset %d: open: %v", off, err)
		}
		if got := r.Len(); got != 2 {
			t.Fatalf("offset %d: recovered %d records, want 2", off, got)
		}
		for _, key := range []string{"aaa", "bbb"} {
			if _, ok := r.Get(key); !ok {
				t.Fatalf("offset %d: %s lost", off, key)
			}
		}
		if _, ok := r.Get("ccc"); ok {
			t.Fatalf("offset %d: torn record resurrected", off)
		}
		// The truncated store must accept appends and replay them later.
		mustPut(t, r, "ddd", "rth", 0.6)
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		r2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("offset %d: second open: %v", off, err)
		}
		if got := r2.Len(); got != 3 {
			t.Fatalf("offset %d: after re-append entries = %d, want 3", off, got)
		}
		r2.Close()
	}
}

// TestTornHeader covers a crash inside the 8-byte segment header itself.
func TestTornHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), []byte("WOM"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("entries from torn header = %d", s.Len())
	}
	mustPut(t, s, "aaa", "fig5", 0.8)
	s.Close()
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("append after header repair lost: %d", r.Len())
	}
}

// TestInteriorCorruption: damage in a non-final segment is not a torn tail
// and must refuse to open rather than silently drop history.
func TestInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 256}) // force rotation
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mustPut(t, s, string(rune('a'+i)), "fig5", 0.8)
	}
	if s.segIndex < 2 {
		t.Fatalf("expected rotation, still on segment %d", s.segIndex)
	}
	s.Close()

	// Flip a payload byte in the first (non-final) segment.
	p := filepath.Join(dir, "seg-00000001.log")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption open = %v, want ErrCorrupt", err)
	}
}

// TestSegmentRotation verifies multi-segment stores replay completely.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		mustPut(t, s, string(rune('a'+i)), "fig5", float64(i))
	}
	s.Close()
	segs, err := s.segmentList()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("segments = %d, want rotation", len(segs))
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != n {
		t.Fatalf("replayed %d entries across segments, want %d", r.Len(), n)
	}
	// New appends land in the last segment, not a fresh one.
	mustPut(t, r, "zz", "fig6", 1)
	if r.segIndex != segs[len(segs)-1] && r.segSize == 0 {
		t.Errorf("append head wrong: seg %d size %d", r.segIndex, r.segSize)
	}
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, "aaa", "fig5", 0.80)
	mustPut(t, s, "bbb", "fig6", 0.90)
	b, err := s.PinBaseline("v1")
	if err != nil {
		t.Fatal(err)
	}

	// Unchanged store: no regressions even at zero tolerance.
	cmp, err := Compare(b, s.Entries(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions) != 0 || cmp.Checked != 2 {
		t.Fatalf("clean compare = %+v", cmp)
	}

	// Drift one metric by 5%: caught at 1% tolerance, passed at 10%.
	mustPut(t, s, "aaa", "fig5", 0.84)
	cmp, err = Compare(b, s.Entries(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions) != 2 { // MeanWrite.1 and Rows.0.Write.1
		t.Fatalf("regressions = %+v", cmp.Regressions)
	}
	d := cmp.Regressions[0]
	if d.Key != "aaa" || d.Base == nil || d.Current == nil || *d.Base != 0.80 || *d.Current != 0.84 {
		t.Errorf("delta = %+v", d)
	}
	cmp, err = Compare(b, s.Entries(), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions) != 0 {
		t.Errorf("10%% tolerance still flags: %+v", cmp.Regressions)
	}

	// Shape drift: a vanished metric is always a regression.
	if err := s.Put(Entry{
		Key: "bbb", Experiment: "fig6",
		Params: json.RawMessage(`{}`),
		Result: &sim.Result{Experiment: "fig6", Data: map[string]any{"MeanWrite": []any{1.0}}},
	}); err != nil {
		t.Fatal(err)
	}
	cmp, err = Compare(b, s.Entries(), 10) // huge tolerance: only drift shows
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Regressions) == 0 || !cmp.Regressions[0].ShapeDrift() {
		t.Fatalf("shape drift not flagged: %+v", cmp.Regressions)
	}

	// A key absent from the store is reported missing, not failed.
	cmp, err = Compare(b, s.Entries()[:1], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.MissingKeys) != 1 {
		t.Errorf("missing keys = %v", cmp.MissingKeys)
	}
}

func TestFlatten(t *testing.T) {
	m := Flatten(map[string]any{
		"a": 1.5,
		"b": []any{2.0, map[string]any{"c": 3.0}},
		"s": "skip",
		"t": true,
		"n": nil,
	})
	want := map[string]float64{"a": 1.5, "b.0": 2.0, "b.1.c": 3.0}
	if len(m) != len(want) {
		t.Fatalf("flatten = %v", m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v", k, m[k], v)
		}
	}
}
