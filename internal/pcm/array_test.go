package pcm

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"womcpcm/internal/bitvec"
)

func newTestArray(t *testing.T, rows, rowBits int, erasedOne bool) *Array {
	t.Helper()
	a, err := NewArray(rows, rowBits, erasedOne)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestArrayErasedState(t *testing.T) {
	inv := newTestArray(t, 4, 12, true)
	row, err := inv.ReadRow(0)
	if err != nil {
		t.Fatal(err)
	}
	if bitvec.OnesCount(row, 12) != 12 {
		t.Errorf("inverted array erases to %x, want all ones", row)
	}
	conv := newTestArray(t, 4, 12, false)
	row, _ = conv.ReadRow(0)
	if bitvec.OnesCount(row, 12) != 0 {
		t.Errorf("conventional array erases to %x, want all zeros", row)
	}
}

func TestArrayBounds(t *testing.T) {
	a := newTestArray(t, 2, 8, true)
	if _, err := a.ReadRow(2); err == nil {
		t.Error("read past last row")
	}
	if _, err := a.ReadRow(-1); err == nil {
		t.Error("read negative row")
	}
	if _, _, err := a.ProgramRow(5, []byte{0}, FullWrite); err == nil {
		t.Error("programmed past last row")
	}
	if _, _, err := a.ProgramRow(0, []byte{}, FullWrite); err == nil {
		t.Error("programmed short pattern")
	}
	if _, err := NewArray(0, 8, true); err == nil {
		t.Error("accepted zero rows")
	}
	if _, err := NewArray(8, 0, true); err == nil {
		t.Error("accepted zero width")
	}
}

// TestArrayResetOnlyEnforcement: the physics guard at the heart of the
// WOM-code architecture. From erased (all ones), clearing bits is fine in
// ResetOnly mode; restoring a cleared bit is not.
func TestArrayResetOnlyEnforcement(t *testing.T) {
	a := newTestArray(t, 2, 8, true)
	sets, resets, err := a.ProgramRow(0, []byte{0b1010_1010}, ResetOnly)
	if err != nil {
		t.Fatal(err)
	}
	if sets != 0 || resets != 4 {
		t.Errorf("transitions = (%d, %d), want (0, 4)", sets, resets)
	}
	// Setting a cleared cell must fail and leave the row unchanged.
	if _, _, err := a.ProgramRow(0, []byte{0b1010_1011}, ResetOnly); !errors.Is(err, ErrSetRequired) {
		t.Fatalf("ResetOnly SET attempt: err = %v, want ErrSetRequired", err)
	}
	row, _ := a.ReadRow(0)
	if row[0] != 0b1010_1010 {
		t.Errorf("failed write mutated row: %08b", row[0])
	}
	// FullWrite succeeds.
	sets, resets, err = a.ProgramRow(0, []byte{0b1010_1011}, FullWrite)
	if err != nil {
		t.Fatal(err)
	}
	if sets != 1 || resets != 0 {
		t.Errorf("full write transitions = (%d, %d), want (1, 0)", sets, resets)
	}
}

func TestArrayReadIsCopy(t *testing.T) {
	a := newTestArray(t, 1, 8, false)
	if _, _, err := a.ProgramRow(0, []byte{0x0f}, FullWrite); err != nil {
		t.Fatal(err)
	}
	row, _ := a.ReadRow(0)
	row[0] = 0xff
	again, _ := a.ReadRow(0)
	if again[0] != 0x0f {
		t.Error("ReadRow aliases internal storage")
	}
}

func TestArrayEraseRow(t *testing.T) {
	a := newTestArray(t, 1, 8, true)
	if _, _, err := a.ProgramRow(0, []byte{0x00}, ResetOnly); err != nil {
		t.Fatal(err)
	}
	sets, resets, err := a.EraseRow(0)
	if err != nil {
		t.Fatal(err)
	}
	if sets != 8 || resets != 0 {
		t.Errorf("erase transitions = (%d, %d), want (8, 0)", sets, resets)
	}
	row, _ := a.ReadRow(0)
	if row[0] != 0xff {
		t.Errorf("row after erase = %08b", row[0])
	}
	if _, _, err := a.EraseRow(9); err == nil {
		t.Error("erased out-of-range row")
	}
}

func TestArrayPaddingTrimmed(t *testing.T) {
	a := newTestArray(t, 1, 5, false)
	if _, _, err := a.ProgramRow(0, []byte{0xff}, FullWrite); err != nil {
		t.Fatal(err)
	}
	row, _ := a.ReadRow(0)
	if !bytes.Equal(row, []byte{0x1f}) {
		t.Errorf("stored row = %08b, want 00011111 (padding trimmed)", row[0])
	}
}

func TestArrayWearStats(t *testing.T) {
	a := newTestArray(t, 8, 8, true)
	for i := 0; i < 5; i++ {
		if _, _, err := a.ProgramRow(3, []byte{byte(0xff >> uint(i+1))}, FullWrite); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := a.ProgramRow(1, []byte{0x00}, FullWrite); err != nil {
		t.Fatal(err)
	}
	// One SET-heavy write so both transition counters move.
	if _, _, err := a.ProgramRow(1, []byte{0x0f}, FullWrite); err != nil {
		t.Fatal(err)
	}
	w := a.WearStats()
	if w.TouchedRows != 2 {
		t.Errorf("touched rows = %d, want 2", w.TouchedRows)
	}
	if w.TotalWrites != 7 {
		t.Errorf("total writes = %d, want 7", w.TotalWrites)
	}
	if w.MaxRowWrites != 5 {
		t.Errorf("max row writes = %d, want 5", w.MaxRowWrites)
	}
	if a.RowWrites(3) != 5 || a.RowWrites(0) != 0 {
		t.Error("per-row counters wrong")
	}
	if w.ResetOps == 0 || w.SetOps == 0 {
		t.Errorf("transition counters = %+v, want both nonzero", w)
	}
}

// TestArrayRandomizedMonotoneSequence drives a row through a random
// RESET-only descent and checks counts stay consistent with the stored
// pattern at each step.
func TestArrayRandomizedMonotoneSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := newTestArray(t, 1, 64, true)
	cur := bitvec.NewFilled(64)
	for step := 0; step < 20; step++ {
		next := bitvec.Clone(cur)
		// Clear a random subset of the still-set bits.
		for i := 0; i < 64; i++ {
			if bitvec.Get(next, i) && rng.Intn(4) == 0 {
				bitvec.Set(next, i, false)
			}
		}
		wantResets := bitvec.OnesCount(cur, 64) - bitvec.OnesCount(next, 64)
		sets, resets, err := a.ProgramRow(0, next, ResetOnly)
		if err != nil {
			t.Fatal(err)
		}
		if sets != 0 || resets != wantResets {
			t.Fatalf("step %d: transitions (%d,%d), want (0,%d)", step, sets, resets, wantResets)
		}
		got, _ := a.ReadRow(0)
		if !bitvec.Equal(got, next, 64) {
			t.Fatalf("step %d: stored pattern mismatch", step)
		}
		cur = next
	}
}
