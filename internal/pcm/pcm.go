// Package pcm models the phase change memory device of Li and Mohanram
// (DATE 2014): geometry (§5's channel/rank/bank/row/column organization),
// JEDEC-DDR3-style timing with the paper's PCM latencies, physical address
// mapping, and a functional cell array that stores real bits and enforces
// the programming physics — RESET (1→0) is fast, SET (0→1) is slow, and a
// "RESET-only" row write may not set any cell.
//
// Cell convention: a stored 1 is the SET (polycrystalline, low-resistance)
// state; a stored 0 is the RESET (amorphous, high-resistance) state.
package pcm

import (
	"fmt"
	"math/bits"
)

// Timing collects the latency parameters of the simulated device, in
// nanoseconds. The defaults follow §5 of the paper (after Bheda et al.,
// IGCC 2011, and the DDR3 standard).
type Timing struct {
	// RowRead is the array read latency of a row into the row buffer (27 ns).
	RowRead int64
	// RowWrite is the full row write latency when SET operations are on the
	// critical path (150 ns) — the conventional PCM write and the WOM-code
	// α-write.
	RowWrite int64
	// Reset is the RESET pulse latency (40 ns); a WOM-code in-budget rewrite
	// completes in this time because it needs only RESET operations.
	Reset int64
	// Set is the SET pulse latency (150 ns).
	Set int64
	// Column is the column access latency within an open row (DDR3 CAS
	// analogue): the cost of a row-buffer hit before the data burst.
	Column int64
	// Burst is the data burst duration on the channel for one column access,
	// L_burst/2 in DDR3 terms (the paper's refresh latency formula).
	Burst int64
	// RefreshPeriod is the PCM-refresh scheduling period (4000 ns).
	RefreshPeriod int64
}

// DefaultTiming returns the paper's §5 configuration.
func DefaultTiming() Timing {
	return Timing{
		RowRead:       27,
		RowWrite:      150,
		Reset:         40,
		Set:           150,
		Column:        15, // CAS-class column access into the row buffer
		Burst:         5,  // BL=8 at DDR3-1600: 8 × 0.625 ns ≈ 5 ns
		RefreshPeriod: 4000,
	}
}

// Validate reports whether the timing parameters are physically sensible.
func (t Timing) Validate() error {
	switch {
	case t.RowRead <= 0, t.RowWrite <= 0, t.Reset <= 0, t.Set <= 0, t.Column <= 0, t.Burst <= 0, t.RefreshPeriod <= 0:
		return fmt.Errorf("pcm: all timing parameters must be positive: %+v", t)
	case t.Set < t.Reset:
		return fmt.Errorf("pcm: SET latency %d < RESET latency %d contradicts PCM physics", t.Set, t.Reset)
	case t.RowWrite < t.Set:
		return fmt.Errorf("pcm: row write %d shorter than a SET pulse %d", t.RowWrite, t.Set)
	}
	return nil
}

// Slowdown returns S, the SET/RESET latency ratio of §3.2 (3.75 with the
// default timing).
func (t Timing) Slowdown() float64 { return float64(t.Set) / float64(t.Reset) }

// RefreshLatency returns the burst-mode PCM-refresh latency for a rank of
// banksPerRank banks: t_WR + N_bank·L_burst/2 (§3.2). Burst already denotes
// the L_burst/2 data burst duration.
func (t Timing) RefreshLatency(banksPerRank int) int64 {
	return t.RowWrite + int64(banksPerRank)*t.Burst
}

// Geometry describes the memory organization of §5: a single channel of
// Ranks ranks, BanksPerRank banks each, with RowsPerBank rows of
// ColsPerRow × BitsPerCol bits per device and Devices devices ganged for
// the channel data width.
type Geometry struct {
	Ranks        int
	BanksPerRank int
	RowsPerBank  int
	ColsPerRow   int
	BitsPerCol   int
	Devices      int
}

// DefaultGeometry returns the paper's configuration: 16 ranks × 32 banks,
// 32768 rows, 2048 columns × 4 bits per device, 16 devices forming a 64-bit
// data width.
func DefaultGeometry() Geometry {
	return Geometry{
		Ranks:        16,
		BanksPerRank: 32,
		RowsPerBank:  32768,
		ColsPerRow:   2048,
		BitsPerCol:   4,
		Devices:      16,
	}
}

// Validate checks structural sanity.
func (g Geometry) Validate() error {
	switch {
	case g.Ranks <= 0, g.BanksPerRank <= 0, g.RowsPerBank <= 0,
		g.ColsPerRow <= 0, g.BitsPerCol <= 0, g.Devices <= 0:
		return fmt.Errorf("pcm: all geometry parameters must be positive: %+v", g)
	case g.Ranks&(g.Ranks-1) != 0,
		g.BanksPerRank&(g.BanksPerRank-1) != 0,
		g.RowsPerBank&(g.RowsPerBank-1) != 0,
		g.ColsPerRow&(g.ColsPerRow-1) != 0:
		return fmt.Errorf("pcm: rank/bank/row/column counts must be powers of two: %+v", g)
	}
	return nil
}

// DataWidth returns the channel data width in bits (BitsPerCol × Devices).
func (g Geometry) DataWidth() int { return g.BitsPerCol * g.Devices }

// RowBits returns the number of data bits a row holds across all devices.
func (g Geometry) RowBits() int { return g.ColsPerRow * g.DataWidth() }

// RowBytes returns RowBits in bytes.
func (g Geometry) RowBytes() int { return (g.RowBits() + 7) / 8 }

// CapacityBytes returns the total main-memory capacity.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.Ranks) * int64(g.BanksPerRank) * int64(g.RowsPerBank) * int64(g.RowBytes())
}

// Banks returns the total number of banks.
func (g Geometry) Banks() int { return g.Ranks * g.BanksPerRank }

// WOMCacheOverhead returns the WCPCM memory overhead for this geometry with
// a code of the given overhead factor: one WOM-cache array (a bank's worth
// of rows, widened by 1+overhead) per rank, relative to the rank's
// BanksPerRank banks — (1+overhead)/N_bank, the paper's 1.5/32 = 4.7 %.
func (g Geometry) WOMCacheOverhead(codeOverhead float64) float64 {
	return (1 + codeOverhead) / float64(g.BanksPerRank)
}

// Location identifies a row-granular physical location.
type Location struct {
	Rank int
	Bank int
	Row  int
	Col  int
}

// String renders the location for diagnostics.
func (l Location) String() string {
	return fmt.Sprintf("rank %d bank %d row %d col %d", l.Rank, l.Bank, l.Row, l.Col)
}

// AddrMapper translates physical byte addresses to device locations using a
// row-interleaved mapping: consecutive rows map to consecutive banks across
// the channel (bank, then rank), spreading the access stream for
// parallelism the way DRAMSim2's default scheme does.
//
// Address layout, LSB first: column offset | bank | rank | row.
type AddrMapper struct {
	g         Geometry
	colBits   uint
	bankBits  uint
	rankBits  uint
	rowBits   uint
	rowStride int64
}

// NewAddrMapper builds a mapper for g. The geometry must validate.
func NewAddrMapper(g Geometry) (*AddrMapper, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := &AddrMapper{g: g}
	m.colBits = uint(bits.Len(uint(g.RowBytes() - 1)))
	m.bankBits = uint(bits.TrailingZeros(uint(g.BanksPerRank)))
	m.rankBits = uint(bits.TrailingZeros(uint(g.Ranks)))
	m.rowBits = uint(bits.TrailingZeros(uint(g.RowsPerBank)))
	m.rowStride = int64(g.RowBytes())
	return m, nil
}

// Geometry returns the mapper's geometry.
func (m *AddrMapper) Geometry() Geometry { return m.g }

// Map decodes a physical byte address. Addresses beyond the capacity wrap.
func (m *AddrMapper) Map(addr uint64) Location {
	col := addr & (uint64(m.g.RowBytes()) - 1)
	rest := addr >> m.colBits
	bank := rest & (uint64(m.g.BanksPerRank) - 1)
	rest >>= m.bankBits
	rank := rest & (uint64(m.g.Ranks) - 1)
	rest >>= m.rankBits
	row := rest & (uint64(m.g.RowsPerBank) - 1)
	return Location{
		Rank: int(rank),
		Bank: int(bank),
		Row:  int(row),
		Col:  int(col) / ((m.g.DataWidth() + 7) / 8),
	}
}

// Unmap composes a physical byte address from a location (column offset 0
// within the column's data width).
func (m *AddrMapper) Unmap(loc Location) uint64 {
	colBytes := uint64(loc.Col) * uint64((m.g.DataWidth()+7)/8)
	addr := uint64(loc.Row)
	addr = addr<<m.rankBits | uint64(loc.Rank)
	addr = addr<<m.bankBits | uint64(loc.Bank)
	addr = addr<<m.colBits | colBytes
	return addr
}
