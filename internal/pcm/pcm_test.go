package pcm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultTimingMatchesPaper(t *testing.T) {
	tm := DefaultTiming()
	if tm.RowRead != 27 || tm.RowWrite != 150 || tm.Reset != 40 || tm.Set != 150 {
		t.Errorf("timing %+v does not match §5 (27/150/40/150)", tm)
	}
	if tm.RefreshPeriod != 4000 {
		t.Errorf("refresh period %d, want 4000", tm.RefreshPeriod)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := tm.Slowdown(); math.Abs(s-3.75) > 1e-12 {
		t.Errorf("slowdown = %v, want 3.75", s)
	}
}

func TestTimingValidate(t *testing.T) {
	bad := []Timing{
		{},
		{RowRead: 27, RowWrite: 150, Reset: 150, Set: 40, Burst: 5, RefreshPeriod: 4000},  // SET faster than RESET
		{RowRead: 27, RowWrite: 100, Reset: 40, Set: 150, Burst: 5, RefreshPeriod: 4000},  // row write < SET
		{RowRead: -1, RowWrite: 150, Reset: 40, Set: 150, Burst: 5, RefreshPeriod: 4000},  // negative
		{RowRead: 27, RowWrite: 150, Reset: 40, Set: 150, Burst: 5, RefreshPeriod: -4000}, // negative period
	}
	for i, tm := range bad {
		if err := tm.Validate(); err == nil {
			t.Errorf("case %d: bad timing validated: %+v", i, tm)
		}
	}
}

func TestRefreshLatencyFormula(t *testing.T) {
	tm := DefaultTiming()
	// t_WR + N_bank · L_burst/2 with 32 banks: 150 + 32·5 = 310 ns.
	if got := tm.RefreshLatency(32); got != 310 {
		t.Errorf("RefreshLatency(32) = %d, want 310", got)
	}
	if got := tm.RefreshLatency(4); got != 170 {
		t.Errorf("RefreshLatency(4) = %d, want 170", got)
	}
}

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.DataWidth() != 64 {
		t.Errorf("data width = %d, want 64 (§5)", g.DataWidth())
	}
	if g.Banks() != 512 {
		t.Errorf("banks = %d, want 512", g.Banks())
	}
	if g.RowBytes() != 2048*8 {
		t.Errorf("row bytes = %d, want 16384", g.RowBytes())
	}
	// 4.7% WCPCM overhead claim: 1.5/32.
	if got := g.WOMCacheOverhead(0.5); math.Abs(got-1.5/32) > 1e-12 {
		t.Errorf("WOM-cache overhead = %v, want %v", got, 1.5/32)
	}
}

func TestGeometryValidate(t *testing.T) {
	g := DefaultGeometry()
	g.Ranks = 3 // not a power of two
	if err := g.Validate(); err == nil {
		t.Error("non-power-of-two rank count validated")
	}
	g = DefaultGeometry()
	g.RowsPerBank = 0
	if err := g.Validate(); err == nil {
		t.Error("zero rows validated")
	}
}

func TestAddrMapperRoundTrip(t *testing.T) {
	m, err := NewAddrMapper(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	g := m.Geometry()
	prop := func(rank, bank, row, col uint16) bool {
		loc := Location{
			Rank: int(rank) % g.Ranks,
			Bank: int(bank) % g.BanksPerRank,
			Row:  int(row) % g.RowsPerBank,
			Col:  int(col) % g.ColsPerRow,
		}
		got := m.Map(m.Unmap(loc))
		return got == loc
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestAddrMapperInterleaving: consecutive rows of the address space land in
// consecutive banks, so streaming accesses spread across the channel.
func TestAddrMapperInterleaving(t *testing.T) {
	g := Geometry{Ranks: 2, BanksPerRank: 4, RowsPerBank: 8, ColsPerRow: 4, BitsPerCol: 8, Devices: 1}
	m, err := NewAddrMapper(g)
	if err != nil {
		t.Fatal(err)
	}
	stride := uint64(g.RowBytes())
	seenBank := map[int]bool{}
	for i := uint64(0); i < 4; i++ {
		loc := m.Map(i * stride)
		if loc.Row != 0 {
			t.Errorf("addr %d: row %d, want 0 within first bank sweep", i*stride, loc.Row)
		}
		seenBank[loc.Bank] = true
	}
	if len(seenBank) != 4 {
		t.Errorf("4 consecutive rows hit %d distinct banks, want 4", len(seenBank))
	}
	// After sweeping all banks of all ranks, the row index increments.
	loc := m.Map(uint64(g.Banks()) * stride)
	if loc.Row != 1 || loc.Bank != 0 || loc.Rank != 0 {
		t.Errorf("wraparound maps to %v, want rank 0 bank 0 row 1", loc)
	}
}

func TestAddrMapperRejectsBadGeometry(t *testing.T) {
	if _, err := NewAddrMapper(Geometry{}); err == nil {
		t.Error("accepted zero geometry")
	}
}

func TestCapacity(t *testing.T) {
	g := DefaultGeometry()
	want := int64(16) * 32 * 32768 * 16384
	if got := g.CapacityBytes(); got != want {
		t.Errorf("capacity = %d, want %d", got, want)
	}
}
