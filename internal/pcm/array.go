package pcm

import (
	"errors"
	"fmt"

	"womcpcm/internal/bitvec"
)

// ErrSetRequired is returned by a RESET-only program whose target pattern
// would need at least one 0→1 (SET) cell transition.
var ErrSetRequired = errors.New("pcm: write requires SET transitions")

// WriteMode selects the programming pulses a row write may use.
type WriteMode int

const (
	// ResetOnly permits only 1→0 transitions — the fast path WOM-code
	// rewrites must take. Programming fails with ErrSetRequired otherwise.
	ResetOnly WriteMode = iota
	// FullWrite permits both SET and RESET transitions — the conventional
	// PCM write and the WOM-code α-write.
	FullWrite
)

func (m WriteMode) String() string {
	switch m {
	case ResetOnly:
		return "reset-only"
	case FullWrite:
		return "full-write"
	default:
		return fmt.Sprintf("WriteMode(%d)", int(m))
	}
}

// Array is a functional model of one PCM bank's cell array: rows of
// rowBits cells, lazily materialized, storing actual bit patterns. It is
// the correctness counterpart of the timing simulator: the architecture
// layer programs encoded rows through it and the array verifies that each
// write respects its declared mode.
//
// Rows not yet touched read back in the erased state. For the inverted
// WOM-code architectures the erased state is all ones (every cell SET,
// pre-conditioned at manufacture or by PCM-refresh); conventional arrays
// erase to zero.
type Array struct {
	rowBits   int
	rows      int
	erasedOne bool
	data      map[int][]byte
	writes    map[int]uint64 // per-row lifetime program count (endurance)
	setOps    uint64         // lifetime SET cell transitions
	resetOps  uint64         // lifetime RESET cell transitions
}

// NewArray returns an array of rows rows × rowBits cells. erasedOne selects
// the erased cell value (true for inverted WOM-code arrays).
func NewArray(rows, rowBits int, erasedOne bool) (*Array, error) {
	if rows <= 0 || rowBits <= 0 {
		return nil, fmt.Errorf("pcm: array needs positive dimensions, got %d×%d", rows, rowBits)
	}
	return &Array{
		rowBits:   rowBits,
		rows:      rows,
		erasedOne: erasedOne,
		data:      make(map[int][]byte),
		writes:    make(map[int]uint64),
	}, nil
}

// RowBits returns the row width in cells.
func (a *Array) RowBits() int { return a.rowBits }

// Rows returns the number of rows.
func (a *Array) Rows() int { return a.rows }

func (a *Array) checkRow(row int) error {
	if row < 0 || row >= a.rows {
		return fmt.Errorf("pcm: row %d out of range [0,%d)", row, a.rows)
	}
	return nil
}

func (a *Array) erasedRow() []byte {
	if a.erasedOne {
		return bitvec.NewFilled(a.rowBits)
	}
	return bitvec.New(a.rowBits)
}

// ReadRow returns a copy of the row's cell contents.
func (a *Array) ReadRow(row int) ([]byte, error) {
	if err := a.checkRow(row); err != nil {
		return nil, err
	}
	if r, ok := a.data[row]; ok {
		return bitvec.Clone(r), nil
	}
	return a.erasedRow(), nil
}

// ProgramRow writes pattern into the row under the given mode. In ResetOnly
// mode the write fails — leaving the row unchanged — if any cell would have
// to transition 0→1. The returned counts report the cell transitions
// actually performed.
func (a *Array) ProgramRow(row int, pattern []byte, mode WriteMode) (sets, resets int, err error) {
	if err := a.checkRow(row); err != nil {
		return 0, 0, err
	}
	if len(pattern)*8 < a.rowBits {
		return 0, 0, fmt.Errorf("pcm: pattern holds %d bits, row needs %d", len(pattern)*8, a.rowBits)
	}
	cur, ok := a.data[row]
	if !ok {
		cur = a.erasedRow()
	}
	sets, resets = bitvec.TransitionCounts(cur, pattern, a.rowBits)
	if mode == ResetOnly && sets > 0 {
		return 0, 0, fmt.Errorf("%w: %d cells would SET in row %d", ErrSetRequired, sets, row)
	}
	stored := bitvec.Clone(pattern[:(a.rowBits+7)/8])
	bitvec.TrimPadding(stored, a.rowBits)
	a.data[row] = stored
	a.writes[row]++
	a.setOps += uint64(sets)
	a.resetOps += uint64(resets)
	return sets, resets, nil
}

// EraseRow restores the row to the erased state (a SET-heavy operation for
// inverted arrays; PCM-refresh pays this cost in idle cycles).
func (a *Array) EraseRow(row int) (sets, resets int, err error) {
	if err := a.checkRow(row); err != nil {
		return 0, 0, err
	}
	return a.ProgramRow(row, a.erasedRow(), FullWrite)
}

// RowWrites returns the lifetime program count of a row — the endurance
// counter the paper defers to future work.
func (a *Array) RowWrites(row int) uint64 { return a.writes[row] }

// Wear summarizes endurance across the array.
type Wear struct {
	// TouchedRows is the number of rows ever programmed.
	TouchedRows int
	// TotalWrites is the total number of row program operations.
	TotalWrites uint64
	// MaxRowWrites is the hottest row's program count.
	MaxRowWrites uint64
	// SetOps and ResetOps count lifetime cell transitions; SET transitions
	// dominate energy and wear.
	SetOps, ResetOps uint64
}

// WearStats aggregates the endurance counters.
func (a *Array) WearStats() Wear {
	w := Wear{TouchedRows: len(a.writes), SetOps: a.setOps, ResetOps: a.resetOps}
	for _, n := range a.writes {
		w.TotalWrites += n
		if n > w.MaxRowWrites {
			w.MaxRowWrites = n
		}
	}
	return w
}
