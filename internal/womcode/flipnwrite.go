package womcode

import (
	"fmt"

	"womcpcm/internal/bitvec"
)

// FlipNWrite implements the Flip-N-Write encoding of Cho and Lee (MICRO
// 2009), which the paper cites as prior latency-aware coding for PCM
// ([16], §1). Each group of GroupBits data bits carries one flag bit; the
// group is stored either as-is (flag 0) or complemented (flag 1), whichever
// needs fewer cell programming operations against the currently stored
// pattern. Unlike a WOM-code it cannot eliminate SET operations — it only
// halves the worst-case number of flipped cells — so it serves as the
// ablation baseline for "coding that reduces writes" versus "coding that
// removes SETs from the critical path".
type FlipNWrite struct {
	groupBits int
	dataBits  int
	groups    int
}

// NewFlipNWrite returns a Flip-N-Write encoder for rows of dataBits bits
// using flag groups of groupBits bits (a common choice is 8 or 32).
func NewFlipNWrite(dataBits, groupBits int) (*FlipNWrite, error) {
	if dataBits <= 0 || groupBits <= 0 {
		return nil, fmt.Errorf("womcode: flip-n-write widths must be positive (data %d, group %d)", dataBits, groupBits)
	}
	return &FlipNWrite{
		groupBits: groupBits,
		dataBits:  dataBits,
		groups:    (dataBits + groupBits - 1) / groupBits,
	}, nil
}

// DataBits returns the row data width in bits.
func (f *FlipNWrite) DataBits() int { return f.dataBits }

// EncodedBits returns the stored width: data bits plus one flag per group.
func (f *FlipNWrite) EncodedBits() int { return f.dataBits + f.groups }

// EncodedBytes returns the stored width in bytes. Flags are packed after the
// data bits, one per group.
func (f *FlipNWrite) EncodedBytes() int { return (f.EncodedBits() + 7) / 8 }

// Overhead returns the storage overhead factor, 1/groupBits.
func (f *FlipNWrite) Overhead() float64 { return 1 / float64(f.groupBits) }

// InitialRow returns an all-zero stored row (PCM cells in the RESET state).
func (f *FlipNWrite) InitialRow() []byte { return bitvec.New(f.EncodedBits()) }

// Encode computes the stored pattern for data given the current stored
// pattern, choosing per group between the plain and complemented forms to
// minimize flipped cells. It returns the new stored row and the number of
// 0→1 (SET) and 1→0 (RESET) cell operations required.
func (f *FlipNWrite) Encode(current, data []byte) (next []byte, sets, resets int, err error) {
	if len(current) < f.EncodedBytes() {
		return nil, 0, 0, fmt.Errorf("womcode: stored row is %d bytes, need %d", len(current), f.EncodedBytes())
	}
	if len(data)*8 < f.dataBits {
		return nil, 0, 0, fmt.Errorf("womcode: data row is %d bytes, need %d bits", len(data), f.dataBits)
	}
	next = bitvec.Clone(current[:f.EncodedBytes()])
	for g := 0; g < f.groups; g++ {
		start := g * f.groupBits
		width := f.groupBits
		if start+width > f.dataBits {
			width = f.dataBits - start
		}
		flagPos := f.dataBits + g
		curFlag := bitvec.Get(current, flagPos)

		// Cost of storing plain (flag 0) versus complemented (flag 1).
		plainFlips, compFlips := 0, 0
		for i := 0; i < width; i++ {
			d := bitvec.Get(data, start+i)
			s := bitvec.Get(current, start+i)
			if d != s {
				plainFlips++
			}
			if !d != s {
				compFlips++
			}
		}
		if curFlag {
			plainFlips++ // flag must flip 1→0
		} else {
			compFlips++ // flag must flip 0→1
		}

		complement := compFlips < plainFlips
		for i := 0; i < width; i++ {
			d := bitvec.Get(data, start+i)
			if complement {
				d = !d
			}
			old := bitvec.Get(next, start+i)
			if old != d {
				if d {
					sets++
				} else {
					resets++
				}
				bitvec.Set(next, start+i, d)
			}
		}
		if curFlag != complement {
			if complement {
				sets++
			} else {
				resets++
			}
			bitvec.Set(next, flagPos, complement)
		}
	}
	return next, sets, resets, nil
}

// Decode recovers the data bits from a stored row.
func (f *FlipNWrite) Decode(stored []byte) ([]byte, error) {
	if len(stored) < f.EncodedBytes() {
		return nil, fmt.Errorf("womcode: stored row is %d bytes, need %d", len(stored), f.EncodedBytes())
	}
	data := bitvec.New(f.dataBits)
	for g := 0; g < f.groups; g++ {
		start := g * f.groupBits
		width := f.groupBits
		if start+width > f.dataBits {
			width = f.dataBits - start
		}
		flip := bitvec.Get(stored, f.dataBits+g)
		for i := 0; i < width; i++ {
			bitvec.Set(data, start+i, bitvec.Get(stored, start+i) != flip)
		}
	}
	return data, nil
}
