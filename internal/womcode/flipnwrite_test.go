package womcode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"womcpcm/internal/bitvec"
)

func TestFlipNWriteSizes(t *testing.T) {
	f, err := NewFlipNWrite(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.EncodedBits() != 72 {
		t.Errorf("EncodedBits = %d, want 72", f.EncodedBits())
	}
	if f.Overhead() != 0.125 {
		t.Errorf("Overhead = %v, want 0.125", f.Overhead())
	}
	if _, err := NewFlipNWrite(0, 8); err == nil {
		t.Error("accepted zero data width")
	}
	if _, err := NewFlipNWrite(8, 0); err == nil {
		t.Error("accepted zero group width")
	}
}

// TestFlipNWriteRoundTrip: random write sequences always decode to the last
// written data.
func TestFlipNWriteRoundTrip(t *testing.T) {
	f, err := NewFlipNWrite(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	stored := f.InitialRow()
	for i := 0; i < 50; i++ {
		data := make([]byte, 8)
		rng.Read(data)
		next, _, _, err := f.Encode(stored, data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Decode(next)
		if err != nil {
			t.Fatal(err)
		}
		if !bitvec.Equal(got, data, 64) {
			t.Fatalf("iteration %d: decode mismatch", i)
		}
		stored = next
	}
}

// TestFlipNWriteHalvesWorstCase: writing the complement of the stored data
// flips at most groupBits/2 + 1 cells per group (the Flip-N-Write bound),
// versus groupBits without coding.
func TestFlipNWriteHalvesWorstCase(t *testing.T) {
	f, err := NewFlipNWrite(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	stored := f.InitialRow()
	data := []byte{0x0F}
	stored, _, _, err = f.Encode(stored, data)
	if err != nil {
		t.Fatal(err)
	}
	// Complement of stored data: without FNW this costs 8 flips.
	next, sets, resets, err := f.Encode(stored, []byte{0xF0})
	if err != nil {
		t.Fatal(err)
	}
	if total := sets + resets; total > 8/2+1 {
		t.Errorf("complement write flipped %d cells, bound is %d", total, 8/2+1)
	}
	got, _ := f.Decode(next)
	if got[0] != 0xF0 {
		t.Errorf("decode = %02x, want f0", got[0])
	}
}

// TestFlipNWriteIdempotent: rewriting identical data flips nothing.
func TestFlipNWriteIdempotent(t *testing.T) {
	f, _ := NewFlipNWrite(32, 8)
	stored := f.InitialRow()
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	stored, _, _, err := f.Encode(stored, data)
	if err != nil {
		t.Fatal(err)
	}
	_, sets, resets, err := f.Encode(stored, data)
	if err != nil {
		t.Fatal(err)
	}
	if sets+resets != 0 {
		t.Errorf("idempotent rewrite flipped %d cells", sets+resets)
	}
}

// TestFlipNWriteQuick: encode/decode round trip and flip-count optimality
// versus the plain encoding, property-checked.
func TestFlipNWriteQuick(t *testing.T) {
	f, _ := NewFlipNWrite(16, 8)
	prop := func(a, b uint16) bool {
		stored := f.InitialRow()
		var ab, bb [2]byte
		bitvec.SetField(ab[:], 0, 16, uint64(a))
		bitvec.SetField(bb[:], 0, 16, uint64(b))
		stored, _, _, err := f.Encode(stored, ab[:])
		if err != nil {
			return false
		}
		next, sets, resets, err := f.Encode(stored, bb[:])
		if err != nil {
			return false
		}
		got, _ := f.Decode(next)
		if bitvec.GetField(got, 0, 16) != uint64(b) {
			return false
		}
		// Per 8-bit group the chosen form flips at most 8/2+1 cells
		// including the flag, so 2 groups flip at most 10 cells total.
		return sets+resets <= 10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFlipNWriteErrors(t *testing.T) {
	f, _ := NewFlipNWrite(16, 8)
	if _, _, _, err := f.Encode(make([]byte, 1), make([]byte, 2)); err == nil {
		t.Error("accepted short stored row")
	}
	if _, _, _, err := f.Encode(f.InitialRow(), make([]byte, 1)); err == nil {
		t.Error("accepted short data")
	}
	if _, err := f.Decode(make([]byte, 1)); err == nil {
		t.Error("decoded short row")
	}
}
